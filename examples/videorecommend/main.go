// Videorecommend reproduces the paper's case study (Fig. 4) as an
// application: diversified video recommendation over a YouTube-style
// network. It runs the two case-study patterns Q1 (cyclic) and Q2 (DAG)
// and shows how diversification (λ) trades relevance for coverage —
// recommending videos whose audiences overlap as little as possible.
//
//	go run ./examples/videorecommend
package main

import (
	"fmt"
	"log"

	divtopk "divtopk"
)

func main() {
	g := divtopk.NewYouTubeLike(40_000, 140_000, 4)
	fmt.Printf("video graph: %d videos, %d recommendation links\n\n", g.NumNodes(), g.NumEdges())

	for _, tc := range []struct {
		name string
		q    *divtopk.Pattern
	}{
		{"Q1: music*(R>2) <-> entertainment(R>2) -> music(V>5000)", divtopk.CaseStudyQ1()},
		{"Q2: comedy*(R>3) -> {entertainment(A>500), comedy(V>7000)} -> music(A>800)", divtopk.CaseStudyQ2()},
	} {
		fmt.Println("pattern", tc.name)

		top, err := divtopk.TopK(g, tc.q, 2)
		if err != nil {
			log.Fatal(err)
		}
		if !top.GlobalMatch {
			fmt.Println("  no matches at this scale; rerun with a larger graph")
			continue
		}
		fmt.Println("  top-2 by relevance:")
		printMatches(g, top.Matches)

		for _, lambda := range []float64{0.1, 0.5, 0.9} {
			div, err := divtopk.TopKDiversified(g, tc.q, 2, lambda)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  diversified (λ=%.1f, F=%.3f):\n", lambda, div.F)
			printMatches(g, div.Matches)
		}
		fmt.Println()
	}
}

func printMatches(g *divtopk.Graph, ms []divtopk.Match) {
	for _, m := range ms {
		fmt.Printf("    video %-8d %-14s reaches %d videos' worth of audience\n",
			m.Node, g.Label(m.Node), m.Relevance)
	}
}
