// Expertfinding demonstrates the paper's motivating scenario (§1): expert
// recommendation over a large collaboration network. It generates a
// synthetic scale-free organization, asks for project managers whose teams
// satisfy a structural requirement, and contrasts the find-all baseline
// with the early-termination top-k engine — the MR statistic the paper's
// Exp-1 reports falls directly out of the Stats.
//
//	go run ./examples/expertfinding
package main

import (
	"fmt"
	"log"
	"time"

	divtopk "divtopk"
)

func main() {
	// A synthetic organization: 15 role labels, scale-free reporting edges.
	g := divtopk.NewSynthetic(50_000, 150_000, 15, 7)
	fmt.Printf("organization: %d people, %d supervision links\n", g.NumNodes(), g.NumEdges())

	// Mine a realistic requirement pattern (guaranteed satisfiable): a
	// 5-role hierarchy with one collaboration cycle.
	q, err := divtopk.GeneratePattern(g, 5, 8, true, false, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("requirement pattern:", q)

	const k = 10

	// Warm the graph's descendant-label bound index with a throwaway query
	// (it is built lazily on first use and amortized across queries, like
	// the paper's precomputed index); time steady-state queries only.
	if _, err := divtopk.TopK(g, q, k); err != nil {
		log.Fatal(err)
	}

	// Baseline: evaluate the full match relation, then rank (Match in §4).
	start := time.Now()
	baseline, err := divtopk.TopK(g, q, k, divtopk.WithBaseline())
	if err != nil {
		log.Fatal(err)
	}
	baselineTime := time.Since(start)

	// Early termination: stop as soon as the top-k is provably correct.
	start = time.Now()
	early, err := divtopk.TopK(g, q, k)
	if err != nil {
		log.Fatal(err)
	}
	earlyTime := time.Since(start)

	fmt.Printf("\n%-22s %12s %12s %10s\n", "", "Match", "TopK", "ratio")
	fmt.Printf("%-22s %12s %12s %9.0f%%\n", "time",
		baselineTime.Round(time.Microsecond), earlyTime.Round(time.Microsecond),
		100*float64(earlyTime)/float64(baselineTime))
	fmt.Printf("%-22s %12d %12d %9.0f%%  (the paper's MR)\n", "matches examined",
		baseline.Stats.Examined, early.Stats.Examined,
		100*float64(early.Stats.Examined)/float64(baseline.Stats.Examined))
	fmt.Printf("%-22s %12d %12d\n", "candidates", baseline.Stats.Candidates, early.Stats.Candidates)
	fmt.Printf("%-22s %12v %12v\n", "early terminated", false, early.Stats.EarlyTerminated)

	fmt.Println("\ntop experts by social impact (δr = relevant-set size):")
	for i, m := range early.Matches {
		exact := "≥"
		if m.Exact {
			exact = "="
		}
		fmt.Printf("  %2d. person %-8d δr %s %d\n", i+1, m.Node, exact, m.Relevance)
	}

	// Sanity: both answers carry the same top-k relevance quality.
	sum := func(ms []divtopk.Match) int {
		t := 0
		for _, m := range ms {
			t += m.Upper
		}
		return t
	}
	fmt.Printf("\nbaseline top-%d Σδr = %d; early-termination Σupper = %d\n",
		k, sum(baseline.Matches), sum(early.Matches))
}
