// Quickstart reproduces the paper's running example (Fig. 1, Examples 1-10)
// through the public API: a small collaboration network, the pattern "a
// project manager who supervised a DB developer and a programmer who
// supervised each other and each supervised a tester", and both query
// flavors — top-k by relevance and diversified top-k.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	divtopk "divtopk"
)

func main() {
	// Fig. 1(b): the collaboration network.
	b := divtopk.NewGraphBuilder()
	names := []string{
		"PM1", "PM2", "PM3", "PM4", "DB1", "DB2", "DB3",
		"PRG1", "PRG2", "PRG3", "PRG4", "ST1", "ST2", "ST3", "ST4",
		"BA1", "UD1", "UD2",
	}
	id := map[string]int{}
	rev := map[int]string{}
	for _, n := range names {
		id[n] = b.AddNode(n[:len(n)-1]) // label = role (PM, DB, PRG, ST, BA, UD)
		rev[id[n]] = n
	}
	for _, e := range [][2]string{
		{"PM1", "DB1"}, {"PM1", "PRG1"}, {"PM1", "BA1"},
		{"PM2", "DB2"}, {"PM2", "PRG3"}, {"PM2", "PRG4"}, {"PM2", "UD1"},
		{"PM3", "DB2"}, {"PM3", "PRG3"},
		{"PM4", "DB2"}, {"PM4", "PRG2"}, {"PM4", "UD2"},
		{"DB1", "PRG1"}, {"DB1", "ST1"},
		{"PRG1", "DB1"}, {"PRG1", "ST1"}, {"PRG1", "ST2"},
		{"DB2", "PRG2"}, {"DB2", "ST3"},
		{"PRG2", "DB3"}, {"PRG2", "ST4"},
		{"DB3", "PRG3"}, {"DB3", "ST4"},
		{"PRG3", "DB2"}, {"PRG3", "ST3"},
		{"PRG4", "DB2"}, {"PRG4", "ST2"}, {"PRG4", "ST3"},
	} {
		if err := b.AddEdge(id[e[0]], id[e[1]]); err != nil {
			log.Fatal(err)
		}
	}
	g := b.Build()

	// Fig. 1(a): the pattern Q with PM as the output node '*'.
	pb := divtopk.NewPatternBuilder()
	pm := pb.AddNode("PM")
	db := pb.AddNode("DB")
	prg := pb.AddNode("PRG")
	st := pb.AddNode("ST")
	for _, e := range [][2]int{{pm, db}, {pm, prg}, {db, prg}, {prg, db}, {db, st}, {prg, st}} {
		if err := pb.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	if err := pb.Output(pm); err != nil {
		log.Fatal(err)
	}
	q, err := pb.Build()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("all matches of PM (Example 3):", namesOf(rev, g.Matches(q)))

	// Top-2 by relevance (Example 8): {PM2, PM3}.
	top, err := divtopk.TopK(g, q, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop-2 by relevance δr:")
	for _, m := range top.Matches {
		fmt.Printf("  %-4s δr=%d  (impacts %v)\n", rev[m.Node], m.Relevance, namesOf(rev, m.RelevantSet))
	}

	// Diversified top-2 across the λ spectrum (Example 6).
	for _, lambda := range []float64{0.0, 0.3, 0.8} {
		res, err := divtopk.TopKDiversified(g, q, 2, lambda, divtopk.WithApproximation())
		if err != nil {
			log.Fatal(err)
		}
		var sel []string
		for _, m := range res.Matches {
			sel = append(sel, rev[m.Node])
		}
		fmt.Printf("\ndiversified top-2 at λ=%.1f: %v (F=%.3f)", lambda, sel, res.F)
	}
	fmt.Println()
}

func namesOf(rev map[int]string, nodes []int) []string {
	out := make([]string, len(nodes))
	for i, v := range nodes {
		out[i] = rev[v]
	}
	return out
}
