// Citations runs DAG pattern queries over a citation-style network (the
// paper's Citation workload): find influential papers whose citation
// neighborhood matches a structural requirement, filtered by attribute
// predicates (publication year), and compare the generalized relevance
// functions of §3.4 on the result.
//
//	go run ./examples/citations
package main

import (
	"fmt"
	"log"

	divtopk "divtopk"
)

func main() {
	g := divtopk.NewCitationLike(60_000, 150_000, 9)
	fmt.Printf("citation graph: %d papers, %d citations\n", g.NumNodes(), g.NumEdges())

	// Recent DB papers citing ML work that builds on THEORY foundations.
	pb := divtopk.NewPatternBuilder()
	dbp := pb.AddNode("DB", divtopk.Ge("year", 1990))
	mlp := pb.AddNode("ML")
	thp := pb.AddNode("THEORY")
	if err := pb.AddEdge(dbp, mlp); err != nil {
		log.Fatal(err)
	}
	if err := pb.AddEdge(mlp, thp); err != nil {
		log.Fatal(err)
	}
	if err := pb.AddEdge(dbp, thp); err != nil {
		log.Fatal(err)
	}
	if err := pb.Output(dbp); err != nil {
		log.Fatal(err)
	}
	q, err := pb.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pattern:", q, "(DAG:", q.IsDAG(), ")")

	res, err := divtopk.TopK(g, q, 5)
	if err != nil {
		log.Fatal(err)
	}
	if !res.GlobalMatch {
		log.Fatal("no matches; increase the graph size")
	}
	fmt.Printf("\ntop-5 DB papers by citation impact (examined %d of %d candidates, early=%v):\n",
		res.Stats.Examined, res.Stats.Candidates, res.Stats.EarlyTerminated)
	for i, m := range res.Matches {
		year, _ := g.Attr(m.Node, "year")
		fmt.Printf("  %d. paper %-8d area=%-8s year=%-5s impact=%d\n",
			i+1, m.Node, m.Label, year, m.Relevance)
	}

	// Diversified: avoid recommending papers whose influence cones overlap.
	div, err := divtopk.TopKDiversified(g, q, 5, 0.5, divtopk.WithApproximation())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndiversified top-5 (λ=0.5, F=%.3f):\n", div.F)
	for i, m := range div.Matches {
		fmt.Printf("  %d. paper %-8d impact=%d\n", i+1, m.Node, m.Relevance)
	}

	// Generalized relevance functions of §3.4 over the same query.
	for _, fn := range []string{"preference-attachment", "jaccard-coefficient"} {
		ranked, scores, err := divtopk.TopKByRelevanceFunc(g, q, 3, fn)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntop-3 under %s:", fn)
		for i, m := range ranked.Matches {
			fmt.Printf(" %d(score %.3f)", m.Node, scores[i])
		}
		fmt.Println()
	}

	// Overlap comparison: how much do the two answers' audiences intersect?
	overlap := func(a, b []int) int {
		seen := map[int]bool{}
		for _, x := range a {
			seen[x] = true
		}
		n := 0
		for _, x := range b {
			if seen[x] {
				n++
			}
		}
		return n
	}
	if len(res.Matches) >= 2 {
		fmt.Printf("\naudience overlap of the two most relevant: %d papers\n",
			overlap(res.Matches[0].RelevantSet, res.Matches[1].RelevantSet))
	}
	if len(div.Matches) >= 2 {
		fmt.Printf("audience overlap of the two most diversified: %d papers\n",
			overlap(div.Matches[0].RelevantSet, div.Matches[1].RelevantSet))
	}
}
