package divtopk

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// TestWarmCacheAdvanceEquivalenceFuzz is the correctness bar of the warm
// result cache: whatever the advance pass does on commit — advance a cached
// entry incrementally, carry it verbatim when the delta missed its product,
// evict it past the work-share ratio, or seed a fresh evaluation from a
// containment donor — every answer a cached session gives must be deeply
// equal to a never-cached session walking the same delta chain. Randomized
// chains cross the interesting boundaries (appends into the pattern's
// neighborhood, deletes of matched edges, no-op deltas), and the matrix
// covers both query kernels (TopK and TopKDiversified), both algorithm
// families of each (early-termination engine and find-all/approximation),
// worker counts 1 and 8, and all three advance policies.
func TestWarmCacheAdvanceEquivalenceFuzz(t *testing.T) {
	modes := []struct {
		name string
		opts []Option
	}{
		{"adaptive", nil},
		{"force-advance", []Option{WithCacheAdvanceRatio(1)}},
		{"force-evict", []Option{WithCacheAdvanceRatio(1e-9)}},
	}
	type querySpec struct {
		name string
		run  func(m *Matcher, q *Pattern, par int) (any, error)
	}
	queries := []querySpec{
		{"topk/engine", func(m *Matcher, q *Pattern, par int) (any, error) {
			return m.TopK(q, 8, Parallelism(par))
		}},
		{"topk/baseline", func(m *Matcher, q *Pattern, par int) (any, error) {
			return m.TopK(q, 8, Parallelism(par), WithBaseline())
		}},
		{"div/heuristic", func(m *Matcher, q *Pattern, par int) (any, error) {
			return m.TopKDiversified(q, 5, 0.5, Parallelism(par))
		}},
		{"div/approx", func(m *Matcher, q *Pattern, par int) (any, error) {
			return m.TopKDiversified(q, 5, 0.5, Parallelism(par), WithApproximation())
		}},
	}

	for seed := int64(1); seed <= 12; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			base := batchFuzzGraph(t, rng)
			// Two mined patterns: label-only conditions over a 4-label space,
			// so the second frequently finds the first's cached state as a
			// containment donor and exercises the seeded admission path.
			q1, err := GeneratePattern(base, 3, 5, seed%2 == 0, true, seed)
			if err != nil {
				t.Fatal(err)
			}
			q2, err := GeneratePattern(base, 3, 4, seed%2 != 0, true, seed+100)
			if err != nil {
				t.Fatal(err)
			}
			patterns := []*Pattern{q1, q2}

			type session struct {
				name      string
				warm, ref *Matcher
				par       int
			}
			var sessions []session
			for _, mode := range modes {
				for _, par := range []int{1, 8} {
					opts := append([]Option{WithCache(64), Parallelism(par)}, mode.opts...)
					sessions = append(sessions, session{
						name: fmt.Sprintf("%s/p%d", mode.name, par),
						warm: NewMatcher(base, opts...),
						ref:  NewMatcher(base, Parallelism(par)),
						par:  par,
					})
				}
			}

			check := func(step int) {
				for _, s := range sessions {
					for _, q := range patterns {
						for _, qs := range queries {
							got, err := qs.run(s.warm, q, s.par)
							if err != nil {
								t.Fatalf("step %d %s %s (warm): %v", step, s.name, qs.name, err)
							}
							want, err := qs.run(s.ref, q, s.par)
							if err != nil {
								t.Fatalf("step %d %s %s (ref): %v", step, s.name, qs.name, err)
							}
							if !reflect.DeepEqual(got, want) {
								t.Fatalf("step %d %s %s: cached session diverged from never-cached reference:\ngot  %+v\nwant %+v",
									step, s.name, qs.name, got, want)
							}
						}
					}
				}
			}

			// Query once before the first delta so the warm registry holds
			// states and descriptors for every (pattern, family) the chain
			// will advance.
			check(-1)
			for step := 0; step < 10; step++ {
				d := mineBatchDelta(rng, sessions[0].warm.Graph(), int(seed)*100+step)
				for _, s := range sessions {
					if _, err := s.warm.Update(d); err != nil {
						t.Fatalf("step %d %s (warm): %v", step, s.name, err)
					}
					if _, err := s.ref.Update(d); err != nil {
						t.Fatalf("step %d %s (ref): %v", step, s.name, err)
					}
				}
				check(step)
			}

			// Sanity on the policy split: the forced-advance sessions must
			// have advanced entries and never tripped the ratio fallback,
			// while the forced-evict ones must have evicted on every commit
			// that touched a maintained product (a delta with zero affected
			// share still advances at zero cost — even a tiny ratio only
			// trips when there is work to skip).
			for _, s := range sessions {
				cs := s.warm.CacheStats()
				switch {
				case strings.HasPrefix(s.name, "force-advance"):
					if cs.Advanced == 0 {
						t.Errorf("%s: no entries advanced across 10 commits: %+v", s.name, cs)
					}
					if cs.AdvanceEvicted != 0 {
						t.Errorf("%s: forced-advance session hit the ratio fallback: %+v", s.name, cs)
					}
				case strings.HasPrefix(s.name, "force-evict"):
					if cs.AdvanceEvicted == 0 {
						t.Errorf("%s: forced-evict session never evicted: %+v", s.name, cs)
					}
				}
			}
		})
	}
}
