package divtopk

import (
	"bytes"
	"sync"

	"divtopk/internal/core"
	"divtopk/internal/diversify"
	"divtopk/internal/graph"
	"divtopk/internal/pattern"
	"divtopk/internal/simulation"
)

// This file is the warm result cache: the machinery that turns the session
// cache's "invalidate on commit" into "advance on commit". A cached entry
// for a hot pattern keeps the per-query incremental evaluation state
// (simulation.IncState: candidate index, product CSR, settled fixpoint)
// alongside the result. When a commit applies a delta, advanceWarm carries
// every maintained state to the new snapshot with IncCompute — delta-
// proportional work, same discipline as BoundsCache.Advance: advance against
// the old snapshot off to the side, install atomically, fall back to
// eviction past the work-share ratio (WithCacheAdvanceRatio) — and re-admits
// each cached entry under its post-delta key, so the first post-commit query
// for a hot pattern is a cache hit instead of a cold evaluation.
//
// Admission is containment-aware: when a new pattern's nodes are subsumed by
// a maintained pattern's (pattern.CondSubsumes — same label, subset
// predicates), its candidate lists are seeded from the donor's instead of
// scanned cold (simulation.BuildCandidatesSeeded), turning the cache into a
// cross-query accelerator. Seeding is an optimization of the scan only:
// every result is byte-identical to a cold evaluation, which the delta-chain
// fuzz in matcher_advance_test.go pins at every version.

const (
	// maxWarmPatterns bounds the pattern states a session maintains;
	// maxWarmDescriptors bounds the cached query shapes riding each state.
	// Past the state cap the least recently admitted state is replaced — the
	// same recency discipline as the result LRU itself.
	maxWarmPatterns    = 16
	maxWarmDescriptors = 8
)

// warmRegistry holds the per-pattern incremental states behind a session's
// warm result cache. Queries admit and read under mu; the commit path
// snapshots the states under mu, advances them outside it (holding only
// updateMu), and installs the results under mu again.
type warmRegistry struct {
	mu     sync.Mutex
	states map[string]*patternState // canonical pattern text -> state
	clock  uint64                   // admission/use ticks for LRU eviction
}

// patternState is the maintained evaluation state of one hot pattern against
// one graph snapshot, shared by every cached entry (any kind, k, λ, option
// set) of that pattern. Immutable once registered: the advance pass builds a
// replacement and swaps it in.
type patternState struct {
	text  string
	p     *Pattern
	inc   *simulation.IncState
	descs map[string]*descriptor // version-less key identity -> descriptor
	used  uint64
}

// descriptor is one cached query shape riding a patternState: everything
// needed to re-derive the entry's key and value at the next version.
type descriptor struct {
	kind   string
	k      int
	lambda float64
	opts   []Option
	// full marks the full-evaluation family (WithBaseline / WithApproximation):
	// a pure function of the candidate index, product and fixpoint, so an
	// unchanged state means an unchanged value. The early-termination family
	// additionally depends on the bound index rows, so it is always re-run
	// (seeded with the advanced state) after a commit.
	full bool
	// val is the cached facade value at the state's version; base, for the
	// full family, the core-level match pool behind it — the input of the
	// unchanged-pool comparison that skips the diversify greedy re-scan.
	val  any
	base *core.Result
}

// putEntry is one advanced cache entry awaiting admission; the key is
// derived at install time from the post-delta snapshot version.
type putEntry struct {
	kind   string
	p      *Pattern
	k      int
	lambda float64
	o      options
	val    any
}

func patternText(p *Pattern) (string, error) {
	var buf bytes.Buffer
	if err := WritePattern(&buf, p); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// warmLoad is the cache loader of a warm session: it resolves (admitting if
// needed) the pattern's incremental state for the snapshot g and evaluates
// the query seeded with it. The bool result reports containment seeding.
func (m *Matcher) warmLoad(g *Graph, p *Pattern, kind string, k int, lambda float64, merged []Option) (any, bool, error) {
	if k < 1 || p.p.Validate() != nil {
		// Let the ordinary evaluation path produce the structured error.
		return m.coldLoad(g, p, kind, k, lambda, merged)
	}
	o := buildOptions(merged)
	// The version-less key identity: what makes two admissions of the same
	// query shape refresh one descriptor instead of accumulating.
	id, err := queryKey(kind, 0, p, k, lambda, o)
	if err != nil {
		return m.coldLoad(g, p, kind, k, lambda, merged)
	}
	st, registered, seeded := m.warmState(g, p)
	if st == nil {
		return m.coldLoad(g, p, kind, k, lambda, merged)
	}
	d := &descriptor{
		kind: kind, k: k, lambda: lambda, opts: merged,
		full: (kind == kindTopK && o.baseline) || (kind == kindDiversified && o.approx),
	}
	val, base, err := m.evalWarm(g, st.p, st.inc, d, nil, false)
	if err != nil {
		return nil, false, err
	}
	if registered {
		d.val, d.base = val, base
		m.warm.mu.Lock()
		if len(st.descs) < maxWarmDescriptors || st.descs[id] != nil {
			st.descs[id] = d
		}
		m.warm.mu.Unlock()
	}
	return val, seeded, nil
}

// coldLoad evaluates without warm-state maintenance (pattern or k invalid,
// registry raced past this snapshot): the plain pre-warm-cache loader.
func (m *Matcher) coldLoad(g *Graph, p *Pattern, kind string, k int, lambda float64, merged []Option) (any, bool, error) {
	if kind == kindTopK {
		res, err := TopK(g, p, k, merged...)
		if err != nil {
			return nil, false, err
		}
		return res, false, nil
	}
	res, err := TopKDiversified(g, p, k, lambda, merged...)
	if err != nil {
		return nil, false, err
	}
	return res, false, nil
}

// warmState returns the registered pattern state for (g, p), admitting one
// if absent — with containment-seeded candidate lists when a maintained
// pattern subsumes p's nodes. registered is false when the state could not
// be (or lost a race to be) registered; the returned state is then a
// transient usable for this evaluation only. seeded reports containment
// seeding. A nil state means warm evaluation is unavailable entirely.
func (m *Matcher) warmState(g *Graph, p *Pattern) (st *patternState, registered, seeded bool) {
	text, err := patternText(p)
	if err != nil {
		return nil, false, false
	}
	m.warm.mu.Lock()
	if m.warm.states == nil {
		m.warm.states = make(map[string]*patternState)
	}
	if cur := m.warm.states[text]; cur != nil && cur.inc.G == g.g {
		m.warm.clock++
		cur.used = m.warm.clock
		m.warm.mu.Unlock()
		return cur, true, false
	}
	// Containment seeding: among the states at this snapshot, pick the donor
	// covering the most of p's nodes (ties to the smallest pattern text, so
	// the choice is deterministic; any donor yields identical results).
	var seeds [][]graph.NodeID
	bestCover, bestText := 0, ""
	for _, donor := range m.warm.states {
		if donor.inc.G != g.g {
			continue
		}
		cover, n := pattern.NodeCover(p.p, donor.p.p)
		if n < bestCover || n == 0 || (n == bestCover && donor.text >= bestText) {
			continue
		}
		bestCover, bestText = n, donor.text
		seeds = make([][]graph.NodeID, p.p.NumNodes())
		for u, x := range cover {
			if x >= 0 {
				seeds[u] = donor.inc.CI.Lists[x]
			}
		}
	}
	m.warm.mu.Unlock()

	var ci *simulation.CandidateIndex
	if seeds != nil {
		ci = simulation.BuildCandidatesSeeded(g.g, p.p, seeds, m.workers)
		seeded = true
	} else {
		ci = simulation.BuildCandidatesParallel(g.g, p.p, m.workers)
	}
	st = &patternState{
		text:  text,
		p:     p,
		inc:   simulation.NewIncStateSeeded(g.g, p.p, ci, m.workers),
		descs: make(map[string]*descriptor),
	}

	m.warm.mu.Lock()
	defer m.warm.mu.Unlock()
	m.warm.clock++
	st.used = m.warm.clock
	if cur := m.warm.states[text]; cur != nil {
		if cur.inc.G == g.g {
			// Lost an admission race at the same snapshot: use the winner.
			cur.used = m.warm.clock
			return cur, true, seeded
		}
		if cur.inc.G.Version() > g.g.Version() {
			// A commit advanced past this query's snapshot; don't clobber the
			// newer state — evaluate with the transient one.
			return st, false, seeded
		}
	}
	if m.warm.states[text] == nil && len(m.warm.states) >= maxWarmPatterns {
		oldest, oldestUsed := "", uint64(0)
		for t, s := range m.warm.states {
			if oldest == "" || s.used < oldestUsed {
				oldest, oldestUsed = t, s.used
			}
		}
		delete(m.warm.states, oldest)
	}
	m.warm.states[text] = st
	return st, true, seeded
}

// evalWarm evaluates one cached query shape against gf seeded with the
// settled state inc (candidates, product CSR, fixpoint — all for gf's exact
// snapshot). It reproduces the facade dispatch of TopK/TopKDiversified
// byte-for-byte; Options.Prebuilt only spares rebuilding what inc already
// holds. prev, set by the advance pass, is the shape's previous descriptor:
// when poolCmp additionally confirms the candidate universe is unchanged (no
// node appends) and the evaluated match pool is identical to prev's, the
// previous value is reused — in particular, TopKDiv's greedy scan re-runs
// only when the advanced match set actually changed. The *core.Result return
// is the evaluated pool (full-evaluation family only).
func (m *Matcher) evalWarm(gf *Graph, p *Pattern, inc *simulation.IncState, d *descriptor, prev *descriptor, poolCmp bool) (any, *core.Result, error) {
	o := buildOptions(d.opts)
	eng := o.engine
	eng.Prebuilt = &core.PrebuiltEval{CI: inc.CI, Prod: inc.Prod, Sim: inc.Res}
	switch {
	case d.kind == kindTopK && o.baseline:
		base, err := core.MatchBaselineOpts(gf.g, p.p, d.k, true, eng)
		if err != nil {
			return nil, nil, err
		}
		if prev != nil && poolCmp && prev.base != nil && poolEqual(prev.base, base) {
			return prev.val, base, nil
		}
		return convertResult(gf, base), base, nil
	case d.kind == kindDiversified && o.approx:
		base, err := core.MatchBaselineOpts(gf.g, p.p, d.k, true, eng)
		if err != nil {
			return nil, nil, err
		}
		if prev != nil && poolCmp && prev.base != nil && poolEqual(prev.base, base) {
			return prev.val, base, nil
		}
		dres, err := diversify.TopKDivFromBase(base, d.k, d.lambda, eng)
		if err != nil {
			return nil, nil, err
		}
		return convertDiversified(gf, dres), base, nil
	case d.kind == kindTopK:
		if eng.Cache == nil && eng.Bounds != core.BoundTight {
			eng.Cache = gf.boundsCache()
		}
		res, err := core.TopK(gf.g, p.p, d.k, eng)
		if err != nil {
			return nil, nil, err
		}
		return convertResult(gf, res), nil, nil
	default:
		if eng.Cache == nil && eng.Bounds != core.BoundTight {
			eng.Cache = gf.boundsCache()
		}
		dres, err := diversify.TopKDH(gf.g, p.p, d.k, d.lambda, eng)
		if err != nil {
			return nil, nil, err
		}
		return convertDiversified(gf, dres), nil, nil
	}
}

// poolEqual reports whether two evaluated match pools are identical —
// node-for-node, relevance-for-relevance, set-for-set. Only meaningful when
// the two evaluations share one candidate universe (no node appends between
// them); the caller guards that, which also makes the relevant-set bitsets
// directly comparable (same RelSpace layout).
func poolEqual(a, b *core.Result) bool {
	if len(a.All) != len(b.All) || a.GlobalMatch != b.GlobalMatch || a.Cuo != b.Cuo {
		return false
	}
	for i := range a.All {
		ma, mb := &a.All[i], &b.All[i]
		if ma.Node != mb.Node || ma.Relevance != mb.Relevance {
			return false
		}
		if (ma.R == nil) != (mb.R == nil) || (ma.R != nil && !ma.R.Equal(mb.R)) {
			return false
		}
	}
	return true
}

// advanceWarm carries every maintained pattern state and its cached entries
// from the currently published snapshot to g2 (the caller — commitLocked,
// holding updateMu — has applied merged to it but not yet published it).
// States whose incremental advance trips the work-share ratio are evicted
// instead (IncOptions.NoFallback): a commit never pays a full rebuild for
// the cache's sake. Nothing is published here: the returned install function
// swaps the advanced states in and admits the advanced entries under their
// post-delta keys, and the caller runs it only after the commit's last
// fallible step — entries for a version that is never published must never
// become reachable, since a later commit could reuse the version number.
func (m *Matcher) advanceWarm(g2 *Graph, merged *graph.Delta) func() {
	if m.cache == nil {
		return func() {}
	}
	gOld := m.cur.Load() // pre-delta snapshot: publication happens after us
	m.warm.mu.Lock()
	states := make([]*patternState, 0, len(m.warm.states))
	for _, st := range m.warm.states {
		states = append(states, st)
	}
	m.warm.mu.Unlock()
	if len(states) == 0 {
		return func() {}
	}

	type swap struct {
		old *patternState
		new *patternState
	}
	var (
		swaps   []swap
		drops   []*patternState
		puts    []putEntry
		evicted uint64
	)
	noAppends := len(merged.NodeAppends) == 0
	incOpts := simulation.IncOptions{
		Workers:        m.workers,
		RecomputeRatio: m.advanceRatio,
		NoFallback:     true,
	}
	for _, st := range states {
		if st.inc.G != gOld.g {
			// Left behind by an earlier commit (admission race): unadvanceable.
			drops, evicted = append(drops, st), evicted+1
			continue
		}
		inc2, ist, err := simulation.IncCompute(st.inc, g2.g, merged, incOpts)
		if err != nil {
			drops, evicted = append(drops, st), evicted+1
			continue
		}
		// An untouched state (no candidate pair's adjacency changed, no
		// appended nodes) is byte-identical to the old one, so full-family
		// values carry over without any re-evaluation.
		unchanged := noAppends && ist.TouchedPairs == 0
		st2 := &patternState{
			text: st.text, p: st.p, inc: inc2,
			descs: make(map[string]*descriptor, len(st.descs)),
			used:  st.used,
		}
		for id, d := range st.descs {
			var (
				val  any
				base *core.Result
			)
			if d.full && unchanged {
				val, base = d.val, d.base
			} else {
				val, base, err = m.evalWarm(g2, st.p, inc2, d, d, noAppends)
				if err != nil {
					continue // drop just this shape; the state stays useful
				}
			}
			st2.descs[id] = &descriptor{
				kind: d.kind, k: d.k, lambda: d.lambda, opts: d.opts,
				full: d.full, val: val, base: base,
			}
			puts = append(puts, putEntry{
				kind: d.kind, p: st.p, k: d.k, lambda: d.lambda,
				o: buildOptions(d.opts), val: val,
			})
		}
		swaps = append(swaps, swap{old: st, new: st2})
	}

	return func() {
		m.warm.mu.Lock()
		for _, s := range swaps {
			if cur, ok := m.warm.states[s.old.text]; !ok || cur == s.old {
				m.warm.states[s.old.text] = s.new
			}
		}
		for _, st := range drops {
			if m.warm.states[st.text] == st {
				delete(m.warm.states, st.text)
			}
		}
		m.warm.mu.Unlock()
		// Every advanced entry is re-keyed with the post-delta version: the
		// old-version entries become unreachable the moment g2 is published,
		// exactly as if they had been invalidated — except their successors
		// are already warm.
		ver := g2.Version()
		for _, pe := range puts {
			key, err := queryKey(pe.kind, ver, pe.p, pe.k, pe.lambda, pe.o)
			if err != nil {
				continue
			}
			m.cache.PutAdvanced(key, pe.val)
		}
		if evicted > 0 {
			m.advanceEvicted.Add(evicted)
		}
	}
}
