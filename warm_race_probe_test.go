package divtopk

import (
	"math/rand"
	"sync"
	"testing"
)

// Probe: concurrent queries (fresh shapes, so each one registers a warm
// descriptor) racing commit-time advanceWarm.
func TestWarmRaceProbe(t *testing.T) {
	g := NewYouTubeLike(1_500, 12_000, 3)
	q, err := GeneratePattern(g, 4, 6, true, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatcher(g, WithCache(256))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := 1 + rng.Intn(40)
				if _, err := m.TopK(q, k); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	rng := rand.New(rand.NewSource(99))
	for step := 0; step < 40; step++ {
		d := mineBatchDelta(rng, m.Graph(), step)
		if _, err := m.Update(d); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
