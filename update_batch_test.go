package divtopk

import (
	"fmt"
	"math/rand"
	"testing"
)

// batchFuzzGraph builds a small random cyclic graph through the public
// builder, so the fuzz exercises exactly the surface a library user has.
func batchFuzzGraph(t *testing.T, rng *rand.Rand) *Graph {
	t.Helper()
	b := NewGraphBuilder()
	n := 50 + rng.Intn(30)
	for i := 0; i < n; i++ {
		b.AddNode(fmt.Sprintf("L%d", rng.Intn(4)))
	}
	for i := 0; i < 4*n; i++ {
		if err := b.AddEdge(rng.Intn(n), rng.Intn(n)); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// mineBatchDelta mines one random valid delta against g: node appends
// (sometimes with a fresh label), edge inserts (duplicates, self-loops,
// edges at appended nodes included), and deletes of edges g has.
func mineBatchDelta(rng *rand.Rand, g *Graph, tag int) *Delta {
	var d Delta
	n := g.NumNodes()
	for a := rng.Intn(3); a > 0; a-- {
		label := fmt.Sprintf("L%d", rng.Intn(4))
		if rng.Intn(4) == 0 {
			label = fmt.Sprintf("dyn-%d", tag)
		}
		d.AddNode(label)
	}
	type edge struct{ u, v int }
	nNew := n + d.Size() // appends precede edge ops in Size, but only appends exist yet
	for a := rng.Intn(5); a > 0; a-- {
		d.InsertEdge(rng.Intn(nNew), rng.Intn(nNew))
	}
	var dels []edge
	for v := 0; v < n; v++ {
		for _, w := range g.Successors(v) {
			if rng.Intn(12) == 0 {
				dels = append(dels, edge{v, w})
			}
		}
	}
	for i, e := range dels {
		if i >= 2 {
			break
		}
		d.DeleteEdge(e.u, e.v)
	}
	return &d
}

// TestMatcherUpdateBatchEquivalenceFuzz is the group-commit acceptance
// criterion at the session layer: applying K random deltas one Update at a
// time and applying them as one UpdateBatch must land on the same version
// and answer every query byte-identically — across both query kernels
// (TopK and TopKDiversified), sequential and parallel shard maintenance,
// and all three maintenance policies (adaptive, forced-incremental,
// forced-rebuild).
func TestMatcherUpdateBatchEquivalenceFuzz(t *testing.T) {
	configs := []struct {
		name string
		opts []Option
	}{
		{"adaptive/p1", []Option{Parallelism(1)}},
		{"adaptive/p8", []Option{Parallelism(8)}},
		{"incremental/p1", []Option{WithIndexRebuildRatio(1), Parallelism(1)}},
		{"incremental/p8", []Option{WithIndexRebuildRatio(1), Parallelism(8)}},
		{"rebuild/p1", []Option{WithIndexRebuildRatio(1e-12), Parallelism(1)}},
		{"rebuild/p8", []Option{WithIndexRebuildRatio(1e-12), Parallelism(8)}},
	}
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			base := batchFuzzGraph(t, rng)
			q, err := GeneratePattern(base, 3, 5, seed%2 == 0, true, seed)
			if err != nil {
				t.Fatal(err)
			}

			type pair struct{ seq, batch *Matcher }
			sessions := make([]pair, len(configs))
			for i, c := range configs {
				sessions[i] = pair{NewMatcher(base, c.opts...), NewMatcher(base, c.opts...)}
			}

			tag := 0
			for round := 0; round < 3; round++ {
				k := 1 + rng.Intn(5)
				parts := make([]*Delta, 0, k)
				for i := 0; i < k; i++ {
					// Mine against the sequential head (all sequential
					// sessions walk the same chain), then apply everywhere.
					d := mineBatchDelta(rng, sessions[0].seq.Graph(), tag)
					tag++
					parts = append(parts, d)
					for ci := range sessions {
						if _, err := sessions[ci].seq.Update(d); err != nil {
							t.Fatalf("round %d part %d (%s): %v", round, i, configs[ci].name, err)
						}
					}
				}
				for ci := range sessions {
					g2, stats, err := sessions[ci].batch.UpdateBatch(parts)
					if err != nil {
						t.Fatalf("round %d batch (%s): %v", round, configs[ci].name, err)
					}
					if stats.BatchWidth != k {
						t.Fatalf("round %d (%s): batch width %d, want %d", round, configs[ci].name, stats.BatchWidth, k)
					}
					if g2.Version() != sessions[ci].seq.Version() {
						t.Fatalf("round %d (%s): batch landed on version %d, sequential on %d",
							round, configs[ci].name, g2.Version(), sessions[ci].seq.Version())
					}
				}

				// Every session, sequential or batched, under every policy
				// and worker count, answers both kernels identically.
				ref, err := sessions[0].seq.TopK(q, 8)
				if err != nil {
					t.Fatal(err)
				}
				refDiv, err := sessions[0].seq.TopKDiversified(q, 5, 0.5)
				if err != nil {
					t.Fatal(err)
				}
				for ci, s := range sessions {
					for _, m := range []*Matcher{s.seq, s.batch} {
						res, err := m.TopK(q, 8)
						if err != nil {
							t.Fatal(err)
						}
						assertResultsIdentical(t, fmt.Sprintf("round %d %s", round, configs[ci].name), ref, res)
						div, err := m.TopKDiversified(q, 5, 0.5)
						if err != nil {
							t.Fatal(err)
						}
						if div.F != refDiv.F || len(div.Matches) != len(refDiv.Matches) {
							t.Fatalf("round %d %s: diversified F/|S| %v/%d vs %v/%d",
								round, configs[ci].name, div.F, len(div.Matches), refDiv.F, len(refDiv.Matches))
						}
						for j := range div.Matches {
							if div.Matches[j].Node != refDiv.Matches[j].Node {
								t.Fatalf("round %d %s: diversified selection differs at %d", round, configs[ci].name, j)
							}
						}
					}
				}
			}
		})
	}
}
