package divtopk

import (
	"errors"

	"divtopk/internal/graph"
)

// DurabilitySink receives every delta a Matcher applies, after the new
// snapshot (graph + advanced index) is fully built but before it is
// published to queries. A sink that returns nil promises the delta survives
// a crash; a sink error aborts the update — the session keeps serving the
// old snapshot, so the served state never runs ahead of the durable state.
// The serving layer's WAL-backed store is the one implementation; tests use
// in-memory fakes.
type DurabilitySink interface {
	// AppendDelta persists d, the delta that produced snapshot g (so
	// g.Version() is the version being made durable).
	AppendDelta(g *Graph, d *Delta) error
	// AppendBatch persists the deltas of one group commit: g is the snapshot
	// the whole batch produced, so ds[i] carries version
	// g.Version()-len(ds)+1+i. The sink must persist all of ds or none of it
	// under one synchronization point — recovery then replays the
	// per-request chain exactly as the acks described it, and a crash can
	// only lose a suffix of whole batches, never a batch's middle.
	AppendBatch(g *Graph, ds []*Delta) error
}

// ErrDurabilityUnavailable wraps a DurabilitySink failure during Update: the
// delta could not be made durable, so it was not applied. The session keeps
// answering queries at its current (fully durable) version; the serving
// layer maps this to a 503, not a 400 — retrying cannot help until the
// underlying store recovers, which for the WAL store means a restart. Match
// it with errors.Is.
var ErrDurabilityUnavailable = errors.New("divtopk: durability unavailable, update not applied")

// SetDurability installs (or, with nil, removes) the session's durability
// sink. Install it before the session starts accepting updates: the sink
// only sees deltas applied after this call, so attaching it to a session
// that already diverged from the sink's state violates the sink's version
// contiguity. The serving layer attaches the store right after replaying its
// recovered WAL tail through Update — at that point both sides agree.
func (m *Matcher) SetDurability(s DurabilitySink) {
	m.updateMu.Lock()
	defer m.updateMu.Unlock()
	m.durability = s
}

// WrapGraph wraps an internal *graph.Graph (as produced by sibling packages
// inside this module — the durability store's recovery) into the public
// facade type. The dynamic type of v must be *graph.Graph; see Graph.Unwrap.
func WrapGraph(v any) *Graph { return &Graph{g: v.(*graph.Graph)} }

// WrapDelta wraps an internal *graph.Delta (a recovered WAL record) into the
// public facade type; see Delta.Unwrap.
func WrapDelta(v any) *Delta { return &Delta{d: *v.(*graph.Delta)} }

// Unwrap exposes the internal delta to sibling packages inside this module
// (the serving layer's durability adapter); external users have no use for
// it.
func (d *Delta) Unwrap() any { return &d.d }
