package divtopk

// Benchmark harness entry points: one benchmark per table/figure of the
// paper's evaluation (Fig. 5a-l), the Fig. 4 case study, the λ-sensitivity
// result, the two ablations, and the supplementary MR-vs-scale trend.
//
// Effectiveness figures (MR, F) are exposed through b.ReportMetric as custom
// benchmark metrics ("MR%", "F") next to the timing ones, so a single
//
//	go test -bench=. -benchmem
//
// regenerates every number of EXPERIMENTS.md at the small scale (use
// cmd/experiments -scale medium for the recorded tables).

import (
	"strings"
	"sync"
	"testing"

	"divtopk/internal/bench"
	"divtopk/internal/graph"
	"divtopk/internal/pattern"
	"divtopk/internal/simulation"
)

// reportFigure runs one harness experiment per benchmark iteration and
// reports the last row's series as metrics (the full tables come from
// cmd/experiments; benchmarks track regressions).
func reportFigure(b *testing.B, run func(bench.Scale) *bench.Figure) {
	b.Helper()
	var fig *bench.Figure
	for i := 0; i < b.N; i++ {
		fig = run(bench.ScaleSmall)
	}
	if fig == nil || len(fig.Rows) == 0 {
		b.Fatal("empty figure")
	}
	// Average each series across rows and report it under the series name
	// (units must be whitespace-free for ReportMetric).
	for si, name := range fig.Series {
		sum := 0.0
		for _, r := range fig.Rows {
			sum += r.Vals[si]
		}
		b.ReportMetric(sum/float64(len(fig.Rows)), strings.ReplaceAll(name, " ", "_"))
	}
}

func BenchmarkFig5a(b *testing.B) { reportFigure(b, bench.Fig5a) }
func BenchmarkFig5b(b *testing.B) { reportFigure(b, bench.Fig5b) }
func BenchmarkFig5c(b *testing.B) { reportFigure(b, bench.Fig5c) }
func BenchmarkFig5d(b *testing.B) { reportFigure(b, bench.Fig5d) }
func BenchmarkFig5e(b *testing.B) { reportFigure(b, bench.Fig5e) }
func BenchmarkFig5f(b *testing.B) { reportFigure(b, bench.Fig5f) }
func BenchmarkFig5g(b *testing.B) { reportFigure(b, bench.Fig5g) }
func BenchmarkFig5h(b *testing.B) { reportFigure(b, bench.Fig5h) }
func BenchmarkFig5i(b *testing.B) { reportFigure(b, bench.Fig5i) }
func BenchmarkFig5j(b *testing.B) { reportFigure(b, bench.Fig5j) }
func BenchmarkFig5k(b *testing.B) { reportFigure(b, bench.Fig5k) }
func BenchmarkFig5l(b *testing.B) { reportFigure(b, bench.Fig5l) }

func BenchmarkFig4(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = bench.Fig4(bench.ScaleSmall)
	}
	if out == "" {
		b.Fatal("empty case study")
	}
}

func BenchmarkLambda(b *testing.B)         { reportFigure(b, bench.Lambda) }
func BenchmarkAblationBounds(b *testing.B) { reportFigure(b, bench.AblationBounds) }
func BenchmarkAblationShape(b *testing.B)  { reportFigure(b, bench.AblationShape) }
func BenchmarkMRScaleTrend(b *testing.B)   { reportFigure(b, bench.MRScale) }

// Sequential-vs-parallel benchmarks. The pair
// BenchmarkBuildCandidatesSequential / BenchmarkBuildCandidatesParallel (and
// likewise the TopKDiv pair) measures the same deterministic computation on
// a 150k-node generator graph with one worker versus all cores; on a >= 4
// core machine the parallel variant should win by well over 1.5x. See also
// BenchmarkParallelScaling for the full worker-count sweep.

var parallelBenchState struct {
	once sync.Once
	g    *Graph
	q    *Pattern
	gg   *graph.Graph
	pp   *pattern.Pattern
}

// parallelBenchInputs generates (once) the large graph and pattern shared by
// the sequential-vs-parallel benchmarks.
func parallelBenchInputs(b *testing.B) (*Graph, *Pattern, *graph.Graph, *pattern.Pattern) {
	b.Helper()
	s := &parallelBenchState
	s.once.Do(func() {
		s.g = NewYouTubeLike(150_000, 750_000, 1)
		q, err := GeneratePattern(s.g, 6, 10, true, true, 5)
		if err != nil {
			panic(err)
		}
		s.q = q
		s.gg = s.g.Unwrap().(*graph.Graph)
		s.pp = q.UnwrapPattern().(*pattern.Pattern)
	})
	return s.g, s.q, s.gg, s.pp
}

func benchBuildCandidates(b *testing.B, workers int) {
	_, _, gg, pp := parallelBenchInputs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ci := simulation.BuildCandidatesParallel(gg, pp, workers)
		if ci.NumPairs() == 0 {
			b.Fatal("no candidates")
		}
	}
}

func BenchmarkBuildCandidatesSequential(b *testing.B) { benchBuildCandidates(b, 1) }
func BenchmarkBuildCandidatesParallel(b *testing.B)   { benchBuildCandidates(b, 0) }

func benchTopKDiv(b *testing.B, workers int) {
	g, q, _, _ := parallelBenchInputs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TopKDiversified(g, q, 10, 0.5, WithApproximation(), Parallelism(workers)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopKDivSequential(b *testing.B) { benchTopKDiv(b, 1) }
func BenchmarkTopKDivParallel(b *testing.B)   { benchTopKDiv(b, 0) }

// BenchmarkParallelScaling runs the harness's worker-count sweep (see
// internal/bench.ParallelScaling) and reports the parallel speedups as
// metrics.
func BenchmarkParallelScaling(b *testing.B) { reportFigure(b, bench.ParallelScaling) }

// BenchmarkBatchTopK measures Matcher.BatchTopK throughput: many concurrent
// queries sharing one warmed session, the serving-path scenario.
func BenchmarkBatchTopK(b *testing.B) {
	g := NewYouTubeLike(12_000, 120_000, 1)
	var patterns []*Pattern
	for seed := int64(1); seed <= 16; seed++ {
		q, err := GeneratePattern(g, 4, 8, true, true, seed)
		if err != nil {
			b.Fatal(err)
		}
		patterns = append(patterns, q)
	}
	m := NewMatcher(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.BatchTopK(patterns, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryTopK measures a single early-termination query end to end
// on a prebuilt graph (the per-query latency a library user sees).
func BenchmarkQueryTopK(b *testing.B) {
	g := NewYouTubeLike(12_000, 120_000, 1)
	q, err := GeneratePattern(g, 4, 8, true, true, 5)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := TopK(g, q, 10); err != nil { // warm the bound cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TopK(g, q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryBaseline is the find-all counterpart of BenchmarkQueryTopK.
func BenchmarkQueryBaseline(b *testing.B) {
	g := NewYouTubeLike(12_000, 120_000, 1)
	q, err := GeneratePattern(g, 4, 8, true, true, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TopK(g, q, 10, WithBaseline()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryDiversified measures the diversified heuristic end to end.
func BenchmarkQueryDiversified(b *testing.B) {
	g := NewYouTubeLike(12_000, 120_000, 1)
	q, err := GeneratePattern(g, 4, 8, true, true, 5)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := TopKDiversified(g, q, 10, 0.5); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TopKDiversified(g, q, 10, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}
