package snapshot

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"divtopk/internal/fsx"
	"divtopk/internal/graph"
)

// chain returns versions 0..n of a small update lineage.
func chain(t *testing.T, n int) []*graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	b.AddNode("A", map[string]graph.Value{"R": graph.IntValue(1)})
	b.AddNode("B", nil)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	gs := []*graph.Graph{b.Build()}
	for i := 0; i < n; i++ {
		d := &graph.Delta{}
		d.AddNode("C", nil)
		d.InsertEdge(graph.NodeID(gs[i].NumNodes()), 0)
		g, err := graph.ApplyDelta(gs[i], d)
		if err != nil {
			t.Fatal(err)
		}
		gs = append(gs, g)
	}
	return gs
}

func TestWriteLoadNewest(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	fs := fsx.OS()
	gs := chain(t, 3)
	for _, g := range gs {
		if _, err := Write(fs, dir, g); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Load(fs, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Version() != 3 {
		t.Fatalf("loaded version = %v, want 3", got)
	}
	if got.NumNodes() != gs[3].NumNodes() || got.NumEdges() != gs[3].NumEdges() {
		t.Fatalf("loaded shape = (%d,%d), want (%d,%d)",
			got.NumNodes(), got.NumEdges(), gs[3].NumNodes(), gs[3].NumEdges())
	}
}

func TestLoadEmptyAndMissingDir(t *testing.T) {
	t.Parallel()
	fs := fsx.OS()
	g, err := Load(fs, t.TempDir())
	if g != nil || err != nil {
		t.Fatalf("empty dir = (%v, %v), want (nil, nil)", g, err)
	}
	g, err = Load(fs, filepath.Join(t.TempDir(), "absent"))
	if g != nil || err != nil {
		t.Fatalf("missing dir = (%v, %v), want (nil, nil)", g, err)
	}
}

// TestLoadFallsBackPastCorrupt damages the newest checkpoint (torn tail and
// garbage) and expects recovery to land on the next older valid one.
func TestLoadFallsBackPastCorrupt(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	fs := fsx.OS()
	gs := chain(t, 2)
	for _, g := range gs {
		if _, err := Write(fs, dir, g); err != nil {
			t.Fatal(err)
		}
	}
	newest := filepath.Join(dir, Name(2))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(fs, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version() != 1 {
		t.Fatalf("fell back to version %d, want 1", got.Version())
	}
}

// TestLoadAllCorruptIsError: when checkpoints exist but none loads, recovery
// must fail loudly instead of booting an empty graph over real data.
func TestLoadAllCorruptIsError(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	fs := fsx.OS()
	if err := os.WriteFile(filepath.Join(dir, Name(5)), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(fs, dir); err == nil {
		t.Fatal("all-corrupt directory loaded without error")
	}
}

// TestVersionNameMismatchIsCorrupt: a checkpoint renamed to the wrong version
// must not be trusted.
func TestVersionNameMismatchIsCorrupt(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	fs := fsx.OS()
	gs := chain(t, 1)
	if _, err := Write(fs, dir, gs[0]); err != nil {
		t.Fatal(err)
	}
	// Masquerade version 0 as version 7.
	if err := os.Rename(filepath.Join(dir, Name(0)), filepath.Join(dir, Name(7))); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(fs, dir); err == nil || !strings.Contains(err.Error(), "holds version") {
		t.Fatalf("mismatched checkpoint error = %v", err)
	}
}

// TestWriteCrashLeavesNoFinalFile: a crash mid-write leaves only a tmp file,
// which Load ignores and GC reaps.
func TestWriteCrashLeavesNoFinalFile(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	fault := fsx.NewFault(fsx.OS())
	gs := chain(t, 0)
	fault.CrashAfter(10)
	if _, err := Write(fault, dir, gs[0]); err == nil {
		t.Fatal("crashing write succeeded")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), tmpSuffix) {
			t.Fatalf("crash left non-tmp file %q", e.Name())
		}
	}
	fs := fsx.OS()
	if g, err := Load(fs, dir); g != nil || err != nil {
		t.Fatalf("load after crashed write = (%v, %v), want (nil, nil)", g, err)
	}
	if err := GC(fs, dir, 0); err != nil {
		t.Fatal(err)
	}
	entries, err = os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("GC left %d files", len(entries))
	}
}

func TestGCKeepsNewest(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	fs := fsx.OS()
	for _, g := range chain(t, 3) {
		if _, err := Write(fs, dir, g); err != nil {
			t.Fatal(err)
		}
	}
	if err := GC(fs, dir, 3); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != Name(3) {
		t.Fatalf("GC kept %v, want only %s", entries, Name(3))
	}
	g, err := Load(fs, dir)
	if err != nil || g.Version() != 3 {
		t.Fatalf("load after GC = (%v, %v)", g, err)
	}
}
