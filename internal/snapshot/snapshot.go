// Package snapshot persists graph snapshots as binary CSR checkpoint files
// and recovers the newest valid one. The byte format itself (and its CRC
// validation) lives in internal/graph (WriteBinary/ReadBinary); this package
// owns only the file discipline around it:
//
//   - Checkpoints are published atomically: written to a *.tmp sibling,
//     fsynced, renamed into place, and the directory fsynced — a crash at any
//     point leaves either the previous complete file set or the new one,
//     never a half-written checkpoint under the final name.
//   - Files are named checkpoint-<version>.ckpt with the version zero-padded
//     hex, so lexical order is version order.
//   - Recovery walks checkpoints newest-first and falls back past corrupt or
//     torn files (a crash mid-rename can leave a stale tmp, and a crash
//     mid-write a truncated tmp; both are ignored and reaped by GC).
package snapshot

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"divtopk/internal/fsx"
	"divtopk/internal/graph"
)

const (
	prefix    = "checkpoint-"
	suffix    = ".ckpt"
	tmpSuffix = ".tmp"
)

// Name returns the checkpoint file name for a snapshot version.
func Name(version uint64) string {
	return fmt.Sprintf("%s%016x%s", prefix, version, suffix)
}

// parseName extracts the version from a checkpoint file name.
func parseName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := name[len(prefix) : len(name)-len(suffix)]
	if len(hex) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Write atomically publishes a checkpoint of g into dir and returns its
// final path. On any error the final name is never created; a leftover tmp
// file may remain and is ignored by Load and removed by GC.
func Write(fs fsx.FS, dir string, g *graph.Graph) (string, error) {
	data := graph.WriteBinary(g)
	final := filepath.Join(dir, Name(g.Version()))
	tmp := final + tmpSuffix
	f, err := fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", fmt.Errorf("snapshot: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return "", fmt.Errorf("snapshot: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return "", fmt.Errorf("snapshot: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("snapshot: close %s: %w", tmp, err)
	}
	if err := fs.Rename(tmp, final); err != nil {
		return "", fmt.Errorf("snapshot: publish %s: %w", final, err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return "", fmt.Errorf("snapshot: sync dir %s: %w", dir, err)
	}
	return final, nil
}

// versions lists the checkpoint versions present in dir, ascending.
func versions(fs fsx.FS, dir string) ([]uint64, error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	var vs []uint64
	for _, e := range entries {
		if v, ok := parseName(e.Name()); ok {
			vs = append(vs, v)
		}
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs, nil
}

// Load recovers the newest valid checkpoint in dir. Corrupt or unreadable
// checkpoints are skipped in favor of older ones; a checkpoint whose
// serialized version disagrees with its file name counts as corrupt. Returns
// (nil, nil) when dir holds no valid checkpoint at all.
func Load(fs fsx.FS, dir string) (*graph.Graph, error) {
	vs, err := versions(fs, dir)
	if err != nil {
		return nil, err
	}
	var lastErr error
	for i := len(vs) - 1; i >= 0; i-- {
		path := filepath.Join(dir, Name(vs[i]))
		data, err := fs.ReadFile(path)
		if err != nil {
			lastErr = fmt.Errorf("snapshot: %w", err)
			continue
		}
		g, err := graph.ReadBinary(data)
		if err != nil {
			lastErr = fmt.Errorf("snapshot: %s: %w", path, err)
			continue
		}
		if g.Version() != vs[i] {
			lastErr = fmt.Errorf("snapshot: %s holds version %d", path, g.Version())
			continue
		}
		return g, nil
	}
	if len(vs) > 0 {
		// Every present checkpoint failed to load: surface why, rather than
		// silently booting empty over data the operator meant to keep.
		return nil, lastErr
	}
	return nil, nil
}

// GC removes checkpoints older than keep and any leftover tmp files. Errors
// are aggregated but non-fatal to the caller's progress: the next GC retries.
func GC(fs fsx.FS, dir string, keep uint64) error {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("snapshot: %w", err)
	}
	var errs []error
	for _, e := range entries {
		name := e.Name()
		stale := strings.HasPrefix(name, prefix) && strings.HasSuffix(name, tmpSuffix)
		if v, ok := parseName(name); ok && v < keep {
			stale = true
		}
		if stale {
			if err := fs.Remove(filepath.Join(dir, name)); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}
