package ranking

import (
	"errors"
	"math"
	"testing"

	"divtopk/internal/bitset"
	"divtopk/internal/graph"
	"divtopk/internal/pattern"
	"divtopk/internal/simulation"
	"divtopk/internal/testutil"
)

const eps = 1e-12

// figure1Sets returns the relevant sets of the four PM matches of Fig. 1,
// keyed by name, over the 11-node relevant universe.
func figure1Sets(t *testing.T) (map[string]*bitset.Set, DiversifyParams) {
	t.Helper()
	g, id := testutil.Figure1()
	p := testutil.Figure1Pattern()
	ci := simulation.BuildCandidates(g, p)
	prod := simulation.BuildProduct(g, p, ci, 1)
	res := simulation.ComputeWithProduct(prod)
	an := pattern.Analyze(p)
	space := simulation.BuildRelSpace(g, p, res.CI, an)
	rel := simulation.ComputeRelevant(prod, an, space, res.InSim, p.Output(), true, 1)
	lo, _ := res.CI.PairRange(p.Output())
	sets := map[string]*bitset.Set{}
	for _, name := range []string{"PM1", "PM2", "PM3", "PM4"} {
		sets[name] = rel.Sets[res.CI.Pair(p.Output(), id[name])-lo]
		if sets[name] == nil {
			t.Fatalf("missing set for %s", name)
		}
	}
	params := DiversifyParams{Lambda: 0.5, K: 2, Cuo: simulation.Cuo(p, res.CI, an)}
	return sets, params
}

func TestExample5Distances(t *testing.T) {
	sets, _ := figure1Sets(t)
	cases := []struct {
		a, b string
		want float64
	}{
		{"PM3", "PM4", 0},
		{"PM1", "PM2", 10.0 / 11.0},
		{"PM2", "PM3", 1.0 / 4.0},
		{"PM1", "PM3", 1},
	}
	for _, c := range cases {
		got := Distance(sets[c.a], sets[c.b])
		if math.Abs(got-c.want) > eps {
			t.Errorf("δd(%s,%s) = %v, want %v (Example 5)", c.a, c.b, got, c.want)
		}
		// Symmetry.
		if got != Distance(sets[c.b], sets[c.a]) {
			t.Errorf("δd not symmetric for (%s,%s)", c.a, c.b)
		}
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	sets, _ := figure1Sets(t)
	names := []string{"PM1", "PM2", "PM3", "PM4"}
	for _, a := range names {
		for _, b := range names {
			for _, c := range names {
				if Distance(sets[a], sets[b]) > Distance(sets[a], sets[c])+Distance(sets[c], sets[b])+eps {
					t.Fatalf("triangle inequality violated for %s,%s,%s", a, b, c)
				}
			}
		}
	}
}

// fOf evaluates F on a 2-set by name using the Fig. 1 fixture.
func fOf(t *testing.T, sets map[string]*bitset.Set, params DiversifyParams, a, b string) float64 {
	t.Helper()
	return params.FSets([]*bitset.Set{sets[a], sets[b]})
}

func TestExample6LambdaRegimes(t *testing.T) {
	sets, params := figure1Sets(t)
	if params.Cuo != 11 {
		t.Fatalf("Cuo = %d, want 11", params.Cuo)
	}
	best := func(lambda float64) []string {
		params.Lambda = lambda
		names := []string{"PM1", "PM2", "PM3", "PM4"}
		bestV := math.Inf(-1)
		var bestSet []string
		for i := 0; i < len(names); i++ {
			for j := i + 1; j < len(names); j++ {
				v := fOf(t, sets, params, names[i], names[j])
				if v > bestV+eps {
					bestV = v
					bestSet = []string{names[i], names[j]}
				}
			}
		}
		return bestSet
	}
	has := func(s []string, names ...string) bool {
		m := map[string]bool{}
		for _, x := range s {
			m[x] = true
		}
		for _, n := range names {
			if !m[n] {
				return false
			}
		}
		return true
	}

	// (a) λ=0: {PM2,PM3} (ties with {PM2,PM4} broken by iteration order are
	// acceptable; both have identical F).
	if s := best(0); !has(s, "PM2") {
		t.Errorf("λ=0 best = %v, want a set containing PM2", s)
	}
	params.Lambda = 0
	if math.Abs(fOf(t, sets, params, "PM2", "PM3")-14.0/11.0) > eps {
		t.Errorf("F({PM2,PM3}) at λ=0 = %v, want 14/11", fOf(t, sets, params, "PM2", "PM3"))
	}
	// (b) λ=1: {PM1,PM3} (F=2·δd=2; {PM1,PM4} ties).
	params.Lambda = 1
	if math.Abs(fOf(t, sets, params, "PM1", "PM3")-2.0) > eps {
		t.Errorf("F({PM1,PM3}) at λ=1 = %v, want 2", fOf(t, sets, params, "PM1", "PM3"))
	}
	// (c) 4/33 < λ < 0.5: {PM1,PM2}.
	if s := best(0.3); !has(s, "PM1", "PM2") {
		t.Errorf("λ=0.3 best = %v, want {PM1,PM2}", s)
	}
	// (d) λ <= 4/33: {PM2,PM3}.
	if s := best(0.1); !has(s, "PM2", "PM3") && !has(s, "PM2", "PM4") {
		t.Errorf("λ=0.1 best = %v, want {PM2,PM3} (Example 6d)", s)
	}
	// (e) λ >= 0.5 (strictly above to dodge the exact tie at 0.5): {PM1,PM3}.
	if s := best(0.6); !has(s, "PM1", "PM3") && !has(s, "PM1", "PM4") {
		t.Errorf("λ=0.6 best = %v, want {PM1,PM3}", s)
	}

	// Boundary identities: at λ = 4/33 the two regimes tie exactly, and at
	// λ = 0.5 {PM1,PM2} ties {PM1,PM3} at F = 16/11.
	params.Lambda = 4.0 / 33.0
	if math.Abs(fOf(t, sets, params, "PM2", "PM3")-fOf(t, sets, params, "PM1", "PM2")) > eps {
		t.Error("λ=4/33 should tie {PM2,PM3} with {PM1,PM2} (Example 6)")
	}
	params.Lambda = 0.5
	f12 := fOf(t, sets, params, "PM1", "PM2")
	f13 := fOf(t, sets, params, "PM1", "PM3")
	if math.Abs(f12-16.0/11.0) > eps || math.Abs(f13-16.0/11.0) > eps {
		t.Errorf("λ=0.5: F(PM1,PM2)=%v F(PM1,PM3)=%v, want both 16/11", f12, f13)
	}
}

func TestExample9FPrime(t *testing.T) {
	sets, params := figure1Sets(t)
	params.Lambda = 0.5
	nr := func(n string) float64 { return params.NormRel(Relevance(sets[n])) }
	got := params.FPrime(nr("PM1"), nr("PM3"), Distance(sets["PM1"], sets["PM3"]))
	if math.Abs(got-16.0/11.0) > eps { // 1.4545... printed as 1.45 in the paper
		t.Errorf("F'(PM1,PM3) = %v, want 16/11 ≈ 1.45 (Example 9)", got)
	}
	// F'(PM1,PM2) ties at 16/11 (the paper reports only the winner).
	got2 := params.FPrime(nr("PM1"), nr("PM2"), Distance(sets["PM1"], sets["PM2"]))
	if math.Abs(got2-16.0/11.0) > eps {
		t.Errorf("F'(PM1,PM2) = %v, want 16/11", got2)
	}
}

func TestFPrimeSumIdentity(t *testing.T) {
	// Σ_{i<j} F'(vi,vj) over a k-set equals F(S) (§5.1's reduction).
	sets, params := figure1Sets(t)
	names := []string{"PM1", "PM2", "PM3", "PM4"}
	params.K = 4
	params.Lambda = 0.37
	nr := make([]float64, len(names))
	ss := make([]*bitset.Set, len(names))
	for i, n := range names {
		ss[i] = sets[n]
		nr[i] = params.NormRel(Relevance(sets[n]))
	}
	sum := 0.0
	for i := range names {
		for j := i + 1; j < len(names); j++ {
			sum += params.FPrime(nr[i], nr[j], Distance(ss[i], ss[j]))
		}
	}
	if f := params.FSets(ss); math.Abs(sum-f) > 1e-9 {
		t.Fatalf("Σ F' = %v but F(S) = %v", sum, f)
	}
}

func TestK1Degenerate(t *testing.T) {
	sets, params := figure1Sets(t)
	params.K = 1
	params.Lambda = 0.5
	f := params.FSets([]*bitset.Set{sets["PM2"]})
	want := 0.5 * 8.0 / 11.0
	if math.Abs(f-want) > eps {
		t.Fatalf("k=1 F = %v, want %v (pure normalized relevance)", f, want)
	}
}

func TestValidate(t *testing.T) {
	if err := (DiversifyParams{Lambda: -0.1, K: 2}).Validate(); err == nil {
		t.Error("negative lambda accepted")
	}
	if err := (DiversifyParams{Lambda: 1.1, K: 2}).Validate(); err == nil {
		t.Error("lambda > 1 accepted")
	}
	if err := (DiversifyParams{Lambda: 0.5, K: 0}).Validate(); err == nil {
		t.Error("k = 0 accepted")
	}
	if err := (DiversifyParams{Lambda: 0.5, K: 2}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	// NaN fails both sides of "< 0 || > 1"; the regression pins that it is
	// rejected with the structured sentinel rather than flowing into F.
	err := (DiversifyParams{Lambda: math.NaN(), K: 2}).Validate()
	if err == nil {
		t.Error("NaN lambda accepted")
	} else if !errors.Is(err, ErrLambdaRange) {
		t.Errorf("NaN lambda error = %v, want errors.Is(_, ErrLambdaRange)", err)
	}
	for _, inf := range []float64{math.Inf(1), math.Inf(-1)} {
		if err := (DiversifyParams{Lambda: inf, K: 2}).Validate(); !errors.Is(err, ErrLambdaRange) {
			t.Errorf("lambda %v: err = %v, want ErrLambdaRange", inf, err)
		}
	}
	if err := (DiversifyParams{Lambda: 0.5, K: 0}).Validate(); !errors.Is(err, ErrKRange) {
		t.Errorf("k=0 err not ErrKRange")
	}
	// The boundary values stay legal.
	for _, l := range []float64{0, 1} {
		if err := (DiversifyParams{Lambda: l, K: 1}).Validate(); err != nil {
			t.Errorf("lambda %v rejected: %v", l, err)
		}
	}
}

func TestZeroCuo(t *testing.T) {
	p := DiversifyParams{Lambda: 0.5, K: 2, Cuo: 0}
	if p.NormRel(5) != 0 {
		t.Fatal("zero Cuo should normalize to 0")
	}
}

func TestGeneralizedRelevanceFuncs(t *testing.T) {
	r := bitset.New(10)
	r.Add(1)
	r.Add(2)
	r.Add(3)
	m := bitset.New(10)
	m.Add(2)
	m.Add(3)
	m.Add(4)
	m.Add(5)
	in := RelevanceInput{RSet: r, DescQueryNodes: 3, DescMatches: m}

	if got := (RelSetSize{}).Score(in); got != 3 {
		t.Errorf("RelSetSize = %v", got)
	}
	if got := (PreferenceAttachment{}).Score(in); got != 9 {
		t.Errorf("PreferenceAttachment = %v, want 9", got)
	}
	if got := (CommonNeighbors{}).Score(in); got != 2 {
		t.Errorf("CommonNeighbors = %v, want 2", got)
	}
	if got := (JaccardCoefficient{}).Score(in); math.Abs(got-2.0/5.0) > eps {
		t.Errorf("JaccardCoefficient = %v, want 0.4", got)
	}
}

func TestGeneralizedDistanceFuncs(t *testing.T) {
	r1 := bitset.New(10)
	r1.Add(1)
	r1.Add(2)
	r2 := bitset.New(10)
	r2.Add(2)
	r2.Add(3)

	in := DistanceInput{R1: r1, R2: r2, NumNodes: 10}
	if got := (RelSetJaccard{}).Dist(in); math.Abs(got-(1-1.0/3.0)) > eps {
		t.Errorf("RelSetJaccard = %v", got)
	}
	if got := (NeighborhoodDiversity{}).Dist(in); math.Abs(got-0.9) > eps {
		t.Errorf("NeighborhoodDiversity = %v, want 0.9", got)
	}

	// Distance diversity over a path 0 -> 1 -> 2.
	b := graph.NewBuilder()
	for i := 0; i < 3; i++ {
		b.AddNode("a", nil)
	}
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	dd := DistanceDiversity{}
	if got := dd.Dist(DistanceInput{V1: 0, V2: 2, Graph: g}); math.Abs(got-0.5) > eps {
		t.Errorf("DistanceDiversity(0,2) = %v, want 0.5 (d=2)", got)
	}
	if got := dd.Dist(DistanceInput{V1: 2, V2: 0, Graph: g}); got != 1 {
		t.Errorf("DistanceDiversity(2,0) = %v, want 1 (unreachable)", got)
	}
	if got := dd.Dist(DistanceInput{V1: 1, V2: 1, Graph: g}); got != 0 {
		t.Errorf("DistanceDiversity(1,1) = %v, want 0", got)
	}
	if got := dd.Dist(DistanceInput{V1: 0, V2: 1, Graph: g}); got != 0 {
		t.Errorf("DistanceDiversity(0,1) = %v, want 0 (d=1 → 1-1/1)", got)
	}
}

func TestRegistries(t *testing.T) {
	for _, n := range RelevanceNames() {
		if _, err := RelevanceByName(n); err != nil {
			t.Errorf("RelevanceByName(%q): %v", n, err)
		}
	}
	for _, n := range DistanceNames() {
		if _, err := DistanceByName(n); err != nil {
			t.Errorf("DistanceByName(%q): %v", n, err)
		}
	}
	if _, err := RelevanceByName("nope"); err == nil {
		t.Error("unknown relevance name accepted")
	}
	if _, err := DistanceByName("nope"); err == nil {
		t.Error("unknown distance name accepted")
	}
	if len(RelevanceNames()) != 4 || len(DistanceNames()) != 3 {
		t.Errorf("registry sizes: %d relevance, %d distance", len(RelevanceNames()), len(DistanceNames()))
	}
}
