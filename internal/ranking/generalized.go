package ranking

import (
	"fmt"
	"sort"

	"divtopk/internal/bitset"
	"divtopk/internal/graph"
)

// This file implements the generalized relevance and distance functions of
// §3.4. Each concrete function from the paper's table is provided:
//
//	relevance: relevant-set size (default δr), preference attachment [24],
//	           common neighbours [22], Jaccard coefficient [28]
//	distance:  relevant-set Jaccard (default δd), neighbourhood diversity
//	           [23], distance-based diversity [36]
//
// A RelevanceInput packages the quantities the formulations are defined
// over: R(u) (the descendant query nodes of u), R*(u,v) (the generalized
// relevant set of v), and M(Q,G,R(u)) (the matches of the descendant query
// nodes). All functions are monotonically increasing PTIME functions of
// their set arguments, as §3.4 requires.

// RelevanceInput carries the per-match quantities of §3.4.
type RelevanceInput struct {
	// RSet is R*(u,v) over the relevant universe.
	RSet *bitset.Set
	// DescQueryNodes is |R(u)|: the number of query nodes u reaches.
	DescQueryNodes int
	// DescMatches is M(Q,G,R(u)) over the same universe: the union of the
	// matches of u's descendant query nodes.
	DescMatches *bitset.Set
}

// RelevanceFunc scores one match; higher is more relevant.
type RelevanceFunc interface {
	Name() string
	Score(in RelevanceInput) float64
}

// DistanceInput carries the per-pair quantities for generalized distances.
type DistanceInput struct {
	R1, R2 *bitset.Set
	V1, V2 graph.NodeID
	// NumNodes is |V| of the data graph (neighbourhood diversity divides by
	// it).
	NumNodes int
	// Graph gives distance-based diversity access to BFS; nil for functions
	// that do not need it.
	Graph *graph.Graph
}

// DistanceFunc measures dissimilarity of two matches; must be a metric for
// TopKDiv's approximation guarantee to carry over (all functions below are).
type DistanceFunc interface {
	Name() string
	Dist(in DistanceInput) float64
}

// --- relevance functions ---

// RelSetSize is the paper's default δr(u,v) = |R*(u,v)|.
type RelSetSize struct{}

// Name implements RelevanceFunc.
func (RelSetSize) Name() string { return "relevant-set-size" }

// Score implements RelevanceFunc.
func (RelSetSize) Score(in RelevanceInput) float64 { return float64(in.RSet.Count()) }

// PreferenceAttachment is |R(u)| · |R*(u,v)| [24].
type PreferenceAttachment struct{}

// Name implements RelevanceFunc.
func (PreferenceAttachment) Name() string { return "preference-attachment" }

// Score implements RelevanceFunc.
func (PreferenceAttachment) Score(in RelevanceInput) float64 {
	return float64(in.DescQueryNodes) * float64(in.RSet.Count())
}

// CommonNeighbors is |M(Q,G,R(u)) ∩ R*(u,v)| [22].
type CommonNeighbors struct{}

// Name implements RelevanceFunc.
func (CommonNeighbors) Name() string { return "common-neighbors" }

// Score implements RelevanceFunc.
func (CommonNeighbors) Score(in RelevanceInput) float64 {
	return float64(in.DescMatches.IntersectCount(in.RSet))
}

// JaccardCoefficient is |M(Q,G,R(u)) ∩ R*| / |M(Q,G,R(u)) ∪ R*| [28].
type JaccardCoefficient struct{}

// Name implements RelevanceFunc.
func (JaccardCoefficient) Name() string { return "jaccard-coefficient" }

// Score implements RelevanceFunc.
func (JaccardCoefficient) Score(in RelevanceInput) float64 {
	return bitset.Jaccard(in.DescMatches, in.RSet)
}

// --- distance functions ---

// RelSetJaccard is the paper's default δd = 1 − |R1∩R2|/|R1∪R2|.
type RelSetJaccard struct{}

// Name implements DistanceFunc.
func (RelSetJaccard) Name() string { return "relevant-set-jaccard" }

// Dist implements DistanceFunc.
func (RelSetJaccard) Dist(in DistanceInput) float64 { return Distance(in.R1, in.R2) }

// NeighborhoodDiversity is 1 − |R*(u,v1) ∩ R*(u,v2)| / |V| [23].
type NeighborhoodDiversity struct{}

// Name implements DistanceFunc.
func (NeighborhoodDiversity) Name() string { return "neighborhood-diversity" }

// Dist implements DistanceFunc.
func (NeighborhoodDiversity) Dist(in DistanceInput) float64 {
	if in.NumNodes == 0 {
		return 1
	}
	return 1 - float64(in.R1.IntersectCount(in.R2))/float64(in.NumNodes)
}

// DistanceDiversity is 1 − 1/d(v1,v2), or 1 when d = ∞ [36]. d is the
// directed shortest-path distance; d(v,v) = 0 yields distance 0 so the
// function stays a metric on distinct matches. Requires DistanceInput.Graph.
type DistanceDiversity struct{}

// Name implements DistanceFunc.
func (DistanceDiversity) Name() string { return "distance-diversity" }

// Dist implements DistanceFunc.
func (DistanceDiversity) Dist(in DistanceInput) float64 {
	if in.V1 == in.V2 {
		return 0
	}
	d := graph.Distance(in.Graph, in.V1, in.V2)
	if d <= 0 {
		return 1
	}
	return 1 - 1/float64(d)
}

// Registries so CLIs and options can select functions by name.

var relevanceFuncs = map[string]RelevanceFunc{
	RelSetSize{}.Name():           RelSetSize{},
	PreferenceAttachment{}.Name(): PreferenceAttachment{},
	CommonNeighbors{}.Name():      CommonNeighbors{},
	JaccardCoefficient{}.Name():   JaccardCoefficient{},
}

var distanceFuncs = map[string]DistanceFunc{
	RelSetJaccard{}.Name():         RelSetJaccard{},
	NeighborhoodDiversity{}.Name(): NeighborhoodDiversity{},
	DistanceDiversity{}.Name():     DistanceDiversity{},
}

// RelevanceByName returns the registered relevance function with that name.
func RelevanceByName(name string) (RelevanceFunc, error) {
	f, ok := relevanceFuncs[name]
	if !ok {
		return nil, fmt.Errorf("ranking: unknown relevance function %q (have %v)", name, RelevanceNames())
	}
	return f, nil
}

// DistanceByName returns the registered distance function with that name.
func DistanceByName(name string) (DistanceFunc, error) {
	f, ok := distanceFuncs[name]
	if !ok {
		return nil, fmt.Errorf("ranking: unknown distance function %q (have %v)", name, DistanceNames())
	}
	return f, nil
}

// RelevanceNames lists the registered relevance functions, sorted.
func RelevanceNames() []string { return sortedKeys(relevanceFuncs) }

// DistanceNames lists the registered distance functions, sorted.
func DistanceNames() []string { return sortedKeys(distanceFuncs) }

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
