// Package ranking implements the ranking machinery of §3: the relevance
// function δr (relevant-set size), the distance function δd (Jaccard
// distance of relevant sets), the bi-criteria diversification function F
// balanced by λ, the pair objective F' used by the 2-approximation TopKDiv,
// and the generalized relevance/distance functions of §3.4.
package ranking

import (
	"errors"
	"fmt"

	"divtopk/internal/bitset"
)

// ErrLambdaRange is the structured error every diversified entry point
// returns for a λ outside [0,1] — including NaN, which no comparison chain
// of the form "< 0 || > 1" catches (NaN fails both sides). Callers match it
// with errors.Is.
var ErrLambdaRange = errors.New("ranking: lambda must be within [0,1]")

// ErrKRange is the structured error for k < 1 in diversification parameters.
var ErrKRange = errors.New("ranking: k must be >= 1")

// Relevance returns δr(u,v) = |R(u,v)| given a relevant set.
func Relevance(r *bitset.Set) float64 { return float64(r.Count()) }

// Distance returns δd(v1,v2) = 1 − |R1 ∩ R2| / |R1 ∪ R2| (§3.2). Two empty
// sets have distance 0: matches with identical (empty) impact are
// indistinguishable. δd is a metric (symmetric, triangle inequality), which
// the 2-approximation of TopKDiv relies on.
func Distance(r1, r2 *bitset.Set) float64 { return 1 - bitset.Jaccard(r1, r2) }

// DiversifyParams carries the fixed inputs of the diversification function:
// the user balance λ ∈ [0,1], the requested k, and the normalization
// constant C_uo of §3.3 (total candidates of the output node's descendant
// query nodes).
type DiversifyParams struct {
	Lambda float64
	K      int
	Cuo    int
}

// Validate checks the parameter ranges. The λ check is written as a negated
// conjunction so that NaN — for which both λ < 0 and λ > 1 are false — is
// rejected rather than silently poisoning every F value downstream.
func (p DiversifyParams) Validate() error {
	if !(p.Lambda >= 0 && p.Lambda <= 1) {
		return fmt.Errorf("%w (got %v)", ErrLambdaRange, p.Lambda)
	}
	if p.K < 1 {
		return fmt.Errorf("%w (got %d)", ErrKRange, p.K)
	}
	return nil
}

// NormRel returns δ'r = δr / C_uo, the normalized relevance of §3.3. With an
// empty candidate space (C_uo = 0) every relevance is 0.
func (p DiversifyParams) NormRel(rel float64) float64 {
	if p.Cuo == 0 {
		return 0
	}
	return rel / float64(p.Cuo)
}

// diversityScale returns 2λ/(k−1), the scaling of the pairwise distance sum.
// For k = 1 the distance sum is empty and the scale is irrelevant; 0 keeps
// F well-defined (F degenerates to pure normalized relevance).
func (p DiversifyParams) diversityScale() float64 {
	if p.K <= 1 {
		return 0
	}
	return 2 * p.Lambda / float64(p.K-1)
}

// F evaluates the diversification function of §3.3 on a match set S given
// its normalized-relevance values and a pairwise distance callback:
//
//	F(S) = (1−λ) Σ δ'r(uo,vi)  +  2λ/(k−1) Σ_{i<j} δd(vi,vj)
//
// normRel[i] must already be normalized (δr/C_uo); dist(i,j) must be
// symmetric. k is taken from the params, not len(normRel), so partial sets
// evaluate under the same scaling as full ones (as TopKDH's F” does).
func (p DiversifyParams) F(normRel []float64, dist func(i, j int) float64) float64 {
	sum := 0.0
	for _, r := range normRel {
		sum += r
	}
	total := (1 - p.Lambda) * sum
	scale := p.diversityScale()
	if scale != 0 {
		dsum := 0.0
		for i := 0; i < len(normRel); i++ {
			for j := i + 1; j < len(normRel); j++ {
				dsum += dist(i, j)
			}
		}
		total += scale * dsum
	}
	return total
}

// FSets evaluates F on explicit relevant sets: relevance is |set|/C_uo and
// distance is the Jaccard distance. This is the form used on final results.
func (p DiversifyParams) FSets(sets []*bitset.Set) float64 {
	normRel := make([]float64, len(sets))
	for i, s := range sets {
		normRel[i] = p.NormRel(Relevance(s))
	}
	return p.F(normRel, func(i, j int) float64 { return Distance(sets[i], sets[j]) })
}

// FPrime is the pair objective of TopKDiv (§5.1):
//
//	F'(v1,v2) = (1−λ)/(k−1) · (δ'r(v1)+δ'r(v2)) + 2λ/(k−1) · δd(v1,v2)
//
// Selecting k/2 disjoint pairs greedily by F' simulates the 2-approximation
// for maximum dispersion [Hassin-Rubinstein-Tamir]: summing F' over *all*
// C(k,2) pairs of a k-set S gives each member's relevance k−1 times, so
// Σ_{i<j} F'(vi,vj) = F(S) — the reduction identity of §5.1.
func (p DiversifyParams) FPrime(normRel1, normRel2, dist float64) float64 {
	if p.K <= 1 {
		return (1 - p.Lambda) * (normRel1 + normRel2)
	}
	return (1-p.Lambda)/float64(p.K-1)*(normRel1+normRel2) + 2*p.Lambda/float64(p.K-1)*dist
}
