package simulation

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"divtopk/internal/graph"
	"divtopk/internal/pattern"
)

// randomDynGraph builds a random labeled graph for the delta fuzz.
func randomDynGraph(rng *rand.Rand, n, m, labels int, dict *graph.Dict) *graph.Graph {
	b := graph.NewBuilderWithDict(dict)
	for i := 0; i < n; i++ {
		b.AddNode(fmt.Sprintf("L%d", rng.Intn(labels)), nil)
	}
	for i := 0; i < m; i++ {
		_ = b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	return b.Build()
}

// randomDynPattern builds a small random pattern over the same label space.
func randomDynPattern(rng *rand.Rand, labels int) *pattern.Pattern {
	p := pattern.New()
	nq := 2 + rng.Intn(3)
	for i := 0; i < nq; i++ {
		p.AddNode(fmt.Sprintf("L%d", rng.Intn(labels)))
	}
	for tries := 0; tries < 2*nq; tries++ {
		_ = p.AddEdge(rng.Intn(nq), rng.Intn(nq))
	}
	_ = p.SetOutput(rng.Intn(nq))
	return p
}

// randomDelta mines a random delta against g: node appends (sometimes with a
// label the dictionary has not seen), edge inserts (possibly duplicates or
// incident to appended nodes), and deletes of existing edges.
func randomDelta(rng *rand.Rand, g *graph.Graph, labels int) *graph.Delta {
	var d graph.Delta
	n := g.NumNodes()
	for a := rng.Intn(3); a > 0; a-- {
		d.AddNode(fmt.Sprintf("L%d", rng.Intn(labels+1)), nil)
	}
	nNew := n + len(d.NodeAppends)
	for a := rng.Intn(8); a > 0; a-- {
		d.InsertEdge(graph.NodeID(rng.Intn(nNew)), graph.NodeID(rng.Intn(nNew)))
	}
	// Collect up to a few existing edges to delete (not also inserted above:
	// delete-then-insert is legal but makes the delta a no-op for them).
	del := rng.Intn(4)
	for v := graph.NodeID(0); v < graph.NodeID(n) && del > 0; v++ {
		for _, w := range g.Out(v) {
			if rng.Intn(10) != 0 {
				continue
			}
			skip := false
			for _, e := range d.EdgeInserts {
				if e == [2]graph.NodeID{v, w} {
					skip = true
					break
				}
			}
			if !skip {
				d.DeleteEdge(v, w)
				del--
				if del == 0 {
					break
				}
			}
		}
	}
	return &d
}

// assertProductsEqual compares every array of two product CSRs.
func assertProductsEqual(t *testing.T, label string, got, want *Product) {
	t.Helper()
	if !reflect.DeepEqual(got.Base, want.Base) {
		t.Fatalf("%s: Base differs", label)
	}
	if !reflect.DeepEqual(got.SlotOff, want.SlotOff) {
		t.Fatalf("%s: SlotOff differs\ngot  %v\nwant %v", label, got.SlotOff, want.SlotOff)
	}
	if !reflect.DeepEqual(got.Fwd, want.Fwd) {
		t.Fatalf("%s: Fwd differs\ngot  %v\nwant %v", label, got.Fwd, want.Fwd)
	}
	if !reflect.DeepEqual(got.RevOff, want.RevOff) || !reflect.DeepEqual(got.Rev, want.Rev) || !reflect.DeepEqual(got.RevSlot, want.RevSlot) {
		t.Fatalf("%s: reverse CSR differs", label)
	}
}

// assertCandidatesEqual compares two candidate indexes.
func assertCandidatesEqual(t *testing.T, label string, got, want *CandidateIndex) {
	t.Helper()
	if !reflect.DeepEqual(got.Offsets, want.Offsets) {
		t.Fatalf("%s: Offsets %v vs %v", label, got.Offsets, want.Offsets)
	}
	if !reflect.DeepEqual(got.Lists, want.Lists) {
		t.Fatalf("%s: Lists %v vs %v", label, got.Lists, want.Lists)
	}
	if !reflect.DeepEqual(got.U, want.U) || !reflect.DeepEqual(got.V, want.V) {
		t.Fatalf("%s: pair arrays differ", label)
	}
	if !reflect.DeepEqual(got.pos, want.pos) {
		t.Fatalf("%s: pos arrays differ", label)
	}
}

// TestIncComputeDeltaSequenceFuzz is the delta-equivalence fuzz of the
// dynamic-graph subsystem: for every seed, a random (graph, pattern) start
// state advances through a sequence of random deltas, and after every step
// the incrementally maintained candidate index, product CSR and simulation
// fixpoint must be identical to a from-scratch evaluation of the new
// snapshot — at fresh-build worker counts 1 and 8, and under a forced
// incremental path as well as a forced full-recompute path (ratio 0 vs 1),
// which must agree with each other too.
func TestIncComputeDeltaSequenceFuzz(t *testing.T) {
	const labels = 4
	for seed := int64(1); seed <= 12; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dict := graph.NewDict()
			g := randomDynGraph(rng, 24+rng.Intn(30), 90+rng.Intn(120), labels, dict)
			p := randomDynPattern(rng, labels)

			inc := NewIncState(g, p, 1)        // adaptive (default ratio)
			par := NewIncState(g, p, 8)        // adaptive, parallel shards
			forced := NewIncState(g, p, 1)     // never falls back
			recomputed := NewIncState(g, p, 1) // always falls back
			for step := 0; step < 10; step++ {
				d := randomDelta(rng, g, labels)
				gNew, err := graph.ApplyDelta(g, d)
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}

				var stats IncStats
				inc, stats, err = IncCompute(inc, gNew, d, IncOptions{Workers: 1})
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				par, _, err = IncCompute(par, gNew, d, IncOptions{Workers: 8})
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				forced, _, err = IncCompute(forced, gNew, d, IncOptions{Workers: 1, RecomputeRatio: 1})
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				recomputed, _, err = IncCompute(recomputed, gNew, d, IncOptions{Workers: 1, RecomputeRatio: 1e-9})
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				if stats.TotalPairs > 0 && !stats.Recomputed && stats.AffectedPairs == 0 && d.Size() > 0 {
					// Fine: a delta can be entirely outside the candidate
					// space; nothing to assert, just exercise the path.
					_ = stats
				}

				for _, workers := range []int{1, 8} {
					label := fmt.Sprintf("step %d workers %d", step, workers)
					freshCI := BuildCandidatesParallel(gNew, p, workers)
					assertCandidatesEqual(t, label, inc.CI, freshCI)
					freshProd := BuildProduct(gNew, p, freshCI, workers)
					assertProductsEqual(t, label, inc.Prod, freshProd)
					freshRes := ComputeWithProduct(freshProd)
					if !reflect.DeepEqual(inc.Res.InSim, freshRes.InSim) || inc.Res.Matched != freshRes.Matched {
						t.Fatalf("%s: fixpoint differs (matched %v vs %v)", label, inc.Res.Matched, freshRes.Matched)
					}
					// The reference kernel agrees as well (both kernels).
					refRes := ComputeReference(gNew, p, freshCI)
					if !reflect.DeepEqual(inc.Res.InSim, refRes.InSim) || inc.Res.Matched != refRes.Matched {
						t.Fatalf("%s: reference kernel disagrees", label)
					}
				}
				// Forced-incremental and forced-recompute states agree with
				// the adaptive one on everything, counters included (both
				// carry valid alive-pair counters into the next step).
				if !reflect.DeepEqual(forced.Res.InSim, inc.Res.InSim) || !reflect.DeepEqual(recomputed.Res.InSim, inc.Res.InSim) {
					t.Fatalf("step %d: fallback paths disagree", step)
				}
				assertProductsEqual(t, fmt.Sprintf("step %d forced", step), forced.Prod, inc.Prod)
				assertProductsEqual(t, fmt.Sprintf("step %d recomputed", step), recomputed.Prod, inc.Prod)
				// The parallel-shard chain is the Workers=1 oracle, bit for
				// bit: candidates, product, fixpoint and counters.
				assertCandidatesEqual(t, fmt.Sprintf("step %d parallel", step), par.CI, inc.CI)
				assertProductsEqual(t, fmt.Sprintf("step %d parallel", step), par.Prod, inc.Prod)
				if !reflect.DeepEqual(par.Res.InSim, inc.Res.InSim) || par.Res.Matched != inc.Res.Matched {
					t.Fatalf("step %d: parallel chain fixpoint differs", step)
				}
				// Alive pairs must carry identical settled counters on every
				// path (dead pairs' counters are documented garbage).
				for q := 0; q < len(inc.Res.InSim); q++ {
					if !inc.Res.InSim[q] {
						continue
					}
					for s := inc.Prod.Base[q]; s < inc.Prod.Base[q+1]; s++ {
						if inc.cnt[s] != recomputed.cnt[s] || inc.cnt[s] != forced.cnt[s] {
							t.Fatalf("step %d: counter drift at pair %d slot %d: %d / %d / %d",
								step, q, s, inc.cnt[s], forced.cnt[s], recomputed.cnt[s])
						}
					}
				}
				g = gNew
			}
		})
	}
}

// TestIncComputeRejectsMismatchedGraph pins the guard: gNew must be the
// snapshot the delta produces from the state's graph.
func TestIncComputeRejectsMismatchedGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dict := graph.NewDict()
	g := randomDynGraph(rng, 10, 30, 3, dict)
	p := randomDynPattern(rng, 3)
	st := NewIncState(g, p, 1)
	var d graph.Delta
	d.AddNode("L0", nil)
	if _, _, err := IncCompute(st, g, &d, IncOptions{}); err == nil {
		t.Fatal("IncCompute accepted a graph whose node count does not match the delta")
	}
}
