package simulation

import (
	"divtopk/internal/graph"
	"divtopk/internal/pattern"
)

// Result is the maximum simulation relation M(Q,G) of §2.1, represented over
// the candidate pair IDs of a CandidateIndex.
type Result struct {
	CI *CandidateIndex
	// InSim[pair] reports whether the pair survives refinement, i.e. belongs
	// to the maximum relation satisfying the child condition of simulation.
	InSim []bool
	// Matched reports whether G matches Q: every query node has at least one
	// surviving pair. When false, the paper defines M(Q,G) = ∅ and therefore
	// Mu(Q,G,uo) = ∅; InSim is still populated for diagnostics.
	Matched bool
}

// Compute evaluates the maximum simulation of p in g by counting-based
// refinement: every candidate pair starts alive, and a pair (u,v) dies when
// for some query edge (u,u') no successor of v is an alive candidate of u'.
// Each pair keeps one counter per outgoing query edge; the death of a pair
// decrements the counters of its candidate predecessors, cascading in
// O(Σ_(u,u')∈Ep Σ_{v∈can(u')} deg_in(v)) ⊆ O(|Ep||E|) total time — the
// O(|G||Q| + |G|²) bound of the paper with the usual tighter accounting.
func Compute(g *graph.Graph, p *pattern.Pattern) *Result {
	ci := BuildCandidates(g, p)
	return ComputeWithCandidates(g, p, ci)
}

// ComputeWithCandidates is Compute with a prebuilt candidate index, so
// callers that already paid for the index can share it. Callers that also
// want the product CSR afterwards (the baseline shares it with the
// relevant-set kernel) should build it themselves and call
// ComputeWithProduct.
func ComputeWithCandidates(g *graph.Graph, p *pattern.Pattern, ci *CandidateIndex) *Result {
	return ComputeWithProduct(BuildProduct(g, p, ci, 1))
}

// ComputeWithProduct runs the counting-based refinement over a materialized
// product CSR. Per-edge counters are read off the slot ranges (the product
// build already did the successor scan), and the removal cascade walks the
// reverse product edges directly — no ci.Pair lookups, no scans over
// non-candidate neighbours. The fixpoint is unique, so the result is
// identical to the reference kernel's.
func ComputeWithProduct(prod *Product) *Result {
	res, _ := computeWithProductCnt(prod)
	return res
}

// computeWithProductCnt is ComputeWithProduct returning the settled per-slot
// counter array as well. For every pair alive at the fixpoint, cnt[s] is the
// number of alive successors of slot s — the invariant the incremental
// engine (IncCompute) seeds its delta maintenance from. Counters of dead
// pairs are frozen at their death value and are never read back.
func computeWithProductCnt(prod *Product) (*Result, []int32) {
	ci := prod.CI
	nq := len(ci.Lists)
	total := ci.NumPairs()
	inSim := make([]bool, total)
	for i := range inSim {
		inSim[i] = true
	}
	cnt := make([]int32, len(prod.SlotOff)-1)

	// Initialize counters from the slot ranges; a pair with an empty
	// outgoing-edge slot dies immediately.
	var dead []int32
	for q := int32(0); q < int32(total); q++ {
		die := false
		for s := prod.Base[q]; s < prod.Base[q+1]; s++ {
			c := prod.SlotOff[s+1] - prod.SlotOff[s]
			cnt[s] = c
			if c == 0 {
				die = true
			}
		}
		if die {
			inSim[q] = false
			dead = append(dead, q)
		}
	}

	// Cascade removals along reverse product edges.
	for len(dead) > 0 {
		id := dead[len(dead)-1]
		dead = dead[:len(dead)-1]
		for e := prod.RevOff[id]; e < prod.RevOff[id+1]; e++ {
			pid := prod.Rev[e]
			if !inSim[pid] {
				continue
			}
			s := prod.RevSlot[e]
			cnt[s]--
			if cnt[s] == 0 {
				inSim[pid] = false
				dead = append(dead, pid)
			}
		}
	}

	res := &Result{CI: ci, InSim: inSim, Matched: matched(ci, inSim, nq)}
	return res, cnt
}

// matched reports whether every query node retains at least one alive pair
// (the paper's global match condition: M(Q,G) = ∅ otherwise).
func matched(ci *CandidateIndex, inSim []bool, nq int) bool {
	for u := 0; u < nq; u++ {
		lo, hi := ci.PairRange(u)
		any := false
		for id := lo; id < hi; id++ {
			if inSim[id] {
				any = true
				break
			}
		}
		if !any {
			return false
		}
	}
	return true
}

// MatchesOf returns the alive matches of query node u in ascending data-node
// order, or nil when G does not match Q (M(Q,G) = ∅ per §2.1).
func (r *Result) MatchesOf(u int) []graph.NodeID {
	if !r.Matched {
		return nil
	}
	lo, hi := r.CI.PairRange(u)
	out := make([]graph.NodeID, 0, hi-lo)
	for id := lo; id < hi; id++ {
		if r.InSim[id] {
			out = append(out, r.CI.V[id])
		}
	}
	return out
}

// Contains reports whether (u, v) is in M(Q,G).
func (r *Result) Contains(u int, v graph.NodeID) bool {
	if !r.Matched {
		return false
	}
	id := r.CI.Pair(u, v)
	return id >= 0 && r.InSim[id]
}

// NumMatches returns |M(Q,G)|, the total number of matched pairs (0 when G
// does not match Q).
func (r *Result) NumMatches() int {
	if !r.Matched {
		return 0
	}
	n := 0
	for _, ok := range r.InSim {
		if ok {
			n++
		}
	}
	return n
}
