package simulation

import (
	"divtopk/internal/graph"
	"divtopk/internal/pattern"
)

// Result is the maximum simulation relation M(Q,G) of §2.1, represented over
// the candidate pair IDs of a CandidateIndex.
type Result struct {
	CI *CandidateIndex
	// InSim[pair] reports whether the pair survives refinement, i.e. belongs
	// to the maximum relation satisfying the child condition of simulation.
	InSim []bool
	// Matched reports whether G matches Q: every query node has at least one
	// surviving pair. When false, the paper defines M(Q,G) = ∅ and therefore
	// Mu(Q,G,uo) = ∅; InSim is still populated for diagnostics.
	Matched bool
}

// Compute evaluates the maximum simulation of p in g by counting-based
// refinement: every candidate pair starts alive, and a pair (u,v) dies when
// for some query edge (u,u') no successor of v is an alive candidate of u'.
// Each pair keeps one counter per outgoing query edge; the death of a pair
// decrements the counters of its candidate predecessors, cascading in
// O(Σ_(u,u')∈Ep Σ_{v∈can(u')} deg_in(v)) ⊆ O(|Ep||E|) total time — the
// O(|G||Q| + |G|²) bound of the paper with the usual tighter accounting.
func Compute(g *graph.Graph, p *pattern.Pattern) *Result {
	ci := BuildCandidates(g, p)
	return ComputeWithCandidates(g, p, ci)
}

// ComputeWithCandidates is Compute with a prebuilt candidate index, so
// callers that already paid for the index (the engine, the baseline) can
// share it.
func ComputeWithCandidates(g *graph.Graph, p *pattern.Pattern, ci *CandidateIndex) *Result {
	nq := p.NumNodes()
	total := ci.NumPairs()
	inSim := make([]bool, total)
	for i := range inSim {
		inSim[i] = true
	}

	// childBase[pair] is the first counter slot of the pair; one slot per
	// outgoing query edge of its query node, in pattern.Out order.
	childBase := make([]int32, total+1)
	for id := 0; id < total; id++ {
		childBase[id+1] = childBase[id] + int32(len(p.Out(int(ci.U[id]))))
	}
	cnt := make([]int32, childBase[total])

	var dead []int32 // worklist of freshly killed pairs
	kill := func(id int32) {
		if inSim[id] {
			inSim[id] = false
			dead = append(dead, id)
		}
	}

	// Initialize counters: cnt[(u,v), j] = |succ(v) ∩ can(u_j')|.
	for u := 0; u < nq; u++ {
		children := p.Out(u)
		lo, hi := ci.PairRange(u)
		for id := lo; id < hi; id++ {
			v := ci.V[id]
			base := childBase[id]
			for j, uc := range children {
				c := int32(0)
				for _, w := range g.Out(v) {
					if ci.Pair(uc, w) >= 0 {
						c++
					}
				}
				cnt[base+int32(j)] = c
				if c == 0 {
					kill(id)
				}
			}
		}
	}

	// childSlot[u][uc] = position of edge (u,uc) within p.Out(u). Query
	// edges are unique (pattern.AddEdge rejects duplicates).
	childSlot := make([]map[int]int32, nq)
	for u := 0; u < nq; u++ {
		m := make(map[int]int32, len(p.Out(u)))
		for j, uc := range p.Out(u) {
			m[uc] = int32(j)
		}
		childSlot[u] = m
	}

	// Cascade removals.
	for len(dead) > 0 {
		id := dead[len(dead)-1]
		dead = dead[:len(dead)-1]
		u := int(ci.U[id])
		v := ci.V[id]
		for _, up := range p.In(u) {
			slot := childSlot[up][u]
			for _, w := range g.In(v) {
				pid := ci.Pair(up, w)
				if pid < 0 || !inSim[pid] {
					continue
				}
				s := childBase[pid] + slot
				cnt[s]--
				if cnt[s] == 0 {
					kill(pid)
				}
			}
		}
	}

	res := &Result{CI: ci, InSim: inSim, Matched: true}
	for u := 0; u < nq; u++ {
		lo, hi := ci.PairRange(u)
		any := false
		for id := lo; id < hi; id++ {
			if inSim[id] {
				any = true
				break
			}
		}
		if !any {
			res.Matched = false
			break
		}
	}
	return res
}

// MatchesOf returns the alive matches of query node u in ascending data-node
// order, or nil when G does not match Q (M(Q,G) = ∅ per §2.1).
func (r *Result) MatchesOf(u int) []graph.NodeID {
	if !r.Matched {
		return nil
	}
	lo, hi := r.CI.PairRange(u)
	out := make([]graph.NodeID, 0, hi-lo)
	for id := lo; id < hi; id++ {
		if r.InSim[id] {
			out = append(out, r.CI.V[id])
		}
	}
	return out
}

// Contains reports whether (u, v) is in M(Q,G).
func (r *Result) Contains(u int, v graph.NodeID) bool {
	if !r.Matched {
		return false
	}
	id := r.CI.Pair(u, v)
	return id >= 0 && r.InSim[id]
}

// NumMatches returns |M(Q,G)|, the total number of matched pairs (0 when G
// does not match Q).
func (r *Result) NumMatches() int {
	if !r.Matched {
		return 0
	}
	n := 0
	for _, ok := range r.InSim {
		if ok {
			n++
		}
	}
	return n
}
