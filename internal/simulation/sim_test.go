package simulation

import (
	"math/rand"
	"sort"
	"testing"

	"divtopk/internal/graph"
	"divtopk/internal/pattern"
	"divtopk/internal/testutil"
)

// naiveSim is a reference implementation: iterate "delete violating pairs"
// until fixpoint, with no counters and no worklists.
func naiveSim(g *graph.Graph, p *pattern.Pattern) map[[2]int32]bool {
	in := make(map[[2]int32]bool)
	for u := 0; u < p.NumNodes(); u++ {
		for v := graph.NodeID(0); v < graph.NodeID(g.NumNodes()); v++ {
			if p.MatchesNode(g, u, v) {
				in[[2]int32{int32(u), v}] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for pr := range in {
			u, v := int(pr[0]), pr[1]
			ok := true
			for _, uc := range p.Out(u) {
				found := false
				for _, w := range g.Out(v) {
					if in[[2]int32{int32(uc), w}] {
						found = true
						break
					}
				}
				if !found {
					ok = false
					break
				}
			}
			if !ok {
				delete(in, pr)
				changed = true
			}
		}
	}
	return in
}

func TestFigure1Simulation(t *testing.T) {
	g, id := testutil.Figure1()
	p := testutil.Figure1Pattern()
	res := Compute(g, p)
	if !res.Matched {
		t.Fatal("G must match Q")
	}
	if got := res.NumMatches(); got != 15 {
		t.Fatalf("|M(Q,G)| = %d, want 15 (Example 1)", got)
	}
	wantMatches := map[int][]string{
		0: {"PM1", "PM2", "PM3", "PM4"},
		1: {"DB1", "DB2", "DB3"},
		2: {"PRG1", "PRG2", "PRG3", "PRG4"},
		3: {"ST1", "ST2", "ST3", "ST4"},
	}
	for u, names := range wantMatches {
		got := res.MatchesOf(u)
		if len(got) != len(names) {
			t.Fatalf("matches of query node %d = %v, want %v", u, got, names)
		}
		for _, n := range names {
			if !res.Contains(u, id[n]) {
				t.Fatalf("(%d,%s) missing from M(Q,G)", u, n)
			}
		}
	}
	// BA1, UD1, UD2 must not match anything.
	for _, n := range []string{"BA1", "UD1", "UD2"} {
		for u := 0; u < 4; u++ {
			if res.Contains(u, id[n]) {
				t.Fatalf("%s should not match query node %d", n, u)
			}
		}
	}
}

func TestNoMatchGivesEmptyRelation(t *testing.T) {
	g, _ := testutil.Figure1()
	p := pattern.New()
	pm := p.AddNode("PM")
	x := p.AddNode("CEO") // no such label in G
	if err := p.AddEdge(pm, x); err != nil {
		t.Fatal(err)
	}
	res := Compute(g, p)
	if res.Matched {
		t.Fatal("pattern with unmatched node must not match")
	}
	if res.MatchesOf(0) != nil || res.NumMatches() != 0 || res.Contains(0, 0) {
		t.Fatal("unmatched result must behave as empty")
	}
}

func TestSingleNodePattern(t *testing.T) {
	g, _ := testutil.Figure1()
	p := pattern.New()
	p.AddNode("PM")
	res := Compute(g, p)
	if !res.Matched || len(res.MatchesOf(0)) != 4 {
		t.Fatalf("single-node pattern: got %v", res.MatchesOf(0))
	}
}

func TestSelfLoopPattern(t *testing.T) {
	// Pattern a→a (self-loop) matches only nodes on an a-labeled cycle.
	b := graph.NewBuilder()
	n0 := b.AddNode("a", nil)
	n1 := b.AddNode("a", nil)
	n2 := b.AddNode("a", nil) // no cycle through n2
	if err := b.AddEdge(n0, n1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(n1, n0); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(n2, n0); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	p := pattern.New()
	a := p.AddNode("a")
	if err := p.AddEdge(a, a); err != nil {
		t.Fatal(err)
	}
	res := Compute(g, p)
	if !res.Matched {
		t.Fatal("should match")
	}
	got := res.MatchesOf(0)
	if len(got) != 3 {
		// n2 has a successor (n0) that matches a; simulation only requires
		// the child condition, so n2 matches too.
		t.Fatalf("matches = %v, want all three nodes", got)
	}
}

func TestSimulationAgainstNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	labels := []string{"a", "b", "c"}
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(14)
		g := testutil.RandomGraph(rng, n, rng.Intn(3*n), labels)
		p := testutil.RandomPattern(rng, 1+rng.Intn(5), rng.Intn(4), labels, trial%2 == 0)
		res := Compute(g, p)
		want := naiveSim(g, p)

		// Compare pairwise membership of the refinement relation (before the
		// global all-nodes-matched condition).
		for u := 0; u < p.NumNodes(); u++ {
			for v := graph.NodeID(0); v < graph.NodeID(n); v++ {
				id := res.CI.Pair(u, v)
				gotIn := id >= 0 && res.InSim[id]
				if gotIn != want[[2]int32{int32(u), v}] {
					t.Fatalf("trial %d: pair (%d,%d) in=%v want=%v\npattern %s",
						trial, u, v, gotIn, !gotIn, p)
				}
			}
		}
		// Matched flag must equal "every query node has a match".
		wantMatched := true
		for u := 0; u < p.NumNodes(); u++ {
			any := false
			for pr := range want {
				if int(pr[0]) == u {
					any = true
					break
				}
			}
			if !any {
				wantMatched = false
			}
		}
		if res.Matched != wantMatched {
			t.Fatalf("trial %d: Matched=%v want %v", trial, res.Matched, wantMatched)
		}
	}
}

func TestCandidateIndex(t *testing.T) {
	g, id := testutil.Figure1()
	p := testutil.Figure1Pattern()
	ci := BuildCandidates(g, p)
	if ci.NumPairs() != 15 {
		t.Fatalf("candidate pairs = %d, want 15", ci.NumPairs())
	}
	if got := ci.Pair(0, id["PM2"]); got < 0 || ci.U[got] != 0 || ci.V[got] != id["PM2"] {
		t.Fatal("Pair lookup broken")
	}
	if ci.Pair(0, id["DB1"]) != -1 {
		t.Fatal("DB1 is not a PM candidate")
	}
	lo, hi := ci.PairRange(1)
	if hi-lo != 3 {
		t.Fatalf("can(DB) size = %d, want 3", hi-lo)
	}
	// Lists are sorted ascending.
	for u := 0; u < p.NumNodes(); u++ {
		if !sort.SliceIsSorted(ci.Lists[u], func(i, j int) bool { return ci.Lists[u][i] < ci.Lists[u][j] }) {
			t.Fatalf("can(%d) not sorted", u)
		}
	}
}

func TestCuoExample9(t *testing.T) {
	g, _ := testutil.Figure1()
	p := testutil.Figure1Pattern()
	ci := BuildCandidates(g, p)
	an := pattern.Analyze(p)
	if got := Cuo(p, ci, an); got != 11 {
		t.Fatalf("C_uo = %d, want 11 (= |can(DB)|+|can(PRG)|+|can(ST)|, Example 9)", got)
	}
}
