// Package simulation implements graph simulation [Henzinger-Henzinger-Kopke]
// as used by the paper: the unique maximum match relation M(Q,G) (§2.1), the
// candidate and match product graphs, and the relevant sets R(u,v) of §3.1
// that underlie the relevance function δr and the distance function δd.
//
// The full-evaluation path here (Compute + ComputeRelevant) is exactly the
// paper's baseline algorithm Match; it also serves as the correctness oracle
// for the early-termination engine in internal/core.
package simulation

import (
	"divtopk/internal/bitset"
	"divtopk/internal/graph"
	"divtopk/internal/parallel"
	"divtopk/internal/pattern"
)

// CandidateIndex enumerates, for every query node u, the candidate set
// can(u): the data nodes satisfying u's search condition (label equality
// plus attribute predicates). Each (query node, data node) candidate pair is
// assigned a dense pair ID; pair IDs of a query node are contiguous.
type CandidateIndex struct {
	// Lists[u] holds can(u) in ascending data-node order.
	Lists [][]graph.NodeID
	// Offsets[u] is the first pair ID of query node u; Offsets[|Vp|] is the
	// total pair count.
	Offsets []int32
	// U and V map a pair ID back to its query node and data node.
	U []int32
	V []graph.NodeID

	// pos[u][v] is 1 + the position of v within Lists[u], or 0 when v is not
	// a candidate of u. Dense per-query-node arrays make the inner loops of
	// refinement and propagation branch-light.
	pos [][]int32
}

// BuildCandidates computes the candidate index of p against g sequentially.
// It is BuildCandidatesParallel with a single worker.
func BuildCandidates(g *graph.Graph, p *pattern.Pattern) *CandidateIndex {
	return BuildCandidatesParallel(g, p, 1)
}

// BuildCandidatesParallel computes the candidate index of p against g with
// up to workers goroutines (workers <= 0 means all cores). Each query node's
// label list is filtered over contiguous data-node shards in parallel and
// the per-shard survivors are concatenated in shard order, so the result is
// bit-for-bit identical to the sequential scan for every worker count.
// Filtering is the per-query hot path this parallelizes: it evaluates the
// search condition (label + attribute predicates) once per (query node,
// labeled data node) pair.
func BuildCandidatesParallel(g *graph.Graph, p *pattern.Pattern, workers int) *CandidateIndex {
	workers = parallel.Workers(workers)
	nq := p.NumNodes()
	ci := &CandidateIndex{
		Lists:   make([][]graph.NodeID, nq),
		Offsets: make([]int32, nq+1),
		pos:     make([][]int32, nq),
	}

	// One job per (query node, data-node shard); jobs are emitted in
	// (u, shard) order so concatenation preserves ascending node order.
	type job struct {
		u      int
		lo, hi int
		out    []graph.NodeID
	}
	var jobs []job
	for u := 0; u < nq; u++ {
		nodes := g.NodesWithLabel(p.Label(u))
		for _, s := range parallel.Shards(len(nodes), workers) {
			jobs = append(jobs, job{u: u, lo: s[0], hi: s[1]})
		}
	}
	parallel.ForEach(len(jobs), workers, func(i int) {
		j := &jobs[i]
		nodes := g.NodesWithLabel(p.Label(j.u))
		for _, v := range nodes[j.lo:j.hi] {
			if p.MatchesNode(g, j.u, v) {
				j.out = append(j.out, v)
			}
		}
	})
	for i := range jobs {
		ci.Lists[jobs[i].u] = append(ci.Lists[jobs[i].u], jobs[i].out...)
	}
	for u := 0; u < nq; u++ {
		ci.Offsets[u+1] = ci.Offsets[u] + int32(len(ci.Lists[u]))
	}

	total := int(ci.Offsets[nq])
	ci.U = make([]int32, total)
	ci.V = make([]graph.NodeID, total)
	parallel.ForEach(nq, workers, func(u int) {
		ci.pos[u] = make([]int32, g.NumNodes())
		for i, v := range ci.Lists[u] {
			id := ci.Offsets[u] + int32(i)
			ci.U[id] = int32(u)
			ci.V[id] = v
			ci.pos[u][v] = int32(i) + 1
		}
	})
	return ci
}

// BuildCandidatesSeeded computes the candidate index of p against g, seeding
// individual query nodes from donor candidate lists where available:
// seeds[u], when non-nil, must be a superset of can(u) in ascending data-node
// order (the guarantee pattern.CondSubsumes provides — candidacy depends only
// on the node's label and predicates, so a weaker condition admits a superset).
// Seeded query nodes filter the donor list instead of the full label list,
// and every node is re-checked against p's full search condition, so the
// result is bit-for-bit identical to BuildCandidatesParallel for any seeds.
func BuildCandidatesSeeded(g *graph.Graph, p *pattern.Pattern, seeds [][]graph.NodeID, workers int) *CandidateIndex {
	workers = parallel.Workers(workers)
	nq := p.NumNodes()
	ci := &CandidateIndex{
		Lists:   make([][]graph.NodeID, nq),
		Offsets: make([]int32, nq+1),
		pos:     make([][]int32, nq),
	}

	// Per-query-node source: the donor list when seeded, the label list
	// otherwise. Both are ascending, so the shard concatenation below keeps
	// the order BuildCandidatesParallel produces.
	src := make([][]graph.NodeID, nq)
	for u := 0; u < nq; u++ {
		if u < len(seeds) && seeds[u] != nil {
			src[u] = seeds[u]
		} else {
			src[u] = g.NodesWithLabel(p.Label(u))
		}
	}

	type job struct {
		u      int
		lo, hi int
		out    []graph.NodeID
	}
	var jobs []job
	for u := 0; u < nq; u++ {
		for _, s := range parallel.Shards(len(src[u]), workers) {
			jobs = append(jobs, job{u: u, lo: s[0], hi: s[1]})
		}
	}
	parallel.ForEach(len(jobs), workers, func(i int) {
		j := &jobs[i]
		for _, v := range src[j.u][j.lo:j.hi] {
			if p.MatchesNode(g, j.u, v) {
				j.out = append(j.out, v)
			}
		}
	})
	for i := range jobs {
		ci.Lists[jobs[i].u] = append(ci.Lists[jobs[i].u], jobs[i].out...)
	}
	for u := 0; u < nq; u++ {
		ci.Offsets[u+1] = ci.Offsets[u] + int32(len(ci.Lists[u]))
	}

	total := int(ci.Offsets[nq])
	ci.U = make([]int32, total)
	ci.V = make([]graph.NodeID, total)
	parallel.ForEach(nq, workers, func(u int) {
		ci.pos[u] = make([]int32, g.NumNodes())
		for i, v := range ci.Lists[u] {
			id := ci.Offsets[u] + int32(i)
			ci.U[id] = int32(u)
			ci.V[id] = v
			ci.pos[u][v] = int32(i) + 1
		}
	})
	return ci
}

// NumPairs returns the total number of candidate pairs.
func (ci *CandidateIndex) NumPairs() int { return len(ci.U) }

// Pair returns the pair ID of (u, v), or -1 when v is not a candidate of u.
func (ci *CandidateIndex) Pair(u int, v graph.NodeID) int32 {
	if p := ci.pos[u][v]; p != 0 {
		return ci.Offsets[u] + p - 1
	}
	return -1
}

// PairRange returns the half-open pair ID range [lo, hi) of query node u.
func (ci *CandidateIndex) PairRange(u int) (int32, int32) {
	return ci.Offsets[u], ci.Offsets[u+1]
}

// RelSpace is the dense universe over which relevant-set bitsets are
// defined: every data node that is a candidate of some query node reachable
// from the output node (those are the only nodes a relevant set can ever
// contain). Its size also yields the normalization constant C_uo of §3.3.
type RelSpace struct {
	// Nodes lists the universe in ascending data-node order.
	Nodes []graph.NodeID
	// index[v] is the dense index of data node v, or -1.
	index []int32
}

// BuildRelSpace constructs the relevant-node universe for p against g.
func BuildRelSpace(g *graph.Graph, p *pattern.Pattern, ci *CandidateIndex, an *pattern.Analysis) *RelSpace {
	rs := &RelSpace{index: make([]int32, g.NumNodes())}
	for i := range rs.index {
		rs.index[i] = -1
	}
	for u := 0; u < p.NumNodes(); u++ {
		if !an.OutputDesc[u] {
			continue
		}
		for _, v := range ci.Lists[u] {
			if rs.index[v] == -1 {
				rs.index[v] = 0 // mark; final indices assigned below
			}
		}
	}
	for v, mark := range rs.index {
		if mark == 0 {
			rs.index[v] = int32(len(rs.Nodes))
			rs.Nodes = append(rs.Nodes, graph.NodeID(v))
		}
	}
	return rs
}

// Size returns the universe size. (This is the number of *distinct* nodes;
// the normalization constant C_uo of §3.3 is the per-query-node sum and is
// computed by Cuo.)
func (rs *RelSpace) Size() int { return len(rs.Nodes) }

// Cuo returns the paper's normalization constant C_uo (§3.3): the total
// number of candidates of all query nodes the output node can reach,
// summed per query node. In Example 9 this is |can(DB)|+|can(PRG)|+|can(ST)|
// = 3+4+4 = 11. When descendant query nodes have disjoint labels (the usual
// case) this equals the distinct universe Size.
func Cuo(p *pattern.Pattern, ci *CandidateIndex, an *pattern.Analysis) int {
	total := 0
	for u := 0; u < p.NumNodes(); u++ {
		if an.OutputDesc[u] {
			total += len(ci.Lists[u])
		}
	}
	return total
}

// Index returns the dense index of data node v, or -1 when v cannot appear
// in any relevant set.
func (rs *RelSpace) Index(v graph.NodeID) int32 { return rs.index[v] }

// NewSet returns an empty bitset over the universe.
func (rs *RelSpace) NewSet() *bitset.Set { return bitset.New(len(rs.Nodes)) }

// NodesOf maps a bitset over the universe back to data-node IDs.
func (rs *RelSpace) NodesOf(s *bitset.Set) []graph.NodeID {
	out := make([]graph.NodeID, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, rs.Nodes[i])
		return true
	})
	return out
}
