package simulation

import (
	"math/rand"
	"testing"

	"divtopk/internal/graph"
	"divtopk/internal/pattern"
	"divtopk/internal/testutil"
)

// relevantFixture computes everything needed for relevant-set assertions.
func relevantFixture(t *testing.T, keepSets bool) (*graph.Graph, map[string]graph.NodeID, *pattern.Pattern, *Result, *RelevantResult) {
	t.Helper()
	g, id := testutil.Figure1()
	p := testutil.Figure1Pattern()
	ci := BuildCandidates(g, p)
	prod := BuildProduct(g, p, ci, 1)
	res := ComputeWithProduct(prod)
	if !res.Matched {
		t.Fatal("fixture must match")
	}
	an := pattern.Analyze(p)
	space := BuildRelSpace(g, p, res.CI, an)
	rel := ComputeRelevant(prod, an, space, res.InSim, p.Output(), keepSets, 1)
	return g, id, p, res, rel
}

func TestExample4RelevantSets(t *testing.T) {
	_, id, p, res, rel := relevantFixture(t, true)
	want := map[string][]string{
		"PM1": {"DB1", "PRG1", "ST1", "ST2"},
		"PM2": {"DB2", "DB3", "PRG2", "PRG3", "PRG4", "ST2", "ST3", "ST4"},
		"PM3": {"DB2", "DB3", "PRG2", "PRG3", "ST3", "ST4"},
		"PM4": {"DB2", "DB3", "PRG2", "PRG3", "ST3", "ST4"},
	}
	lo, _ := res.CI.PairRange(p.Output())
	for name, members := range want {
		pid := res.CI.Pair(p.Output(), id[name])
		if pid < 0 {
			t.Fatalf("%s is not a PM candidate", name)
		}
		i := pid - lo
		if got := rel.Sizes[i]; got != int32(len(members)) {
			t.Errorf("δr(PM,%s) = %d, want %d (Example 4)", name, got, len(members))
		}
		set := rel.Sets[i]
		if set == nil {
			t.Fatalf("set for %s not kept", name)
		}
		gotNodes := map[graph.NodeID]bool{}
		for _, v := range rel.Space.NodesOf(set) {
			gotNodes[v] = true
		}
		for _, m := range members {
			if !gotNodes[id[m]] {
				t.Errorf("R(PM,%s) missing %s", name, m)
			}
		}
		if len(gotNodes) != len(members) {
			t.Errorf("R(PM,%s) has %d members, want %d", name, len(gotNodes), len(members))
		}
	}
}

func TestSelfInclusionOnCycle(t *testing.T) {
	// Example 8: DB3's relevant set contains DB3 itself (cycle membership).
	g, id := testutil.Figure1()
	p := testutil.Figure1Pattern()
	res := Compute(g, p)
	an := pattern.Analyze(p)
	m := RelevantSetNaive(g, p, res.CI, res.InSim, 1 /*DB*/, id["DB3"])
	wantMembers := []string{"ST3", "ST4", "DB2", "DB3", "PRG2", "PRG3"}
	if m.Count() != len(wantMembers) {
		t.Fatalf("R(DB,DB3) = %v, want %v", m, wantMembers)
	}
	for _, w := range wantMembers {
		if !m.Contains(int(id[w])) {
			t.Fatalf("R(DB,DB3) missing %s", w)
		}
	}
	_ = an
}

func TestCandidateProductUpperBoundExamples(t *testing.T) {
	// The h values of Examples 7 and 8 are relevant-set sizes over the
	// *candidate* product graph (alive = nil).
	g, id := testutil.Figure1()

	// Example 7, pattern Q1: h(PM2)=3, h(PM3)=2, h(PRG3)=h(PRG4)=1, h(DBk)=0.
	q1 := testutil.Example7Pattern()
	ci := BuildCandidates(g, q1)
	prod1 := BuildProduct(g, q1, ci, 1)
	an := pattern.Analyze(q1)
	space := BuildRelSpace(g, q1, ci, an)

	relPM := ComputeRelevant(prod1, an, space, nil, 0, false, 1)
	lo, _ := ci.PairRange(0)
	// PM4 is not listed in the paper's table; its bound is
	// R̂(PM,PM4) = {DB2, PRG2, DB3} = 3 (PRG2's only DB-successor is DB3).
	wantPM := map[string]int32{"PM1": 2, "PM2": 3, "PM3": 2, "PM4": 3}
	for name, want := range wantPM {
		i := ci.Pair(0, id[name]) - lo
		if relPM.Sizes[i] != want {
			t.Errorf("Q1 ĥ(PM,%s) = %d, want %d", name, relPM.Sizes[i], want)
		}
	}
	relPRG := ComputeRelevant(prod1, an, space, nil, 2, false, 1)
	loPRG, _ := ci.PairRange(2)
	for _, name := range []string{"PRG3", "PRG4"} {
		i := ci.Pair(2, id[name]) - loPRG
		if relPRG.Sizes[i] != 1 {
			t.Errorf("Q1 ĥ(PRG,%s) = %d, want 1 (Example 7)", name, relPRG.Sizes[i])
		}
	}

	// Example 8, full pattern Q: ĥ(DB2)=6, ĥ(PRG4)=7, ĥ(PM1)=4.
	q := testutil.Figure1Pattern()
	ci2 := BuildCandidates(g, q)
	prod2 := BuildProduct(g, q, ci2, 1)
	an2 := pattern.Analyze(q)
	space2 := BuildRelSpace(g, q, ci2, an2)

	relDB := ComputeRelevant(prod2, an2, space2, nil, 1, false, 1)
	loDB, _ := ci2.PairRange(1)
	if got := relDB.Sizes[ci2.Pair(1, id["DB2"])-loDB]; got != 6 {
		t.Errorf("ĥ(DB,DB2) = %d, want 6 (Example 8)", got)
	}
	relPRG2 := ComputeRelevant(prod2, an2, space2, nil, 2, false, 1)
	loP, _ := ci2.PairRange(2)
	if got := relPRG2.Sizes[ci2.Pair(2, id["PRG4"])-loP]; got != 7 {
		t.Errorf("ĥ(PRG,PRG4) = %d, want 7 (Example 8)", got)
	}
	relPMq := ComputeRelevant(prod2, an2, space2, nil, 0, false, 1)
	loPM, _ := ci2.PairRange(0)
	if got := relPMq.Sizes[ci2.Pair(0, id["PM1"])-loPM]; got != 4 {
		t.Errorf("ĥ(PM,PM1) = %d, want 4 (Example 8)", got)
	}
	// Example 8 prints PM2.h = 7; the candidate-product bound gives 8
	// (R̂(PM,PM2) = {DB2,DB3,PRG2,PRG3,PRG4,ST2,ST3,ST4}). Every other h in
	// Examples 7-8 reproduces exactly; we treat the 7 as a typo for 8 and
	// pin the sound value here (see DESIGN.md §6).
	if got := relPMq.Sizes[ci2.Pair(0, id["PM2"])-loPM]; got != 8 {
		t.Errorf("ĥ(PM,PM2) = %d, want 8 (paper prints 7; see DESIGN.md)", got)
	}
}

func TestRelevantAgainstNaiveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	labels := []string{"a", "b", "c"}
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(14)
		g := testutil.RandomGraph(rng, n, rng.Intn(3*n), labels)
		var p *pattern.Pattern
		if trial%3 == 0 {
			p = testutil.NonRootPattern(rng, 1+rng.Intn(5), rng.Intn(4), labels, trial%2 == 0)
		} else {
			p = testutil.RandomPattern(rng, 1+rng.Intn(5), rng.Intn(4), labels, trial%2 == 0)
		}
		ci := BuildCandidates(g, p)
		prod := BuildProduct(g, p, ci, 1)
		res := ComputeWithProduct(prod)
		an := pattern.Analyze(p)
		space := BuildRelSpace(g, p, res.CI, an)
		root := p.Output()

		for _, alive := range [][]bool{nil, res.InSim} {
			for _, workers := range []int{1, 4} {
				rel := ComputeRelevant(prod, an, space, alive, root, true, workers)
				lo, hi := res.CI.PairRange(root)
				for pid := lo; pid < hi; pid++ {
					if alive != nil && !alive[pid] {
						if rel.Sizes[pid-lo] != -1 {
							t.Fatalf("trial %d: dead pair has size %d", trial, rel.Sizes[pid-lo])
						}
						continue
					}
					naive := RelevantSetNaive(g, p, res.CI, alive, root, res.CI.V[pid])
					if int(rel.Sizes[pid-lo]) != naive.Count() {
						t.Fatalf("trial %d: size mismatch for pair (%d,%d): dp=%d naive=%d\npattern=%s",
							trial, root, res.CI.V[pid], rel.Sizes[pid-lo], naive.Count(), p)
					}
					set := rel.Sets[pid-lo]
					for _, v := range rel.Space.NodesOf(set) {
						if !naive.Contains(int(v)) {
							t.Fatalf("trial %d: dp set has extra node %d", trial, v)
						}
					}
				}
			}
		}
	}
}

func TestRelSpaceAndNodesOf(t *testing.T) {
	g, id := testutil.Figure1()
	p := testutil.Figure1Pattern()
	ci := BuildCandidates(g, p)
	an := pattern.Analyze(p)
	space := BuildRelSpace(g, p, ci, an)
	// Universe: DB, PRG, ST candidates = 3+4+4 = 11 distinct nodes.
	if space.Size() != 11 {
		t.Fatalf("relevant universe = %d, want 11", space.Size())
	}
	if space.Index(id["PM1"]) != -1 {
		t.Fatal("PM1 must not be in the relevant universe (PM not a descendant of itself)")
	}
	if space.Index(id["DB2"]) < 0 {
		t.Fatal("DB2 missing from relevant universe")
	}
	s := space.NewSet()
	s.Add(int(space.Index(id["DB2"])))
	nodes := space.NodesOf(s)
	if len(nodes) != 1 || nodes[0] != id["DB2"] {
		t.Fatalf("NodesOf = %v", nodes)
	}
}
