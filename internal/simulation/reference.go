package simulation

import (
	"divtopk/internal/bitset"
	"divtopk/internal/graph"
	"divtopk/internal/pattern"
)

// This file freezes the pre-CSR evaluation kernel: refinement and
// relevant-set computation that re-derive product edges on the fly through
// ci.Pair lookups over g.Out/g.In, exactly as the code shipped before the
// materialized Product existed. It serves two purposes and is not used on
// any production path:
//
//   - It is the oracle of the kernel determinism tests: the product-CSR
//     kernel must produce byte-identical results at every Parallelism
//     setting (core.KernelReference selects it end to end).
//   - It is the "before" side of the tracked benchmark baseline
//     (internal/bench/baseline.go, BENCH_PR3.json): speedup claims are
//     measured against this path, in-process, on the same data.
//
// The only deliberate deviation from the historical code is the dense
// childSlot table below (the historical map[int]int32 was pure overhead in
// the cascade loop; patterns are tiny, so a |Vp|² table is free).

// childSlotTable returns slot[u*nq+uc] = position of query edge (u,uc) in
// p.Out(u), or -1. Query edges are unique (pattern.AddEdge rejects
// duplicates).
func childSlotTable(p *pattern.Pattern) []int32 {
	nq := p.NumNodes()
	slot := make([]int32, nq*nq)
	for i := range slot {
		slot[i] = -1
	}
	for u := 0; u < nq; u++ {
		for j, uc := range p.Out(u) {
			slot[u*nq+uc] = int32(j)
		}
	}
	return slot
}

// ComputeReference evaluates the maximum simulation with the pre-CSR
// counting-based refinement: counters are initialized by scanning g.Out with
// ci.Pair lookups and the removal cascade scans g.In the same way. See
// ComputeWithCandidates for the semantics; the result is identical.
func ComputeReference(g *graph.Graph, p *pattern.Pattern, ci *CandidateIndex) *Result {
	nq := p.NumNodes()
	total := ci.NumPairs()
	inSim := make([]bool, total)
	for i := range inSim {
		inSim[i] = true
	}

	childBase := make([]int32, total+1)
	for id := 0; id < total; id++ {
		childBase[id+1] = childBase[id] + int32(len(p.Out(int(ci.U[id]))))
	}
	cnt := make([]int32, childBase[total])

	var dead []int32
	kill := func(id int32) {
		if inSim[id] {
			inSim[id] = false
			dead = append(dead, id)
		}
	}

	// Initialize counters: cnt[(u,v), j] = |succ(v) ∩ can(u_j')|.
	for u := 0; u < nq; u++ {
		children := p.Out(u)
		lo, hi := ci.PairRange(u)
		for id := lo; id < hi; id++ {
			v := ci.V[id]
			base := childBase[id]
			for j, uc := range children {
				c := int32(0)
				for _, w := range g.Out(v) {
					if ci.Pair(uc, w) >= 0 {
						c++
					}
				}
				cnt[base+int32(j)] = c
				if c == 0 {
					kill(id)
				}
			}
		}
	}

	childSlot := childSlotTable(p)

	// Cascade removals.
	for len(dead) > 0 {
		id := dead[len(dead)-1]
		dead = dead[:len(dead)-1]
		u := int(ci.U[id])
		v := ci.V[id]
		for _, up := range p.In(u) {
			slot := childSlot[up*nq+u]
			for _, w := range g.In(v) {
				pid := ci.Pair(up, w)
				if pid < 0 || !inSim[pid] {
					continue
				}
				s := childBase[pid] + slot
				cnt[s]--
				if cnt[s] == 0 {
					kill(pid)
				}
			}
		}
	}

	res := &Result{CI: ci, InSim: inSim, Matched: true}
	for u := 0; u < nq; u++ {
		lo, hi := ci.PairRange(u)
		any := false
		for id := lo; id < hi; id++ {
			if inSim[id] {
				any = true
				break
			}
		}
		if !any {
			res.Matched = false
			break
		}
	}
	return res
}

// productAdjReference returns an adjacency callback over pairs of ci
// restricted to alive pairs, deriving product edges on the fly (the pre-CSR
// representation). A nil alive mask means all candidate pairs are alive.
func productAdjReference(g *graph.Graph, p *pattern.Pattern, ci *CandidateIndex, alive []bool) graph.AdjFunc {
	return func(id int32, emit func(int32)) {
		if alive != nil && !alive[id] {
			return
		}
		u := int(ci.U[id])
		v := ci.V[id]
		for _, uc := range p.Out(u) {
			for _, w := range g.Out(v) {
				pid := ci.Pair(uc, w)
				if pid >= 0 && (alive == nil || alive[pid]) {
					emit(pid)
				}
			}
		}
	}
}

// ComputeRelevantReference computes relevant sets with the pre-CSR kernel:
// the condensation is built through the on-the-fly adjacency callback and
// every component allocates a fresh bitset. See ComputeRelevant for the
// semantics; sizes and sets are identical.
func ComputeRelevantReference(g *graph.Graph, p *pattern.Pattern, ci *CandidateIndex,
	an *pattern.Analysis, space *RelSpace, alive []bool, root int, keepSets bool) *RelevantResult {

	lo, hi := ci.PairRange(root)
	res := &RelevantResult{
		Space: space,
		Sizes: make([]int32, hi-lo),
		Sets:  make([]*bitset.Set, hi-lo),
	}
	for i := range res.Sizes {
		res.Sizes[i] = -1
	}

	relQ := relevantQueryNodes(p, an, root)

	adj := productAdjReference(g, p, ci, alive)
	restricted := func(id int32, emit func(int32)) {
		if !relQ[ci.U[id]] {
			return
		}
		adj(id, emit)
	}
	cond := graph.Condense(ci.NumPairs(), restricted)

	sets := make([]*bitset.Set, cond.NumComps)
	pending := make([]int, cond.NumComps)
	keep := make([]bool, cond.NumComps)
	for c := 0; c < cond.NumComps; c++ {
		pending[c] = len(cond.Pred[c])
	}
	for id := lo; id < hi; id++ {
		if alive == nil || alive[id] {
			keep[cond.Comp[id]] = true
		}
	}

	release := func(c int32) {
		pending[c]--
		if pending[c] == 0 && !keep[c] {
			sets[c] = nil
		}
	}

	for c := 0; c < cond.NumComps; c++ {
		if len(cond.Members[c]) == 1 && len(cond.Succ[c]) == 0 && !cond.Nontrivial[c] {
			id := cond.Members[c][0]
			if !relQ[ci.U[id]] || (alive != nil && !alive[id]) {
				continue
			}
		}
		s := space.NewSet()
		for _, succ := range cond.Succ[c] {
			if sets[succ] != nil {
				s.UnionWith(sets[succ])
			}
			release(succ)
		}
		if cond.Nontrivial[c] {
			for _, id := range cond.Members[c] {
				if idx := space.Index(ci.V[id]); idx >= 0 {
					s.Add(int(idx))
				}
			}
			for _, id := range cond.Members[c] {
				recordRoot(res, ci, lo, hi, id, s, keepSets)
			}
		} else {
			id := cond.Members[c][0]
			recordRoot(res, ci, lo, hi, id, s, keepSets)
			if idx := space.Index(ci.V[id]); idx >= 0 {
				s.Add(int(idx))
			}
		}
		sets[c] = s
		if pending[c] == 0 && !keep[c] {
			sets[c] = nil
		}
	}
	return res
}
