package simulation

import (
	"fmt"

	"divtopk/internal/graph"
	"divtopk/internal/parallel"
	"divtopk/internal/pattern"
)

// Product is the materialized CSR form of the candidate product graph: one
// node per candidate pair of a CandidateIndex, and an edge
// (u,v) → (u',v') whenever (u,u') ∈ Ep and (v,v') ∈ E with both endpoints
// candidates. Every per-query hot path — simulation refinement, relevant-set
// propagation, the incremental engine's match/finalization cascades — walks
// these edges repeatedly; before this structure existed each walk re-derived
// them through g.Out/g.In scans filtered by ci.Pair lookups (touching every
// non-candidate neighbour along the way). Building the adjacency once per
// (graph, pattern, candidates) turns all of those into linear scans over
// dense int32 slices, which is the access pattern the paper's complexity
// analysis (§3–§4) charges for.
//
// Layout. Forward edges are grouped by (pair, outgoing query edge): pair q
// of query node u owns one slot per edge of p.Out(u), in p.Out order; slot
// indices are absolute (Base[q]+j), shared with the refinement/engine
// counter arrays, and SlotOff[s]:SlotOff[s+1] delimits slot s's successors
// in Fwd. Within a slot, successors appear in ascending data-node order
// (g.Out is sorted), which makes every product traversal reproduce exactly
// the order of the pre-CSR reference kernel — the determinism tests rely on
// it. Reverse edges are grouped per pair: Rev[e] is a product predecessor of
// pair RevOff⁻¹(e) and RevSlot[e] is the absolute slot of the connecting
// query edge in the predecessor's counters, so cascade loops decrement
// cnt[RevSlot[e]] directly without any slot lookup.
type Product struct {
	G  *graph.Graph
	P  *pattern.Pattern
	CI *CandidateIndex

	// Base[q] is the first slot of pair q (one slot per outgoing query edge
	// of q's query node, in p.Out order); Base[NumPairs()] is the slot count.
	Base []int32
	// SlotOff[s] is the first forward edge of slot s; len = slots+1.
	SlotOff []int32
	// Fwd holds successor pair IDs, grouped by slot.
	Fwd []int32
	// RevOff[q] is the first reverse edge of pair q; len = NumPairs()+1.
	RevOff []int32
	// Rev holds predecessor pair IDs; RevSlot the absolute slot (index into
	// counter arrays laid out by Base) of the connecting query edge.
	Rev     []int32
	RevSlot []int32
}

// BuildProduct materializes the product CSR for p against g over the
// candidate pairs of ci, using up to workers goroutines (<= 0 means all
// cores). Construction is deterministic for every worker count: the two
// forward passes write disjoint pre-assigned ranges, and the reverse fill is
// a sequential linear pass, so the resulting arrays are bit-for-bit
// identical regardless of parallelism.
func BuildProduct(g *graph.Graph, p *pattern.Pattern, ci *CandidateIndex, workers int) *Product {
	workers = parallel.Workers(workers)
	nq := p.NumNodes()
	total := ci.NumPairs()

	pr := &Product{G: g, P: p, CI: ci}
	outDeg := make([]int32, nq)
	for u := 0; u < nq; u++ {
		outDeg[u] = int32(len(p.Out(u)))
	}
	base := make([]int32, total+1)
	for q := 0; q < total; q++ {
		base[q+1] = base[q] + outDeg[ci.U[q]]
	}
	nSlots := int(base[total])
	slotOff := make([]int32, nSlots+1)

	var fwd []int32
	if workers <= 1 {
		// Sequential: a single append-based pass derives every product edge
		// exactly once (the parallel path must scan twice to pre-assign
		// ranges). The content is identical: slots in (pair, query edge)
		// order, successors in ascending data-node order.
		fwd = make([]int32, 0, total*4)
		for q := int32(0); q < int32(total); q++ {
			u := int(ci.U[q])
			v := ci.V[q]
			b := base[q]
			for j, uc := range p.Out(u) {
				for _, w := range g.Out(v) {
					if pid := ci.Pair(uc, w); pid >= 0 {
						fwd = append(fwd, pid)
					}
				}
				if len(fwd) > int(^uint32(0)>>1) {
					panic(fmt.Sprintf("simulation: product graph exceeds %d edges", ^uint32(0)>>1))
				}
				slotOff[b+int32(j)+1] = int32(len(fwd))
			}
		}
	} else {
		// Pass 1: per-slot successor counts (disjoint writes per pair).
		parallel.ForEach(total, workers, func(qi int) {
			q := int32(qi)
			u := int(ci.U[q])
			v := ci.V[q]
			b := base[q]
			for j, uc := range p.Out(u) {
				c := int32(0)
				for _, w := range g.Out(v) {
					if ci.Pair(uc, w) >= 0 {
						c++
					}
				}
				slotOff[b+int32(j)+1] = c
			}
		})
		var edges int64
		for s := 1; s <= nSlots; s++ {
			edges += int64(slotOff[s])
			if edges > int64(^uint32(0)>>1) {
				panic(fmt.Sprintf("simulation: product graph exceeds %d edges", ^uint32(0)>>1))
			}
			slotOff[s] += slotOff[s-1]
		}

		// Pass 2: fill each pair's pre-assigned slot ranges.
		fwd = make([]int32, edges)
		parallel.ForEach(total, workers, func(qi int) {
			q := int32(qi)
			u := int(ci.U[q])
			v := ci.V[q]
			b := base[q]
			for j, uc := range p.Out(u) {
				e := slotOff[b+int32(j)]
				for _, w := range g.Out(v) {
					if pid := ci.Pair(uc, w); pid >= 0 {
						fwd[e] = pid
						e++
					}
				}
			}
		})
	}

	pr.Base = base
	pr.SlotOff = slotOff
	pr.Fwd = fwd
	pr.buildReverse()
	return pr
}

// buildReverse derives the reverse CSR from the forward arrays: one
// sequential counting pass and one sequential fill in ascending (source
// pair, slot) order, so each pair's reverse list is sorted by the
// predecessor's absolute slot. Shared by BuildProduct and the incremental
// PatchProduct, which is what keeps the two construction paths bit-for-bit
// identical.
func (pr *Product) buildReverse() {
	total := len(pr.Base) - 1
	base, slotOff, fwd := pr.Base, pr.SlotOff, pr.Fwd
	revOff := make([]int32, total+1)
	for _, t := range fwd {
		revOff[t+1]++
	}
	for q := 0; q < total; q++ {
		revOff[q+1] += revOff[q]
	}
	rev := make([]int32, len(fwd))
	revSlot := make([]int32, len(fwd))
	next := make([]int32, total)
	copy(next, revOff[:total])
	for q := int32(0); q < int32(total); q++ {
		for s := base[q]; s < base[q+1]; s++ {
			for e := slotOff[s]; e < slotOff[s+1]; e++ {
				t := fwd[e]
				rev[next[t]] = q
				revSlot[next[t]] = s
				next[t]++
			}
		}
	}
	pr.RevOff = revOff
	pr.Rev = rev
	pr.RevSlot = revSlot
}

// NumPairs returns the number of product nodes (candidate pairs).
func (pr *Product) NumPairs() int { return len(pr.RevOff) - 1 }

// NumEdges returns the number of product edges.
func (pr *Product) NumEdges() int { return len(pr.Fwd) }

// Succs returns all product successors of pair q (every outgoing query edge,
// slot by slot). The caller must not modify the slice.
func (pr *Product) Succs(q int32) []int32 {
	return pr.Fwd[pr.SlotOff[pr.Base[q]]:pr.SlotOff[pr.Base[q+1]]]
}

// SlotSuccs returns the product successors of pair q through its j-th
// outgoing query edge (p.Out order). The caller must not modify the slice.
func (pr *Product) SlotSuccs(q int32, j int) []int32 {
	s := pr.Base[q] + int32(j)
	return pr.Fwd[pr.SlotOff[s]:pr.SlotOff[s+1]]
}

// SlotLen returns the successor count of slot s (absolute slot index).
func (pr *Product) SlotLen(s int32) int32 { return pr.SlotOff[s+1] - pr.SlotOff[s] }
