package simulation

import (
	"math/rand"
	"reflect"
	"testing"

	"divtopk/internal/pattern"
	"divtopk/internal/testutil"
	"divtopk/internal/testutil/racedetect"
)

// TestProductMatchesReferenceAdjacency pins the CSR product to the on-the-fly
// reference adjacency: same successors, per slot, in the same order, for
// every worker count; and a reverse CSR that is its exact transpose with
// correct absolute slots.
func TestProductMatchesReferenceAdjacency(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	labels := []string{"a", "b", "c"}
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(16)
		g := testutil.RandomGraph(rng, n, rng.Intn(4*n), labels)
		p := testutil.RandomPattern(rng, 1+rng.Intn(5), rng.Intn(5), labels, trial%2 == 0)
		ci := BuildCandidates(g, p)
		seq := BuildProduct(g, p, ci, 1)
		par := BuildProduct(g, p, ci, 4)
		for _, pair := range [][2]*Product{{seq, par}} {
			a, b := pair[0], pair[1]
			if !reflect.DeepEqual(a.Base, b.Base) || !reflect.DeepEqual(a.SlotOff, b.SlotOff) ||
				!reflect.DeepEqual(a.Fwd, b.Fwd) || !reflect.DeepEqual(a.RevOff, b.RevOff) ||
				!reflect.DeepEqual(a.Rev, b.Rev) || !reflect.DeepEqual(a.RevSlot, b.RevSlot) {
				t.Fatalf("trial %d: parallel product build diverges from sequential", trial)
			}
		}

		adj := productAdjReference(g, p, ci, nil)
		for q := int32(0); q < int32(ci.NumPairs()); q++ {
			var want []int32
			adj(q, func(w int32) { want = append(want, w) })
			got := seq.Succs(q)
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(want, append([]int32(nil), got...)) {
				t.Fatalf("trial %d: Succs(%d) = %v, want %v", trial, q, got, want)
			}
			// Per-slot grouping must agree with the per-query-edge scan.
			u := int(ci.U[q])
			i := 0
			for j := range p.Out(u) {
				for _, w := range seq.SlotSuccs(q, j) {
					if want[i] != w {
						t.Fatalf("trial %d: slot %d of pair %d misgrouped", trial, j, q)
					}
					i++
				}
			}
		}

		// Reverse transpose check: every fwd edge appears exactly once in
		// the target's reverse list with the correct absolute slot.
		type edge struct{ from, to, slot int32 }
		var fwdEdges, revEdges []edge
		for q := int32(0); q < int32(ci.NumPairs()); q++ {
			for s := seq.Base[q]; s < seq.Base[q+1]; s++ {
				for e := seq.SlotOff[s]; e < seq.SlotOff[s+1]; e++ {
					fwdEdges = append(fwdEdges, edge{q, seq.Fwd[e], s})
				}
			}
			for e := seq.RevOff[q]; e < seq.RevOff[q+1]; e++ {
				revEdges = append(revEdges, edge{seq.Rev[e], q, seq.RevSlot[e]})
			}
		}
		count := map[edge]int{}
		for _, e := range fwdEdges {
			count[e]++
		}
		for _, e := range revEdges {
			count[e]--
		}
		for e, c := range count {
			if c != 0 {
				t.Fatalf("trial %d: fwd/rev mismatch at %+v (count %d)", trial, e, c)
			}
		}
	}
}

// TestComputeWithProductMatchesReference checks the refinement fixpoint and
// the relevant sets of the CSR kernel against the frozen reference kernel on
// random inputs.
func TestComputeWithProductMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	labels := []string{"a", "b", "c"}
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(16)
		g := testutil.RandomGraph(rng, n, rng.Intn(4*n), labels)
		var p *pattern.Pattern
		if trial%3 == 0 {
			p = testutil.NonRootPattern(rng, 1+rng.Intn(5), rng.Intn(4), labels, trial%2 == 0)
		} else {
			p = testutil.RandomPattern(rng, 1+rng.Intn(5), rng.Intn(4), labels, trial%2 == 0)
		}
		ci := BuildCandidates(g, p)
		prod := BuildProduct(g, p, ci, 1+trial%4)

		ref := ComputeReference(g, p, ci)
		got := ComputeWithProduct(prod)
		if ref.Matched != got.Matched || !reflect.DeepEqual(ref.InSim, got.InSim) {
			t.Fatalf("trial %d: refinement diverges from reference\npattern=%s", trial, p)
		}

		an := pattern.Analyze(p)
		space := BuildRelSpace(g, p, ci, an)
		root := p.Output()
		for _, alive := range [][]bool{nil, got.InSim} {
			want := ComputeRelevantReference(g, p, ci, an, space, alive, root, true)
			for _, workers := range []int{1, 3} {
				have := ComputeRelevant(prod, an, space, alive, root, true, workers)
				if !reflect.DeepEqual(want.Sizes, have.Sizes) {
					t.Fatalf("trial %d (workers %d): relevant sizes diverge\nref %v\ncsr %v\npattern=%s",
						trial, workers, want.Sizes, have.Sizes, p)
				}
				for i := range want.Sets {
					if (want.Sets[i] == nil) != (have.Sets[i] == nil) {
						t.Fatalf("trial %d: set presence diverges at %d", trial, i)
					}
					if want.Sets[i] != nil && !want.Sets[i].Equal(have.Sets[i]) {
						t.Fatalf("trial %d: set %d diverges: ref %s csr %s", trial, i, want.Sets[i], have.Sets[i])
					}
				}
			}
		}
	}
}

// TestProductTraversalZeroAlloc locks in the point of the materialized CSR:
// walking every forward and reverse product edge allocates nothing.
func TestProductTraversalZeroAlloc(t *testing.T) {
	if racedetect.Enabled {
		t.Skip("race runtime instruments allocations")
	}
	g, _ := testutil.Figure1()
	p := testutil.Figure1Pattern()
	ci := BuildCandidates(g, p)
	prod := BuildProduct(g, p, ci, 1)
	if prod.NumEdges() == 0 {
		t.Fatal("fixture product has no edges")
	}
	allocs := testing.AllocsPerRun(100, func() {
		sum := int32(0)
		for q := int32(0); q < int32(prod.NumPairs()); q++ {
			for _, w := range prod.Succs(q) {
				sum += w
			}
			for e := prod.RevOff[q]; e < prod.RevOff[q+1]; e++ {
				sum += prod.Rev[e] + prod.RevSlot[e]
			}
		}
		if sum == -1 {
			t.Fatal("unreachable")
		}
	})
	if allocs != 0 {
		t.Fatalf("product traversal allocates %.1f per run, want 0", allocs)
	}
}

// TestProductKernelAllocRegression keeps the new kernel's allocation count
// strictly below the reference's: the arena and the materialized adjacency
// must pay for themselves. (The product build is included on the CSR side.)
func TestProductKernelAllocRegression(t *testing.T) {
	if racedetect.Enabled {
		t.Skip("race runtime instruments allocations")
	}
	rng := rand.New(rand.NewSource(41))
	labels := []string{"a", "b"}
	g := testutil.RandomGraph(rng, 400, 1600, labels)
	var p *pattern.Pattern
	for {
		p = testutil.RandomPattern(rng, 3, 4, labels, true)
		if Compute(g, p).Matched {
			break
		}
	}
	ci := BuildCandidates(g, p)
	an := pattern.Analyze(p)
	space := BuildRelSpace(g, p, ci, an)

	refAllocs := testing.AllocsPerRun(10, func() {
		res := ComputeReference(g, p, ci)
		ComputeRelevantReference(g, p, ci, an, space, res.InSim, p.Output(), false)
	})
	csrAllocs := testing.AllocsPerRun(10, func() {
		prod := BuildProduct(g, p, ci, 1)
		res := ComputeWithProduct(prod)
		ComputeRelevant(prod, an, space, res.InSim, p.Output(), false, 1)
	})
	if csrAllocs*2 > refAllocs {
		t.Fatalf("CSR kernel allocates %.0f per query, reference %.0f; want at least a 2x reduction",
			csrAllocs, refAllocs)
	}
}
