package simulation

import (
	"errors"
	"fmt"

	"divtopk/internal/graph"
	"divtopk/internal/parallel"
	"divtopk/internal/pattern"
)

// ErrIncFallback is returned by IncCompute under IncOptions.NoFallback when a
// ratio check would have triggered full recomputation: the affected share of
// the candidate space is too large for incremental maintenance to pay off.
var ErrIncFallback = errors.New("simulation: affected share above RecomputeRatio, incremental maintenance abandoned")

// This file implements delta maintenance of one (graph, pattern) evaluation:
// given the simulation fixpoint and product CSR of a graph snapshot and a
// graph.Delta, IncCompute produces the fixpoint and product of the next
// snapshot by touching only the affected area, with full recomputation as a
// fallback once the affected share of the candidate space makes incremental
// work pointless. This is the simulation-family analogue of incremental
// pattern matching over an affected area (cf. Fan et al., "Incremental Graph
// Pattern Matching"): the class the paper's "frequently updated" motivation
// points at.
//
// Correctness rests on two facts about the counting-based refinement:
//
//  1. The maximum simulation is the greatest fixpoint of the child-condition
//     operator; running the kill cascade from ANY superset S0 of that
//     fixpoint, with counters consistent with S0, converges to exactly the
//     fixpoint. IncCompute builds S0 as (old alive pairs, remapped) ∪ (the
//     revival closure of pairs whose adjacency a delta insert could have
//     improved) ∪ (pairs of appended nodes) — provably a superset, because a
//     dead pair can only come alive through an inserted edge at its data
//     node or through a revived successor, and the closure chases exactly
//     that dependency backwards over reverse product edges.
//  2. At a fixpoint, every alive pair's slot counter equals its number of
//     alive successors (dead pairs stop decrementing, alive pairs never miss
//     a decrement). IncCompute therefore carries the settled counters across
//     deltas, recomputes them only for pairs in the affected area, and
//     increments the counters of untouched alive predecessors once per
//     revived successor — restoring consistency with S0 in time linear in
//     the affected area, not the product.
//
// The resulting Result and Product are byte-identical to a from-scratch
// Compute/BuildProduct on the new snapshot (the fixpoint is unique, and
// PatchProduct reproduces BuildProduct's layout exactly); the randomized
// delta-sequence fuzz in inc_test.go enforces this against the oracle.

// IncState is the maintained evaluation state of one pattern against one
// graph snapshot. Build the first one with NewIncState, then advance it one
// delta at a time with IncCompute. States are immutable snapshots like
// graphs: IncCompute returns a new state and leaves the old one usable.
type IncState struct {
	G    *graph.Graph
	P    *pattern.Pattern
	CI   *CandidateIndex
	Prod *Product
	Res  *Result

	// cnt holds the settled per-slot alive-successor counters of the
	// fixpoint (valid for alive pairs; frozen garbage for dead ones).
	cnt []int32
}

// NewIncState evaluates p against g from scratch (candidates, product CSR,
// simulation fixpoint) with up to workers goroutines (<= 0 means all cores).
func NewIncState(g *graph.Graph, p *pattern.Pattern, workers int) *IncState {
	ci := BuildCandidatesParallel(g, p, workers)
	return NewIncStateSeeded(g, p, ci, workers)
}

// NewIncStateSeeded is NewIncState with a prebuilt candidate index: the
// containment-seeded admission path has already derived ci from a cached
// superset entry (byte-identical to BuildCandidatesParallel on (g, p)), so
// only the product CSR and the simulation fixpoint remain to be built.
func NewIncStateSeeded(g *graph.Graph, p *pattern.Pattern, ci *CandidateIndex, workers int) *IncState {
	prod := BuildProduct(g, p, ci, workers)
	res, cnt := computeWithProductCnt(prod)
	return &IncState{G: g, P: p, CI: ci, Prod: prod, Res: res, cnt: cnt}
}

// IncOptions tune IncCompute.
type IncOptions struct {
	// Workers bounds the goroutines of the fallback full builds and of the
	// per-query-node candidate extension (<= 0 means all cores). The cascade
	// passes stay sequential: they are linear in the affected area by design,
	// and the kill order feeds a shared worklist. Results are byte-identical
	// for every Workers value.
	Workers int
	// RecomputeRatio is the affected-share threshold above which IncCompute
	// abandons incremental maintenance for a full recompute (default 0.25):
	// once a quarter of the candidate pairs need fresh counters, seeding the
	// cascade costs as much as starting over, without the simpler code path.
	RecomputeRatio float64
	// NoFallback makes IncCompute return ErrIncFallback instead of falling
	// back to a full recompute when a ratio check trips. Callers maintaining
	// many states at once (the matcher's warm result cache) evict the entry
	// on that error rather than pay a rebuild inside the commit path.
	NoFallback bool
}

func (o IncOptions) ratio() float64 {
	if o.RecomputeRatio <= 0 {
		return 0.25
	}
	return o.RecomputeRatio
}

// IncStats describes what one IncCompute call did.
type IncStats struct {
	// TotalPairs is the candidate-pair count of the new snapshot.
	TotalPairs int
	// TouchedPairs counts pairs whose data node's out-adjacency the delta
	// changed, plus the pairs of appended nodes.
	TouchedPairs int
	// AffectedPairs counts the pairs whose counters were recomputed: touched
	// pairs plus the revival closure. Equal to TouchedPairs when the early
	// fallback fired (the closure is never computed then).
	AffectedPairs int
	// RebuiltProduct and Recomputed report the two fallback levels: a full
	// BuildProduct instead of the incremental patch, and a full refinement
	// instead of the seeded cascade.
	RebuiltProduct bool
	Recomputed     bool
}

// IncCompute advances st by one delta: gNew must be the graph ApplyDelta
// produced from (st.G, d). It returns the evaluation state of gNew, with
// Res and Prod byte-identical to a from-scratch evaluation. The affected
// area is the pairs whose product adjacency or counters a delta entry can
// reach; when its share of the candidate space exceeds IncOptions'
// RecomputeRatio the call falls back to full recomputation (checked twice:
// against the touched share before any product work, and against the
// closure share before the seeded cascade).
func IncCompute(st *IncState, gNew *graph.Graph, d *graph.Delta, opts IncOptions) (*IncState, IncStats, error) {
	nOld := st.G.NumNodes()
	if gNew.NumNodes() != nOld+len(d.NodeAppends) {
		return nil, IncStats{}, fmt.Errorf("simulation: IncCompute: graph has %d nodes, want %d (old %d + %d appends) — gNew must be ApplyDelta(st.G, d)",
			gNew.NumNodes(), nOld+len(d.NodeAppends), nOld, len(d.NodeAppends))
	}
	workers := parallel.Workers(opts.Workers)
	p, nq := st.P, st.P.NumNodes()

	// Candidacy depends only on node labels and attributes, which an
	// edge-only delta cannot touch: the old index is shared as-is (states
	// are immutable), sparing the O(|Vp|·|V|) pos-table copies.
	ci := st.CI
	if len(d.NodeAppends) > 0 {
		ci = extendCandidates(gNew, p, st.CI, nOld, workers)
	}
	total := ci.NumPairs()
	stats := IncStats{TotalPairs: total}

	// shift[u] maps old pair IDs of query node u to new ones: appends land
	// at the tail of each candidate list, so positions of old candidates are
	// unchanged and only the per-query-node offsets move.
	shift := make([]int32, nq)
	for u := 0; u < nq; u++ {
		shift[u] = ci.Offsets[u] - st.CI.Offsets[u]
	}

	// touched[v]: v's out-adjacency changed, so every pair on v rebuilds its
	// forward slots and counters. Deletes cannot revive anything, but they
	// do change slot contents, so both directions count.
	touched := make([]bool, gNew.NumNodes())
	for _, e := range d.EdgeInserts {
		touched[e[0]] = true
	}
	for _, e := range d.EdgeDeletes {
		touched[e[0]] = true
	}
	for q := 0; q < total; q++ {
		if v := ci.V[q]; int(v) >= nOld || touched[v] {
			stats.TouchedPairs++
		}
	}

	full := func(prod *Product, rebuilt bool) (*IncState, IncStats, error) {
		if prod == nil {
			prod = BuildProduct(gNew, p, ci, workers)
		}
		res, cnt := computeWithProductCnt(prod)
		stats.RebuiltProduct = rebuilt
		stats.Recomputed = true
		return &IncState{G: gNew, P: p, CI: ci, Prod: prod, Res: res, cnt: cnt}, stats, nil
	}
	if total == 0 || float64(stats.TouchedPairs)/float64(total) > opts.ratio() {
		stats.AffectedPairs = stats.TouchedPairs
		if opts.NoFallback {
			return nil, stats, ErrIncFallback
		}
		return full(nil, true)
	}

	prod := PatchProduct(st.Prod, gNew, ci, shift, touched, nOld)

	// Seed S0: old alive pairs stay alive; touched dead pairs and appended
	// pairs are optimistically revived, then the revival closure chases dead
	// predecessors over reverse product edges (a dead pair can only come
	// alive through its own new edges or through a revived successor).
	inSim := make([]bool, total)
	recompute := make([]bool, total)
	var revive []int32
	for q := int32(0); q < int32(total); q++ {
		u, v := ci.U[q], ci.V[q]
		if int(v) >= nOld {
			inSim[q] = true
			recompute[q] = true
			revive = append(revive, q)
			continue
		}
		alive := st.Res.InSim[q-shift[u]]
		inSim[q] = alive
		if touched[v] {
			recompute[q] = true
			if !alive {
				inSim[q] = true
				revive = append(revive, q)
			}
		}
	}
	// The closure expansion is the shared affected-area traversal
	// (graph.Expand) that also drives the bound index's Advance: the same
	// worklist discipline, here over reverse product edges.
	revive = graph.Expand(revive, func(q int32, emit func(int32)) {
		for e := prod.RevOff[q]; e < prod.RevOff[q+1]; e++ {
			emit(prod.Rev[e])
		}
	}, func(pid int32) bool {
		if inSim[pid] {
			return false
		}
		inSim[pid] = true
		recompute[pid] = true
		return true
	})
	affected := 0
	for q := 0; q < total; q++ {
		if recompute[q] {
			affected++
		}
	}
	stats.AffectedPairs = affected
	if float64(affected)/float64(total) > opts.ratio() {
		if opts.NoFallback {
			return nil, stats, ErrIncFallback
		}
		return full(prod, false)
	}

	// Counters consistent with the frozen S0 (no pair is killed until every
	// counter is settled, mirroring the fresh compute where counters are
	// structural slot lengths): affected pairs count their S0 successors
	// fresh; untouched alive pairs carry the settled fixpoint counters
	// (remapped to the new slot layout) plus one increment per revived
	// successor, which the old counters had decremented away. Every death —
	// including a revived pair that dies right back — then flows through the
	// cascade, decrementing exactly the counters that counted it.
	cnt := make([]int32, prod.Base[total])
	for q := int32(0); q < int32(total); q++ {
		if !inSim[q] {
			continue
		}
		b := prod.Base[q]
		if recompute[q] {
			for s := b; s < prod.Base[q+1]; s++ {
				c := int32(0)
				for e := prod.SlotOff[s]; e < prod.SlotOff[s+1]; e++ {
					if inSim[prod.Fwd[e]] {
						c++
					}
				}
				cnt[s] = c
			}
			continue
		}
		oldQ := q - shift[ci.U[q]]
		copy(cnt[b:prod.Base[q+1]], st.cnt[st.Prod.Base[oldQ]:st.Prod.Base[oldQ+1]])
	}
	for _, q := range revive {
		for e := prod.RevOff[q]; e < prod.RevOff[q+1]; e++ {
			pid := prod.Rev[e]
			if inSim[pid] && !recompute[pid] {
				cnt[prod.RevSlot[e]]++
			}
		}
	}

	// Seed the kill queue from the affected area: only freshly counted pairs
	// can hold a zero slot (untouched alive counters were >= 1 at the old
	// fixpoint and increments only grow them).
	var dead []int32
	for q := int32(0); q < int32(total); q++ {
		if !inSim[q] || !recompute[q] {
			continue
		}
		for s := prod.Base[q]; s < prod.Base[q+1]; s++ {
			if cnt[s] == 0 {
				inSim[q] = false
				dead = append(dead, q)
				break
			}
		}
	}

	// The standard kill cascade, seeded from the affected area only.
	for len(dead) > 0 {
		id := dead[len(dead)-1]
		dead = dead[:len(dead)-1]
		for e := prod.RevOff[id]; e < prod.RevOff[id+1]; e++ {
			pid := prod.Rev[e]
			if !inSim[pid] {
				continue
			}
			s := prod.RevSlot[e]
			cnt[s]--
			if cnt[s] == 0 {
				inSim[pid] = false
				dead = append(dead, pid)
			}
		}
	}

	res := &Result{CI: ci, InSim: inSim, Matched: matched(ci, inSim, nq)}
	return &IncState{G: gNew, P: p, CI: ci, Prod: prod, Res: res, cnt: cnt}, stats, nil
}

// extendCandidates derives the candidate index of the new snapshot from the
// old one: existing nodes never change label or attributes, so old candidate
// lists are reused verbatim and only the appended nodes (whose IDs exceed
// every old ID, keeping lists sorted) are filtered against each query node's
// search condition. The result is identical to BuildCandidates on the new
// graph, and identical for every workers value: each query node's shard is
// computed independently and only the sequential prefix sum orders them.
func extendCandidates(gNew *graph.Graph, p *pattern.Pattern, old *CandidateIndex, nOld int, workers int) *CandidateIndex {
	nq := p.NumNodes()
	nNew := gNew.NumNodes()
	ci := &CandidateIndex{
		Lists:   make([][]graph.NodeID, nq),
		Offsets: make([]int32, nq+1),
		pos:     make([][]int32, nq),
	}
	// Filter the appended nodes against every query node's search condition
	// concurrently; the per-u lists are independent, so the only sequential
	// step is the offset prefix sum below.
	parallel.ForEach(nq, workers, func(u int) {
		lst := old.Lists[u]
		lst = lst[:len(lst):len(lst)]
		for v := nOld; v < nNew; v++ {
			if p.MatchesNode(gNew, u, graph.NodeID(v)) {
				lst = append(lst, graph.NodeID(v))
			}
		}
		ci.Lists[u] = lst
	})
	for u := 0; u < nq; u++ {
		ci.Offsets[u+1] = ci.Offsets[u] + int32(len(ci.Lists[u]))
	}
	total := int(ci.Offsets[nq])
	ci.U = make([]int32, total)
	ci.V = make([]graph.NodeID, total)
	// Each query node fills the disjoint pair-ID range its offsets carve out,
	// plus its own pos table: no two iterations share a write target.
	parallel.ForEach(nq, workers, func(u int) {
		pos := make([]int32, nNew)
		copy(pos, old.pos[u])
		for i, v := range ci.Lists[u] {
			id := ci.Offsets[u] + int32(i)
			ci.U[id] = int32(u)
			ci.V[id] = v
			if i >= len(old.Lists[u]) {
				pos[v] = int32(i) + 1
			}
		}
		ci.pos[u] = pos
	})
	return ci
}

// PatchProduct derives the product CSR of the new snapshot from the old one
// in one linear merge pass: pairs whose data node kept its out-adjacency
// copy their slot lists with pair IDs remapped through the per-query-node
// shift (successor order is preserved, so the layout matches BuildProduct's
// exactly), while touched and appended pairs rebuild their slots by scanning
// the new adjacency. The reverse CSR is rebuilt by the same sequential pass
// BuildProduct uses. shift and touched are as computed by IncCompute; nOld
// is the old snapshot's node count.
func PatchProduct(old *Product, gNew *graph.Graph, ci *CandidateIndex, shift []int32, touched []bool, nOld int) *Product {
	p := old.P
	total := ci.NumPairs()
	base := make([]int32, total+1)
	for q := 0; q < total; q++ {
		base[q+1] = base[q] + int32(len(p.Out(int(ci.U[q]))))
	}
	slotOff := make([]int32, base[total]+1)
	fwd := make([]int32, 0, len(old.Fwd))
	oldCI := old.CI
	for q := int32(0); q < int32(total); q++ {
		u := int(ci.U[q])
		v := ci.V[q]
		b := base[q]
		if int(v) < nOld && !touched[v] {
			ob := old.Base[q-shift[u]]
			for j := range p.Out(u) {
				s := ob + int32(j)
				for e := old.SlotOff[s]; e < old.SlotOff[s+1]; e++ {
					t := old.Fwd[e]
					fwd = append(fwd, t+shift[oldCI.U[t]])
				}
				slotOff[b+int32(j)+1] = int32(len(fwd))
			}
		} else {
			for j, uc := range p.Out(u) {
				for _, w := range gNew.Out(v) {
					if pid := ci.Pair(uc, w); pid >= 0 {
						fwd = append(fwd, pid)
					}
				}
				slotOff[b+int32(j)+1] = int32(len(fwd))
			}
		}
		if len(fwd) > int(^uint32(0)>>1) {
			panic(fmt.Sprintf("simulation: product graph exceeds %d edges", ^uint32(0)>>1))
		}
	}
	pr := &Product{G: gNew, P: p, CI: ci, Base: base, SlotOff: slotOff, Fwd: fwd}
	pr.buildReverse()
	return pr
}
