package simulation

import (
	"divtopk/internal/bitset"
	"divtopk/internal/graph"
	"divtopk/internal/parallel"
	"divtopk/internal/pattern"
)

// The product graph has one node per alive candidate pair (u,v) and an edge
// (u,v) → (u',v') whenever (u,u') ∈ Ep, (v,v') ∈ E, and both pairs are
// alive. The relevant set R(u,v) of §3.1 is exactly the set of *data nodes*
// of the pairs reachable from (u,v) by a non-empty path in the product graph
// restricted to M(Q,G) — which also makes precise the paper's observation
// (Example 8) that a match on a product cycle contains itself in its own
// relevant set.
//
// Run over the *candidate* product graph (alive = all candidates) the same
// reachability yields R̂(u,v) ⊇ R(u,v), whose cardinality is the tight upper
// bound h(u,v) that reproduces the h values of the paper's Examples 7 and 8
// (see internal/core/bounds.go).

// RelevantResult carries relevant sets (or just their sizes) for the
// candidates of one root query node, typically the output node uo.
type RelevantResult struct {
	Space *RelSpace
	// Sizes[i] = |R(root, Lists[root][i])| for alive pairs, -1 otherwise.
	Sizes []int32
	// Sets[i] is the relevant set over Space, nil unless keepSets was set
	// (or the pair is dead).
	Sets []*bitset.Set
}

// relevantQueryNodes marks the query nodes whose candidates can contribute
// to relevant sets of root: root itself and everything reachable from it.
func relevantQueryNodes(p *pattern.Pattern, an *pattern.Analysis, root int) []bool {
	relQ := make([]bool, p.NumNodes())
	relQ[root] = true
	for u := 0; u < p.NumNodes(); u++ {
		if an.OutputDesc[u] {
			relQ[u] = true
		}
	}
	// OutputDesc is relative to p.Output(); when root differs (multi-output
	// extension), recompute reachability from root.
	if root != p.Output() {
		for i := range relQ {
			relQ[i] = i == root
		}
		stack := []int{root}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range p.Out(u) {
				if !relQ[w] {
					relQ[w] = true
					stack = append(stack, w)
				}
			}
		}
	}
	return relQ
}

// ComputeRelevant computes the relevant sets of every alive candidate of
// root over a materialized product CSR. alive selects the pair universe
// (nil = all candidates = the R̂ upper bound; Result.InSim = the paper's R
// over M(Q,G)). keepSets retains each root pair's bitset (as an independent
// clone); with keepSets=false only the sizes survive.
//
// The kernel runs over the SCC condensation of the (alive ∩ relevant)
// product subgraph in reverse topological order, level by level: all
// components of one topological rank depend only on lower ranks, so their
// union work fans out over workers goroutines (<= 0 = all cores) with
// deterministic results — unions are commutative and every write lands in a
// distinct component's set. Interior bitsets come from a bitset.Arena and
// return to it as soon as every predecessor has consumed them, keeping both
// peak memory and allocator traffic proportional to the frontier of the
// condensed product DAG instead of its total size.
func ComputeRelevant(prod *Product, an *pattern.Analysis, space *RelSpace,
	alive []bool, root int, keepSets bool, workers int) *RelevantResult {

	p := prod.P
	ci := prod.CI
	workers = parallel.Workers(workers)
	lo, hi := ci.PairRange(root)
	res := &RelevantResult{
		Space: space,
		Sizes: make([]int32, hi-lo),
		Sets:  make([]*bitset.Set, hi-lo),
	}
	for i := range res.Sizes {
		res.Sizes[i] = -1
	}

	relQ := relevantQueryNodes(p, an, root)

	// Materialize the filtered product sub-CSR: sources must be alive and
	// relevant, targets alive (targets of relevant sources are relevant by
	// construction). Filtering preserves the product's edge order, so the
	// condensation is identical to the reference kernel's.
	n := ci.NumPairs()
	foff := make([]int32, n+1)
	parallel.ForEach(n, workers, func(qi int) {
		q := int32(qi)
		if !relQ[ci.U[q]] || (alive != nil && !alive[q]) {
			return
		}
		c := int32(0)
		for _, t := range prod.Succs(q) {
			if alive == nil || alive[t] {
				c++
			}
		}
		foff[q+1] = c
	})
	for q := 0; q < n; q++ {
		foff[q+1] += foff[q]
	}
	fadj := make([]int32, foff[n])
	parallel.ForEach(n, workers, func(qi int) {
		q := int32(qi)
		if !relQ[ci.U[q]] || (alive != nil && !alive[q]) {
			return
		}
		e := foff[q]
		for _, t := range prod.Succs(q) {
			if alive == nil || alive[t] {
				fadj[e] = t
				e++
			}
		}
	})
	cond := graph.CondenseCSR(n, foff, fadj)

	arena := bitset.NewArena(space.Size())
	nWords := int32((space.Size() + 63) / 64)
	sets := make([]*bitset.Set, cond.NumComps)
	// spanLo/spanHi[c] is the half-open word range holding every set bit of
	// sets[c] (empty when lo >= hi). Unions, counts and the clears on
	// release run over spans instead of the full universe width, so the
	// kernel pays for the sets' actual extent — relevant sets are narrow in
	// a wide universe.
	spanLo := make([]int32, cond.NumComps)
	spanHi := make([]int32, cond.NumComps)
	pending := make([]int, cond.NumComps)
	keep := make([]bool, cond.NumComps) // comps holding root pairs: retain
	for c := 0; c < cond.NumComps; c++ {
		pending[c] = len(cond.Pred[c])
	}
	for id := lo; id < hi; id++ {
		if alive == nil || alive[id] {
			keep[cond.Comp[id]] = true
		}
	}

	// Components grouped by topological rank (SCC indices are a reverse
	// topological order, so ascending index within a level preserves the
	// reference processing order).
	maxRank := int32(0)
	for _, r := range cond.Rank {
		if r > maxRank {
			maxRank = r
		}
	}
	levelLen := make([]int32, maxRank+2)
	for _, r := range cond.Rank {
		levelLen[r+1]++
	}
	for l := int32(0); l <= maxRank; l++ {
		levelLen[l+1] += levelLen[l]
	}
	levels := make([]int32, cond.NumComps)
	levelNext := make([]int32, maxRank+1)
	copy(levelNext, levelLen[:maxRank+1])
	for c := int32(0); c < int32(cond.NumComps); c++ {
		r := cond.Rank[c]
		levels[levelNext[r]] = c
		levelNext[r]++
	}

	// process computes one component's set. Invariant: sets[c] = data nodes
	// reachable from c's pairs in >= 0 steps *including c's own members* —
	// i.e. what a predecessor comp sees through c. A pair's own relevant set
	// is the >= 1 step variant: for trivial comps it is recorded before
	// self-insertion, for nontrivial comps after (mutual reachability puts
	// members in their own relevant sets, cf. Example 8 where
	// DB3 ∈ R(DB,DB3)).
	process := func(c int32) {
		s := sets[c]
		sLo, sHi := nWords, int32(0) // empty span
		for _, succ := range cond.Succ[c] {
			if sets[succ] != nil && spanLo[succ] < spanHi[succ] {
				s.UnionRange(sets[succ], int(spanLo[succ]), int(spanHi[succ]))
				if spanLo[succ] < sLo {
					sLo = spanLo[succ]
				}
				if spanHi[succ] > sHi {
					sHi = spanHi[succ]
				}
			}
		}
		addSelf := func(idx int32) {
			s.Add(int(idx))
			w := idx >> 6
			if w < sLo {
				sLo = w
			}
			if w+1 > sHi {
				sHi = w + 1
			}
		}
		record := func(id int32) {
			if id < lo || id >= hi {
				return
			}
			i := id - lo
			res.Sizes[i] = int32(s.CountRange(int(sLo), int(sHi)))
			if keepSets {
				res.Sets[i] = s.Clone()
			}
		}
		if cond.Nontrivial[c] {
			for _, id := range cond.Members[c] {
				if idx := space.Index(ci.V[id]); idx >= 0 {
					addSelf(idx)
				}
			}
			for _, id := range cond.Members[c] {
				record(id)
			}
		} else {
			id := cond.Members[c][0]
			if keepSets && id >= lo && id < hi && len(cond.Pred[c]) == 0 {
				// Root pair whose component no other component reads (the
				// common case: the output node has no predecessors in the
				// relevance-restricted product): hand the arena set over
				// instead of cloning it. Skipping the self-insertion is
				// sound because only predecessors observe it.
				i := id - lo
				res.Sizes[i] = int32(s.CountRange(int(sLo), int(sHi)))
				res.Sets[i] = s
				spanLo[c], spanHi[c] = sLo, sHi
				return
			}
			record(id)
			if idx := space.Index(ci.V[id]); idx >= 0 {
				addSelf(idx)
			}
		}
		spanLo[c], spanHi[c] = sLo, sHi
	}

	// skipped reports whether a component is an isolated singleton of an
	// irrelevant or dead pair; those never get a set and cost nothing.
	skipped := func(c int32) bool {
		if len(cond.Members[c]) != 1 || len(cond.Succ[c]) != 0 || cond.Nontrivial[c] {
			return false
		}
		id := cond.Members[c][0]
		return !relQ[ci.U[id]] || (alive != nil && !alive[id])
	}

	for l := int32(0); l <= maxRank; l++ {
		level := levels[levelLen[l]:levelLen[l+1]]
		// Sequential phase: allocate this level's sets from the arena.
		live := level[:0:0]
		for _, c := range level {
			if skipped(c) {
				continue
			}
			sets[c] = arena.Get()
			live = append(live, c)
		}
		// Parallel phase: union work only. Successor sets live in lower
		// levels and are read-only here; every write targets the
		// component's own set (or a disjoint res.Sizes/Sets entry).
		if workers > 1 && len(live) > 1 {
			parallel.ForEach(len(live), workers, func(i int) { process(live[i]) })
		} else {
			for _, c := range live {
				process(c)
			}
		}
		// Sequential phase: consume-and-release bookkeeping. A successor
		// returns to the arena once every predecessor has taken its union
		// (all predecessors sit in levels > its own, so this runs after the
		// last consumer); components nobody keeps or reads release
		// immediately.
		for _, c := range live {
			for _, succ := range cond.Succ[c] {
				pending[succ]--
				if pending[succ] == 0 && !keep[succ] && sets[succ] != nil {
					sets[succ].ClearRange(int(spanLo[succ]), int(spanHi[succ]))
					arena.Put(sets[succ])
					sets[succ] = nil
				}
			}
			if pending[c] == 0 && !keep[c] {
				sets[c].ClearRange(int(spanLo[c]), int(spanHi[c]))
				arena.Put(sets[c])
				sets[c] = nil
			}
		}
	}
	return res
}

// recordRoot stores the set/size for pairs of the root query node.
func recordRoot(res *RelevantResult, ci *CandidateIndex, lo, hi, id int32,
	shared *bitset.Set, keepSets bool) {
	if id < lo || id >= hi {
		return
	}
	i := id - lo
	res.Sizes[i] = int32(shared.Count())
	if keepSets {
		res.Sets[i] = shared.Clone()
	}
}

// RelevantSetNaive computes R(u,v) by a direct DFS over the product graph,
// returning the set of data nodes as a bitset over [0, g.NumNodes()). It is
// the reference implementation used by tests (and by tiny interactive
// queries); O(product size) per call. The accumulators are bitsets over the
// pair and node universes — the representation the rest of this file uses —
// rather than hash maps.
func RelevantSetNaive(g *graph.Graph, p *pattern.Pattern, ci *CandidateIndex,
	alive []bool, u int, v graph.NodeID) *bitset.Set {

	start := ci.Pair(u, v)
	if start < 0 || (alive != nil && !alive[start]) {
		return nil
	}
	adj := productAdjReference(g, p, ci, alive)
	seen := bitset.New(ci.NumPairs())
	out := bitset.New(g.NumNodes())
	var stack []int32
	visit := func(id int32) {
		if seen.Add(int(id)) {
			out.Add(int(ci.V[id]))
			stack = append(stack, id)
		}
	}
	adj(start, visit)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		adj(id, visit)
	}
	return out
}
