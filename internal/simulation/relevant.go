package simulation

import (
	"divtopk/internal/bitset"
	"divtopk/internal/graph"
	"divtopk/internal/pattern"
)

// The product graph has one node per alive candidate pair (u,v) and an edge
// (u,v) → (u',v') whenever (u,u') ∈ Ep, (v,v') ∈ E, and both pairs are
// alive. The relevant set R(u,v) of §3.1 is exactly the set of *data nodes*
// of the pairs reachable from (u,v) by a non-empty path in the product graph
// restricted to M(Q,G) — which also makes precise the paper's observation
// (Example 8) that a match on a product cycle contains itself in its own
// relevant set.
//
// Run over the *candidate* product graph (alive = all candidates) the same
// reachability yields R̂(u,v) ⊇ R(u,v), whose cardinality is the tight upper
// bound h(u,v) that reproduces the h values of the paper's Examples 7 and 8
// (see internal/core/bounds.go).

// productAdj returns an adjacency callback over pairs of ci restricted to
// alive pairs. A nil alive mask means all candidate pairs are alive.
func productAdj(g *graph.Graph, p *pattern.Pattern, ci *CandidateIndex, alive []bool) graph.AdjFunc {
	return func(id int32, emit func(int32)) {
		if alive != nil && !alive[id] {
			return
		}
		u := int(ci.U[id])
		v := ci.V[id]
		for _, uc := range p.Out(u) {
			for _, w := range g.Out(v) {
				pid := ci.Pair(uc, w)
				if pid >= 0 && (alive == nil || alive[pid]) {
					emit(pid)
				}
			}
		}
	}
}

// RelevantResult carries relevant sets (or just their sizes) for the
// candidates of one root query node, typically the output node uo.
type RelevantResult struct {
	Space *RelSpace
	// Sizes[i] = |R(root, Lists[root][i])| for alive pairs, -1 otherwise.
	Sizes []int32
	// Sets[i] is the relevant set over Space, nil unless keepSets was set
	// (or the pair is dead).
	Sets []*bitset.Set
}

// ComputeRelevant computes the relevant sets of every alive candidate of
// root. alive selects the pair universe (nil = all candidates = the R̂ upper
// bound; Result.InSim = the paper's R over M(Q,G)). keepSets retains each
// root pair's bitset; with keepSets=false only the sizes survive and interior
// bitsets are freed as soon as every predecessor has consumed them, keeping
// peak memory proportional to the frontier of the condensed product DAG.
func ComputeRelevant(g *graph.Graph, p *pattern.Pattern, ci *CandidateIndex,
	an *pattern.Analysis, space *RelSpace, alive []bool, root int, keepSets bool) *RelevantResult {

	lo, hi := ci.PairRange(root)
	res := &RelevantResult{
		Space: space,
		Sizes: make([]int32, hi-lo),
		Sets:  make([]*bitset.Set, hi-lo),
	}
	for i := range res.Sizes {
		res.Sizes[i] = -1
	}

	// Pairs that matter: candidates of root and of query nodes reachable
	// from root. Other pairs are isolated singletons below (their adjacency
	// is suppressed), so they cost nothing.
	relQ := make([]bool, p.NumNodes())
	relQ[root] = true
	for u := 0; u < p.NumNodes(); u++ {
		if an.OutputDesc[u] {
			relQ[u] = true
		}
	}
	// OutputDesc is relative to p.Output(); when root differs (multi-output
	// extension), recompute reachability from root.
	if root != p.Output() {
		for i := range relQ {
			relQ[i] = i == root
		}
		stack := []int{root}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range p.Out(u) {
				if !relQ[w] {
					relQ[w] = true
					stack = append(stack, w)
				}
			}
		}
	}

	adj := productAdj(g, p, ci, alive)
	restricted := func(id int32, emit func(int32)) {
		if !relQ[ci.U[id]] {
			return
		}
		adj(id, emit)
	}
	cond := graph.Condense(ci.NumPairs(), restricted)

	sets := make([]*bitset.Set, cond.NumComps)
	pending := make([]int, cond.NumComps)
	keep := make([]bool, cond.NumComps) // comps holding root pairs: retain
	for c := 0; c < cond.NumComps; c++ {
		pending[c] = len(cond.Pred[c])
	}
	for id := lo; id < hi; id++ {
		if alive == nil || alive[id] {
			keep[cond.Comp[id]] = true
		}
	}

	release := func(c int32) {
		pending[c]--
		if pending[c] == 0 && !keep[c] {
			sets[c] = nil
		}
	}

	for c := 0; c < cond.NumComps; c++ {
		// Skip singleton comps of irrelevant or dead pairs cheaply.
		if len(cond.Members[c]) == 1 && len(cond.Succ[c]) == 0 && !cond.Nontrivial[c] {
			id := cond.Members[c][0]
			if !relQ[ci.U[id]] || (alive != nil && !alive[id]) {
				continue
			}
		}
		// Invariant: sets[c] = data nodes reachable from c's pairs in >= 0
		// steps *including c's own members* — i.e. what a predecessor comp
		// sees through c. A pair's own relevant set is the >= 1 step variant:
		// for trivial comps it is recorded before self-insertion, for
		// nontrivial comps after (mutual reachability puts members in their
		// own relevant sets, cf. Example 8 where DB3 ∈ R(DB,DB3)).
		s := space.NewSet()
		for _, succ := range cond.Succ[c] {
			if sets[succ] != nil {
				s.UnionWith(sets[succ])
			}
			release(int32(succ))
		}
		if cond.Nontrivial[c] {
			for _, id := range cond.Members[c] {
				if idx := space.Index(ci.V[id]); idx >= 0 {
					s.Add(int(idx))
				}
			}
			for _, id := range cond.Members[c] {
				recordRoot(res, ci, lo, hi, id, s, keepSets)
			}
		} else {
			id := cond.Members[c][0]
			recordRoot(res, ci, lo, hi, id, s, keepSets)
			if idx := space.Index(ci.V[id]); idx >= 0 {
				s.Add(int(idx))
			}
		}
		sets[c] = s
		if pending[c] == 0 && !keep[c] {
			sets[c] = nil
		}
	}
	return res
}

// recordRoot stores the set/size for pairs of the root query node.
func recordRoot(res *RelevantResult, ci *CandidateIndex, lo, hi, id int32,
	shared *bitset.Set, keepSets bool) {
	if id < lo || id >= hi {
		return
	}
	i := id - lo
	res.Sizes[i] = int32(shared.Count())
	if keepSets {
		res.Sets[i] = shared.Clone()
	}
}

// RelevantSetNaive computes R(u,v) by a direct DFS over the product graph,
// returning data nodes. It is the reference implementation used by tests
// (and by tiny interactive queries); O(product size) per call.
func RelevantSetNaive(g *graph.Graph, p *pattern.Pattern, ci *CandidateIndex,
	alive []bool, u int, v graph.NodeID) map[graph.NodeID]bool {

	start := ci.Pair(u, v)
	if start < 0 || (alive != nil && !alive[start]) {
		return nil
	}
	adj := productAdj(g, p, ci, alive)
	seen := make(map[int32]bool)
	out := make(map[graph.NodeID]bool)
	var stack []int32
	visit := func(id int32) {
		if !seen[id] {
			seen[id] = true
			out[ci.V[id]] = true
			stack = append(stack, id)
		}
	}
	adj(start, visit)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		adj(id, visit)
	}
	return out
}
