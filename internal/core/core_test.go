package core

import (
	"math/rand"
	"sort"
	"testing"

	"divtopk/internal/graph"
	"divtopk/internal/pattern"
	"divtopk/internal/testutil"
)

func TestExample7TopKDAG(t *testing.T) {
	// Q1 = {(PM,DB),(PM,PRG),(PRG,DB)}, k=1: TopKDAG identifies PM2 (δr=3)
	// and terminates after a single covering batch fed {DB2}.
	g, id := testutil.Figure1()
	q1 := testutil.Example7Pattern()
	res, err := TopKDAG(g, q1, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.GlobalMatch || len(res.Matches) != 1 {
		t.Fatalf("got %d matches, global=%v", len(res.Matches), res.GlobalMatch)
	}
	if res.Matches[0].Node != id["PM2"] {
		t.Fatalf("top-1 = node %d, want PM2 (%d)", res.Matches[0].Node, id["PM2"])
	}
	if res.Matches[0].Relevance != 3 {
		t.Fatalf("δr(PM2) = %d, want 3", res.Matches[0].Relevance)
	}
	if res.Stats.Batches != 1 {
		t.Errorf("batches = %d, want 1 (Example 7: single iteration)", res.Stats.Batches)
	}
	if !res.Stats.EarlyTerminated {
		t.Error("Example 7 must terminate early")
	}
}

func TestExample8TopKCyclic(t *testing.T) {
	// Full pattern Q, k=2: TopK returns {PM2, PM3} (PM3 ties PM4 at δr=6;
	// node order breaks the tie exactly as the paper reports PM3).
	g, id := testutil.Figure1()
	p := testutil.Figure1Pattern()
	res, err := TopK(g, p, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 2 {
		t.Fatalf("got %d matches", len(res.Matches))
	}
	if res.Matches[0].Node != id["PM2"] || res.Matches[0].Relevance != 8 {
		t.Fatalf("first = %d rel %d, want PM2 rel 8", res.Matches[0].Node, res.Matches[0].Relevance)
	}
	if res.Matches[1].Node != id["PM3"] || res.Matches[1].Relevance != 6 {
		t.Fatalf("second = %d rel %d, want PM3 rel 6", res.Matches[1].Node, res.Matches[1].Relevance)
	}
	// TopKDAG must refuse the cyclic pattern.
	if _, err := TopKDAG(g, p, 2, Options{}); err != ErrNotDAG {
		t.Fatalf("TopKDAG on cyclic pattern: err = %v, want ErrNotDAG", err)
	}
}

func TestMatchBaselineFigure1(t *testing.T) {
	g, id := testutil.Figure1()
	p := testutil.Figure1Pattern()
	res, err := MatchBaseline(g, p, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.GlobalMatch {
		t.Fatal("G matches Q")
	}
	if res.Stats.MatchesFound != 4 {
		t.Fatalf("baseline examined %d matches, want all 4", res.Stats.MatchesFound)
	}
	// Example 4 relevances: PM2=8, PM3=PM4=6, PM1=4.
	want := map[graph.NodeID]int{id["PM1"]: 4, id["PM2"]: 8, id["PM3"]: 6, id["PM4"]: 6}
	for _, m := range res.All {
		if want[m.Node] != m.Relevance {
			t.Errorf("δr(node %d) = %d, want %d", m.Node, m.Relevance, want[m.Node])
		}
		if !m.Exact || m.Upper != m.Relevance {
			t.Errorf("baseline match must be exact")
		}
		if m.R == nil || m.R.Count() != m.Relevance {
			t.Errorf("baseline R set inconsistent")
		}
	}
	// Top-2 relevance sum = 14 (Example 4).
	if res.Matches[0].Relevance+res.Matches[1].Relevance != 14 {
		t.Errorf("top-2 relevance sum = %d, want 14", res.Matches[0].Relevance+res.Matches[1].Relevance)
	}
}

func TestEngineEarlyBoundsSoundness(t *testing.T) {
	// On the Fig. 1 fixture, every returned match must satisfy l <= δr <= h
	// against the exact baseline, for every strategy/bound mode.
	g, _ := testutil.Figure1()
	p := testutil.Figure1Pattern()
	exact := map[graph.NodeID]int{}
	base, err := MatchBaseline(g, p, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range base.All {
		exact[m.Node] = m.Relevance
	}
	for _, strat := range []Strategy{StrategyCovering, StrategyRandom} {
		for _, bm := range []BoundMode{BoundTight, BoundLabelCount, BoundCheap} {
			res, err := TopK(g, p, 2, Options{Strategy: strat, Bounds: bm, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range res.All {
				d, ok := exact[m.Node]
				if !ok {
					t.Fatalf("%v/%v: engine found non-match %d", strat, bm, m.Node)
				}
				if m.Relevance > d || m.Upper < d {
					t.Fatalf("%v/%v: bounds [%d,%d] exclude δr=%d for node %d",
						strat, bm, m.Relevance, m.Upper, d, m.Node)
				}
			}
		}
	}
}

// topKRelevances extracts the sorted relevance multiset of the top k.
func topKRelevances(ms []Match) []int {
	out := make([]int, len(ms))
	for i, m := range ms {
		out[i] = m.Relevance
	}
	return out
}

func TestEngineAgainstBaselineProperty(t *testing.T) {
	// The central correctness property: for random graphs and patterns, the
	// engine's top-k relevance multiset must equal the exact baseline's,
	// under every strategy, bound mode, batch granularity, cyclicity and
	// output-node position.
	rng := rand.New(rand.NewSource(77))
	labels := []string{"a", "b", "c"}
	trials := 0
	for trial := 0; trial < 250; trial++ {
		n := 2 + rng.Intn(18)
		g := testutil.RandomGraph(rng, n, rng.Intn(4*n), labels)
		var p *pattern.Pattern
		switch trial % 4 {
		case 0:
			p = testutil.RandomPattern(rng, 1+rng.Intn(5), rng.Intn(4), labels, false)
		case 1:
			p = testutil.RandomPattern(rng, 1+rng.Intn(5), rng.Intn(5), labels, true)
		case 2:
			p = testutil.NonRootPattern(rng, 2+rng.Intn(4), rng.Intn(4), labels, true)
		default:
			p = testutil.NonRootPattern(rng, 2+rng.Intn(4), rng.Intn(3), labels, false)
		}
		k := 1 + rng.Intn(4)
		base, err := MatchBaseline(g, p, k, false)
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{
			Strategy:   Strategy(trial % 2),
			Seed:       int64(trial),
			NumBatches: 1 + rng.Intn(6),
			Bounds:     BoundMode(trial % 3),
		}
		res, err := TopK(g, p, k, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.GlobalMatch != base.GlobalMatch {
			t.Fatalf("trial %d: GlobalMatch %v vs baseline %v\npattern=%s",
				trial, res.GlobalMatch, base.GlobalMatch, p)
		}
		if !base.GlobalMatch {
			if len(res.Matches) != 0 {
				t.Fatalf("trial %d: matches returned for unmatched pattern", trial)
			}
			continue
		}
		// Early termination guarantees the *set* is top-k by exact δr; the
		// reported relevances are lower bounds. Map the returned nodes to
		// their exact δr via the baseline and compare multisets.
		exact := map[graph.NodeID]int{}
		for _, m := range base.All {
			exact[m.Node] = m.Relevance
		}
		got := make([]int, 0, len(res.Matches))
		for _, m := range res.Matches {
			d, ok := exact[m.Node]
			if !ok {
				t.Fatalf("trial %d: engine returned non-match %d\npattern=%s", trial, m.Node, p)
			}
			if m.Relevance > d || (m.Exact && m.Relevance != d) || m.Upper < d {
				t.Fatalf("trial %d: node %d bounds [%d,%d] exact=%v vs δr=%d\npattern=%s\nopts=%+v",
					trial, m.Node, m.Relevance, m.Upper, m.Exact, d, p, opts)
			}
			got = append(got, d)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(got)))
		want := topKRelevances(base.Matches)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d matches, want %d\npattern=%s", trial, len(got), len(want), p)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: top-k exact relevances %v, want %v\npattern=%s\nopts=%+v",
					trial, got, want, p, opts)
			}
		}
		// Examined matches never exceed the total.
		if res.Stats.MatchesFound > base.Stats.MatchesFound {
			t.Fatalf("trial %d: examined %d > total %d", trial, res.Stats.MatchesFound, base.Stats.MatchesFound)
		}
		trials++
	}
	if trials < 100 {
		t.Fatalf("too few matched trials: %d", trials)
	}
}

func TestSingleNodePattern(t *testing.T) {
	g, _ := testutil.Figure1()
	p := pattern.New()
	p.AddNode("ST")
	res, err := TopK(g, p, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 2 || res.Stats.MatchesFound > 4 {
		t.Fatalf("single-node: %d matches, %d found", len(res.Matches), res.Stats.MatchesFound)
	}
	for _, m := range res.Matches {
		if m.Relevance != 0 || !m.Exact {
			t.Fatalf("single-node matches have empty relevant sets, got %+v", m)
		}
	}
}

func TestKLargerThanMatches(t *testing.T) {
	g, _ := testutil.Figure1()
	p := testutil.Figure1Pattern()
	res, err := TopK(g, p, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 4 {
		t.Fatalf("k=100 should return all 4 matches, got %d", len(res.Matches))
	}
	if res.Stats.EarlyTerminated {
		t.Error("cannot terminate early when k exceeds the match count")
	}
}

func TestNoCandidatesForSomeQueryNode(t *testing.T) {
	g, _ := testutil.Figure1()
	p := pattern.New()
	pm := p.AddNode("PM")
	x := p.AddNode("CEO")
	if err := p.AddEdge(pm, x); err != nil {
		t.Fatal(err)
	}
	res, err := TopK(g, p, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.GlobalMatch || len(res.Matches) != 0 {
		t.Fatal("pattern with no candidates must yield empty result")
	}
}

func TestGlobalMatchRequiredForNonRootOutput(t *testing.T) {
	// Output node's subtree matches, but a sibling branch cannot: the
	// result must be empty (simulation semantics).
	b := graph.NewBuilder()
	r := b.AddNode("root", nil)
	x := b.AddNode("x", nil)
	if err := b.AddEdge(r, x); err != nil {
		t.Fatal(err)
	}
	g := b.Build()

	p := pattern.New()
	root := p.AddNode("root")
	out := p.AddNode("x")
	missing := p.AddNode("y") // no y-labelled node in G
	if err := p.AddEdge(root, out); err != nil {
		t.Fatal(err)
	}
	if err := p.AddEdge(root, missing); err != nil {
		t.Fatal(err)
	}
	if err := p.SetOutput(out); err != nil {
		t.Fatal(err)
	}
	res, err := TopK(g, p, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.GlobalMatch || len(res.Matches) != 0 {
		t.Fatal("unmatched sibling branch must empty the result")
	}

	// Sanity: with the missing branch removed, x matches.
	p2 := pattern.New()
	root2 := p2.AddNode("root")
	out2 := p2.AddNode("x")
	if err := p2.AddEdge(root2, out2); err != nil {
		t.Fatal(err)
	}
	if err := p2.SetOutput(out2); err != nil {
		t.Fatal(err)
	}
	res2, err := TopK(g, p2, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.GlobalMatch || len(res2.Matches) != 1 {
		t.Fatalf("expected one match, got %+v", res2)
	}
}

func TestBadInputs(t *testing.T) {
	g, _ := testutil.Figure1()
	p := testutil.Figure1Pattern()
	if _, err := TopK(g, p, 0, Options{}); err != ErrBadK {
		t.Errorf("k=0: err = %v", err)
	}
	if _, err := MatchBaseline(g, p, -1, false); err != ErrBadK {
		t.Errorf("baseline k=-1: err = %v", err)
	}
	if _, err := TopK(nil, p, 1, Options{}); err == nil {
		t.Error("nil graph accepted")
	}
	bad := pattern.New() // no nodes
	if _, err := TopK(g, bad, 1, Options{}); err == nil {
		t.Error("invalid pattern accepted")
	}
}

func TestSelfLoopPatternEngine(t *testing.T) {
	// Pattern with a self-loop: a* -> a (self-loop on the output).
	b := graph.NewBuilder()
	n0 := b.AddNode("a", nil)
	n1 := b.AddNode("a", nil)
	n2 := b.AddNode("a", nil)
	if err := b.AddEdge(n0, n1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(n1, n0); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(n2, n0); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	p := pattern.New()
	a := p.AddNode("a")
	if err := p.AddEdge(a, a); err != nil {
		t.Fatal(err)
	}
	base, err := MatchBaseline(g, p, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TopK(g, p, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != len(base.Matches) {
		t.Fatalf("self-loop: engine %d matches vs baseline %d", len(res.Matches), len(base.Matches))
	}
	for i := range res.Matches {
		if res.Matches[i].Relevance != base.Matches[i].Relevance {
			t.Fatalf("self-loop relevances differ: %v vs %v",
				topKRelevances(res.Matches), topKRelevances(base.Matches))
		}
	}
}

func TestCoveringExaminesFewerThanRandom(t *testing.T) {
	// The optimized strategy should on average examine no more matches than
	// the random one (the paper's 16-18% improvement claim, directionally).
	rng := rand.New(rand.NewSource(3))
	labels := []string{"a", "b", "c", "d"}
	sumCov, sumRnd := 0, 0
	for trial := 0; trial < 40; trial++ {
		n := 30 + rng.Intn(40)
		g := testutil.RandomGraph(rng, n, 3*n, labels)
		p := testutil.RandomPattern(rng, 3, 1, labels, false)
		cov, err := TopK(g, p, 2, Options{Strategy: StrategyCovering, NumBatches: 8})
		if err != nil {
			t.Fatal(err)
		}
		rnd, err := TopK(g, p, 2, Options{Strategy: StrategyRandom, Seed: int64(trial), NumBatches: 8})
		if err != nil {
			t.Fatal(err)
		}
		sumCov += cov.Stats.MatchesFound
		sumRnd += rnd.Stats.MatchesFound
	}
	if sumCov > sumRnd*3/2 {
		t.Errorf("covering examined far more than random: %d vs %d", sumCov, sumRnd)
	}
}

func TestStatsAndStringers(t *testing.T) {
	if StrategyCovering.String() != "covering" || StrategyRandom.String() != "random" {
		t.Error("Strategy.String wrong")
	}
	if BoundTight.String() != "tight" || BoundLabelCount.String() != "label-count" || BoundCheap.String() != "cheap" {
		t.Error("BoundMode.String wrong")
	}
	g, _ := testutil.Figure1()
	p := testutil.Figure1Pattern()
	res, err := TopK(g, p, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CandidatesOfOutput != 4 || res.Stats.PairsTotal != 15 {
		t.Errorf("stats: %+v", res.Stats)
	}
	if res.Cuo != 11 {
		t.Errorf("Cuo = %d, want 11", res.Cuo)
	}
}
