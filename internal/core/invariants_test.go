package core

import (
	"math/rand"
	"testing"

	"divtopk/internal/pattern"
	"divtopk/internal/simulation"
	"divtopk/internal/testutil"
)

// checkInvariants validates the engine's internal consistency after a run:
// every counter, status flag and bound must agree with a from-scratch
// recomputation against the simulation oracle. This is the white-box
// complement to the black-box oracle tests: it catches bookkeeping bugs
// that happen to produce correct top-k answers by luck.
func checkInvariants(t *testing.T, e *engine) {
	t.Helper()
	sim := simulation.ComputeWithCandidates(e.g, e.p, e.ci)

	for q := int32(0); q < int32(e.ci.NumPairs()); q++ {
		u := int(e.ci.U[q])
		v := e.ci.V[q]
		inSim := sim.InSim[q]

		// I1: matched pairs are in the simulation relation; dead pairs are
		// not. (Unknown pairs can be either: not yet resolved.)
		switch e.status[q] {
		case statusMatched:
			if !inSim {
				t.Fatalf("I1: matched pair (%d,%d) not in simulation", u, v)
			}
		case statusDead:
			if inSim {
				t.Fatalf("I1: dead pair (%d,%d) is in simulation", u, v)
			}
		}

		// I2: satCnt[slot] counts exactly the matched successors per edge;
		// satEdges counts the satisfied edges.
		if e.status[q] != statusDead {
			satEdges := int32(0)
			for j, uc := range e.p.Out(u) {
				want := int32(0)
				for _, w := range e.g.Out(v) {
					qc := e.ci.Pair(uc, w)
					if qc >= 0 && e.status[qc] == statusMatched {
						want++
					}
				}
				got := e.satCnt[e.base[q]+int32(j)]
				if got != want {
					t.Fatalf("I2: satCnt(%d,%d edge %d) = %d, want %d", u, v, j, got, want)
				}
				if want > 0 {
					satEdges++
				}
			}
			if e.satEdges[q] != satEdges {
				t.Fatalf("I2: satEdges(%d,%d) = %d, want %d", u, v, e.satEdges[q], satEdges)
			}
		}

		// I3: unfinCnt[slot] counts the not-yet-finalized successors.
		for j, uc := range e.p.Out(u) {
			want := int32(0)
			for _, w := range e.g.Out(v) {
				qc := e.ci.Pair(uc, w)
				if qc >= 0 && !e.finalized[qc] {
					want++
				}
			}
			if got := e.unfinCnt[e.base[q]+int32(j)]; got != want {
				t.Fatalf("I3: unfinCnt(%d,%d edge %d) = %d, want %d", u, v, j, got, want)
			}
		}

		// I4: a finalized matched pair's relevant set is exactly R(u,v)
		// over the matched product graph, and a matched relevance-tracked
		// pair's partial set is a subset of it.
		if e.relQ[u] && e.status[q] == statusMatched && e.rset[q] != nil {
			exact := simulation.RelevantSetNaive(e.g, e.p, e.ci, matchedMask(e), u, v)
			got := e.rset[q].Count()
			if e.finalized[q] {
				// Finalized: must equal R over the FULL simulation relation
				// (no further growth possible).
				full := simulation.RelevantSetNaive(e.g, e.p, e.ci, sim.InSim, u, v)
				if got != full.Count() {
					t.Fatalf("I4: finalized R(%d,%d) = %d, want %d", u, v, got, full.Count())
				}
			} else if got > exact.Count() {
				t.Fatalf("I4: partial R(%d,%d) = %d exceeds current-matched closure %d",
					u, v, got, exact.Count())
			}
		}
	}

	// I5: matchCnt/aliveCnt agree with statuses.
	for u := 0; u < e.nq; u++ {
		lo, hi := e.ci.PairRange(u)
		matched, alive := int32(0), int32(0)
		for q := lo; q < hi; q++ {
			if e.status[q] == statusMatched {
				matched++
			}
			if e.status[q] != statusDead {
				alive++
			}
		}
		if e.matchCnt[u] != matched || e.aliveCnt[u] != alive {
			t.Fatalf("I5: counts for query node %d: match %d/%d alive %d/%d",
				u, e.matchCnt[u], matched, e.aliveCnt[u], alive)
		}
	}

	// I6: finalized units have no unresolved pairs.
	for c := 0; c < e.nUnits; c++ {
		if !e.unitFinalized[c] {
			continue
		}
		for _, u := range e.unitNodes[c] {
			lo, hi := e.ci.PairRange(int(u))
			for q := lo; q < hi; q++ {
				if e.status[q] == statusUnknown {
					t.Fatalf("I6: finalized unit %d has unresolved pair (%d,%d)", c, u, e.ci.V[q])
				}
			}
		}
	}
}

// matchedMask returns the alive mask of currently matched pairs.
func matchedMask(e *engine) []bool {
	mask := make([]bool, e.ci.NumPairs())
	for q := range mask {
		mask[q] = e.status[q] == statusMatched
	}
	return mask
}

func TestEngineInvariantsAfterRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	labels := []string{"a", "b", "c"}
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(16)
		g := testutil.RandomGraph(rng, n, rng.Intn(4*n), labels)
		var p *pattern.Pattern
		if trial%2 == 0 {
			p = testutil.RandomPattern(rng, 1+rng.Intn(4), rng.Intn(4), labels, true)
		} else {
			p = testutil.NonRootPattern(rng, 2+rng.Intn(3), rng.Intn(3), labels, false)
		}
		opts := Options{
			Strategy:   Strategy(trial % 2),
			Seed:       int64(trial),
			NumBatches: 1 + rng.Intn(5),
			Bounds:     BoundMode(trial % 3),
		}
		e, err := newEngine(g, p, 1+rng.Intn(3), opts)
		if err != nil {
			t.Fatal(err)
		}
		if e.abortedEmpty {
			continue
		}
		// Drive batches manually, checking invariants after every batch.
		for batch := 0; ; batch++ {
			b := e.feeder.next(e)
			if len(b) == 0 {
				break
			}
			for _, q := range b {
				e.feed(q)
			}
			e.drainEvents()
			e.propagateRelevance()
			checkInvariants(t, e)
			if e.abortedEmpty {
				break
			}
			if e.checkTermination() {
				break
			}
		}
	}
}

func TestEngineInvariantsFigure1(t *testing.T) {
	g, _ := testutil.Figure1()
	for _, p := range []*pattern.Pattern{testutil.Figure1Pattern(), testutil.Example7Pattern()} {
		e, err := newEngine(g, p, 2, Options{NumBatches: 2})
		if err != nil {
			t.Fatal(err)
		}
		for {
			b := e.feeder.next(e)
			if len(b) == 0 {
				break
			}
			for _, q := range b {
				e.feed(q)
			}
			e.drainEvents()
			e.propagateRelevance()
			checkInvariants(t, e)
		}
		// Exhausted runs must leave everything finalized.
		for q := int32(0); q < int32(e.ci.NumPairs()); q++ {
			if !e.finalized[q] {
				t.Fatalf("pattern %s: pair (%d,%d) unfinalized after exhaustion",
					p, e.ci.U[q], e.ci.V[q])
			}
		}
	}
}
