package core

import (
	"sort"

	"divtopk/internal/graph"
	"divtopk/internal/pattern"
	"divtopk/internal/simulation"
)

// MatchBaseline is the paper's Match algorithm (§4): the "find-all-match"
// strategy. It computes the entire M(Q,G) with the simulation fixpoint, the
// exact relevance of every match of the output node, and then picks the k
// most relevant. It has the same worst-case complexity as the
// early-termination algorithms but always pays it; the experiments of §6
// measure exactly this gap. keepSets retains the relevant-set bitsets on the
// returned matches (the diversified algorithms need them; pure top-k
// callers can drop them).
func MatchBaseline(g *graph.Graph, p *pattern.Pattern, k int, keepSets bool) (*Result, error) {
	return MatchBaselineOpts(g, p, k, keepSets, Options{})
}

// MatchBaselineOpts is MatchBaseline with engine options; only
// Options.Parallelism and Options.Kernel are consulted (the baseline has no
// feeding strategy or bounds to tune). Candidate computation fans out over
// data-node shards, and with the default CSR kernel the product adjacency is
// built once and shared between refinement and the relevant-set kernel; the
// result is identical for every worker count and for both kernels.
func MatchBaselineOpts(g *graph.Graph, p *pattern.Pattern, k int, keepSets bool, opts Options) (*Result, error) {
	if err := validateInputs(g, k); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}

	var ci *simulation.CandidateIndex
	if opts.Prebuilt != nil && opts.Prebuilt.CI != nil {
		ci = opts.Prebuilt.CI
	} else {
		ci = simulation.BuildCandidatesParallel(g, p, opts.Workers())
	}
	an := pattern.Analyze(p)

	var (
		sim  *simulation.Result
		prod *simulation.Product
	)
	if opts.Kernel == KernelReference {
		// The reference kernel recomputes the fixpoint on purpose: it is the
		// oracle side of the determinism tests, so it takes at most the
		// candidate index from Prebuilt.
		sim = simulation.ComputeReference(g, p, ci)
	} else {
		if opts.Prebuilt != nil && opts.Prebuilt.Prod != nil {
			prod = opts.Prebuilt.Prod
		} else {
			prod = simulation.BuildProduct(g, p, ci, opts.Workers())
		}
		if opts.Prebuilt != nil && opts.Prebuilt.Sim != nil {
			sim = opts.Prebuilt.Sim
		} else {
			sim = simulation.ComputeWithProduct(prod)
		}
	}
	space := simulation.BuildRelSpace(g, p, sim.CI, an)
	res := &Result{
		Space:       space,
		GlobalMatch: sim.Matched,
		Cuo:         simulation.Cuo(p, sim.CI, an),
		Stats: Stats{
			CandidatesOfOutput: len(sim.CI.Lists[p.Output()]),
			PairsTotal:         sim.CI.NumPairs(),
		},
	}
	if !sim.Matched {
		return res, nil
	}

	var rel *simulation.RelevantResult
	if opts.Kernel == KernelReference {
		rel = simulation.ComputeRelevantReference(g, p, ci, an, space, sim.InSim, p.Output(), keepSets)
	} else {
		rel = simulation.ComputeRelevant(prod, an, space, sim.InSim, p.Output(), keepSets, opts.Workers())
	}
	lo, hi := sim.CI.PairRange(p.Output())
	for q := lo; q < hi; q++ {
		if !sim.InSim[q] {
			continue
		}
		i := q - lo
		res.All = append(res.All, Match{
			Node:      sim.CI.V[q],
			Relevance: int(rel.Sizes[i]),
			Upper:     int(rel.Sizes[i]),
			Exact:     true,
			R:         rel.Sets[i],
		})
	}
	sort.Slice(res.All, func(i, j int) bool {
		if res.All[i].Relevance != res.All[j].Relevance {
			return res.All[i].Relevance > res.All[j].Relevance
		}
		return res.All[i].Node < res.All[j].Node
	})
	res.Stats.MatchesFound = len(res.All)
	top := k
	if top > len(res.All) {
		top = len(res.All)
	}
	res.Matches = res.All[:top]
	return res, nil
}
