package core

import (
	"fmt"
	"slices"

	"divtopk/internal/graph"
)

// This file advances a BoundsCache across a graph delta instead of
// rebuilding it: the descendant-label index as versioned derived state.
//
// The index's rows are a pure function of the snapshot's SCC condensation
// and the member labels, so the affected area of a delta is found at the
// component level: DiffCondensation matches the two snapshots' components
// by member set and marks as dirty every component whose membership,
// successor set or cyclicity changed — on graphs with a giant SCC (every
// scale-free graph this repository benchmarks on), edge churn inside the
// component is structurally invisible and dirties nothing. Rows can change
// only for the ancestor closure of the dirty components, and a label can
// change value only if a labelled node is reachable from an insert head in
// the new snapshot, was reachable from a delete head in the old one, or
// sits in the forward closure of a membership change (multiplicities of the
// loose DP and the self-count of the exact mode flow through those regions
// and nowhere else). Advance recomputes exactly that rectangle — affected
// rows × affected labels — through the partial passes of graph.DescScope,
// copies every other row, and falls back to a full rebuild once the
// rectangle's share of the index makes incremental work pointless,
// mirroring simulation.IncCompute's two-level fallback.

// AdvanceOptions tune BoundsCache.Advance.
type AdvanceOptions struct {
	// RebuildRatio is the work-share threshold above which Advance abandons
	// incremental maintenance for a full rebuild of the warmed labels
	// (default 0.25). The work share is (affected rows / total rows) ×
	// (affected warmed labels / warmed labels) — the recomputed rectangle's
	// share of the whole index. It is checked twice: optimistically (as if
	// a single label were affected) before the label analysis, and exactly
	// once the affected labels are known.
	RebuildRatio float64
}

func (o AdvanceOptions) ratio() float64 {
	if o.RebuildRatio <= 0 {
		return 0.25
	}
	return o.RebuildRatio
}

// AdvanceStats describes what one Advance call did.
type AdvanceStats struct {
	// Incremental reports whether the advance stayed on the partial path
	// (false: the fallback rebuilt every warmed label from scratch).
	Incremental bool
	// TotalRows is the new snapshot's node count; AffectedRows is the
	// number of rows rewritten per affected label (every row on a rebuild).
	TotalRows    int
	AffectedRows int
	// RowShare is AffectedRows/TotalRows; WorkShare additionally scales by
	// the affected-label share — the quantity the fallback thresholds.
	RowShare  float64
	WorkShare float64
	// LabelsRecomputed and LabelsCopied split the warmed labels into the
	// two maintenance classes.
	LabelsRecomputed int
	LabelsCopied     int
	// DirtyComps counts the condensation components the delta structurally
	// changed; ScopeComps the components the partial passes traversed.
	DirtyComps int
	ScopeComps int
}

// Mode names the maintenance path taken, for logs and wire responses.
func (s AdvanceStats) Mode() string {
	if s.Incremental {
		return "incremental"
	}
	return "rebuild"
}

// RowsEqual reports whether the two caches hold identical warmed state:
// the same label set with byte-identical count rows. It is the oracle
// comparison of the maintenance benchmarks and tests — an advanced cache
// must satisfy RowsEqual against a fresh NewBoundsCache+Warm of the same
// snapshot. The first divergence is described in the error.
func (c *BoundsCache) RowsEqual(other *BoundsCache) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	other.mu.RLock()
	defer other.mu.RUnlock()
	if len(c.counts) != len(other.counts) {
		return fmt.Errorf("%d warmed labels vs %d", len(c.counts), len(other.counts))
	}
	for id, row := range c.counts {
		orow, ok := other.counts[id]
		if !ok {
			return fmt.Errorf("label %d warmed on one side only", id)
		}
		if len(row) != len(orow) {
			return fmt.Errorf("label %d: %d rows vs %d", id, len(row), len(orow))
		}
		for v := range row {
			if row[v] != orow[v] {
				return fmt.Errorf("label %d row %d: %d vs %d", id, v, row[v], orow[v])
			}
		}
	}
	return nil
}

// Advance derives the bound index of gNew from this cache without touching
// it: gNew must be the snapshot ApplyDelta produced from the cache's graph
// and sum that application's summary — the snapshot version is verified and
// a mismatched advance is a hard error, never a silent wrong index. The
// returned cache covers exactly the labels this one had warm (a label the
// delta introduced stays cold and fills lazily, or eagerly via Warm); its
// counts are byte-identical to a fresh NewBoundsCache+Warm on gNew, which
// the randomized delta-chain fuzz enforces for both modes. Advance reads
// this cache under its lock and is safe to run while the old snapshot
// keeps serving queries.
func (c *BoundsCache) Advance(gNew *graph.Graph, sum *graph.DeltaSummary, opts AdvanceOptions) (*BoundsCache, AdvanceStats, error) {
	if sum == nil {
		return nil, AdvanceStats{}, fmt.Errorf("core: Advance: nil delta summary")
	}
	if want, got := c.g.Version()+1, gNew.Version(); got != want {
		return nil, AdvanceStats{}, fmt.Errorf("core: Advance: graph version %d, want %d — gNew must be the immediate successor of the cache's snapshot", got, want)
	}
	if sum.OldNodes != c.g.NumNodes() || sum.NewNodes != gNew.NumNodes() {
		return nil, AdvanceStats{}, fmt.Errorf("core: Advance: summary covers %d→%d nodes, cache and graph have %d→%d — summary and delta do not match",
			sum.OldNodes, sum.NewNodes, c.g.NumNodes(), gNew.NumNodes())
	}

	// Snapshot the warmed rows; fills in flight on the old snapshot simply
	// miss the cut and refill lazily against gNew.
	c.mu.RLock()
	warm := make(map[graph.LabelID][]int32, len(c.counts))
	for id, row := range c.counts {
		warm[id] = row
	}
	c.mu.RUnlock()
	ids := make([]graph.LabelID, 0, len(warm))
	for id := range warm {
		ids = append(ids, id)
	}
	slices.Sort(ids)

	nOld, nNew := sum.OldNodes, sum.NewNodes
	stats := AdvanceStats{Incremental: true, TotalRows: nNew}
	fresh := func() *BoundsCache {
		return &BoundsCache{
			g:      gNew,
			mode:   c.mode,
			counts: make(map[graph.LabelID][]int32, len(warm)),
			flight: make(map[graph.LabelID]chan struct{}),
		}
	}
	if len(ids) == 0 {
		// Nothing warm to advance: the new cache starts cold like this one.
		return fresh(), stats, nil
	}
	rebuild := func() (*BoundsCache, AdvanceStats, error) {
		nc := fresh()
		for i, row := range graph.DescendantLabelCounts(gNew, ids, c.mode) {
			nc.counts[ids[i]] = row
		}
		stats.Incremental = false
		stats.AffectedRows = nNew
		stats.RowShare = 1
		stats.WorkShare = 1
		stats.LabelsRecomputed = len(ids)
		stats.LabelsCopied = 0
		return nc, stats, nil
	}

	ratio := opts.ratio()
	condOld := c.g.Condensation()
	condNew := gNew.Condensation()
	diff := graph.DiffCondensation(condOld, condNew, nOld)
	stats.DirtyComps = diff.NumDirty

	if diff.NumDirty == 0 {
		// Structurally invisible delta (no appends possible: an appended
		// node's component can match no old one). Every row is unchanged;
		// the new cache shares the slices.
		nc := fresh()
		for id, row := range warm {
			nc.counts[id] = row
		}
		stats.LabelsCopied = len(ids)
		return nc, stats, nil
	}

	// Affected rows: the ancestor closure of the dirty components.
	dirty := make([]int32, 0, diff.NumDirty)
	for cn, d := range diff.DirtyNew {
		if d {
			dirty = append(dirty, int32(cn))
		}
	}
	inAff := make([]bool, condNew.NumComps)
	affComps := graph.ExpandComps(dirty, condNew.Pred, inAff)
	for _, cc := range affComps {
		stats.AffectedRows += len(condNew.Members[cc])
	}
	stats.RowShare = float64(stats.AffectedRows) / float64(nNew)
	// Level-1 fallback: even a single affected label busts the budget.
	stats.WorkShare = stats.RowShare / float64(len(ids))
	if stats.WorkShare > ratio {
		return rebuild()
	}

	// Affected labels. Gains live in the new snapshot's forward closure of
	// the insert heads; losses in the old snapshot's forward closure of the
	// delete heads; membership changes perturb multiplicities and
	// self-counts through their own forward closures on both sides. Labels
	// outside the union keep every row (including the all-zero rows of
	// appended nodes: an appended node with a descendant of label l puts l
	// in the new-side closure through its own dirty component).
	affLabel := make(map[graph.LabelID]bool)
	collect := func(g *graph.Graph, cond *graph.Condensation, comps []int32) {
		for _, cc := range comps {
			for _, v := range cond.Members[cc] {
				affLabel[g.LabelIDOf(v)] = true
			}
		}
	}
	newSeeds := make([]int32, 0, len(sum.InsertHeads)+diff.NumDirty)
	for _, v := range sum.InsertHeads {
		newSeeds = append(newSeeds, condNew.Comp[v])
	}
	for cn, co := range diff.NewToOld {
		if co < 0 {
			newSeeds = append(newSeeds, int32(cn))
		}
	}
	inDownNew := make([]bool, condNew.NumComps)
	collect(gNew, condNew, graph.ExpandComps(newSeeds, condNew.Succ, inDownNew))

	oldSeeds := make([]int32, 0, len(sum.DeleteHeads))
	for _, v := range sum.DeleteHeads {
		oldSeeds = append(oldSeeds, condOld.Comp[v])
	}
	for co, cn := range diff.OldToNew {
		if cn < 0 {
			oldSeeds = append(oldSeeds, int32(co))
		}
	}
	inDownOld := make([]bool, condOld.NumComps)
	collect(c.g, condOld, graph.ExpandComps(oldSeeds, condOld.Succ, inDownOld))

	for _, id := range ids {
		if affLabel[id] {
			stats.LabelsRecomputed++
		}
	}
	stats.LabelsCopied = len(ids) - stats.LabelsRecomputed
	// Level-2 fallback: the exact recomputed rectangle.
	stats.WorkShare = stats.RowShare * float64(stats.LabelsRecomputed) / float64(len(ids))
	if stats.WorkShare > ratio {
		return rebuild()
	}

	nc := fresh()
	var scope *graph.DescScope
	if stats.LabelsRecomputed > 0 {
		scope = graph.NewDescScope(condNew, affComps)
		stats.ScopeComps = scope.Comps()
	}
	for _, id := range ids {
		old := warm[id]
		switch {
		case affLabel[id]:
			row := make([]int32, nNew)
			copy(row, old)
			scope.Recompute(gNew, id, c.mode, row)
			nc.counts[id] = row
		case nNew == nOld:
			nc.counts[id] = old // unchanged, share the slice
		default:
			row := make([]int32, nNew) // appended tail stays zero
			copy(row, old)
			nc.counts[id] = row
		}
	}
	return nc, stats, nil
}
