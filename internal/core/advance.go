package core

import (
	"fmt"
	"slices"
	"time"

	"divtopk/internal/graph"
	"divtopk/internal/parallel"
)

// This file advances a BoundsCache across a graph delta instead of
// rebuilding it: the descendant-label index as versioned derived state.
//
// The index's rows are a pure function of the snapshot's SCC condensation
// and the member labels, so the affected area of a delta is found at the
// component level: DiffCondensation matches the two snapshots' components
// by member set, and ComputeFrontier splits the mismatches into three
// groups with different reach — membership changes and cyclicity flips
// touch only their own components' rows, successor-set changes propagate to
// their ancestor closure — and attaches to every label a mask of the groups
// that can actually reach a row of that label. A warmed label whose mask is
// empty provably has byte-identical rows and is shared; each non-empty mask
// names a (memoized) DescScope through which exactly the reachable rows are
// recomputed, one independent pass per label, run concurrently on the
// worker pool. The adaptive fallback rebuilds every warmed label from
// scratch once the recomputed cells' share of the whole index makes the
// partial passes pointless, mirroring simulation.IncCompute's discipline.

// AdvanceOptions tune BoundsCache.Advance.
type AdvanceOptions struct {
	// RebuildRatio is the work-share threshold above which Advance abandons
	// incremental maintenance for a full rebuild of the warmed labels
	// (default 0.25). The work share is the number of recomputed cells
	// (Σ over recomputed labels of their affected rows) over the whole
	// index (warmed labels × rows).
	RebuildRatio float64
	// Workers bounds the concurrency of the per-label passes (recompute and
	// rebuild): labels write disjoint rows, so any worker count produces
	// byte-identical results; <= 0 uses all processors and 1 is the
	// sequential determinism oracle.
	Workers int
}

func (o AdvanceOptions) ratio() float64 {
	if o.RebuildRatio <= 0 {
		return 0.25
	}
	return o.RebuildRatio
}

// AdvanceStats describes what one Advance call did.
type AdvanceStats struct {
	// Incremental reports whether the advance stayed on the partial path
	// (false: the fallback rebuilt every warmed label from scratch).
	Incremental bool
	// TotalRows is the new snapshot's node count; AffectedRows is the
	// number of rows in the union of the per-label affected sets (every row
	// on a rebuild) — the widest set any single label could have had
	// recomputed.
	TotalRows    int
	AffectedRows int
	// RowShare is AffectedRows/TotalRows. WorkShare is the recomputed
	// cells' share of the whole warmed index, RecomputedCells/(warmed
	// labels × TotalRows) — the quantity the fallback thresholds and the
	// benchmark's affected-share series tracks.
	RowShare  float64
	WorkShare float64
	// LabelsRecomputed and LabelsCopied split the warmed labels into the
	// two maintenance classes.
	LabelsRecomputed int
	LabelsCopied     int
	// DirtyComps counts the condensation components the delta structurally
	// changed; FrontierComps the frontier's seed components (membership +
	// successor-dirty + flipped — before ancestor expansion); ScopeComps
	// the components the partial passes traversed, summed over the
	// distinct masks.
	DirtyComps    int
	FrontierComps int
	ScopeComps    int
	// FrontierRows is the union affected-row count (equals AffectedRows on
	// the incremental path); RecomputedCells is Σ over recomputed labels of
	// the rows rewritten for that label.
	FrontierRows    int
	RecomputedCells int64
	// ShardWallMicros is the wall time of the parallel per-label section
	// (the partial recomputes, or the full per-label rebuilds on the
	// fallback path).
	ShardWallMicros int64
}

// Mode names the maintenance path taken, for logs and wire responses.
func (s AdvanceStats) Mode() string {
	if s.Incremental {
		return "incremental"
	}
	return "rebuild"
}

// RowsEqual reports whether the two caches hold identical warmed state:
// the same label set with byte-identical count rows. It is the oracle
// comparison of the maintenance benchmarks and tests — an advanced cache
// must satisfy RowsEqual against a fresh NewBoundsCache+Warm of the same
// snapshot. The first divergence is described in the error.
func (c *BoundsCache) RowsEqual(other *BoundsCache) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	other.mu.RLock()
	defer other.mu.RUnlock()
	if len(c.counts) != len(other.counts) {
		return fmt.Errorf("%d warmed labels vs %d", len(c.counts), len(other.counts))
	}
	for id, row := range c.counts {
		orow, ok := other.counts[id]
		if !ok {
			return fmt.Errorf("label %d warmed on one side only", id)
		}
		if len(row) != len(orow) {
			return fmt.Errorf("label %d: %d rows vs %d", id, len(row), len(orow))
		}
		for v := range row {
			if row[v] != orow[v] {
				return fmt.Errorf("label %d row %d: %d vs %d", id, v, row[v], orow[v])
			}
		}
	}
	return nil
}

// Advance derives the bound index of gNew from this cache without touching
// it: gNew must be a successor of the cache's snapshot in one update
// lineage — typically the immediate next version, or several versions ahead
// when a group commit applied a merged delta in one step — and sum must be
// the summary of the (merged) delta between exactly those two snapshots.
// The version is verified to move forward and a non-advancing call is a
// hard error, never a silent wrong index. The returned cache covers exactly
// the labels this one had warm (a label the delta introduced stays cold and
// fills lazily, or eagerly via Warm); its counts are byte-identical to a
// fresh NewBoundsCache+Warm on gNew, which the randomized delta-chain fuzz
// enforces for both modes. Advance reads this cache under its lock and is
// safe to run while the old snapshot keeps serving queries.
func (c *BoundsCache) Advance(gNew *graph.Graph, sum *graph.DeltaSummary, opts AdvanceOptions) (*BoundsCache, AdvanceStats, error) {
	if sum == nil {
		return nil, AdvanceStats{}, fmt.Errorf("core: Advance: nil delta summary")
	}
	if got := gNew.Version(); got <= c.g.Version() {
		return nil, AdvanceStats{}, fmt.Errorf("core: Advance: graph version %d, want > %d — gNew must be a successor of the cache's snapshot", got, c.g.Version())
	}
	if sum.OldNodes != c.g.NumNodes() || sum.NewNodes != gNew.NumNodes() {
		return nil, AdvanceStats{}, fmt.Errorf("core: Advance: summary covers %d→%d nodes, cache and graph have %d→%d — summary and delta do not match",
			sum.OldNodes, sum.NewNodes, c.g.NumNodes(), gNew.NumNodes())
	}

	// Snapshot the warmed rows; fills in flight on the old snapshot simply
	// miss the cut and refill lazily against gNew.
	c.mu.RLock()
	warm := make(map[graph.LabelID][]int32, len(c.counts))
	for id, row := range c.counts {
		warm[id] = row
	}
	c.mu.RUnlock()
	ids := make([]graph.LabelID, 0, len(warm))
	for id := range warm {
		ids = append(ids, id)
	}
	slices.Sort(ids)

	nOld, nNew := sum.OldNodes, sum.NewNodes
	workers := parallel.Workers(opts.Workers)
	stats := AdvanceStats{Incremental: true, TotalRows: nNew}
	fresh := func() *BoundsCache {
		return &BoundsCache{
			g:      gNew,
			mode:   c.mode,
			counts: make(map[graph.LabelID][]int32, len(warm)),
			flight: make(map[graph.LabelID]chan struct{}),
		}
	}
	if len(ids) == 0 {
		// Nothing warm to advance: the new cache starts cold like this one.
		return fresh(), stats, nil
	}
	rebuild := func() (*BoundsCache, AdvanceStats, error) {
		nc := fresh()
		rows := make([][]int32, len(ids))
		//lint:allow detflow wall-clock feeds the ShardWallMicros observability stat only, never a result
		t0 := time.Now()
		parallel.ForEach(len(ids), workers, func(i int) {
			rows[i] = graph.DescendantLabelCounts(gNew, ids[i:i+1], c.mode)[0]
		})
		//lint:allow detflow wall-clock feeds the ShardWallMicros observability stat only, never a result
		stats.ShardWallMicros = time.Since(t0).Microseconds()
		for i, id := range ids {
			nc.counts[id] = rows[i]
		}
		stats.Incremental = false
		stats.AffectedRows = nNew
		stats.FrontierRows = nNew
		stats.RowShare = 1
		stats.WorkShare = 1
		stats.LabelsRecomputed = len(ids)
		stats.LabelsCopied = 0
		stats.RecomputedCells = int64(len(ids)) * int64(nNew)
		return nc, stats, nil
	}

	ratio := opts.ratio()
	condOld := c.g.Condensation()
	condNew := gNew.Condensation()
	diff := graph.DiffCondensation(condOld, condNew, nOld)
	stats.DirtyComps = diff.NumDirty

	if diff.NumDirty == 0 {
		// Structurally invisible delta (no appends possible: an appended
		// node's component can match no old one). Every row is unchanged;
		// the new cache shares the slices.
		nc := fresh()
		for id, row := range warm {
			nc.counts[id] = row
		}
		stats.LabelsCopied = len(ids)
		return nc, stats, nil
	}

	// The per-node frontier: which of the three change groups can reach
	// each label, and which components each group rewrites.
	frontier := graph.ComputeFrontier(condOld, condNew, diff, gNew)
	stats.FrontierComps = len(frontier.MemComps) + len(frontier.SuccDirty) + len(frontier.FlipComps)

	// Group component sets. Membership changes and flips rewrite their own
	// components only; successor-set changes propagate to every ancestor.
	var groups [3][]int32
	groups[0] = frontier.MemComps
	if len(frontier.SuccDirty) > 0 {
		inAnc := make([]bool, condNew.NumComps)
		groups[1] = graph.ExpandComps(frontier.SuccDirty, condNew.Pred, inAnc)
	}
	groups[2] = frontier.FlipComps

	// Per-mask affected component sets (deduplicated unions of the selected
	// groups), realized only for masks some warmed label actually has.
	masks := make([]uint8, len(ids))
	var labelsByMask [8]int
	for i, id := range ids {
		m := frontier.LabelMask(id)
		masks[i] = m
		labelsByMask[m]++
	}
	seen := make([]int8, condNew.NumComps)
	for i := range seen {
		seen[i] = -1
	}
	var maskComps [8][]int32
	var maskRows [8]int
	for m := 1; m < 8; m++ {
		if labelsByMask[m] == 0 && m != 7 {
			continue
		}
		var comps []int32
		rows := 0
		for g := 0; g < 3; g++ {
			if m&(1<<g) == 0 {
				continue
			}
			for _, cc := range groups[g] {
				if seen[cc] == int8(m) {
					continue
				}
				seen[cc] = int8(m)
				comps = append(comps, cc)
				rows += len(condNew.Members[cc])
			}
		}
		maskComps[m] = comps
		maskRows[m] = rows
	}
	// Mask 7 is the union of everything — the widest affected set, always
	// computed for the stats even when no label carries it.
	stats.AffectedRows = maskRows[7]
	stats.FrontierRows = maskRows[7]
	stats.RowShare = float64(stats.AffectedRows) / float64(nNew)
	for m := 1; m < 8; m++ {
		stats.LabelsRecomputed += labelsByMask[m]
		stats.RecomputedCells += int64(labelsByMask[m]) * int64(maskRows[m])
	}
	stats.LabelsCopied = labelsByMask[0]
	stats.WorkShare = float64(stats.RecomputedCells) / (float64(len(ids)) * float64(nNew))
	if stats.WorkShare > ratio {
		return rebuild()
	}

	// One memoized scope per distinct non-empty mask: at most seven partial
	// traversal regions no matter how many labels recompute through them.
	var scopes [8]*graph.DescScope
	for m := 1; m < 8; m++ {
		if labelsByMask[m] == 0 {
			continue
		}
		scopes[m] = graph.NewDescScope(condNew, maskComps[m])
		stats.ScopeComps += scopes[m].Comps()
	}

	// Per-label maintenance, one independent pass per label: rows are
	// disjoint outputs and the scopes' Recompute keeps all mutable state
	// per call, so any worker count is byte-identical to the sequential
	// oracle. The shared map is filled after the joins.
	rows := make([][]int32, len(ids))
	//lint:allow detflow wall-clock feeds the ShardWallMicros observability stat only, never a result
	t0 := time.Now()
	parallel.ForEach(len(ids), workers, func(i int) {
		old := warm[ids[i]]
		if m := masks[i]; m != 0 {
			row := make([]int32, nNew)
			copy(row, old)
			scopes[m].Recompute(gNew, ids[i], c.mode, row)
			rows[i] = row
		} else if nNew == nOld {
			rows[i] = old // unchanged, share the slice
		} else {
			row := make([]int32, nNew) // appended tail stays zero
			copy(row, old)
			rows[i] = row
		}
	})
	//lint:allow detflow wall-clock feeds the ShardWallMicros observability stat only, never a result
	stats.ShardWallMicros = time.Since(t0).Microseconds()
	nc := fresh()
	for i, id := range ids {
		nc.counts[id] = rows[i]
	}
	return nc, stats, nil
}
