package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"divtopk/internal/graph"
	"divtopk/internal/pattern"
	"divtopk/internal/simulation"
)

// randomPrebuiltPattern builds a small random pattern over the label space.
func randomPrebuiltPattern(rng *rand.Rand, labels int) *pattern.Pattern {
	p := pattern.New()
	nq := 2 + rng.Intn(3)
	for i := 0; i < nq; i++ {
		p.AddNode(fmt.Sprintf("L%d", rng.Intn(labels)))
	}
	for tries := 0; tries < 2*nq; tries++ {
		_ = p.AddEdge(rng.Intn(nq), rng.Intn(nq))
	}
	_ = p.SetOutput(rng.Intn(nq))
	return p
}

// TestPrebuiltEvalDeltaChainKernelEquivalence pins the kernel dimension of
// the warm result cache: evaluating with the incrementally maintained
// (CI, product, simulation) triple handed in through Options.Prebuilt must
// be deeply equal to a cold CSR evaluation AND to the frozen reference
// kernel at every version of a random delta chain — for both the find-all
// baseline and the early-termination engine, at worker counts 1 and 8. The
// reference kernel deliberately recomputes the fixpoint (it is the oracle),
// so agreement here means the maintained state is exactly what a cold
// evaluation would build.
func TestPrebuiltEvalDeltaChainKernelEquivalence(t *testing.T) {
	const labels = 4
	for seed := int64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dict := graph.NewDict()
			g := randomAdvGraph(rng, 24+rng.Intn(30), 90+rng.Intn(120), labels, dict)
			p := randomPrebuiltPattern(rng, labels)
			inc := simulation.NewIncState(g, p, 1)

			check := func(step int) {
				pre := &PrebuiltEval{CI: inc.CI, Prod: inc.Prod, Sim: inc.Res}
				for _, workers := range []int{1, 8} {
					warm, err := MatchBaselineOpts(g, p, 8, true, Options{Parallelism: workers, Prebuilt: pre})
					if err != nil {
						t.Fatalf("step %d w%d: %v", step, workers, err)
					}
					cold, err := MatchBaselineOpts(g, p, 8, true, Options{Parallelism: workers})
					if err != nil {
						t.Fatalf("step %d w%d: %v", step, workers, err)
					}
					ref, err := MatchBaselineOpts(g, p, 8, true, Options{Parallelism: workers, Kernel: KernelReference, Prebuilt: pre})
					if err != nil {
						t.Fatalf("step %d w%d: %v", step, workers, err)
					}
					if !reflect.DeepEqual(warm, cold) {
						t.Fatalf("step %d w%d: prebuilt baseline differs from cold CSR:\ngot  %+v\nwant %+v", step, workers, warm, cold)
					}
					assertSameAnswers(t, fmt.Sprintf("step %d w%d prebuilt-vs-reference", step, workers), warm, ref)

					// The engine family consumes CI and product from Prebuilt
					// but always re-runs propagation on its own counters.
					eWarm, err := TopK(g, p, 5, Options{Parallelism: workers, Prebuilt: pre})
					if err != nil {
						t.Fatalf("step %d w%d engine: %v", step, workers, err)
					}
					eCold, err := TopK(g, p, 5, Options{Parallelism: workers})
					if err != nil {
						t.Fatalf("step %d w%d engine: %v", step, workers, err)
					}
					if !reflect.DeepEqual(eWarm, eCold) {
						t.Fatalf("step %d w%d: prebuilt engine differs from cold engine:\ngot  %+v\nwant %+v", step, workers, eWarm, eCold)
					}
				}
			}

			check(-1)
			for step := 0; step < 10; step++ {
				d := randomAdvDelta(rng, g, labels)
				g2, err := graph.ApplyDelta(g, d)
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				inc2, _, err := simulation.IncCompute(inc, g2, d, simulation.IncOptions{Workers: 1})
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				g, inc = g2, inc2
				check(step)
			}
		})
	}
}

// assertSameAnswers compares the answer content of two results while
// tolerating kernel-internal representation differences (the reference
// kernel builds its relevant-set space in the same canonical order, so in
// practice everything but private bitset backing arrays matches).
func assertSameAnswers(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.GlobalMatch != b.GlobalMatch {
		t.Fatalf("%s: GlobalMatch %v vs %v", label, a.GlobalMatch, b.GlobalMatch)
	}
	if len(a.All) != len(b.All) {
		t.Fatalf("%s: |All| %d vs %d", label, len(a.All), len(b.All))
	}
	for i := range a.All {
		x, y := a.All[i], b.All[i]
		if x.Node != y.Node || x.Relevance != y.Relevance || x.Upper != y.Upper || x.Exact != y.Exact {
			t.Fatalf("%s: All[%d] %+v vs %+v", label, i, x, y)
		}
		switch {
		case (x.R == nil) != (y.R == nil):
			t.Fatalf("%s: All[%d] relevant-set presence differs", label, i)
		case x.R != nil && !x.R.Equal(y.R):
			t.Fatalf("%s: All[%d] relevant sets differ", label, i)
		}
	}
	if len(a.Matches) != len(b.Matches) {
		t.Fatalf("%s: |Matches| %d vs %d", label, len(a.Matches), len(b.Matches))
	}
	if a.Cuo != b.Cuo {
		t.Fatalf("%s: Cuo %v vs %v", label, a.Cuo, b.Cuo)
	}
}
