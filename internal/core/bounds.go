package core

import (
	"sync"

	"divtopk/internal/graph"
	"divtopk/internal/pattern"
	"divtopk/internal/simulation"
)

// BoundsCache is the paper's descendant-label index (§4.1: "for each node v
// in G, the index records the numbers of its descendants with a same
// label"): per-label distinct-descendant counts, computed once per graph
// and shared across queries, from which each query's initial upper bounds
// h(uo,v) are aggregated in O(|can(uo)|·|desc labels|). Build one per graph
// with NewBoundsCache and pass it via Options.Cache to amortize the index —
// that amortization is what makes the engine's per-query cost beat the
// find-all baseline, exactly as in the paper's experiments.
//
// A BoundsCache is safe for concurrent use: each label's counts are
// computed at most once (concurrent requesters of a cold label wait for the
// in-flight computation instead of duplicating or racing on it), and the
// traversal itself runs outside the lock, so queries over warmed labels
// are never blocked by a cold fill. Warm precomputes all labels up front
// to eliminate cold-start waits entirely. All fills share the snapshot's
// cached condensation (Graph.Condensation), so the SCC work is paid once
// per graph no matter how many labels fill or how lazily.
//
// A BoundsCache is versioned derived state: it indexes exactly one graph
// snapshot, and Advance derives the next snapshot's cache from it by
// recomputing only what a delta's affected area can have changed — see
// advance.go. Caches are immutable across snapshots the way graphs are:
// Advance returns a new cache and leaves this one serving the old snapshot.
type BoundsCache struct {
	g    *graph.Graph
	mode graph.DescMode

	mu     sync.RWMutex
	counts map[graph.LabelID][]int32
	flight map[graph.LabelID]chan struct{}
}

// NewBoundsCache creates an empty cache over g. exact selects exact
// distinct-descendant counting (graph.DescExact, the default index) versus
// the cheaper overcounting DP (used by BoundCheap).
func NewBoundsCache(g *graph.Graph, exact bool) *BoundsCache {
	mode := graph.DescExact
	if !exact {
		mode = graph.DescLoose
	}
	return &BoundsCache{
		g:      g,
		mode:   mode,
		counts: make(map[graph.LabelID][]int32),
		flight: make(map[graph.LabelID]chan struct{}),
	}
}

// Warm precomputes the counts for the given labels (all graph labels when
// nil), making subsequent use contention-free. Each label fills through the
// same flight-coordinated path lazy queries use, so the traversals run
// outside the cache lock: readers of already-warm labels are never blocked
// behind a warm in progress (they used to be — Warm held the write lock for
// the whole computation), and concurrent Warms split the work instead of
// duplicating it. All label fills share the snapshot's cached condensation,
// so warming n labels pays the SCC computation once, not n times.
func (c *BoundsCache) Warm(labels []string) {
	if labels == nil {
		labels = c.g.Dict().Names()
	}
	for _, name := range labels {
		if id, ok := c.g.Dict().ID(name); ok {
			c.countsFor(id)
		}
	}
}

// Graph returns the snapshot this cache indexes.
func (c *BoundsCache) Graph() *graph.Graph { return c.g }

func (c *BoundsCache) countsFor(l graph.LabelID) []int32 {
	for {
		c.mu.RLock()
		cs, ok := c.counts[l]
		c.mu.RUnlock()
		if ok {
			return cs
		}
		// Cold label: either claim the computation or wait for whoever did.
		// The traversal runs outside the lock, so queries on warm labels
		// proceed while a cold fill is in flight.
		c.mu.Lock()
		if cs, ok := c.counts[l]; ok {
			c.mu.Unlock()
			return cs
		}
		if ch, ok := c.flight[l]; ok {
			c.mu.Unlock()
			<-ch
			continue
		}
		ch := make(chan struct{})
		c.flight[l] = ch
		c.mu.Unlock()

		// Settle the flight even if the traversal panics: waiters wake up
		// (and, finding neither counts nor flight, recompute), instead of
		// blocking forever on a channel nobody will close.
		settled := false
		defer func() {
			if settled {
				return
			}
			c.mu.Lock()
			delete(c.flight, l)
			c.mu.Unlock()
			close(ch)
		}()

		cs = graph.DescendantLabelCounts(c.g, []graph.LabelID{l}, c.mode)[0]
		settled = true

		c.mu.Lock()
		c.counts[l] = cs
		delete(c.flight, l)
		c.mu.Unlock()
		close(ch)
		return cs
	}
}

// computeUpperBounds initializes h(uo,v) for every candidate of the output
// node (§4.1's "v.h = Cu(v)"). Every mode is sound: h(uo,v) ≥ δr(uo,v).
//
//   - With a BoundsCache (the amortized per-graph index): h = Σ over the
//     output node's descendant labels of the per-label descendant counts.
//   - BoundTight (per query): reachability over the candidate product graph
//     (shared with the engine as the materialized CSR), the semantics that
//     reproduces the h values of Examples 7-8 exactly; tightest, but costs
//     a product traversal per query.
//   - BoundLabelCount / BoundCheap (per query): the index aggregation
//     without a cache.
func computeUpperBounds(prod *simulation.Product, an *pattern.Analysis,
	space *simulation.RelSpace, opts Options) []int32 {

	g, p, ci := prod.G, prod.P, prod.CI
	mode, cache := opts.Bounds, opts.Cache
	uo := p.Output()
	lo, hi := ci.PairRange(uo)
	out := make([]int32, hi-lo)

	if cache == nil && mode == BoundTight {
		rel := simulation.ComputeRelevant(prod, an, space, nil, uo, false, opts.Workers())
		copy(out, rel.Sizes)
		return out
	}

	if cache == nil {
		cache = NewBoundsCache(g, mode != BoundCheap)
	}
	var labelCounts [][]int32
	for _, name := range an.DescLabels {
		if id, ok := g.Dict().ID(name); ok {
			labelCounts = append(labelCounts, cache.countsFor(id))
		}
	}
	for i := int32(0); i < hi-lo; i++ {
		v := ci.V[lo+i]
		total := int64(0)
		for _, cs := range labelCounts {
			total += int64(cs[v])
		}
		if total > int64(^uint32(0)>>1) {
			total = int64(^uint32(0) >> 1)
		}
		out[i] = int32(total)
	}
	return out
}
