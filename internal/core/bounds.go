package core

import (
	"divtopk/internal/graph"
	"divtopk/internal/pattern"
	"divtopk/internal/simulation"
)

// BoundsCache is the paper's descendant-label index (§4.1: "for each node v
// in G, the index records the numbers of its descendants with a same
// label"): per-label distinct-descendant counts, computed once per graph
// and shared across queries, from which each query's initial upper bounds
// h(uo,v) are aggregated in O(|can(uo)|·|desc labels|). Build one per graph
// with NewBoundsCache and pass it via Options.Cache to amortize the index —
// that amortization is what makes the engine's per-query cost beat the
// find-all baseline, exactly as in the paper's experiments.
//
// A BoundsCache is safe for concurrent use by independent queries only if
// fully warmed (see Warm); the lazy path is not synchronized.
type BoundsCache struct {
	g      *graph.Graph
	mode   graph.DescMode
	counts map[graph.LabelID][]int32
}

// NewBoundsCache creates an empty cache over g. exact selects exact
// distinct-descendant counting (graph.DescExact, the default index) versus
// the cheaper overcounting DP (used by BoundCheap).
func NewBoundsCache(g *graph.Graph, exact bool) *BoundsCache {
	mode := graph.DescExact
	if !exact {
		mode = graph.DescLoose
	}
	return &BoundsCache{g: g, mode: mode, counts: make(map[graph.LabelID][]int32)}
}

// Warm precomputes the counts for the given labels (all graph labels when
// nil), making subsequent use read-only.
func (c *BoundsCache) Warm(labels []string) {
	if labels == nil {
		labels = c.g.Dict().Names()
	}
	var ids []graph.LabelID
	for _, name := range labels {
		if id, ok := c.g.Dict().ID(name); ok {
			if _, done := c.counts[id]; !done {
				ids = append(ids, id)
			}
		}
	}
	for i, cs := range graph.DescendantLabelCounts(c.g, ids, c.mode) {
		c.counts[ids[i]] = cs
	}
}

func (c *BoundsCache) countsFor(l graph.LabelID) []int32 {
	if cs, ok := c.counts[l]; ok {
		return cs
	}
	cs := graph.DescendantLabelCounts(c.g, []graph.LabelID{l}, c.mode)[0]
	c.counts[l] = cs
	return cs
}

// computeUpperBounds initializes h(uo,v) for every candidate of the output
// node (§4.1's "v.h = Cu(v)"). Every mode is sound: h(uo,v) ≥ δr(uo,v).
//
//   - With a BoundsCache (the amortized per-graph index): h = Σ over the
//     output node's descendant labels of the per-label descendant counts.
//   - BoundTight (per query): reachability over the candidate product graph,
//     the semantics that reproduces the h values of Examples 7-8 exactly;
//     tightest, but costs a product traversal per query.
//   - BoundLabelCount / BoundCheap (per query): the index aggregation
//     without a cache.
func computeUpperBounds(g *graph.Graph, p *pattern.Pattern, ci *simulation.CandidateIndex,
	an *pattern.Analysis, space *simulation.RelSpace, mode BoundMode, cache *BoundsCache) []int32 {

	uo := p.Output()
	lo, hi := ci.PairRange(uo)
	out := make([]int32, hi-lo)

	if cache == nil && mode == BoundTight {
		rel := simulation.ComputeRelevant(g, p, ci, an, space, nil, uo, false)
		copy(out, rel.Sizes)
		return out
	}

	if cache == nil {
		cache = NewBoundsCache(g, mode != BoundCheap)
	}
	var labelCounts [][]int32
	for _, name := range an.DescLabels {
		if id, ok := g.Dict().ID(name); ok {
			labelCounts = append(labelCounts, cache.countsFor(id))
		}
	}
	for i := int32(0); i < hi-lo; i++ {
		v := ci.V[lo+i]
		total := int64(0)
		for _, cs := range labelCounts {
			total += int64(cs[v])
		}
		if total > int64(^uint32(0)>>1) {
			total = int64(^uint32(0) >> 1)
		}
		out[i] = int32(total)
	}
	return out
}
