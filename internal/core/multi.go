package core

import (
	"sort"

	"divtopk/internal/graph"
	"divtopk/internal/pattern"
	"divtopk/internal/ranking"
	"divtopk/internal/simulation"
)

// TopKMulti implements the multiple-output-node extension sketched in §2.2
// and detailed in the paper's full version [1]: given several designated
// output nodes, return a top-k match set for each. Each output is answered
// by the early-termination engine on a re-targeted copy of the pattern; the
// global-match condition is shared (simulation semantics do not depend on
// the output node), so if G does not match Q every entry is empty.
//
// The per-output runs share the caller's BoundsCache (pass one via opts for
// the amortized index). A fused single-pass engine for all outputs is
// possible — match propagation is output-independent and only the relevance
// machinery is per-output — and left as future work; this formulation keeps
// every early-termination guarantee per output.
func TopKMulti(g *graph.Graph, p *pattern.Pattern, outputs []int, k int, opts Options) (map[int]*Result, error) {
	if err := validateInputs(g, k); err != nil {
		return nil, err
	}
	results := make(map[int]*Result, len(outputs))
	for _, uo := range outputs {
		q := p.Clone()
		if err := q.SetOutput(uo); err != nil {
			return nil, err
		}
		res, err := TopK(g, q, k, opts)
		if err != nil {
			return nil, err
		}
		results[uo] = res
		// Simulation's global condition is shared: one empty answer means
		// M(Q,G) = ∅ and every other answer is empty too — stop early.
		if !res.GlobalMatch {
			for _, other := range outputs {
				results[other] = &Result{Space: res.Space, Stats: res.Stats}
			}
			break
		}
	}
	return results, nil
}

// GeneralizedResult is a find-all answer re-ranked under a generalized
// relevance function of §3.4 (the constructive content of Prop. 4's
// find-all form). Scores is aligned with All.
type GeneralizedResult struct {
	*Result
	// Scores holds the generalized relevance of every entry of All, sorted
	// descending together with All.
	Scores []float64
}

// RankedGeneralized evaluates the full match set of the output node and
// ranks it under rel, one of the generalized relevance functions of §3.4
// (preference attachment, common neighbours, Jaccard coefficient, or any
// custom ranking.RelevanceFunc). The relevance input per match exposes
// R*(uo,v) (the exact relevant set), |R(uo)| (the number of query nodes the
// output reaches) and M(Q,G,R(uo)) (the union of the matches of those
// query nodes), as the paper's table of formulations requires.
func RankedGeneralized(g *graph.Graph, p *pattern.Pattern, k int, rel ranking.RelevanceFunc) (*GeneralizedResult, error) {
	base, err := MatchBaseline(g, p, k, true)
	if err != nil {
		return nil, err
	}
	out := &GeneralizedResult{Result: base}
	if !base.GlobalMatch {
		return out, nil
	}

	// M(Q,G,R(uo)) and |R(uo)| from the full simulation.
	sim := simulation.Compute(g, p)
	an := pattern.Analyze(p)
	descMatches := base.Space.NewSet()
	descQueryNodes := 0
	for u := 0; u < p.NumNodes(); u++ {
		if !an.OutputDesc[u] {
			continue
		}
		descQueryNodes++
		for _, v := range sim.MatchesOf(u) {
			if idx := base.Space.Index(v); idx >= 0 {
				descMatches.Add(int(idx))
			}
		}
	}

	out.Scores = make([]float64, len(base.All))
	for i, m := range base.All {
		out.Scores[i] = rel.Score(ranking.RelevanceInput{
			RSet:           m.R,
			DescQueryNodes: descQueryNodes,
			DescMatches:    descMatches,
		})
	}
	// Re-sort All (and Scores) by the generalized score.
	order := make([]int, len(base.All))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if out.Scores[order[a]] != out.Scores[order[b]] {
			return out.Scores[order[a]] > out.Scores[order[b]]
		}
		return base.All[order[a]].Node < base.All[order[b]].Node
	})
	sortedAll := make([]Match, len(base.All))
	sortedScores := make([]float64, len(base.All))
	for i, idx := range order {
		sortedAll[i] = base.All[idx]
		sortedScores[i] = out.Scores[idx]
	}
	out.All = sortedAll
	out.Scores = sortedScores
	top := k
	if top > len(out.All) {
		top = len(out.All)
	}
	out.Matches = out.All[:top]
	return out, nil
}
