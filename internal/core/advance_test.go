package core

import (
	"fmt"
	"math/rand"
	"slices"
	"sync"
	"testing"

	"divtopk/internal/graph"
)

// randomAdvGraph builds a random labeled graph for the advance fuzz.
func randomAdvGraph(rng *rand.Rand, n, m, labels int, dict *graph.Dict) *graph.Graph {
	b := graph.NewBuilderWithDict(dict)
	for i := 0; i < n; i++ {
		b.AddNode(fmt.Sprintf("L%d", rng.Intn(labels)), nil)
	}
	for i := 0; i < m; i++ {
		_ = b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	return b.Build()
}

// randomAdvDelta mines a random delta against g: node appends (sometimes
// with a label the dictionary has not seen yet), edge inserts (possibly
// duplicates, self-loops, or incident to appended nodes), and deletes of
// existing edges.
func randomAdvDelta(rng *rand.Rand, g *graph.Graph, labels int) *graph.Delta {
	var d graph.Delta
	n := g.NumNodes()
	for a := rng.Intn(3); a > 0; a-- {
		d.AddNode(fmt.Sprintf("L%d", rng.Intn(labels+1)), nil)
	}
	nNew := n + len(d.NodeAppends)
	for a := rng.Intn(8); a > 0; a-- {
		d.InsertEdge(graph.NodeID(rng.Intn(nNew)), graph.NodeID(rng.Intn(nNew)))
	}
	del := rng.Intn(4)
	for v := graph.NodeID(0); v < graph.NodeID(n) && del > 0; v++ {
		for _, w := range g.Out(v) {
			if rng.Intn(10) != 0 {
				continue
			}
			skip := false
			for _, e := range d.EdgeInserts {
				if e == [2]graph.NodeID{v, w} {
					skip = true
					break
				}
			}
			if !skip {
				d.DeleteEdge(v, w)
				del--
				if del == 0 {
					break
				}
			}
		}
	}
	return &d
}

// assertCachesEqual compares the full warmed row sets of two caches byte
// for byte.
func assertCachesEqual(t *testing.T, label string, got, want *BoundsCache) {
	t.Helper()
	got.mu.RLock()
	defer got.mu.RUnlock()
	want.mu.RLock()
	defer want.mu.RUnlock()
	if len(got.counts) != len(want.counts) {
		t.Fatalf("%s: %d warmed labels, want %d", label, len(got.counts), len(want.counts))
	}
	for id, wantRow := range want.counts {
		gotRow, ok := got.counts[id]
		if !ok {
			t.Fatalf("%s: label %d missing from advanced cache", label, id)
		}
		if !slices.Equal(gotRow, wantRow) {
			for v := range wantRow {
				if gotRow[v] != wantRow[v] {
					t.Fatalf("%s: label %d row %d = %d, want %d", label, id, v, gotRow[v], wantRow[v])
				}
			}
			t.Fatalf("%s: label %d rows differ in length: %d vs %d", label, id, len(gotRow), len(wantRow))
		}
	}
}

// TestBoundsAdvanceDeltaChainFuzz is the bound-index half of the
// delta-equivalence guarantee: for every seed, a random graph advances
// through a chain of random deltas, and after every step the advanced
// cache's counts must be byte-identical to a fresh NewBoundsCache+Warm on
// the new snapshot — for both descendant-count modes, under the adaptive
// fallback as well as a forced-incremental and a forced-rebuild path,
// which must also agree with each other. Labels a delta introduces are
// filled by the post-advance Warm (the Matcher.Update discipline) and
// compared too.
func TestBoundsAdvanceDeltaChainFuzz(t *testing.T) {
	const labels = 4
	for _, mode := range []struct {
		name  string
		exact bool
	}{{"exact", true}, {"loose", false}} {
		for seed := int64(1); seed <= 12; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", mode.name, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				dict := graph.NewDict()
				g := randomAdvGraph(rng, 24+rng.Intn(30), 90+rng.Intn(120), labels, dict)

				newWarm := func(gg *graph.Graph) *BoundsCache {
					c := NewBoundsCache(gg, mode.exact)
					c.Warm(nil)
					return c
				}
				adaptive := newWarm(g)
				forced := newWarm(g)  // never falls back, sequential oracle
				forcedP := newWarm(g) // never falls back, parallel shards
				rebuilt := newWarm(g) // always falls back
				for step := 0; step < 10; step++ {
					d := randomAdvDelta(rng, g, labels)
					gNew, sum, err := graph.ApplyDeltaWithSummary(g, d)
					if err != nil {
						t.Fatalf("step %d: %v", step, err)
					}

					var stats AdvanceStats
					adaptive, stats, err = adaptive.Advance(gNew, sum, AdvanceOptions{})
					if err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					forced, _, err = forced.Advance(gNew, sum, AdvanceOptions{RebuildRatio: 1, Workers: 1})
					if err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					forcedP, _, err = forcedP.Advance(gNew, sum, AdvanceOptions{RebuildRatio: 1, Workers: 8})
					if err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					var rstats AdvanceStats
					rebuilt, rstats, err = rebuilt.Advance(gNew, sum, AdvanceOptions{RebuildRatio: 1e-9})
					if err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					if rstats.Incremental && rstats.RecomputedCells > 0 {
						t.Fatalf("step %d: forced-rebuild path stayed incremental: %+v", step, rstats)
					}
					if stats.TotalRows != gNew.NumNodes() {
						t.Fatalf("step %d: stats rows %d, want %d", step, stats.TotalRows, gNew.NumNodes())
					}

					// The Matcher discipline: labels the delta introduced
					// fill against the new snapshot after the advance.
					adaptive.Warm(nil)
					forced.Warm(nil)
					forcedP.Warm(nil)
					rebuilt.Warm(nil)

					oracle := newWarm(gNew)
					assertCachesEqual(t, fmt.Sprintf("step %d adaptive", step), adaptive, oracle)
					assertCachesEqual(t, fmt.Sprintf("step %d forced-incremental", step), forced, oracle)
					assertCachesEqual(t, fmt.Sprintf("step %d forced-incremental-parallel", step), forcedP, oracle)
					assertCachesEqual(t, fmt.Sprintf("step %d forced-rebuild", step), rebuilt, oracle)
					g = gNew
				}
			})
		}
	}
}

// TestBoundsAdvanceVersionMismatch pins the hard-error guard: advancing
// must move the version forward (a multi-step jump is legal — that is the
// group-commit path — but the summary must then cover the whole merged
// delta), and a summary that disagrees with the snapshots is rejected
// instead of silently producing a wrong index.
func TestBoundsAdvanceVersionMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomAdvGraph(rng, 16, 40, 3, graph.NewDict())
	c := NewBoundsCache(g, true)
	c.Warm(nil)

	var d graph.Delta
	d.InsertEdge(0, 1)
	g1, sum1, err := graph.ApplyDeltaWithSummary(g, &d)
	if err != nil {
		t.Fatal(err)
	}

	// A multi-step advance is the group-commit path: the merged delta of
	// both steps applied in one ApplyDeltaVersionStep call, advanced with
	// the merged summary, must match a fresh build of the final snapshot.
	merged := &graph.Delta{}
	if err := merged.Merge(g, &d); err != nil {
		t.Fatal(err)
	}
	var d2 graph.Delta
	d2.InsertEdge(1, 2)
	if err := merged.Merge(g, &d2); err != nil {
		t.Fatal(err)
	}
	g2m, sum2m, err := graph.ApplyDeltaVersionStep(g, merged, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g2m.Version() != g.Version()+2 {
		t.Fatalf("merged apply landed on version %d, want %d", g2m.Version(), g.Version()+2)
	}
	c2, _, err := c.Advance(g2m, sum2m, AdvanceOptions{})
	if err != nil {
		t.Fatalf("group-commit advance: %v", err)
	}
	oracle2 := NewBoundsCache(g2m, true)
	oracle2.Warm(nil)
	assertCachesEqual(t, "group-commit advance", c2, oracle2)

	// Same snapshot (no version bump) is a hard error.
	if _, _, err := c.Advance(g, sum1, AdvanceOptions{}); err == nil {
		t.Fatal("Advance accepted the cache's own snapshot")
	}
	// A summary whose node counts disagree with the delta is a hard error.
	bad := *sum1
	bad.NewNodes++
	if _, _, err := c.Advance(g1, &bad, AdvanceOptions{}); err == nil {
		t.Fatal("Advance accepted a summary with mismatched node counts")
	}
	if _, _, err := c.Advance(g1, nil, AdvanceOptions{}); err == nil {
		t.Fatal("Advance accepted a nil summary")
	}
	// The well-formed advance still works afterwards.
	c1, stats, err := c.Advance(g1, sum1, AdvanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c1.Graph() != g1 || stats.TotalRows != g1.NumNodes() {
		t.Fatalf("advance landed on the wrong snapshot: %+v", stats)
	}
}

// TestBoundsAdvanceConcurrentWithReads advances a cache while the old
// snapshot keeps serving index reads — the exact overlap Matcher.Update
// creates — and must be race-clean.
func TestBoundsAdvanceConcurrentWithReads(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dict := graph.NewDict()
	g := randomAdvGraph(rng, 40, 160, 4, dict)
	c := NewBoundsCache(g, true)
	c.Warm(nil)

	var d graph.Delta
	d.AddNode("L0", nil)
	d.InsertEdge(0, graph.NodeID(g.NumNodes()))
	gNew, sum, err := graph.ApplyDeltaWithSummary(g, &d)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for id := 0; id < 4; id++ {
					_ = c.countsFor(graph.LabelID(id))
				}
			}
		}()
	}
	nc, _, err := c.Advance(gNew, sum, AdvanceOptions{})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	nc.Warm(nil)
	oracle := NewBoundsCache(gNew, true)
	oracle.Warm(nil)
	assertCachesEqual(t, "concurrent advance", nc, oracle)
}
