package core

import (
	"divtopk/internal/bitset"
	"divtopk/internal/graph"
	"divtopk/internal/pattern"
	"divtopk/internal/simulation"
)

// Pair status values.
const (
	statusUnknown uint8 = iota
	statusMatched
	statusDead
)

// engine is the incremental propagation machine shared by TopK, TopKDAG,
// their nopt variants and TopKDH. See DESIGN.md §3 for the architecture and
// the soundness argument of each counter.
//
// Per candidate pair (u,v) it tracks:
//
//   - status ∈ {unknown, matched, dead} and a finalized flag. Matched pairs
//     never die; dead pairs are finalized by definition.
//   - satCnt[slot]: matched successors per outgoing query edge; the pair's
//     boolean formula Xv = ∧_j ∨_i X_vi is true as soon as every edge has
//     satCnt > 0 (counted by satEdges).
//   - unfinCnt[slot]: not-yet-finalized successors per edge. An edge whose
//     unfinCnt reaches 0 with satCnt = 0 resolves the disjunction to false
//     and kills the pair — the lazy false-resolution of the paper's formula
//     semantics (no eager refinement at init; see DESIGN.md).
//   - rset: the partial relevant set over the relevance universe, grown
//     monotonically toward R(u,v); maintained only for pairs whose query
//     node is the output node or one of its descendants.
//
// Query nodes are grouped into units (the SCCs of Q); nontrivial units are
// evaluated by greatest-fixpoint refinement (refineUnit), the engine's
// equivalent of the paper's SccProcess.
type engine struct {
	g     *graph.Graph
	p     *pattern.Pattern
	an    *pattern.Analysis
	ci    *simulation.CandidateIndex
	prod  *simulation.Product // materialized product CSR; all propagation walks it
	space *simulation.RelSpace
	opts  Options
	k     int
	uo    int
	nq    int

	// Per query node.
	needEdges []int32 // number of outgoing query edges
	relQ      []bool  // track relevant sets for this query node's pairs
	matchCnt  []int32 // matched pairs per query node (global-match check)
	aliveCnt  []int32 // non-dead pairs per query node (emptiness abort)

	// Per pair.
	status    []uint8
	finalized []bool
	fed       []bool
	satEdges  []int32
	base      []int32 // first counter slot of the pair
	rset      []*bitset.Set

	// Per (pair, child edge) slot.
	satCnt   []int32
	unfinCnt []int32

	// Per pair: total unfinalized successors (all child edges, in-unit
	// included). Drives per-pair finalization; pairs on product cycles
	// never drain it pairwise and are resolved by unit finalization.
	unfinTotal []int32

	// Units = SCCs of Q.
	unitOf          []int32 // query node -> unit
	nUnits          int
	unitNodes       [][]int32
	unitRank        []int32
	unitNontrivial  []bool
	unitLeaf        []bool
	unitOutstanding []int64 // pending cross-unit finalizations + unfed leaf pairs
	unitDirty       []bool
	unitPendingFin  []bool
	unitFinalized   []bool
	dirtyUnits      []int32

	// Upper bounds for output-node candidates (indexed by pair - uoLo).
	upper      []int32
	uoLo, uoHi int32

	// Event queues.
	matchQ  []int32
	finalQ  []int32 // finalization events (deaths included)
	newRelM []int32 // newly matched relevance-tracked pairs, for the R phase

	// R propagation worklist: per pair either a pending full-set forward
	// (rFull) or a list of newly added bit indices (rDelta).
	rQueue   []int32
	rInQueue []bool
	rFull    []bool
	rDelta   [][]int32

	feeder       *feeder
	stats        Stats
	abortedEmpty bool
	hookReported []bool // uo matches already surfaced to Options.Hook

	// rarena allocates the partial relevant sets (rset) of interior
	// (non-output) pairs from shared chunks: one heap allocation per chunk
	// instead of per matched pair. Output-node sets are allocated
	// individually instead (space.NewSet) because they escape through
	// Result.Match.R and must not pin chunks past the engine's lifetime.
	rarena *bitset.Arena
}

// newEngine builds and initializes the engine, running the init-time
// finalization cascade (empty disjunctions). Returns nil when some query
// node has no candidates at all (G cannot match Q).
func newEngine(g *graph.Graph, p *pattern.Pattern, k int, opts Options) (*engine, error) {
	if err := validateInputs(g, k); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}

	e := &engine{
		g: g, p: p, opts: opts, k: k,
		uo: p.Output(), nq: p.NumNodes(),
	}
	e.an = pattern.Analyze(p)
	if opts.Prebuilt != nil && opts.Prebuilt.CI != nil {
		e.ci = opts.Prebuilt.CI
	} else {
		e.ci = simulation.BuildCandidatesParallel(g, p, opts.Workers())
	}
	e.space = simulation.BuildRelSpace(g, p, e.ci, e.an)
	e.stats.PairsTotal = e.ci.NumPairs()
	e.uoLo, e.uoHi = e.ci.PairRange(e.uo)
	e.stats.CandidatesOfOutput = int(e.uoHi - e.uoLo)

	for u := 0; u < e.nq; u++ {
		if len(e.ci.Lists[u]) == 0 {
			// Some query node has no candidates: M(Q,G) = ∅.
			e.abortedEmpty = true
			return e, nil
		}
	}

	if opts.Prebuilt != nil && opts.Prebuilt.Prod != nil {
		// Shared read-only: initPairState aliases prod.Base but allocates its
		// own counters, and propagation never writes product arrays.
		e.prod = opts.Prebuilt.Prod
	} else {
		e.prod = simulation.BuildProduct(g, p, e.ci, opts.Workers())
	}
	e.rarena = bitset.NewArena(e.space.Size())
	e.initPatternStructure()
	e.initUnits()
	e.initPairState()
	e.upper = computeUpperBounds(e.prod, e.an, e.space, opts)
	if opts.UpperOverride != nil {
		for i := e.uoLo; i < e.uoHi; i++ {
			if h, ok := opts.UpperOverride[e.ci.V[i]]; ok {
				e.upper[i-e.uoLo] = h
			}
		}
	}

	leaves := e.collectLeafPairs()
	e.feeder = newFeeder(e, leaves, opts)

	// Resolve init-time deaths (empty disjunctions) to quiescence.
	e.drainEvents()
	return e, nil
}

func (e *engine) initPatternStructure() {
	// No slot tables here anymore: the reverse product CSR carries each
	// edge's absolute counter slot (prod.RevSlot), which is what the old
	// per-query-node slotOf maps and inSlots lists existed to compute.
	e.needEdges = make([]int32, e.nq)
	e.relQ = make([]bool, e.nq)
	e.matchCnt = make([]int32, e.nq)
	e.aliveCnt = make([]int32, e.nq)
	for u := 0; u < e.nq; u++ {
		e.needEdges[u] = int32(len(e.p.Out(u)))
		e.relQ[u] = u == e.uo || e.an.OutputDesc[u]
		e.aliveCnt[u] = int32(len(e.ci.Lists[u]))
	}
}

func (e *engine) initUnits() {
	cond := e.an.Cond
	e.nUnits = cond.NumComps
	e.unitOf = make([]int32, e.nq)
	e.unitNodes = make([][]int32, e.nUnits)
	e.unitRank = cond.Rank
	e.unitNontrivial = cond.Nontrivial
	e.unitLeaf = make([]bool, e.nUnits)
	e.unitOutstanding = make([]int64, e.nUnits)
	e.unitDirty = make([]bool, e.nUnits)
	e.unitPendingFin = make([]bool, e.nUnits)
	e.unitFinalized = make([]bool, e.nUnits)

	for u := 0; u < e.nq; u++ {
		c := cond.Comp[u]
		e.unitOf[u] = c
		e.unitNodes[c] = append(e.unitNodes[c], int32(u))
	}
	for c := 0; c < e.nUnits; c++ {
		e.unitLeaf[c] = cond.Rank[c] == 0
	}
}

func (e *engine) initPairState() {
	total := e.ci.NumPairs()
	e.status = make([]uint8, total)
	e.finalized = make([]bool, total)
	e.fed = make([]bool, total)
	e.satEdges = make([]int32, total)
	e.rset = make([]*bitset.Set, total)
	e.unfinTotal = make([]int32, total)
	// The counter layout is exactly the product's slot layout: one slot per
	// (pair, outgoing query edge), so the arrays share prod.Base and the
	// reverse CSR's absolute slots index them directly.
	e.base = e.prod.Base
	e.satCnt = make([]int32, e.base[total])
	e.unfinCnt = make([]int32, e.base[total])
	e.rInQueue = make([]bool, total)
	e.rFull = make([]bool, total)
	e.rDelta = make([][]int32, total)

	// unfinCnt init: candidate successors per (pair, edge) — the product
	// slot lengths; empty disjunctions die. Cross-unit counts feed
	// unitOutstanding. Counters must be fully accumulated before any death
	// runs — a death decrements unitOutstanding and could otherwise observe
	// a half-built counter and finalize a unit prematurely — hence the two
	// passes.
	var initDead []int32
	for q := int32(0); q < int32(total); q++ {
		u := int(e.ci.U[q])
		unit := e.unitOf[u]
		emptyEdge := false
		for j, uc := range e.p.Out(u) {
			c := e.prod.SlotLen(e.base[q] + int32(j))
			e.unfinCnt[e.base[q]+int32(j)] = c
			if c == 0 {
				emptyEdge = true
			}
			e.unfinTotal[q] += c
			if e.unitNontrivial[unit] && e.unitOf[uc] != unit {
				e.unitOutstanding[unit] += int64(c)
			}
		}
		if e.unitNontrivial[unit] && e.unitLeaf[unit] {
			e.unitOutstanding[unit]++ // pending feed of this pair
		}
		if emptyEdge {
			initDead = append(initDead, q)
		}
	}
	for _, q := range initDead {
		e.die(q)
	}
}

// collectLeafPairs lists the candidate pairs of rank-0 query nodes in pair
// order (the universe the feeder draws Sc from).
func (e *engine) collectLeafPairs() []int32 {
	var out []int32
	for u := 0; u < e.nq; u++ {
		if e.unitRank[e.unitOf[u]] != 0 {
			continue
		}
		lo, hi := e.ci.PairRange(u)
		for q := lo; q < hi; q++ {
			out = append(out, q)
		}
	}
	return out
}

// markDirty schedules a nontrivial unit for (re-)refinement.
func (e *engine) markDirty(unit int32) {
	if !e.unitDirty[unit] && !e.unitFinalized[unit] {
		e.unitDirty[unit] = true
		e.dirtyUnits = append(e.dirtyUnits, unit)
	}
}

// outstandingDec decrements a unit's pending-work counter and schedules the
// final refinement when it hits zero.
func (e *engine) outstandingDec(unit int32) {
	e.unitOutstanding[unit]--
	if e.unitOutstanding[unit] == 0 && !e.unitFinalized[unit] {
		e.unitPendingFin[unit] = true
		e.markDirty(unit)
		// markDirty refuses finalized units but unitPendingFin forces a
		// last refinement even if the dirty flag was already set.
		if !e.unitDirty[unit] {
			e.unitDirty[unit] = true
			e.dirtyUnits = append(e.dirtyUnits, unit)
		}
	}
}
