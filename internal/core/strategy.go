package core

import (
	"math/rand"
	"sort"
)

// feeder hands out batches of unvisited leaf candidate pairs (the Sc sets of
// §4.1). The order is fixed up front by the strategy; pairs that died before
// being fed are skipped at hand-out time.
type feeder struct {
	order   []int32
	pos     int
	round   int
	batches int
}

// newFeeder builds the feeding order over leafPairs.
//
// Covering (the paper's optimized selection): leaf candidates that are
// children of candidates of rank-1 query nodes come first, ordered by how
// many such parents they cover (descending), so that the first batches are
// the "minimal set that includes all the children of those candidates of
// query nodes with rank 1" and productive matches appear early. Random (the
// nopt baselines): a seeded shuffle.
func newFeeder(e *engine, leafPairs []int32, opts Options) *feeder {
	order := make([]int32, len(leafPairs))
	copy(order, leafPairs)

	switch opts.Strategy {
	case StrategyRandom:
		rng := rand.New(rand.NewSource(opts.Seed))
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	default: // StrategyCovering
		// A leaf pair's covering score is its number of reverse product
		// edges from rank-1 parents — read straight off the reverse CSR.
		score := make(map[int32]int, len(order))
		for _, q := range order {
			n := 0
			for ei := e.prod.RevOff[q]; ei < e.prod.RevOff[q+1]; ei++ {
				if e.an.Rank[e.ci.U[e.prod.Rev[ei]]] == 1 {
					n++
				}
			}
			score[q] = n
		}
		sort.Slice(order, func(i, j int) bool {
			si, sj := score[order[i]], score[order[j]]
			if si != sj {
				return si > sj
			}
			return order[i] < order[j]
		})
	}

	return &feeder{order: order, batches: opts.numBatches()}
}

// next returns the next batch of not-yet-dead leaf pairs, or nil when
// exhausted. Batch sizes grow geometrically: the first batches are small
// (fine-grained early-termination checks while a quick win is still
// possible), later ones cover exponentially more (so a run that must
// exhaust the leaves pays at most a logarithmic number of propagation
// rounds instead of NumBatches of them — each round re-propagates relevance
// deltas across the matched product graph).
func (f *feeder) next(e *engine) []int32 {
	if f.pos >= len(f.order) {
		return nil
	}
	size := len(f.order) >> uint(f.batches-1-f.round)
	if f.round >= f.batches-1 {
		size = len(f.order)
	}
	if size < 1 {
		size = 1
	}
	f.round++
	var batch []int32
	for f.pos < len(f.order) && len(batch) < size {
		q := f.order[f.pos]
		f.pos++
		if e.status[q] == statusDead {
			continue
		}
		batch = append(batch, q)
	}
	return batch
}

// done reports whether all leaf pairs have been handed out.
func (f *feeder) done() bool { return f.pos >= len(f.order) }
