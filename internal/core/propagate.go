package core

import (
	"fmt"
	"sort"

	"divtopk/internal/bitset"
)

// becomeMatched transitions a pair to matched and queues the match event.
// Matched pairs never revert (the boolean system is monotone in the fed
// leaves, which is what lets the engine trust partial lower bounds).
func (e *engine) becomeMatched(q int32) {
	switch e.status[q] {
	case statusMatched:
		return
	case statusDead:
		panic(fmt.Sprintf("core: dead pair (%d,%d) matched", e.ci.U[q], e.ci.V[q]))
	}
	e.status[q] = statusMatched
	u := e.ci.U[q]
	e.matchCnt[u]++
	if e.relQ[u] {
		e.newRelM = append(e.newRelM, q)
	}
	e.matchQ = append(e.matchQ, q)
}

// die transitions a pair to dead (and therefore finalized) and queues the
// finalization event.
func (e *engine) die(q int32) {
	if e.status[q] == statusDead {
		return
	}
	if e.status[q] == statusMatched {
		panic(fmt.Sprintf("core: matched pair (%d,%d) died", e.ci.U[q], e.ci.V[q]))
	}
	e.status[q] = statusDead
	e.finalized[q] = true
	u := e.ci.U[q]
	e.aliveCnt[u]--
	if e.aliveCnt[u] == 0 {
		e.abortedEmpty = true // M(Q,G) = ∅; run loop stops
	}
	unit := e.unitOf[u]
	if e.unitNontrivial[unit] {
		if e.unitLeaf[unit] && !e.fed[q] {
			e.outstandingDec(unit)
		}
		// No markDirty: deaths only shrink the unit's greatest fixpoint and
		// cannot produce new matches, so no refinement is needed (dead
		// pairs are excluded from the next refine anyway); re-refining per
		// death would cost O(unit product) per event.
	}
	e.finalQ = append(e.finalQ, q)
}

// finalizePair finalizes an alive (matched) pair: its relevant set can no
// longer grow, so l = h = δr from the next R phase on.
func (e *engine) finalizePair(q int32) {
	if e.finalized[q] {
		return
	}
	e.finalized[q] = true
	e.finalQ = append(e.finalQ, q)
}

// processMatch propagates a fresh match to candidate predecessors: their
// per-edge satisfied counters grow; trivial-unit parents whose every edge is
// satisfied become matches themselves, nontrivial parents' units are
// re-refined. Predecessors come straight off the reverse product CSR, whose
// RevSlot entries index the counter arrays directly.
func (e *engine) processMatch(q int32) {
	unit := e.unitOf[e.ci.U[q]]
	prod := e.prod
	for ei := prod.RevOff[q]; ei < prod.RevOff[q+1]; ei++ {
		qp := prod.Rev[ei]
		if e.status[qp] == statusDead {
			continue
		}
		slot := prod.RevSlot[ei]
		e.satCnt[slot]++
		if e.satCnt[slot] != 1 {
			continue
		}
		e.satEdges[qp]++
		up := int(e.ci.U[qp])
		upUnit := e.unitOf[up]
		if !e.unitNontrivial[upUnit] {
			if e.satEdges[qp] == e.needEdges[up] {
				e.becomeMatched(qp)
			}
		} else if upUnit != unit {
			// New outside support for a nontrivial unit.
			e.markDirty(upUnit)
		}
	}
}

// processFinalized propagates a finalization (death or alive-finalization)
// to candidate predecessors, resolving disjunctions lazily: an edge with no
// matched successor and no unfinalized successor left is false, killing the
// parent; a trivial parent with no unfinalized successors at all resolves
// completely (finalize if matched, die otherwise).
func (e *engine) processFinalized(q int32) {
	unit := e.unitOf[e.ci.U[q]]
	prod := e.prod
	for ei := prod.RevOff[q]; ei < prod.RevOff[q+1]; ei++ {
		qp := prod.Rev[ei]
		slot := prod.RevSlot[ei]
		up := int(e.ci.U[qp])
		upUnit := e.unitOf[up]
		e.unfinCnt[slot]--
		nontrivial := e.unitNontrivial[upUnit]
		if nontrivial && upUnit != unit {
			// Outstanding counts cross-unit successor finalizations of
			// all unit pairs, dead or alive (see DESIGN.md §3).
			e.outstandingDec(upUnit)
		}
		if e.status[qp] == statusDead {
			continue
		}
		e.unfinTotal[qp]--
		if e.unfinCnt[slot] == 0 && e.satCnt[slot] == 0 {
			e.die(qp)
			continue
		}
		if e.unfinTotal[qp] != 0 {
			continue
		}
		// All successors finalized: the pair resolves. For pairs of
		// cyclic units this is sound because drainEvents runs pending
		// unit refinements before finalization events, so any
		// gfp-supported pair is already matched by now; unfed leaves
		// stay pending (feeding may still match them) and pairs on
		// product cycles keep a positive unfinTotal until the unit
		// finalizes them together.
		if nontrivial && e.unitLeaf[upUnit] && !e.fed[qp] {
			continue
		}
		if e.status[qp] == statusMatched {
			e.finalizePair(qp)
		} else {
			e.die(qp)
		}
	}
}

// drainEvents processes match and finalization queues to quiescence,
// interleaving greatest-fixpoint refinement of dirty nontrivial units in
// ascending rank order (events only ever flow to units of strictly higher
// rank, so this converges).
func (e *engine) drainEvents() {
	for {
		switch {
		case len(e.matchQ) > 0:
			q := e.matchQ[len(e.matchQ)-1]
			e.matchQ = e.matchQ[:len(e.matchQ)-1]
			e.processMatch(q)
		case len(e.dirtyUnits) > 0 || len(e.finalQ) > 0:
			if len(e.dirtyUnits) == 0 {
				q := e.finalQ[len(e.finalQ)-1]
				e.finalQ = e.finalQ[:len(e.finalQ)-1]
				e.processFinalized(q)
				continue
			}
			// Lowest-rank dirty unit first.
			best := 0
			for i := 1; i < len(e.dirtyUnits); i++ {
				if e.unitRank[e.dirtyUnits[i]] < e.unitRank[e.dirtyUnits[best]] {
					best = i
				}
			}
			// Refinements run before finalization events so that every
			// gfp-supported pair is matched before per-pair resolution
			// can declare unmatched pairs dead.
			unit := e.dirtyUnits[best]
			e.dirtyUnits[best] = e.dirtyUnits[len(e.dirtyUnits)-1]
			e.dirtyUnits = e.dirtyUnits[:len(e.dirtyUnits)-1]
			e.unitDirty[unit] = false
			e.refineUnit(unit)
		default:
			return
		}
	}
}

// refineUnit computes the greatest fixpoint of the simulation condition
// restricted to one nontrivial unit of Q (the engine's SccProcess): start
// from the active pairs whose cross-unit edges are all satisfied by known
// matches, then repeatedly delete pairs with an unsupported in-unit edge.
// Survivors are matches. Because outside support only grows, previously
// matched pairs always survive (monotonicity). When the unit's outstanding
// work has hit zero the refinement is final: survivors finalize, the rest
// die.
func (e *engine) refineUnit(unit int32) {
	if e.unitFinalized[unit] {
		return
	}
	final := e.unitPendingFin[unit]

	nodes := e.unitNodes[unit]
	// Dense per-query-node tables (patterns are tiny; maps here were pure
	// overhead in the refinement loop).
	inUnit := make([]bool, e.nq)
	for _, u := range nodes {
		inUnit[u] = true
	}

	// Local indexing of the unit's pairs: pair IDs of one query node are
	// contiguous, so a per-node offset table maps them to dense local IDs
	// (dead pairs keep a slot; they are simply never included).
	localBase := make([]int32, e.nq)
	totalLocal := int32(0)
	var pairsOf = func(u int32) (int32, int32) { return e.ci.PairRange(int(u)) }
	for _, u := range nodes {
		lo, hi := pairsOf(u)
		localBase[u] = totalLocal - lo
		totalLocal += hi - lo
	}
	localOf := func(q int32) int32 { return localBase[e.ci.U[q]] + q }

	pairs := make([]int32, 0, totalLocal)
	for _, u := range nodes {
		lo, hi := pairsOf(u)
		for q := lo; q < hi; q++ {
			pairs = append(pairs, q)
		}
	}

	include := make([]bool, totalLocal)
	for li, q := range pairs {
		if e.status[q] == statusDead {
			continue
		}
		u := int(e.ci.U[q])
		if e.unitLeaf[unit] && !e.fed[q] {
			continue
		}
		ok := true
		for j, uc := range e.p.Out(u) {
			if inUnit[uc] {
				continue
			}
			if e.satCnt[e.base[q]+int32(j)] == 0 {
				ok = false
				break
			}
		}
		include[li] = ok
	}

	// In-unit support counters per (local pair, in-unit edge slot) and the
	// reverse references needed by the removal worklist, all in flat slices.
	maxOut := 0
	for _, u := range nodes {
		if d := len(e.p.Out(int(u))); d > maxOut {
			maxOut = d
		}
	}
	inCnt := make([]int32, int(totalLocal)*maxOut)
	predHead := make([]int32, totalLocal) // head of each target's pred list
	for i := range predHead {
		predHead[i] = -1
	}
	type predRef struct {
		key  int32 // parent local * maxOut + edge slot
		next int32
	}
	var preds []predRef
	for li, q := range pairs {
		if !include[li] {
			continue
		}
		u := int(e.ci.U[q])
		for j, uc := range e.p.Out(u) {
			if !inUnit[uc] {
				continue
			}
			key := int32(li)*int32(maxOut) + int32(j)
			for _, qc := range e.prod.SlotSuccs(q, j) {
				lc := localOf(qc)
				if !include[lc] {
					continue
				}
				inCnt[key]++
				preds = append(preds, predRef{key: key, next: predHead[lc]})
				predHead[lc] = int32(len(preds) - 1)
			}
		}
	}

	// Worklist removal of unsupported pairs.
	var removeQ []int32
	for li, q := range pairs {
		if !include[li] {
			continue
		}
		u := int(e.ci.U[q])
		for j, uc := range e.p.Out(u) {
			if inUnit[uc] && inCnt[int32(li)*int32(maxOut)+int32(j)] == 0 {
				include[li] = false
				removeQ = append(removeQ, int32(li))
				break
			}
		}
	}
	for len(removeQ) > 0 {
		lr := removeQ[len(removeQ)-1]
		removeQ = removeQ[:len(removeQ)-1]
		for ref := predHead[lr]; ref >= 0; ref = preds[ref].next {
			key := preds[ref].key
			parent := key / int32(maxOut)
			if !include[parent] {
				continue
			}
			inCnt[key]--
			if inCnt[key] == 0 {
				include[parent] = false
				removeQ = append(removeQ, parent)
			}
		}
	}

	// Survivors are matches; previously matched pairs must be among them.
	for li, q := range pairs {
		if e.status[q] == statusDead {
			continue
		}
		if include[li] {
			if e.status[q] != statusMatched {
				e.becomeMatched(q)
			}
		} else if e.status[q] == statusMatched {
			panic(fmt.Sprintf("core: refineUnit dropped matched pair (%d,%d)", e.ci.U[q], e.ci.V[q]))
		}
	}

	if final {
		e.unitFinalized[unit] = true
		e.unitPendingFin[unit] = false
		for li, q := range pairs {
			if e.status[q] == statusDead {
				continue
			}
			if include[li] {
				e.finalizePair(q)
			} else {
				e.die(q)
			}
		}
	}
}

// maxDeltaList bounds the per-pair pending-delta list; beyond it the pair
// falls back to propagating its full set (one wide union beats a long list).
const maxDeltaList = 192

// propagateRelevance runs the R phase of a batch: initialize the relevant
// sets of freshly matched relevance-tracked pairs from their matched
// successors, then push monotone updates up the (possibly cyclic) matched
// product graph until quiescence.
//
// Updates are delta-based: after its initial full gather, a pair forwards
// only the bit indices newly added to its set, falling back to a full-width
// union when the delta grows large. Without this, every feeding batch would
// re-union full-width bitsets across the whole matched product graph,
// multiplying the baseline's one-pass union work by the number of batches.
func (e *engine) propagateRelevance() {
	if len(e.newRelM) == 0 {
		return
	}
	// Children first (ascending unit rank) to minimize re-propagation.
	sort.Slice(e.newRelM, func(i, j int) bool {
		ri := e.unitRank[e.unitOf[e.ci.U[e.newRelM[i]]]]
		rj := e.unitRank[e.unitOf[e.ci.U[e.newRelM[j]]]]
		if ri != rj {
			return ri < rj
		}
		return e.newRelM[i] < e.newRelM[j]
	})

	for _, q := range e.newRelM {
		// Output-node sets escape through Result.Match.R and may be retained
		// indefinitely (the serving layer caches Results); give them their
		// own allocations so a kept set does not pin a whole arena chunk —
		// and with it every interior set carved from the same chunk — past
		// the engine's lifetime. Interior sets die with the engine and stay
		// arena-backed.
		var s *bitset.Set
		if int(e.ci.U[q]) == e.uo {
			s = e.space.NewSet()
		} else {
			s = e.rarena.Get()
		}
		for _, qc := range e.prod.Succs(q) {
			if e.status[qc] != statusMatched {
				continue
			}
			if rs := e.rset[qc]; rs != nil {
				s.UnionWith(rs)
			}
			if idx := e.space.Index(e.ci.V[qc]); idx >= 0 {
				s.Add(int(idx))
			}
		}
		e.rset[q] = s
		// A fresh match is new to all its parents: forward the full set.
		e.rEnqueueFull(q)
	}
	e.newRelM = e.newRelM[:0]

	prod := e.prod
	for len(e.rQueue) > 0 {
		q := e.rQueue[len(e.rQueue)-1]
		e.rQueue = e.rQueue[:len(e.rQueue)-1]
		e.rInQueue[q] = false
		full := e.rFull[q]
		delta := e.rDelta[q]
		e.rFull[q] = false
		e.rDelta[q] = nil

		src := e.rset[q]
		selfIdx := e.space.Index(e.ci.V[q])
		for ei := prod.RevOff[q]; ei < prod.RevOff[q+1]; ei++ {
			qp := prod.Rev[ei]
			if !e.relQ[e.ci.U[qp]] || e.status[qp] != statusMatched {
				continue
			}
			dst := e.rset[qp]
			if dst == nil {
				continue // initialized later this phase; init gathers src
			}
			if full {
				changed := dst.UnionWith(src)
				if selfIdx >= 0 && dst.Add(int(selfIdx)) {
					changed = true
				}
				if changed {
					e.rEnqueueFull(qp)
				}
			} else {
				var added []int32
				for _, b := range delta {
					if dst.Add(int(b)) {
						added = append(added, b)
					}
				}
				if selfIdx >= 0 && dst.Add(int(selfIdx)) {
					added = append(added, selfIdx)
				}
				if len(added) > 0 {
					e.rEnqueueDelta(qp, added)
				}
			}
		}
	}
}

// rEnqueueFull schedules a full-set forward for q.
func (e *engine) rEnqueueFull(q int32) {
	e.rFull[q] = true
	e.rDelta[q] = nil
	if !e.rInQueue[q] {
		e.rInQueue[q] = true
		e.rQueue = append(e.rQueue, q)
	}
}

// rEnqueueDelta schedules additional delta bits for q, upgrading to a full
// forward when the pending list grows too large.
func (e *engine) rEnqueueDelta(q int32, bits []int32) {
	if !e.rFull[q] {
		e.rDelta[q] = append(e.rDelta[q], bits...)
		if len(e.rDelta[q]) > maxDeltaList {
			e.rFull[q] = true
			e.rDelta[q] = nil
		}
	}
	if !e.rInQueue[q] {
		e.rInQueue[q] = true
		e.rQueue = append(e.rQueue, q)
	}
}
