// Package core implements the paper's primary contribution: the
// early-termination top-k matching algorithms of §4 (TopKDAG for DAG
// patterns, TopK for cyclic patterns, and their non-optimized variants
// TopKDAGnopt/TopKnopt), plus the find-all baseline Match they are compared
// against, all over one incremental propagation engine (see DESIGN.md §3).
//
// Given a pattern Q with output node uo, a graph G and k, the engine feeds
// batches of leaf candidates, propagates match status and relevant sets
// upward through the SCC units of Q, maintains per-candidate lower/upper
// bounds l ≤ δr ≤ h, and stops as soon as Proposition 3 holds: the k best
// discovered matches' smallest lower bound dominates every other live
// candidate's upper bound — without computing the entire M(Q,G).
package core

import (
	"errors"
	"fmt"

	"divtopk/internal/bitset"
	"divtopk/internal/graph"
	"divtopk/internal/parallel"
	"divtopk/internal/simulation"
)

// Strategy selects how the engine picks the next batch of unvisited leaf
// candidates (the set Sc of §4.1).
type Strategy int

const (
	// StrategyCovering is the paper's optimized heuristic: prefer leaf
	// candidates that are children of candidates of rank-1 query nodes (most
	// covering parents first), so productive matches surface early. This is
	// the strategy of TopK/TopKDAG.
	StrategyCovering Strategy = iota
	// StrategyRandom picks unvisited leaf candidates in random order; this
	// is the "nopt" baseline of the paper's Exp-1/Exp-2.
	StrategyRandom
)

// String names the strategy.
func (s Strategy) String() string {
	if s == StrategyRandom {
		return "random"
	}
	return "covering"
}

// BoundMode selects how the initial upper bounds h(uo,v) are computed.
type BoundMode int

const (
	// BoundTight counts reachability over the candidate product graph —
	// the semantics that reproduces the h values of the paper's Examples 7
	// and 8 (see DESIGN.md §2.3).
	BoundTight BoundMode = iota
	// BoundLabelCount uses exact label-filtered descendant counts in G:
	// cheaper to compute, looser (it ignores the pattern's path structure).
	BoundLabelCount
	// BoundCheap uses the O(|G|)-per-label overcounting descendant sum:
	// cheapest, loosest. Kept for the bounds ablation benchmark.
	BoundCheap
)

// String names the bound mode.
func (b BoundMode) String() string {
	switch b {
	case BoundLabelCount:
		return "label-count"
	case BoundCheap:
		return "cheap"
	default:
		return "tight"
	}
}

// Kernel selects the evaluation kernel of the full-evaluation paths (the
// find-all baseline and everything riding it, e.g. TopKDiv).
type Kernel int

const (
	// KernelCSR is the default: refinement and relevant-set computation run
	// over the materialized product CSR (simulation.Product) with the
	// bitset-arena condensation kernel.
	KernelCSR Kernel = iota
	// KernelReference selects the frozen pre-CSR kernel (on-the-fly product
	// edges through ci.Pair lookups, fresh bitsets per component). Results
	// are byte-identical to KernelCSR — the determinism tests enforce it —
	// so the knob exists only for A/B benchmarking (internal/bench) and as
	// the oracle side of those tests. It is deliberately excluded from
	// cache keys, like Parallelism.
	KernelReference
)

// String names the kernel.
func (k Kernel) String() string {
	if k == KernelReference {
		return "reference"
	}
	return "csr"
}

// Options tune the engine. The zero value is the paper's default
// configuration (covering strategy, tight bounds, 16 feeding batches).
type Options struct {
	// Strategy picks the leaf-selection heuristic (default covering).
	Strategy Strategy
	// Seed drives StrategyRandom's shuffle (ignored by covering).
	Seed int64
	// NumBatches is the number of leaf feeding batches (default 16). More
	// batches mean finer-grained termination checks.
	NumBatches int
	// Bounds picks the upper-bound initialization (default tight). Ignored
	// when Cache is set.
	Bounds BoundMode
	// Cache, if non-nil, supplies the per-graph descendant-label index and
	// switches the upper bounds to the amortized aggregation (the paper's
	// index design; see BoundsCache).
	Cache *BoundsCache
	// UpperOverride, if non-nil, replaces the initial upper bound of the
	// listed output candidates. Intended for bound-quality research (e.g.
	// the oracle row of the bounds ablation): overriding with exact δr
	// values isolates how much of the examined-matches ratio is due to
	// bound looseness versus feeding dynamics. Values must still satisfy
	// h ≥ δr or the result set may be wrong.
	UpperOverride map[graph.NodeID]int32
	// Hook, if non-nil, observes each batch; used by the diversified
	// heuristic TopKDH to maintain its swap set incrementally.
	Hook Hook
	// Parallelism bounds the worker goroutines used by the parallel
	// sections of a single query (candidate computation; product CSR
	// construction; relevant-set level sharding; the diversified greedy
	// scans). 0 means runtime.NumCPU(); 1 reproduces the sequential
	// execution exactly. Results are identical for every setting — the
	// parallel paths are deterministic by construction.
	Parallelism int
	// Kernel selects the evaluation kernel of the full-evaluation paths
	// (default: the materialized product CSR). See Kernel.
	Kernel Kernel
	// Prebuilt, if non-nil, supplies evaluation state already settled for
	// this exact (graph, pattern) snapshot — the candidate index and,
	// optionally, the product CSR and simulation fixpoint — so the run skips
	// rebuilding them. The matcher's warm result cache populates it from
	// delta-advanced IncStates; results are byte-identical by construction,
	// which is why Prebuilt, like Parallelism and Kernel, is excluded from
	// cache keys. Supplied state is shared read-only and never mutated.
	Prebuilt *PrebuiltEval
}

// PrebuiltEval carries settled evaluation state of one (graph, pattern)
// snapshot for Options.Prebuilt. CI is required when the struct is supplied;
// Prod and Sim are optional refinements consumed by the CSR-kernel
// full-evaluation path (the reference kernel and the engine take CI, the
// engine additionally Prod). Every field must have been computed against the
// exact graph and pattern of the call — the caller owns that contract.
type PrebuiltEval struct {
	CI   *simulation.CandidateIndex
	Prod *simulation.Product
	Sim  *simulation.Result
}

// Workers returns the normalized worker count for the options (see
// Parallelism).
func (o Options) Workers() int { return parallel.Workers(o.Parallelism) }

func (o Options) numBatches() int {
	if o.NumBatches <= 0 {
		return 16
	}
	return o.NumBatches
}

// Match is one ranked match of the output node.
type Match struct {
	// Node is the matched data node.
	Node graph.NodeID
	// Relevance is the known lower bound on δr(uo, Node); it equals the
	// exact δr when Exact is true (always true for finished runs of the
	// baseline, true for early-terminated candidates whose subtree
	// finalized).
	Relevance int
	// Upper is the upper bound h at termination time.
	Upper int
	// Exact reports whether Relevance is exactly δr.
	Exact bool
	// R is the (possibly partial) relevant set over Result.Space; nil when
	// the caller asked to drop sets.
	R *bitset.Set
}

// Stats reports the work an algorithm did; the harness derives the paper's
// MR metric (matches of uo inspected / |Mu|) from MatchesFound.
type Stats struct {
	// CandidatesOfOutput is |can(uo)|.
	CandidatesOfOutput int
	// MatchesFound is the number of matches of uo discovered before
	// termination — the |M^t_u| numerator of the paper's match ratio MR.
	MatchesFound int
	// Batches is the number of leaf batches fed.
	Batches int
	// EarlyTerminated reports whether Proposition 3 fired before all leaf
	// candidates were fed (false for the baseline and exhausted runs).
	EarlyTerminated bool
	// PairsTotal is the number of candidate pairs considered.
	PairsTotal int
}

// Result is the outcome of a top-k computation.
type Result struct {
	// Matches holds up to k matches, sorted by descending Relevance (node
	// ID ascending on ties).
	Matches []Match
	// All holds every discovered match of uo (superset of Matches), sorted
	// the same way. The diversified algorithms re-rank this pool.
	All []Match
	// Space maps relevant-set bitsets back to data nodes.
	Space *simulation.RelSpace
	// Cuo is the normalization constant of §3.3.
	Cuo int
	// GlobalMatch reports whether G matches Q (every query node matched).
	// When false, Matches and All are empty per the paper's semantics.
	GlobalMatch bool
	// Stats describes the work done.
	Stats Stats
}

// Hook observes engine batches; see Options.Hook.
type Hook interface {
	// Begin is invoked once before the first batch with the normalization
	// constant C_uo of §3.3 (the diversified heuristic needs it to evaluate
	// F'' mid-run).
	Begin(cuo int)
	// Batch is invoked after each propagation batch with the newly matched
	// output-node candidates. Handles read live engine state and must not
	// be retained past the run.
	Batch(newMatches []PairHandle)
}

// PairHandle is a live view of one matched output candidate during a run.
type PairHandle struct {
	e    *engine
	pair int32
}

// Node returns the matched data node.
func (h PairHandle) Node() graph.NodeID { return h.e.ci.V[h.pair] }

// Lower returns the current lower bound l (the size of the partial relevant
// set).
func (h PairHandle) Lower() int {
	if s := h.e.rset[h.pair]; s != nil {
		return s.Count()
	}
	return 0
}

// R returns the current (partial) relevant set. The set is live engine
// state: callers must treat it as read-only.
func (h PairHandle) R() *bitset.Set { return h.e.rset[h.pair] }

// ErrBadK is returned when k < 1.
var ErrBadK = errors.New("core: k must be >= 1")

// ErrNotDAG is returned by TopKDAG when the pattern is cyclic.
var ErrNotDAG = errors.New("core: TopKDAG requires a DAG pattern (use TopK)")

func validateInputs(g *graph.Graph, k int) error {
	if k < 1 {
		return ErrBadK
	}
	if g == nil {
		return fmt.Errorf("core: nil graph")
	}
	return nil
}
