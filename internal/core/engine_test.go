package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"divtopk/internal/graph"
	"divtopk/internal/testutil"
)

func TestBoundsCacheWarmAndLazy(t *testing.T) {
	g, _ := testutil.Figure1()
	warm := NewBoundsCache(g, true)
	warm.Warm(nil)
	lazy := NewBoundsCache(g, true)
	for _, name := range g.Dict().Names() {
		id, _ := g.Dict().ID(name)
		a, b := warm.countsFor(id), lazy.countsFor(id)
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("label %s node %d: warm %d vs lazy %d", name, v, a[v], b[v])
			}
		}
	}
	// Warming a subset then the rest must not double-count.
	part := NewBoundsCache(g, true)
	part.Warm([]string{"PM"})
	part.Warm(nil)
	id, _ := g.Dict().ID("ST")
	if part.countsFor(id) == nil {
		t.Fatal("partial warm lost labels")
	}
}

func TestCachedBoundsAgreeWithDirect(t *testing.T) {
	// The cached label-count aggregation must equal the per-query
	// BoundLabelCount computation pairwise.
	rng := rand.New(rand.NewSource(4))
	labels := []string{"a", "b", "c"}
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(20)
		g := testutil.RandomGraph(rng, n, rng.Intn(4*n), labels)
		p := testutil.RandomPattern(rng, 1+rng.Intn(4), rng.Intn(3), labels, trial%2 == 0)
		cache := NewBoundsCache(g, true)
		direct, err := TopK(g, p, 2, Options{Bounds: BoundLabelCount})
		if err != nil {
			t.Fatal(err)
		}
		cached, err := TopK(g, p, 2, Options{Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		if len(direct.All) != len(cached.All) {
			t.Fatalf("trial %d: %d vs %d matches", trial, len(direct.All), len(cached.All))
		}
		for i := range direct.All {
			if direct.All[i].Node != cached.All[i].Node || direct.All[i].Upper != cached.All[i].Upper {
				t.Fatalf("trial %d: match %d differs: %+v vs %+v",
					trial, i, direct.All[i], cached.All[i])
			}
		}
	}
}

func TestUpperOverrideOracle(t *testing.T) {
	// Overriding the bounds with exact relevances must preserve the answer
	// set (it remains a sound bound).
	g, _ := testutil.Figure1()
	p := testutil.Figure1Pattern()
	base, err := MatchBaseline(g, p, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	oracle := map[graph.NodeID]int32{}
	for _, m := range base.All {
		oracle[m.Node] = int32(m.Relevance)
	}
	res, err := TopK(g, p, 2, Options{UpperOverride: oracle})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 2 || res.Matches[0].Relevance+res.Matches[1].Relevance > 14 {
		t.Fatalf("oracle run wrong: %+v", res.Matches)
	}
}

func TestFeederGeometricBatches(t *testing.T) {
	g, _ := testutil.Figure1()
	p := testutil.Figure1Pattern()
	e, err := newEngine(g, p, 2, Options{NumBatches: 4})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	sizes := []int{}
	for {
		b := e.feeder.next(e)
		if len(b) == 0 {
			break
		}
		sizes = append(sizes, len(b))
		total += len(b)
	}
	if total != 4 { // the four ST leaf pairs
		t.Fatalf("fed %d leaf pairs, want 4 (sizes %v)", total, sizes)
	}
	// Sizes must be non-decreasing (geometric growth).
	for i := 1; i < len(sizes); i++ {
		if sizes[i] < sizes[i-1] {
			t.Fatalf("batch sizes not non-decreasing: %v", sizes)
		}
	}
	if e.feeder.next(e) != nil {
		t.Fatal("exhausted feeder returned a batch")
	}
}

func TestFeederSkipsDead(t *testing.T) {
	g, _ := testutil.Figure1()
	p := testutil.Figure1Pattern()
	e, err := newEngine(g, p, 2, Options{NumBatches: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Kill one leaf pair before feeding.
	lo, _ := e.ci.PairRange(3)
	e.die(lo)
	e.drainEvents()
	total := 0
	for {
		b := e.feeder.next(e)
		if len(b) == 0 {
			break
		}
		for _, q := range b {
			if e.status[q] == statusDead {
				t.Fatal("dead pair handed out")
			}
		}
		total += len(b)
	}
	if total != 3 {
		t.Fatalf("fed %d, want 3", total)
	}
}

// recordingHook captures the hook protocol for assertions.
type recordingHook struct {
	cuo     int
	batches int
	nodes   map[graph.NodeID]bool
}

func (h *recordingHook) Begin(cuo int) { h.cuo = cuo }
func (h *recordingHook) Batch(newMatches []PairHandle) {
	h.batches++
	for _, m := range newMatches {
		if h.nodes[m.Node()] {
			// A match must be surfaced exactly once.
			panic("duplicate hook delivery")
		}
		h.nodes[m.Node()] = true
		if m.Lower() < 0 {
			panic("negative lower bound")
		}
		_ = m.R()
	}
}

func TestHookProtocol(t *testing.T) {
	g, _ := testutil.Figure1()
	p := testutil.Figure1Pattern()
	h := &recordingHook{nodes: map[graph.NodeID]bool{}}
	res, err := TopK(g, p, 2, Options{Hook: h, NumBatches: 8})
	if err != nil {
		t.Fatal(err)
	}
	if h.cuo != 11 {
		t.Fatalf("hook Cuo = %d, want 11", h.cuo)
	}
	if h.batches != res.Stats.Batches {
		t.Fatalf("hook saw %d batches, stats say %d", h.batches, res.Stats.Batches)
	}
	// Every returned match must have been surfaced to the hook.
	for _, m := range res.Matches {
		if !h.nodes[m.Node] {
			t.Fatalf("match %d never surfaced to hook", m.Node)
		}
	}
}

func TestQuickEngineMatchesOracle(t *testing.T) {
	// testing/quick driver over the central invariant: the engine's match
	// set equals the simulation oracle's for arbitrary seeds and shapes.
	f := func(seed int64, cyclic bool, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		labels := []string{"a", "b", "c"}
		n := 3 + rng.Intn(15)
		g := testutil.RandomGraph(rng, n, rng.Intn(3*n), labels)
		p := testutil.RandomPattern(rng, 1+rng.Intn(4), rng.Intn(3), labels, cyclic)
		k := 1 + int(kRaw%5)
		base, err := MatchBaseline(g, p, k, false)
		if err != nil {
			return false
		}
		res, err := TopK(g, p, k, Options{Seed: seed, NumBatches: 1 + rng.Intn(5)})
		if err != nil {
			return false
		}
		if res.GlobalMatch != base.GlobalMatch {
			return false
		}
		if !base.GlobalMatch {
			return len(res.Matches) == 0
		}
		if len(res.Matches) != len(base.Matches) {
			return false
		}
		// Bounds must bracket the exact relevances of the same node set.
		exact := map[graph.NodeID]int{}
		for _, m := range base.All {
			exact[m.Node] = m.Relevance
		}
		for _, m := range res.Matches {
			d, ok := exact[m.Node]
			if !ok || m.Relevance > d || m.Upper < d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBoundSoundness(t *testing.T) {
	// For every bound mode and every match: l <= δr <= h at termination.
	f := func(seed int64, mode uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		labels := []string{"a", "b"}
		n := 3 + rng.Intn(12)
		g := testutil.RandomGraph(rng, n, rng.Intn(3*n), labels)
		p := testutil.RandomPattern(rng, 1+rng.Intn(3), rng.Intn(3), labels, seed%2 == 0)
		base, err := MatchBaseline(g, p, 3, false)
		if err != nil || !base.GlobalMatch {
			return true // vacuous
		}
		exact := map[graph.NodeID]int{}
		for _, m := range base.All {
			exact[m.Node] = m.Relevance
		}
		res, err := TopK(g, p, 3, Options{Bounds: BoundMode(mode % 3)})
		if err != nil {
			return false
		}
		for _, m := range res.All {
			d, ok := exact[m.Node]
			if !ok || m.Relevance > d || m.Upper < d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
