package core

import (
	"sort"

	"divtopk/internal/graph"
	"divtopk/internal/pattern"
	"divtopk/internal/simulation"
)

// TopK computes top-k matches of the output node of p in g ranked by the
// relevance function δr, with the early termination property (Prop. 2/3 of
// the paper): it stops as soon as the k best discovered matches provably
// dominate every other candidate, without computing all of M(Q,G). It
// handles both DAG and cyclic patterns (the paper's TopK; with the default
// covering strategy on a DAG pattern it is exactly TopKDAG, with
// StrategyRandom it is the nopt variant).
func TopK(g *graph.Graph, p *pattern.Pattern, k int, opts Options) (*Result, error) {
	e, err := newEngine(g, p, k, opts)
	if err != nil {
		return nil, err
	}
	return e.run(), nil
}

// TopKDAG is TopK restricted to DAG patterns (§4.1); it returns ErrNotDAG
// for cyclic patterns as a guard for callers that picked the algorithm by
// name, as the paper's experiments do.
func TopKDAG(g *graph.Graph, p *pattern.Pattern, k int, opts Options) (*Result, error) {
	if !p.IsDAG() {
		return nil, ErrNotDAG
	}
	return TopK(g, p, k, opts)
}

// feed marks one leaf pair visited. Trivial leaves (no outgoing query edges)
// are matches by definition and finalize immediately; leaves of cyclic units
// join the unit's active set and trigger re-refinement.
func (e *engine) feed(q int32) {
	if e.fed[q] || e.status[q] == statusDead {
		return
	}
	e.fed[q] = true
	unit := e.unitOf[e.ci.U[q]]
	if e.unitNontrivial[unit] {
		e.outstandingDec(unit)
		e.markDirty(unit)
		return
	}
	e.becomeMatched(q)
	e.finalizePair(q)
}

// run drives the batch loop to termination and assembles the result.
func (e *engine) run() *Result {
	res := &Result{Space: e.space, Stats: e.stats}
	if e.abortedEmpty {
		res.Stats.MatchesFound = 0
		return res
	}
	res.Cuo = simulation.Cuo(e.p, e.ci, e.an)
	if e.opts.Hook != nil {
		e.opts.Hook.Begin(res.Cuo)
	}

	var newUo []int32 // uo matches discovered in the current batch
	for !e.abortedEmpty {
		batch := e.feeder.next(e)
		if len(batch) == 0 {
			break // exhausted: everything known is final
		}
		e.stats.Batches++
		uoBefore := int(e.matchCnt[e.uo])
		for _, q := range batch {
			e.feed(q)
		}
		e.drainEvents()
		e.propagateRelevance()

		if e.opts.Hook != nil {
			newUo = newUo[:0]
			if int(e.matchCnt[e.uo]) > uoBefore {
				for q := e.uoLo; q < e.uoHi; q++ {
					if e.status[q] == statusMatched && !e.hookSeen(q) {
						newUo = append(newUo, q)
					}
				}
			}
			handles := make([]PairHandle, len(newUo))
			for i, q := range newUo {
				handles[i] = PairHandle{e: e, pair: q}
				e.markHookSeen(q)
			}
			e.opts.Hook.Batch(handles)
		}

		if e.checkTermination() {
			e.stats.EarlyTerminated = !e.feeder.done()
			break
		}
	}

	return e.assemble(res)
}

// hookSeen tracks which uo matches were already reported to the hook.
func (e *engine) hookSeen(q int32) bool {
	return e.hookReported != nil && e.hookReported[q-e.uoLo]
}

func (e *engine) markHookSeen(q int32) {
	if e.hookReported == nil {
		e.hookReported = make([]bool, e.uoHi-e.uoLo)
	}
	e.hookReported[q-e.uoLo] = true
}

// checkTermination evaluates Proposition 3: S (the k discovered matches
// with the largest lower bounds) is a top-k set once every query node has a
// match (the simulation's global condition, which also makes non-root
// output nodes correct) and min_{v∈S} l(v) ≥ max_{v'∉S, live} h(v').
func (e *engine) checkTermination() bool {
	for u := 0; u < e.nq; u++ {
		if e.matchCnt[u] == 0 {
			return false
		}
	}
	if int(e.matchCnt[e.uo]) < e.k {
		return false
	}

	type cand struct {
		q int32
		l int32
	}
	matched := make([]cand, 0, e.matchCnt[e.uo])
	for q := e.uoLo; q < e.uoHi; q++ {
		if e.status[q] == statusMatched {
			l := int32(0)
			if s := e.rset[q]; s != nil {
				l = int32(s.Count())
			}
			matched = append(matched, cand{q, l})
		}
	}
	sort.Slice(matched, func(i, j int) bool {
		if matched[i].l != matched[j].l {
			return matched[i].l > matched[j].l
		}
		return matched[i].q < matched[j].q
	})
	minL := matched[e.k-1].l

	inS := make(map[int32]bool, e.k)
	for _, c := range matched[:e.k] {
		inS[c.q] = true
	}
	for q := e.uoLo; q < e.uoHi; q++ {
		if e.status[q] == statusDead || inS[q] {
			continue
		}
		var h int32
		if e.finalized[q] {
			if s := e.rset[q]; s != nil {
				h = int32(s.Count())
			}
		} else {
			h = e.upper[q-e.uoLo]
		}
		if h > minL {
			return false
		}
	}
	return true
}

// assemble builds the Result from the engine state at termination.
func (e *engine) assemble(res *Result) *Result {
	res.Stats = e.stats
	res.GlobalMatch = !e.abortedEmpty
	for u := 0; u < e.nq && res.GlobalMatch; u++ {
		if e.matchCnt[u] == 0 {
			res.GlobalMatch = false
		}
	}
	if !res.GlobalMatch {
		// M(Q,G) = ∅: report the work done but no matches.
		res.Stats.MatchesFound = 0
		return res
	}

	for q := e.uoLo; q < e.uoHi; q++ {
		if e.status[q] != statusMatched {
			continue
		}
		l := 0
		if s := e.rset[q]; s != nil {
			l = s.Count()
		}
		h := int(e.upper[q-e.uoLo])
		if e.finalized[q] {
			h = l
		}
		res.All = append(res.All, Match{
			Node:      e.ci.V[q],
			Relevance: l,
			Upper:     h,
			// Coinciding bounds pin δr even without finalization.
			Exact: e.finalized[q] || h == l,
			R:     e.rset[q],
		})
	}
	sort.Slice(res.All, func(i, j int) bool {
		if res.All[i].Relevance != res.All[j].Relevance {
			return res.All[i].Relevance > res.All[j].Relevance
		}
		return res.All[i].Node < res.All[j].Node
	})
	res.Stats.MatchesFound = len(res.All)
	top := e.k
	if top > len(res.All) {
		top = len(res.All)
	}
	res.Matches = res.All[:top]
	return res
}
