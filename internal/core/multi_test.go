package core

import (
	"math/rand"
	"testing"

	"divtopk/internal/pattern"
	"divtopk/internal/ranking"
	"divtopk/internal/testutil"
)

func TestTopKMultiFigure1(t *testing.T) {
	g, id := testutil.Figure1()
	p := testutil.Figure1Pattern()
	// Ask for top-2 of both PM (node 0) and PRG (node 2).
	res, err := TopKMulti(g, p, []int{0, 2}, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d entries", len(res))
	}
	pm := res[0]
	if len(pm.Matches) != 2 || pm.Matches[0].Node != id["PM2"] {
		t.Fatalf("PM top-2 = %+v", pm.Matches)
	}
	prg := res[2]
	if len(prg.Matches) != 2 {
		t.Fatalf("PRG matches = %d", len(prg.Matches))
	}
	// PRG relevances: each PRG's relevant set under Q. The top PRG must be
	// at least as relevant as any baseline PRG match.
	q2 := p.Clone()
	if err := q2.SetOutput(2); err != nil {
		t.Fatal(err)
	}
	base, err := MatchBaseline(g, q2, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if prg.Matches[0].Upper < base.Matches[0].Relevance {
		t.Fatalf("PRG top relevance bound %d below baseline %d",
			prg.Matches[0].Upper, base.Matches[0].Relevance)
	}
}

func TestTopKMultiUnmatchedSharedCondition(t *testing.T) {
	g, _ := testutil.Figure1()
	p := pattern.New()
	a := p.AddNode("PM")
	b := p.AddNode("CEO") // unmatched anywhere
	if err := p.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	res, err := TopKMulti(g, p, []int{0, 1}, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for uo, r := range res {
		if r.GlobalMatch || len(r.Matches) != 0 {
			t.Fatalf("output %d should be empty", uo)
		}
	}
}

func TestTopKMultiBadOutput(t *testing.T) {
	g, _ := testutil.Figure1()
	p := testutil.Figure1Pattern()
	if _, err := TopKMulti(g, p, []int{99}, 1, Options{}); err == nil {
		t.Fatal("out-of-range output accepted")
	}
	if _, err := TopKMulti(g, p, []int{0}, 0, Options{}); err != ErrBadK {
		t.Fatalf("k=0: %v", err)
	}
}

func TestRankedGeneralizedSetSizeMatchesDefault(t *testing.T) {
	// Under the relevant-set-size function, the generalized ranking must
	// coincide with the default δr ranking.
	g, _ := testutil.Figure1()
	p := testutil.Figure1Pattern()
	gen, err := RankedGeneralized(g, p, 4, ranking.RelSetSize{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := MatchBaseline(g, p, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Matches {
		if gen.Matches[i].Node != base.Matches[i].Node {
			t.Fatalf("rank %d differs: %d vs %d", i, gen.Matches[i].Node, base.Matches[i].Node)
		}
		if gen.Scores[i] != float64(base.Matches[i].Relevance) {
			t.Fatalf("score %d = %v, want %d", i, gen.Scores[i], base.Matches[i].Relevance)
		}
	}
}

func TestRankedGeneralizedPreferenceAttachment(t *testing.T) {
	// Preference attachment = |R(uo)| * |R*|; with |R(uo)| = 3 descendant
	// query nodes the scores are 3x the set sizes, order unchanged.
	g, _ := testutil.Figure1()
	p := testutil.Figure1Pattern()
	gen, err := RankedGeneralized(g, p, 4, ranking.PreferenceAttachment{})
	if err != nil {
		t.Fatal(err)
	}
	if gen.Scores[0] != 24 { // PM2: 3 * 8
		t.Fatalf("top score = %v, want 24", gen.Scores[0])
	}
}

func TestRankedGeneralizedCommonNeighbors(t *testing.T) {
	// Common neighbours = |M(Q,G,R(uo)) ∩ R*|. Every member of a relevant
	// set is a match here, so scores equal the set sizes.
	g, _ := testutil.Figure1()
	p := testutil.Figure1Pattern()
	gen, err := RankedGeneralized(g, p, 4, ranking.CommonNeighbors{})
	if err != nil {
		t.Fatal(err)
	}
	if gen.Scores[0] != 8 {
		t.Fatalf("top score = %v, want 8", gen.Scores[0])
	}
	// Jaccard coefficient: |M ∩ R*| / |M ∪ R*| with |M| = 11.
	gen2, err := RankedGeneralized(g, p, 4, ranking.JaccardCoefficient{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := gen2.Scores[0], 8.0/11.0; got != want {
		t.Fatalf("jaccard top score = %v, want %v", got, want)
	}
}

func TestRankedGeneralizedUnmatched(t *testing.T) {
	g, _ := testutil.Figure1()
	p := pattern.New()
	p.AddNode("CEO")
	gen, err := RankedGeneralized(g, p, 3, ranking.RelSetSize{})
	if err != nil {
		t.Fatal(err)
	}
	if gen.GlobalMatch || len(gen.Matches) != 0 {
		t.Fatal("unmatched pattern must yield empty generalized result")
	}
}

func TestTopKMultiRandomAgainstPerOutputBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	labels := []string{"a", "b", "c"}
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(16)
		g := testutil.RandomGraph(rng, n, rng.Intn(4*n), labels)
		p := testutil.RandomPattern(rng, 2+rng.Intn(3), rng.Intn(3), labels, trial%2 == 0)
		outputs := []int{0, p.NumNodes() - 1}
		multi, err := TopKMulti(g, p, outputs, 2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, uo := range outputs {
			q := p.Clone()
			if err := q.SetOutput(uo); err != nil {
				t.Fatal(err)
			}
			base, err := MatchBaseline(g, q, 2, false)
			if err != nil {
				t.Fatal(err)
			}
			got := multi[uo]
			if got.GlobalMatch != base.GlobalMatch {
				t.Fatalf("trial %d output %d: global %v vs %v", trial, uo, got.GlobalMatch, base.GlobalMatch)
			}
			if len(got.Matches) != len(base.Matches) {
				t.Fatalf("trial %d output %d: %d matches vs %d",
					trial, uo, len(got.Matches), len(base.Matches))
			}
		}
	}
}
