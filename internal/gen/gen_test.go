package gen

import (
	"testing"

	"divtopk/internal/graph"
	"divtopk/internal/simulation"
)

func TestSyntheticShape(t *testing.T) {
	g := Synthetic(SynthConfig{N: 2000, M: 4000, Seed: 1})
	if g.NumNodes() != 2000 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Edge dedup can only lose a handful on this density.
	if g.NumEdges() < 3800 || g.NumEdges() > 4000 {
		t.Fatalf("edges = %d, want ~4000", g.NumEdges())
	}
	if got := g.Dict().Size(); got > 15 {
		t.Fatalf("labels = %d, want <= 15", got)
	}
	// Scale-free-ness, weakly: the max degree should far exceed the mean.
	s := graph.ComputeStats(g)
	if s.MaxInDegree < 10*int(s.AvgDegree) {
		t.Errorf("max in-degree %d does not look preferential (avg %.1f)", s.MaxInDegree, s.AvgDegree)
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	a := Synthetic(SynthConfig{N: 500, M: 1000, Seed: 42})
	b := Synthetic(SynthConfig{N: 500, M: 1000, Seed: 42})
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed must give the same graph")
	}
	for v := graph.NodeID(0); v < 500; v++ {
		if a.Label(v) != b.Label(v) {
			t.Fatal("labels differ under the same seed")
		}
	}
	c := Synthetic(SynthConfig{N: 500, M: 1000, Seed: 43})
	same := true
	for v := graph.NodeID(0); v < 500; v++ {
		if a.Label(v) != c.Label(v) {
			same = false
			break
		}
	}
	if same && a.NumEdges() == c.NumEdges() {
		t.Error("different seeds should give different graphs")
	}
}

func TestCitationIsDAG(t *testing.T) {
	g := CitationLike(3000, 8000, 7)
	s := graph.ComputeStats(g)
	if !s.IsDAG {
		t.Fatal("citation graph must be a DAG")
	}
	// Years must be non-increasing along edges (papers cite older papers).
	for v := graph.NodeID(0); v < graph.NodeID(g.NumNodes()); v++ {
		yv, _ := g.Attr(v, "year")
		for _, w := range g.Out(v) {
			yw, _ := g.Attr(w, "year")
			if yw.Int > yv.Int {
				t.Fatalf("edge %d->%d goes forward in time (%d -> %d)", v, w, yv.Int, yw.Int)
			}
		}
	}
}

func TestAmazonAndYouTubeCyclic(t *testing.T) {
	a := graph.ComputeStats(AmazonLike(2000, 6000, 3))
	if a.IsDAG {
		t.Error("amazon-like graph should contain cycles")
	}
	y := YouTubeLike(2000, 6000, 3)
	ys := graph.ComputeStats(y)
	if ys.IsDAG {
		t.Error("youtube-like graph should contain cycles")
	}
	// Attributes present and C mirrors the label.
	for v := graph.NodeID(0); v < 50; v++ {
		c, ok := y.Attr(v, "C")
		if !ok || c.Str != y.Label(v) {
			t.Fatalf("node %d: C=%v label=%s", v, c, y.Label(v))
		}
		for _, key := range []string{"A", "V", "R"} {
			if _, ok := y.Attr(v, key); !ok {
				t.Fatalf("node %d missing attr %s", v, key)
			}
		}
		r, _ := y.Attr(v, "R")
		if r.Int < 1 || r.Int > 5 {
			t.Fatalf("rate out of range: %d", r.Int)
		}
	}
}

func TestGeneratedPatternsMatch(t *testing.T) {
	// DAG patterns on citation-like data, cyclic on youtube-like: every
	// instance-guided pattern must have a non-empty Mu(Q,G,uo).
	cit := CitationLike(3000, 9000, 11)
	dags, err := Suite(cit, PatternConfig{Nodes: 4, Edges: 6, Seed: 5}, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range dags {
		if !p.IsDAG() {
			t.Fatalf("pattern %d not a DAG: %s", i, p)
		}
		res := simulation.Compute(cit, p)
		if !res.Matched || len(res.MatchesOf(p.Output())) == 0 {
			t.Fatalf("DAG pattern %d unmatched: %s", i, p)
		}
	}

	yt := YouTubeLike(3000, 10000, 11)
	cycs, err := Suite(yt, PatternConfig{Nodes: 4, Edges: 8, Cyclic: true, Predicates: true, Seed: 9}, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range cycs {
		if p.IsDAG() {
			t.Fatalf("pattern %d should be cyclic: %s", i, p)
		}
		res := simulation.Compute(yt, p)
		if !res.Matched || len(res.MatchesOf(p.Output())) == 0 {
			t.Fatalf("cyclic pattern %d unmatched: %s", i, p)
		}
	}
}

func TestGenerateSizes(t *testing.T) {
	g := Synthetic(SynthConfig{N: 3000, M: 9000, Seed: 2})
	p, err := Generate(g, PatternConfig{Nodes: 6, Edges: 9, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumNodes() != 6 {
		t.Fatalf("nodes = %d, want 6", p.NumNodes())
	}
	if p.NumEdges() < 5 || p.NumEdges() > 9 {
		t.Fatalf("edges = %d, want within [5,9]", p.NumEdges())
	}
	if p.Output() != 0 {
		t.Fatal("output must be the instance root")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(graph.NewBuilder().Build(), PatternConfig{Nodes: 2, Edges: 1}); err == nil {
		t.Error("empty graph accepted")
	}
	if _, err := Generate(Synthetic(SynthConfig{N: 10, M: 10, Seed: 1}), PatternConfig{Nodes: 0}); err == nil {
		t.Error("zero-node pattern accepted")
	}
	// A DAG graph cannot yield cyclic patterns.
	dag := CitationLike(200, 400, 5)
	if _, err := Generate(dag, PatternConfig{Nodes: 3, Edges: 5, Cyclic: true, Seed: 1}); err == nil {
		t.Error("cyclic pattern mined from a DAG")
	}
}

func TestFig4Patterns(t *testing.T) {
	q1, q2 := Fig4Q1(), Fig4Q2()
	if q1.IsDAG() {
		t.Error("Q1 must be cyclic")
	}
	if !q2.IsDAG() {
		t.Error("Q2 must be a DAG")
	}
	if err := q1.Validate(); err != nil {
		t.Error(err)
	}
	if err := q2.Validate(); err != nil {
		t.Error(err)
	}
	// Both must match a reasonably sized YouTube-like graph.
	g := YouTubeLike(20000, 70000, 4)
	r1 := simulation.Compute(g, q1)
	if !r1.Matched || len(r1.MatchesOf(q1.Output())) == 0 {
		t.Error("Q1 has no matches on the YouTube-like graph")
	}
	r2 := simulation.Compute(g, q2)
	if !r2.Matched || len(r2.MatchesOf(q2.Output())) == 0 {
		t.Error("Q2 has no matches on the YouTube-like graph")
	}
}

func TestSuiteDistinct(t *testing.T) {
	g := Synthetic(SynthConfig{N: 2000, M: 6000, Seed: 8})
	ps, err := Suite(g, PatternConfig{Nodes: 4, Edges: 5, Seed: 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[string]bool{}
	for _, p := range ps {
		distinct[p.String()] = true
	}
	if len(distinct) < 2 {
		t.Error("suite should produce varied patterns")
	}
}
