package gen

import (
	"fmt"
	"math/rand"

	"divtopk/internal/graph"
	"divtopk/internal/pattern"
)

// PatternConfig controls instance-guided pattern generation, mirroring the
// paper's four generator parameters: |Vp|, |Ep|, the label function fv
// (taken from the mined instance), and the output node uo (the instance
// root).
type PatternConfig struct {
	// Nodes and Edges request the pattern size |Q| = (|Vp|, |Ep|). Edges
	// below Nodes-1 are raised to Nodes-1 (the spanning tree minimum); if
	// the mined instance cannot support all requested extra edges the
	// pattern comes out slightly sparser.
	Nodes, Edges int
	// Cyclic asks for at least one directed cycle in Q (mined from
	// reciprocal instance edges); when impossible the generator retries
	// from other roots and eventually returns an error.
	Cyclic bool
	// Predicates, when true, attaches attribute predicates satisfied by the
	// instance nodes (YouTube-style search conditions).
	Predicates bool
	// Shape constrains the spanning tree: ShapeRandom (default) attaches new
	// nodes to random existing ones, ShapeChain builds a path (maximum
	// height), ShapeStar attaches everything to the root (height 1). Used by
	// the pattern-shape ablation of §6 ("TopK performs better for patterns
	// with smaller height").
	Shape Shape
	// Seed makes generation deterministic.
	Seed int64
}

// Shape constrains the tree skeleton of generated patterns.
type Shape int

// The supported skeleton shapes.
const (
	ShapeRandom Shape = iota
	ShapeChain
	ShapeStar
)

// Generate mines a pattern of the requested shape out of g. The returned
// pattern is instance-guided: some concrete subgraph of g realizes it, so
// Mu(Q,G,uo) is guaranteed non-empty (the root instance matches the output
// node). Returns an error when g is too sparse to support the shape.
func Generate(g *graph.Graph, cfg PatternConfig) (*pattern.Pattern, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("gen: pattern needs at least 1 node")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	const tries = 64
	var lastErr error
	for t := 0; t < tries; t++ {
		p, err := generateOnce(g, cfg, rng)
		if err == nil {
			return p, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("gen: no instance found after %d tries: %w", tries, lastErr)
}

func generateOnce(g *graph.Graph, cfg PatternConfig, rng *rand.Rand) (*pattern.Pattern, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("empty graph")
	}
	// Root: prefer nodes with successors so the tree can grow.
	var root graph.NodeID
	for t := 0; ; t++ {
		root = graph.NodeID(rng.Intn(n))
		if g.OutDegree(root) > 0 || cfg.Nodes == 1 {
			break
		}
		if t > 32 {
			return nil, fmt.Errorf("no node with successors")
		}
	}

	inst := []graph.NodeID{root}
	used := map[graph.NodeID]bool{root: true}
	parent := []int{-1}
	// Grow a spanning out-tree over distinct instance nodes.
	for len(inst) < cfg.Nodes {
		// Pick an expandable pattern node per the requested shape.
		var cand []int
		switch cfg.Shape {
		case ShapeChain:
			cand = []int{len(inst) - 1}
		case ShapeStar:
			cand = []int{0}
		default:
			cand = rng.Perm(len(inst))
		}
		grown := false
		for _, pi := range cand {
			for _, w := range shuffled(rng, g.Out(inst[pi])) {
				if !used[w] {
					used[w] = true
					parent = append(parent, pi)
					inst = append(inst, w)
					grown = true
					break
				}
			}
			if grown {
				break
			}
		}
		if !grown {
			return nil, fmt.Errorf("instance walk stuck at %d nodes", len(inst))
		}
	}

	p := pattern.New()
	for _, v := range inst {
		p.AddNode(g.Label(v))
	}
	for i := 1; i < len(inst); i++ {
		// Tree edges derive from real instance edges; cannot fail.
		if err := p.AddEdge(parent[i], i); err != nil {
			return nil, err
		}
	}
	_ = p.SetOutput(0)

	// Extra edges: instance-consistent pairs (a,b) with a real edge
	// inst[a] -> inst[b]. Cyclic patterns need at least one back edge
	// (creating a directed cycle with the tree path).
	want := cfg.Edges - (cfg.Nodes - 1)
	haveCycle := false
	if want > 0 || cfg.Cyclic {
		type cand struct{ a, b int }
		var backs, forwards []cand
		anc := ancestors(parent)
		for a := 0; a < len(inst); a++ {
			for b := 0; b < len(inst); b++ {
				if a == b || (parent[b] == a) {
					continue
				}
				if !g.HasEdge(inst[a], inst[b]) {
					continue
				}
				if anc[a][b] { // b is an ancestor of a: edge a->b closes a cycle
					backs = append(backs, cand{a, b})
				} else {
					forwards = append(forwards, cand{a, b})
				}
			}
		}
		if cfg.Cyclic && len(backs) == 0 {
			return nil, fmt.Errorf("no cycle-closing instance edge")
		}
		rng.Shuffle(len(backs), func(i, j int) { backs[i], backs[j] = backs[j], backs[i] })
		rng.Shuffle(len(forwards), func(i, j int) { forwards[i], forwards[j] = forwards[j], forwards[i] })
		added := 0
		if cfg.Cyclic {
			if err := p.AddEdge(backs[0].a, backs[0].b); err == nil {
				added++
				haveCycle = true
			}
			backs = backs[1:]
		}
		pool := forwards
		if cfg.Cyclic {
			pool = append(pool, backs...)
		}
		for _, c := range pool {
			if added >= want {
				break
			}
			if err := p.AddEdge(c.a, c.b); err == nil {
				added++
			}
		}
	}
	if cfg.Cyclic && !haveCycle {
		return nil, fmt.Errorf("could not close a cycle")
	}

	if cfg.Predicates {
		attachPredicates(g, p, inst, rng)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// attachPredicates decorates ~half the pattern nodes with predicates that
// the corresponding instance nodes satisfy, preserving non-emptiness.
func attachPredicates(g *graph.Graph, p *pattern.Pattern, inst []graph.NodeID, rng *rand.Rand) {
	for i, v := range inst {
		if rng.Intn(2) == 1 {
			continue
		}
		for _, key := range g.AttrKeys(v) {
			val, _ := g.Attr(v, key)
			var pr pattern.Predicate
			switch val.Kind {
			case graph.KindInt:
				// Thresholds are set well clear of the instance value so the
				// predicate keeps a healthy share of candidates (the paper's
				// conditions like R>2 out of 5 are mild filters, not point
				// lookups).
				if rng.Intn(2) == 0 {
					pr = pattern.AttrGt(key, val.Int/2)
				} else {
					pr = pattern.AttrLe(key, val.Int*2)
				}
			case graph.KindString:
				pr = pattern.AttrEq(key, val.Str)
			}
			_ = p.AddPred(i, pr)
			break // one predicate per node keeps selectivity moderate
		}
	}
}

// ancestors[a][b] reports whether b is a (proper) ancestor of a in the tree.
func ancestors(parent []int) []map[int]bool {
	out := make([]map[int]bool, len(parent))
	for i := range parent {
		out[i] = map[int]bool{}
		for p := parent[i]; p >= 0; p = parent[p] {
			out[i][p] = true
		}
	}
	return out
}

func shuffled(rng *rand.Rand, xs []graph.NodeID) []graph.NodeID {
	out := make([]graph.NodeID, len(xs))
	copy(out, xs)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Suite generates count patterns of one shape, seeded consecutively — the
// equivalent of the paper's fixed query sets (e.g. "10 cyclic patterns on
// YouTube of size (4,8)").
func Suite(g *graph.Graph, cfg PatternConfig, count int) ([]*pattern.Pattern, error) {
	out := make([]*pattern.Pattern, 0, count)
	for i := 0; i < count; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*7919
		p, err := Generate(g, c)
		if err != nil {
			return nil, fmt.Errorf("gen: suite pattern %d: %w", i, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// Fig4Q1 is the cyclic case-study pattern Q1 of Fig. 4(a): top music videos
// (R>2) mutually related with entertainment videos (R>2) that also
// recommend a heavily watched video (V>5000).
func Fig4Q1() *pattern.Pattern {
	p := pattern.New()
	music := p.AddNode("music", pattern.AttrGt("R", 2))
	ent := p.AddNode("entertainment", pattern.AttrGt("R", 2))
	watched := p.AddNode("music", pattern.AttrGt("V", 5000))
	mustEdge(p, music, ent)
	mustEdge(p, ent, music) // the cycle of Q1
	mustEdge(p, ent, watched)
	_ = p.SetOutput(music)
	return p
}

// Fig4Q2 is the DAG case-study pattern Q2 of Fig. 4(b): top comedy videos
// (R>3) with recommendation requirements on entertainment age/views.
func Fig4Q2() *pattern.Pattern {
	p := pattern.New()
	comedy := p.AddNode("comedy", pattern.AttrGt("R", 3))
	ent := p.AddNode("entertainment", pattern.AttrGt("A", 500))
	watched := p.AddNode("comedy", pattern.AttrGt("V", 7000))
	aged := p.AddNode("music", pattern.AttrGt("A", 800))
	mustEdge(p, comedy, ent)
	mustEdge(p, comedy, watched)
	mustEdge(p, ent, aged)
	mustEdge(p, watched, aged)
	_ = p.SetOutput(comedy)
	return p
}

func mustEdge(p *pattern.Pattern, u, v int) {
	if err := p.AddEdge(u, v); err != nil {
		panic(err)
	}
}
