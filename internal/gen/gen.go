// Package gen generates the datasets and query workloads of the paper's
// evaluation (§6). The module is offline, so the three real-life graphs
// (Amazon co-purchase, ArnetMiner Citation, YouTube recommendations) are
// substituted by seeded generators that preserve the properties the
// algorithms are sensitive to — directed scale-free topology via the
// linkage/preferential-attachment model the paper itself uses for its
// synthetic data [12], matching label alphabets, the attributes its
// patterns filter on, and (for Citation) acyclicity. See DESIGN.md §2.
//
// Pattern workloads are instance-guided: every generated pattern is carved
// out of an actual subgraph of the target graph, which guarantees a
// non-empty Mu(Q,G,uo) — the property the paper's hand-picked query sets
// have by construction.
package gen

import (
	"fmt"
	"math/rand"

	"divtopk/internal/graph"
)

// SynthConfig controls the synthetic generator.
type SynthConfig struct {
	// N and M are the node and edge counts (|V|, |E|).
	N, M int
	// Labels is the alphabet size; the paper uses 15.
	Labels int
	// Seed makes generation deterministic.
	Seed int64
}

// Synthetic produces a directed scale-free graph following the linkage
// generation model: an edge endpoint is attached to high-degree nodes with
// higher probability (preferential attachment), with uniformly assigned
// labels from a 15-letter alphabet by default.
func Synthetic(cfg SynthConfig) *graph.Graph {
	if cfg.Labels <= 0 {
		cfg.Labels = 15
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := graph.NewBuilder()
	for i := 0; i < cfg.N; i++ {
		b.AddNode(fmt.Sprintf("L%d", rng.Intn(cfg.Labels)), nil)
	}
	// Social graphs exhibit link reciprocity; a modest share keeps the
	// graph cyclic enough that the paper's cyclic pattern workloads (5 of
	// its 9 synthetic patterns) can be mined from instances.
	addPreferentialEdges(b, rng, cfg.N, cfg.M, 0.15)
	return b.Build()
}

// addPreferentialEdges adds m edges among n existing nodes: one endpoint
// uniform, the other drawn from a degree-weighted pool (every node starts
// with one ticket; every edge endpoint adds one). reciprocal is the
// probability of also inserting the reverse edge (giving the 2-cycles that
// co-purchase and recommendation networks exhibit); reciprocal edges count
// toward m.
func addPreferentialEdges(b *graph.Builder, rng *rand.Rand, n, m int, reciprocal float64) {
	if n == 0 {
		return
	}
	pool := make([]graph.NodeID, 0, n+2*m)
	for i := 0; i < n; i++ {
		pool = append(pool, graph.NodeID(i))
	}
	added := 0
	for added < m {
		u := graph.NodeID(rng.Intn(n))
		v := pool[rng.Intn(len(pool))]
		if u == v {
			continue
		}
		// Endpoints in range: AddEdge cannot fail.
		_ = b.AddEdge(u, v)
		pool = append(pool, u, v)
		added++
		if added < m && rng.Float64() < reciprocal {
			_ = b.AddEdge(v, u)
			added++
		}
	}
}

// amazonGroups mirrors the product groups of the Amazon co-purchase data.
var amazonGroups = []string{
	"Book", "Music", "DVD", "Video", "Software", "Game", "Toy", "Electronics",
}

// AmazonLike generates a co-purchase-style network: product nodes labeled
// with their group, a salesrank attribute, and scale-free directed
// co-purchase links with a reciprocal share (people who buy x also buy y —
// and often vice versa), making the graph cyclic like the real dataset.
func AmazonLike(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(amazonGroups[rng.Intn(len(amazonGroups))], map[string]graph.Value{
			"salesrank": graph.IntValue(1 + rng.Int63n(1_000_000)),
		})
	}
	addPreferentialEdges(b, rng, n, m, 0.30)
	return b.Build()
}

// citationAreas mirrors publication venues/areas of the Citation data.
var citationAreas = []string{
	"DB", "ML", "OS", "PL", "NET", "SEC", "IR", "HCI", "ARCH", "THEORY",
	"GRAPHICS", "BIO", "SE", "CRYPTO",
}

// CitationLike generates a citation-style DAG: papers appear in time order
// and only cite older papers (guaranteeing acyclicity, as the real Citation
// graph is a DAG — the paper runs only DAG patterns on it), preferentially
// citing highly cited papers. Nodes carry an area label and a year
// attribute.
func CitationLike(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		year := 1960 + (i*55)/max(n, 1)
		b.AddNode(citationAreas[rng.Intn(len(citationAreas))], map[string]graph.Value{
			"year": graph.IntValue(int64(year)),
		})
	}
	if n < 2 {
		return b.Build()
	}
	// Citation pool: older papers gain tickets as they are cited.
	pool := make([]graph.NodeID, 0, n+m)
	for i := 0; i < n; i++ {
		pool = append(pool, graph.NodeID(i))
	}
	for added := 0; added < m; {
		u := 1 + rng.Intn(n-1) // citing paper (must have someone older)
		v := pool[rng.Intn(len(pool))]
		if int(v) >= u {
			// Redraw cheaply: cite a uniformly random older paper instead.
			v = graph.NodeID(rng.Intn(u))
		}
		_ = b.AddEdge(graph.NodeID(u), v)
		pool = append(pool, v)
		added++
	}
	return b.Build()
}

// youtubeCategories mirrors the video categories of the YouTube data; the
// paper's case-study patterns filter on category (C), age (A), views (V)
// and rate (R).
var youtubeCategories = []string{
	"music", "entertainment", "comedy", "sports", "news",
	"education", "film", "gaming", "howto", "people",
}

// YouTubeLike generates a recommendation-style network: video nodes labeled
// with a category and carrying A(ge), V(iews) and R(ate) attributes, linked
// by scale-free recommendation edges with a reciprocal share (related
// videos recommend each other), making the graph cyclic.
func YouTubeLike(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		cat := youtubeCategories[rng.Intn(len(youtubeCategories))]
		views := int64(100 * (1 << uint(rng.Intn(12)))) // log-ish spread 100..409600
		views += rng.Int63n(views)
		b.AddNode(cat, map[string]graph.Value{
			"C": graph.StrValue(cat), // the paper's patterns predicate on C
			"A": graph.IntValue(1 + rng.Int63n(2000)),
			"V": graph.IntValue(views),
			"R": graph.IntValue(1 + rng.Int63n(5)),
		})
	}
	addPreferentialEdges(b, rng, n, m, 0.25)
	return b.Build()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
