package bitset

import (
	"testing"

	"divtopk/internal/testutil/racedetect"
)

func TestArenaGetPutReuse(t *testing.T) {
	a := NewArena(200)
	s1 := a.Get()
	if s1.Len() != 200 || !s1.Empty() {
		t.Fatalf("fresh arena set: len %d empty %v", s1.Len(), s1.Empty())
	}
	s1.Add(3)
	s1.Add(199)
	s1.Clear() // the Put contract: sets return to the arena empty
	a.Put(s1)
	if a.FreeLen() != 1 {
		t.Fatalf("free len = %d, want 1", a.FreeLen())
	}
	s2 := a.Get()
	if s2 != s1 {
		t.Fatalf("Get did not reuse the pooled set")
	}
	if !s2.Empty() {
		t.Fatalf("reused set not empty: %s", s2)
	}
}

func TestArenaDistinctSetsDoNotAlias(t *testing.T) {
	a := NewArena(100)
	s1, s2 := a.Get(), a.Get()
	s1.Add(10)
	if s2.Contains(10) {
		t.Fatal("arena sets share words")
	}
	s2.Add(20)
	if s1.Contains(20) {
		t.Fatal("arena sets share words")
	}
	if !s1.UnionWith(s2) || s1.Count() != 2 {
		t.Fatalf("union over arena sets: %s", s1)
	}
}

func TestArenaWideSets(t *testing.T) {
	// Sets wider than the default chunk get their own chunk.
	bits := arenaChunkWords*wordBits + 7
	a := NewArena(bits)
	s := a.Get()
	s.Add(bits - 1)
	if !s.Contains(bits - 1) {
		t.Fatal("wide arena set lost its bit")
	}
}

func TestArenaPutForeignCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on foreign capacity Put")
		}
	}()
	NewArena(64).Put(New(65))
}

// TestArenaSteadyStateZeroAlloc locks in the reason the arena exists: a
// Get / union / Put cycle over a warmed arena allocates nothing.
func TestArenaSteadyStateZeroAlloc(t *testing.T) {
	if racedetect.Enabled {
		t.Skip("race runtime instruments allocations")
	}
	a := NewArena(4096)
	src := a.Get()
	for i := 0; i < 4096; i += 3 {
		src.Add(i)
	}
	// Warm the pool with the peak working set of the loop below.
	warm := []*Set{a.Get(), a.Get()}
	for _, s := range warm {
		a.Put(s)
	}
	allocs := testing.AllocsPerRun(100, func() {
		s1 := a.Get()
		s1.UnionWith(src)
		s2 := a.Get()
		s2.UnionWith(s1)
		s1.Clear()
		a.Put(s1)
		if s2.Count() != src.Count() {
			t.Fatal("union mismatch")
		}
		s2.Clear()
		a.Put(s2)
	})
	if allocs != 0 {
		t.Fatalf("arena steady state allocates %.1f per run, want 0", allocs)
	}
}
