// Package bitset provides a fixed-capacity dense bit set used to represent
// relevant sets and candidate memberships over compact node-id spaces.
//
// The algorithms of the paper manipulate relevant sets R(u,v) with three
// operations that dominate the running time: union (relevance propagation),
// intersection/union cardinality (the Jaccard distance δd), and membership.
// A dense word-packed representation makes each of them a linear scan over
// 64-bit words, which is what the complexity analysis of the paper assumes
// for its set operations.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bit set over the universe [0, Len()).
// The zero value is an empty set of capacity 0; use New to create one with a
// non-zero capacity. Sets of different capacities must not be combined.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set with capacity for n bits. n must be >= 0.
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative capacity %d", n))
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len reports the capacity of the set (the size of its universe), not the
// number of elements; see Count for the latter.
func (s *Set) Len() int { return s.n }

// Add inserts i and reports whether it was newly added.
func (s *Set) Add(i int) bool {
	s.check(i)
	w, b := i/wordBits, uint(i%wordBits)
	old := s.words[w]
	s.words[w] = old | (1 << b)
	return old&(1<<b) == 0
}

// Remove deletes i and reports whether it was present.
func (s *Set) Remove(i int) bool {
	s.check(i)
	w, b := i/wordBits, uint(i%wordBits)
	old := s.words[w]
	s.words[w] = old &^ (1 << b)
	return old&(1<<b) != 0
}

// Contains reports whether i is in the set.
func (s *Set) Contains(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes all elements, keeping the capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with the contents of t. The capacities must match.
func (s *Set) CopyFrom(t *Set) {
	s.compat(t)
	copy(s.words, t.words)
}

// UnionWith adds every element of t to s and reports whether s changed.
func (s *Set) UnionWith(t *Set) bool {
	s.compat(t)
	changed := false
	for i, w := range t.words {
		old := s.words[i]
		nw := old | w
		if nw != old {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// IntersectWith removes from s every element not in t.
func (s *Set) IntersectWith(t *Set) {
	s.compat(t)
	for i := range s.words {
		s.words[i] &= t.words[i]
	}
}

// DifferenceWith removes from s every element of t.
func (s *Set) DifferenceWith(t *Set) {
	s.compat(t)
	for i := range s.words {
		s.words[i] &^= t.words[i]
	}
}

// IntersectCount returns |s ∩ t| without materializing the intersection.
func (s *Set) IntersectCount(t *Set) int {
	s.compat(t)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w & t.words[i])
	}
	return c
}

// UnionCount returns |s ∪ t| without materializing the union.
func (s *Set) UnionCount(t *Set) int {
	s.compat(t)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w | t.words[i])
	}
	return c
}

// Equal reports whether s and t contain exactly the same elements.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every element of s is in t.
func (s *Set) SubsetOf(t *Set) bool {
	s.compat(t)
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// ForEach calls f for each element in ascending order. If f returns false the
// iteration stops early.
func (s *Set) ForEach(f func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !f(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// WordLen returns the number of 64-bit words backing the set.
func (s *Set) WordLen() int { return len(s.words) }

// UnionRange ORs t's words in the half-open word range [lo, hi) into s.
// Both sets must have the same capacity and the range must be within it.
// Together with CountRange and ClearRange this lets a caller that tracks
// each set's populated span (e.g. the arena-backed relevant-set kernel)
// pay O(span) instead of O(capacity) per operation; words outside every
// tracked span are guaranteed zero by the arena contract.
func (s *Set) UnionRange(t *Set, lo, hi int) {
	s.compat(t)
	for i := lo; i < hi; i++ {
		s.words[i] |= t.words[i]
	}
}

// CountRange returns the number of elements whose words lie in [lo, hi).
func (s *Set) CountRange(lo, hi int) int {
	c := 0
	for i := lo; i < hi; i++ {
		c += bits.OnesCount64(s.words[i])
	}
	return c
}

// ClearRange zeroes the words in [lo, hi).
func (s *Set) ClearRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		s.words[i] = 0
	}
}

// ForEachWord calls f for every nonzero 64-bit word with its word index,
// in ascending order. Callers projecting sparse sets (few set bits in a
// wide universe) use it to build compact word lists for repeated pairwise
// operations.
func (s *Set) ForEachWord(f func(i int, w uint64)) {
	for i, w := range s.words {
		if w != 0 {
			f(i, w)
		}
	}
}

// Slice returns the elements in ascending order.
func (s *Set) Slice() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// String renders the set as "{a b c}" for debugging.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}

// Jaccard returns |a ∩ b| / |a ∪ b|, the similarity underlying the paper's
// distance function δd = 1 − Jaccard. Two empty sets are identical, so their
// Jaccard similarity is defined as 1 (and δd as 0), matching the paper's
// reading that matches with equal (empty) impact are indistinguishable.
func Jaccard(a, b *Set) float64 {
	u := a.UnionCount(b)
	if u == 0 {
		return 1
	}
	return float64(a.IntersectCount(b)) / float64(u)
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

func (s *Set) compat(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", s.n, t.n))
	}
}
