package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if s.Len() != 130 {
		t.Fatalf("Len = %d, want 130", s.Len())
	}
	if !s.Empty() {
		t.Fatal("new set should be empty")
	}
	if !s.Add(0) || !s.Add(63) || !s.Add(64) || !s.Add(129) {
		t.Fatal("Add of fresh elements should return true")
	}
	if s.Add(63) {
		t.Fatal("Add of existing element should return false")
	}
	if s.Count() != 4 {
		t.Fatalf("Count = %d, want 4", s.Count())
	}
	for _, i := range []int{0, 63, 64, 129} {
		if !s.Contains(i) {
			t.Fatalf("Contains(%d) = false", i)
		}
	}
	if s.Contains(1) || s.Contains(128) {
		t.Fatal("Contains reported absent element")
	}
	if !s.Remove(64) || s.Remove(64) {
		t.Fatal("Remove semantics wrong")
	}
	if s.Count() != 3 {
		t.Fatalf("Count after remove = %d, want 3", s.Count())
	}
	s.Clear()
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("Clear did not empty the set")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range index")
		}
	}()
	New(10).Add(10)
}

func TestCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on capacity mismatch")
		}
	}()
	New(10).UnionWith(New(11))
}

func TestZeroCapacity(t *testing.T) {
	s := New(0)
	if !s.Empty() || s.Count() != 0 || s.Len() != 0 {
		t.Fatal("zero-capacity set misbehaves")
	}
	if Jaccard(s, New(0)) != 1 {
		t.Fatal("Jaccard of empty sets should be 1")
	}
}

func TestSliceAndForEachOrder(t *testing.T) {
	s := New(200)
	want := []int{3, 64, 65, 127, 128, 199}
	for _, i := range want {
		s.Add(i)
	}
	got := s.Slice()
	if len(got) != len(want) {
		t.Fatalf("Slice = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	s.ForEach(func(int) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("ForEach early stop visited %d, want 3", n)
	}
}

func TestString(t *testing.T) {
	s := New(10)
	s.Add(1)
	s.Add(7)
	if got := s.String(); got != "{1 7}" {
		t.Fatalf("String = %q, want {1 7}", got)
	}
	if got := New(4).String(); got != "{}" {
		t.Fatalf("String = %q, want {}", got)
	}
}

// ref is a map-based reference implementation used by the property tests.
type ref map[int]bool

func refFrom(xs []int, n int) (ref, *Set) {
	r := ref{}
	s := New(n)
	for _, x := range xs {
		i := ((x % n) + n) % n
		r[i] = true
		s.Add(i)
	}
	return r, s
}

func TestQuickAgainstMapReference(t *testing.T) {
	const n = 257
	f := func(axs, bxs []int) bool {
		ra, sa := refFrom(axs, n)
		rb, sb := refFrom(bxs, n)

		if sa.Count() != len(ra) {
			return false
		}
		inter, union := 0, map[int]bool{}
		for i := range ra {
			union[i] = true
			if rb[i] {
				inter++
			}
		}
		for i := range rb {
			union[i] = true
		}
		if sa.IntersectCount(sb) != inter || sa.UnionCount(sb) != len(union) {
			return false
		}

		wantJ := 1.0
		if len(union) > 0 {
			wantJ = float64(inter) / float64(len(union))
		}
		if Jaccard(sa, sb) != wantJ {
			return false
		}

		// UnionWith matches union; changed flag matches growth.
		c := sa.Clone()
		changed := c.UnionWith(sb)
		if (c.Count() != sa.Count()) != changed || c.Count() != len(union) {
			return false
		}
		// IntersectWith and DifferenceWith against the reference.
		ci := sa.Clone()
		ci.IntersectWith(sb)
		if ci.Count() != inter {
			return false
		}
		cd := sa.Clone()
		cd.DifferenceWith(sb)
		if cd.Count() != len(ra)-inter {
			return false
		}
		if !sa.SubsetOf(c) || !sb.SubsetOf(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCloneEqualIndependence(t *testing.T) {
	f := func(xs []int) bool {
		_, s := refFrom(append(xs, 1), 100)
		c := s.Clone()
		if !c.Equal(s) || !s.Equal(c) {
			return false
		}
		c.Add(99)
		c.Remove(1)
		// s must be unaffected by mutations of the clone.
		return s.Contains(1) && (s.Contains(99) == containsOrig(xs, 99))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func containsOrig(xs []int, want int) bool {
	for _, x := range xs {
		if ((x%100)+100)%100 == want {
			return true
		}
	}
	return false
}

func TestCopyFrom(t *testing.T) {
	a := New(70)
	a.Add(5)
	b := New(70)
	b.Add(69)
	a.CopyFrom(b)
	if a.Contains(5) || !a.Contains(69) {
		t.Fatal("CopyFrom did not overwrite")
	}
}

func TestEqualDifferentCapacity(t *testing.T) {
	if New(10).Equal(New(11)) {
		t.Fatal("sets of different capacity must not be Equal")
	}
}

func BenchmarkUnionWith(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s, t := New(1<<16), New(1<<16)
	for i := 0; i < 4096; i++ {
		s.Add(rng.Intn(1 << 16))
		t.Add(rng.Intn(1 << 16))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.UnionWith(t)
	}
}

func BenchmarkJaccard(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	s, t := New(1<<16), New(1<<16)
	for i := 0; i < 4096; i++ {
		s.Add(rng.Intn(1 << 16))
		t.Add(rng.Intn(1 << 16))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Jaccard(s, t)
	}
}
