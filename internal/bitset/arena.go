package bitset

// Arena is a pool of fixed-width bitsets over one universe, backed by large
// shared word chunks. The relevant-set kernels allocate and drop one bitset
// per product-graph SCC; without pooling that is one []uint64 (plus one Set
// header) per component, and the garbage collector ends up dominating the
// propagation profile. An Arena carves sets out of reusable chunks and keeps
// a free list of returned sets, so the steady state of a propagation sweep —
// Get, union, Put — performs no allocation at all (see the AllocsPerRun
// regression test).
//
// An Arena is NOT safe for concurrent use; parallel propagation allocates
// and releases sets in its sequential phases and only runs the word-level
// union work concurrently (see simulation.ComputeRelevant).
//
// Sets obtained from Get are ordinary *Set values: every in-place operation
// (UnionWith, IntersectWith, Add, ...) works on them unchanged, and a set
// that must outlive the arena can simply never be Put back (its words keep
// the owning chunk alive) or be detached via Clone.
type Arena struct {
	bits  int // universe size of every set
	words int // words per set
	// cur is the tail of the current chunk; chunks are retained only through
	// the live Sets carved from them, so dropping the whole arena frees
	// everything at once.
	cur []uint64
	// free holds returned sets, cleared and ready for reuse.
	free []*Set
	// chunkWords is the allocation granularity (at least one set).
	chunkWords int
}

// arenaChunkWords is the default chunk size in words (512 KiB of bits);
// chunks always hold at least one full set.
const arenaChunkWords = 8192

// NewArena returns an arena producing sets with capacity for bits elements.
func NewArena(bits int) *Arena {
	if bits < 0 {
		panic("bitset: negative arena capacity")
	}
	w := (bits + wordBits - 1) / wordBits
	cw := arenaChunkWords
	if w > cw {
		cw = w
	}
	return &Arena{bits: bits, words: w, chunkWords: cw}
}

// Bits returns the universe size of the arena's sets.
func (a *Arena) Bits() int { return a.bits }

// Get returns an empty set over the arena's universe, reusing a returned set
// when one is available. The caller owns the set until Put. Get performs no
// clearing: freshly carved chunks are zero by construction, and Put requires
// the set to be empty again — callers that track each set's populated word
// span clear exactly that span (ClearRange) instead of the full width, which
// is where the arena's O(span) economics come from.
func (a *Arena) Get() *Set {
	if n := len(a.free); n > 0 {
		s := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		return s
	}
	if len(a.cur) < a.words {
		a.cur = make([]uint64, a.chunkWords)
	}
	words := a.cur[:a.words:a.words]
	a.cur = a.cur[a.words:]
	return &Set{words: words, n: a.bits}
}

// Put returns a set to the arena for reuse. The set MUST be empty again (see
// Get) and must not be used after Put. Putting a set that did not come from
// this arena is allowed as long as its capacity matches (its words simply
// join the pool).
func (a *Arena) Put(s *Set) {
	if s == nil {
		return
	}
	if s.n != a.bits {
		panic("bitset: Put of set with foreign capacity")
	}
	a.free = append(a.free, s)
}

// FreeLen reports the number of pooled sets currently available for reuse
// (diagnostics and tests).
func (a *Arena) FreeLen() int { return len(a.free) }
