package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(1); got != 1 {
		t.Fatalf("Workers(1) = %d", got)
	}
	if got := Workers(0); got != runtime.NumCPU() {
		t.Fatalf("Workers(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(-4); got != runtime.NumCPU() {
		t.Fatalf("Workers(-4) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
}

func TestShardsCoverRangeExactly(t *testing.T) {
	for n := 0; n <= 40; n++ {
		for k := -1; k <= 12; k++ {
			shards := Shards(n, k)
			if n <= 0 {
				if shards != nil {
					t.Fatalf("Shards(%d,%d) = %v, want nil", n, k, shards)
				}
				continue
			}
			next := 0
			for _, s := range shards {
				if s[0] != next {
					t.Fatalf("Shards(%d,%d): gap/overlap at %v", n, k, s)
				}
				if s[1] <= s[0] {
					t.Fatalf("Shards(%d,%d): empty shard %v", n, k, s)
				}
				next = s[1]
			}
			if next != n {
				t.Fatalf("Shards(%d,%d): covers [0,%d), want [0,%d)", n, k, next, n)
			}
			if k >= 1 && len(shards) > k {
				t.Fatalf("Shards(%d,%d): %d shards", n, k, len(shards))
			}
		}
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 1000
		var counts [n]atomic.Int32
		ForEach(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachInlineWhenSequential(t *testing.T) {
	// workers <= 1 must run in index order on the calling goroutine.
	var order []int
	ForEach(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential ForEach out of order: %v", order)
		}
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const bound = 3
	p := NewPool(bound)
	var cur, peak atomic.Int32
	for i := 0; i < 50; i++ {
		p.Go(func() {
			c := cur.Add(1)
			for {
				old := peak.Load()
				if c <= old || peak.CompareAndSwap(old, c) {
					break
				}
			}
			cur.Add(-1)
		})
	}
	p.Wait()
	if got := peak.Load(); got > bound {
		t.Fatalf("peak concurrency %d exceeds bound %d", got, bound)
	}
}
