// Package parallel provides the shared concurrency primitives behind the
// engine's intra-query parallelism and the Matcher's batch API: a worker
// normalization rule, deterministic range sharding, a dynamic-scheduling
// parallel for-loop, and a bounded worker pool.
//
// Every helper degrades to plain inline execution when asked for a single
// worker, so sequential behavior (Parallelism(1)) runs exactly the code it
// ran before this package existed — no goroutines, no channels, no
// scheduling jitter.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a parallelism setting: n >= 1 is returned unchanged,
// anything else (zero value, negatives) means "use all cores" and returns
// runtime.NumCPU().
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.NumCPU()
}

// Shards splits the range [0, n) into at most k contiguous, non-empty,
// near-equal half-open intervals, in ascending order. It returns nil when
// n <= 0. Sharding is deterministic: the same (n, k) always yields the same
// intervals, which is what keeps parallel candidate computation bit-for-bit
// identical to the sequential scan after concatenation.
func Shards(n, k int) [][2]int {
	if n <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	out := make([][2]int, 0, k)
	for s := 0; s < k; s++ {
		lo, hi := s*n/k, (s+1)*n/k
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

// ForEach invokes fn(i) once for every i in [0, n), spreading iterations
// over at most workers goroutines with dynamic scheduling (an atomic
// counter), so uneven per-iteration costs still balance. With workers <= 1
// or n <= 1 it runs inline in index order. fn must be safe to call from
// multiple goroutines; iteration order is otherwise unspecified. ForEach
// returns only after every iteration has completed.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Pool is a bounded worker pool: at most the configured number of submitted
// tasks run concurrently, and Go blocks the submitter once the bound is
// reached (backpressure instead of unbounded goroutine growth). The zero
// Pool is not usable; construct with NewPool.
type Pool struct {
	sem chan struct{}
	wg  sync.WaitGroup
}

// NewPool returns a pool running at most Workers(workers) tasks at once.
func NewPool(workers int) *Pool {
	return &Pool{sem: make(chan struct{}, Workers(workers))}
}

// Go schedules fn on the pool, blocking while the pool is saturated.
func (p *Pool) Go(fn func()) {
	p.wg.Add(1)
	p.sem <- struct{}{}
	go func() {
		defer func() {
			<-p.sem
			p.wg.Done()
		}()
		fn()
	}()
}

// Wait blocks until every task scheduled so far has finished.
func (p *Pool) Wait() { p.wg.Wait() }
