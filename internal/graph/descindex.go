package graph

import "divtopk/internal/bitset"

// This file implements the descendant-label index sketched in §4.1 of the
// paper ("for each node v in G, the index records the numbers of its
// descendants with a same label"). Given a set of labels, it yields for
// every node v an upper bound on (or the exact count of) the descendants of
// v carrying each label. internal/core combines these per-label counts into
// the loose initialization of the upper bound v.h; the tight initialization
// (which reproduces the h values of the paper's Examples 7 and 8) instead
// counts over the candidate product graph and lives in internal/core.

// DescMode selects how descendant counts are computed.
type DescMode int

const (
	// DescExact computes exact distinct-descendant counts using bitset
	// reachability over the condensation. Costs O((|V|+|E|)·n_l/64) time per
	// label l with n_l occurrences.
	DescExact DescMode = iota
	// DescLoose computes an overestimate by summing child counts over the
	// condensation DAG (shared descendants are counted once per path). Costs
	// O(|V|+|E|) per label. Always >= the exact count, so it remains a sound
	// upper bound for v.h.
	DescLoose
)

// DescendantLabelCounts returns, for each label in labels (in order), a
// per-node count of descendants carrying that label, computed per mode.
// A node is a descendant of v if it is reachable from v by a path of one or
// more edges; v counts as its own descendant exactly when it lies on a cycle.
func DescendantLabelCounts(g *Graph, labels []LabelID, mode DescMode) [][]int32 {
	cond := CondenseGraph(g)
	out := make([][]int32, len(labels))
	for i, l := range labels {
		if mode == DescExact {
			out[i] = exactLabelCounts(g, cond, l)
		} else {
			out[i] = looseLabelCounts(g, cond, l)
		}
	}
	return out
}

// exactLabelCounts computes |{w : v →+ w, L(w)=l}| for every v, exactly.
// It processes the condensation in reverse topological order (ascending SCC
// index, since Tarjan numbers sinks first), maintaining one bitset per SCC
// over the dense universe of l-labeled nodes, and frees each bitset once all
// predecessor SCCs have consumed it to bound peak memory.
func exactLabelCounts(g *Graph, cond *Condensation, l LabelID) []int32 {
	nodes := g.NodesWithLabelID(l)
	universe := len(nodes)
	idx := make(map[NodeID]int, universe)
	for i, v := range nodes {
		idx[v] = i
	}

	counts := make([]int32, g.NumNodes())
	if universe == 0 {
		return counts
	}

	sets := make([]*bitset.Set, cond.NumComps)
	pending := make([]int, cond.NumComps) // predecessors yet to consume the set
	for c := 0; c < cond.NumComps; c++ {
		pending[c] = len(cond.Pred[c])
	}

	for c := 0; c < cond.NumComps; c++ {
		s := bitset.New(universe)
		for _, succ := range cond.Succ[c] {
			s.UnionWith(sets[succ])
			pending[succ]--
			if pending[succ] == 0 {
				sets[succ] = nil // free eagerly
			}
		}
		// Descendants *below* this SCC are now in s. Members of a nontrivial
		// SCC also reach every member of their own SCC (including themselves).
		if cond.Nontrivial[c] {
			for _, v := range cond.Members[c] {
				if i, ok := idx[v]; ok {
					s.Add(i)
				}
			}
			cnt := int32(s.Count())
			for _, v := range cond.Members[c] {
				counts[v] = cnt
			}
		} else {
			v := cond.Members[c][0]
			counts[v] = int32(s.Count())
			// The node itself becomes visible to its predecessors.
			if i, ok := idx[v]; ok {
				s.Add(i)
			}
		}
		sets[c] = s
		if pending[c] == 0 {
			sets[c] = nil
		}
	}
	return counts
}

// looseLabelCounts computes an overestimate: for the condensation DAG,
// cnt(C) = ownLabelled(C) + Σ_{C' ∈ Succ(C)} cnt(C'). Diamond-shaped sharing
// is counted multiply, which can only inflate the bound. Counts saturate at
// MaxInt32 to stay safe on dense DAGs.
func looseLabelCounts(g *Graph, cond *Condensation, l LabelID) []int32 {
	const maxInt32 = int32(^uint32(0) >> 1)
	own := make([]int64, cond.NumComps)
	for _, v := range g.NodesWithLabelID(l) {
		own[cond.Comp[v]]++
	}
	cnt := make([]int64, cond.NumComps)
	sat := func(x int64) int64 {
		if x > int64(maxInt32) {
			return int64(maxInt32)
		}
		return x
	}
	for c := 0; c < cond.NumComps; c++ {
		total := int64(0)
		for _, succ := range cond.Succ[c] {
			total = sat(total + cnt[succ])
		}
		// cnt(C) counts everything a predecessor of C can see through C:
		// C's own labelled members plus everything below.
		cnt[c] = sat(total + own[c])
	}

	counts := make([]int32, g.NumNodes())
	for c := 0; c < cond.NumComps; c++ {
		for _, v := range cond.Members[c] {
			visible := int64(0)
			for _, succ := range cond.Succ[c] {
				visible = sat(visible + cnt[succ])
			}
			if cond.Nontrivial[c] {
				// Members of a cyclic SCC see the whole SCC, themselves
				// included.
				visible = sat(visible + own[cond.Comp[v]])
			}
			counts[v] = int32(visible)
		}
	}
	return counts
}
