package graph

import (
	"slices"

	"divtopk/internal/bitset"
)

// This file implements the descendant-label index sketched in §4.1 of the
// paper ("for each node v in G, the index records the numbers of its
// descendants with a same label"). Given a set of labels, it yields for
// every node v an upper bound on (or the exact count of) the descendants of
// v carrying each label. internal/core combines these per-label counts into
// the loose initialization of the upper bound v.h; the tight initialization
// (which reproduces the h values of the paper's Examples 7 and 8) instead
// counts over the candidate product graph and lives in internal/core.
//
// All entry points run over the snapshot's cached Condensation, so a
// multi-label fill (and any number of lazy per-label fills) pays the SCC
// computation once per graph, and the DescScope entry points recompute the
// rows of an affected component set only — the partial passes behind
// core.BoundsCache.Advance.

// DescMode selects how descendant counts are computed.
type DescMode int

const (
	// DescExact computes exact distinct-descendant counts using bitset
	// reachability over the condensation. Costs O((|V|+|E|)·n_l/64) time per
	// label l with n_l occurrences.
	DescExact DescMode = iota
	// DescLoose computes an overestimate by summing child counts over the
	// condensation DAG (shared descendants are counted once per path). Costs
	// O(|V|+|E|) per label. Always >= the exact count, so it remains a sound
	// upper bound for v.h.
	DescLoose
)

// DescendantLabelCounts returns, for each label in labels (in order), a
// per-node count of descendants carrying that label, computed per mode.
// A node is a descendant of v if it is reachable from v by a path of one or
// more edges; v counts as its own descendant exactly when it lies on a cycle.
func DescendantLabelCounts(g *Graph, labels []LabelID, mode DescMode) [][]int32 {
	cond := g.Condensation()
	out := make([][]int32, len(labels))
	for i, l := range labels {
		if mode == DescExact {
			out[i] = exactLabelCounts(g, cond, l)
		} else {
			out[i] = looseLabelCounts(g, cond, l)
		}
	}
	return out
}

// exactLabelCounts computes |{w : v →+ w, L(w)=l}| for every v, exactly.
// It processes the condensation in reverse topological order (ascending SCC
// index, since Tarjan numbers sinks first), maintaining one bitset per SCC
// over the dense universe of l-labeled nodes, and frees each bitset once all
// predecessor SCCs have consumed it to bound peak memory.
func exactLabelCounts(g *Graph, cond *Condensation, l LabelID) []int32 {
	nodes := g.NodesWithLabelID(l)
	universe := len(nodes)
	idx := make(map[NodeID]int, universe)
	for i, v := range nodes {
		idx[v] = i
	}

	counts := make([]int32, g.NumNodes())
	if universe == 0 {
		return counts
	}

	sets := make([]*bitset.Set, cond.NumComps)
	pending := make([]int, cond.NumComps) // predecessors yet to consume the set
	for c := 0; c < cond.NumComps; c++ {
		pending[c] = len(cond.Pred[c])
	}

	for c := 0; c < cond.NumComps; c++ {
		s := bitset.New(universe)
		for _, succ := range cond.Succ[c] {
			s.UnionWith(sets[succ])
			pending[succ]--
			if pending[succ] == 0 {
				sets[succ] = nil // free eagerly
			}
		}
		// Descendants *below* this SCC are now in s. Members of a nontrivial
		// SCC also reach every member of their own SCC (including themselves).
		if cond.Nontrivial[c] {
			for _, v := range cond.Members[c] {
				if i, ok := idx[v]; ok {
					s.Add(i)
				}
			}
			cnt := int32(s.Count())
			for _, v := range cond.Members[c] {
				counts[v] = cnt
			}
		} else {
			v := cond.Members[c][0]
			counts[v] = int32(s.Count())
			// The node itself becomes visible to its predecessors.
			if i, ok := idx[v]; ok {
				s.Add(i)
			}
		}
		sets[c] = s
		if pending[c] == 0 {
			sets[c] = nil
		}
	}
	return counts
}

// looseLabelCounts computes an overestimate: for the condensation DAG,
// cnt(C) = ownLabelled(C) + Σ_{C' ∈ Succ(C)} cnt(C'). Diamond-shaped sharing
// is counted multiply, which can only inflate the bound. Counts saturate at
// MaxInt32 to stay safe on dense DAGs.
func looseLabelCounts(g *Graph, cond *Condensation, l LabelID) []int32 {
	const maxInt32 = int32(^uint32(0) >> 1)
	own := make([]int64, cond.NumComps)
	for _, v := range g.NodesWithLabelID(l) {
		own[cond.Comp[v]]++
	}
	cnt := make([]int64, cond.NumComps)
	sat := func(x int64) int64 {
		if x > int64(maxInt32) {
			return int64(maxInt32)
		}
		return x
	}
	for c := 0; c < cond.NumComps; c++ {
		total := int64(0)
		for _, succ := range cond.Succ[c] {
			total = sat(total + cnt[succ])
		}
		// cnt(C) counts everything a predecessor of C can see through C:
		// C's own labelled members plus everything below.
		cnt[c] = sat(total + own[c])
	}

	counts := make([]int32, g.NumNodes())
	for c := 0; c < cond.NumComps; c++ {
		for _, v := range cond.Members[c] {
			visible := int64(0)
			for _, succ := range cond.Succ[c] {
				visible = sat(visible + cnt[succ])
			}
			if cond.Nontrivial[c] {
				// Members of a cyclic SCC see the whole SCC, themselves
				// included.
				visible = sat(visible + own[cond.Comp[v]])
			}
			counts[v] = int32(visible)
		}
	}
	return counts
}

// DescScope is the restriction of a partial descendant-count recompute: the
// set of components whose index rows must be rewritten (the "affected"
// components, typically the ancestor closure of a delta's dirty components)
// together with their forward closure — the region a bottom-up per-label
// pass has to traverse, since a component's counts aggregate everything
// below it. The scope is label-independent; build it once per delta and
// recompute any number of labels through it.
type DescScope struct {
	cond *Condensation
	// comps lists the scope (forward closure of the affected set) in
	// ascending component index — reverse topological order, the order both
	// passes consume.
	comps []int32
	// local maps a component index to its position in comps, -1 outside.
	local []int32
	// pending[i] is the number of scope-internal predecessors of comps[i]
	// (predecessors outside the scope never consume its bitset).
	pending []int32
	// affected[i] reports whether comps[i]'s rows are rewritten.
	affected []bool
	// affectedRows is the total member count of the affected components.
	affectedRows int
}

// NewDescScope builds the scope for the given affected components over
// cond: the traversal region is their forward (descendant) closure, which
// is self-contained — every successor of a scope component is in the scope.
// affectedComps must be duplicate-free.
func NewDescScope(cond *Condensation, affectedComps []int32) *DescScope {
	s := &DescScope{cond: cond, local: make([]int32, cond.NumComps)}
	in := make([]bool, cond.NumComps)
	closure := ExpandComps(affectedComps, cond.Succ, in)
	// Ascending component index == reverse topological order.
	slices.Sort(closure)
	s.comps = closure
	for i := range s.local {
		s.local[i] = -1
	}
	for i, c := range closure {
		s.local[c] = int32(i)
	}
	s.pending = make([]int32, len(closure))
	s.affected = make([]bool, len(closure))
	for i, c := range closure {
		for _, p := range cond.Pred[c] {
			if s.local[p] >= 0 {
				s.pending[i]++
			}
		}
	}
	for _, c := range affectedComps {
		i := s.local[c]
		if !s.affected[i] {
			s.affected[i] = true
			s.affectedRows += len(cond.Members[c])
		}
	}
	return s
}

// AffectedRows returns the number of index rows (nodes) the scope rewrites.
func (s *DescScope) AffectedRows() int { return s.affectedRows }

// Comps returns the number of components the per-label passes traverse.
func (s *DescScope) Comps() int { return len(s.comps) }

// Recompute rewrites out[v] for every member v of the scope's affected
// components with the fresh count of label l under mode, leaving every
// other row of out untouched. It is the partial counterpart of
// DescendantLabelCounts: restricted to the scope's forward-closed region,
// it computes the same integers the full pass would (the universe of a
// bitset pass shrinks to the labelled nodes inside the region, which cannot
// change any count — an affected component's descendants all lie in the
// region). out must be sized g.NumNodes().
func (s *DescScope) Recompute(g *Graph, l LabelID, mode DescMode, out []int32) {
	if mode == DescExact {
		s.recomputeExact(g, l, out)
	} else {
		s.recomputeLoose(g, l, out)
	}
}

// recomputeExact is exactLabelCounts restricted to the scope.
func (s *DescScope) recomputeExact(g *Graph, l LabelID, out []int32) {
	cond := s.cond
	// Universe: l-labeled nodes inside the scope (bit order is irrelevant —
	// only cardinalities are read).
	idx := make(map[NodeID]int)
	for _, c := range s.comps {
		for _, v := range cond.Members[c] {
			if g.LabelIDOf(v) == l {
				idx[v] = len(idx)
			}
		}
	}
	if len(idx) == 0 {
		for i, c := range s.comps {
			if s.affected[i] {
				for _, v := range cond.Members[c] {
					out[v] = 0
				}
			}
		}
		return
	}

	sets := make([]*bitset.Set, len(s.comps))
	pending := make([]int32, len(s.comps))
	copy(pending, s.pending)
	for i, c := range s.comps {
		b := bitset.New(len(idx))
		for _, succ := range cond.Succ[c] {
			sp := s.local[succ] // scope is forward-closed: sp >= 0
			b.UnionWith(sets[sp])
			pending[sp]--
			if pending[sp] == 0 {
				sets[sp] = nil
			}
		}
		if cond.Nontrivial[c] {
			for _, v := range cond.Members[c] {
				if j, ok := idx[v]; ok {
					b.Add(j)
				}
			}
			if s.affected[i] {
				cnt := int32(b.Count())
				for _, v := range cond.Members[c] {
					out[v] = cnt
				}
			}
		} else {
			v := cond.Members[c][0]
			if s.affected[i] {
				out[v] = int32(b.Count())
			}
			if j, ok := idx[v]; ok {
				b.Add(j)
			}
		}
		sets[i] = b
		if pending[i] == 0 {
			sets[i] = nil
		}
	}
}

// recomputeLoose is looseLabelCounts restricted to the scope; the
// saturation arithmetic mirrors the full pass step for step so the partial
// rows are byte-identical to a full recompute.
func (s *DescScope) recomputeLoose(g *Graph, l LabelID, out []int32) {
	const maxInt32 = int32(^uint32(0) >> 1)
	cond := s.cond
	sat := func(x int64) int64 {
		if x > int64(maxInt32) {
			return int64(maxInt32)
		}
		return x
	}
	own := make([]int64, len(s.comps))
	for i, c := range s.comps {
		for _, v := range cond.Members[c] {
			if g.LabelIDOf(v) == l {
				own[i]++
			}
		}
	}
	cnt := make([]int64, len(s.comps))
	for i, c := range s.comps {
		total := int64(0)
		for _, succ := range cond.Succ[c] {
			total = sat(total + cnt[s.local[succ]])
		}
		cnt[i] = sat(total + own[i])
	}
	for i, c := range s.comps {
		if !s.affected[i] {
			continue
		}
		for _, v := range cond.Members[c] {
			visible := int64(0)
			for _, succ := range cond.Succ[c] {
				visible = sat(visible + cnt[s.local[succ]])
			}
			if cond.Nontrivial[c] {
				visible = sat(visible + own[i])
			}
			out[v] = int32(visible)
		}
	}
}
