package graph

import (
	"fmt"
	"sort"
)

// NodeAppend is one appended node of a Delta: its label and optional
// attributes. Appended nodes receive the next dense IDs of the target graph,
// in append order.
type NodeAppend struct {
	Label string
	Attrs map[string]Value
}

// Delta is a batch of updates to apply to a graph snapshot: edge inserts,
// edge deletes, and node appends. Existing nodes never change label or
// attributes and are never removed — the update model of the paper's
// "frequently updated" social and web graphs, where content accumulates and
// links churn.
//
// Semantics (ApplyDelta): deletes are applied to the old edge set first,
// inserts after. Inserting an edge that is already present (or inserting the
// same edge twice) is a no-op, matching Builder.Build's deduplication;
// deleting an edge the graph does not have is an error, because a caller
// tracking a live graph that issues such a delete has lost sync with it.
type Delta struct {
	// NodeAppends are appended in order; node i of the slice becomes node
	// oldNumNodes+i of the new graph.
	NodeAppends []NodeAppend
	// EdgeInserts and EdgeDeletes reference nodes of the new graph (old IDs
	// plus the appended range).
	EdgeInserts [][2]NodeID
	EdgeDeletes [][2]NodeID
}

// AddNode appends a node to the delta and returns its index within the
// delta's appends (its final NodeID is the target graph's NumNodes plus this
// index). The attrs map is captured as given; the caller must not mutate it
// afterwards.
func (d *Delta) AddNode(label string, attrs map[string]Value) int {
	d.NodeAppends = append(d.NodeAppends, NodeAppend{Label: label, Attrs: attrs})
	return len(d.NodeAppends) - 1
}

// InsertEdge records the directed edge (u, v) for insertion.
func (d *Delta) InsertEdge(u, v NodeID) {
	d.EdgeInserts = append(d.EdgeInserts, [2]NodeID{u, v})
}

// DeleteEdge records the directed edge (u, v) for deletion.
func (d *Delta) DeleteEdge(u, v NodeID) {
	d.EdgeDeletes = append(d.EdgeDeletes, [2]NodeID{u, v})
}

// Empty reports whether the delta contains no updates.
func (d *Delta) Empty() bool {
	return len(d.NodeAppends) == 0 && len(d.EdgeInserts) == 0 && len(d.EdgeDeletes) == 0
}

// Size returns the number of individual updates the delta carries.
func (d *Delta) Size() int {
	return len(d.NodeAppends) + len(d.EdgeInserts) + len(d.EdgeDeletes)
}

// Merge folds other into d, producing one delta whose single application to
// base is equivalent to applying d and then other sequentially. other's edge
// endpoints are interpreted the way ApplyDelta would after d: IDs below
// base.NumNodes()+len(d.NodeAppends) name existing or d-appended nodes, and
// other's own appends take the IDs after that, which is exactly where they
// land in the merged append list — so no endpoint renumbering is needed.
//
// Deletes-before-inserts semantics carry over per edge: a delete of an edge d
// inserted cancels the insert (and, if the edge also exists in base, becomes
// a delete of the base edge, since d's insert was a no-op there); a delete of
// a base edge joins the merged delete list; an insert after a delete keeps
// both, which ApplyDelta resolves as delete-then-reinsert. A delete of an
// edge that neither base nor the pending inserts contain is an error, as is
// a delete incident to one of other's own appended nodes — the same
// lost-sync conditions ApplyDelta reports for a standalone delta.
//
// On error d is left unchanged; on success d holds the merged batch. The
// merged delta is a deterministic function of (base, d, other).
func (d *Delta) Merge(base *Graph, other *Delta) error {
	nBase := base.NumNodes()
	nBefore := nBase + len(d.NodeAppends)
	nAfter := nBefore + len(other.NodeAppends)
	for _, e := range other.EdgeInserts {
		if e[0] < 0 || int(e[0]) >= nAfter || e[1] < 0 || int(e[1]) >= nAfter {
			return fmt.Errorf("graph: delta insert edge (%d,%d) references unknown node (have %d nodes after appends)",
				e[0], e[1], nAfter)
		}
	}
	for _, e := range other.EdgeDeletes {
		if e[0] < 0 || int(e[0]) >= nAfter || e[1] < 0 || int(e[1]) >= nAfter {
			return fmt.Errorf("graph: delta delete edge (%d,%d) references unknown node (have %d nodes after appends)",
				e[0], e[1], nAfter)
		}
		if int(e[0]) >= nBefore || int(e[1]) >= nBefore {
			return fmt.Errorf("graph: delta deletes edge (%d,%d) incident to an appended node", e[0], e[1])
		}
	}

	// Working sets cloned from d; d itself is only rewritten after every
	// check below has passed.
	insSet := make(map[[2]NodeID]bool, len(d.EdgeInserts)+len(other.EdgeInserts))
	insList := make([][2]NodeID, 0, len(d.EdgeInserts)+len(other.EdgeInserts))
	for _, e := range d.EdgeInserts {
		if !insSet[e] {
			insSet[e] = true
			insList = append(insList, e)
		}
	}
	delSet := make(map[[2]NodeID]bool, len(d.EdgeDeletes)+len(other.EdgeDeletes))
	delList := make([][2]NodeID, 0, len(d.EdgeDeletes)+len(other.EdgeDeletes))
	for _, e := range d.EdgeDeletes {
		if !delSet[e] {
			delSet[e] = true
			delList = append(delList, e)
		}
	}

	inBase := func(e [2]NodeID) bool {
		return int(e[0]) < nBase && int(e[1]) < nBase && base.HasEdge(e[0], e[1])
	}
	for _, e := range sortedUniqueEdges(other.EdgeDeletes, false) {
		exists := inBase(e)
		switch {
		case insSet[e]:
			// Cancel the pending insert. If the edge also exists in base the
			// insert was a no-op there, so other's delete must still remove
			// the base edge.
			delete(insSet, e)
			if exists && !delSet[e] {
				delSet[e] = true
				delList = append(delList, e)
			}
		case exists && !delSet[e]:
			delSet[e] = true
			delList = append(delList, e)
		default:
			return fmt.Errorf("graph: delta deletes edge (%d,%d) the graph does not have", e[0], e[1])
		}
	}
	for _, e := range sortedUniqueEdges(other.EdgeInserts, false) {
		if !insSet[e] {
			insSet[e] = true
			insList = append(insList, e)
		}
	}

	// Commit: compact the insert list through the cancellations (keeping
	// first-occurrence order; a cancel-then-reinsert edge appears once, at
	// its reinsertion position).
	seen := make(map[[2]NodeID]bool, len(insList))
	ins := insList[:0]
	for _, e := range insList {
		if insSet[e] && !seen[e] {
			seen[e] = true
			ins = append(ins, e)
		}
	}
	d.NodeAppends = append(d.NodeAppends, other.NodeAppends...)
	d.EdgeInserts = ins
	d.EdgeDeletes = delList
	return nil
}

// sortedUniqueEdges returns edges sorted by key(e) with duplicates dropped,
// without mutating the input.
func sortedUniqueEdges(edges [][2]NodeID, byDst bool) [][2]NodeID {
	if len(edges) == 0 {
		return nil
	}
	out := make([][2]NodeID, len(edges))
	copy(out, edges)
	a, b := 0, 1
	if byDst {
		a, b = 1, 0
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][a] != out[j][a] {
			return out[i][a] < out[j][a]
		}
		return out[i][b] < out[j][b]
	})
	uniq := out[:0]
	for i, e := range out {
		if i > 0 && e == out[i-1] {
			continue
		}
		uniq = append(uniq, e)
	}
	return uniq
}

// mergeAdjacency builds one direction of the new CSR: for every node, the
// old sorted neighbor run minus the sorted deletes, merged with the sorted
// inserts, deduplicated — a single linear pass over old adjacency plus
// delta, never a re-sort of the whole edge set. key selects the grouping
// endpoint (0 = by source over Out, 1 = by destination over In); neighbors
// carry the opposite endpoint. A delete that does not align with an old
// neighbor is reported with its original orientation.
//
// Only the few nodes that are key endpoints of an insert or delete need the
// per-edge merge; every run of untouched nodes between them has
// byte-identical adjacency in the new snapshot, so the run is spliced with
// one bulk copy and its offsets rewritten with a constant shift. A small
// delta against a large graph — the group-commit serving regime — therefore
// costs one memcpy of the edge array plus O(touched) merge work instead of
// an O(|E|) per-edge walk.
func mergeAdjacency(nNew int, oldOff []int32, oldAdj []NodeID, nOld int,
	ins, del [][2]NodeID, key int) ([]int32, []NodeID, error) {

	other := 1 - key
	off := make([]int32, nNew+1)
	adj := make([]NodeID, 0, len(oldAdj)+len(ins))
	di, ii := 0, 0
	for v := 0; v < nNew; {
		// The next touched node is the smallest key endpoint the remaining
		// (sorted) inserts and deletes name; everything before it is an
		// untouched run.
		next := nNew
		if ii < len(ins) && int(ins[ii][key]) < next {
			next = int(ins[ii][key])
		}
		if di < len(del) && int(del[di][key]) < next {
			next = int(del[di][key])
		}
		if v < next {
			if hi := min(next, nOld); v < hi {
				shift := int32(len(adj)) - oldOff[v]
				adj = append(adj, oldAdj[oldOff[v]:oldOff[hi]]...)
				for u := v; u < hi; u++ {
					off[u+1] = oldOff[u+1] + shift
				}
				v = hi
			}
			// Untouched appended nodes have no adjacency.
			for ; v < next; v++ {
				off[v+1] = int32(len(adj))
			}
			continue
		}
		// v == next: a touched node — merge its deletes and inserts into the
		// (possibly empty) old neighbor run.
		var old []NodeID
		if v < nOld {
			old = oldAdj[oldOff[v]:oldOff[v+1]]
		}
		oi := 0
		for oi < len(old) || (ii < len(ins) && int(ins[ii][key]) == v) {
			// Surviving old neighbor at the front, after applying deletes.
			haveOld := false
			var ow NodeID
			for oi < len(old) {
				w := old[oi]
				if di < len(del) && int(del[di][key]) == v && del[di][other] == w {
					di++
					oi++
					continue
				}
				ow, haveOld = w, true
				break
			}
			haveIns := ii < len(ins) && int(ins[ii][key]) == v
			var iw NodeID
			if haveIns {
				iw = ins[ii][other]
			}
			var w NodeID
			switch {
			case haveOld && (!haveIns || ow <= iw):
				w = ow
				oi++
				if haveIns && iw == ow {
					ii++ // insert of an existing edge: no-op
				}
			case haveIns:
				w = iw
				ii++
			default:
				// Neither side has a neighbor left; loop condition ends.
				continue
			}
			adj = append(adj, w)
		}
		// Any delete still pointing at v matched no old neighbor.
		if di < len(del) && int(del[di][key]) == v {
			e := del[di]
			return nil, nil, fmt.Errorf("graph: delta deletes edge (%d,%d) the graph does not have", e[0], e[1])
		}
		off[v+1] = int32(len(adj))
		v++
	}
	if di < len(del) {
		e := del[di]
		return nil, nil, fmt.Errorf("graph: delta deletes edge (%d,%d) the graph does not have", e[0], e[1])
	}
	return off, adj, nil
}

// DeltaSummary is the affected-area summary of one applied delta: which
// parts of the graph the delta's edits are incident to, in the terms the
// derived-state layers (the descendant-label bound index foremost) need to
// decide what a maintenance pass may have to touch. Together with the
// condensation diff of the two snapshots (DiffCondensation — the "changed
// SCC membership" half of the affected area), it bounds both the rows and
// the labels an incremental index advance can affect.
type DeltaSummary struct {
	// OldNodes and NewNodes are the node counts before and after the delta;
	// appended nodes hold the IDs OldNodes..NewNodes-1.
	OldNodes, NewNodes int
	// TouchedSources lists the nodes whose out-adjacency the delta changed
	// (sources of inserted and deleted edges), sorted and deduplicated.
	// The bound-index advance derives row dirtiness from the condensation
	// diff instead (an edge whose source keeps its component's structure
	// changes no row), so this set is diagnostic — the raw touched
	// endpoints for logs, tests and future consumers that reason at the
	// node level rather than the component level.
	TouchedSources []NodeID
	// InsertHeads and DeleteHeads list the destinations of inserted and
	// deleted edges, sorted and deduplicated. A count gained anywhere is a
	// node reachable from an insert head in the new snapshot; a count lost
	// anywhere was reachable from a delete head in the old one — the two
	// seed sets of the label-affectedness analysis.
	InsertHeads []NodeID
	DeleteHeads []NodeID
}

// Appended reports the number of nodes the delta appended.
func (s *DeltaSummary) Appended() int { return s.NewNodes - s.OldNodes }

// endpointSet extracts one endpoint column of an edge list, sorted unique.
func endpointSet(edges [][2]NodeID, col int) []NodeID {
	if len(edges) == 0 {
		return nil
	}
	out := make([]NodeID, len(edges))
	for i, e := range edges {
		out[i] = e[col]
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	uniq := out[:1]
	for _, v := range out[1:] {
		if v != uniq[len(uniq)-1] {
			uniq = append(uniq, v)
		}
	}
	return uniq
}

// summarize builds the affected-area summary of d against a graph with
// nOld nodes.
func (d *Delta) summarize(nOld int) *DeltaSummary {
	touched := make([][2]NodeID, 0, len(d.EdgeInserts)+len(d.EdgeDeletes))
	touched = append(touched, d.EdgeInserts...)
	touched = append(touched, d.EdgeDeletes...)
	return &DeltaSummary{
		OldNodes:       nOld,
		NewNodes:       nOld + len(d.NodeAppends),
		TouchedSources: endpointSet(touched, 0),
		InsertHeads:    endpointSet(d.EdgeInserts, 1),
		DeleteHeads:    endpointSet(d.EdgeDeletes, 1),
	}
}

// MergeSummaries combines the affected-area summaries of two consecutively
// applied deltas into the summary of their sequential composition: b must
// describe a delta applied to the graph a produced (b.OldNodes ==
// a.NewNodes). The touch-point sets union; the union over-approximates the
// merged delta's own summary only where an insert and its cancelling delete
// met (both heads stay listed), which is sound for every consumer — the
// seed sets bound what may have changed, they never assert that it did.
func MergeSummaries(a, b *DeltaSummary) (*DeltaSummary, error) {
	if b.OldNodes != a.NewNodes {
		return nil, fmt.Errorf("graph: summary merge mismatch: first ends at %d nodes, second starts at %d", a.NewNodes, b.OldNodes)
	}
	return &DeltaSummary{
		OldNodes:       a.OldNodes,
		NewNodes:       b.NewNodes,
		TouchedSources: unionSorted(a.TouchedSources, b.TouchedSources),
		InsertHeads:    unionSorted(a.InsertHeads, b.InsertHeads),
		DeleteHeads:    unionSorted(a.DeleteHeads, b.DeleteHeads),
	}, nil
}

// unionSorted merges two sorted unique NodeID slices into a fresh sorted
// unique slice.
func unionSorted(a, b []NodeID) []NodeID {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	out := make([]NodeID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// ApplyDelta derives a new immutable graph snapshot from g and d; see
// ApplyDeltaWithSummary, which it wraps when the caller has no use for the
// affected-area summary.
func ApplyDelta(g *Graph, d *Delta) (*Graph, error) {
	g2, _, err := ApplyDeltaWithSummary(g, d)
	return g2, err
}

// ApplyDeltaWithSummary derives a new immutable graph snapshot from g and d
// with Version g.Version()+1; see ApplyDeltaVersionStep, which it wraps.
func ApplyDeltaWithSummary(g *Graph, d *Delta) (*Graph, *DeltaSummary, error) {
	return ApplyDeltaVersionStep(g, d, 1)
}

// ApplyDeltaVersionStep derives a new immutable graph snapshot from g and d:
// appended nodes take the next dense IDs, deletes are removed from and
// inserts merged into both CSR directions in one linear pass each (the old
// adjacency is already sorted, so no re-sort of the edge set happens), and
// the result's Version is g.Version()+steps. g itself is untouched and
// remains fully usable; the two snapshots share the label dictionary
// (appended labels are interned into it — Dict is safe for that even while g
// serves queries) and all per-node data that did not change. The returned
// DeltaSummary describes the delta's affected area for the derived-state
// layers that advance with the graph instead of rebuilding per snapshot.
//
// steps is the number of version increments the snapshot represents: 1 for a
// single applied delta, K for a group-committed merge of K deltas — the
// result then carries the version the K-th sequential application would
// have, so each merged caller can still be acknowledged with its own
// version and the write-ahead log stays contiguous.
//
// If g's condensation has already been computed, the new snapshot's
// condensation is patched forward from it whenever the delta permits
// (PatchCondensation) — the dominant cost of index maintenance on graphs
// with large SCCs is re-running Tarjan, and most churn deltas provably leave
// the SCC partition intact.
func ApplyDeltaVersionStep(g *Graph, d *Delta, steps uint64) (*Graph, *DeltaSummary, error) {
	if steps == 0 {
		return nil, nil, fmt.Errorf("graph: delta application must advance the version (steps=0)")
	}
	if d.Empty() {
		// Nothing changed: share every array with g (all are immutable) and
		// only advance the version.
		g2 := &Graph{
			n:       g.n,
			m:       g.m,
			labels:  g.labels,
			attrs:   g.attrs,
			dict:    g.dict,
			outOff:  g.outOff,
			outAdj:  g.outAdj,
			inOff:   g.inOff,
			inAdj:   g.inAdj,
			byLabel: g.byLabel,
			version: g.version + steps,
		}
		if cond := g.condIfComputed(); cond != nil {
			g2.adoptCondensation(cond)
		}
		return g2, d.summarize(g.n), nil
	}
	nOld := g.n
	nNew := nOld + len(d.NodeAppends)
	check := func(edges [][2]NodeID, what string) error {
		for _, e := range edges {
			if e[0] < 0 || int(e[0]) >= nNew || e[1] < 0 || int(e[1]) >= nNew {
				return fmt.Errorf("graph: delta %s edge (%d,%d) references unknown node (have %d nodes after appends)",
					what, e[0], e[1], nNew)
			}
		}
		return nil
	}
	if err := check(d.EdgeInserts, "insert"); err != nil {
		return nil, nil, err
	}
	if err := check(d.EdgeDeletes, "delete"); err != nil {
		return nil, nil, err
	}
	for _, e := range d.EdgeDeletes {
		if int(e[0]) >= nOld || int(e[1]) >= nOld {
			return nil, nil, fmt.Errorf("graph: delta deletes edge (%d,%d) incident to an appended node", e[0], e[1])
		}
	}

	insOut := sortedUniqueEdges(d.EdgeInserts, false)
	delOut := sortedUniqueEdges(d.EdgeDeletes, false)
	outOff, outAdj, err := mergeAdjacency(nNew, g.outOff, g.outAdj, nOld, insOut, delOut, 0)
	if err != nil {
		return nil, nil, err
	}
	insIn := sortedUniqueEdges(d.EdgeInserts, true)
	delIn := sortedUniqueEdges(d.EdgeDeletes, true)
	inOff, inAdj, err := mergeAdjacency(nNew, g.inOff, g.inAdj, nOld, insIn, delIn, 1)
	if err != nil {
		return nil, nil, err
	}

	// Capped slices: the first append below copies instead of scribbling into
	// the old graph's arrays.
	labels := g.labels[:nOld:nOld]
	attrs := g.attrs[:nOld:nOld]
	for _, na := range d.NodeAppends {
		labels = append(labels, g.dict.Intern(na.Label))
		var m map[string]Value
		if len(na.Attrs) > 0 {
			m = make(map[string]Value, len(na.Attrs))
			for k, v := range na.Attrs {
				m[k] = v
			}
		}
		attrs = append(attrs, m)
	}

	// byLabel: appended node IDs exceed every old ID, so per-label lists stay
	// ascending by appending; labels that gain no node share the old slice
	// (capped, so a future append cannot scribble into it).
	byLabel := make(map[LabelID][]NodeID, len(g.byLabel))
	for l, nodes := range g.byLabel {
		byLabel[l] = nodes[:len(nodes):len(nodes)]
	}
	for i := nOld; i < nNew; i++ {
		byLabel[labels[i]] = append(byLabel[labels[i]], NodeID(i))
	}

	g2 := &Graph{
		n:       nNew,
		m:       len(outAdj),
		labels:  labels,
		attrs:   attrs,
		dict:    g.dict,
		outOff:  outOff,
		outAdj:  outAdj,
		inOff:   inOff,
		inAdj:   inAdj,
		byLabel: byLabel,
		version: g.version + steps,
	}
	// Patch the condensation forward when the predecessor's is available and
	// the delta provably preserves the SCC partition; no reader has seen g2
	// yet, so adopting here is race-free. On bail-out the first Condensation()
	// caller recomputes from scratch as before.
	if oldCond := g.condIfComputed(); oldCond != nil {
		if patched := PatchCondensation(oldCond, g, g2, insOut, delOut); patched != nil {
			g2.adoptCondensation(patched)
		}
	}
	return g2, d.summarize(nOld), nil
}
