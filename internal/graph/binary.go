package graph

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
)

// Binary snapshot format (checkpoint payload of the durability layer): the
// CSR arrays of a Graph flattened little-endian, self-validating via a
// trailing whole-file CRC-32C.
//
//	magic     "DTKCSR1\x00"                      8 bytes
//	version   u64
//	n, m      u64 each
//	dict      u64 count, then per name: u32 length + bytes (ID order)
//	labels    n × i32
//	outOff    (n+1) × i32
//	outAdj    m × i32
//	inOff     (n+1) × i32
//	inAdj     m × i32
//	attrs     u64 count of attributed nodes, then per node in ascending ID
//	          order: u32 node, u32 numAttrs, then per attr in sorted key
//	          order: u32 key length + bytes, u8 kind, i64 | (u32 len + bytes)
//	crc       u32 CRC-32C over everything above
//
// Attribute keys and attributed nodes are emitted in sorted order, and dict
// names in ID order, so serializing the same snapshot twice yields identical
// bytes — the recovery tests rely on comparing checkpoint files directly.

var binaryMagic = [8]byte{'D', 'T', 'K', 'C', 'S', 'R', '1', 0}

var csrCRCTable = crc32.MakeTable(crc32.Castagnoli)

func appendU32(buf []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(buf, v) }
func appendU64(buf []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(buf, v) }

func appendLenBytes(buf []byte, s string) []byte {
	buf = appendU32(buf, uint32(len(s)))
	return append(buf, s...)
}

func appendI32s(buf []byte, vs []int32) []byte {
	for _, v := range vs {
		buf = appendU32(buf, uint32(v))
	}
	return buf
}

// WriteBinary serializes g into the binary snapshot format, returning the
// complete file contents including the trailing CRC.
func WriteBinary(g *Graph) []byte {
	names := g.dict.Names()
	buf := make([]byte, 0, 64+4*(len(g.labels)+len(g.outOff)+len(g.outAdj)+len(g.inOff)+len(g.inAdj)))
	buf = append(buf, binaryMagic[:]...)
	buf = appendU64(buf, g.version)
	buf = appendU64(buf, uint64(g.n))
	buf = appendU64(buf, uint64(g.m))
	buf = appendU64(buf, uint64(len(names)))
	for _, name := range names {
		buf = appendLenBytes(buf, name)
	}
	labels := make([]int32, len(g.labels))
	for i, l := range g.labels {
		labels[i] = int32(l)
	}
	buf = appendI32s(buf, labels)
	buf = appendI32s(buf, g.outOff)
	buf = appendI32s(buf, g.outAdj)
	buf = appendI32s(buf, g.inOff)
	buf = appendI32s(buf, g.inAdj)

	var attributed []int
	for v, m := range g.attrs {
		if len(m) > 0 {
			attributed = append(attributed, v)
		}
	}
	buf = appendU64(buf, uint64(len(attributed)))
	for _, v := range attributed {
		m := g.attrs[v]
		buf = appendU32(buf, uint32(v))
		buf = appendU32(buf, uint32(len(m)))
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			val := m[k]
			buf = appendLenBytes(buf, k)
			buf = append(buf, byte(val.Kind))
			if val.Kind == KindInt {
				buf = appendU64(buf, uint64(val.Int))
			} else {
				buf = appendLenBytes(buf, val.Str)
			}
		}
	}
	return appendU32(buf, crc32.Checksum(buf, csrCRCTable))
}

// binReader walks a binary snapshot body, remembering the first error.
type binReader struct {
	buf []byte
	err error
}

func (r *binReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("graph: "+format, args...)
	}
}

func (r *binReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 4 {
		r.fail("snapshot truncated reading u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf)
	r.buf = r.buf[4:]
	return v
}

func (r *binReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 8 {
		r.fail("snapshot truncated reading u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v
}

func (r *binReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.buf) == 0 {
		r.fail("snapshot truncated reading byte")
		return 0
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b
}

func (r *binReader) lenBytes() string {
	n := r.u32()
	if r.err != nil {
		return ""
	}
	if uint64(n) > uint64(len(r.buf)) {
		r.fail("snapshot string length %d exceeds remaining %d bytes", n, len(r.buf))
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}

func (r *binReader) i32s(n int) []int32 {
	if r.err != nil {
		return nil
	}
	if uint64(n)*4 > uint64(len(r.buf)) {
		r.fail("snapshot array of %d int32s exceeds remaining %d bytes", n, len(r.buf))
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(r.buf[4*i:]))
	}
	r.buf = r.buf[4*n:]
	return out
}

// checkOffsets validates one CSR offset array: length n+1, starting at 0,
// non-decreasing, ending at m.
func checkOffsets(off []int32, m int, dir string) error {
	if off[0] != 0 {
		return fmt.Errorf("graph: snapshot %s offsets start at %d", dir, off[0])
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return fmt.Errorf("graph: snapshot %s offsets decrease at %d", dir, i)
		}
	}
	if int(off[len(off)-1]) != m {
		return fmt.Errorf("graph: snapshot %s offsets end at %d, want m=%d", dir, off[len(off)-1], m)
	}
	return nil
}

// ReadBinary deserializes a binary snapshot produced by WriteBinary,
// validating the magic, the trailing CRC, and the structural invariants of
// the CSR arrays (offset monotonicity, adjacency bounds, label bounds). The
// returned graph carries the serialized version stamp and a fresh label
// dictionary reproducing the serialized IDs.
func ReadBinary(data []byte) (*Graph, error) {
	if len(data) < len(binaryMagic)+4 {
		return nil, fmt.Errorf("graph: snapshot too short (%d bytes)", len(data))
	}
	if string(data[:8]) != string(binaryMagic[:]) {
		return nil, fmt.Errorf("graph: snapshot has bad magic %q", data[:8])
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.Checksum(body, csrCRCTable), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("graph: snapshot CRC mismatch (file %08x, computed %08x)", want, got)
	}

	r := &binReader{buf: body[8:]}
	version := r.u64()
	n64, m64 := r.u64(), r.u64()
	if r.err != nil {
		return nil, r.err
	}
	const maxDim = 1 << 31
	if n64 >= maxDim || m64 >= maxDim {
		return nil, fmt.Errorf("graph: snapshot dimensions n=%d m=%d implausible", n64, m64)
	}
	n, m := int(n64), int(m64)

	dictCount := r.u64()
	if r.err == nil && dictCount > uint64(len(r.buf)) {
		r.fail("snapshot dict count %d exceeds remaining payload", dictCount)
	}
	dict := NewDict()
	for i := uint64(0); i < dictCount && r.err == nil; i++ {
		name := r.lenBytes()
		if r.err == nil {
			if id := dict.Intern(name); uint64(id) != i {
				r.fail("snapshot dict name %q duplicated", name)
			}
		}
	}

	rawLabels := r.i32s(n)
	outOff := r.i32s(n + 1)
	outAdj := r.i32s(m)
	inOff := r.i32s(n + 1)
	inAdj := r.i32s(m)

	attrCount := r.u64()
	if r.err == nil && attrCount > uint64(len(r.buf)) {
		r.fail("snapshot attributed-node count %d exceeds remaining payload", attrCount)
	}
	attrs := make([]map[string]Value, n)
	prevNode := -1
	for i := uint64(0); i < attrCount && r.err == nil; i++ {
		v := int(r.u32())
		numAttrs := r.u32()
		if r.err != nil {
			break
		}
		if v <= prevNode || v >= n {
			r.fail("snapshot attributed node %d out of order or out of range", v)
			break
		}
		prevNode = v
		if uint64(numAttrs) > uint64(len(r.buf)) {
			r.fail("snapshot attr count %d exceeds remaining payload", numAttrs)
			break
		}
		m := make(map[string]Value, numAttrs)
		for j := uint32(0); j < numAttrs && r.err == nil; j++ {
			k := r.lenBytes()
			kind := ValueKind(r.byte())
			switch kind {
			case KindInt:
				m[k] = IntValue(int64(r.u64()))
			case KindString:
				m[k] = StrValue(r.lenBytes())
			default:
				r.fail("snapshot unknown attribute kind %d", kind)
			}
		}
		attrs[v] = m
	}
	if r.err == nil && len(r.buf) != 0 {
		r.fail("snapshot has %d trailing bytes", len(r.buf))
	}
	if r.err != nil {
		return nil, r.err
	}

	labels := make([]LabelID, n)
	for i, l := range rawLabels {
		if l < 0 || uint64(l) >= dictCount {
			return nil, fmt.Errorf("graph: snapshot node %d label %d out of dict range %d", i, l, dictCount)
		}
		labels[i] = LabelID(l)
	}
	if err := checkOffsets(outOff, m, "out"); err != nil {
		return nil, err
	}
	if err := checkOffsets(inOff, m, "in"); err != nil {
		return nil, err
	}
	for _, adj := range [][]NodeID{outAdj, inAdj} {
		for _, w := range adj {
			if w < 0 || int(w) >= n {
				return nil, fmt.Errorf("graph: snapshot adjacency entry %d out of node range %d", w, n)
			}
		}
	}

	byLabel := make(map[LabelID][]NodeID)
	for v, l := range labels {
		byLabel[l] = append(byLabel[l], NodeID(v))
	}
	return &Graph{
		n:       n,
		m:       m,
		labels:  labels,
		attrs:   attrs,
		dict:    dict,
		outOff:  outOff,
		outAdj:  outAdj,
		inOff:   inOff,
		inAdj:   inAdj,
		byLabel: byLabel,
		version: version,
	}, nil
}
