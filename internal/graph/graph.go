// Package graph implements the data-graph substrate of the paper: directed
// graphs G = (V, E, L) whose nodes carry a label from a finite alphabet Σ and,
// optionally, typed attributes (the "multiple attributes" extension of §2.2
// that the paper's YouTube/Amazon/Citation patterns rely on, e.g. C="music",
// R>2, V>5000).
//
// Graphs are built with a Builder and immutable afterwards. Adjacency is
// stored in CSR (compressed sparse row) form, in both directions: the
// matching algorithms traverse successors when evaluating pattern edges and
// predecessors when propagating match and relevance information upward.
package graph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// NodeID identifies a node of a data graph. IDs are dense: a graph with n
// nodes uses exactly the IDs 0..n-1.
type NodeID = int32

// LabelID identifies an interned label of a Dict.
type LabelID int32

// ValueKind discriminates the type of an attribute Value.
type ValueKind uint8

// The supported attribute kinds.
const (
	KindInt ValueKind = iota
	KindString
)

// Value is a typed attribute value attached to a node.
type Value struct {
	Kind ValueKind
	Int  int64
	Str  string
}

// IntValue returns an integer attribute value.
func IntValue(v int64) Value { return Value{Kind: KindInt, Int: v} }

// StrValue returns a string attribute value.
func StrValue(s string) Value { return Value{Kind: KindString, Str: s} }

// String renders the value for debugging and the text file format.
func (v Value) String() string {
	if v.Kind == KindInt {
		return fmt.Sprintf("%d", v.Int)
	}
	return v.Str
}

// Equal reports whether two values have the same kind and content.
func (v Value) Equal(w Value) bool { return v == w }

// Dict interns label strings to dense LabelIDs so that label comparisons in
// the inner matching loops are integer comparisons.
//
// A Dict is safe for concurrent use: NewBuilderWithDict shares one dict
// across builders, and ApplyDelta interns the labels of appended nodes into
// the dict aliased by the live graph being served, so Intern may run while
// queries resolve labels through ID/Name/Names. Reads sit on per-node hot
// paths (candidate filtering resolves a label per examined node), so they
// are lock-free: the dictionary state is an immutable snapshot behind an
// atomic pointer, and Intern — rare, label alphabets are tiny — publishes a
// fresh copy. Interned labels are never removed or renumbered, so a LabelID
// obtained once stays valid forever.
type Dict struct {
	mu    sync.Mutex // serializes Intern; readers never take it
	state atomic.Pointer[dictState]
}

// dictState is one immutable snapshot of the dictionary.
type dictState struct {
	byName map[string]LabelID
	names  []string
}

// NewDict returns an empty label dictionary.
func NewDict() *Dict {
	d := &Dict{}
	d.state.Store(&dictState{byName: make(map[string]LabelID)})
	return d
}

// Intern returns the ID for name, assigning a fresh one if needed.
func (d *Dict) Intern(name string) LabelID {
	if id, ok := d.state.Load().byName[name]; ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.state.Load()
	if id, ok := st.byName[name]; ok {
		return id
	}
	id := LabelID(len(st.names))
	byName := make(map[string]LabelID, len(st.byName)+1)
	for k, v := range st.byName {
		byName[k] = v
	}
	byName[name] = id
	names := make([]string, len(st.names), len(st.names)+1)
	copy(names, st.names)
	d.state.Store(&dictState{byName: byName, names: append(names, name)})
	return id
}

// ID returns the ID for name and whether it is known.
func (d *Dict) ID(name string) (LabelID, bool) {
	id, ok := d.state.Load().byName[name]
	return id, ok
}

// Name returns the label string for id.
func (d *Dict) Name(id LabelID) string { return d.state.Load().names[id] }

// Size returns the number of interned labels.
func (d *Dict) Size() int { return len(d.state.Load().names) }

// Names returns all interned labels in ID order. The caller must not modify
// the returned slice; Intern publishes fresh snapshots and never writes
// into a published one.
func (d *Dict) Names() []string { return d.state.Load().names }

// Graph is an immutable directed labeled graph. Use a Builder to create one,
// or ApplyDelta to derive the next version of an existing one: dynamic
// workloads are modeled as a sequence of immutable snapshots, each carrying a
// monotonically increasing Version.
type Graph struct {
	n      int
	m      int
	labels []LabelID
	attrs  []map[string]Value // nil entries for attribute-free nodes
	dict   *Dict

	outOff []int32
	outAdj []NodeID
	inOff  []int32
	inAdj  []NodeID

	byLabel map[LabelID][]NodeID

	// version counts the deltas applied since the Builder snapshot: Build
	// returns version 0 and every ApplyDelta increments it by one.
	version uint64

	// cond caches the snapshot's SCC condensation: graphs are immutable, so
	// it is computed at most once and shared by every consumer (the
	// descendant-label index fills all its labels from one condensation, and
	// incremental index maintenance diffs the cached condensations of two
	// adjacent snapshots instead of recomputing either side).
	condOnce sync.Once
	cond     *Condensation
	condSet  atomic.Bool
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return g.n }

// Version returns the graph's snapshot version: 0 for a freshly built graph,
// and one more than its predecessor for every graph produced by ApplyDelta.
// Versions order the snapshots of one update lineage; they are not unique
// across unrelated graphs.
func (g *Graph) Version() uint64 { return g.version }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return g.m }

// Size returns |G| = |V| + |E|, the size measure used throughout the paper.
func (g *Graph) Size() int { return g.n + g.m }

// Dict returns the label dictionary of the graph.
func (g *Graph) Dict() *Dict { return g.dict }

// LabelIDOf returns the interned label of node v.
func (g *Graph) LabelIDOf(v NodeID) LabelID { return g.labels[v] }

// Label returns the label string of node v.
func (g *Graph) Label(v NodeID) string { return g.dict.Name(g.labels[v]) }

// Out returns the successors of v. The caller must not modify the slice.
func (g *Graph) Out(v NodeID) []NodeID { return g.outAdj[g.outOff[v]:g.outOff[v+1]] }

// In returns the predecessors of v. The caller must not modify the slice.
func (g *Graph) In(v NodeID) []NodeID { return g.inAdj[g.inOff[v]:g.inOff[v+1]] }

// OutDegree returns the number of successors of v.
func (g *Graph) OutDegree(v NodeID) int { return int(g.outOff[v+1] - g.outOff[v]) }

// InDegree returns the number of predecessors of v.
func (g *Graph) InDegree(v NodeID) int { return int(g.inOff[v+1] - g.inOff[v]) }

// Attr returns the attribute value stored under key for node v.
func (g *Graph) Attr(v NodeID, key string) (Value, bool) {
	if g.attrs[v] == nil {
		return Value{}, false
	}
	val, ok := g.attrs[v][key]
	return val, ok
}

// AttrKeys returns the attribute keys of node v in sorted order.
func (g *Graph) AttrKeys(v NodeID) []string {
	if g.attrs[v] == nil {
		return nil
	}
	keys := make([]string, 0, len(g.attrs[v]))
	for k := range g.attrs[v] {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// NodesWithLabelID returns all nodes labeled l, in ascending ID order.
// The caller must not modify the returned slice.
func (g *Graph) NodesWithLabelID(l LabelID) []NodeID { return g.byLabel[l] }

// NodesWithLabel returns all nodes whose label string is name.
func (g *Graph) NodesWithLabel(name string) []NodeID {
	id, ok := g.dict.ID(name)
	if !ok {
		return nil
	}
	return g.byLabel[id]
}

// Condensation returns the SCC condensation of the graph's out-adjacency,
// computed on first use and cached for the snapshot's lifetime (graphs are
// immutable, so the condensation never invalidates). Safe for concurrent
// use; concurrent first callers wait for the single computation.
func (g *Graph) Condensation() *Condensation {
	g.condOnce.Do(func() {
		g.cond = CondenseCSR(g.n, g.outOff, g.outAdj)
		g.condSet.Store(true)
	})
	return g.cond
}

// condIfComputed returns the cached condensation if some caller has already
// computed it, and nil otherwise — it never triggers the computation. The
// update path uses it to decide whether an incremental condensation patch has
// a base to start from.
func (g *Graph) condIfComputed() *Condensation {
	if g.condSet.Load() {
		return g.cond
	}
	return nil
}

// adoptCondensation installs a precomputed condensation on a snapshot that no
// reader has seen yet (the update path patches the predecessor's condensation
// forward instead of re-running Tarjan). If a condensation was already
// computed or adopted, the call is a no-op.
func (g *Graph) adoptCondensation(c *Condensation) {
	g.condOnce.Do(func() {
		g.cond = c
		g.condSet.Store(true)
	})
}

// HasEdge reports whether the edge (u, v) exists. It binary-searches the
// sorted successor list of u.
func (g *Graph) HasEdge(u, v NodeID) bool {
	succ := g.Out(u)
	i := sort.Search(len(succ), func(i int) bool { return succ[i] >= v })
	return i < len(succ) && succ[i] == v
}

// Builder accumulates nodes and edges and produces an immutable Graph.
// Duplicate edges are dropped at Build time; self-loops are kept (data graphs
// in the wild contain them and simulation handles them naturally).
type Builder struct {
	labels []LabelID
	attrs  []map[string]Value
	edges  [][2]NodeID
	dict   *Dict
}

// NewBuilder returns an empty Builder with a fresh label dictionary.
func NewBuilder() *Builder {
	return &Builder{dict: NewDict()}
}

// NewBuilderWithDict returns an empty Builder that interns labels into dict,
// allowing several graphs to share an alphabet.
func NewBuilderWithDict(dict *Dict) *Builder {
	return &Builder{dict: dict}
}

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.labels) }

// AddNode appends a node with the given label and optional attributes and
// returns its ID.
func (b *Builder) AddNode(label string, attrs map[string]Value) NodeID {
	id := NodeID(len(b.labels))
	b.labels = append(b.labels, b.dict.Intern(label))
	var m map[string]Value
	if len(attrs) > 0 {
		m = make(map[string]Value, len(attrs))
		for k, v := range attrs {
			m[k] = v
		}
	}
	b.attrs = append(b.attrs, m)
	return id
}

// SetAttr sets one attribute on an existing node.
func (b *Builder) SetAttr(v NodeID, key string, val Value) error {
	if int(v) >= len(b.labels) || v < 0 {
		return fmt.Errorf("graph: SetAttr on unknown node %d", v)
	}
	if b.attrs[v] == nil {
		b.attrs[v] = make(map[string]Value, 1)
	}
	b.attrs[v][key] = val
	return nil
}

// AddEdge appends the directed edge (u, v).
func (b *Builder) AddEdge(u, v NodeID) error {
	n := NodeID(len(b.labels))
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("graph: edge (%d,%d) references unknown node (have %d nodes)", u, v, n)
	}
	b.edges = append(b.edges, [2]NodeID{u, v})
	return nil
}

// Build finalizes the graph. The Builder must not be used afterwards.
func (b *Builder) Build() *Graph {
	n := len(b.labels)
	// Sort and deduplicate edges so successor lists are sorted and unique.
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i][0] != b.edges[j][0] {
			return b.edges[i][0] < b.edges[j][0]
		}
		return b.edges[i][1] < b.edges[j][1]
	})
	edges := b.edges[:0]
	for i, e := range b.edges {
		if i > 0 && e == b.edges[i-1] {
			continue
		}
		edges = append(edges, e)
	}
	m := len(edges)

	g := &Graph{
		n:      n,
		m:      m,
		labels: b.labels,
		attrs:  b.attrs,
		dict:   b.dict,
		outOff: make([]int32, n+1),
		outAdj: make([]NodeID, m),
		inOff:  make([]int32, n+1),
		inAdj:  make([]NodeID, m),
	}

	for _, e := range edges {
		g.outOff[e[0]+1]++
		g.inOff[e[1]+1]++
	}
	for i := 0; i < n; i++ {
		g.outOff[i+1] += g.outOff[i]
		g.inOff[i+1] += g.inOff[i]
	}
	outNext := make([]int32, n)
	inNext := make([]int32, n)
	copy(outNext, g.outOff[:n])
	copy(inNext, g.inOff[:n])
	for _, e := range edges {
		g.outAdj[outNext[e[0]]] = e[1]
		outNext[e[0]]++
		g.inAdj[inNext[e[1]]] = e[0]
		inNext[e[1]]++
	}
	// In-adjacency within each node is filled in ascending source order
	// because edges were sorted by (src, dst); re-sorting per node keeps the
	// invariant explicit even if the fill order changes.
	for v := 0; v < n; v++ {
		in := g.inAdj[g.inOff[v]:g.inOff[v+1]]
		sort.Slice(in, func(i, j int) bool { return in[i] < in[j] })
	}

	g.byLabel = make(map[LabelID][]NodeID)
	for v, l := range g.labels {
		g.byLabel[l] = append(g.byLabel[l], NodeID(v))
	}
	return g
}
