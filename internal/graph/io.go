package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode"
)

// Text file format for data graphs, one directive per line:
//
//	# comment
//	node <id> <label> [key=value ...]
//	edge <src> <dst>
//
// Node IDs must be dense (0..n-1) but may appear in any order; values are
// stored as integers when they parse as such, strings otherwise (the format
// is deliberately simple and unquoted). This is the on-disk format of
// cmd/graphgen and cmd/topkmatch.
//
// Because the format is whitespace-delimited with '='-separated attributes,
// not every in-memory graph is encodable: labels and attribute keys must be
// non-empty and free of whitespace and '=', and string attribute values
// must be free of whitespace and '=' and must not themselves parse as
// integers (Read would silently change their type). Write rejects
// unencodable graphs with an error instead of emitting a file Read would
// reject or mis-parse, so a successful Write always round-trips.

// checkToken validates one emitted token (label, key or string value).
func checkToken(kind string, v NodeID, s string) error {
	if s == "" && kind != "string value" {
		return fmt.Errorf("graph: write: node %d: empty %s is not encodable", v, kind)
	}
	// Read tokenizes with strings.Fields, which splits on unicode.IsSpace —
	// so any Unicode space (NBSP, U+2000…) is unencodable, not just ASCII.
	if strings.ContainsRune(s, '=') || strings.IndexFunc(s, unicode.IsSpace) >= 0 {
		return fmt.Errorf("graph: write: node %d: %s %q contains whitespace or '=' and is not encodable", v, kind, s)
	}
	return nil
}

// Write serializes g to w in the text format. It returns an error — before
// writing the offending line — when g contains a label, attribute key or
// string value the format cannot represent (see the format comment above).
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# divtopk graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())
	for v := NodeID(0); v < NodeID(g.NumNodes()); v++ {
		if err := checkToken("label", v, g.Label(v)); err != nil {
			return err
		}
		fmt.Fprintf(bw, "node %d %s", v, g.Label(v))
		for _, k := range g.AttrKeys(v) {
			val, _ := g.Attr(v, k)
			if err := checkToken("attribute key", v, k); err != nil {
				return err
			}
			if val.Kind == KindString {
				if err := checkToken("string value", v, val.Str); err != nil {
					return fmt.Errorf("%w (key %q)", err, k)
				}
				if _, err := strconv.ParseInt(val.Str, 10, 64); err == nil {
					return fmt.Errorf("graph: write: node %d: string value %q of key %q would re-parse as an integer and is not encodable", v, val.Str, k)
				}
			}
			fmt.Fprintf(bw, " %s=%s", k, val)
		}
		fmt.Fprintln(bw)
	}
	for v := NodeID(0); v < NodeID(g.NumNodes()); v++ {
		for _, u := range g.Out(v) {
			fmt.Fprintf(bw, "edge %d %d\n", v, u)
		}
	}
	return bw.Flush()
}

// Read parses a graph in the text format. It validates density of node IDs
// and edge endpoints and reports the first error with its line number.
func Read(r io.Reader) (*Graph, error) {
	type nodeDecl struct {
		label string
		attrs map[string]Value
	}
	type edgeDecl struct {
		src, dst NodeID
		line     int
	}
	nodes := make(map[NodeID]nodeDecl)
	var edges []edgeDecl
	maxID := NodeID(-1)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "node":
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: line %d: node needs id and label", lineNo)
			}
			id, err := parseNodeID(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
			if _, dup := nodes[id]; dup {
				return nil, fmt.Errorf("graph: line %d: duplicate node %d", lineNo, id)
			}
			decl := nodeDecl{label: fields[2]}
			if len(fields) > 3 {
				decl.attrs = make(map[string]Value, len(fields)-3)
				for _, kv := range fields[3:] {
					k, v, ok := strings.Cut(kv, "=")
					if !ok || k == "" {
						return nil, fmt.Errorf("graph: line %d: bad attribute %q", lineNo, kv)
					}
					decl.attrs[k] = parseValue(v)
				}
			}
			nodes[id] = decl
			if id > maxID {
				maxID = id
			}
		case "edge":
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: edge needs src and dst", lineNo)
			}
			src, err := parseNodeID(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
			dst, err := parseNodeID(fields[2])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
			edges = append(edges, edgeDecl{src: src, dst: dst, line: lineNo})
		default:
			return nil, fmt.Errorf("graph: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}

	n := int(maxID) + 1
	if len(nodes) != n {
		return nil, fmt.Errorf("graph: node IDs not dense: %d declarations, max id %d", len(nodes), maxID)
	}
	// Validate edge endpoints against the declared node range here rather
	// than deferring to Builder.AddEdge, so the error carries the line
	// number like every other parse error. (Edges may precede their node
	// declarations, hence the post-pass.)
	for _, e := range edges {
		for _, end := range [2]NodeID{e.src, e.dst} {
			if int(end) >= n {
				return nil, fmt.Errorf("graph: line %d: edge (%d,%d): endpoint %d beyond declared nodes (have %d)",
					e.line, e.src, e.dst, end, n)
			}
		}
	}
	b := NewBuilder()
	for id := NodeID(0); id < NodeID(n); id++ {
		decl := nodes[id]
		b.AddNode(decl.label, decl.attrs)
	}
	for _, e := range edges {
		if err := b.AddEdge(e.src, e.dst); err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", e.line, err)
		}
	}
	return b.Build(), nil
}

func parseNodeID(s string) (NodeID, error) {
	id, err := strconv.ParseInt(s, 10, 32)
	if err != nil || id < 0 {
		return 0, fmt.Errorf("bad node id %q", s)
	}
	return NodeID(id), nil
}

// parseValue interprets v as an integer when possible, else as a string.
func parseValue(v string) Value {
	if i, err := strconv.ParseInt(v, 10, 64); err == nil {
		return IntValue(i)
	}
	return StrValue(v)
}
