package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// mergeTestGraph builds the small fixed graph the directed merge cases run
// against: A→B, B→C, A→C.
func mergeTestGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	a := b.AddNode("A", nil)
	bb := b.AddNode("B", nil)
	c := b.AddNode("C", nil)
	for _, e := range [][2]NodeID{{a, bb}, {bb, c}, {a, c}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestDeltaMergeDuplicateInsertNoop(t *testing.T) {
	g := mergeTestGraph(t)
	d := &Delta{}
	var o1, o2 Delta
	o1.InsertEdge(2, 0)
	o2.InsertEdge(2, 0) // same edge again, from a later request
	o2.InsertEdge(2, 1)
	if err := d.Merge(g, &o1); err != nil {
		t.Fatal(err)
	}
	if err := d.Merge(g, &o2); err != nil {
		t.Fatal(err)
	}
	if len(d.EdgeInserts) != 2 {
		t.Fatalf("duplicate insert not deduplicated: %v", d.EdgeInserts)
	}
	// Inserting an edge the base graph already has stays a no-op through
	// the merge, exactly as it is for a standalone delta.
	var o3 Delta
	o3.InsertEdge(0, 1)
	if err := d.Merge(g, &o3); err != nil {
		t.Fatal(err)
	}
	g2, err := ApplyDelta(g, d)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 5 || !g2.HasEdge(2, 0) || !g2.HasEdge(2, 1) {
		t.Fatalf("merged apply produced wrong edge set: %d edges", g2.NumEdges())
	}
}

func TestDeltaMergeInsertThenDeleteCancels(t *testing.T) {
	g := mergeTestGraph(t)

	// The inserted edge is new: the delete cancels it outright.
	d := &Delta{}
	var ins, del Delta
	ins.InsertEdge(2, 0)
	del.DeleteEdge(2, 0)
	if err := d.Merge(g, &ins); err != nil {
		t.Fatal(err)
	}
	if err := d.Merge(g, &del); err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatalf("insert-then-delete did not cancel: %+v", d)
	}

	// The inserted edge already exists in the base: the insert was a no-op
	// there, so the delete must survive as a delete of the base edge.
	d = &Delta{}
	var ins2, del2 Delta
	ins2.InsertEdge(0, 1)
	del2.DeleteEdge(0, 1)
	if err := d.Merge(g, &ins2); err != nil {
		t.Fatal(err)
	}
	if err := d.Merge(g, &del2); err != nil {
		t.Fatal(err)
	}
	if len(d.EdgeInserts) != 0 || len(d.EdgeDeletes) != 1 {
		t.Fatalf("delete of a base edge lost through cancellation: %+v", d)
	}
	g2, err := ApplyDelta(g, d)
	if err != nil {
		t.Fatal(err)
	}
	if g2.HasEdge(0, 1) {
		t.Fatal("base edge survived the merged delete")
	}

	// Deleting an edge that neither base nor the pending inserts contain is
	// the same lost-sync error a standalone delta gets.
	var bogus Delta
	bogus.DeleteEdge(2, 1)
	if err := d.Merge(g, &bogus); err == nil {
		t.Fatal("merge accepted a delete of a nonexistent edge")
	}
	// The failed merge left d untouched.
	if len(d.EdgeInserts) != 0 || len(d.EdgeDeletes) != 1 {
		t.Fatalf("failed merge mutated the batch: %+v", d)
	}
}

func TestDeltaMergeDeleteThenReinsert(t *testing.T) {
	// Deletes apply before inserts within one delta, so a delete followed by
	// a reinsert of the same base edge must keep both: the net effect is the
	// edge present, and dropping either half would instead error (delete of
	// a kept edge) or lose the edge.
	g := mergeTestGraph(t)
	d := &Delta{}
	var del, ins Delta
	del.DeleteEdge(0, 1)
	ins.InsertEdge(0, 1)
	if err := d.Merge(g, &del); err != nil {
		t.Fatal(err)
	}
	if err := d.Merge(g, &ins); err != nil {
		t.Fatal(err)
	}
	if len(d.EdgeDeletes) != 1 || len(d.EdgeInserts) != 1 {
		t.Fatalf("delete-then-reinsert collapsed: %+v", d)
	}
	g2, err := ApplyDelta(g, d)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.HasEdge(0, 1) || g2.NumEdges() != 3 {
		t.Fatalf("delete-then-reinsert lost the edge: %d edges", g2.NumEdges())
	}
}

func TestDeltaMergeAppendOffsets(t *testing.T) {
	// Each merged request's appends land after everything already in the
	// batch; endpoints referencing them must resolve to the same IDs the
	// sequential application would have assigned.
	g := mergeTestGraph(t)
	d := &Delta{}
	var o1 Delta
	i1 := o1.AddNode("D", nil)
	o1.InsertEdge(0, NodeID(g.NumNodes()+i1)) // 0 → 3
	if err := d.Merge(g, &o1); err != nil {
		t.Fatal(err)
	}
	var o2 Delta
	i2 := o2.AddNode("E", nil)
	// o2 was built against g+o1: its own append is node 4, o1's is node 3.
	o2.InsertEdge(NodeID(g.NumNodes()+1+i2), 3) // 4 → 3
	if err := d.Merge(g, &o2); err != nil {
		t.Fatal(err)
	}
	// Deleting an edge incident to a batch-appended node that the batch never
	// inserted is rejected: sequentially that delete would fail too, since no
	// such edge exists.
	var o3 Delta
	o3.DeleteEdge(3, 0)
	if err := d.Merge(g, &o3); err == nil {
		t.Fatal("merge accepted a delete of a nonexistent edge at a batch-appended node")
	}
	g2, err := ApplyDelta(g, d)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 5 || !g2.HasEdge(0, 3) || !g2.HasEdge(4, 3) {
		t.Fatalf("append offsets resolved wrong: nodes=%d out(0)=%v out(4)=%v", g2.NumNodes(), g2.Out(0), g2.Out(4))
	}
	if g2.Label(3) != "D" || g2.Label(4) != "E" {
		t.Fatalf("append labels landed wrong: %q %q", g2.Label(3), g2.Label(4))
	}
	// Deleting an edge an earlier batch member inserted to an appended node is
	// the cancellation case, exactly as the sequential chain would see it:
	// node 3 exists there with the edge present, and the delete removes it.
	var o4 Delta
	o4.DeleteEdge(0, 3)
	if err := d.Merge(g, &o4); err != nil {
		t.Fatal(err)
	}
	g3, err := ApplyDelta(g, d)
	if err != nil {
		t.Fatal(err)
	}
	if g3.NumNodes() != 5 || g3.HasEdge(0, 3) || !g3.HasEdge(4, 3) {
		t.Fatalf("cancellation at an appended node resolved wrong: nodes=%d out(0)=%v", g3.NumNodes(), g3.Out(0))
	}
}

func TestMergeSummaries(t *testing.T) {
	a := &DeltaSummary{OldNodes: 10, NewNodes: 11, TouchedSources: []NodeID{1, 3}, InsertHeads: []NodeID{2}, DeleteHeads: []NodeID{5}}
	b := &DeltaSummary{OldNodes: 11, NewNodes: 11, TouchedSources: []NodeID{3, 4}, InsertHeads: []NodeID{2, 9}, DeleteHeads: nil}
	m, err := MergeSummaries(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.OldNodes != 10 || m.NewNodes != 11 {
		t.Fatalf("node span %d→%d", m.OldNodes, m.NewNodes)
	}
	wantTS := []NodeID{1, 3, 4}
	for i, v := range m.TouchedSources {
		if v != wantTS[i] {
			t.Fatalf("touched sources %v", m.TouchedSources)
		}
	}
	if len(m.InsertHeads) != 2 || len(m.DeleteHeads) != 1 {
		t.Fatalf("head sets %v %v", m.InsertHeads, m.DeleteHeads)
	}
	if _, err := MergeSummaries(b, a); err == nil {
		t.Fatal("accepted summaries out of sequence")
	}
}

// TestDeltaMergeRandomizedEquivalence is the structural half of the
// group-commit guarantee: applying K random deltas sequentially and applying
// their Merge in one ApplyDeltaVersionStep call must produce structurally
// identical graphs (CSR arrays included) at the same final version, with the
// merged summary agreeing on the node span.
func TestDeltaMergeRandomizedEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dict := NewDict()
			b := NewBuilderWithDict(dict)
			n0 := 20 + rng.Intn(20)
			for i := 0; i < n0; i++ {
				b.AddNode(fmt.Sprintf("L%d", rng.Intn(4)), nil)
			}
			edges := map[[2]NodeID]bool{}
			for len(edges) < 60 {
				e := [2]NodeID{NodeID(rng.Intn(n0)), NodeID(rng.Intn(n0))}
				if !edges[e] {
					edges[e] = true
					if err := b.AddEdge(e[0], e[1]); err != nil {
						t.Fatal(err)
					}
				}
			}
			base := b.Build()

			for round := 0; round < 4; round++ {
				k := 1 + rng.Intn(5)
				merged := &Delta{}
				seq := base
				var seqSum *DeltaSummary
				for i := 0; i < k; i++ {
					// Mine the delta against the sequential head so it is
					// valid for the chain, then fold it into the batch.
					// Deletes stay below the batch's base node count: a
					// delete incident to a node an earlier batch member
					// appended is exactly the case Merge rejects (and the
					// server coalescer turns into a per-request failure).
					d := randomMergeDelta(rng, seq, base.NumNodes())
					var sum *DeltaSummary
					var err error
					seq, sum, err = ApplyDeltaWithSummary(seq, d)
					if err != nil {
						t.Fatalf("round %d step %d: sequential apply: %v", round, i, err)
					}
					if err := merged.Merge(base, d); err != nil {
						t.Fatalf("round %d step %d: merge: %v", round, i, err)
					}
					if seqSum == nil {
						seqSum = sum
					} else if seqSum, err = MergeSummaries(seqSum, sum); err != nil {
						t.Fatalf("round %d step %d: summary merge: %v", round, i, err)
					}
				}
				got, gotSum, err := ApplyDeltaVersionStep(base, merged, uint64(k))
				if err != nil {
					t.Fatalf("round %d: merged apply: %v", round, err)
				}
				if got.Version() != seq.Version() {
					t.Fatalf("round %d: merged version %d, sequential %d", round, got.Version(), seq.Version())
				}
				if gotSum.OldNodes != seqSum.OldNodes || gotSum.NewNodes != seqSum.NewNodes {
					t.Fatalf("round %d: summary span %d→%d vs %d→%d", round, gotSum.OldNodes, gotSum.NewNodes, seqSum.OldNodes, seqSum.NewNodes)
				}
				assertDeltaGraphsEqual(t, fmt.Sprintf("round %d", round), got, seq)
				base = seq
			}
		})
	}
}

// randomMergeDelta mines a random valid delta against g: appends, inserts
// (possibly duplicated, self-loops, incident to its own appends, or already
// present), and deletes of edges present in g with both endpoints below
// delCap that the delta does not also insert.
func randomMergeDelta(rng *rand.Rand, g *Graph, delCap int) *Delta {
	var d Delta
	n := g.NumNodes()
	for a := rng.Intn(3); a > 0; a-- {
		d.AddNode(fmt.Sprintf("L%d", rng.Intn(5)), nil)
	}
	nNew := n + len(d.NodeAppends)
	for a := rng.Intn(6); a > 0; a-- {
		d.InsertEdge(NodeID(rng.Intn(nNew)), NodeID(rng.Intn(nNew)))
	}
	del := rng.Intn(3)
	for v := NodeID(0); int(v) < delCap && del > 0; v++ {
		for _, w := range g.Out(v) {
			if int(w) >= delCap || rng.Intn(8) != 0 {
				continue
			}
			skip := false
			for _, e := range d.EdgeInserts {
				if e == [2]NodeID{v, w} {
					skip = true
					break
				}
			}
			if !skip {
				d.DeleteEdge(v, w)
				del--
				if del == 0 {
					break
				}
			}
		}
		if del == 0 {
			break
		}
	}
	return &d
}
