package graph

import (
	"math"
	"sync"

	"divtopk/internal/bitset"
)

// Reachable returns the set of nodes reachable from v by a path of one or
// more edges (v itself is included only if it lies on a cycle). This is the
// reachability notion behind the paper's relevant sets: "descendants" of a
// node are the targets of non-empty paths.
func Reachable(g *Graph, from NodeID) *bitset.Set {
	out := bitset.New(g.NumNodes())
	queue := make([]NodeID, 0, 16)
	for _, w := range g.Out(from) {
		if out.Add(int(w)) {
			queue = append(queue, w)
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, w := range g.Out(v) {
			if out.Add(int(w)) {
				queue = append(queue, w)
			}
		}
	}
	return out
}

// BFSDist returns the directed BFS distance (in edges) from src to every
// node; unreachable nodes get -1. Used by the distance-based diversity
// function of §3.4.
func BFSDist(g *Graph, src NodeID) []int32 {
	return BFSDistInto(g, src, nil)
}

// BFSDistInto is BFSDist with a caller-supplied result buffer: when dist has
// sufficient capacity it is reused (and returned resliced to NumNodes),
// otherwise a fresh slice is allocated. Callers scoring many match pairs
// against the same graph reuse one buffer instead of allocating O(|V|) per
// pair. The BFS queue comes from the shared scratch pool, so a reused buffer
// makes the whole call allocation-free.
func BFSDistInto(g *Graph, src NodeID, dist []int32) []int32 {
	n := g.NumNodes()
	if cap(dist) >= n {
		dist = dist[:n]
	} else {
		dist = make([]int32, n)
	}
	for i := range dist {
		dist[i] = -1
	}
	sc := bfsPool.Get().(*bfsScratch)
	queue := sc.queue[:0]
	dist[src] = 0
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range g.Out(v) {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	sc.queue = queue
	bfsPool.Put(sc)
	return dist
}

// bfsScratch is the reusable state of point-to-point Distance queries: an
// epoch-stamped visited/distance pair (seen[v] == epoch marks v settled in
// the current call, so no O(|V|) clearing between calls) and the BFS queue.
type bfsScratch struct {
	seen  []int32
	dist  []int32
	epoch int32
	queue []NodeID
}

// bfsPool recycles scratch across Distance calls; the δd distance scoring of
// the diversified algorithms issues one such query per match pair, and the
// pool makes its steady state allocation-free.
var bfsPool = sync.Pool{New: func() any { return new(bfsScratch) }}

// grab prepares the scratch for a graph with n nodes and bumps the epoch.
func (sc *bfsScratch) grab(n int) {
	if len(sc.seen) < n {
		sc.seen = make([]int32, n)
		sc.dist = make([]int32, n)
		sc.epoch = 0
	}
	if sc.epoch == math.MaxInt32 {
		for i := range sc.seen {
			sc.seen[i] = 0
		}
		sc.epoch = 0
	}
	sc.epoch++
	sc.queue = sc.queue[:0]
}

// Distance returns the length of the shortest directed path from src to dst,
// or -1 if dst is unreachable. It stops the BFS as soon as dst is settled.
// The visited set is an epoch-stamped array from a shared pool rather than a
// per-call map, so repeated queries (δd scoring issues one per match pair)
// allocate nothing in the steady state.
func Distance(g *Graph, src, dst NodeID) int32 {
	if src == dst {
		return 0
	}
	sc := bfsPool.Get().(*bfsScratch)
	sc.grab(g.NumNodes())
	seen, dist, epoch := sc.seen, sc.dist, sc.epoch
	queue := sc.queue
	seen[src] = epoch
	dist[src] = 0
	queue = append(queue, src)
	found := int32(-1)
loop:
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range g.Out(v) {
			if seen[w] != epoch {
				seen[w] = epoch
				dist[w] = dist[v] + 1
				if w == dst {
					found = dist[w]
					break loop
				}
				queue = append(queue, w)
			}
		}
	}
	sc.queue = queue
	bfsPool.Put(sc)
	return found
}

// InducedSubgraph returns the subgraph of g induced by keep (a set of node
// IDs) plus a mapping from new IDs back to the original ones. Attribute maps
// are shared, not copied. It is used to materialize the "graphs induced by
// relevant sets" of the paper's case study (Fig. 4).
func InducedSubgraph(g *Graph, keep []NodeID) (*Graph, []NodeID) {
	idx := make(map[NodeID]NodeID, len(keep))
	b := NewBuilderWithDict(g.Dict())
	orig := make([]NodeID, 0, len(keep))
	for _, v := range keep {
		if _, ok := idx[v]; ok {
			continue
		}
		nv := b.AddNode(g.Label(v), nil)
		b.attrs[nv] = g.attrs[v]
		idx[v] = nv
		orig = append(orig, v)
	}
	for v, nv := range idx {
		for _, w := range g.Out(v) {
			if nw, ok := idx[w]; ok {
				// Node IDs come from idx, so AddEdge cannot fail.
				_ = b.AddEdge(nv, nw)
			}
		}
	}
	return b.Build(), orig
}
