package graph

import "divtopk/internal/bitset"

// Reachable returns the set of nodes reachable from v by a path of one or
// more edges (v itself is included only if it lies on a cycle). This is the
// reachability notion behind the paper's relevant sets: "descendants" of a
// node are the targets of non-empty paths.
func Reachable(g *Graph, from NodeID) *bitset.Set {
	out := bitset.New(g.NumNodes())
	queue := make([]NodeID, 0, 16)
	for _, w := range g.Out(from) {
		if out.Add(int(w)) {
			queue = append(queue, w)
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, w := range g.Out(v) {
			if out.Add(int(w)) {
				queue = append(queue, w)
			}
		}
	}
	return out
}

// BFSDist returns the directed BFS distance (in edges) from src to every
// node; unreachable nodes get -1. Used by the distance-based diversity
// function of §3.4.
func BFSDist(g *Graph, src NodeID) []int32 {
	dist := make([]int32, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Out(v) {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Distance returns the length of the shortest directed path from src to dst,
// or -1 if dst is unreachable. It stops the BFS as soon as dst is settled.
func Distance(g *Graph, src, dst NodeID) int32 {
	if src == dst {
		return 0
	}
	dist := make(map[NodeID]int32, 64)
	queue := []NodeID{src}
	dist[src] = 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Out(v) {
			if _, ok := dist[w]; !ok {
				dist[w] = dist[v] + 1
				if w == dst {
					return dist[w]
				}
				queue = append(queue, w)
			}
		}
	}
	return -1
}

// InducedSubgraph returns the subgraph of g induced by keep (a set of node
// IDs) plus a mapping from new IDs back to the original ones. Attribute maps
// are shared, not copied. It is used to materialize the "graphs induced by
// relevant sets" of the paper's case study (Fig. 4).
func InducedSubgraph(g *Graph, keep []NodeID) (*Graph, []NodeID) {
	idx := make(map[NodeID]NodeID, len(keep))
	b := NewBuilderWithDict(g.Dict())
	orig := make([]NodeID, 0, len(keep))
	for _, v := range keep {
		if _, ok := idx[v]; ok {
			continue
		}
		nv := b.AddNode(g.Label(v), nil)
		b.attrs[nv] = g.attrs[v]
		idx[v] = nv
		orig = append(orig, v)
	}
	for v, nv := range idx {
		for _, w := range g.Out(v) {
			if nw, ok := idx[w]; ok {
				// Node IDs come from idx, so AddEdge cannot fail.
				_ = b.AddEdge(nv, nw)
			}
		}
	}
	return b.Build(), orig
}
