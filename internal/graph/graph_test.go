package graph

import (
	"math/rand"
	"testing"
)

// buildTest constructs a small labeled graph:
//
//	0:a -> 1:b -> 2:c
//	0:a -> 2:c
//	2:c -> 0:a   (cycle 0->1->2->0 and 0->2->0)
//	3:b (isolated)
func buildTest(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	a := b.AddNode("a", map[string]Value{"x": IntValue(7)})
	n1 := b.AddNode("b", nil)
	n2 := b.AddNode("c", map[string]Value{"name": StrValue("last")})
	b.AddNode("b", nil)
	for _, e := range [][2]NodeID{{a, n1}, {a, n2}, {n1, n2}, {n2, a}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestBuilderAndAccessors(t *testing.T) {
	g := buildTest(t)
	if g.NumNodes() != 4 || g.NumEdges() != 4 || g.Size() != 8 {
		t.Fatalf("sizes wrong: n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if g.Label(0) != "a" || g.Label(1) != "b" || g.Label(3) != "b" {
		t.Fatal("labels wrong")
	}
	if got := g.Out(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Out(0) = %v", got)
	}
	if got := g.In(2); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("In(2) = %v", got)
	}
	if g.OutDegree(3) != 0 || g.InDegree(3) != 0 {
		t.Fatal("isolated node should have degree 0")
	}
	if v, ok := g.Attr(0, "x"); !ok || v.Int != 7 {
		t.Fatal("int attribute lost")
	}
	if v, ok := g.Attr(2, "name"); !ok || v.Str != "last" {
		t.Fatal("string attribute lost")
	}
	if _, ok := g.Attr(1, "x"); ok {
		t.Fatal("phantom attribute")
	}
	bs := g.NodesWithLabel("b")
	if len(bs) != 2 || bs[0] != 1 || bs[1] != 3 {
		t.Fatalf("NodesWithLabel(b) = %v", bs)
	}
	if g.NodesWithLabel("zzz") != nil {
		t.Fatal("unknown label should give nil")
	}
	if !g.HasEdge(0, 2) || g.HasEdge(2, 1) {
		t.Fatal("HasEdge wrong")
	}
}

func TestBuilderDedupesEdges(t *testing.T) {
	b := NewBuilder()
	x := b.AddNode("a", nil)
	y := b.AddNode("a", nil)
	for i := 0; i < 5; i++ {
		if err := b.AddEdge(x, y); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("expected dedup to 1 edge, got %d", g.NumEdges())
	}
}

func TestBuilderRejectsBadEdge(t *testing.T) {
	b := NewBuilder()
	b.AddNode("a", nil)
	if err := b.AddEdge(0, 1); err == nil {
		t.Fatal("edge to unknown node accepted")
	}
	if err := b.AddEdge(-1, 0); err == nil {
		t.Fatal("negative endpoint accepted")
	}
	if err := b.SetAttr(5, "k", IntValue(1)); err == nil {
		t.Fatal("SetAttr on unknown node accepted")
	}
}

func TestSelfLoopKept(t *testing.T) {
	b := NewBuilder()
	v := b.AddNode("a", nil)
	if err := b.AddEdge(v, v); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if g.NumEdges() != 1 || !g.HasEdge(v, v) {
		t.Fatal("self-loop lost")
	}
	cond := CondenseGraph(g)
	if !cond.Nontrivial[cond.Comp[v]] {
		t.Fatal("self-loop SCC should be nontrivial")
	}
}

func TestCondenseSmall(t *testing.T) {
	g := buildTest(t)
	cond := CondenseGraph(g)
	// Nodes 0,1,2 form one SCC; node 3 is its own.
	if cond.NumComps != 2 {
		t.Fatalf("NumComps = %d, want 2", cond.NumComps)
	}
	if cond.Comp[0] != cond.Comp[1] || cond.Comp[1] != cond.Comp[2] {
		t.Fatal("cycle nodes not in one SCC")
	}
	if cond.Comp[3] == cond.Comp[0] {
		t.Fatal("isolated node merged into cycle SCC")
	}
	if !cond.Nontrivial[cond.Comp[0]] || cond.Nontrivial[cond.Comp[3]] {
		t.Fatal("Nontrivial flags wrong")
	}
	// Both SCCs are sinks in the condensation, so both have rank 0.
	if cond.Rank[cond.Comp[0]] != 0 || cond.Rank[cond.Comp[3]] != 0 {
		t.Fatal("ranks wrong")
	}
}

func TestCondenseChainRanks(t *testing.T) {
	// 0 -> 1 -> 2 -> 3, ranks must be 3,2,1,0.
	b := NewBuilder()
	for i := 0; i < 4; i++ {
		b.AddNode("a", nil)
	}
	for i := 0; i < 3; i++ {
		if err := b.AddEdge(NodeID(i), NodeID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	cond := CondenseGraph(g)
	if cond.NumComps != 4 {
		t.Fatalf("NumComps = %d, want 4", cond.NumComps)
	}
	for i := 0; i < 4; i++ {
		if got := cond.NodeRank(NodeID(i)); got != int32(3-i) {
			t.Fatalf("rank(%d) = %d, want %d", i, got, 3-i)
		}
	}
	// Condensation edges: topological property Comp[u] > Comp[v].
	for u := NodeID(0); u < 3; u++ {
		if cond.Comp[u] <= cond.Comp[u+1] {
			t.Fatal("SCC indices not reverse topological")
		}
	}
}

// randomGraph builds a random digraph for property tests.
func randomGraph(rng *rand.Rand, n, m int, labels []string) *Graph {
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(labels[rng.Intn(len(labels))], nil)
	}
	for i := 0; i < m; i++ {
		// Errors impossible: endpoints in range.
		_ = b.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
	}
	return b.Build()
}

// reachClosure computes reachability (>=1 step) by naive BFS per node.
func reachClosure(g *Graph) [][]bool {
	n := g.NumNodes()
	r := make([][]bool, n)
	for v := 0; v < n; v++ {
		r[v] = make([]bool, n)
		var stack []NodeID
		for _, w := range g.Out(NodeID(v)) {
			if !r[v][w] {
				r[v][w] = true
				stack = append(stack, w)
			}
		}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Out(x) {
				if !r[v][w] {
					r[v][w] = true
					stack = append(stack, w)
				}
			}
		}
	}
	return r
}

func TestCondenseAgainstReachabilityReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(24)
		m := rng.Intn(3 * n)
		g := randomGraph(rng, n, m, []string{"a", "b"})
		closure := reachClosure(g)
		cond := CondenseGraph(g)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				sameSCC := cond.Comp[u] == cond.Comp[v]
				wantSame := u == v || (closure[u][v] && closure[v][u])
				if sameSCC != wantSame {
					t.Fatalf("trial %d: SCC(%d,%d)=%v want %v", trial, u, v, sameSCC, wantSame)
				}
			}
			// Nontrivial iff u reaches itself.
			if cond.Nontrivial[cond.Comp[u]] != closure[u][u] && len(cond.Members[cond.Comp[u]]) == 1 {
				t.Fatalf("trial %d: Nontrivial wrong for %d", trial, u)
			}
		}
		// Edge orientation property of Tarjan indices.
		for u := NodeID(0); u < NodeID(n); u++ {
			for _, w := range g.Out(u) {
				if cond.Comp[u] != cond.Comp[w] && cond.Comp[u] < cond.Comp[w] {
					t.Fatalf("trial %d: condensation indices not reverse-topological", trial)
				}
			}
		}
		// Rank property: rank 0 iff no condensation successors; else 1+max.
		for c := 0; c < cond.NumComps; c++ {
			want := int32(0)
			for _, s := range cond.Succ[c] {
				if cond.Rank[s]+1 > want {
					want = cond.Rank[s] + 1
				}
			}
			if cond.Rank[c] != want {
				t.Fatalf("trial %d: rank(%d) = %d, want %d", trial, c, cond.Rank[c], want)
			}
		}
	}
}

func TestReachableAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(20)
		g := randomGraph(rng, n, rng.Intn(3*n), []string{"a"})
		closure := reachClosure(g)
		for v := 0; v < n; v++ {
			got := Reachable(g, NodeID(v))
			for w := 0; w < n; w++ {
				if got.Contains(w) != closure[v][w] {
					t.Fatalf("Reachable(%d) disagrees at %d", v, w)
				}
			}
		}
	}
}

func TestBFSDistAndDistance(t *testing.T) {
	// 0 -> 1 -> 2, 0 -> 2, 3 isolated.
	b := NewBuilder()
	for i := 0; i < 4; i++ {
		b.AddNode("a", nil)
	}
	mustEdge(t, b, 0, 1)
	mustEdge(t, b, 1, 2)
	mustEdge(t, b, 0, 2)
	g := b.Build()
	d := BFSDist(g, 0)
	want := []int32{0, 1, 1, -1}
	for i, w := range want {
		if d[i] != w {
			t.Fatalf("BFSDist[%d] = %d, want %d", i, d[i], w)
		}
	}
	if Distance(g, 0, 2) != 1 || Distance(g, 2, 0) != -1 || Distance(g, 1, 1) != 0 {
		t.Fatal("Distance wrong")
	}
}

func mustEdge(t *testing.T, b *Builder, u, v NodeID) {
	t.Helper()
	if err := b.AddEdge(u, v); err != nil {
		t.Fatal(err)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := buildTest(t)
	sub, orig := InducedSubgraph(g, []NodeID{0, 2, 2})
	if sub.NumNodes() != 2 {
		t.Fatalf("induced nodes = %d, want 2", sub.NumNodes())
	}
	if len(orig) != 2 || orig[0] != 0 || orig[1] != 2 {
		t.Fatalf("orig mapping = %v", orig)
	}
	// Edges 0->2 and 2->0 survive; 0->1 does not.
	if sub.NumEdges() != 2 {
		t.Fatalf("induced edges = %d, want 2", sub.NumEdges())
	}
	if sub.Label(0) != "a" || sub.Label(1) != "c" {
		t.Fatal("induced labels wrong")
	}
}

func TestDescendantLabelCountsExactSmall(t *testing.T) {
	g := buildTest(t) // cycle {0,1,2}, labels a,b,c; node 3:b isolated
	la, _ := g.Dict().ID("a")
	lb, _ := g.Dict().ID("b")
	lc, _ := g.Dict().ID("c")
	counts := DescendantLabelCounts(g, []LabelID{la, lb, lc}, DescExact)
	// All of 0,1,2 reach {0,1,2} (cycle): one a, one b, one c each.
	for _, v := range []NodeID{0, 1, 2} {
		if counts[0][v] != 1 || counts[1][v] != 1 || counts[2][v] != 1 {
			t.Fatalf("cycle node %d counts = a:%d b:%d c:%d, want 1,1,1",
				v, counts[0][v], counts[1][v], counts[2][v])
		}
	}
	// Node 3 reaches nothing.
	if counts[0][3] != 0 || counts[1][3] != 0 || counts[2][3] != 0 {
		t.Fatal("isolated node should have zero counts")
	}
}

func TestDescendantLabelCountsPropertyExactVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	labels := []string{"a", "b", "c"}
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(18)
		g := randomGraph(rng, n, rng.Intn(3*n), labels)
		closure := reachClosure(g)
		var ids []LabelID
		for _, l := range labels {
			id := g.Dict().Intern(l)
			ids = append(ids, id)
		}
		exact := DescendantLabelCounts(g, ids, DescExact)
		loose := DescendantLabelCounts(g, ids, DescLoose)
		for li, l := range ids {
			for v := 0; v < n; v++ {
				want := int32(0)
				for w := 0; w < n; w++ {
					if closure[v][w] && g.LabelIDOf(NodeID(w)) == l {
						want++
					}
				}
				if exact[li][v] != want {
					t.Fatalf("trial %d: exact[%s][%d] = %d, want %d",
						trial, labels[li], v, exact[li][v], want)
				}
				if loose[li][v] < want {
					t.Fatalf("trial %d: loose bound %d below exact %d", trial, loose[li][v], want)
				}
			}
		}
	}
}

func TestComputeStats(t *testing.T) {
	g := buildTest(t)
	s := ComputeStats(g)
	if s.Nodes != 4 || s.Edges != 4 || s.Labels != 3 {
		t.Fatalf("stats sizes wrong: %+v", s)
	}
	if s.IsDAG {
		t.Fatal("graph with cycle reported as DAG")
	}
	if s.LargestSCC != 3 || s.SCCs != 2 {
		t.Fatalf("SCC stats wrong: %+v", s)
	}
	if s.LabelHistogram["b"] != 2 {
		t.Fatal("label histogram wrong")
	}
	if s.String() == "" {
		t.Fatal("empty stats string")
	}
}

func TestDictSharing(t *testing.T) {
	d := NewDict()
	b1 := NewBuilderWithDict(d)
	b1.AddNode("x", nil)
	b2 := NewBuilderWithDict(d)
	b2.AddNode("y", nil)
	b2.AddNode("x", nil)
	g1, g2 := b1.Build(), b2.Build()
	if g1.LabelIDOf(0) != g2.LabelIDOf(1) {
		t.Fatal("shared dict should intern x identically")
	}
	if d.Size() != 2 {
		t.Fatalf("dict size = %d, want 2", d.Size())
	}
	if name := d.Name(g1.LabelIDOf(0)); name != "x" {
		t.Fatalf("Name = %q", name)
	}
}
