package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestIORoundtrip(t *testing.T) {
	g := buildTest(t)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, g2)
}

func assertGraphsEqual(t *testing.T, g, g2 *Graph) {
	t.Helper()
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("roundtrip size mismatch: %d/%d vs %d/%d",
			g.NumNodes(), g.NumEdges(), g2.NumNodes(), g2.NumEdges())
	}
	for v := NodeID(0); v < NodeID(g.NumNodes()); v++ {
		if g.Label(v) != g2.Label(v) {
			t.Fatalf("label mismatch at %d", v)
		}
		a, b := g.Out(v), g2.Out(v)
		if len(a) != len(b) {
			t.Fatalf("degree mismatch at %d", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("adjacency mismatch at %d", v)
			}
		}
		for _, k := range g.AttrKeys(v) {
			want, _ := g.Attr(v, k)
			got, ok := g2.Attr(v, k)
			if !ok || got != want {
				t.Fatalf("attr %s mismatch at %d: %v vs %v", k, v, got, want)
			}
		}
	}
}

func TestIORoundtripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(30)
		g := randomGraph(rng, n, rng.Intn(4*n), []string{"x", "y", "z"})
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := Read(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertGraphsEqual(t, g, g2)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"bad directive", "frob 1 2\n"},
		{"node missing label", "node 0\n"},
		{"bad node id", "node x a\n"},
		{"negative node id", "node -1 a\n"},
		{"duplicate node", "node 0 a\nnode 0 b\n"},
		{"edge arity", "edge 0\n"},
		{"edge bad src", "node 0 a\nedge x 0\n"},
		{"edge unknown node", "node 0 a\nedge 0 1\n"},
		{"sparse ids", "node 0 a\nnode 2 b\n"},
		{"bad attr", "node 0 a =v\n"},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestReadEmptyAndComments(t *testing.T) {
	g, err := Read(strings.NewReader("# nothing but comments\n\n  \n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty input should give empty graph")
	}
}

func TestReadAttrTypes(t *testing.T) {
	g, err := Read(strings.NewReader("node 0 video C=music V=5000\n"))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := g.Attr(0, "C"); v.Kind != KindString || v.Str != "music" {
		t.Fatalf("C = %+v", v)
	}
	if v, _ := g.Attr(0, "V"); v.Kind != KindInt || v.Int != 5000 {
		t.Fatalf("V = %+v", v)
	}
}
