package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestIORoundtrip(t *testing.T) {
	g := buildTest(t)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, g2)
}

func assertGraphsEqual(t *testing.T, g, g2 *Graph) {
	t.Helper()
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("roundtrip size mismatch: %d/%d vs %d/%d",
			g.NumNodes(), g.NumEdges(), g2.NumNodes(), g2.NumEdges())
	}
	for v := NodeID(0); v < NodeID(g.NumNodes()); v++ {
		if g.Label(v) != g2.Label(v) {
			t.Fatalf("label mismatch at %d", v)
		}
		a, b := g.Out(v), g2.Out(v)
		if len(a) != len(b) {
			t.Fatalf("degree mismatch at %d", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("adjacency mismatch at %d", v)
			}
		}
		for _, k := range g.AttrKeys(v) {
			want, _ := g.Attr(v, k)
			got, ok := g2.Attr(v, k)
			if !ok || got != want {
				t.Fatalf("attr %s mismatch at %d: %v vs %v", k, v, got, want)
			}
		}
	}
}

func TestIORoundtripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(30)
		g := randomGraph(rng, n, rng.Intn(4*n), []string{"x", "y", "z"})
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := Read(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertGraphsEqual(t, g, g2)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"bad directive", "frob 1 2\n"},
		{"node missing label", "node 0\n"},
		{"bad node id", "node x a\n"},
		{"negative node id", "node -1 a\n"},
		{"duplicate node", "node 0 a\nnode 0 b\n"},
		{"edge arity", "edge 0\n"},
		{"edge bad src", "node 0 a\nedge x 0\n"},
		{"edge unknown node", "node 0 a\nedge 0 1\n"},
		{"sparse ids", "node 0 a\nnode 2 b\n"},
		{"bad attr", "node 0 a =v\n"},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestReadEmptyAndComments(t *testing.T) {
	g, err := Read(strings.NewReader("# nothing but comments\n\n  \n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty input should give empty graph")
	}
}

func TestReadAttrTypes(t *testing.T) {
	g, err := Read(strings.NewReader("node 0 video C=music V=5000\n"))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := g.Attr(0, "C"); v.Kind != KindString || v.Str != "music" {
		t.Fatalf("C = %+v", v)
	}
	if v, _ := g.Attr(0, "V"); v.Kind != KindInt || v.Int != 5000 {
		t.Fatalf("V = %+v", v)
	}
}

func TestWriteRejectsUnencodableValues(t *testing.T) {
	build := func(mutate func(b *Builder)) *Graph {
		b := NewBuilder()
		b.AddNode("a", nil)
		mutate(b)
		return b.Build()
	}
	cases := []struct {
		name string
		g    *Graph
	}{
		{"value with space", build(func(b *Builder) {
			_ = b.SetAttr(0, "k", StrValue("two words"))
		})},
		{"value with equals", build(func(b *Builder) {
			_ = b.SetAttr(0, "k", StrValue("a=b"))
		})},
		{"value with newline", build(func(b *Builder) {
			_ = b.SetAttr(0, "k", StrValue("a\nb"))
		})},
		{"value with unicode space", build(func(b *Builder) {
			_ = b.SetAttr(0, "k", StrValue("a\u00a0b"))
		})},
		{"value re-parses as int", build(func(b *Builder) {
			_ = b.SetAttr(0, "k", StrValue("42"))
		})},
		{"key with space", build(func(b *Builder) {
			_ = b.SetAttr(0, "bad key", IntValue(1))
		})},
		{"key with equals", build(func(b *Builder) {
			_ = b.SetAttr(0, "k=v", IntValue(1))
		})},
		{"empty key", build(func(b *Builder) {
			_ = b.SetAttr(0, "", IntValue(1))
		})},
		{"label with space", func() *Graph {
			b := NewBuilder()
			b.AddNode("two words", nil)
			return b.Build()
		}()},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		if err := Write(&buf, c.g); err == nil {
			t.Errorf("%s: Write succeeded, want error", c.name)
		}
	}
}

func TestWriteAllowsEncodableValues(t *testing.T) {
	b := NewBuilder()
	b.AddNode("a", map[string]Value{
		"s":     StrValue("music"),
		"empty": StrValue(""),
		"i":     IntValue(-7),
		"mixed": StrValue("4x2"),
	})
	g := b.Build()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, g2)
}

func TestReadEdgeRangeErrorHasLineNumber(t *testing.T) {
	cases := []struct {
		name, in, wantLine string
	}{
		{"edge after nodes", "node 0 a\nnode 1 b\nedge 1 5\n", "line 3"},
		{"edge before nodes", "edge 3 0\nnode 0 a\n", "line 1"},
		{"edge with no nodes", "edge 0 0\n", "line 1"},
	}
	for _, c := range cases {
		_, err := Read(strings.NewReader(c.in))
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantLine) {
			t.Errorf("%s: error %q does not name %s", c.name, err, c.wantLine)
		}
	}
}

// TestIORoundtripPropertyAttrs is the randomized Write/Read round-trip
// property test over graphs with typed attributes: every graph Write
// accepts must come back from Read structurally identical, attributes and
// value types included.
func TestIORoundtripPropertyAttrs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	strValues := []string{"music", "film_clip", "x", "", "4x2", "a-b.c", "#tag"}
	keys := []string{"C", "R", "V", "year", "group"}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		b := NewBuilder()
		labels := []string{"video", "user", "paper"}
		for i := 0; i < n; i++ {
			id := b.AddNode(labels[rng.Intn(len(labels))], nil)
			for _, k := range keys {
				switch rng.Intn(3) {
				case 0:
					_ = b.SetAttr(id, k, IntValue(int64(rng.Intn(10000)-5000)))
				case 1:
					_ = b.SetAttr(id, k, StrValue(strValues[rng.Intn(len(strValues))]))
				}
			}
		}
		for i := 0; i < rng.Intn(3*n); i++ {
			_ = b.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
		}
		g := b.Build()
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		g2, err := Read(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertGraphsEqual(t, g, g2)
		// assertGraphsEqual walks g's attrs; also check g2 gained none.
		for v := NodeID(0); v < NodeID(n); v++ {
			if len(g2.AttrKeys(v)) != len(g.AttrKeys(v)) {
				t.Fatalf("trial %d: node %d attr count changed", trial, v)
			}
		}
	}
}
