package graph

// Incremental condensation maintenance for the update path. On graphs with a
// large strongly connected core, re-running Tarjan per delta dominates the
// whole index-maintenance budget (tens of milliseconds on the benchmark
// graphs), yet almost every churn delta provably leaves the SCC partition
// intact: appended nodes start as fresh singletons, intra-component inserts
// change nothing structural, and inter-component edges only rewire the
// condensed DAG. PatchCondensation exploits exactly those cases and bails
// out — conservatively, to a full recompute — on everything else.

// patchScanCap bounds the total adjacency entries the delete survivor scans
// may read before the patch gives up. Deletes between two huge components
// would otherwise degenerate into scanning a large fraction of the graph,
// at which point a full Tarjan run is no worse.
const patchScanCap = 4096

// PatchCondensation derives gNew's condensation from gOld's, where gNew =
// gOld + a delta whose deduplicated edge inserts and deletes are ins and del
// (endpoints of del reference gOld nodes only, as ApplyDelta guarantees).
// It returns nil when the delta may have changed the SCC partition in a way
// the patch cannot cheaply verify — the caller then falls back to the full
// recompute. A non-nil result is exact: the same partition Tarjan would
// find, under a (possibly different, but equally valid) reverse-topological
// numbering.
//
// The patch keeps every old component as-is and adds one singleton per
// appended node, then verifies that partition against gNew:
//
//   - an intra-component delete could split the component — bail;
//   - an intra-component insert changes nothing (a self-loop marks a
//     trivial component Nontrivial);
//   - an inter-component insert adds a condensed-DAG edge;
//   - an inter-component delete removes the condensed-DAG edge only if no
//     parallel node-level edge survives in gNew (checked by scanning the
//     smaller side's adjacency, capped at patchScanCap entries — bail
//     beyond that);
//
// and finally re-derives a reverse-topological numbering of the tentative
// condensed DAG with a deterministic Kahn pass. If the pass completes, the
// DAG is acyclic, every part is strongly connected internally, and the
// partition therefore equals gNew's SCC partition; if it stalls, inserted
// edges have merged components — bail. Member slices are shared with the
// old condensation (node membership of surviving components is unchanged).
func PatchCondensation(old *Condensation, gOld, gNew *Graph, ins, del [][2]NodeID) *Condensation {
	nOld := gOld.NumNodes()
	nNew := gNew.NumNodes()
	nComp := old.NumComps
	k := nNew - nOld
	nTent := nComp + k

	// Tentative component of a gNew node: old membership for old nodes, a
	// fresh singleton per appended node.
	tentComp := func(x NodeID) int32 {
		if int(x) < nOld {
			return old.Comp[x]
		}
		return int32(nComp + int(x) - nOld)
	}

	flip := make(map[int32]bool)
	addedSet := make(map[[2]int32]bool)
	var added [][2]int32
	for _, e := range ins {
		cu, cv := tentComp(e[0]), tentComp(e[1])
		if e[0] == e[1] {
			if int(cu) < nComp && old.Nontrivial[cu] {
				continue
			}
			flip[cu] = true
			continue
		}
		if cu == cv {
			// Endpoints already strongly connected (the component has >= 2
			// members, so it is already Nontrivial).
			continue
		}
		p := [2]int32{cu, cv}
		if !addedSet[p] {
			addedSet[p] = true
			added = append(added, p)
		}
	}

	removed := make(map[[2]int32]bool)
	checked := make(map[[2]int32]bool)
	scanned := 0
	for _, e := range del {
		cu, cv := old.Comp[e[0]], old.Comp[e[1]]
		if cu == cv {
			return nil // possible split of a strongly connected component
		}
		p := [2]int32{cu, cv}
		if checked[p] {
			continue
		}
		checked[p] = true
		// Exact survivor check against gNew: does any node-level edge from
		// cu to cv remain? Scan whichever side has fewer members, through
		// the matching adjacency direction.
		survives := false
		if len(old.Members[cu]) <= len(old.Members[cv]) {
			for _, x := range old.Members[cu] {
				succ := gNew.Out(x)
				scanned += len(succ)
				if scanned > patchScanCap {
					return nil
				}
				for _, w := range succ {
					if tentComp(w) == cv {
						survives = true
						break
					}
				}
				if survives {
					break
				}
			}
		} else {
			for _, y := range old.Members[cv] {
				pred := gNew.In(y)
				scanned += len(pred)
				if scanned > patchScanCap {
					return nil
				}
				for _, w := range pred {
					if tentComp(w) == cu {
						survives = true
						break
					}
				}
				if survives {
					break
				}
			}
		}
		if !survives {
			removed[p] = true
		}
	}

	// Fast path: the condensed DAG is structurally untouched. With no
	// appends the numbering stays valid too, so only Nontrivial can differ.
	if k == 0 && len(added) == 0 && len(removed) == 0 {
		if len(flip) == 0 {
			return old
		}
		nontrivial := make([]bool, nComp)
		copy(nontrivial, old.Nontrivial)
		for c := range flip {
			nontrivial[c] = true
		}
		return &Condensation{
			Comp:       old.Comp,
			NumComps:   old.NumComps,
			Members:    old.Members,
			Succ:       old.Succ,
			Pred:       old.Pred,
			Rank:       old.Rank,
			Nontrivial: nontrivial,
		}
	}

	// Tentative successor lists under the edits, deduplicated via a stamp
	// array (old lists are already deduplicated; added edges may coincide
	// with surviving old ones).
	var addedSucc map[int32][]int32
	if len(added) > 0 {
		addedSucc = make(map[int32][]int32, len(added))
		for _, p := range added {
			addedSucc[p[0]] = append(addedSucc[p[0]], p[1])
		}
	}
	stamp := make([]int32, nTent)
	for i := range stamp {
		stamp[i] = -1
	}
	succTent := make([][]int32, nTent)
	totalSucc := 0
	for c := 0; c < nTent; c++ {
		var out []int32
		if c < nComp {
			oldSucc := old.Succ[c]
			if len(removed) == 0 {
				out = append(out, oldSucc...)
				for _, s := range oldSucc {
					stamp[s] = int32(c)
				}
			} else {
				for _, s := range oldSucc {
					if removed[[2]int32{int32(c), s}] {
						continue
					}
					stamp[s] = int32(c)
					out = append(out, s)
				}
			}
		}
		for _, s := range addedSucc[int32(c)] {
			if stamp[s] == int32(c) {
				continue
			}
			stamp[s] = int32(c)
			out = append(out, s)
		}
		succTent[c] = out
		totalSucc += len(out)
	}

	// Tentative predecessor CSR, filled in ascending source order so the
	// Kahn pass below is deterministic.
	predCnt := make([]int32, nTent)
	for _, succ := range succTent {
		for _, s := range succ {
			predCnt[s]++
		}
	}
	predOff := make([]int32, nTent+1)
	for c := 0; c < nTent; c++ {
		predOff[c+1] = predOff[c] + predCnt[c]
	}
	predAdj := make([]int32, totalSucc)
	fill := make([]int32, nTent)
	copy(fill, predOff[:nTent])
	for c := 0; c < nTent; c++ {
		for _, s := range succTent[c] {
			predAdj[fill[s]] = int32(c)
			fill[s]++
		}
	}

	// Deterministic Kahn pass, sinks first: a component is numbered once
	// all its successors are, so ascending new index is a reverse
	// topological order — the numbering invariant every consumer relies on.
	outdeg := make([]int32, nTent)
	queue := make([]int32, 0, nTent)
	for c := 0; c < nTent; c++ {
		outdeg[c] = int32(len(succTent[c]))
		if outdeg[c] == 0 {
			queue = append(queue, int32(c))
		}
	}
	perm := make([]int32, nTent)
	next := int32(0)
	for qi := 0; qi < len(queue); qi++ {
		c := queue[qi]
		perm[c] = next
		next++
		for _, p := range predAdj[predOff[c]:predOff[c+1]] {
			outdeg[p]--
			if outdeg[p] == 0 {
				queue = append(queue, p)
			}
		}
	}
	if int(next) != nTent {
		return nil // a cycle: inserted edges merged components
	}

	// Materialize the patched condensation under the new numbering.
	comp := make([]int32, nNew)
	for x := 0; x < nOld; x++ {
		comp[x] = perm[old.Comp[x]]
	}
	for i := 0; i < k; i++ {
		comp[nOld+i] = perm[int32(nComp+i)]
	}
	members := make([][]int32, nTent)
	nontrivial := make([]bool, nTent)
	for c := 0; c < nComp; c++ {
		nc := perm[c]
		members[nc] = old.Members[c]
		nontrivial[nc] = old.Nontrivial[c] || flip[int32(c)]
	}
	singles := make([]int32, k)
	for i := 0; i < k; i++ {
		tc := int32(nComp + i)
		nc := perm[tc]
		singles[i] = int32(nOld + i)
		members[nc] = singles[i : i+1 : i+1]
		nontrivial[nc] = flip[tc]
	}

	succ := make([][]int32, nTent)
	pred := make([][]int32, nTent)
	succBuf := make([]int32, totalSucc)
	predBuf := make([]int32, totalSucc)
	inCnt := make([]int32, nTent)
	for c := 0; c < nTent; c++ {
		for _, s := range succTent[c] {
			inCnt[perm[s]]++
		}
	}
	off := 0
	for c := 0; c < nTent; c++ {
		pred[c] = predBuf[off : off : off+int(inCnt[c])]
		off += int(inCnt[c])
	}
	inv := make([]int32, nTent)
	for t, n := range perm {
		inv[n] = int32(t)
	}
	off = 0
	for nc := 0; nc < nTent; nc++ {
		lst := succTent[inv[nc]]
		s := succBuf[off : off+len(lst)]
		for i, os := range lst {
			s[i] = perm[os]
		}
		succ[nc] = s
		off += len(lst)
		for _, ns := range s {
			pred[ns] = append(pred[ns], int32(nc))
		}
	}

	rank := make([]int32, nTent)
	for c := 0; c < nTent; c++ {
		r := int32(0)
		for _, s := range succ[c] {
			if rank[s]+1 > r {
				r = rank[s] + 1
			}
		}
		rank[c] = r
	}

	return &Condensation{
		Comp:       comp,
		NumComps:   nTent,
		Members:    members,
		Succ:       succ,
		Pred:       pred,
		Rank:       rank,
		Nontrivial: nontrivial,
	}
}
