package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes the structure of a graph; cmd/graphgen prints it so that
// generated datasets can be sanity-checked against the shapes the paper's
// datasets have (scale-free degrees, label alphabet size, DAG-ness of the
// citation network, and so on).
type Stats struct {
	Nodes, Edges   int
	Labels         int
	MaxOutDegree   int
	MaxInDegree    int
	AvgDegree      float64
	SCCs           int
	LargestSCC     int
	IsDAG          bool
	LabelHistogram map[string]int
}

// ComputeStats gathers Stats for g.
func ComputeStats(g *Graph) Stats {
	s := Stats{
		Nodes:          g.NumNodes(),
		Edges:          g.NumEdges(),
		Labels:         g.Dict().Size(),
		LabelHistogram: make(map[string]int),
	}
	for v := NodeID(0); v < NodeID(g.NumNodes()); v++ {
		if d := g.OutDegree(v); d > s.MaxOutDegree {
			s.MaxOutDegree = d
		}
		if d := g.InDegree(v); d > s.MaxInDegree {
			s.MaxInDegree = d
		}
		s.LabelHistogram[g.Label(v)]++
	}
	if g.NumNodes() > 0 {
		s.AvgDegree = float64(g.NumEdges()) / float64(g.NumNodes())
	}
	cond := CondenseGraph(g)
	s.SCCs = cond.NumComps
	s.IsDAG = true
	for c := 0; c < cond.NumComps; c++ {
		if len(cond.Members[c]) > s.LargestSCC {
			s.LargestSCC = len(cond.Members[c])
		}
		if cond.Nontrivial[c] {
			s.IsDAG = false
		}
	}
	return s
}

// String renders the stats as a small report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "nodes=%d edges=%d labels=%d avg-deg=%.2f max-out=%d max-in=%d sccs=%d largest-scc=%d dag=%v\n",
		s.Nodes, s.Edges, s.Labels, s.AvgDegree, s.MaxOutDegree, s.MaxInDegree, s.SCCs, s.LargestSCC, s.IsDAG)
	labels := make([]string, 0, len(s.LabelHistogram))
	for l := range s.LabelHistogram {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		fmt.Fprintf(&b, "  label %-16s %d\n", l, s.LabelHistogram[l])
	}
	return b.String()
}
