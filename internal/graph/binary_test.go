package graph

import (
	"bytes"
	"reflect"
	"testing"
)

// buildSnapshotFixture returns a graph exercising every serialized feature:
// several labels, int and string attributes, attribute-free nodes, a node
// with no edges, and a version > 0 from an applied delta.
func buildSnapshotFixture(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	b.AddNode("movie", map[string]Value{"R": IntValue(4), "C": StrValue("music")})
	b.AddNode("user", nil)
	b.AddNode("movie", map[string]Value{"V": IntValue(-9000)})
	b.AddNode("tag", nil)
	for _, e := range [][2]NodeID{{0, 1}, {1, 2}, {2, 0}, {1, 3}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	d := &Delta{}
	d.AddNode("user", map[string]Value{"name": StrValue("x")})
	d.InsertEdge(4, 0)
	d.DeleteEdge(1, 3)
	g2, err := ApplyDelta(g, d)
	if err != nil {
		t.Fatal(err)
	}
	return g2
}

// assertBinaryGraphsEqual compares two graphs structurally: dimensions, version,
// label alphabet, per-node labels, attributes, and both adjacency directions.
func assertBinaryGraphsEqual(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.n != want.n || got.m != want.m || got.version != want.version {
		t.Fatalf("shape = (n=%d m=%d v=%d), want (n=%d m=%d v=%d)",
			got.n, got.m, got.version, want.n, want.m, want.version)
	}
	if !reflect.DeepEqual(got.dict.Names(), want.dict.Names()) {
		t.Fatalf("dict = %v, want %v", got.dict.Names(), want.dict.Names())
	}
	for v := NodeID(0); int(v) < want.n; v++ {
		if got.Label(v) != want.Label(v) {
			t.Fatalf("node %d label = %q, want %q", v, got.Label(v), want.Label(v))
		}
		if !reflect.DeepEqual(got.Out(v), want.Out(v)) {
			t.Fatalf("node %d out = %v, want %v", v, got.Out(v), want.Out(v))
		}
		if !reflect.DeepEqual(got.In(v), want.In(v)) {
			t.Fatalf("node %d in = %v, want %v", v, got.In(v), want.In(v))
		}
		gk, wk := got.AttrKeys(v), want.AttrKeys(v)
		if !reflect.DeepEqual(gk, wk) {
			t.Fatalf("node %d attr keys = %v, want %v", v, gk, wk)
		}
		for _, k := range wk {
			gv, _ := got.Attr(v, k)
			wv, _ := want.Attr(v, k)
			if gv != wv {
				t.Fatalf("node %d attr %q = %v, want %v", v, k, gv, wv)
			}
		}
	}
	for _, name := range want.dict.Names() {
		if !reflect.DeepEqual(got.NodesWithLabel(name), want.NodesWithLabel(name)) {
			t.Fatalf("label %q nodes = %v, want %v", name, got.NodesWithLabel(name), want.NodesWithLabel(name))
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	t.Parallel()
	g := buildSnapshotFixture(t)
	data := WriteBinary(g)
	got, err := ReadBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	assertBinaryGraphsEqual(t, got, g)
}

func TestBinaryEmptyGraph(t *testing.T) {
	t.Parallel()
	g := NewBuilder().Build()
	got, err := ReadBinary(WriteBinary(g))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != 0 || got.NumEdges() != 0 || got.Version() != 0 {
		t.Fatalf("empty graph round-trip = n=%d m=%d v=%d", got.NumNodes(), got.NumEdges(), got.Version())
	}
}

func TestBinaryIsDeterministic(t *testing.T) {
	t.Parallel()
	g := buildSnapshotFixture(t)
	if !bytes.Equal(WriteBinary(g), WriteBinary(g)) {
		t.Fatal("same snapshot serialized to different bytes")
	}
}

// TestBinaryRejectsEveryCorruption flips every byte of the file and truncates
// it at every length: the whole-file CRC (or the magic/min-length checks)
// must reject each mutation — a checkpoint either loads exactly or not at all.
func TestBinaryRejectsEveryCorruption(t *testing.T) {
	t.Parallel()
	data := WriteBinary(buildSnapshotFixture(t))
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xff
		if _, err := ReadBinary(mut); err == nil {
			t.Fatalf("corruption at byte %d accepted", i)
		}
	}
	for n := 0; n < len(data); n++ {
		if _, err := ReadBinary(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

// TestBinaryRoundTripPreservesUpdates checks a recovered snapshot keeps
// working as a base for further deltas: the dictionary and CSR arrays must be
// fully functional, not just readable.
func TestBinaryRoundTripPreservesUpdates(t *testing.T) {
	t.Parallel()
	g := buildSnapshotFixture(t)
	got, err := ReadBinary(WriteBinary(g))
	if err != nil {
		t.Fatal(err)
	}
	d := &Delta{}
	d.AddNode("genre", nil)
	d.InsertEdge(NodeID(g.NumNodes()), 0)
	want, err := ApplyDelta(g, d)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := ApplyDelta(got, d)
	if err != nil {
		t.Fatal(err)
	}
	assertBinaryGraphsEqual(t, got2, want)
}
