package graph

// CondenseCSR computes the SCC condensation of a graph given directly in CSR
// form: node v's successors are adj[off[v]:off[v+1]]. It produces exactly the
// Condensation that Condense produces for the same adjacency in the same
// order (the equivalence is property-tested), but traverses slices instead of
// invoking a callback and gathering successor lists, so the DFS performs no
// per-node allocation. The relevant-set kernel condenses a freshly filtered
// product CSR per query, which is why the constant factor here matters.
func CondenseCSR(n int, off []int32, adj []int32) *Condensation {
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	comp := make([]int32, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = -1
	}

	type frame struct {
		v    int32
		next int32 // index into adj of the next successor to visit
	}
	var (
		counter int32
		stack   []int32
		frames  []frame
		nComp   int32
	)

	for root := int32(0); root < int32(n); root++ {
		if index[root] != unvisited {
			continue
		}
		frames = append(frames[:0], frame{v: root, next: off[root]})
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.next < off[f.v+1] {
				w := adj[f.next]
				f.next++
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w, next: off[w]})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				nComp++
			}
		}
	}

	c := &Condensation{
		Comp:       comp,
		NumComps:   int(nComp),
		Members:    make([][]int32, nComp),
		Succ:       make([][]int32, nComp),
		Pred:       make([][]int32, nComp),
		Rank:       make([]int32, nComp),
		Nontrivial: make([]bool, nComp),
	}

	// Members via counting sort into one backing array: a condensation of a
	// per-query product graph has one component per pair in the common
	// (acyclic) case, and per-component appends would dominate the
	// allocation profile.
	memberOff := make([]int32, nComp+1)
	for _, cv := range comp {
		memberOff[cv+1]++
	}
	for i := int32(0); i < nComp; i++ {
		memberOff[i+1] += memberOff[i]
	}
	memberBuf := make([]int32, n)
	next := make([]int32, nComp)
	copy(next, memberOff[:nComp])
	for v := int32(0); v < int32(n); v++ {
		cv := comp[v]
		memberBuf[next[cv]] = v
		next[cv]++
	}
	for i := int32(0); i < nComp; i++ {
		c.Members[i] = memberBuf[memberOff[i]:memberOff[i+1]]
	}

	// Condensed DAG with deduplication, same marking trick as Condense but
	// in two passes over backing arrays (positive stamps count, negative
	// stamps fill), so the per-component slices are subslices, not appends.
	// Both passes walk component by component over the member lists: the
	// stamp only deduplicates exactly when each component's edges are scanned
	// contiguously, and the loose descendant counts sum successor lists
	// without re-deduplicating.
	seen := make([]int32, nComp)
	succCnt := make([]int32, nComp+1)
	predCnt := make([]int32, nComp+1)
	nEdges := int32(0)
	for cv := int32(0); cv < nComp; cv++ {
		for _, v := range c.Members[cv] {
			for e := off[v]; e < off[v+1]; e++ {
				w := adj[e]
				cw := comp[w]
				if cw == cv {
					if w == v {
						c.Nontrivial[cv] = true
					}
					continue
				}
				if seen[cw] != cv+1 {
					seen[cw] = cv + 1
					succCnt[cv+1]++
					predCnt[cw+1]++
					nEdges++
				}
			}
		}
	}
	for i := int32(0); i < nComp; i++ {
		succCnt[i+1] += succCnt[i]
		predCnt[i+1] += predCnt[i]
	}
	succBuf := make([]int32, nEdges)
	predBuf := make([]int32, nEdges)
	succNext := make([]int32, nComp)
	predNext := make([]int32, nComp)
	copy(succNext, succCnt[:nComp])
	copy(predNext, predCnt[:nComp])
	for cv := int32(0); cv < nComp; cv++ {
		for _, v := range c.Members[cv] {
			for e := off[v]; e < off[v+1]; e++ {
				cw := comp[adj[e]]
				if cw == cv {
					continue
				}
				if seen[cw] != -(cv + 1) {
					seen[cw] = -(cv + 1)
					succBuf[succNext[cv]] = cw
					succNext[cv]++
					predBuf[predNext[cw]] = cv
					predNext[cw]++
				}
			}
		}
	}
	for i := int32(0); i < nComp; i++ {
		if succCnt[i] < succCnt[i+1] {
			c.Succ[i] = succBuf[succCnt[i]:succCnt[i+1]]
		}
		if predCnt[i] < predCnt[i+1] {
			c.Pred[i] = predBuf[predCnt[i]:predCnt[i+1]]
		}
	}

	for i := range c.Members {
		if len(c.Members[i]) > 1 {
			c.Nontrivial[i] = true
		}
	}
	for i := 0; i < int(nComp); i++ {
		r := int32(0)
		for _, s := range c.Succ[i] {
			if c.Rank[s]+1 > r {
				r = c.Rank[s] + 1
			}
		}
		c.Rank[i] = r
	}
	return c
}
