package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// assertCondEquivalent verifies that got is a correct condensation of the
// graph whose ground truth is want (a from-scratch CondenseCSR): the same
// partition with the same per-component structure, under any valid
// reverse-topological numbering — the patch is free to number components
// differently from Tarjan, and every consumer is numbering-invariant.
func assertCondEquivalent(t *testing.T, label string, g *Graph, got, want *Condensation) {
	t.Helper()
	if got.NumComps != want.NumComps {
		t.Fatalf("%s: %d components, want %d", label, got.NumComps, want.NumComps)
	}
	if len(got.Comp) != g.NumNodes() {
		t.Fatalf("%s: Comp covers %d nodes, want %d", label, len(got.Comp), g.NumNodes())
	}
	// Partition match: map each got-component to the want-component of its
	// first member and require identical member lists (both ascending).
	toWant := make([]int32, got.NumComps)
	for c := 0; c < got.NumComps; c++ {
		members := got.Members[c]
		if len(members) == 0 {
			t.Fatalf("%s: component %d has no members", label, c)
		}
		w := want.Comp[members[0]]
		toWant[c] = w
		if !sameMembers(members, want.Members[w]) {
			t.Fatalf("%s: component %d members %v, want %v", label, c, members, want.Members[w])
		}
		for _, v := range members {
			if got.Comp[v] != int32(c) {
				t.Fatalf("%s: node %d in Members[%d] but Comp says %d", label, v, c, got.Comp[v])
			}
		}
		if got.Nontrivial[c] != want.Nontrivial[w] {
			t.Fatalf("%s: component %d nontrivial=%v, want %v", label, c, got.Nontrivial[c], want.Nontrivial[w])
		}
		if got.Rank[c] != want.Rank[w] {
			t.Fatalf("%s: component %d rank=%d, want %d", label, c, got.Rank[c], want.Rank[w])
		}
	}
	// DAG match through the mapping, plus the numbering invariant every
	// consumer relies on: successors carry smaller indices.
	stamp := make([]int32, want.NumComps)
	for i := range stamp {
		stamp[i] = -1
	}
	for c := 0; c < got.NumComps; c++ {
		if len(got.Succ[c]) != len(want.Succ[toWant[c]]) {
			t.Fatalf("%s: component %d has %d successors, want %d", label, c, len(got.Succ[c]), len(want.Succ[toWant[c]]))
		}
		for _, s := range want.Succ[toWant[c]] {
			stamp[s] = int32(c)
		}
		for _, s := range got.Succ[c] {
			if s >= int32(c) {
				t.Fatalf("%s: edge %d→%d violates the reverse-topological numbering", label, c, s)
			}
			if stamp[toWant[s]] != int32(c) {
				t.Fatalf("%s: component %d successor %d not in the oracle's set", label, c, s)
			}
		}
		if len(got.Pred[c]) != len(want.Pred[toWant[c]]) {
			t.Fatalf("%s: component %d has %d predecessors, want %d", label, c, len(got.Pred[c]), len(want.Pred[toWant[c]]))
		}
	}
}

// TestPatchCondensationFuzz drives random delta chains through
// ApplyDeltaWithSummary with the predecessor's condensation computed, so
// every apply attempts the incremental patch, and checks each patched
// condensation against a from-scratch Tarjan run of the same snapshot. The
// generator mixes SCC-preserving churn with component merges (cycle
// inserts) and intra-component deletes, so both the patch path and every
// bail-out path are exercised; the test asserts the patch actually fired to
// keep the fuzz honest.
func TestPatchCondensationFuzz(t *testing.T) {
	patched, bailed := 0, 0
	for seed := int64(1); seed <= 15; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dict := NewDict()
			b := NewBuilderWithDict(dict)
			n0 := 20 + rng.Intn(30)
			for i := 0; i < n0; i++ {
				b.AddNode(fmt.Sprintf("L%d", rng.Intn(4)), nil)
			}
			for i := 0; i < 3*n0; i++ {
				_ = b.AddEdge(NodeID(rng.Intn(n0)), NodeID(rng.Intn(n0)))
			}
			g := b.Build()
			g.Condensation() // give the first apply a patch base

			for step := 0; step < 15; step++ {
				d := randomMergeDelta(rng, g, g.NumNodes())
				g2, _, err := ApplyDeltaWithSummary(g, d)
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				oracle := CondenseCSR(g2.n, g2.outOff, g2.outAdj)
				if c := g2.condIfComputed(); c != nil {
					patched++
					assertCondEquivalent(t, fmt.Sprintf("step %d", step), g2, c, oracle)
				} else {
					bailed++
				}
				// Either way the snapshot must end up with a correct
				// condensation for the next step to patch from.
				assertCondEquivalent(t, fmt.Sprintf("step %d (installed)", step), g2, g2.Condensation(), oracle)
				g = g2
			}
		})
	}
	if patched == 0 {
		t.Fatal("the fuzz never exercised the patch path")
	}
	if bailed == 0 {
		t.Fatal("the fuzz never exercised a bail-out path")
	}
}

// TestPatchCondensationEmptyDelta pins the empty-batch shortcut: an empty
// delta shares every array of the predecessor, condensation included, and
// only advances the version.
func TestPatchCondensationEmptyDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := NewBuilder()
	for i := 0; i < 12; i++ {
		b.AddNode(fmt.Sprintf("L%d", i%3), nil)
	}
	for i := 0; i < 30; i++ {
		_ = b.AddEdge(NodeID(rng.Intn(12)), NodeID(rng.Intn(12)))
	}
	g := b.Build()
	cond := g.Condensation()
	g2, sum, err := ApplyDeltaVersionStep(g, &Delta{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Version() != g.Version()+5 {
		t.Fatalf("version %d, want %d", g2.Version(), g.Version()+5)
	}
	if sum.OldNodes != g.NumNodes() || sum.NewNodes != g.NumNodes() {
		t.Fatalf("summary span %d→%d", sum.OldNodes, sum.NewNodes)
	}
	if g2.condIfComputed() != cond {
		t.Fatal("empty delta did not share the predecessor's condensation")
	}
}
