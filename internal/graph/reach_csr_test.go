package graph

import (
	"math/rand"
	"reflect"
	"testing"

	"divtopk/internal/testutil/racedetect"
)

// randomCSR builds a random adjacency in both AdjFunc and CSR forms.
func randomCSR(rng *rand.Rand, n, m int) ([]int32, []int32) {
	adj := make([][]int32, n)
	for i := 0; i < m; i++ {
		u := int32(rng.Intn(n))
		w := int32(rng.Intn(n))
		adj[u] = append(adj[u], w) // duplicates and self-loops allowed
	}
	off := make([]int32, n+1)
	var flat []int32
	for v := 0; v < n; v++ {
		flat = append(flat, adj[v]...)
		off[v+1] = int32(len(flat))
	}
	return off, flat
}

// TestCondenseCSRMatchesCondense pins the CSR Tarjan to the callback
// implementation: identical component numbering, condensed DAG, ranks and
// nontrivial flags for the same adjacency in the same order.
func TestCondenseCSRMatchesCondense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		m := rng.Intn(4 * n)
		off, flat := randomCSR(rng, n, m)
		want := Condense(n, func(v int32, emit func(int32)) {
			for e := off[v]; e < off[v+1]; e++ {
				emit(flat[e])
			}
		})
		got := CondenseCSR(n, off, flat)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d (n=%d m=%d): CondenseCSR diverges\nwant %+v\ngot  %+v",
				trial, n, m, want, got)
		}
	}
}

// TestDistanceMatchesBFSDist checks the epoch-stamped point query against
// the full BFS sweep.
func TestDistanceMatchesBFSDist(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	labels := []string{"x"}
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(30)
		b := NewBuilder()
		for i := 0; i < n; i++ {
			b.AddNode(labels[0], nil)
		}
		for i := 0; i < 3*n; i++ {
			_ = b.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
		}
		g := b.Build()
		for src := NodeID(0); src < NodeID(n); src++ {
			dist := BFSDist(g, src)
			for dst := NodeID(0); dst < NodeID(n); dst++ {
				if got := Distance(g, src, dst); got != dist[dst] {
					t.Fatalf("Distance(%d,%d) = %d, want %d", src, dst, got, dist[dst])
				}
			}
		}
	}
}

// TestBFSDistIntoReusesBuffer verifies the caller-supplied buffer variant
// reuses capacity and produces the same distances.
func TestBFSDistIntoReusesBuffer(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < 5; i++ {
		b.AddNode("x", nil)
	}
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(1, 2)
	_ = b.AddEdge(2, 3)
	g := b.Build()

	buf := make([]int32, 0, 16)
	d1 := BFSDistInto(g, 0, buf)
	if &d1[0] != &buf[:1][0] {
		t.Fatal("BFSDistInto did not reuse the supplied buffer")
	}
	want := BFSDist(g, 0)
	if !reflect.DeepEqual(d1, want) {
		t.Fatalf("BFSDistInto = %v, want %v", d1, want)
	}
	// Second call over the same buffer must fully reset stale state.
	d2 := BFSDistInto(g, 3, d1)
	want2 := BFSDist(g, 3)
	if !reflect.DeepEqual(d2, want2) {
		t.Fatalf("BFSDistInto reuse = %v, want %v", d2, want2)
	}
}

// TestDistanceSteadyStateZeroAlloc locks in the reason for the epoch-stamped
// scratch: repeated point queries allocate nothing once the pool is warm.
func TestDistanceSteadyStateZeroAlloc(t *testing.T) {
	if racedetect.Enabled {
		t.Skip("race runtime instruments allocations")
	}
	b := NewBuilder()
	for i := 0; i < 64; i++ {
		b.AddNode("x", nil)
	}
	for i := 0; i < 63; i++ {
		_ = b.AddEdge(NodeID(i), NodeID(i+1))
	}
	g := b.Build()
	Distance(g, 0, 63) // warm the pool
	allocs := testing.AllocsPerRun(100, func() {
		if Distance(g, 0, 63) != 63 {
			t.Fatal("wrong distance")
		}
		if Distance(g, 63, 0) != -1 {
			t.Fatal("expected unreachable")
		}
	})
	if allocs != 0 {
		t.Fatalf("Distance steady state allocates %.1f per run, want 0", allocs)
	}
}
