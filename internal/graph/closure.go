package graph

// Expand completes worklist to its closure over adj: the caller seeds it
// with already-marked frontier nodes, and for every node on the worklist the
// neighbors enumerated by adj are offered to join. join reports whether w
// newly entered the closure (and is responsible for marking it so a node
// joins at most once); joining nodes are appended and expanded in turn.
// The traversal is a plain FIFO-free worklist sweep — nodes are expanded in
// append order — so for a fixed adj and join the grown worklist is
// deterministic, which the byte-identical-maintenance guarantees of both
// consumers rely on.
//
// This is the shared affected-closure traversal of the incremental
// maintenance layers: simulation.IncCompute chases the revival closure over
// reverse product edges with it, and core.BoundsCache.Advance computes the
// ancestor and descendant closures of a delta's dirty components over the
// condensation with it.
//
// The returned slice may share backing with (and extend) worklist; callers
// must use the return value and not retain the argument.
func Expand(worklist []int32, adj AdjFunc, join func(w int32) bool) []int32 {
	for i := 0; i < len(worklist); i++ {
		adj(worklist[i], func(w int32) {
			if join(w) {
				worklist = append(worklist, w)
			}
		})
	}
	return worklist
}

// ExpandComps is Expand specialized to a condensation's component adjacency
// (Succ for descendant closures, Pred for ancestor closures): it seeds the
// closure with the unmarked entries of seeds, marks membership in in (which
// must be sized NumComps), and returns the component closure in discovery
// order.
func ExpandComps(seeds []int32, adjacency [][]int32, in []bool) []int32 {
	var wl []int32
	for _, c := range seeds {
		if !in[c] {
			in[c] = true
			wl = append(wl, c)
		}
	}
	return Expand(wl, func(c int32, emit func(int32)) {
		for _, w := range adjacency[c] {
			emit(w)
		}
	}, func(w int32) bool {
		if in[w] {
			return false
		}
		in[w] = true
		return true
	})
}
