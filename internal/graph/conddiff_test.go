package graph

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"
)

// buildFrom constructs a graph from an edge list over n unlabeled-ish nodes.
func buildFrom(t *testing.T, n int, edges [][2]NodeID) *Graph {
	t.Helper()
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode("x", nil)
	}
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// applyOne applies a single-delta chain and returns both snapshots' cached
// condensations plus the diff.
func applyOne(t *testing.T, g *Graph, d *Delta) (*Graph, *CondensationDiff) {
	t.Helper()
	g2, _, err := ApplyDeltaWithSummary(g, d)
	if err != nil {
		t.Fatal(err)
	}
	return g2, DiffCondensation(g.Condensation(), g2.Condensation(), g.NumNodes())
}

// TestDiffCondensationStructurallyInvisible pins the giant-SCC fast path:
// deleting an edge inside a cycle that stays strongly connected dirties
// nothing, and neither does inserting an edge between nodes the condensation
// already ordered.
func TestDiffCondensationStructurallyInvisible(t *testing.T) {
	// 0↔1↔2 strongly connected through redundant edges; 3 hangs below.
	g := buildFrom(t, 4, [][2]NodeID{{0, 1}, {1, 2}, {2, 0}, {1, 0}, {2, 3}})

	var d Delta
	d.DeleteEdge(1, 0) // the cycle 0→1→2→0 keeps the SCC intact
	_, diff := applyOne(t, g, &d)
	if diff.NumDirty != 0 {
		t.Fatalf("intra-SCC delete dirtied %d components", diff.NumDirty)
	}

	var d2 Delta
	d2.InsertEdge(0, 2) // 0 and 2 share a component already
	_, diff = applyOne(t, g, &d2)
	if diff.NumDirty != 0 {
		t.Fatalf("intra-SCC insert dirtied %d components", diff.NumDirty)
	}
}

// TestDiffCondensationDetectsChanges pins the three dirty conditions:
// membership changes (splits, merges, appends), successor-set changes, and
// a flipped Nontrivial flag (self-loop churn on a singleton).
func TestDiffCondensationDetectsChanges(t *testing.T) {
	// Split: removing 2→0 breaks the 3-cycle into three singletons.
	g := buildFrom(t, 3, [][2]NodeID{{0, 1}, {1, 2}, {2, 0}})
	var d Delta
	d.DeleteEdge(2, 0)
	g2, diff := applyOne(t, g, &d)
	if diff.NumDirty != g2.Condensation().NumComps {
		t.Fatalf("split: %d dirty, want all %d", diff.NumDirty, g2.Condensation().NumComps)
	}

	// Merge: closing a 2-cycle fuses two singletons.
	g = buildFrom(t, 3, [][2]NodeID{{0, 1}, {1, 2}})
	var dm Delta
	dm.InsertEdge(1, 0)
	g2, diff = applyOne(t, g, &dm)
	merged := g2.Condensation().Comp[0]
	if merged != g2.Condensation().Comp[1] {
		t.Fatal("insert did not merge the components")
	}
	if !diff.DirtyNew[merged] {
		t.Fatal("merged component not dirty")
	}

	// Successor-set change without membership change: a fresh edge to a
	// previously unreachable sink.
	g = buildFrom(t, 3, [][2]NodeID{{0, 1}})
	var ds Delta
	ds.InsertEdge(1, 2)
	g2, diff = applyOne(t, g, &ds)
	c1 := g2.Condensation().Comp[1]
	if !diff.DirtyNew[c1] {
		t.Fatal("component with a new successor not dirty")
	}
	// 0's successor set is unchanged through the matching ({1}'s component
	// matched), so 0 is clean — dirtiness reaches it only through the
	// ancestor closure the consumer computes, never through the diff.
	if c0 := g2.Condensation().Comp[0]; diff.DirtyNew[c0] {
		t.Fatal("component of node 0 dirty despite an unchanged successor set")
	}

	// Nontrivial flip: deleting a singleton's self-loop.
	g = buildFrom(t, 2, [][2]NodeID{{0, 0}, {0, 1}})
	var dl Delta
	dl.DeleteEdge(0, 0)
	g2, diff = applyOne(t, g, &dl)
	if !diff.DirtyNew[g2.Condensation().Comp[0]] {
		t.Fatal("self-loop delete did not dirty the singleton")
	}

	// Appends: the appended node's component is dirty.
	g = buildFrom(t, 2, [][2]NodeID{{0, 1}})
	var da Delta
	da.AddNode("x", nil)
	g2, diff = applyOne(t, g, &da)
	if !diff.DirtyNew[g2.Condensation().Comp[2]] {
		t.Fatal("appended node's component not dirty")
	}
	if diff.NewToOld[g2.Condensation().Comp[2]] != -1 {
		t.Fatal("appended component matched an old one")
	}
}

// TestExpandClosure pins the worklist discipline of the shared traversal.
func TestExpandClosure(t *testing.T) {
	// Chain 0→1→2→3 with a side edge 1→3.
	adj := [][]int32{{1}, {2, 3}, {3}, {}}
	in := make([]bool, 4)
	got := ExpandComps([]int32{0}, adj, in)
	if want := []int32{0, 1, 2, 3}; !slices.Equal(got, want) {
		t.Fatalf("closure %v, want %v", got, want)
	}
	// Seeding twice does not duplicate.
	in2 := make([]bool, 4)
	got = ExpandComps([]int32{2, 2, 3}, adj, in2)
	if want := []int32{2, 3}; !slices.Equal(got, want) {
		t.Fatalf("closure %v, want %v", got, want)
	}
}

// TestDeltaSummaryEndpoints pins the summary's endpoint sets.
func TestDeltaSummaryEndpoints(t *testing.T) {
	g := buildFrom(t, 4, [][2]NodeID{{0, 1}, {1, 2}, {2, 3}})
	var d Delta
	d.AddNode("x", nil)
	d.InsertEdge(3, 4)
	d.InsertEdge(0, 4)
	d.InsertEdge(0, 4) // duplicate collapses
	d.DeleteEdge(1, 2)
	d.DeleteEdge(0, 1)
	g2, sum, err := ApplyDeltaWithSummary(g, &d)
	if err != nil {
		t.Fatal(err)
	}
	if sum.OldNodes != 4 || sum.NewNodes != 5 || sum.Appended() != 1 {
		t.Fatalf("node counts %+v", sum)
	}
	if want := []NodeID{0, 1, 3}; !slices.Equal(sum.TouchedSources, want) {
		t.Fatalf("TouchedSources %v, want %v", sum.TouchedSources, want)
	}
	if want := []NodeID{4}; !slices.Equal(sum.InsertHeads, want) {
		t.Fatalf("InsertHeads %v, want %v", sum.InsertHeads, want)
	}
	if want := []NodeID{1, 2}; !slices.Equal(sum.DeleteHeads, want) {
		t.Fatalf("DeleteHeads %v, want %v", sum.DeleteHeads, want)
	}
	if g2.NumNodes() != 5 {
		t.Fatalf("nodes %d", g2.NumNodes())
	}
}

// TestDescScopePartialMatchesFull fuzzes the partial recompute directly:
// for random graphs and random affected component sets, Recompute must
// write exactly the full-pass values into the affected rows and leave every
// other row byte-for-byte alone — for both modes.
func TestDescScopePartialMatchesFull(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(40)
		b := NewBuilder()
		labels := 3
		for i := 0; i < n; i++ {
			b.AddNode(fmt.Sprintf("L%d", rng.Intn(labels)), nil)
		}
		m := 2*n + rng.Intn(4*n)
		for i := 0; i < m; i++ {
			_ = b.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
		}
		g := b.Build()
		cond := g.Condensation()

		var affected []int32
		for c := 0; c < cond.NumComps; c++ {
			if rng.Intn(3) == 0 {
				affected = append(affected, int32(c))
			}
		}
		if len(affected) == 0 {
			affected = append(affected, 0)
		}
		scope := NewDescScope(cond, affected)
		inAffected := make([]bool, n)
		for _, c := range affected {
			for _, v := range cond.Members[c] {
				inAffected[v] = true
			}
		}

		for _, mode := range []DescMode{DescExact, DescLoose} {
			var ids []LabelID
			for i := 0; i < labels; i++ {
				if id, ok := g.Dict().ID(fmt.Sprintf("L%d", i)); ok {
					ids = append(ids, id)
				}
			}
			full := DescendantLabelCounts(g, ids, mode)
			for li, id := range ids {
				// Poison the rows: affected rows must be overwritten with
				// the full values, unaffected rows must keep the poison.
				row := make([]int32, n)
				for v := range row {
					row[v] = -7
				}
				scope.Recompute(g, id, mode, row)
				for v := 0; v < n; v++ {
					if inAffected[v] && row[v] != full[li][v] {
						t.Fatalf("seed %d mode %v label %d: row %d = %d, want %d",
							seed, mode, id, v, row[v], full[li][v])
					}
					if !inAffected[v] && row[v] != -7 {
						t.Fatalf("seed %d mode %v label %d: unaffected row %d overwritten to %d",
							seed, mode, id, v, row[v])
					}
				}
			}
		}
	}
}
