package graph

// This file implements strongly connected components and the condensation
// (SCC graph) used throughout the paper: the topological rank r(v) of §4 is
// defined on the SCC graph G_SCC, and both the pattern analysis (Q_SCC for
// TopK) and the relevant-set computation (condensed product graph) need SCCs
// of graphs that exist only implicitly. Tarjan's algorithm is therefore
// implemented iteratively and generically over an adjacency callback.

// AdjFunc enumerates the successors of node v, invoking emit for each one.
type AdjFunc func(v int32, emit func(w int32))

// Condensation describes the SCC decomposition of a directed graph with n
// nodes, together with its condensed DAG and the topological ranks of §4:
// rank(c) = 0 for condensation leaves (out-degree 0), otherwise
// 1 + max(rank of successors).
type Condensation struct {
	// Comp maps each node to its SCC index. SCC indices are a reverse
	// topological order: every edge (u,v) with Comp[u] != Comp[v] satisfies
	// Comp[u] > Comp[v] (Tarjan emits sinks first).
	Comp []int32
	// NumComps is the number of SCCs.
	NumComps int
	// Members lists the nodes of each SCC.
	Members [][]int32
	// Succ is the deduplicated adjacency of the condensed DAG.
	Succ [][]int32
	// Pred is the deduplicated reverse adjacency of the condensed DAG.
	Pred [][]int32
	// Rank is the topological rank of each SCC (0 = leaf).
	Rank []int32
	// Nontrivial reports whether an SCC contains a cycle: more than one
	// member, or a single member with a self-loop.
	Nontrivial []bool
}

// NodeRank returns the topological rank of the SCC containing node v.
func (c *Condensation) NodeRank(v int32) int32 { return c.Rank[c.Comp[v]] }

// tarjanFrame is an explicit stack frame for the iterative Tarjan DFS.
type tarjanFrame struct {
	v    int32
	succ []int32 // successors of v, gathered when the frame is pushed
	next int     // index of the next successor to visit
}

// Condense computes the SCC condensation of the implicit graph with nodes
// 0..n-1 and adjacency adj. It is safe for graphs deep enough to overflow a
// call stack: the DFS is fully iterative.
func Condense(n int, adj AdjFunc) *Condensation {
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	comp := make([]int32, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = -1
	}

	var (
		counter int32
		stack   []int32 // Tarjan's node stack
		frames  []tarjanFrame
		nComp   int32
	)

	succOf := func(v int32) []int32 {
		var out []int32
		adj(v, func(w int32) { out = append(out, w) })
		return out
	}

	for root := int32(0); root < int32(n); root++ {
		if index[root] != unvisited {
			continue
		}
		frames = append(frames[:0], tarjanFrame{v: root, succ: succOf(root)})
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.next < len(f.succ) {
				w := f.succ[f.next]
				f.next++
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, tarjanFrame{v: w, succ: succOf(w)})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Frame finished: pop and propagate lowlink.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				nComp++
			}
		}
	}

	c := &Condensation{
		Comp:       comp,
		NumComps:   int(nComp),
		Members:    make([][]int32, nComp),
		Succ:       make([][]int32, nComp),
		Pred:       make([][]int32, nComp),
		Rank:       make([]int32, nComp),
		Nontrivial: make([]bool, nComp),
	}
	for v := int32(0); v < int32(n); v++ {
		c.Members[comp[v]] = append(c.Members[comp[v]], v)
	}

	// Build the condensed DAG with deduplication. seen[c2] = current source
	// SCC + 1 avoids clearing the mark array between SCCs — which is only
	// exact when each SCC's edges are scanned contiguously, so the walk goes
	// component by component over the member lists rather than in node order
	// (interleaved members of two SCCs sharing a target would otherwise
	// re-stamp each other and emit duplicate condensed edges, and the loose
	// descendant counts sum successor lists without re-deduplicating).
	seen := make([]int32, nComp)
	for cv := int32(0); cv < nComp; cv++ {
		for _, v := range c.Members[cv] {
			adj(v, func(w int32) {
				cw := comp[w]
				if cw == cv {
					if w == v {
						c.Nontrivial[cv] = true
					}
					return
				}
				if seen[cw] != cv+1 {
					seen[cw] = cv + 1
					c.Succ[cv] = append(c.Succ[cv], cw)
					c.Pred[cw] = append(c.Pred[cw], cv)
				}
			})
		}
	}
	for i := range c.Members {
		if len(c.Members[i]) > 1 {
			c.Nontrivial[i] = true
		}
	}

	// Ranks: SCC indices are a reverse topological order (all successors of
	// component i have indices < i), so a single ascending sweep suffices.
	for i := 0; i < int(nComp); i++ {
		r := int32(0)
		for _, s := range c.Succ[i] {
			if c.Rank[s]+1 > r {
				r = c.Rank[s] + 1
			}
		}
		c.Rank[i] = r
	}
	return c
}

// CondenseGraph computes the condensation of g's out-adjacency.
func CondenseGraph(g *Graph) *Condensation {
	return Condense(g.NumNodes(), func(v int32, emit func(int32)) {
		for _, w := range g.Out(v) {
			emit(w)
		}
	})
}
