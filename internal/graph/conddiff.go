package graph

// This file relates the SCC condensations of two adjacent graph snapshots.
// The descendant-label index's rows are a pure function of the condensation
// and the member labels: a node's exact count is the number of labelled
// nodes among the members of the components reachable from its component
// (itself included when nontrivial), and the loose count is the
// deduplicated-DAG path sum over the same structure. Node-level edge churn
// that leaves the condensation untouched — the common case on graphs with a
// giant SCC, where most inserts and deletes land inside the component —
// therefore provably changes no row. DiffCondensation finds the components
// for which that argument fails; everything the incremental index
// maintenance recomputes is seeded from them.

// CondensationDiff describes how the SCC structure moved between two
// snapshots of one update lineage.
type CondensationDiff struct {
	// NewToOld maps each new component to the old component with the
	// identical member set, or -1 when no old component matches (the
	// component gained, lost or exchanged members, or contains appended
	// nodes).
	NewToOld []int32
	// OldToNew is the inverse matching: old components with no identical
	// new component map to -1.
	OldToNew []int32
	// DirtyNew marks the new components whose index rows cannot be proven
	// unchanged by structure alone: membership changed (NewToOld == -1),
	// the successor set changed (compared through the matching), or the
	// Nontrivial flag flipped (a singleton gained or lost its self-loop).
	// Every row change of the descendant-label index originates at a dirty
	// component: a component that reaches no dirty component has, by
	// induction over the reverse topological order, an isomorphic
	// downstream condensation with identical member sets, so both the
	// exact and the loose counts of its members are unchanged.
	DirtyNew []bool
	// NumDirty counts the true entries of DirtyNew.
	NumDirty int
}

// DiffCondensation matches the components of two condensations by member
// set and classifies the new components as clean or dirty; see
// CondensationDiff. oldCond must be the condensation of the snapshot the
// delta was applied to and newCond that of the snapshot it produced
// (appended nodes hold the largest IDs, which is the only ordering fact the
// matching relies on: member lists are ascending in both).
func DiffCondensation(oldCond, newCond *Condensation, oldNodes int) *CondensationDiff {
	d := &CondensationDiff{
		NewToOld: make([]int32, newCond.NumComps),
		OldToNew: make([]int32, oldCond.NumComps),
		DirtyNew: make([]bool, newCond.NumComps),
	}
	for i := range d.OldToNew {
		d.OldToNew[i] = -1
	}
	for cn := 0; cn < newCond.NumComps; cn++ {
		d.NewToOld[cn] = -1
		members := newCond.Members[cn]
		// The smallest member decides the only possible match: member sets
		// are ascending, so equal sets share their first element.
		rep := members[0]
		if int(rep) >= oldNodes {
			continue // contains appended nodes only
		}
		co := oldCond.Comp[rep]
		if !sameMembers(members, oldCond.Members[co]) {
			continue
		}
		d.NewToOld[cn] = co
		d.OldToNew[co] = int32(cn)
	}

	// Successor-set comparison through the matching, with a stamp array so
	// no per-component set is materialized: stamp the old successors of the
	// matched component, then require every new successor to map onto a
	// stamped old component and the counts to agree.
	stamp := make([]int32, oldCond.NumComps)
	for i := range stamp {
		stamp[i] = -1
	}
	for cn := 0; cn < newCond.NumComps; cn++ {
		co := d.NewToOld[cn]
		if co < 0 {
			d.DirtyNew[cn] = true
			continue
		}
		if newCond.Nontrivial[cn] != oldCond.Nontrivial[co] {
			d.DirtyNew[cn] = true
			continue
		}
		succNew, succOld := newCond.Succ[cn], oldCond.Succ[co]
		if len(succNew) != len(succOld) {
			d.DirtyNew[cn] = true
			continue
		}
		for _, s := range succOld {
			stamp[s] = int32(cn)
		}
		for _, s := range succNew {
			so := d.NewToOld[s]
			if so < 0 || stamp[so] != int32(cn) {
				d.DirtyNew[cn] = true
				break
			}
		}
	}
	for _, dirty := range d.DirtyNew {
		if dirty {
			d.NumDirty++
		}
	}
	return d
}

// Frontier label-mask bits: which of the three change groups a label's rows
// can be reached by. See ComputeFrontier.
const (
	// FrontierMem: the label occurs below a membership-dirty component (new
	// side) or below a vanished component (old side). Rows of the
	// membership-dirty components themselves must be recomputed for it.
	FrontierMem uint8 = 1 << iota
	// FrontierAddRem: the label occurs below an added successor (new side)
	// or a removed successor (old side) of some matched component. Rows of
	// the ancestor closure of the successor-dirty components must be
	// recomputed for it.
	FrontierAddRem
	// FrontierFlip: the label occurs among the members of a component whose
	// Nontrivial flag flipped. Rows of the flipped components themselves
	// must be recomputed for it.
	FrontierFlip
)

// Frontier is the per-label affected area of one condensation step — the
// sharpening of the all-labels rectangle "ancestors of every dirty
// component" that DiffCondensation alone supports. It splits the dirty
// components into three groups with different reach and attaches to each
// label a bitmask of the groups that can touch its rows:
//
//   - Membership-dirty components (MemComps: no old component has the same
//     member set) need their own rows rewritten, but only for labels
//     appearing in their forward closure on either side (FrontierMem): for
//     any other label both the old and the new count of every member is
//     zero. Their ancestors are covered by the next group — every
//     predecessor of an unmatched component necessarily fails the
//     successor-set match.
//   - Successor-dirty components (SuccDirty: matched, successor set
//     changed) change counts only through the subtrees that appeared or
//     disappeared, so only labels occurring below an added successor (new
//     side) or a removed one (old side) can differ (FrontierAddRem); that
//     difference propagates to every ancestor, so the affected set for
//     those labels is the ancestor closure of SuccDirty.
//   - Flipped components (FlipComps: matched, same successors, Nontrivial
//     flipped) change only their own members' self-visibility, for member
//     labels only (FrontierFlip) — what a flipped component passes to its
//     predecessors is unchanged in both index modes, so flips never
//     propagate upstream.
//
// A label with mask 0 provably has byte-identical rows (modulo
// zero-extension for appended nodes) and is shared, not copied — on churn
// far from a label's occurrences this is the common case, and it is what
// keeps the per-update maintenance cost proportional to the delta's actual
// reach instead of the component count.
type Frontier struct {
	// MemComps lists the membership-dirty new components.
	MemComps []int32
	// SuccDirty lists the matched new components whose successor set
	// changed.
	SuccDirty []int32
	// FlipComps lists the matched new components whose Nontrivial flag
	// flipped.
	FlipComps []int32
	// Labels maps each label that any group can reach to its group mask;
	// labels not present have mask 0 and provably unchanged rows.
	Labels map[LabelID]uint8
}

// LabelMask returns the group bitmask of l (0 when no group reaches it).
func (f *Frontier) LabelMask(l LabelID) uint8 { return f.Labels[l] }

// ComputeFrontier classifies the dirty components of d into the three
// frontier groups and collects the per-label group masks; d must be the
// DiffCondensation of (oldCond, newCond). Member labels are read through
// gNew — node labels are immutable and old nodes keep their IDs, so the
// new snapshot answers for both sides.
func ComputeFrontier(oldCond, newCond *Condensation, d *CondensationDiff, gNew *Graph) *Frontier {
	f := &Frontier{Labels: make(map[LabelID]uint8)}

	var memNew, vanished []int32
	for cn, co := range d.NewToOld {
		if co < 0 {
			memNew = append(memNew, int32(cn))
		}
	}
	for co, cn := range d.OldToNew {
		if cn < 0 {
			vanished = append(vanished, int32(co))
		}
	}
	f.MemComps = memNew

	// Successor-set re-matching with recorded differences: stamp the old
	// successors (through the matching) to find added new ones, stamp the
	// new successors to find removed old ones.
	var addSeeds, remSeeds []int32
	stampOld := make([]int32, oldCond.NumComps)
	stampNew := make([]int32, newCond.NumComps)
	for i := range stampOld {
		stampOld[i] = -1
	}
	for i := range stampNew {
		stampNew[i] = -1
	}
	addSeen := make([]bool, newCond.NumComps)
	remSeen := make([]bool, oldCond.NumComps)
	for cn := 0; cn < newCond.NumComps; cn++ {
		co := d.NewToOld[cn]
		if co < 0 || !d.DirtyNew[cn] {
			continue
		}
		if newCond.Nontrivial[cn] != oldCond.Nontrivial[co] {
			f.FlipComps = append(f.FlipComps, int32(cn))
		}
		for _, s := range oldCond.Succ[co] {
			stampOld[s] = int32(cn)
		}
		for _, s := range newCond.Succ[cn] {
			stampNew[s] = int32(cn)
		}
		changed := false
		for _, s := range newCond.Succ[cn] {
			so := d.NewToOld[s]
			if so < 0 || stampOld[so] != int32(cn) {
				changed = true
				if !addSeen[s] {
					addSeen[s] = true
					addSeeds = append(addSeeds, s)
				}
			}
		}
		for _, so := range oldCond.Succ[co] {
			sn := d.OldToNew[so]
			if sn < 0 || stampNew[sn] != int32(cn) {
				changed = true
				if !remSeen[so] {
					remSeen[so] = true
					remSeeds = append(remSeeds, so)
				}
			}
		}
		if changed {
			f.SuccDirty = append(f.SuccDirty, int32(cn))
		}
	}

	collect := func(cond *Condensation, seeds []int32, bit uint8) {
		if len(seeds) == 0 {
			return
		}
		in := make([]bool, cond.NumComps)
		for _, c := range ExpandComps(seeds, cond.Succ, in) {
			for _, v := range cond.Members[c] {
				f.Labels[gNew.LabelIDOf(v)] |= bit
			}
		}
	}
	collect(newCond, memNew, FrontierMem)
	collect(oldCond, vanished, FrontierMem)
	collect(newCond, addSeeds, FrontierAddRem)
	collect(oldCond, remSeeds, FrontierAddRem)
	for _, c := range f.FlipComps {
		for _, v := range newCond.Members[c] {
			f.Labels[gNew.LabelIDOf(v)] |= FrontierFlip
		}
	}
	return f
}

// sameMembers reports whether two ascending member lists are identical.
func sameMembers(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}
