package graph

// This file relates the SCC condensations of two adjacent graph snapshots.
// The descendant-label index's rows are a pure function of the condensation
// and the member labels: a node's exact count is the number of labelled
// nodes among the members of the components reachable from its component
// (itself included when nontrivial), and the loose count is the
// deduplicated-DAG path sum over the same structure. Node-level edge churn
// that leaves the condensation untouched — the common case on graphs with a
// giant SCC, where most inserts and deletes land inside the component —
// therefore provably changes no row. DiffCondensation finds the components
// for which that argument fails; everything the incremental index
// maintenance recomputes is seeded from them.

// CondensationDiff describes how the SCC structure moved between two
// snapshots of one update lineage.
type CondensationDiff struct {
	// NewToOld maps each new component to the old component with the
	// identical member set, or -1 when no old component matches (the
	// component gained, lost or exchanged members, or contains appended
	// nodes).
	NewToOld []int32
	// OldToNew is the inverse matching: old components with no identical
	// new component map to -1.
	OldToNew []int32
	// DirtyNew marks the new components whose index rows cannot be proven
	// unchanged by structure alone: membership changed (NewToOld == -1),
	// the successor set changed (compared through the matching), or the
	// Nontrivial flag flipped (a singleton gained or lost its self-loop).
	// Every row change of the descendant-label index originates at a dirty
	// component: a component that reaches no dirty component has, by
	// induction over the reverse topological order, an isomorphic
	// downstream condensation with identical member sets, so both the
	// exact and the loose counts of its members are unchanged.
	DirtyNew []bool
	// NumDirty counts the true entries of DirtyNew.
	NumDirty int
}

// DiffCondensation matches the components of two condensations by member
// set and classifies the new components as clean or dirty; see
// CondensationDiff. oldCond must be the condensation of the snapshot the
// delta was applied to and newCond that of the snapshot it produced
// (appended nodes hold the largest IDs, which is the only ordering fact the
// matching relies on: member lists are ascending in both).
func DiffCondensation(oldCond, newCond *Condensation, oldNodes int) *CondensationDiff {
	d := &CondensationDiff{
		NewToOld: make([]int32, newCond.NumComps),
		OldToNew: make([]int32, oldCond.NumComps),
		DirtyNew: make([]bool, newCond.NumComps),
	}
	for i := range d.OldToNew {
		d.OldToNew[i] = -1
	}
	for cn := 0; cn < newCond.NumComps; cn++ {
		d.NewToOld[cn] = -1
		members := newCond.Members[cn]
		// The smallest member decides the only possible match: member sets
		// are ascending, so equal sets share their first element.
		rep := members[0]
		if int(rep) >= oldNodes {
			continue // contains appended nodes only
		}
		co := oldCond.Comp[rep]
		if !sameMembers(members, oldCond.Members[co]) {
			continue
		}
		d.NewToOld[cn] = co
		d.OldToNew[co] = int32(cn)
	}

	// Successor-set comparison through the matching, with a stamp array so
	// no per-component set is materialized: stamp the old successors of the
	// matched component, then require every new successor to map onto a
	// stamped old component and the counts to agree.
	stamp := make([]int32, oldCond.NumComps)
	for i := range stamp {
		stamp[i] = -1
	}
	for cn := 0; cn < newCond.NumComps; cn++ {
		co := d.NewToOld[cn]
		if co < 0 {
			d.DirtyNew[cn] = true
			continue
		}
		if newCond.Nontrivial[cn] != oldCond.Nontrivial[co] {
			d.DirtyNew[cn] = true
			continue
		}
		succNew, succOld := newCond.Succ[cn], oldCond.Succ[co]
		if len(succNew) != len(succOld) {
			d.DirtyNew[cn] = true
			continue
		}
		for _, s := range succOld {
			stamp[s] = int32(cn)
		}
		for _, s := range succNew {
			so := d.NewToOld[s]
			if so < 0 || stamp[so] != int32(cn) {
				d.DirtyNew[cn] = true
				break
			}
		}
	}
	for _, dirty := range d.DirtyNew {
		if dirty {
			d.NumDirty++
		}
	}
	return d
}

// sameMembers reports whether two ascending member lists are identical.
func sameMembers(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}
