package graph

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// rebuild constructs the graph a delta sequence should produce from scratch
// with a Builder sharing the same dict — the oracle ApplyDelta is compared
// against.
func rebuild(labels []string, attrs []map[string]Value, edges map[[2]NodeID]bool, dict *Dict) *Graph {
	b := NewBuilderWithDict(dict)
	for i, l := range labels {
		b.AddNode(l, attrs[i])
	}
	for e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

// assertGraphsEqual compares every observable of two graphs, CSR arrays
// included.
func assertDeltaGraphsEqual(t *testing.T, label string, got, want *Graph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("%s: size (%d,%d) vs (%d,%d)", label, got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
	}
	if !reflect.DeepEqual(got.outOff, want.outOff) || !reflect.DeepEqual(got.outAdj, want.outAdj) {
		t.Fatalf("%s: out CSR differs\ngot  %v %v\nwant %v %v", label, got.outOff, got.outAdj, want.outOff, want.outAdj)
	}
	if !reflect.DeepEqual(got.inOff, want.inOff) || !reflect.DeepEqual(got.inAdj, want.inAdj) {
		t.Fatalf("%s: in CSR differs\ngot  %v %v\nwant %v %v", label, got.inOff, got.inAdj, want.inOff, want.inAdj)
	}
	if !reflect.DeepEqual(got.labels, want.labels) {
		t.Fatalf("%s: labels differ: %v vs %v", label, got.labels, want.labels)
	}
	for v := 0; v < got.NumNodes(); v++ {
		gk, wk := got.AttrKeys(NodeID(v)), want.AttrKeys(NodeID(v))
		if !reflect.DeepEqual(gk, wk) {
			t.Fatalf("%s: node %d attr keys %v vs %v", label, v, gk, wk)
		}
		for _, k := range gk {
			gv, _ := got.Attr(NodeID(v), k)
			wv, _ := want.Attr(NodeID(v), k)
			if gv != wv {
				t.Fatalf("%s: node %d attr %q: %v vs %v", label, v, k, gv, wv)
			}
		}
	}
	for l := range want.byLabel {
		if !reflect.DeepEqual(got.byLabel[l], want.byLabel[l]) {
			t.Fatalf("%s: byLabel[%d] %v vs %v", label, l, got.byLabel[l], want.byLabel[l])
		}
	}
}

func TestApplyDeltaBasic(t *testing.T) {
	b := NewBuilder()
	a := b.AddNode("A", nil)
	c := b.AddNode("B", map[string]Value{"r": IntValue(3)})
	d0 := b.AddNode("C", nil)
	mustEdge := func(u, v NodeID) {
		if err := b.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	mustEdge(a, c)
	mustEdge(c, d0)
	g := b.Build()
	if g.Version() != 0 {
		t.Fatalf("fresh graph version = %d, want 0", g.Version())
	}

	var d Delta
	idx := d.AddNode("D", map[string]Value{"w": StrValue("x")})
	nn := NodeID(g.NumNodes() + idx)
	d.InsertEdge(a, nn)
	d.InsertEdge(nn, d0)
	d.DeleteEdge(c, d0)
	d.InsertEdge(a, c) // already present: no-op

	g2, err := ApplyDelta(g, &d)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Version() != 1 {
		t.Fatalf("version = %d, want 1", g2.Version())
	}
	if g2.NumNodes() != 4 || g2.NumEdges() != 3 {
		t.Fatalf("got %d nodes %d edges, want 4 and 3", g2.NumNodes(), g2.NumEdges())
	}
	if !g2.HasEdge(a, nn) || !g2.HasEdge(nn, d0) || g2.HasEdge(c, d0) || !g2.HasEdge(a, c) {
		t.Fatalf("edge set wrong after delta: out(a)=%v out(c)=%v out(nn)=%v", g2.Out(a), g2.Out(c), g2.Out(nn))
	}
	if g2.Label(nn) != "D" {
		t.Fatalf("appended node label %q", g2.Label(nn))
	}
	if v, ok := g2.Attr(nn, "w"); !ok || v.Str != "x" {
		t.Fatalf("appended node attr = %v %v", v, ok)
	}
	// The old snapshot is untouched.
	if g.NumNodes() != 3 || g.NumEdges() != 2 || !g.HasEdge(c, d0) || g.Version() != 0 {
		t.Fatal("ApplyDelta mutated the old snapshot")
	}
}

func TestApplyDeltaErrors(t *testing.T) {
	b := NewBuilder()
	a := b.AddNode("A", nil)
	c := b.AddNode("B", nil)
	if err := b.AddEdge(a, c); err != nil {
		t.Fatal(err)
	}
	g := b.Build()

	cases := []struct {
		name string
		d    Delta
	}{
		{"insert unknown node", Delta{EdgeInserts: [][2]NodeID{{0, 9}}}},
		{"insert negative node", Delta{EdgeInserts: [][2]NodeID{{-1, 0}}}},
		{"delete missing edge", Delta{EdgeDeletes: [][2]NodeID{{1, 0}}}},
		{"delete unknown node", Delta{EdgeDeletes: [][2]NodeID{{0, 9}}}},
		{"delete appended-node edge", Delta{
			NodeAppends: []NodeAppend{{Label: "C"}},
			EdgeDeletes: [][2]NodeID{{0, 2}},
		}},
	}
	for _, tc := range cases {
		if _, err := ApplyDelta(g, &tc.d); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	// A valid delta still works after the failures above (g untouched).
	if _, err := ApplyDelta(g, &Delta{EdgeDeletes: [][2]NodeID{{0, 1}}}); err != nil {
		t.Fatal(err)
	}
}

// TestApplyDeltaRandomizedEquivalence drives random delta sequences and
// checks, after every step, that the incremental snapshot is structurally
// identical to a from-scratch Build of the same node/edge set — CSR arrays,
// labels, attrs and byLabel lists included — and that versions increase by
// one per delta.
func TestApplyDeltaRandomizedEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dict := NewDict()
			b := NewBuilderWithDict(dict)
			labels := []string{}
			attrs := []map[string]Value{}
			for i := 0; i < 30; i++ {
				l := fmt.Sprintf("L%d", rng.Intn(4))
				labels = append(labels, l)
				attrs = append(attrs, nil)
				b.AddNode(l, nil)
			}
			edges := map[[2]NodeID]bool{}
			for len(edges) < 80 {
				e := [2]NodeID{NodeID(rng.Intn(30)), NodeID(rng.Intn(30))}
				if !edges[e] {
					edges[e] = true
					if err := b.AddEdge(e[0], e[1]); err != nil {
						t.Fatal(err)
					}
				}
			}
			g := b.Build()

			for step := 0; step < 12; step++ {
				var d Delta
				nBase := len(labels)
				// Random mix of appends, inserts, deletes.
				for a := rng.Intn(3); a > 0; a-- {
					l := fmt.Sprintf("L%d", rng.Intn(5)) // may intern a new label
					var am map[string]Value
					if rng.Intn(2) == 0 {
						am = map[string]Value{"k": IntValue(int64(rng.Intn(10)))}
					}
					d.AddNode(l, am)
					labels = append(labels, l)
					attrs = append(attrs, am)
				}
				n := len(labels)
				for a := rng.Intn(6); a > 0; a-- {
					e := [2]NodeID{NodeID(rng.Intn(n)), NodeID(rng.Intn(n))}
					d.InsertEdge(e[0], e[1])
					edges[e] = true
				}
				if len(edges) > 0 {
					all := make([][2]NodeID, 0, len(edges))
					for e := range edges {
						// Appended-node edges are being inserted in this very
						// delta; only settled edges are deletable.
						if int(e[0]) < nBase && int(e[1]) < nBase {
							all = append(all, e)
						}
					}
					for a := rng.Intn(3); a > 0 && len(all) > 0; a-- {
						i := rng.Intn(len(all))
						e := all[i]
						// Skip if this delta also inserts it (delete applies
						// first; the insert would put it back, which the
						// oracle map cannot express if we remove it).
						ins := false
						for _, ie := range d.EdgeInserts {
							if ie == e {
								ins = true
								break
							}
						}
						if ins {
							continue
						}
						d.DeleteEdge(e[0], e[1])
						delete(edges, e)
						all[i] = all[len(all)-1]
						all = all[:len(all)-1]
					}
				}

				g2, err := ApplyDelta(g, &d)
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				if g2.Version() != g.Version()+1 {
					t.Fatalf("step %d: version %d after %d", step, g2.Version(), g.Version())
				}
				want := rebuild(labels, attrs, edges, dict)
				assertDeltaGraphsEqual(t, fmt.Sprintf("step %d", step), g2, want)
				g = g2
			}
		})
	}
}

// TestDictConcurrentInternAndRead is the -race regression for the shared
// dictionary: ApplyDelta interns labels into the dict aliased by a live
// graph while readers resolve labels, exactly the serving-layer shape.
func TestDictConcurrentInternAndRead(t *testing.T) {
	d := NewDict()
	base := d.Intern("base")
	stop := make(chan struct{})
	var readers, writers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if d.Name(base) != "base" {
					panic("label changed")
				}
				if _, ok := d.ID("base"); !ok {
					panic("label lost")
				}
				for _, n := range d.Names() {
					_ = n
				}
				_ = d.Size()
			}
		}()
	}
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				d.Intern(fmt.Sprintf("w%d-%d", w, i%100))
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if d.Size() != 1+4*100 {
		t.Fatalf("dict size = %d, want %d", d.Size(), 1+4*100)
	}
}
