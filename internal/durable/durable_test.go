package durable

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"divtopk/internal/fsx"
	"divtopk/internal/graph"
	"divtopk/internal/snapshot"
	"divtopk/internal/wal"
)

// lineage returns versions 0..n of a small update chain plus the deltas that
// produced versions 1..n (deltas[i] produced version i+1).
func lineage(t *testing.T, n int) ([]*graph.Graph, []*graph.Delta) {
	t.Helper()
	b := graph.NewBuilder()
	b.AddNode("A", map[string]graph.Value{"R": graph.IntValue(3)})
	b.AddNode("B", nil)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	gs := []*graph.Graph{b.Build()}
	var ds []*graph.Delta
	for i := 0; i < n; i++ {
		d := &graph.Delta{}
		d.AddNode("C", nil)
		d.InsertEdge(graph.NodeID(gs[i].NumNodes()), 0)
		g, err := graph.ApplyDelta(gs[i], d)
		if err != nil {
			t.Fatal(err)
		}
		gs = append(gs, g)
		ds = append(ds, d)
	}
	return gs, ds
}

// seedAndAppend opens a fresh store, seeds version 0, and appends versions
// 1..len(ds).
func seedAndAppend(t *testing.T, dir string, opts Options, gs []*graph.Graph, ds []*graph.Delta) *Store {
	t.Helper()
	s, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Base != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh store recovered %+v", rec)
	}
	if err := s.Seed(gs[0]); err != nil {
		t.Fatal(err)
	}
	for i, d := range ds {
		if err := s.Append(gs[i+1], d); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestSeedAppendRecover(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	gs, ds := lineage(t, 5)
	s := seedAndAppend(t, dir, Options{}, gs, ds)
	if v, ok := s.DurableVersion(); !ok || v != 5 {
		t.Fatalf("DurableVersion = (%d, %v)", v, ok)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec.Base == nil || rec.Base.Version() != 0 {
		t.Fatalf("recovered base = %v", rec.Base)
	}
	if len(rec.Records) != 5 {
		t.Fatalf("recovered %d records, want 5", len(rec.Records))
	}
	// Replaying the records through ApplyDelta reproduces the lineage.
	g := rec.Base
	for i, r := range rec.Records {
		if r.Version != uint64(i+1) {
			t.Fatalf("record %d version = %d", i, r.Version)
		}
		if g, err = graph.ApplyDelta(g, r.Delta); err != nil {
			t.Fatal(err)
		}
		if g.NumNodes() != gs[i+1].NumNodes() || g.NumEdges() != gs[i+1].NumEdges() {
			t.Fatalf("replayed version %d shape (%d,%d), want (%d,%d)",
				r.Version, g.NumNodes(), g.NumEdges(), gs[i+1].NumNodes(), gs[i+1].NumEdges())
		}
	}
	if v, ok := s2.DurableVersion(); !ok || v != 5 {
		t.Fatalf("reopened DurableVersion = (%d, %v)", v, ok)
	}
}

// TestRotation: with CheckpointEvery=4, ten appends leave a checkpoint at
// version 8 (the second rotation), a WAL tail of versions 9-10, and no older
// checkpoint files.
func TestRotation(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	gs, ds := lineage(t, 10)
	s := seedAndAppend(t, dir, Options{CheckpointEvery: 4}, gs, ds)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec.Base.Version() != 8 {
		t.Fatalf("base version = %d, want 8", rec.Base.Version())
	}
	if len(rec.Records) != 2 || rec.Records[0].Version != 9 || rec.Records[1].Version != 10 {
		t.Fatalf("tail = %+v, want versions 9,10", rec.Records)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ckpts []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".ckpt") {
			ckpts = append(ckpts, e.Name())
		}
	}
	if len(ckpts) != 1 || ckpts[0] != snapshot.Name(8) {
		t.Fatalf("checkpoints on disk = %v, want only %s", ckpts, snapshot.Name(8))
	}
}

// TestRotationCrashWindow reproduces a crash between checkpoint publication
// and WAL truncation: the WAL still holds records the checkpoint covers, and
// recovery must skip them by version.
func TestRotationCrashWindow(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	gs, ds := lineage(t, 3)
	s := seedAndAppend(t, dir, Options{CheckpointEvery: -1}, gs, ds)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The WAL holds versions 1-3 with a checkpoint at 0. Publish a checkpoint
	// at version 2 without touching the WAL — the torn rotation.
	if _, err := snapshot.Write(fsx.OS(), dir, gs[2]); err != nil {
		t.Fatal(err)
	}
	s2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec.Base.Version() != 2 {
		t.Fatalf("base version = %d, want 2", rec.Base.Version())
	}
	if len(rec.Records) != 1 || rec.Records[0].Version != 3 {
		t.Fatalf("tail = %+v, want just version 3", rec.Records)
	}
	if v, _ := s2.DurableVersion(); v != 3 {
		t.Fatalf("DurableVersion = %d, want 3", v)
	}
}

// TestWALGapRefusesRecovery: a checkpoint at version 0 with a WAL resuming at
// version 2 means version 1 was acknowledged and lost; recovery must refuse.
func TestWALGapRefusesRecovery(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	gs, ds := lineage(t, 2)
	if _, err := snapshot.Write(fsx.OS(), dir, gs[0]); err != nil {
		t.Fatal(err)
	}
	l, _, _, err := wal.Open(filepath.Join(dir, walName), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(2, ds[1]); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "unrecoverable") {
		t.Fatalf("gap recovery error = %v", err)
	}
}

// TestWALWithoutCheckpointRefusesRecovery: WAL records with no checkpoint at
// all cannot be replayed onto anything.
func TestWALWithoutCheckpointRefusesRecovery(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	_, ds := lineage(t, 1)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	l, _, _, err := wal.Open(filepath.Join(dir, walName), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, ds[0]); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "no checkpoint") {
		t.Fatalf("orphan WAL error = %v", err)
	}
}

// TestAppendFailureDegradesPermanently: a failed WAL sync degrades the store
// — the durable version freezes, and every later append returns the original
// error even after the device "recovers".
func TestAppendFailureDegradesPermanently(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	gs, ds := lineage(t, 3)
	fault := fsx.NewFault(fsx.OS())
	s, rec, err := Open(dir, Options{FS: fault, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Base != nil {
		t.Fatalf("fresh store recovered %v", rec.Base)
	}
	if err := s.Seed(gs[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(gs[1], ds[0]); err != nil {
		t.Fatal(err)
	}
	inj := errors.New("disk detached")
	fault.FailSyncs(inj)
	if err := s.Append(gs[2], ds[1]); !errors.Is(err, inj) {
		t.Fatalf("append during failure = %v, want injected error", err)
	}
	fault.FailSyncs(nil)
	if err := s.Append(gs[2], ds[1]); !errors.Is(err, inj) {
		t.Fatalf("append after recovery = %v, want sticky injected error", err)
	}
	if err := s.Err(); !errors.Is(err, inj) {
		t.Fatalf("Err = %v", err)
	}
	if v, _ := s.DurableVersion(); v != 1 {
		t.Fatalf("DurableVersion = %d, want 1 (frozen at last durable)", v)
	}
	_ = s.Close()
}

// TestCrashMidAppendRecoversPrefix kills the "process" partway through a WAL
// append: the torn record is truncated on restart and recovery lands exactly
// on the last acknowledged version.
func TestCrashMidAppendRecoversPrefix(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	gs, ds := lineage(t, 2)
	fault := fsx.NewFault(fsx.OS())
	s, _, err := Open(dir, Options{FS: fault, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Seed(gs[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(gs[1], ds[0]); err != nil {
		t.Fatal(err)
	}
	// Let 5 more bytes through: the next append tears mid-record.
	fault.CrashAfter(fault.BytesWritten() + 5)
	if err := s.Append(gs[2], ds[1]); !errors.Is(err, fsx.ErrCrashed) {
		t.Fatalf("crashing append = %v, want ErrCrashed", err)
	}
	_ = s.Close()

	s2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec.Base.Version() != 0 || len(rec.Records) != 1 || rec.Records[0].Version != 1 {
		t.Fatalf("post-crash recovery = base %v, %d records", rec.Base, len(rec.Records))
	}
	if v, _ := s2.DurableVersion(); v != 1 {
		t.Fatalf("DurableVersion = %d, want 1", v)
	}
}

// TestAppendValidation: appends to an unseeded store fail, and version gaps
// are rejected without degrading the store.
func TestAppendValidation(t *testing.T) {
	t.Parallel()
	gs, ds := lineage(t, 3)

	s, _, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(gs[1], ds[0]); err == nil || !strings.Contains(err.Error(), "unseeded") {
		t.Fatalf("unseeded append = %v", err)
	}
	_ = s.Close()

	s2, _, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.Seed(gs[0]); err != nil {
		t.Fatal(err)
	}
	if err := s2.Seed(gs[0]); err == nil {
		t.Fatal("double seed accepted")
	}
	if err := s2.Append(gs[2], ds[1]); err == nil {
		t.Fatal("version gap accepted")
	}
	// The gap was a caller bug, not a failure: the correct append still works.
	if err := s2.Append(gs[1], ds[0]); err != nil {
		t.Fatalf("append after rejected gap: %v", err)
	}
}

// TestExplicitCheckpointRotates: the clean-shutdown path — Checkpoint at the
// current version truncates the WAL so the next boot replays nothing.
func TestExplicitCheckpointRotates(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	gs, ds := lineage(t, 4)
	s := seedAndAppend(t, dir, Options{CheckpointEvery: -1}, gs, ds)
	if err := s.Checkpoint(gs[3]); err == nil {
		t.Fatal("checkpoint of stale version accepted")
	}
	if err := s.Checkpoint(gs[4]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec.Base.Version() != 4 || len(rec.Records) != 0 {
		t.Fatalf("post-checkpoint recovery = base %d, %d records", rec.Base.Version(), len(rec.Records))
	}
}
