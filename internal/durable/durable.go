// Package durable composes the delta WAL (internal/wal) and CSR checkpoints
// (internal/snapshot) into one per-graph durability store with a simple
// contract: after Append(g, d) returns nil, version g.Version() survives a
// crash; recovery hands back the newest valid checkpoint plus the WAL tail so
// the caller can replay it through the same update path that produced it.
//
// Layout of a store directory:
//
//	checkpoint-<version>.ckpt   full CSR snapshots (newest wins)
//	wal.log                     deltas appended since the newest checkpoint
//
// The checkpoint-then-truncate rotation is deliberately not atomic across the
// two files: the checkpoint is published first (atomic rename), then the WAL
// is truncated. A crash between the two leaves WAL records at or below the
// checkpoint's version, which recovery skips by version comparison.
//
// Failure discipline: the first failed append or rotation degrades the store
// permanently — Append returns the original error from then on, the caller
// keeps serving reads at the last durable version, and a restart (which
// re-runs recovery, truncating any torn WAL tail) is the only way back. A
// half-written record makes the file unappendable anyway; refusing early
// keeps the failure mode crisp instead of depending on which bytes hit disk.
package durable

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"divtopk/internal/fsx"
	"divtopk/internal/graph"
	"divtopk/internal/snapshot"
	"divtopk/internal/wal"
)

// walName is the WAL file name within a store directory.
const walName = "wal.log"

// DefaultCheckpointEvery is the default number of appended deltas between
// automatic checkpoint rotations.
const DefaultCheckpointEvery = 64

// Options configures a Store.
type Options struct {
	// FS is the filesystem to operate on. Defaults to fsx.OS().
	FS fsx.FS
	// Policy is the WAL fsync policy. Defaults to wal.SyncAlways.
	Policy wal.SyncPolicy
	// Interval is the wal.SyncInterval flush interval.
	Interval time.Duration
	// CheckpointEvery rotates the WAL into a fresh checkpoint after this many
	// appended deltas. 0 means DefaultCheckpointEvery; negative disables
	// automatic rotation (explicit Checkpoint calls only).
	CheckpointEvery int
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = fsx.OS()
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = DefaultCheckpointEvery
	}
	return o
}

// Recovered is what Open found on disk: the base snapshot (nil for an empty
// store) and the WAL records strictly newer than it, in replay order.
type Recovered struct {
	Base    *graph.Graph
	Records []wal.Record
}

// Store is the durability sink of one graph lineage. All methods are safe
// for concurrent use, though the matcher's update lock already serializes
// Append calls in practice.
type Store struct {
	dir  string
	fs   fsx.FS
	opts Options

	mu         sync.Mutex
	log        *wal.Log
	durableVer uint64
	seeded     bool // a checkpoint exists; appends are allowed
	sinceCkpt  int
	failedErr  error // first failure; sticky until restart
}

// Open recovers the store in dir, creating the directory if needed. The
// returned Recovered carries the newest valid checkpoint and the WAL tail to
// replay on top of it; a fresh store has a nil Base, and the caller must Seed
// the initial snapshot before appending. WAL records at or below the
// checkpoint version (the rotation crash window) are skipped; a gap between
// the checkpoint and the first newer record, or WAL records with no
// checkpoint at all, means acknowledged updates are unrecoverable and Open
// refuses rather than silently dropping them.
func Open(dir string, opts Options) (*Store, *Recovered, error) {
	opts = opts.withDefaults()
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("durable: %w", err)
	}
	base, err := snapshot.Load(opts.FS, dir)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: %w", err)
	}
	log, records, _, err := wal.Open(filepath.Join(dir, walName), wal.Options{
		Policy:   opts.Policy,
		Interval: opts.Interval,
		FS:       opts.FS,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("durable: %w", err)
	}
	s := &Store{dir: dir, fs: opts.FS, opts: opts, log: log}
	if base == nil {
		if len(records) > 0 {
			_ = log.Close()
			return nil, nil, fmt.Errorf("durable: %s holds %d WAL records but no checkpoint; refusing to drop acknowledged updates", dir, len(records))
		}
		return s, &Recovered{}, nil
	}
	// Drop rotation-window records the checkpoint already covers.
	tail := records
	for len(tail) > 0 && tail[0].Version <= base.Version() {
		tail = tail[1:]
	}
	if len(tail) > 0 && tail[0].Version != base.Version()+1 {
		_ = log.Close()
		return nil, nil, fmt.Errorf("durable: %s WAL resumes at version %d but checkpoint holds %d; intermediate updates are unrecoverable",
			dir, tail[0].Version, base.Version())
	}
	s.seeded = true
	s.durableVer = base.Version()
	if len(tail) > 0 {
		s.durableVer = tail[len(tail)-1].Version
		s.sinceCkpt = len(tail)
	}
	return s, &Recovered{Base: base, Records: tail}, nil
}

// Seed publishes the initial checkpoint of a fresh store. It must be called
// exactly once, before the first Append, when Open recovered nothing.
func (s *Store) Seed(g *graph.Graph) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seeded {
		return fmt.Errorf("durable: %s is already seeded", s.dir)
	}
	if err := s.fail(s.checkpointLocked(g)); err != nil {
		return err
	}
	s.seeded = true
	s.durableVer = g.Version()
	return nil
}

// Append makes version g.Version() durable: the delta that produced g is
// appended to the WAL (fsynced per the store's policy) before Append
// returns. Every CheckpointEvery appends the WAL is rotated into a fresh
// checkpoint of g; rotation failures degrade the store but do NOT fail the
// Append — the version is already durable in the log by then.
func (s *Store) Append(g *graph.Graph, d *graph.Delta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failedErr != nil {
		return s.failedErr
	}
	if !s.seeded {
		return s.fail(fmt.Errorf("durable: append to unseeded store %s", s.dir))
	}
	if g.Version() != s.durableVer+1 {
		// A version gap is a caller bug, not a device failure; the store
		// stays usable for the correct next version.
		return fmt.Errorf("durable: append version %d, want %d", g.Version(), s.durableVer+1)
	}
	if err := s.log.Append(g.Version(), d); err != nil {
		return s.fail(err)
	}
	s.durableVer = g.Version()
	s.sinceCkpt++
	if s.opts.CheckpointEvery > 0 && s.sinceCkpt >= s.opts.CheckpointEvery {
		// The append above already made this version durable; a failed
		// rotation only degrades future appends.
		_ = s.fail(s.checkpointLocked(g))
	}
	return nil
}

// AppendBatch makes the versions of one group commit durable: ds are the
// per-request deltas whose merged application produced g, so ds[i] carries
// version g.Version()-len(ds)+1+i. All records land in the WAL under a
// single sync point — recovery replays them one at a time through the same
// path as singly appended records. The rotation policy counts each record.
func (s *Store) AppendBatch(g *graph.Graph, ds []*graph.Delta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failedErr != nil {
		return s.failedErr
	}
	if !s.seeded {
		return s.fail(fmt.Errorf("durable: batch append to unseeded store %s", s.dir))
	}
	k := uint64(len(ds))
	if k == 0 {
		return nil
	}
	if g.Version() != s.durableVer+k {
		// A version gap is a caller bug, not a device failure; the store
		// stays usable for the correct next version.
		return fmt.Errorf("durable: batch of %d ending at version %d, want %d", k, g.Version(), s.durableVer+k)
	}
	if err := s.log.AppendBatch(s.durableVer+1, ds); err != nil {
		return s.fail(err)
	}
	s.durableVer = g.Version()
	s.sinceCkpt += int(k)
	if s.opts.CheckpointEvery > 0 && s.sinceCkpt >= s.opts.CheckpointEvery {
		// The batch above already made these versions durable; a failed
		// rotation only degrades future appends.
		_ = s.fail(s.checkpointLocked(g))
	}
	return nil
}

// Checkpoint rotates the store onto a checkpoint of g immediately: snapshot
// published, WAL truncated, older checkpoints garbage-collected. g must be
// the graph of the store's current durable version.
func (s *Store) Checkpoint(g *graph.Graph) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failedErr != nil {
		return s.failedErr
	}
	if !s.seeded {
		return fmt.Errorf("durable: checkpoint of unseeded store %s", s.dir)
	}
	if g.Version() != s.durableVer {
		return fmt.Errorf("durable: checkpoint of version %d, durable version is %d", g.Version(), s.durableVer)
	}
	return s.fail(s.checkpointLocked(g))
}

// checkpointLocked publishes a checkpoint of g and truncates the WAL. A
// crash between the two steps leaves WAL records the checkpoint covers,
// which the next Open skips by version.
func (s *Store) checkpointLocked(g *graph.Graph) error {
	if _, err := snapshot.Write(s.fs, s.dir, g); err != nil {
		return err
	}
	if err := s.log.Reset(); err != nil {
		return fmt.Errorf("durable: truncate WAL after checkpoint: %w", err)
	}
	s.sinceCkpt = 0
	// Old checkpoints are redundant once the new one is durable; a failed
	// removal is retried by the next rotation.
	_ = snapshot.GC(s.fs, s.dir, g.Version())
	return nil
}

// fail records the first error as the store's permanent failure state.
func (s *Store) fail(err error) error {
	if err != nil && s.failedErr == nil {
		s.failedErr = err
	}
	return err
}

// DurableVersion returns the newest version that survives a crash, and
// whether the store holds any version at all.
func (s *Store) DurableVersion() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.durableVer, s.seeded
}

// Err returns the error that degraded the store, or nil while it is healthy.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failedErr
}

// Policy returns the store's WAL fsync policy.
func (s *Store) Policy() wal.SyncPolicy { return s.opts.Policy }

// Close flushes and closes the WAL. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.log.Close()
	if s.failedErr == nil {
		s.failedErr = errors.New("durable: store is closed")
	}
	return err
}
