// Package fsx abstracts the handful of filesystem operations the durability
// layer performs — append-mode writes, atomic temp-file+rename publication,
// fsync of files and directories — behind an interface small enough to wrap.
// The production implementation (OS) delegates to the os package; the Fault
// implementation injects short writes, sync errors, and crashes at arbitrary
// byte offsets, which is what lets the crash-recovery tests prove that every
// prefix of the bytes the WAL and checkpoint writers emit recovers to a
// consistent state.
package fsx

import (
	"io"
	"os"
	"path/filepath"
)

// File is the subset of *os.File the durability layer writes through. A File
// obtained for appending writes at the end regardless of truncation.
type File interface {
	io.Writer
	io.Closer
	// Sync flushes the file's written data to stable storage (fsync).
	Sync() error
	// Truncate resizes the file to size bytes.
	Truncate(size int64) error
}

// FS is the filesystem surface of the durability layer. All paths are
// interpreted as by the os package.
type FS interface {
	// OpenFile opens a file for writing with the given os.O_* flags.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadFile reads a whole file, as os.ReadFile.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists a directory, as os.ReadDir.
	ReadDir(name string) ([]os.DirEntry, error)
	// MkdirAll creates a directory tree, as os.MkdirAll.
	MkdirAll(path string, perm os.FileMode) error
	// Rename atomically replaces newpath with oldpath, as os.Rename.
	Rename(oldpath, newpath string) error
	// Remove deletes a file, as os.Remove.
	Remove(name string) error
	// Truncate resizes the named file, as os.Truncate.
	Truncate(name string, size int64) error
	// SyncDir fsyncs the directory itself, making a preceding Rename or
	// Remove within it durable.
	SyncDir(name string) error
	// Stat describes a file, as os.Stat.
	Stat(name string) (os.FileInfo, error)
}

// osFS is the production FS over the os package.
type osFS struct{}

// OS returns the production filesystem.
func OS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }

func (osFS) SyncDir(name string) error {
	d, err := os.Open(filepath.Clean(name))
	if err != nil {
		return err
	}
	// On filesystems that reject fsync on directories the rename is already
	// as durable as it gets; the close error is the one worth keeping.
	_ = d.Sync()
	return d.Close()
}
