package fsx

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestOSAppendTruncateRename(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	fs := OS()
	path := filepath.Join(dir, "a.log")
	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello world" {
		t.Fatalf("appended content = %q", got)
	}
	if err := fs.Truncate(path, 5); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.ReadFile(path); string(got) != "hello" {
		t.Fatalf("truncated content = %q", got)
	}
	dst := filepath.Join(dir, "b.log")
	if err := fs.Rename(path, dst); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat(dst); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("old path still exists: %v", err)
	}
}

func TestFaultCrashPersistsExactPrefix(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	fault := NewFault(OS())
	fault.CrashAfter(7)
	path := filepath.Join(dir, "a.log")
	f, err := fault.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abcd")); err != nil {
		t.Fatal(err)
	}
	// This write crosses byte 7: persists "efg", then the process is dead.
	if _, err := f.Write([]byte("efgh")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crossing write error = %v, want ErrCrashed", err)
	}
	if !fault.Crashed() {
		t.Fatal("fault not marked crashed")
	}
	// Everything after the crash fails: writes, syncs, renames, opens.
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write error = %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync error = %v", err)
	}
	if err := fault.Rename(path, path+".new"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename error = %v", err)
	}
	if _, err := fault.OpenFile(filepath.Join(dir, "b"), os.O_WRONLY|os.O_CREATE, 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open error = %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// The real filesystem holds exactly the pre-crash prefix.
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abcdefg" {
		t.Fatalf("surviving bytes = %q, want %q", got, "abcdefg")
	}
	if fault.BytesWritten() != 7 {
		t.Fatalf("BytesWritten = %d, want 7", fault.BytesWritten())
	}
}

func TestFaultShortWriteIsOneShot(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	fault := NewFault(OS())
	fault.ShortWriteAt(2)
	path := filepath.Join(dir, "a.log")
	f, err := fault.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcd"))
	if n != 2 || !errors.Is(err, ErrInjected) {
		t.Fatalf("short write = (%d, %v), want (2, ErrInjected)", n, err)
	}
	// One-shot: the next write goes through whole.
	if n, err := f.Write([]byte("xy")); n != 2 || err != nil {
		t.Fatalf("follow-up write = (%d, %v)", n, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "abxy" {
		t.Fatalf("content = %q, want %q", got, "abxy")
	}
}

func TestFaultFailSyncs(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	fault := NewFault(OS())
	inj := errors.New("disk on fire")
	fault.FailSyncs(inj)
	f, err := fault.OpenFile(filepath.Join(dir, "a.log"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, inj) {
		t.Fatalf("sync error = %v, want injected", err)
	}
	fault.FailSyncs(nil)
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after disarm = %v", err)
	}
}
