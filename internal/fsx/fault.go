package fsx

import (
	"errors"
	"os"
	"sync"
)

// ErrCrashed is returned by every Fault operation after the injected crash
// point: the simulated process is dead, and only the bytes persisted before
// the crash survive on disk.
var ErrCrashed = errors.New("fsx: injected crash")

// ErrInjected is the error carried by injected short writes and sync
// failures.
var ErrInjected = errors.New("fsx: injected fault")

// Fault wraps an FS with failpoint injection. All writes pass through to the
// underlying filesystem, except:
//
//   - CrashAfter(n): the n-th byte written (across all files) is the last
//     one persisted. The write that crosses the boundary persists only its
//     prefix and returns ErrCrashed, and every later operation — writes,
//     syncs, renames, truncates, opens — fails with ErrCrashed. What remains
//     on disk is exactly what a process killed at that byte offset would
//     leave behind (including a rename that never happened), which is what
//     the recovery fuzz feeds back through the real recovery path.
//   - FailSyncs(err): every File.Sync returns err (the data itself is
//     written). Models an fsync failure where the page-cache state is
//     unknowable; the durability layer must go sticky-degraded.
//   - ShortWriteAt(n): the single write crossing global offset n persists
//     only up to it and returns ErrInjected (a short write); later
//     operations proceed normally. Models a transient partial write.
//
// A Fault is safe for concurrent use.
type Fault struct {
	under FS

	mu         sync.Mutex
	written    int64
	crashAfter int64 // -1 = disabled
	crashed    bool
	syncErr    error
	shortAt    int64 // -1 = disabled
	shortDone  bool
}

// NewFault returns a Fault over under with no failpoints armed.
func NewFault(under FS) *Fault {
	return &Fault{under: under, crashAfter: -1, shortAt: -1}
}

// CrashAfter arms the crash failpoint at global byte offset n.
func (f *Fault) CrashAfter(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAfter = n
}

// FailSyncs makes every subsequent File.Sync fail with err (nil disarms).
func (f *Fault) FailSyncs(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncErr = err
}

// ShortWriteAt arms a one-shot short write at global byte offset n.
func (f *Fault) ShortWriteAt(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.shortAt = n
	f.shortDone = false
}

// Crashed reports whether the crash failpoint has fired.
func (f *Fault) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// BytesWritten returns the total bytes persisted through the Fault so far —
// what a test measures on a clean run to pick crash offsets from.
func (f *Fault) BytesWritten() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}

// gate returns ErrCrashed once the crash point has fired.
func (f *Fault) gate() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

func (f *Fault) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	file, err := f.under.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, under: file}, nil
}

func (f *Fault) ReadFile(name string) ([]byte, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	return f.under.ReadFile(name)
}

func (f *Fault) ReadDir(name string) ([]os.DirEntry, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	return f.under.ReadDir(name)
}

func (f *Fault) MkdirAll(path string, perm os.FileMode) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.under.MkdirAll(path, perm)
}

func (f *Fault) Rename(oldpath, newpath string) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.under.Rename(oldpath, newpath)
}

func (f *Fault) Remove(name string) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.under.Remove(name)
}

func (f *Fault) Truncate(name string, size int64) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.under.Truncate(name, size)
}

func (f *Fault) SyncDir(name string) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.under.SyncDir(name)
}

func (f *Fault) Stat(name string) (os.FileInfo, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	return f.under.Stat(name)
}

// faultFile applies the write-path failpoints of its Fault.
type faultFile struct {
	f     *Fault
	under File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.f.mu.Lock()
	if ff.f.crashed {
		ff.f.mu.Unlock()
		return 0, ErrCrashed
	}
	allow := len(p)
	var fail error
	if ff.f.crashAfter >= 0 && ff.f.written+int64(len(p)) > ff.f.crashAfter {
		allow = int(ff.f.crashAfter - ff.f.written)
		ff.f.crashed = true
		fail = ErrCrashed
	} else if ff.f.shortAt >= 0 && !ff.f.shortDone && ff.f.written+int64(len(p)) > ff.f.shortAt {
		allow = int(ff.f.shortAt - ff.f.written)
		ff.f.shortDone = true
		fail = ErrInjected
	}
	if allow < 0 {
		allow = 0
	}
	ff.f.mu.Unlock()

	n := 0
	var err error
	if allow > 0 {
		n, err = ff.under.Write(p[:allow])
	}
	ff.f.mu.Lock()
	ff.f.written += int64(n)
	ff.f.mu.Unlock()
	if err != nil {
		return n, err
	}
	if fail != nil {
		return n, fail
	}
	return n, nil
}

func (ff *faultFile) Sync() error {
	if err := ff.f.gate(); err != nil {
		return err
	}
	ff.f.mu.Lock()
	syncErr := ff.f.syncErr
	ff.f.mu.Unlock()
	if syncErr != nil {
		return syncErr
	}
	return ff.under.Sync()
}

func (ff *faultFile) Truncate(size int64) error {
	if err := ff.f.gate(); err != nil {
		return err
	}
	return ff.under.Truncate(size)
}

func (ff *faultFile) Close() error {
	// Closing is allowed after a crash: the underlying descriptor is real
	// and tests must not leak it.
	return ff.under.Close()
}
