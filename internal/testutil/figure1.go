// Package testutil provides shared fixtures for the test suites: most
// importantly a faithful reconstruction of the paper's running example
// (Fig. 1), against which every worked example of the paper (Examples 1-10)
// is asserted, and random graph/pattern generators for property tests.
package testutil

import (
	"fmt"
	"math/rand"

	"divtopk/internal/graph"
	"divtopk/internal/pattern"
)

// Figure1 reconstructs the collaboration network G of Fig. 1(b). The edge
// set is derived so that *all* facts stated in Examples 1-10 hold
// simultaneously:
//
//   - M(Q,G) = {(PM,PMi)} ∪ {(DB,DBj)} ∪ {(PRG,PRGi)} ∪ {(ST,STi)},
//     i ∈ [1,4], j ∈ [1,3] — 15 pairs (Examples 1, 3);
//   - R(PM,PM1) = {DB1,PRG1,ST1,ST2}, R(PM,PM2) = {DB2,DB3,PRG2,PRG3,PRG4,
//     ST2,ST3,ST4}, R(PM,PM3) = R(PM,PM4) = {DB2,DB3,PRG2,PRG3,ST3,ST4}
//     (Example 4);
//   - δd(PM3,PM4)=0, δd(PM1,PM2)=10/11, δd(PM2,PM3)=1/4, δd(PM1,PM3)=1
//     (Example 5);
//   - for the DAG pattern Q1 of Example 7, PM2's candidate successors are
//     {PRG3,PRG4,DB2} and PM3's are {PRG3,DB2}, giving the boolean
//     equations and the h values 3 and 2 of its vector table;
//   - the DB/PRG cycle of G is DB2→PRG2→DB3→PRG3→DB2, giving the boolean
//     equations of Example 8 and h(DB2)=6, h(PRG4)=7;
//   - PM2 reaches more people than any other PM (the social-impact claim of
//     Example 1).
//
// Returned is the graph plus a map from node names ("PM1", "DB2", ...) to IDs.
func Figure1() (*graph.Graph, map[string]graph.NodeID) {
	b := graph.NewBuilder()
	names := []string{
		"PM1", "PM2", "PM3", "PM4",
		"DB1", "DB2", "DB3",
		"PRG1", "PRG2", "PRG3", "PRG4",
		"ST1", "ST2", "ST3", "ST4",
		"BA1", "UD1", "UD2",
	}
	id := make(map[string]graph.NodeID, len(names))
	for _, n := range names {
		label := n[:len(n)-1]
		id[n] = b.AddNode(label, nil)
	}
	edges := [][2]string{
		{"PM1", "DB1"}, {"PM1", "PRG1"}, {"PM1", "BA1"},
		{"PM2", "DB2"}, {"PM2", "PRG3"}, {"PM2", "PRG4"}, {"PM2", "UD1"},
		{"PM3", "DB2"}, {"PM3", "PRG3"},
		{"PM4", "DB2"}, {"PM4", "PRG2"}, {"PM4", "UD2"},
		{"DB1", "PRG1"}, {"DB1", "ST1"},
		{"PRG1", "DB1"}, {"PRG1", "ST1"}, {"PRG1", "ST2"},
		{"DB2", "PRG2"}, {"DB2", "ST3"},
		{"PRG2", "DB3"}, {"PRG2", "ST4"},
		{"DB3", "PRG3"}, {"DB3", "ST4"},
		{"PRG3", "DB2"}, {"PRG3", "ST3"},
		{"PRG4", "DB2"}, {"PRG4", "ST2"}, {"PRG4", "ST3"},
	}
	for _, e := range edges {
		if err := b.AddEdge(id[e[0]], id[e[1]]); err != nil {
			panic(fmt.Sprintf("testutil: %v", err))
		}
	}
	return b.Build(), id
}

// Figure1Pattern builds the pattern Q of Fig. 1(a): PM* supervises a DB and
// a PRG who supervised each other (directly or indirectly) and who each
// supervised an ST.
func Figure1Pattern() *pattern.Pattern {
	p := pattern.New()
	pm := p.AddNode("PM")
	db := p.AddNode("DB")
	prg := p.AddNode("PRG")
	st := p.AddNode("ST")
	mustEdge(p, pm, db)
	mustEdge(p, pm, prg)
	mustEdge(p, db, prg)
	mustEdge(p, prg, db)
	mustEdge(p, db, st)
	mustEdge(p, prg, st)
	if err := p.SetOutput(pm); err != nil {
		panic(err)
	}
	return p
}

// Example7Pattern builds the DAG pattern Q1 of Example 7 with edge set
// {(PM,DB), (PM,PRG), (PRG,DB)} and output node PM.
func Example7Pattern() *pattern.Pattern {
	p := pattern.New()
	pm := p.AddNode("PM")
	db := p.AddNode("DB")
	prg := p.AddNode("PRG")
	mustEdge(p, pm, db)
	mustEdge(p, pm, prg)
	mustEdge(p, prg, db)
	if err := p.SetOutput(pm); err != nil {
		panic(err)
	}
	return p
}

func mustEdge(p *pattern.Pattern, u, v int) {
	if err := p.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// RandomGraph builds a random labeled digraph for property tests.
func RandomGraph(rng *rand.Rand, n, m int, labels []string) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(labels[rng.Intn(len(labels))], nil)
	}
	for i := 0; i < m; i++ {
		// Endpoints are in range, so AddEdge cannot fail.
		_ = b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	return b.Build()
}

// RandomPattern builds a random connected pattern whose node 0 is the output
// and reaches every other query node (a spanning out-tree plus extra edges).
// With cyclic=false the extra edges only go from lower to higher index, so
// the pattern is a DAG; with cyclic=true back edges are allowed.
func RandomPattern(rng *rand.Rand, nodes, extraEdges int, labels []string, cyclic bool) *pattern.Pattern {
	p := pattern.New()
	for i := 0; i < nodes; i++ {
		p.AddNode(labels[rng.Intn(len(labels))])
	}
	for i := 1; i < nodes; i++ {
		mustEdge(p, rng.Intn(i), i) // tree edge from an earlier node
	}
	for t := 0; t < extraEdges; t++ {
		u, v := rng.Intn(nodes), rng.Intn(nodes)
		if !cyclic && u >= v {
			u, v = v, u
			if u == v {
				continue
			}
		}
		// Duplicate edges are rejected; just skip them.
		_ = p.AddEdge(u, v)
	}
	_ = p.SetOutput(0)
	return p
}

// NonRootPattern returns a random pattern whose output node is NOT a root:
// it picks a random non-zero node as output.
func NonRootPattern(rng *rand.Rand, nodes, extraEdges int, labels []string, cyclic bool) *pattern.Pattern {
	p := RandomPattern(rng, nodes, extraEdges, labels, cyclic)
	if nodes > 1 {
		_ = p.SetOutput(1 + rng.Intn(nodes-1))
	}
	return p
}
