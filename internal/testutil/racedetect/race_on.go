//go:build race

// Package racedetect reports whether the race detector is active, so
// allocation-count regression tests can skip themselves (the race runtime
// instruments allocations and breaks AllocsPerRun expectations). It has no
// dependencies and is importable from any package, including internal/graph.
package racedetect

// Enabled is true when the binary was built with -race.
const Enabled = true
