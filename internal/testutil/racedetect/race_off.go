//go:build !race

package racedetect

// Enabled is true when the binary was built with -race.
const Enabled = false
