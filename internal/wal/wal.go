// Package wal implements the write-ahead delta log of the durability layer:
// an append-only file of length-prefixed binary records, one per applied
// graph delta, each carrying the post-apply snapshot version and a CRC32C
// over its payload.
//
// # Record format
//
// Each record is
//
//	u32le payload length | u32le crc32c(payload) | payload
//
// where the payload is the varint delta encoding of codec.go, starting with
// the snapshot version. Record versions are contiguous: each record's
// version is its predecessor's plus one, so replaying the log from a
// checkpoint at version v means skipping records ≤ v and applying the rest
// in order through the ordinary ApplyDelta path.
//
// # Torn tails and corruption
//
// A crash mid-append leaves a torn tail: a final record whose bytes are
// incomplete or whose CRC does not match. Open detects this and truncates
// the file back to the last valid record instead of failing — losing an
// un-acknowledged suffix is exactly what a write-ahead log is allowed to do.
// A record that fails validation but is followed by a CRC-valid record is a
// different animal: the log was damaged in place, acknowledged records are
// gone, and Open reports a hard *CorruptError carrying the offending byte
// offset rather than silently dropping everything after it. (A failed record
// whose claimed extent yields no valid successor is indistinguishable from a
// torn tail by construction and is truncated as one.)
//
// # Fsync policy
//
// SyncAlways fsyncs every append before acknowledging it — the delta is
// durable when Append returns. SyncInterval fsyncs when Interval has elapsed
// since the last sync, bounding the un-durable window while amortizing the
// fsync cost across appends. SyncNever leaves flushing to the OS. Any append
// or sync failure is sticky: the file may hold a partial record, so the Log
// refuses further appends with the original error and the server degrades to
// serving reads at the last durable version until restarted.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"time"

	"divtopk/internal/fsx"
	"divtopk/internal/graph"
)

// SyncPolicy selects when Append fsyncs the log file.
type SyncPolicy int

const (
	// SyncAlways fsyncs every append: durable before acknowledged.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs when Options.Interval has elapsed since the last
	// sync: bounded data loss, amortized fsync cost.
	SyncInterval
	// SyncNever leaves flushing to the operating system.
	SyncNever
)

// String renders the policy as its flag spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy parses the flag spelling of a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (always, interval, never)", s)
}

// Options configures a Log.
type Options struct {
	// Policy selects the fsync discipline (default SyncAlways).
	Policy SyncPolicy
	// Interval is the maximum time between fsyncs under SyncInterval
	// (default 100ms).
	Interval time.Duration
	// FS is the filesystem to operate on (default the real one). Tests
	// substitute an fsx.Fault to inject crashes and write failures.
	FS fsx.FS
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.FS == nil {
		o.FS = fsx.OS()
	}
	return o
}

// Record is one recovered log entry: the delta and the snapshot version its
// application produced.
type Record struct {
	Version uint64
	Delta   *graph.Delta
}

// RecoverInfo describes what Open found in an existing log file.
type RecoverInfo struct {
	// Records is the number of valid records recovered.
	Records int
	// Torn reports whether a partial final record was truncated away, and
	// TornOffset the byte offset it started at.
	Torn       bool
	TornOffset int64
}

// CorruptError is a hard mid-log validation failure: a record before the
// tail is damaged, so acknowledged history is gone and recovery must not
// proceed as if the prefix were the whole story.
type CorruptError struct {
	Path   string
	Offset int64
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: %s: corrupt record at offset %d: %s", e.Path, e.Offset, e.Reason)
}

const (
	headerSize = 8
	// maxRecord bounds a single payload; a length beyond it is garbage, not
	// a real record.
	maxRecord = 1 << 30
	// minPayload is the smallest encodable payload: a version and three
	// zero counts, one varint byte each.
	minPayload = 4
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Log is an append-only delta log. Safe for concurrent use; in the serving
// stack appends are additionally serialized by the Matcher's update lock.
type Log struct {
	mu       sync.Mutex
	fs       fsx.FS
	path     string
	f        fsx.File
	policy   SyncPolicy
	interval time.Duration
	lastSync time.Time
	size     int64
	lastVer  uint64
	hasVer   bool
	failed   error
	buf      []byte
}

// Open scans the log at path — creating it if absent — truncates a torn
// tail, and returns the log positioned for appending together with every
// valid record in order. A mid-log corruption aborts with a *CorruptError.
func Open(path string, opts Options) (*Log, []Record, RecoverInfo, error) {
	opts = opts.withDefaults()
	data, err := opts.FS.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, RecoverInfo{}, fmt.Errorf("wal: reading %s: %w", path, err)
	}
	records, valid, info, err := scan(path, data)
	if err != nil {
		return nil, nil, info, err
	}
	if info.Torn {
		if err := opts.FS.Truncate(path, valid); err != nil {
			return nil, nil, info, fmt.Errorf("wal: truncating torn tail of %s at %d: %w", path, valid, err)
		}
	}
	f, err := opts.FS.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, info, fmt.Errorf("wal: opening %s for append: %w", path, err)
	}
	l := &Log{
		fs:       opts.FS,
		path:     path,
		f:        f,
		policy:   opts.Policy,
		interval: opts.Interval,
		size:     valid,
	}
	if n := len(records); n > 0 {
		l.lastVer = records[n-1].Version
		l.hasVer = true
	}
	return l, records, info, nil
}

// validRecordAt reports whether a complete CRC-valid record starts at off —
// the evidence that distinguishes a mid-log corruption from a torn tail.
func validRecordAt(data []byte, off int64) bool {
	if int64(len(data))-off < headerSize {
		return false
	}
	length := int64(binary.LittleEndian.Uint32(data[off:]))
	if length < minPayload || length > maxRecord || off+headerSize+length > int64(len(data)) {
		return false
	}
	crc := binary.LittleEndian.Uint32(data[off+4:])
	payload := data[off+headerSize : off+headerSize+length]
	return crc32.Checksum(payload, crcTable) == crc
}

// scan walks the raw log bytes, applying the torn-tail/corruption policy of
// the package comment. It returns the records of the valid prefix, the byte
// length of that prefix, and the recovery info.
func scan(path string, data []byte) ([]Record, int64, RecoverInfo, error) {
	var (
		records []Record
		off     int64
		info    RecoverInfo
	)
	torn := func(at int64, _ string) ([]Record, int64, RecoverInfo, error) {
		info.Torn = true
		info.TornOffset = at
		info.Records = len(records)
		return records, at, info, nil
	}
	corrupt := func(at int64, reason string) ([]Record, int64, RecoverInfo, error) {
		return nil, 0, info, &CorruptError{Path: path, Offset: at, Reason: reason}
	}
	for off < int64(len(data)) {
		if int64(len(data))-off < headerSize {
			return torn(off, "short header")
		}
		length := int64(binary.LittleEndian.Uint32(data[off:]))
		if length < minPayload || length > maxRecord {
			// No claimed extent to resync from: indistinguishable from a
			// torn tail, handled as one.
			return torn(off, "implausible length")
		}
		end := off + headerSize + length
		if end > int64(len(data)) {
			return torn(off, "short payload")
		}
		crc := binary.LittleEndian.Uint32(data[off+4:])
		payload := data[off+headerSize : end]
		if crc32.Checksum(payload, crcTable) != crc {
			if validRecordAt(data, end) {
				return corrupt(off, "CRC mismatch before a valid record")
			}
			return torn(off, "CRC mismatch at tail")
		}
		version, d, err := decodeRecord(payload)
		if err != nil {
			// The CRC matched, so these are the bytes the writer produced:
			// a decode failure is writer damage, not a torn write.
			return corrupt(off, fmt.Sprintf("undecodable payload: %v", err))
		}
		if n := len(records); n > 0 && version != records[n-1].Version+1 {
			return corrupt(off, fmt.Sprintf("version %d does not follow %d", version, records[n-1].Version))
		}
		records = append(records, Record{Version: version, Delta: d})
		off = end
	}
	info.Records = len(records)
	return records, off, info, nil
}

// Append encodes (version, d) and writes it to the log, fsyncing per the
// policy. version must extend the log contiguously. Any write or sync
// failure is sticky: the file may now end in a partial record, so every
// later Append fails with the original error until the process restarts and
// Open truncates the tail.
func (l *Log) Append(version uint64, d *graph.Delta) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	if l.hasVer && version != l.lastVer+1 {
		// A version gap is a caller bug, not a device failure: nothing was
		// written, so the log stays usable.
		return fmt.Errorf("wal: append version %d does not follow %d", version, l.lastVer)
	}
	l.buf = l.buf[:0]
	l.buf = append(l.buf, 0, 0, 0, 0, 0, 0, 0, 0)
	l.buf = encodeRecord(l.buf, version, d)
	payload := l.buf[headerSize:]
	binary.LittleEndian.PutUint32(l.buf[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(l.buf[4:], crc32.Checksum(payload, crcTable))
	n, err := l.f.Write(l.buf)
	l.size += int64(n)
	if err != nil {
		l.failed = fmt.Errorf("wal: appending to %s: %w", l.path, err)
		return l.failed
	}
	if err := l.maybeSync(); err != nil {
		return err
	}
	l.lastVer = version
	l.hasVer = true
	return nil
}

// AppendBatch writes the records (firstVersion+i, ds[i]) in one contiguous
// write followed by a single sync point per the policy — the group-commit
// append: K records cost one fsync instead of K. firstVersion must extend
// the log contiguously. A crash during the write leaves a prefix of the
// batch's records (the torn one is truncated by the next Open); since the
// caller acknowledges nothing until AppendBatch returns, the lost suffix
// was never promised. Failures are sticky exactly as for Append.
func (l *Log) AppendBatch(firstVersion uint64, ds []*graph.Delta) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	if len(ds) == 0 {
		return nil
	}
	if l.hasVer && firstVersion != l.lastVer+1 {
		// A version gap is a caller bug, not a device failure: nothing was
		// written, so the log stays usable.
		return fmt.Errorf("wal: batch first version %d does not follow %d", firstVersion, l.lastVer)
	}
	l.buf = l.buf[:0]
	for i, d := range ds {
		start := len(l.buf)
		l.buf = append(l.buf, 0, 0, 0, 0, 0, 0, 0, 0)
		l.buf = encodeRecord(l.buf, firstVersion+uint64(i), d)
		payload := l.buf[start+headerSize:]
		binary.LittleEndian.PutUint32(l.buf[start:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(l.buf[start+4:], crc32.Checksum(payload, crcTable))
	}
	n, err := l.f.Write(l.buf)
	l.size += int64(n)
	if err != nil {
		l.failed = fmt.Errorf("wal: appending batch to %s: %w", l.path, err)
		return l.failed
	}
	if err := l.maybeSync(); err != nil {
		return err
	}
	l.lastVer = firstVersion + uint64(len(ds)) - 1
	l.hasVer = true
	return nil
}

// maybeSync applies the sync policy after a successful write. Callers hold
// l.mu.
func (l *Log) maybeSync() error {
	switch l.policy {
	case SyncAlways:
		return l.syncLocked()
	case SyncInterval:
		if time.Since(l.lastSync) >= l.interval {
			return l.syncLocked()
		}
	}
	return nil
}

// Sync fsyncs the log file regardless of policy — the graceful-shutdown
// flush. Failure is sticky like an append failure.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := l.f.Sync(); err != nil {
		l.failed = fmt.Errorf("wal: syncing %s: %w", l.path, err)
		return l.failed
	}
	l.lastSync = time.Now()
	return nil
}

// Reset empties the log after a checkpoint made its records obsolete (the
// checkpoint-then-truncate rotation). The version sequence continues: the
// next Append must still carry the next contiguous version.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	if err := l.f.Truncate(0); err != nil {
		l.failed = fmt.Errorf("wal: truncating %s: %w", l.path, err)
		return l.failed
	}
	l.size = 0
	return l.syncLocked()
}

// LastVersion returns the version of the newest record ever appended or
// recovered, and whether there is one.
func (l *Log) LastVersion() (uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastVer, l.hasVer
}

// Size returns the current byte size of the log file.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Err returns the sticky failure, if any: non-nil means the log is degraded
// and refuses appends.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// Close flushes and closes the log file. A Log that already failed skips
// the flush — the file state is suspect — but still releases the
// descriptor.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var syncErr error
	if l.failed == nil {
		syncErr = l.syncLocked()
	}
	closeErr := l.f.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
