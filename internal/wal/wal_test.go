package wal

import (
	"errors"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"divtopk/internal/fsx"
	"divtopk/internal/graph"
)

// randDelta builds a deterministic pseudo-random delta exercising every
// payload shape: node appends with int and string attributes, edge inserts,
// edge deletes.
func randDelta(rng *rand.Rand) *graph.Delta {
	d := &graph.Delta{}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		var attrs map[string]graph.Value
		if rng.Intn(2) == 0 {
			attrs = map[string]graph.Value{
				"R": graph.IntValue(rng.Int63n(100)),
				"C": graph.StrValue("music"),
			}
		}
		d.NodeAppends = append(d.NodeAppends, graph.NodeAppend{Label: "L", Attrs: attrs})
	}
	for i, n := 0, rng.Intn(4); i < n; i++ {
		d.EdgeInserts = append(d.EdgeInserts, [2]graph.NodeID{graph.NodeID(rng.Intn(50)), graph.NodeID(rng.Intn(50))})
	}
	for i, n := 0, rng.Intn(2); i < n; i++ {
		d.EdgeDeletes = append(d.EdgeDeletes, [2]graph.NodeID{graph.NodeID(rng.Intn(50)), graph.NodeID(rng.Intn(50))})
	}
	return d
}

// writeChain appends versions 1..n of random deltas to a fresh log at path
// and returns the deltas.
func writeChain(t *testing.T, path string, n int, seed int64) []*graph.Delta {
	t.Helper()
	l, recs, info, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || info.Torn {
		t.Fatalf("fresh log not empty: %d records, torn=%v", len(recs), info.Torn)
	}
	rng := rand.New(rand.NewSource(seed))
	deltas := make([]*graph.Delta, n)
	for i := range deltas {
		deltas[i] = randDelta(rng)
		if err := l.Append(uint64(i+1), deltas[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return deltas
}

func TestRoundTrip(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "wal.log")
	deltas := writeChain(t, path, 16, 1)
	l, recs, info, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if info.Torn || info.Records != 16 {
		t.Fatalf("recover info = %+v", info)
	}
	for i, r := range recs {
		if r.Version != uint64(i+1) {
			t.Fatalf("record %d version = %d", i, r.Version)
		}
		if !reflect.DeepEqual(r.Delta, deltas[i]) {
			t.Fatalf("record %d delta mismatch:\n got %#v\nwant %#v", i, r.Delta, deltas[i])
		}
	}
	if v, ok := l.LastVersion(); !ok || v != 16 {
		t.Fatalf("LastVersion = (%d, %v)", v, ok)
	}
	// Appends continue contiguously after recovery.
	if err := l.Append(17, &graph.Delta{}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(19, &graph.Delta{}); err == nil {
		t.Fatal("version gap accepted")
	}
	// A rejected gap is a caller bug, not a device failure: the log stays
	// usable for the correct next version.
	if err := l.Append(18, &graph.Delta{}); err != nil {
		t.Fatalf("append after rejected gap: %v", err)
	}
}

func TestEncodingIsDeterministic(t *testing.T) {
	t.Parallel()
	d := &graph.Delta{}
	d.AddNode("A", map[string]graph.Value{"z": graph.IntValue(1), "a": graph.StrValue("x"), "m": graph.IntValue(-7)})
	d.InsertEdge(3, 4)
	a := encodeRecord(nil, 9, d)
	b := encodeRecord(nil, 9, d)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same delta encoded to different bytes")
	}
	ver, got, err := decodeRecord(a)
	if err != nil || ver != 9 {
		t.Fatalf("decode = (%d, %v)", ver, err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("decode mismatch:\n got %#v\nwant %#v", got, d)
	}
}

// tornFuzz opens a mutated copy of the log and asserts the valid prefix came
// back: all records but the final one, with appends still working after.
func tornFuzz(t *testing.T, dir string, data []byte, wantRecords int) {
	t.Helper()
	path := filepath.Join(dir, "mut.log")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l, recs, _, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(recs) != wantRecords {
		t.Fatalf("recovered %d records, want %d", len(recs), wantRecords)
	}
	for i, r := range recs {
		if r.Version != uint64(i+1) {
			t.Fatalf("record %d version = %d", i, r.Version)
		}
	}
	next := uint64(wantRecords + 1)
	if err := l.Append(next, &graph.Delta{}); err != nil {
		t.Fatalf("append after torn recovery: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTornTailEveryByte is the torn-tail fuzz of the issue: the final record
// truncated at every byte boundary and corrupted at every byte offset must
// recover the valid prefix, never fail, and never resurrect the damaged
// record.
func TestTornTailEveryByte(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	const n = 4
	writeChain(t, path, n, 2)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct the final record's start offset by scanning.
	recs, valid, info, err := scan(path, full)
	if err != nil || info.Torn || len(recs) != n {
		t.Fatalf("pristine scan = (%d records, torn=%v, %v)", len(recs), info.Torn, err)
	}
	if valid != int64(len(full)) {
		t.Fatalf("valid prefix %d != file size %d", valid, len(full))
	}
	_, prevEnd, _, err := scan(path, full[:lastRecordStart(t, full)])
	if err != nil {
		t.Fatal(err)
	}
	last := prevEnd

	// Truncation at every byte boundary of the final record (and exactly at
	// its start, which is simply a shorter clean log).
	for cut := last; cut <= int64(len(full)); cut++ {
		want := n - 1
		if cut == int64(len(full)) {
			want = n
		}
		tornFuzz(t, dir, append([]byte(nil), full[:cut]...), want)
	}

	// Corruption at every byte offset of the final record: length field, CRC
	// field, version, payload — all classify as a torn tail because nothing
	// valid follows.
	for i := last; i < int64(len(full)); i++ {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0xff
		tornFuzz(t, dir, mut, n-1)
	}
}

// lastRecordStart returns the offset of the final record of a valid log.
func lastRecordStart(t *testing.T, data []byte) int64 {
	t.Helper()
	var off, prev int64
	for off < int64(len(data)) {
		prev = off
		if !validRecordAt(data, off) {
			t.Fatalf("invalid record at %d in pristine log", off)
		}
		length := int64(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		off += headerSize + length
	}
	return prev
}

// TestMidLogCorruptionIsHardError flips every CRC-covered byte of a mid-log
// record: recovery must refuse with a *CorruptError naming the record's
// offset, because acknowledged history is damaged — truncating there would
// silently drop the valid records after it.
func TestMidLogCorruptionIsHardError(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	writeChain(t, path, 4, 3)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Record 2's extent: [start, end).
	var start, end int64
	{
		var off int64
		for i := 0; i < 2; i++ {
			length := int64(uint32(full[off]) | uint32(full[off+1])<<8 | uint32(full[off+2])<<16 | uint32(full[off+3])<<24)
			start = off
			end = off + headerSize + length
			off = end
		}
	}
	for i := start + 4; i < end; i++ { // skip the length field: no claimed extent to resync from
		mut := append([]byte(nil), full...)
		mut[i] ^= 0xff
		p := filepath.Join(dir, "mut.log")
		if err := os.WriteFile(p, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, _, err := Open(p, Options{})
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("byte %d: err = %v, want *CorruptError", i, err)
		}
		if ce.Offset != start {
			t.Fatalf("byte %d: corrupt offset = %d, want %d", i, ce.Offset, start)
		}
	}
}

func TestVersionDiscontinuityIsHardError(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "wal.log")
	// Hand-craft records with versions 1 then 3: both CRC-valid, so this is
	// writer damage, not a torn write.
	l, _, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, &graph.Delta{}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Bypass the writer's contiguity guard by appending a raw record.
	var raw []byte
	raw = append(raw, 0, 0, 0, 0, 0, 0, 0, 0)
	raw = encodeRecord(raw, 3, &graph.Delta{})
	payload := raw[headerSize:]
	putHeader(raw, payload)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(raw); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, _, _, err = Open(path, Options{})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptError", err)
	}
}

// countingFS counts fsync calls through the File it hands out.
type countingFS struct {
	fsx.FS
	mu    sync.Mutex
	syncs int
}

type countingFile struct {
	fsx.File
	fs *countingFS
}

func (c *countingFS) OpenFile(name string, flag int, perm os.FileMode) (fsx.File, error) {
	f, err := c.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &countingFile{File: f, fs: c}, nil
}

func (c *countingFile) Sync() error {
	c.fs.mu.Lock()
	c.fs.syncs++
	c.fs.mu.Unlock()
	return c.File.Sync()
}

func (c *countingFS) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.syncs
}

func TestSyncPolicies(t *testing.T) {
	t.Parallel()
	const appends = 8
	cases := []struct {
		name     string
		opts     Options
		want     func(got int) bool
		describe string
	}{
		{"always", Options{Policy: SyncAlways}, func(got int) bool { return got == appends+1 }, "one per append plus the close flush"},
		{"interval", Options{Policy: SyncInterval, Interval: time.Hour}, func(got int) bool { return got == 2 }, "the first append (clock at zero) plus the close flush"},
		{"never", Options{Policy: SyncNever}, func(got int) bool { return got == 1 }, "only the close flush"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfs := &countingFS{FS: fsx.OS()}
			opts := tc.opts
			opts.FS = cfs
			l, _, _, err := Open(filepath.Join(t.TempDir(), "wal.log"), opts)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= appends; i++ {
				if err := l.Append(uint64(i), &graph.Delta{}); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			if got := cfs.count(); !tc.want(got) {
				t.Fatalf("policy %s: %d fsyncs, want %s", tc.name, got, tc.describe)
			}
		})
	}
}

func TestAppendFailureIsSticky(t *testing.T) {
	t.Parallel()
	fault := fsx.NewFault(fsx.OS())
	l, _, _, err := Open(filepath.Join(t.TempDir(), "wal.log"), Options{FS: fault})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(1, &graph.Delta{}); err != nil {
		t.Fatal(err)
	}
	inj := errors.New("device gone")
	fault.FailSyncs(inj)
	if err := l.Append(2, &graph.Delta{}); !errors.Is(err, inj) {
		t.Fatalf("append under failing sync = %v", err)
	}
	// Disarming the fault must not un-degrade the log: the file may hold a
	// partial or un-synced record, so only a restart (and tail truncation)
	// recovers.
	fault.FailSyncs(nil)
	if err := l.Append(3, &graph.Delta{}); !errors.Is(err, inj) {
		t.Fatalf("append after disarm = %v, want sticky %v", err, inj)
	}
	if l.Err() == nil {
		t.Fatal("Err() = nil on a degraded log")
	}
}

func TestResetRotation(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := l.Append(uint64(i), &graph.Delta{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 0 {
		t.Fatalf("size after reset = %d", l.Size())
	}
	// The version sequence continues across the rotation.
	if err := l.Append(3, &graph.Delta{}); err == nil {
		t.Fatal("stale version accepted after reset")
	}
	if err := l.Append(4, &graph.Delta{}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Version != 4 {
		t.Fatalf("after rotation: %d records, first version %d", len(recs), recs[0].Version)
	}
}

// putHeader fills the length and CRC header fields of a raw record.
func putHeader(raw, payload []byte) {
	raw[0] = byte(len(payload))
	raw[1] = byte(len(payload) >> 8)
	raw[2] = byte(len(payload) >> 16)
	raw[3] = byte(len(payload) >> 24)
	crc := crc32.Checksum(payload, crcTable)
	raw[4] = byte(crc)
	raw[5] = byte(crc >> 8)
	raw[6] = byte(crc >> 16)
	raw[7] = byte(crc >> 24)
}
