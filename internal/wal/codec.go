package wal

import (
	"encoding/binary"
	"fmt"
	"sort"

	"divtopk/internal/graph"
)

// Binary delta payload, all integers varint-encoded (uvarint unless noted):
//
//	version          uint64
//	numNodeAppends   then per append: label string, numAttrs, then per
//	                 attr (sorted by key): key string, kind byte,
//	                 int64 varint | string
//	numEdgeInserts   then per edge: src, dst
//	numEdgeDeletes   then per edge: src, dst
//
// Strings are uvarint length + bytes. Attribute keys are emitted sorted so
// encoding a delta is deterministic: the same delta always produces the same
// bytes, which is what lets the recovery tests compare WAL files directly.

func appendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

func appendString(buf []byte, s string) []byte {
	buf = appendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendEdges(buf []byte, edges [][2]graph.NodeID) []byte {
	buf = appendUvarint(buf, uint64(len(edges)))
	for _, e := range edges {
		buf = appendUvarint(buf, uint64(uint32(e[0])))
		buf = appendUvarint(buf, uint64(uint32(e[1])))
	}
	return buf
}

// encodeRecord serializes one (version, delta) payload into buf.
func encodeRecord(buf []byte, version uint64, d *graph.Delta) []byte {
	buf = appendUvarint(buf, version)
	buf = appendUvarint(buf, uint64(len(d.NodeAppends)))
	for _, na := range d.NodeAppends {
		buf = appendString(buf, na.Label)
		buf = appendUvarint(buf, uint64(len(na.Attrs)))
		keys := make([]string, 0, len(na.Attrs))
		for k := range na.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			v := na.Attrs[k]
			buf = appendString(buf, k)
			buf = append(buf, byte(v.Kind))
			if v.Kind == graph.KindInt {
				buf = binary.AppendVarint(buf, v.Int)
			} else {
				buf = appendString(buf, v.Str)
			}
		}
	}
	buf = appendEdges(buf, d.EdgeInserts)
	buf = appendEdges(buf, d.EdgeDeletes)
	return buf
}

// decoder walks one payload, remembering the first error.
type decoder struct {
	buf []byte
	err error
}

func (dec *decoder) fail(format string, args ...any) {
	if dec.err == nil {
		dec.err = fmt.Errorf(format, args...)
	}
}

func (dec *decoder) uvarint() uint64 {
	if dec.err != nil {
		return 0
	}
	v, n := binary.Uvarint(dec.buf)
	if n <= 0 {
		dec.fail("wal: truncated or overlong uvarint")
		return 0
	}
	dec.buf = dec.buf[n:]
	return v
}

func (dec *decoder) varint() int64 {
	if dec.err != nil {
		return 0
	}
	v, n := binary.Varint(dec.buf)
	if n <= 0 {
		dec.fail("wal: truncated or overlong varint")
		return 0
	}
	dec.buf = dec.buf[n:]
	return v
}

func (dec *decoder) str() string {
	n := dec.uvarint()
	if dec.err != nil {
		return ""
	}
	if n > uint64(len(dec.buf)) {
		dec.fail("wal: string length %d exceeds remaining %d bytes", n, len(dec.buf))
		return ""
	}
	s := string(dec.buf[:n])
	dec.buf = dec.buf[n:]
	return s
}

func (dec *decoder) byte() byte {
	if dec.err != nil {
		return 0
	}
	if len(dec.buf) == 0 {
		dec.fail("wal: truncated byte")
		return 0
	}
	b := dec.buf[0]
	dec.buf = dec.buf[1:]
	return b
}

func (dec *decoder) edges() [][2]graph.NodeID {
	n := dec.uvarint()
	if dec.err != nil || n == 0 {
		return nil
	}
	// Each edge costs at least 2 bytes; reject counts the payload cannot hold
	// before allocating for them.
	if n > uint64(len(dec.buf)) {
		dec.fail("wal: edge count %d exceeds remaining payload", n)
		return nil
	}
	out := make([][2]graph.NodeID, 0, n)
	for i := uint64(0); i < n && dec.err == nil; i++ {
		src := dec.uvarint()
		dst := dec.uvarint()
		out = append(out, [2]graph.NodeID{graph.NodeID(uint32(src)), graph.NodeID(uint32(dst))})
	}
	return out
}

// decodeRecord parses one payload back into (version, delta).
func decodeRecord(payload []byte) (uint64, *graph.Delta, error) {
	dec := &decoder{buf: payload}
	version := dec.uvarint()
	d := &graph.Delta{}
	nAppends := dec.uvarint()
	if dec.err == nil && nAppends > uint64(len(dec.buf)) {
		dec.fail("wal: node-append count %d exceeds remaining payload", nAppends)
	}
	for i := uint64(0); i < nAppends && dec.err == nil; i++ {
		label := dec.str()
		nAttrs := dec.uvarint()
		if dec.err == nil && nAttrs > uint64(len(dec.buf)) {
			dec.fail("wal: attr count %d exceeds remaining payload", nAttrs)
			break
		}
		var attrs map[string]graph.Value
		if nAttrs > 0 {
			attrs = make(map[string]graph.Value, nAttrs)
		}
		for j := uint64(0); j < nAttrs && dec.err == nil; j++ {
			k := dec.str()
			kind := graph.ValueKind(dec.byte())
			switch kind {
			case graph.KindInt:
				attrs[k] = graph.IntValue(dec.varint())
			case graph.KindString:
				attrs[k] = graph.StrValue(dec.str())
			default:
				dec.fail("wal: unknown attribute kind %d", kind)
			}
		}
		d.NodeAppends = append(d.NodeAppends, graph.NodeAppend{Label: label, Attrs: attrs})
	}
	d.EdgeInserts = dec.edges()
	d.EdgeDeletes = dec.edges()
	if dec.err == nil && len(dec.buf) != 0 {
		dec.fail("wal: %d trailing bytes after delta payload", len(dec.buf))
	}
	if dec.err != nil {
		return 0, nil, dec.err
	}
	return version, d, nil
}
