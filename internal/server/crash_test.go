package server_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"divtopk"
	"divtopk/internal/fsx"
	"divtopk/internal/server"
	"divtopk/internal/wal"
)

// crashGraph builds a deterministic random graph for the crash fuzz: three
// labels, integer attributes (so patterns can carry predicates), and a dense
// enough edge set that the fixed query patterns actually match. It returns
// the graph and its edge list (the pool the delta chain deletes from).
func crashGraph(t *testing.T) (*divtopk.Graph, [][2]int) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	labels := []string{"A", "B", "C"}
	b := divtopk.NewGraphBuilder()
	const n = 40
	for i := 0; i < n; i++ {
		b.AddNode(labels[i%len(labels)], divtopk.Int("R", int64(rng.Intn(10))))
	}
	var edges [][2]int
	for i := 0; i < 150; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if err := b.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
		edges = append(edges, [2]int{u, v})
	}
	return b.Build(), edges
}

// crashDeltas builds a deterministic chain of deltas: node appends with
// attributes, edge inserts (possibly duplicates — a no-op by delta
// semantics), and deletes drawn from the initial edge pool, each at most
// once so every delete targets an edge that still exists.
func crashDeltas(t *testing.T, nodes int, pool [][2]int, n int) []*divtopk.Delta {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	labels := []string{"A", "B", "C"}
	cur := nodes
	var ds []*divtopk.Delta
	for i := 0; i < n; i++ {
		d := &divtopk.Delta{}
		for j, appends := 0, rng.Intn(3); j < appends; j++ {
			d.AddNode(labels[rng.Intn(len(labels))], divtopk.Int("R", int64(rng.Intn(10))))
			cur++
		}
		for j, ins := 0, 2+rng.Intn(3); j < ins; j++ {
			d.InsertEdge(rng.Intn(cur), rng.Intn(cur))
		}
		if len(pool) > 0 && rng.Intn(2) == 0 {
			e := pool[len(pool)-1]
			pool = pool[:len(pool)-1]
			d.DeleteEdge(e[0], e[1])
		}
		ds = append(ds, d)
	}
	return ds
}

// crashPatterns are the fixed queries whose results the fuzz compares
// byte-for-byte between the crashed-and-recovered run and the reference run.
func crashPatterns(t *testing.T) []*divtopk.Pattern {
	t.Helper()
	var ps []*divtopk.Pattern
	{
		pb := divtopk.NewPatternBuilder()
		a := pb.AddNode("A")
		bn := pb.AddNode("B")
		if err := pb.AddEdge(a, bn); err != nil {
			t.Fatal(err)
		}
		p, err := pb.Build()
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	{
		pb := divtopk.NewPatternBuilder()
		bn := pb.AddNode("B", divtopk.Gt("R", 2))
		c := pb.AddNode("C")
		a := pb.AddNode("A")
		if err := pb.AddEdge(bn, c); err != nil {
			t.Fatal(err)
		}
		if err := pb.AddEdge(c, a); err != nil {
			t.Fatal(err)
		}
		p, err := pb.Build()
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	return ps
}

// resultSet maps a query tag to the JSON bytes of its wire response.
type resultSet map[string][]byte

// snapshotResults evaluates every fuzz query (top-k and diversified) on the
// session and returns the marshaled wire responses, version included.
func snapshotResults(t *testing.T, m *divtopk.Matcher, ps []*divtopk.Pattern) resultSet {
	t.Helper()
	out := resultSet{}
	put := func(tag string, v any) {
		raw, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		out[tag] = raw
	}
	for i, p := range ps {
		res, ver, err := m.TopKWithVersion(p, 5)
		if err != nil {
			t.Fatal(err)
		}
		put(fmt.Sprintf("topk:%d", i), server.NewQueryResponse(res, ver))
		dres, dver, err := m.TopKDiversifiedWithVersion(p, 5, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		put(fmt.Sprintf("div:%d", i), server.NewDiversifiedResponse(dres, dver))
	}
	return out
}

// assertSameResults compares two result sets byte-for-byte.
func assertSameResults(t *testing.T, got, want resultSet, context string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", context, len(got), len(want))
	}
	for tag, w := range want {
		if string(got[tag]) != string(w) {
			t.Fatalf("%s: query %s diverged:\n got %s\nwant %s", context, tag, got[tag], w)
		}
	}
}

// crashFuzzOptions is the persistence config of every fuzz run. The small
// rotation interval makes the byte stream cross several checkpoint
// rotations, so random crash offsets land in every phase: WAL appends,
// checkpoint tmp writes, the rename, the post-checkpoint truncate.
func crashFuzzOptions(dir string, fs fsx.FS) server.PersistOptions {
	return server.PersistOptions{Dir: dir, FS: fs, Policy: wal.SyncAlways, CheckpointEvery: 3}
}

// runPersistentUntilCrash boots a persistent registry over fs, registers the
// graph and applies deltas until one fails. Returns the number of
// acknowledged updates, or -1 if registration itself crashed (nothing was
// ever acknowledged).
func runPersistentUntilCrash(t *testing.T, dir string, fs fsx.FS, base *divtopk.Graph, deltas []*divtopk.Delta) int {
	t.Helper()
	reg, err := server.NewPersistentRegistry(crashFuzzOptions(dir, fs))
	if err != nil {
		return -1
	}
	if err := reg.Add("g", base); err != nil {
		return -1
	}
	m, _ := reg.Get("g")
	acked := 0
	for _, d := range deltas {
		if _, err := m.Update(d); err != nil {
			if !errors.Is(err, divtopk.ErrDurabilityUnavailable) {
				t.Fatalf("update failed with a non-durability error: %v", err)
			}
			break
		}
		acked++
	}
	// No clean shutdown: the process is "killed" here.
	return acked
}

// TestCrashRecoveryFuzz is the kill-and-recover fuzz of the issue: a
// persistent server run is killed at a random byte offset of its durability
// write stream; the rebooted registry must recover to exactly the
// acknowledged version, with TopK and TopKDiversified results byte-identical
// to a reference run that never crashed — and keep accepting the remaining
// updates afterwards.
func TestCrashRecoveryFuzz(t *testing.T) {
	base, edges := crashGraph(t)
	deltas := crashDeltas(t, base.NumNodes(), edges, 8)
	patterns := crashPatterns(t)

	// Reference run: the same lineage, never crashed, results recorded per
	// version.
	ref := make(map[uint64]resultSet)
	m := divtopk.NewMatcher(base)
	ref[0] = snapshotResults(t, m, patterns)
	for _, d := range deltas {
		g, err := m.Update(d)
		if err != nil {
			t.Fatal(err)
		}
		ref[g.Version()] = snapshotResults(t, m, patterns)
	}

	// Pilot run measures the total bytes the durability layer writes, which
	// bounds the crash offsets of the fuzz runs.
	pilot := fsx.NewFault(fsx.OS())
	if acked := runPersistentUntilCrash(t, t.TempDir(), pilot, base, deltas); acked != len(deltas) {
		t.Fatalf("pilot run acked %d of %d updates", acked, len(deltas))
	}
	total := pilot.BytesWritten()
	if total == 0 {
		t.Fatal("pilot run wrote no bytes")
	}

	const seeds = 14
	for seed := int64(0); seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			offset := 1 + rng.Int63n(total)
			dir := t.TempDir()
			fault := fsx.NewFault(fsx.OS())
			fault.CrashAfter(offset)
			acked := runPersistentUntilCrash(t, dir, fault, base, deltas)
			if !fault.Crashed() {
				t.Fatalf("offset %d of %d did not crash the run (acked %d)", offset, total, acked)
			}

			reg, err := server.NewPersistentRegistry(crashFuzzOptions(dir, fsx.OS()))
			if err != nil {
				t.Fatalf("recovery after crash at offset %d: %v", offset, err)
			}
			defer reg.Close()
			if acked < 0 {
				// Killed before registration completed: nothing was
				// acknowledged, so recovering nothing is correct.
				if reg.Len() != 0 {
					t.Fatalf("recovered %d graphs from a store that never acknowledged one", reg.Len())
				}
				return
			}
			m2, ok := reg.Get("g")
			if !ok {
				t.Fatalf("graph lost after crash at offset %d (acked %d)", offset, acked)
			}
			v := m2.Version()
			if v != uint64(acked) {
				t.Fatalf("recovered version %d, acknowledged %d", v, acked)
			}
			assertSameResults(t, snapshotResults(t, m2, patterns), ref[v],
				fmt.Sprintf("offset %d, version %d", offset, v))

			// The recovered session keeps going: the remaining updates apply
			// and land on the reference end state.
			for _, d := range deltas[v:] {
				if _, err := m2.Update(d); err != nil {
					t.Fatalf("update after recovery: %v", err)
				}
			}
			assertSameResults(t, snapshotResults(t, m2, patterns), ref[uint64(len(deltas))],
				"end state after recovery")
		})
	}
}

// TestCleanShutdownRestart: Close checkpoints every graph at its served
// version, so a restarted registry recovers it with nothing to replay and
// serves identical results.
func TestCleanShutdownRestart(t *testing.T) {
	t.Parallel()
	base, edges := crashGraph(t)
	deltas := crashDeltas(t, base.NumNodes(), edges, 4)
	patterns := crashPatterns(t)
	dir := t.TempDir()

	reg, err := server.NewPersistentRegistry(crashFuzzOptions(dir, fsx.OS()))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Add("g", base); err != nil {
		t.Fatal(err)
	}
	m, _ := reg.Get("g")
	for _, d := range deltas {
		if _, err := m.Update(d); err != nil {
			t.Fatal(err)
		}
	}
	want := snapshotResults(t, m, patterns)
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	reg2, err := server.NewPersistentRegistry(crashFuzzOptions(dir, fsx.OS()))
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	m2, ok := reg2.Get("g")
	if !ok {
		t.Fatal("graph lost across clean restart")
	}
	if m2.Version() != uint64(len(deltas)) {
		t.Fatalf("restarted version = %d, want %d", m2.Version(), len(deltas))
	}
	assertSameResults(t, snapshotResults(t, m2, patterns), want, "clean restart")

	h := reg2.Health()
	if h.Status != "ok" || !h.Persistent || len(h.GraphStatus) != 1 {
		t.Fatalf("health after restart = %+v", h)
	}
	gs := h.GraphStatus[0]
	if gs.ServedVersion != uint64(len(deltas)) || gs.DurableVersion == nil || *gs.DurableVersion != gs.ServedVersion {
		t.Fatalf("graph health after restart = %+v", gs)
	}
}

// runPersistentBatchesUntilCrash is runPersistentUntilCrash for group
// commits: deltas are applied through Matcher.UpdateBatch in the given batch
// widths, so a crash can land inside a multi-record WAL write. Returns the
// number of acknowledged *versions* (every delta of an acked batch), or -1
// if registration itself crashed.
func runPersistentBatchesUntilCrash(t *testing.T, dir string, fs fsx.FS, base *divtopk.Graph, batches [][]*divtopk.Delta) int {
	t.Helper()
	reg, err := server.NewPersistentRegistry(crashFuzzOptions(dir, fs))
	if err != nil {
		return -1
	}
	if err := reg.Add("g", base); err != nil {
		return -1
	}
	m, _ := reg.Get("g")
	acked := 0
	for _, batch := range batches {
		if _, _, err := m.UpdateBatch(batch); err != nil {
			if !errors.Is(err, divtopk.ErrDurabilityUnavailable) {
				t.Fatalf("batch update failed with a non-durability error: %v", err)
			}
			break
		}
		acked += len(batch)
	}
	return acked
}

// TestCrashRecoveryBatchFuzz is the group-commit extension of the crash
// fuzz: runs are killed at random byte offsets while committing multi-delta
// batches, so crashes land inside a single multi-record WAL write. A torn
// batch write leaves a prefix of its per-request records, none of them
// acknowledged; recovery must reach at least every acknowledged version,
// never an inconsistent state, and every recovered version must answer
// queries byte-identically to the reference chain at that version.
func TestCrashRecoveryBatchFuzz(t *testing.T) {
	base, edges := crashGraph(t)
	deltas := crashDeltas(t, base.NumNodes(), edges, 9)
	patterns := crashPatterns(t)

	// Deterministic widths 2,3,2,... so most crashes land mid-batch.
	var batches [][]*divtopk.Delta
	for i, w := 0, 2; i < len(deltas); i, w = i+w, 5-w {
		end := i + w
		if end > len(deltas) {
			end = len(deltas)
		}
		batches = append(batches, deltas[i:end])
	}

	// Reference run: the sequential chain the batches are equivalent to,
	// results recorded at every version (recovery can surface any record
	// prefix, acked or not).
	ref := make(map[uint64]resultSet)
	m := divtopk.NewMatcher(base)
	ref[0] = snapshotResults(t, m, patterns)
	for _, d := range deltas {
		g, err := m.Update(d)
		if err != nil {
			t.Fatal(err)
		}
		ref[g.Version()] = snapshotResults(t, m, patterns)
	}

	pilot := fsx.NewFault(fsx.OS())
	if acked := runPersistentBatchesUntilCrash(t, t.TempDir(), pilot, base, batches); acked != len(deltas) {
		t.Fatalf("pilot run acked %d of %d versions", acked, len(deltas))
	}
	total := pilot.BytesWritten()
	if total == 0 {
		t.Fatal("pilot run wrote no bytes")
	}

	const seeds = 14
	for seed := int64(100); seed < 100+seeds; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			offset := 1 + rng.Int63n(total)
			dir := t.TempDir()
			fault := fsx.NewFault(fsx.OS())
			fault.CrashAfter(offset)
			acked := runPersistentBatchesUntilCrash(t, dir, fault, base, batches)
			if !fault.Crashed() {
				t.Fatalf("offset %d of %d did not crash the run (acked %d)", offset, total, acked)
			}

			reg, err := server.NewPersistentRegistry(crashFuzzOptions(dir, fsx.OS()))
			if err != nil {
				t.Fatalf("recovery after crash at offset %d: %v", offset, err)
			}
			defer reg.Close()
			if acked < 0 {
				if reg.Len() != 0 {
					t.Fatalf("recovered %d graphs from a store that never acknowledged one", reg.Len())
				}
				return
			}
			m2, ok := reg.Get("g")
			if !ok {
				t.Fatalf("graph lost after crash at offset %d (acked %d)", offset, acked)
			}
			v := m2.Version()
			// Durability may exceed the acks: a crash after the batch's WAL
			// write but before the acknowledgment leaves complete unacked
			// records, which recovery legitimately replays. It must never
			// fall below what was acknowledged, and never land outside the
			// chain.
			if v < uint64(acked) {
				t.Fatalf("recovered version %d below the %d acknowledged", v, acked)
			}
			if v > uint64(len(deltas)) {
				t.Fatalf("recovered version %d beyond the chain of %d", v, len(deltas))
			}
			assertSameResults(t, snapshotResults(t, m2, patterns), ref[v],
				fmt.Sprintf("offset %d, version %d", offset, v))

			// The recovered session finishes the chain (one batch per
			// remaining delta suffix) and lands on the reference end state.
			if rest := deltas[v:]; len(rest) > 0 {
				if _, _, err := m2.UpdateBatch(rest); err != nil {
					t.Fatalf("batch update after recovery: %v", err)
				}
			}
			assertSameResults(t, snapshotResults(t, m2, patterns), ref[uint64(len(deltas))],
				"end state after recovery")
		})
	}
}
