// Package server implements the query-serving subsystem behind cmd/divtopkd:
// a registry of named, warmed Matcher sessions; an HTTP JSON API with
// per-request timeouts, k/parallelism caps and structured errors; and the
// admission machinery — a bounded worker pool in front of each session's
// result cache (LRU + singleflight) — that lets one daemon serve heavy
// repeated traffic at one engine evaluation per distinct query. Because
// every engine in the module is deterministic, a cached response is
// byte-identical to a freshly evaluated one.
package server

import (
	"fmt"
	"os"
	"sort"
	"sync"

	"divtopk"
	"divtopk/internal/durable"
)

// GraphInfo describes one registered graph for /v1/graphs.
type GraphInfo struct {
	Name    string             `json:"name"`
	Version uint64             `json:"version"`
	Nodes   int                `json:"nodes"`
	Edges   int                `json:"edges"`
	Cache   divtopk.CacheStats `json:"cache"`
}

// Registry holds the named query sessions a server exposes. Sessions are
// warmed at registration (NewMatcher builds the full bound index), so a
// registered graph serves concurrent queries immediately. Safe for
// concurrent use; graphs can be added at runtime but sessions are never
// replaced — a graph evolves in place through Matcher.Update, whose
// versioned cache keys keep every cached result tied to the snapshot that
// produced it.
type Registry struct {
	opts []divtopk.Option
	// persist, when non-nil, makes every graph durable: Add seeds a WAL +
	// checkpoint store under persist.Dir/<name> and attaches it to the
	// session (see NewPersistentRegistry).
	persist *PersistOptions

	mu       sync.RWMutex
	sessions map[string]*divtopk.Matcher
	stores   map[string]*durable.Store // per-graph durability, persistent mode only
	pending  map[string]struct{}       // names reserved while their session warms
}

// NewRegistry returns an empty registry. opts become the session defaults
// of every registered graph — in the daemon that is WithCache and
// Parallelism.
func NewRegistry(opts ...divtopk.Option) *Registry {
	return &Registry{
		opts:     opts,
		sessions: make(map[string]*divtopk.Matcher),
		pending:  make(map[string]struct{}),
	}
}

// Add warms a session over g and registers it under name. It fails on an
// empty name or a duplicate. The name is reserved before the warm, so a
// concurrent duplicate registration fails immediately instead of paying a
// full index build first.
func (r *Registry) Add(name string, g *divtopk.Graph) error {
	if name == "" {
		return fmt.Errorf("server: graph name must be non-empty")
	}
	r.mu.Lock()
	if _, dup := r.sessions[name]; dup {
		r.mu.Unlock()
		return fmt.Errorf("server: graph %q already registered", name)
	}
	if _, dup := r.pending[name]; dup {
		r.mu.Unlock()
		return fmt.Errorf("server: graph %q is already being registered", name)
	}
	r.pending[name] = struct{}{}
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		delete(r.pending, name)
		r.mu.Unlock()
	}()
	// Warm outside the lock: index construction is the expensive part and
	// must not block serving traffic on other graphs.
	m := divtopk.NewMatcher(g, r.opts...)
	// In persistent mode the graph is durable before it is queryable: the
	// store seeds an initial checkpoint (version 0 survives a crash from
	// here on) and every future update goes through the WAL.
	store, err := r.makeDurable(name, m, g)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.sessions[name] = m
	if store != nil {
		r.stores[name] = store
	}
	r.mu.Unlock()
	return nil
}

// LoadFile reads a graph in the text format from path and registers it.
func (r *Registry) LoadFile(name, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("server: graph %q: %w", name, err)
	}
	defer f.Close()
	g, err := divtopk.ReadGraph(f)
	if err != nil {
		return fmt.Errorf("server: graph %q (%s): %w", name, path, err)
	}
	return r.Add(name, g)
}

// Get returns the session registered under name.
func (r *Registry) Get(name string) (*divtopk.Matcher, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.sessions[name]
	return m, ok
}

// Len returns the number of registered graphs.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.sessions)
}

// List describes every registered graph, sorted by name.
func (r *Registry) List() []GraphInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]GraphInfo, 0, len(r.sessions))
	for name, m := range r.sessions {
		g := m.Graph()
		out = append(out, GraphInfo{
			Name:    name,
			Version: g.Version(),
			Nodes:   g.NumNodes(),
			Edges:   g.NumEdges(),
			Cache:   m.CacheStats(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
