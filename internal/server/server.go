package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"divtopk"
)

// Config bounds what one request may cost. The zero value of any field
// selects the default noted on it.
type Config struct {
	// MaxK caps the requested k (default 1000).
	MaxK int
	// MaxParallelism caps the per-query worker count a request may ask for
	// (default runtime.NumCPU()); 0 in a request means the session default.
	MaxParallelism int
	// DefaultTimeout applies when a request carries no timeout_ms (default
	// 10s).
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-request timeout (default 60s).
	MaxTimeout time.Duration
	// MaxConcurrent bounds the evaluation worker pool (default
	// 2·runtime.NumCPU()). Requests beyond it queue until a slot frees or
	// their timeout fires.
	MaxConcurrent int
	// MaxQueryBytes and MaxGraphBytes cap request bodies (defaults 1 MiB
	// and 256 MiB).
	MaxQueryBytes int64
	MaxGraphBytes int64
}

// withDefaults resolves the zero fields.
func (c Config) withDefaults() Config {
	if c.MaxK <= 0 {
		c.MaxK = 1000
	}
	if c.MaxParallelism <= 0 {
		c.MaxParallelism = runtime.NumCPU()
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2 * runtime.NumCPU()
	}
	if c.MaxQueryBytes <= 0 {
		c.MaxQueryBytes = 1 << 20
	}
	if c.MaxGraphBytes <= 0 {
		c.MaxGraphBytes = 256 << 20
	}
	return c
}

// Server is the HTTP query-serving front end over a Registry.
type Server struct {
	reg *Registry
	cfg Config
	sem chan struct{}

	mu   sync.Mutex
	coal map[string]*coalescer // per-graph group-commit queues
}

// New returns a server over reg with cfg's limits (zero fields defaulted).
func New(reg *Registry, cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		reg:  reg,
		cfg:  cfg,
		sem:  make(chan struct{}, cfg.MaxConcurrent),
		coal: make(map[string]*coalescer),
	}
}

// Handler returns the API routes:
//
//	GET  /healthz                   — readiness: per-graph served vs durable version
//	GET  /v1/graphs                 — registered graphs with cache statistics
//	POST /v1/graphs                 — register a graph at runtime
//	POST /v1/graphs/{name}/updates  — apply a delta to a registered graph
//	POST /v1/query                  — top-k query
//	POST /v1/query/diversified      — diversified top-k query
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/graphs", s.handleListGraphs)
	mux.HandleFunc("POST /v1/graphs", s.handleAddGraph)
	mux.HandleFunc("POST /v1/graphs/{name}/updates", s.handleUpdate)
	mux.HandleFunc("POST /v1/query", func(w http.ResponseWriter, r *http.Request) {
		s.handleQuery(w, r, false)
	})
	mux.HandleFunc("POST /v1/query/diversified", func(w http.ResponseWriter, r *http.Request) {
		s.handleQuery(w, r, true)
	})
	return mux
}

// QueryRequest is the body of POST /v1/query and /v1/query/diversified.
type QueryRequest struct {
	// Graph names a registered graph.
	Graph string `json:"graph"`
	// Pattern is the pattern in the text format (output node marked '*').
	Pattern string `json:"pattern"`
	// K is the number of matches requested (1..Config.MaxK).
	K int `json:"k"`
	// Lambda is the diversification balance λ ∈ [0,1] (diversified only).
	Lambda float64 `json:"lambda,omitempty"`
	// Approx selects the 2-approximation TopKDiv (diversified only).
	Approx bool `json:"approx,omitempty"`
	// Baseline selects the find-all baseline engine (top-k only).
	Baseline bool `json:"baseline,omitempty"`
	// Strategy is "" or "covering" (default) or "random".
	Strategy string `json:"strategy,omitempty"`
	// Seed drives the random strategy.
	Seed int64 `json:"seed,omitempty"`
	// Batches overrides the engine's leaf-feeding batch count.
	Batches int `json:"batches,omitempty"`
	// Bounds is "" or "label-count" (default) or "tight" or "loose".
	Bounds string `json:"bounds,omitempty"`
	// Parallelism bounds this query's workers (0 = session default,
	// capped at Config.MaxParallelism).
	Parallelism int `json:"parallelism,omitempty"`
	// TimeoutMS is the per-request budget in milliseconds (0 = server
	// default, capped at Config.MaxTimeout).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// MatchJSON is one match in a response.
type MatchJSON struct {
	Node        int    `json:"node"`
	Label       string `json:"label"`
	Relevance   int    `json:"relevance"`
	Upper       int    `json:"upper"`
	Exact       bool   `json:"exact"`
	RelevantSet []int  `json:"relevant_set,omitempty"`
}

// StatsJSON mirrors divtopk.Stats.
type StatsJSON struct {
	Candidates      int  `json:"candidates"`
	Examined        int  `json:"examined"`
	Batches         int  `json:"batches"`
	EarlyTerminated bool `json:"early_terminated"`
}

// QueryResponse is the body of a successful POST /v1/query. Version is the
// graph snapshot version the answer was computed against; clients of a
// dynamic graph use it to correlate answers with the updates they applied.
// Cache is the result-cache provenance of the answer — "hit", "miss",
// "advanced" (served from an entry the commit-time advance pass installed)
// or "seeded" (evaluated with containment-seeded candidates) — omitted on a
// session without a cache.
type QueryResponse struct {
	GlobalMatch bool        `json:"global_match"`
	Version     uint64      `json:"version"`
	Cache       string      `json:"cache,omitempty"`
	Matches     []MatchJSON `json:"matches"`
	Stats       StatsJSON   `json:"stats"`
}

// DiversifiedResponse is the body of a successful POST
// /v1/query/diversified; Cache is as on QueryResponse.
type DiversifiedResponse struct {
	GlobalMatch bool        `json:"global_match"`
	Version     uint64      `json:"version"`
	Cache       string      `json:"cache,omitempty"`
	F           float64     `json:"f"`
	Matches     []MatchJSON `json:"matches"`
	Stats       StatsJSON   `json:"stats"`
}

// NewQueryResponse converts a library Result to its wire form. Exported so
// tests and clients can compare a direct Matcher call byte-for-byte with a
// server response. version is the snapshot version the result came from
// (Matcher.TopKWithVersion reports it).
func NewQueryResponse(res *divtopk.Result, version uint64) QueryResponse {
	return QueryResponse{
		GlobalMatch: res.GlobalMatch,
		Version:     version,
		Matches:     matchesJSON(res.Matches),
		Stats:       statsJSON(res.Stats),
	}
}

// NewDiversifiedResponse is NewQueryResponse for diversified results.
func NewDiversifiedResponse(res *divtopk.DiversifiedResult, version uint64) DiversifiedResponse {
	return DiversifiedResponse{
		GlobalMatch: res.GlobalMatch,
		Version:     version,
		F:           res.F,
		Matches:     matchesJSON(res.Matches),
		Stats:       statsJSON(res.Stats),
	}
}

func matchesJSON(ms []divtopk.Match) []MatchJSON {
	out := make([]MatchJSON, len(ms))
	for i, m := range ms {
		out[i] = MatchJSON{
			Node:        m.Node,
			Label:       m.Label,
			Relevance:   m.Relevance,
			Upper:       m.Upper,
			Exact:       m.Exact,
			RelevantSet: m.RelevantSet,
		}
	}
	return out
}

func statsJSON(s divtopk.Stats) StatsJSON {
	return StatsJSON{
		Candidates:      s.Candidates,
		Examined:        s.Examined,
		Batches:         s.Batches,
		EarlyTerminated: s.EarlyTerminated,
	}
}

// ErrorResponse is the structured error body every failing request gets.
type ErrorResponse struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries a stable machine-readable code plus a human message.
type ErrorDetail struct {
	// Code is one of: bad_request, bad_pattern, bad_delta, unknown_graph,
	// conflict, body_too_large, timeout, canceled, internal,
	// durability_unavailable.
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error codes and their HTTP status.
const (
	codeBadRequest   = "bad_request"
	codeBadPattern   = "bad_pattern"
	codeBadDelta     = "bad_delta"
	codeUnknownGraph = "unknown_graph"
	codeConflict     = "conflict"
	codeBodyTooLarge = "body_too_large"
	codeTimeout      = "timeout"
	codeCanceled     = "canceled"
	codeInternal     = "internal"
	codeDurability   = "durability_unavailable"
)

// statusClientClosedRequest is nginx's 499: the client dropped the
// connection before the response was ready (distinct from a 504, where the
// server ran out of budget).
const statusClientClosedRequest = 499

// decodeBody decodes a JSON request body bounded by limit bytes, mapping an
// exceeded limit to 413 body_too_large instead of the generic decode 400:
// "shrink your request" and "fix your request" are different client bugs
// and deserve different stable codes. Returns false after writing the error.
func decodeBody(w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	body := http.MaxBytesReader(w, r.Body, limit)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge,
				"request body exceeds the %d-byte limit", tooLarge.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, codeBadRequest, "decoding request: %v", err)
		return false
	}
	return true
}

// writeError emits the structured error body with the given status.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorResponse{Error: ErrorDetail{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}

// writeJSON emits a success body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// handleHealthz serves the readiness report: overall status, and per graph
// the served versus durable version plus the degraded flag. A degraded
// durability store flips the status but keeps the 200 — the daemon still
// serves reads, and load balancers that only parse the status code must not
// drain a replica that is read-healthy.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.Health())
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"graphs": s.reg.List()})
}

// AddGraphRequest is the body of POST /v1/graphs.
type AddGraphRequest struct {
	Name string `json:"name"`
	// Graph is the graph in the text format of cmd/graphgen.
	Graph string `json:"graph"`
}

func (s *Server) handleAddGraph(w http.ResponseWriter, r *http.Request) {
	var req AddGraphRequest
	if !decodeBody(w, r, s.cfg.MaxGraphBytes, &req) {
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, codeBadRequest, "graph name is required")
		return
	}
	g, err := divtopk.ReadGraph(strings.NewReader(req.Graph))
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "parsing graph: %v", err)
		return
	}
	// Add warms the session index before registering, so this call can take
	// a while on a large graph; once it returns the graph serves queries
	// with no cold start. Duplicate names fail under Add's lock.
	if err := s.reg.Add(req.Name, g); err != nil {
		writeError(w, http.StatusConflict, codeConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"name": req.Name, "version": g.Version(),
		"nodes": g.NumNodes(), "edges": g.NumEdges(),
	})
}

// UpdateNode is one appended node of an UpdateRequest. Attrs values may be
// JSON strings (string attributes) or integral numbers (integer attributes).
type UpdateNode struct {
	Label string         `json:"label"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// EdgePair is one [from, to] edge of an UpdateRequest. Endpoints are node
// IDs, or negative self-references -1-j naming the request's own j-th
// appended node (see UpdateRequest). It decodes strictly: encoding/json
// would silently truncate a three-element array into a [2]int and zero-fill
// a one-element one, turning a client arity bug into a mutation of the wrong
// edge; here either case is a decode error.
type EdgePair [2]int

// UnmarshalJSON enforces exactly two elements.
func (e *EdgePair) UnmarshalJSON(data []byte) error {
	var raw []int
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if len(raw) != 2 {
		return fmt.Errorf("edge must be a [from, to] pair, got %d element(s)", len(raw))
	}
	e[0], e[1] = raw[0], raw[1]
	return nil
}

// UpdateRequest is the body of POST /v1/graphs/{name}/updates: a graph
// delta. Updates to one graph are group-committed: requests arriving while a
// commit is in flight are merged and applied as one batch, and each request
// is acknowledged with its own version of the equivalent sequential chain.
//
// A request's appended nodes receive consecutive IDs starting at the
// response's first_node — which, under concurrent writers, a client cannot
// predict. Edges of the same request therefore reference its own appends
// with negative self-references: endpoint -1-j names the request's j-th
// appended node (-1 the first, -2 the second, ...). Non-negative endpoints
// name nodes the client already knows the IDs of. The legacy sole-writer
// convention — appended node i receives ID nodes+i, where nodes is the node
// count echoed by the previous response — still holds when nothing else
// writes the graph.
type UpdateRequest struct {
	AddNodes []UpdateNode `json:"add_nodes,omitempty"`
	AddEdges []EdgePair   `json:"add_edges,omitempty"`
	DelEdges []EdgePair   `json:"del_edges,omitempty"`
}

// resolve converts the wire form to a library Delta, interpreting negative
// self-references against firstID — the node ID the request's first append
// will receive, which the coalescer computes from the base snapshot plus the
// appends of the requests merged before this one. It also returns that first
// ID (-1 when the request appends nothing) for the response.
func (req *UpdateRequest) resolve(firstID int) (*divtopk.Delta, int, error) {
	var d divtopk.Delta
	for i, n := range req.AddNodes {
		attrs := make([]divtopk.Attr, 0, len(n.Attrs))
		for k, v := range n.Attrs {
			switch val := v.(type) {
			case string:
				attrs = append(attrs, divtopk.Str(k, val))
			case float64:
				if val != float64(int64(val)) {
					return nil, 0, fmt.Errorf("add_nodes[%d]: attr %q: fractional numbers are not a supported attribute type", i, k)
				}
				attrs = append(attrs, divtopk.Int(k, int64(val)))
			default:
				return nil, 0, fmt.Errorf("add_nodes[%d]: attr %q: unsupported value type %T", i, k, v)
			}
		}
		d.AddNode(n.Label, attrs...)
	}
	ref := func(field string, i, e int) (int, error) {
		if e >= 0 {
			return e, nil
		}
		j := -1 - e
		if j >= len(req.AddNodes) {
			return 0, fmt.Errorf("%s[%d]: self-reference %d names appended node %d, but the request appends %d node(s)",
				field, i, e, j, len(req.AddNodes))
		}
		return firstID + j, nil
	}
	for i, e := range req.AddEdges {
		u, err := ref("add_edges", i, e[0])
		if err != nil {
			return nil, 0, err
		}
		v, err := ref("add_edges", i, e[1])
		if err != nil {
			return nil, 0, err
		}
		d.InsertEdge(u, v)
	}
	for i, e := range req.DelEdges {
		u, err := ref("del_edges", i, e[0])
		if err != nil {
			return nil, 0, err
		}
		v, err := ref("del_edges", i, e[1])
		if err != nil {
			return nil, 0, err
		}
		d.DeleteEdge(u, v)
	}
	if len(req.AddNodes) == 0 {
		firstID = -1
	}
	return &d, firstID, nil
}

// UpdateResponse is the body of a successful POST
// /v1/graphs/{name}/updates: the new snapshot's identity plus the
// index-maintenance stats of the update — whether the bound index advanced
// incrementally or fell back to a rebuild, how much of it the delta's
// affected area covered, and what the maintenance cost. Operators watching
// a dynamic graph use the Index object to see whether their update shape
// stays in the cheap regime.
type UpdateResponse struct {
	Name    string `json:"name"`
	Version uint64 `json:"version"`
	Nodes   int    `json:"nodes"`
	Edges   int    `json:"edges"`
	// FirstNode is the ID assigned to the request's first appended node
	// (consecutive IDs follow); absent when the request appended nothing.
	// Under group commit this is the only way a concurrent writer learns
	// where its appends landed.
	FirstNode *int               `json:"first_node,omitempty"`
	Index     divtopk.IndexStats `json:"index"`
}

// handleUpdate routes a delta through the graph's group-commit coalescer:
// requests arriving while a commit is in flight are merged and applied as
// one batch (one index-maintenance pass, one WAL write), and this request is
// acknowledged with its own version of the equivalent sequential chain. The
// matcher advances the bound index off to the side and swaps graph and index
// atomically, so in-flight queries finish on the snapshot they started on
// and the response's version tags every answer computed on the new one.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req UpdateRequest
	if !decodeBody(w, r, s.cfg.MaxGraphBytes, &req) {
		return
	}
	m, ok := s.reg.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, codeUnknownGraph, "graph %q is not registered", name)
		return
	}
	out := s.coalescer(name, m).submit(&req)
	if out.code != "" {
		writeError(w, out.status, out.code, "%s", out.msg)
		return
	}
	writeJSON(w, http.StatusOK, out.resp)
}

// requestTimeout clamps the requested budget to the configured bounds.
func (s *Server) requestTimeout(ms int64) time.Duration {
	d := s.cfg.DefaultTimeout
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// buildOptions validates the per-query knobs and converts them to library
// options. It returns a user-facing message on invalid input.
func (s *Server) buildOptions(req *QueryRequest, diversified bool) ([]divtopk.Option, string) {
	var opts []divtopk.Option
	if req.K < 1 {
		return nil, fmt.Sprintf("k must be >= 1 (got %d)", req.K)
	}
	if req.K > s.cfg.MaxK {
		return nil, fmt.Sprintf("k %d exceeds the server cap %d", req.K, s.cfg.MaxK)
	}
	if req.Parallelism < 0 || req.Parallelism > s.cfg.MaxParallelism {
		return nil, fmt.Sprintf("parallelism %d outside [0, %d]", req.Parallelism, s.cfg.MaxParallelism)
	}
	if req.Parallelism > 0 {
		opts = append(opts, divtopk.Parallelism(req.Parallelism))
	}
	switch req.Strategy {
	case "", "covering":
	case "random":
		opts = append(opts, divtopk.WithRandomSelection(req.Seed))
	default:
		return nil, fmt.Sprintf("unknown strategy %q (covering, random)", req.Strategy)
	}
	if req.Batches < 0 {
		return nil, fmt.Sprintf("batches must be >= 0 (got %d)", req.Batches)
	}
	if req.Batches > 0 {
		opts = append(opts, divtopk.WithBatches(req.Batches))
	}
	switch req.Bounds {
	case "", "label-count":
	case "tight":
		opts = append(opts, divtopk.WithTightBounds())
	case "loose":
		opts = append(opts, divtopk.WithLooseBounds())
	default:
		return nil, fmt.Sprintf("unknown bounds %q (label-count, tight, loose)", req.Bounds)
	}
	if diversified {
		// Negated conjunction, not "< 0 || > 1": NaN fails both comparisons
		// of the naive form and would sail through to the engine.
		if !(req.Lambda >= 0 && req.Lambda <= 1) {
			return nil, fmt.Sprintf("lambda %v outside [0,1]", req.Lambda)
		}
		if req.Approx {
			opts = append(opts, divtopk.WithApproximation())
		}
		if req.Baseline {
			return nil, "baseline applies to /v1/query only"
		}
	} else {
		if req.Approx {
			return nil, "approx applies to /v1/query/diversified only"
		}
		if req.Baseline {
			opts = append(opts, divtopk.WithBaseline())
		}
	}
	return opts, ""
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, diversified bool) {
	var req QueryRequest
	if !decodeBody(w, r, s.cfg.MaxQueryBytes, &req) {
		return
	}
	opts, msg := s.buildOptions(&req, diversified)
	if msg != "" {
		writeError(w, http.StatusBadRequest, codeBadRequest, "%s", msg)
		return
	}
	m, ok := s.reg.Get(req.Graph)
	if !ok {
		writeError(w, http.StatusNotFound, codeUnknownGraph, "graph %q is not registered", req.Graph)
		return
	}
	p, err := divtopk.ReadPattern(strings.NewReader(req.Pattern))
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadPattern, "parsing pattern: %v", err)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(req.TimeoutMS))
	defer cancel()
	var resp any
	if diversified {
		resp, err = evaluate(ctx, s.sem, func() (any, error) {
			res, info, err := m.TopKDiversifiedInfo(p, req.K, req.Lambda, opts...)
			if err != nil {
				return nil, err
			}
			dr := NewDiversifiedResponse(res, info.Version)
			dr.Cache = info.Cache
			return dr, nil
		})
	} else {
		resp, err = evaluate(ctx, s.sem, func() (any, error) {
			res, info, err := m.TopKInfo(p, req.K, opts...)
			if err != nil {
				return nil, err
			}
			qr := NewQueryResponse(res, info.Version)
			qr.Cache = info.Cache
			return qr, nil
		})
	}
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, resp)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, codeTimeout,
			"query exceeded its %s budget", s.requestTimeout(req.TimeoutMS))
	case errors.Is(err, context.Canceled):
		// The client went away; nobody reads this body, but access logs and
		// metrics must not count the abort as a server timeout.
		writeError(w, statusClientClosedRequest, codeCanceled, "client canceled the request")
	default:
		writeError(w, http.StatusInternalServerError, codeInternal, "%v", err)
	}
}

// evaluate admits fn to the bounded worker pool and runs it, giving up the
// wait — never the slot — when ctx expires: an abandoned evaluation keeps
// running, releases its slot on completion, and (through the session cache's
// singleflight) still lands its result in the cache, so a retry of a
// timed-out query is typically a cache hit. The pool therefore cannot wedge:
// every admitted evaluation returns its slot no matter how its caller left.
func evaluate(ctx context.Context, sem chan struct{}, fn func() (any, error)) (any, error) {
	select {
	case sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	type outcome struct {
		v   any
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		defer func() { <-sem }()
		var o outcome
		// The evaluation runs outside net/http's per-connection recovery,
		// so contain panics here: one poisoned query must cost one request
		// an internal error, never the whole daemon.
		func() {
			defer func() {
				if p := recover(); p != nil {
					o = outcome{nil, fmt.Errorf("evaluation panicked: %v", p)}
				}
			}()
			v, err := fn()
			o = outcome{v, err}
		}()
		done <- o
	}()
	select {
	case o := <-done:
		return o.v, o.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
