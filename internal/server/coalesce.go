package server

import (
	"errors"
	"net/http"
	"sync"

	"divtopk"
)

// updateOutcome is what one queued update request is acknowledged with:
// either a success response or a structured error. code == "" means success.
type updateOutcome struct {
	resp   UpdateResponse
	status int
	code   string
	msg    string
}

// updateJob is one request waiting in a coalescer's queue.
type updateJob struct {
	req  *UpdateRequest
	done chan updateOutcome

	// Filled during resolution, consumed by the commit.
	delta     *divtopk.Delta
	firstNode int // ID assigned to the request's first appended node; -1 if none
}

// coalescer is one graph's group-commit queue: requests arriving while a
// commit is in flight are merged into a single delta and applied by one
// index-maintenance pass and one WAL write, then each caller is acknowledged
// with its own version of the sequential chain the batch is equivalent to.
// The drain goroutine is the graph's sole updater, which is what lets it
// resolve every queued request against one base snapshot and pre-merge the
// batch for Matcher.UpdateMerged.
type coalescer struct {
	name string
	m    *divtopk.Matcher

	mu      sync.Mutex
	queue   []*updateJob
	running bool
}

// submit enqueues req and blocks until its batch commits (or fails). The
// drain goroutine is started lazily by the first request to find it stopped.
func (c *coalescer) submit(req *UpdateRequest) updateOutcome {
	job := &updateJob{req: req, done: make(chan updateOutcome, 1)}
	c.mu.Lock()
	c.queue = append(c.queue, job)
	if !c.running {
		c.running = true
		go c.drain()
	}
	c.mu.Unlock()
	return <-job.done
}

// drain commits batches until the queue stays empty. Each iteration grabs
// everything queued so far — under load the batch width grows to whatever
// accumulated during the previous commit, which is exactly the group-commit
// throughput argument: per-batch cost is paid once per drain, not per
// request.
func (c *coalescer) drain() {
	for {
		c.mu.Lock()
		jobs := c.queue
		c.queue = nil
		if len(jobs) == 0 {
			c.running = false
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()
		c.commit(jobs)
	}
}

// commit resolves, merges and applies one batch. A request whose delta fails
// to resolve or merge is acknowledged with its own 400 and the merge restarts
// without it: one lost-sync client never fails its batch-mates, and the
// surviving requests commit exactly as if the bad one had been rejected by a
// sequential chain.
func (c *coalescer) commit(jobs []*updateJob) {
	base := c.m.Graph()
	remaining := jobs
	var merged *divtopk.Delta
restart:
	for {
		merged = &divtopk.Delta{}
		appends := 0
		for i, job := range remaining {
			d, firstNode, err := job.req.resolve(base.NumNodes() + appends)
			if err == nil {
				err = merged.Merge(base, d)
			}
			if err != nil {
				job.done <- updateOutcome{status: http.StatusBadRequest, code: codeBadDelta, msg: err.Error()}
				remaining = append(remaining[:i:i], remaining[i+1:]...)
				continue restart
			}
			job.delta, job.firstNode = d, firstNode
			appends += len(job.req.AddNodes)
		}
		break
	}
	if len(remaining) == 0 {
		return
	}
	parts := make([]*divtopk.Delta, len(remaining))
	for i, job := range remaining {
		parts[i] = job.delta
	}

	g2, stats, err := c.m.UpdateMerged(merged, parts)
	switch {
	case errors.Is(err, divtopk.ErrIndexMaintenance):
		// A server-side invariant violation, not any client's delta.
		c.failAll(remaining, http.StatusInternalServerError, codeInternal, err)
	case errors.Is(err, divtopk.ErrDurabilityUnavailable):
		// Well-formed but not durable, so not applied: 503 with a stable
		// code; retrying cannot help until the store recovers.
		c.failAll(remaining, http.StatusServiceUnavailable, codeDurability, err)
	case err != nil:
		c.failAll(remaining, http.StatusBadRequest, codeBadDelta, err)
	default:
		// Ack every caller with its own version of the equivalent sequential
		// chain: the batch moved the graph k versions forward, and request i
		// owns version final-k+1+i.
		k := uint64(len(remaining))
		for i, job := range remaining {
			resp := UpdateResponse{
				Name:    c.name,
				Version: g2.Version() - k + uint64(i) + 1,
				Nodes:   g2.NumNodes(),
				Edges:   g2.NumEdges(),
				Index:   stats,
			}
			if job.firstNode >= 0 {
				fn := job.firstNode
				resp.FirstNode = &fn
			}
			job.done <- updateOutcome{resp: resp}
		}
	}
}

// failAll acknowledges every job in the batch with the same structured error.
func (c *coalescer) failAll(jobs []*updateJob, status int, code string, err error) {
	for _, job := range jobs {
		job.done <- updateOutcome{status: status, code: code, msg: err.Error()}
	}
}

// coalescer returns the group-commit queue of name, creating it on first use.
// The matcher is pinned at creation: registry sessions are never replaced.
func (s *Server) coalescer(name string, m *divtopk.Matcher) *coalescer {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.coal[name]
	if !ok {
		c = &coalescer{name: name, m: m}
		s.coal[name] = c
	}
	return c
}
