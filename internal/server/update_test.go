package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"divtopk"
	"divtopk/internal/server"
)

// updateResponse is the wire shape of POST /v1/graphs/{name}/updates,
// declared locally so the test notices if the server's field names drift.
type updateResponse struct {
	Name      string `json:"name"`
	Version   uint64 `json:"version"`
	Nodes     int    `json:"nodes"`
	Edges     int    `json:"edges"`
	FirstNode *int   `json:"first_node"`
	Index     struct {
		Mode             string  `json:"mode"`
		BatchWidth       int     `json:"batch_width"`
		AffectedRows     int     `json:"affected_rows"`
		TotalRows        int     `json:"total_rows"`
		AffectedShare    float64 `json:"affected_share"`
		FrontierRows     int     `json:"frontier_rows"`
		LabelsRecomputed int     `json:"labels_recomputed"`
		LabelsCopied     int     `json:"labels_copied"`
		WallMicros       int64   `json:"wall_us"`
		ShardWallMicros  int64   `json:"shard_wall_us"`
	} `json:"index"`
}

func decodeError(t *testing.T, body []byte) server.ErrorResponse {
	t.Helper()
	var er server.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("not an error body: %v (%s)", err, body)
	}
	return er
}

// TestUpdateEndpointAndVersionedInvalidation is the serving-layer half of
// the delta-equivalence acceptance criterion: a query answered (and cached)
// before an update must never be served from the stale entry after it — the
// version in every cache key makes it unreachable — and every response
// carries the snapshot version it was computed against, byte-identical to a
// cold evaluation of the rebuilt graph. Since the warm result cache, the
// commit itself advances the hot entry to the new version, so the first
// post-update query is a cache hit tagged "advanced" rather than a cold
// re-evaluation; the byte-identity requirement is unchanged.
func TestUpdateEndpointAndVersionedInvalidation(t *testing.T) {
	ts, g, patterns := newTestServer(t, "dyn", server.Config{}, divtopk.WithCache(128))
	text := patterns[0]
	q, err := divtopk.ReadPattern(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}

	query := func() (server.QueryResponse, divtopk.CacheStats) {
		status, body := post(t, ts.URL+"/v1/query", server.QueryRequest{Graph: "dyn", Pattern: text, K: 10})
		if status != http.StatusOK {
			t.Fatalf("query status %d: %s", status, body)
		}
		var qr server.QueryResponse
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatal(err)
		}
		return qr, graphStats(t, ts.URL, "dyn")
	}

	// Two identical queries: miss then hit, version 0.
	r0, s0 := query()
	if r0.Version != 0 {
		t.Fatalf("pre-update version = %d, want 0", r0.Version)
	}
	r1, s1 := query()
	if s0.Misses != 1 || s1.Hits != s0.Hits+1 {
		t.Fatalf("expected miss then hit, got %+v then %+v", s0, s1)
	}
	if r1.Version != 0 {
		t.Fatalf("cached response version = %d, want 0", r1.Version)
	}

	// Apply a delta over HTTP: one appended node wired into the graph.
	nn := g.NumNodes()
	status, body := post(t, ts.URL+"/v1/graphs/dyn/updates", server.UpdateRequest{
		AddNodes: []server.UpdateNode{{Label: g.Label(0), Attrs: map[string]any{"w": 3}}},
		AddEdges: []server.EdgePair{{0, nn}, {nn, 1}},
	})
	if status != http.StatusOK {
		t.Fatalf("update status %d: %s", status, body)
	}
	var ur updateResponse
	if err := json.Unmarshal(body, &ur); err != nil {
		t.Fatal(err)
	}
	if ur.Version != 1 || ur.Nodes != nn+1 {
		t.Fatalf("update response %+v, want version 1, nodes %d", ur, nn+1)
	}
	if ur.FirstNode == nil || *ur.FirstNode != nn {
		t.Fatalf("first_node = %v, want %d", ur.FirstNode, nn)
	}
	if ur.Index.BatchWidth != 1 {
		t.Fatalf("uncontended update has batch_width %d, want 1", ur.Index.BatchWidth)
	}
	if ur.Index.ShardWallMicros < 0 {
		t.Fatalf("index shard_wall_us %d negative", ur.Index.ShardWallMicros)
	}
	// The index-maintenance stats ride on every update response.
	if ur.Index.Mode != "incremental" && ur.Index.Mode != "rebuild" {
		t.Fatalf("index mode %q, want incremental or rebuild", ur.Index.Mode)
	}
	if ur.Index.TotalRows != nn+1 {
		t.Fatalf("index total_rows %d, want %d", ur.Index.TotalRows, nn+1)
	}
	if ur.Index.AffectedShare < 0 || ur.Index.AffectedShare > 1 {
		t.Fatalf("index affected_share %v outside [0,1]", ur.Index.AffectedShare)
	}
	if ur.Index.AffectedRows < 0 || ur.Index.AffectedRows > ur.Index.TotalRows {
		t.Fatalf("index affected_rows %d outside [0,%d]", ur.Index.AffectedRows, ur.Index.TotalRows)
	}
	if ur.Index.Mode == "incremental" && ur.Index.LabelsCopied == 0 && ur.Index.LabelsRecomputed == 0 {
		t.Fatalf("incremental update reports no label maintenance at all: %+v", ur.Index)
	}
	if ur.Index.WallMicros < 0 {
		t.Fatalf("index wall_us %d negative", ur.Index.WallMicros)
	}

	// The commit's advance pass installed the hot entry under version 1, so
	// the next identical query hits that advanced entry — never the stale
	// version-0 one — and reports the "advanced" provenance exactly once.
	if sc := graphStats(t, ts.URL, "dyn"); sc.Advanced != 1 {
		t.Fatalf("commit did not install an advanced entry: %+v", sc)
	}
	r2, s2 := query()
	if s2.Misses != s1.Misses || s2.Hits != s1.Hits+1 {
		t.Fatalf("post-update query not served from the advanced entry: %+v then %+v", s1, s2)
	}
	if r2.Cache != "advanced" {
		t.Fatalf("post-update cache provenance = %q, want advanced", r2.Cache)
	}
	if r2.Version != 1 {
		t.Fatalf("post-update version = %d, want 1", r2.Version)
	}
	// The advanced tag decays after its first hit.
	r3, _ := query()
	if r3.Cache != "hit" {
		t.Fatalf("second post-update query provenance = %q, want hit", r3.Cache)
	}

	// Byte-identical to a cold evaluation of the rebuilt (updated) graph.
	var d divtopk.Delta
	d.AddNode(g.Label(0), divtopk.Int("w", 3))
	d.InsertEdge(0, nn)
	d.InsertEdge(nn, 1)
	g2, err := divtopk.ApplyDelta(g, &d)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := divtopk.TopK(g2, q, 10)
	if err != nil {
		t.Fatal(err)
	}
	wantResp := server.NewQueryResponse(cold, g2.Version())
	wantResp.Cache = "advanced"
	want, err := json.Marshal(wantResp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(r2)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("post-update response differs from cold evaluation:\n got: %s\nwant: %s", got, want)
	}

	// /v1/graphs reflects the new version.
	resp, err := http.Get(ts.URL + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Graphs []server.GraphInfo `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Graphs) != 1 || list.Graphs[0].Version != 1 {
		t.Fatalf("/v1/graphs = %+v, want version 1", list.Graphs)
	}
}

// TestUpdateEndpointErrors covers the structured failures of the updates
// route: unknown graph, malformed delta, bad attribute types.
func TestUpdateEndpointErrors(t *testing.T) {
	ts, g, _ := newTestServer(t, "dyn", server.Config{})

	status, body := post(t, ts.URL+"/v1/graphs/nope/updates", server.UpdateRequest{
		AddEdges: []server.EdgePair{{0, 1}},
	})
	if status != http.StatusNotFound || decodeError(t, body).Error.Code != "unknown_graph" {
		t.Fatalf("unknown graph: %d %s", status, body)
	}

	// Deleting a missing edge fails the whole delta and leaves the graph
	// unchanged.
	u, v := 0, 1
	for g.NumNodes() > v && hasEdge(g, u, v) {
		v++
	}
	status, body = post(t, ts.URL+"/v1/graphs/dyn/updates", server.UpdateRequest{
		DelEdges: []server.EdgePair{{u, v}},
	})
	if status != http.StatusBadRequest || decodeError(t, body).Error.Code != "bad_delta" {
		t.Fatalf("missing-edge delete: %d %s", status, body)
	}

	status, body = post(t, ts.URL+"/v1/graphs/dyn/updates", server.UpdateRequest{
		AddNodes: []server.UpdateNode{{Label: "X", Attrs: map[string]any{"r": 1.5}}},
	})
	if status != http.StatusBadRequest || decodeError(t, body).Error.Code != "bad_delta" {
		t.Fatalf("fractional attr: %d %s", status, body)
	}

	status, body = post(t, ts.URL+"/v1/graphs/dyn/updates", server.UpdateRequest{
		AddEdges: []server.EdgePair{{0, 10_000_000}},
	})
	if status != http.StatusBadRequest || decodeError(t, body).Error.Code != "bad_delta" {
		t.Fatalf("out-of-range edge: %d %s", status, body)
	}

	// Wrong-arity edge arrays are decode errors, not silent zero-fills:
	// encoding/json would truncate [[1,2,3]] and zero-fill [[7]] into a
	// plain [2]int, mutating an edge the client never named.
	for _, raw := range []string{
		`{"del_edges":[[7]]}`,
		`{"add_edges":[[1,2,3]]}`,
		`{"add_edges":[[]]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/graphs/dyn/updates", "application/json", strings.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d (%s), want 400", raw, resp.StatusCode, body)
		}
		if code := decodeError(t, body).Error.Code; code != "bad_request" {
			t.Fatalf("%s: code %q, want bad_request", raw, code)
		}
	}

	// The graph is still at version 0 and fully serviceable.
	if ver := graphVersion(t, ts.URL, "dyn"); ver != 0 {
		t.Fatalf("failed updates bumped the version to %d", ver)
	}
}

func hasEdge(g *divtopk.Graph, u, v int) bool {
	for _, w := range g.Successors(u) {
		if w == v {
			return true
		}
	}
	return false
}

func graphVersion(t *testing.T, baseURL, name string) uint64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Graphs []server.GraphInfo `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	for _, gi := range body.Graphs {
		if gi.Name == name {
			return gi.Version
		}
	}
	t.Fatalf("graph %q not listed", name)
	return 0
}

// TestBodyTooLargeIs413 pins the limit errors: request bodies over
// MaxQueryBytes/MaxGraphBytes return 413 with the stable code
// body_too_large, not a generic 400 decode error.
func TestBodyTooLargeIs413(t *testing.T) {
	ts, _, _ := newTestServer(t, "dyn", server.Config{
		MaxQueryBytes: 256,
		MaxGraphBytes: 512,
	})

	big := strings.Repeat("x", 1024)
	status, body := post(t, ts.URL+"/v1/query", server.QueryRequest{
		Graph: "dyn", Pattern: big, K: 5,
	})
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("query status = %d, want 413 (%s)", status, body)
	}
	if code := decodeError(t, body).Error.Code; code != "body_too_large" {
		t.Fatalf("query code = %q, want body_too_large", code)
	}

	status, body = post(t, ts.URL+"/v1/graphs", server.AddGraphRequest{
		Name: "big", Graph: strings.Repeat("y", 2048),
	})
	if status != http.StatusRequestEntityTooLarge || decodeError(t, body).Error.Code != "body_too_large" {
		t.Fatalf("add-graph: %d %s", status, body)
	}

	// Updates share the graph limit.
	edges := make([]server.EdgePair, 200)
	status, body = post(t, ts.URL+"/v1/graphs/dyn/updates", server.UpdateRequest{AddEdges: edges})
	if status != http.StatusRequestEntityTooLarge || decodeError(t, body).Error.Code != "body_too_large" {
		t.Fatalf("update: %d %s", status, body)
	}

	// Under the limit still works (and still 400s on garbage, not 413).
	status, body = post(t, ts.URL+"/v1/query", server.QueryRequest{Graph: "dyn", K: 5})
	if status != http.StatusBadRequest {
		t.Fatalf("small bad query: %d %s", status, body)
	}
}

// TestLambdaNaNRejected pins the serving-layer λ check rewrite: NaN cannot
// arrive through JSON (it is not a JSON number), but the QueryRequest
// struct is also the programmatic entry (bench, loadgen), so the check must
// hold for any float64. The HTTP side verifies the boundary values.
func TestLambdaNaNRejected(t *testing.T) {
	ts, _, patterns := newTestServer(t, "dyn", server.Config{})

	for _, bad := range []float64{-0.01, 1.01} {
		status, body := post(t, ts.URL+"/v1/query/diversified", server.QueryRequest{
			Graph: "dyn", Pattern: patterns[0], K: 5, Lambda: bad,
		})
		if status != http.StatusBadRequest || decodeError(t, body).Error.Code != "bad_request" {
			t.Fatalf("lambda %v: %d %s", bad, status, body)
		}
	}
	for _, ok := range []float64{0, 1, 0.5} {
		status, body := post(t, ts.URL+"/v1/query/diversified", server.QueryRequest{
			Graph: "dyn", Pattern: patterns[0], K: 5, Lambda: ok,
		})
		if status != http.StatusOK {
			t.Fatalf("lambda %v: %d %s", ok, status, body)
		}
	}

	// NaN and ±Inf via raw JSON are decode errors (JSON has no such
	// numbers) — the server never sees them as floats; the programmatic
	// NaN path is covered by the library-level regression and by the
	// request-validation unit test in the server package.
	resp, err := http.Post(ts.URL+"/v1/query/diversified", "application/json",
		strings.NewReader(fmt.Sprintf(`{"graph":"dyn","pattern":%q,"k":5,"lambda":NaN}`, patterns[0])))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("raw NaN: status %d", resp.StatusCode)
	}
}

// TestUpdateNegativeSelfReferences pins the wire protocol concurrent writers
// rely on: endpoint -1-j names the request's own j-th appended node, the
// response's first_node reports where the appends landed, and an out-of-range
// self-reference is a structured 400.
func TestUpdateNegativeSelfReferences(t *testing.T) {
	ts, g, _ := newTestServer(t, "dyn", server.Config{})
	nn := g.NumNodes()

	// Two appends wired to each other and into the base graph, all by
	// self-reference.
	status, body := post(t, ts.URL+"/v1/graphs/dyn/updates", server.UpdateRequest{
		AddNodes: []server.UpdateNode{{Label: g.Label(0)}, {Label: g.Label(1)}},
		AddEdges: []server.EdgePair{{-1, -2}, {0, -1}, {-2, 1}},
	})
	if status != http.StatusOK {
		t.Fatalf("self-ref update: %d %s", status, body)
	}
	var ur updateResponse
	if err := json.Unmarshal(body, &ur); err != nil {
		t.Fatal(err)
	}
	if ur.FirstNode == nil || *ur.FirstNode != nn {
		t.Fatalf("first_node = %v, want %d", ur.FirstNode, nn)
	}
	if ur.Nodes != nn+2 {
		t.Fatalf("nodes = %d, want %d", ur.Nodes, nn+2)
	}

	// The resolved edges really exist: deleting them by absolute ID works.
	status, body = post(t, ts.URL+"/v1/graphs/dyn/updates", server.UpdateRequest{
		DelEdges: []server.EdgePair{{nn, nn + 1}, {0, nn}, {nn + 1, 1}},
	})
	if status != http.StatusOK {
		t.Fatalf("deleting resolved edges: %d %s", status, body)
	}
	ur = updateResponse{}
	if err := json.Unmarshal(body, &ur); err != nil {
		t.Fatal(err)
	}
	if ur.FirstNode != nil {
		t.Fatalf("append-free update reports first_node %v", *ur.FirstNode)
	}

	// A self-reference past the request's own appends is a 400, applied
	// nothing.
	status, body = post(t, ts.URL+"/v1/graphs/dyn/updates", server.UpdateRequest{
		AddNodes: []server.UpdateNode{{Label: g.Label(0)}},
		AddEdges: []server.EdgePair{{0, -2}},
	})
	if status != http.StatusBadRequest || decodeError(t, body).Error.Code != "bad_delta" {
		t.Fatalf("out-of-range self-ref: %d %s", status, body)
	}
	if ver := graphVersion(t, ts.URL, "dyn"); ver != 2 {
		t.Fatalf("version = %d, want 2", ver)
	}
}

// TestConcurrentUpdatesGroupCommit drives many writers at one graph through
// the coalescer: every request must succeed, the acked versions must form
// exactly the sequential chain 1..N, first_node assignments must partition
// the appended ID range with no overlap, and the final graph must hold every
// append — the group-commit equivalence promise, observed over HTTP. A batch
// whose width exceeded 1 proves coalescing actually happened under load (not
// asserted: timing-dependent), so the test only reports it.
func TestConcurrentUpdatesGroupCommit(t *testing.T) {
	ts, g, patterns := newTestServer(t, "dyn", server.Config{})
	nn := g.NumNodes()
	const writers = 8
	const perWriter = 6

	type ack struct {
		version   uint64
		firstNode int
		width     int
	}
	acks := make(chan ack, writers*perWriter)
	errs := make(chan error, writers*perWriter)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// One append wired into the base graph by self-reference;
				// no absolute IDs above the base, so every interleaving is
				// valid.
				raw, err := json.Marshal(server.UpdateRequest{
					AddNodes: []server.UpdateNode{{Label: g.Label(w % 4)}},
					AddEdges: []server.EdgePair{{-1, w % 4}, {w % 4, -1}},
				})
				if err != nil {
					errs <- err
					return
				}
				resp, err := http.Post(ts.URL+"/v1/graphs/dyn/updates", "application/json", bytes.NewReader(raw))
				if err != nil {
					errs <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("writer %d update %d: status %d: %s", w, i, resp.StatusCode, body)
					return
				}
				var ur updateResponse
				if err := json.Unmarshal(body, &ur); err != nil {
					errs <- err
					return
				}
				if ur.FirstNode == nil {
					errs <- fmt.Errorf("writer %d update %d: no first_node", w, i)
					return
				}
				acks <- ack{version: ur.Version, firstNode: *ur.FirstNode, width: ur.Index.BatchWidth}
			}
		}(w)
	}
	wg.Wait()
	close(acks)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	const total = writers * perWriter
	versions := make(map[uint64]bool, total)
	firsts := make(map[int]bool, total)
	maxWidth := 0
	for a := range acks {
		if versions[a.version] {
			t.Fatalf("version %d acked twice", a.version)
		}
		versions[a.version] = true
		if firsts[a.firstNode] {
			t.Fatalf("node ID %d assigned twice", a.firstNode)
		}
		firsts[a.firstNode] = true
		if a.width < 1 || a.width > total {
			t.Fatalf("batch width %d outside [1,%d]", a.width, total)
		}
		if a.width > maxWidth {
			maxWidth = a.width
		}
	}
	for v := uint64(1); v <= total; v++ {
		if !versions[v] {
			t.Fatalf("version %d never acked; the chain has a gap", v)
		}
	}
	for id := nn; id < nn+total; id++ {
		if !firsts[id] {
			t.Fatalf("appended ID %d never assigned", id)
		}
	}
	t.Logf("max batch width observed: %d", maxWidth)

	if ver := graphVersion(t, ts.URL, "dyn"); ver != total {
		t.Fatalf("final version %d, want %d", ver, total)
	}

	// The graph still answers queries, and the served snapshot matches a cold
	// evaluation of an equivalent sequential rebuild is already covered by the
	// library fuzz; here it suffices that the post-commit snapshot is sane.
	status, body := post(t, ts.URL+"/v1/query", server.QueryRequest{Graph: "dyn", Pattern: patterns[0], K: 5})
	if status != http.StatusOK {
		t.Fatalf("post-commit query: %d %s", status, body)
	}
	var qr server.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Version != total {
		t.Fatalf("post-commit query answered at version %d, want %d", qr.Version, total)
	}
}
