package server

import (
	"errors"
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"time"

	"divtopk"
	"divtopk/internal/durable"
	"divtopk/internal/fsx"
	"divtopk/internal/graph"
	"divtopk/internal/wal"
)

// PersistOptions configures a persistent registry: every registered graph
// gets its own durability store (delta WAL + CSR checkpoints) in a
// subdirectory of Dir named after the graph, and boot recovers every graph
// found there.
type PersistOptions struct {
	// Dir is the data directory; one subdirectory per graph.
	Dir string
	// Policy is the WAL fsync policy (default wal.SyncAlways).
	Policy wal.SyncPolicy
	// Interval is the wal.SyncInterval flush interval.
	Interval time.Duration
	// CheckpointEvery rotates a graph's WAL into a fresh checkpoint after
	// this many updates (0 = durable.DefaultCheckpointEvery, negative =
	// explicit checkpoints only).
	CheckpointEvery int
	// FS overrides the filesystem (default fsx.OS()); the crash-recovery
	// tests inject faults through it.
	FS fsx.FS
}

// storeSink adapts a durable.Store to the library's DurabilitySink: the
// matcher hands over facade types, the store wants the internal ones.
type storeSink struct{ store *durable.Store }

func (s storeSink) AppendDelta(g *divtopk.Graph, d *divtopk.Delta) error {
	return s.store.Append(g.Unwrap().(*graph.Graph), d.Unwrap().(*graph.Delta))
}

func (s storeSink) AppendBatch(g *divtopk.Graph, ds []*divtopk.Delta) error {
	raw := make([]*graph.Delta, len(ds))
	for i, d := range ds {
		raw[i] = d.Unwrap().(*graph.Delta)
	}
	return s.store.AppendBatch(g.Unwrap().(*graph.Graph), raw)
}

// graphName constrains persistent graph names to characters safe to use as a
// directory name: no separators, no leading dot, bounded length.
var graphName = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,127}$`)

// NewPersistentRegistry returns a registry whose graphs survive restarts:
// each Add seeds a durability store under p.Dir/<name> and attaches it to
// the session, and this constructor recovers every graph a previous process
// left there — newest valid checkpoint plus the WAL tail, replayed through
// the same Matcher.Update path that produced the records, so a recovered
// session (graph, advanced index, version) is indistinguishable from one
// that never crashed. Recovery is all-or-nothing per process: a graph whose
// acknowledged updates cannot be reconstructed fails the boot rather than
// silently serving less than was acknowledged.
func NewPersistentRegistry(p PersistOptions, opts ...divtopk.Option) (*Registry, error) {
	if p.FS == nil {
		p.FS = fsx.OS()
	}
	r := NewRegistry(opts...)
	r.persist = &p
	r.stores = make(map[string]*durable.Store)
	if err := p.FS.MkdirAll(p.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: data dir: %w", err)
	}
	entries, err := p.FS.ReadDir(p.Dir)
	if err != nil {
		return nil, fmt.Errorf("server: data dir: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if !graphName.MatchString(e.Name()) {
			return nil, fmt.Errorf("server: data dir holds unexpected entry %q", e.Name())
		}
		if err := r.recoverGraph(e.Name()); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// durableOptions maps the registry's persistence config to store options.
func (r *Registry) durableOptions() durable.Options {
	return durable.Options{
		FS:              r.persist.FS,
		Policy:          r.persist.Policy,
		Interval:        r.persist.Interval,
		CheckpointEvery: r.persist.CheckpointEvery,
	}
}

// recoverGraph rebuilds one graph's session from its store directory and
// registers it. An unseeded store (the process died between creating the
// directory and publishing the first checkpoint — nothing was ever
// acknowledged) is left for a future Add of the same name to claim.
func (r *Registry) recoverGraph(name string) error {
	store, rec, err := durable.Open(filepath.Join(r.persist.Dir, name), r.durableOptions())
	if err != nil {
		return fmt.Errorf("server: recovering graph %q: %w", name, err)
	}
	if rec.Base == nil {
		return store.Close()
	}
	// Replay through the exact serving path: NewMatcher warms the base
	// snapshot's index, and each WAL record advances it the same way the
	// original update did. No durability sink is attached yet, so the replay
	// does not re-append its own records.
	m := divtopk.NewMatcher(divtopk.WrapGraph(rec.Base), r.opts...)
	for _, record := range rec.Records {
		g2, _, err := m.UpdateWithStats(divtopk.WrapDelta(record.Delta))
		if err != nil {
			_ = store.Close()
			return fmt.Errorf("server: replaying graph %q version %d: %w", name, record.Version, err)
		}
		if g2.Version() != record.Version {
			_ = store.Close()
			return fmt.Errorf("server: replaying graph %q: replay produced version %d for record %d", name, g2.Version(), record.Version)
		}
	}
	m.SetDurability(storeSink{store})
	r.mu.Lock()
	r.sessions[name] = m
	r.stores[name] = store
	r.mu.Unlock()
	return nil
}

// makeDurable attaches a freshly seeded durability store to a new session.
// Called by Add while the name is reserved; a no-op for in-memory
// registries.
func (r *Registry) makeDurable(name string, m *divtopk.Matcher, g *divtopk.Graph) (*durable.Store, error) {
	if r.persist == nil {
		return nil, nil
	}
	if !graphName.MatchString(name) {
		return nil, fmt.Errorf("server: graph name %q is not usable as a directory name", name)
	}
	store, rec, err := durable.Open(filepath.Join(r.persist.Dir, name), r.durableOptions())
	if err != nil {
		return nil, fmt.Errorf("server: graph %q: %w", name, err)
	}
	if rec.Base != nil {
		// The store already holds a recovered-but-unregistered graph only if
		// boot skipped it, which it never does; this is a concurrent process
		// or a caller bug.
		_ = store.Close()
		return nil, fmt.Errorf("server: graph %q already has durable state at version %d", name, rec.Base.Version())
	}
	if err := store.Seed(g.Unwrap().(*graph.Graph)); err != nil {
		_ = store.Close()
		return nil, fmt.Errorf("server: graph %q: %w", name, err)
	}
	m.SetDurability(storeSink{store})
	return store, nil
}

// Close shuts the registry's durability down cleanly: every healthy graph
// gets a final checkpoint at its served version (so the next boot replays
// nothing) and its WAL closed. Degraded stores are closed without a
// checkpoint — their durable state is already behind the served state, and
// the recorded failure explains why. Safe on in-memory registries (no-op).
func (r *Registry) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var errs []error
	for name, store := range r.stores {
		m := r.sessions[name]
		if store.Err() == nil && m != nil {
			if err := store.Checkpoint(m.Graph().Unwrap().(*graph.Graph)); err != nil {
				errs = append(errs, fmt.Errorf("graph %q: %w", name, err))
			}
		}
		if err := store.Close(); err != nil {
			errs = append(errs, fmt.Errorf("graph %q: %w", name, err))
		}
	}
	clear(r.stores)
	return errors.Join(errs...)
}

// GraphHealth is one graph's entry in the readiness report.
type GraphHealth struct {
	Name string `json:"name"`
	// ServedVersion is the snapshot queries are answered from.
	ServedVersion uint64 `json:"served_version"`
	// DurableVersion is the newest version that survives a crash. Equal to
	// ServedVersion on a healthy persistent graph; absent for in-memory
	// registries.
	DurableVersion *uint64 `json:"durable_version,omitempty"`
	// Degraded reports a persistent graph whose durability failed: reads
	// keep serving, updates are rejected until a restart.
	Degraded bool `json:"degraded,omitempty"`
	// Error is the failure that degraded the graph.
	Error string `json:"error,omitempty"`
	// Cache is the session result-cache snapshot, including the warm-cache
	// counters (advanced / seeded / advance_evicted); absent for a session
	// without a cache.
	Cache *divtopk.CacheStats `json:"cache,omitempty"`
}

// Health is the GET /healthz readiness report.
type Health struct {
	// Status is "ok", or "degraded" when any graph's durability failed.
	Status string `json:"status"`
	Graphs int    `json:"graphs"`
	// Persistent reports whether the registry carries durable state; Fsync
	// is its WAL sync policy.
	Persistent  bool          `json:"persistent"`
	Fsync       string        `json:"fsync,omitempty"`
	GraphStatus []GraphHealth `json:"graph_status,omitempty"`
}

// Health reports the registry's readiness: per graph, the version being
// served versus the version that is durable, and whether durability has
// degraded.
func (r *Registry) Health() Health {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h := Health{Status: "ok", Graphs: len(r.sessions), Persistent: r.persist != nil}
	if r.persist != nil {
		h.Fsync = r.persist.Policy.String()
	}
	for name, m := range r.sessions {
		gh := GraphHealth{Name: name, ServedVersion: m.Version()}
		if cs := m.CacheStats(); cs != (divtopk.CacheStats{}) {
			gh.Cache = &cs
		}
		if store, ok := r.stores[name]; ok {
			dv, _ := store.DurableVersion()
			gh.DurableVersion = &dv
			if err := store.Err(); err != nil {
				gh.Degraded = true
				gh.Error = err.Error()
				h.Status = "degraded"
			}
		}
		h.GraphStatus = append(h.GraphStatus, gh)
	}
	sort.Slice(h.GraphStatus, func(i, j int) bool { return h.GraphStatus[i].Name < h.GraphStatus[j].Name })
	return h
}
