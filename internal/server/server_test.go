package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"divtopk"
	"divtopk/internal/server"
)

// newTestServer builds a registry with one generated graph, its pattern
// texts, and an httptest server over the given config.
func newTestServer(t *testing.T, name string, cfg server.Config, opts ...divtopk.Option) (*httptest.Server, *divtopk.Graph, []string) {
	t.Helper()
	g := divtopk.NewYouTubeLike(2_000, 20_000, 5)
	var patterns []string
	for seed := int64(1); len(patterns) < 4; seed++ {
		q, err := divtopk.GeneratePattern(g, 4, 6, seed%2 == 0, false, seed)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := divtopk.WritePattern(&buf, q); err != nil {
			t.Fatal(err)
		}
		patterns = append(patterns, buf.String())
	}
	reg := server.NewRegistry(opts...)
	if err := reg.Add(name, g); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(reg, cfg).Handler())
	t.Cleanup(ts.Close)
	return ts, g, patterns
}

// post sends a JSON body and returns status + raw response bytes.
func post(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out.Bytes()
}

func graphStats(t *testing.T, baseURL, name string) divtopk.CacheStats {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Graphs []server.GraphInfo `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	for _, g := range body.Graphs {
		if g.Name == name {
			return g.Cache
		}
	}
	t.Fatalf("graph %q not listed", name)
	return divtopk.CacheStats{}
}

// TestServerResponsesByteIdenticalToDirectCalls is acceptance criterion
// (a): for the same query, the HTTP body equals the JSON encoding of a
// direct Matcher call bit for bit — the serving layer adds nothing beyond
// the declared cache-provenance tag and loses nothing, cached or not. The
// first round of each query is an admitted evaluation ("miss"), the second
// is served from the session cache ("hit").
func TestServerResponsesByteIdenticalToDirectCalls(t *testing.T) {
	ts, g, patterns := newTestServer(t, "yt", server.Config{}, divtopk.WithCache(128))
	direct := divtopk.NewMatcher(g)

	for qi, text := range patterns {
		q, err := divtopk.ReadPattern(strings.NewReader(text))
		if err != nil {
			t.Fatal(err)
		}
		// Each query twice: the second server response is served from the
		// session cache and must still be byte-identical. Round 0 admits an
		// evaluation ("miss", or "seeded" when a previously cached pattern's
		// candidates containment-seeded it — the payload must be identical
		// either way); round 1 is a plain "hit".
		for round := 0; round < 2; round++ {
			checkCache := func(got string) string {
				if round == 1 {
					if got != "hit" {
						t.Fatalf("pattern %d round 1: cache = %q, want hit", qi, got)
					}
				} else if got != "miss" && got != "seeded" {
					t.Fatalf("pattern %d round 0: cache = %q, want miss or seeded", qi, got)
				}
				return got
			}
			status, body := post(t, ts.URL+"/v1/query", server.QueryRequest{
				Graph: "yt", Pattern: text, K: 10,
			})
			if status != http.StatusOK {
				t.Fatalf("pattern %d round %d: status %d: %s", qi, round, status, body)
			}
			res, err := direct.TopK(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			var gotResp server.QueryResponse
			if err := json.Unmarshal(body, &gotResp); err != nil {
				t.Fatal(err)
			}
			wantResp := server.NewQueryResponse(res, direct.Version())
			wantResp.Cache = checkCache(gotResp.Cache)
			want, err := json.Marshal(wantResp)
			if err != nil {
				t.Fatal(err)
			}
			if got := bytes.TrimRight(body, "\n"); !bytes.Equal(got, want) {
				t.Fatalf("pattern %d round %d: server body differs from direct call:\n got: %s\nwant: %s", qi, round, got, want)
			}

			status, body = post(t, ts.URL+"/v1/query/diversified", server.QueryRequest{
				Graph: "yt", Pattern: text, K: 6, Lambda: 0.5,
			})
			if status != http.StatusOK {
				t.Fatalf("pattern %d round %d diversified: status %d: %s", qi, round, status, body)
			}
			dres, err := direct.TopKDiversified(q, 6, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			var gotDiv server.DiversifiedResponse
			if err := json.Unmarshal(body, &gotDiv); err != nil {
				t.Fatal(err)
			}
			wantDiv := server.NewDiversifiedResponse(dres, direct.Version())
			wantDiv.Cache = checkCache(gotDiv.Cache)
			want, err = json.Marshal(wantDiv)
			if err != nil {
				t.Fatal(err)
			}
			if got := bytes.TrimRight(body, "\n"); !bytes.Equal(got, want) {
				t.Fatalf("pattern %d round %d: diversified body differs:\n got: %s\nwant: %s", qi, round, got, want)
			}
		}
	}
}

// TestConcurrentIdenticalQueriesSingleEvaluation is acceptance criterion
// (b): N concurrent identical queries cost exactly one engine evaluation,
// observed through the cache statistics exposed on /v1/graphs.
func TestConcurrentIdenticalQueriesSingleEvaluation(t *testing.T) {
	ts, _, patterns := newTestServer(t, "yt", server.Config{}, divtopk.WithCache(128))
	const n = 16
	req := server.QueryRequest{Graph: "yt", Pattern: patterns[0], K: 10}
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body := post(t, ts.URL+"/v1/query", req)
			if status != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, status, body)
				return
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	// Responses may legitimately differ only in the cache-provenance tag
	// ("miss" for the leader and its coalesced followers, "hit" for
	// stragglers arriving after the flight landed); every payload must be
	// identical.
	norm := func(body []byte) string {
		var qr server.QueryResponse
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatalf("bad response body %s: %v", body, err)
		}
		if qr.Cache != "miss" && qr.Cache != "hit" {
			t.Fatalf("cache provenance %q, want miss or hit", qr.Cache)
		}
		qr.Cache = ""
		b, err := json.Marshal(qr)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	for i := 1; i < n; i++ {
		if norm(bodies[i]) != norm(bodies[0]) {
			t.Fatalf("response %d differs from response 0:\n%s\n%s", i, bodies[i], bodies[0])
		}
	}
	stats := graphStats(t, ts.URL, "yt")
	if stats.Misses != 1 {
		t.Fatalf("cache misses = %d, want exactly 1 evaluation for %d concurrent identical queries (stats %+v)",
			stats.Misses, n, stats)
	}
	if stats.Hits+stats.Coalesced != n-1 {
		t.Fatalf("hits+coalesced = %d, want %d (stats %+v)", stats.Hits+stats.Coalesced, n-1, stats)
	}
}

// TestValidationAndErrors covers the caps and the structured error paths.
func TestValidationAndErrors(t *testing.T) {
	ts, _, patterns := newTestServer(t, "yt", server.Config{MaxK: 50, MaxParallelism: 4})
	cases := []struct {
		name   string
		url    string
		req    server.QueryRequest
		status int
		code   string
	}{
		{"k too small", "/v1/query", server.QueryRequest{Graph: "yt", Pattern: patterns[0], K: 0}, 400, "bad_request"},
		{"k over cap", "/v1/query", server.QueryRequest{Graph: "yt", Pattern: patterns[0], K: 51}, 400, "bad_request"},
		{"parallelism over cap", "/v1/query", server.QueryRequest{Graph: "yt", Pattern: patterns[0], K: 5, Parallelism: 8}, 400, "bad_request"},
		{"unknown graph", "/v1/query", server.QueryRequest{Graph: "nope", Pattern: patterns[0], K: 5}, 404, "unknown_graph"},
		{"bad pattern", "/v1/query", server.QueryRequest{Graph: "yt", Pattern: "node 0", K: 5}, 400, "bad_pattern"},
		{"bad lambda", "/v1/query/diversified", server.QueryRequest{Graph: "yt", Pattern: patterns[0], K: 5, Lambda: 1.5}, 400, "bad_request"},
		{"bad strategy", "/v1/query", server.QueryRequest{Graph: "yt", Pattern: patterns[0], K: 5, Strategy: "magic"}, 400, "bad_request"},
		{"baseline on diversified", "/v1/query/diversified", server.QueryRequest{Graph: "yt", Pattern: patterns[0], K: 5, Baseline: true}, 400, "bad_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := post(t, ts.URL+tc.url, tc.req)
			if status != tc.status {
				t.Fatalf("status = %d, want %d (%s)", status, tc.status, body)
			}
			var errResp server.ErrorResponse
			if err := json.Unmarshal(body, &errResp); err != nil {
				t.Fatalf("not a structured error: %v (%s)", err, body)
			}
			if errResp.Error.Code != tc.code {
				t.Fatalf("code = %q, want %q", errResp.Error.Code, tc.code)
			}
		})
	}
}

// TestAddGraphAtRuntime registers a second graph over the API and queries
// it.
func TestAddGraphAtRuntime(t *testing.T) {
	ts, _, _ := newTestServer(t, "yt", server.Config{}, divtopk.WithCache(16))

	g2 := divtopk.NewCitationLike(800, 6_000, 11)
	var gbuf bytes.Buffer
	if err := divtopk.WriteGraph(&gbuf, g2); err != nil {
		t.Fatal(err)
	}
	status, body := post(t, ts.URL+"/v1/graphs", server.AddGraphRequest{Name: "cite", Graph: gbuf.String()})
	if status != http.StatusCreated {
		t.Fatalf("add graph: status %d: %s", status, body)
	}
	// Duplicate registration is a conflict.
	status, _ = post(t, ts.URL+"/v1/graphs", server.AddGraphRequest{Name: "cite", Graph: gbuf.String()})
	if status != http.StatusConflict {
		t.Fatalf("duplicate add: status %d, want %d", status, http.StatusConflict)
	}

	q, err := divtopk.GeneratePattern(g2, 3, 3, false, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	var pbuf bytes.Buffer
	if err := divtopk.WritePattern(&pbuf, q); err != nil {
		t.Fatal(err)
	}
	status, body = post(t, ts.URL+"/v1/query", server.QueryRequest{Graph: "cite", Pattern: pbuf.String(), K: 5})
	if status != http.StatusOK {
		t.Fatalf("query on added graph: status %d: %s", status, body)
	}
	var resp server.QueryResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.GlobalMatch || len(resp.Matches) == 0 {
		t.Fatalf("added graph returned no matches: %s", body)
	}

	// Health reflects both graphs.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var health struct {
		Status string `json:"status"`
		Graphs int    `json:"graphs"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Graphs != 2 {
		t.Fatalf("health = %+v, want ok with 2 graphs", health)
	}
}

// TestDistinctQueriesDistinctEntries sanity-checks that the cache keys
// distinguish different patterns and ks over HTTP.
func TestDistinctQueriesDistinctEntries(t *testing.T) {
	ts, _, patterns := newTestServer(t, "yt", server.Config{}, divtopk.WithCache(128))
	for i, text := range patterns {
		for _, k := range []int{3, 7} {
			status, body := post(t, ts.URL+"/v1/query", server.QueryRequest{Graph: "yt", Pattern: text, K: k})
			if status != http.StatusOK {
				t.Fatalf("pattern %d k %d: %d %s", i, k, status, body)
			}
		}
	}
	stats := graphStats(t, ts.URL, "yt")
	want := uint64(len(patterns) * 2)
	if stats.Misses != want {
		t.Fatalf("misses = %d, want %d distinct evaluations", stats.Misses, want)
	}
	if stats.Entries != int(want) {
		t.Fatalf("entries = %d, want %d", stats.Entries, want)
	}
}
