package server

import (
	"math"
	"testing"
)

// TestBuildOptionsLambdaNaN is the regression for the request-validation
// rewrite: the old check "req.Lambda < 0 || req.Lambda > 1" let NaN through
// (both comparisons are false for NaN) into the engine, which then computed
// NaN objective values. JSON cannot deliver a NaN, but the QueryRequest
// struct is also filled programmatically (bench harness, loadgen, embedded
// servers), so the validation itself must be NaN-proof.
func TestBuildOptionsLambdaNaN(t *testing.T) {
	s := New(NewRegistry(), Config{})
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -0.5, 1.5} {
		req := QueryRequest{K: 5, Lambda: bad}
		if _, msg := s.buildOptions(&req, true); msg == "" {
			t.Errorf("lambda %v accepted by request validation", bad)
		}
	}
	for _, ok := range []float64{0, 0.5, 1} {
		req := QueryRequest{K: 5, Lambda: ok}
		if _, msg := s.buildOptions(&req, true); msg != "" {
			t.Errorf("lambda %v rejected: %s", ok, msg)
		}
	}
}
