package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"divtopk"
)

// TestEvaluateTimeoutReleasesSlot pins the admission mechanics acceptance
// criterion (c) rests on: a caller that times out mid-evaluation gets
// context.DeadlineExceeded, the evaluation keeps running, and its pool slot
// is released when it finishes — never leaked.
func TestEvaluateTimeoutReleasesSlot(t *testing.T) {
	sem := make(chan struct{}, 1)
	gate := make(chan struct{})
	finished := make(chan struct{})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := evaluate(ctx, sem, func() (any, error) {
		<-gate
		close(finished)
		return "late", nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	// The abandoned evaluation still holds the slot...
	select {
	case sem <- struct{}{}:
		t.Fatal("slot free while the evaluation is still running")
	default:
	}
	// ...and returns it once it completes.
	close(gate)
	<-finished
	deadline := time.After(5 * time.Second)
	for {
		select {
		case sem <- struct{}{}:
			return
		case <-deadline:
			t.Fatal("slot never released after the evaluation finished")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

// TestEvaluateTimeoutWhileQueued covers the other admission path: a caller
// whose context expires before a slot frees is turned away without ever
// entering the pool.
func TestEvaluateTimeoutWhileQueued(t *testing.T) {
	sem := make(chan struct{}, 1)
	sem <- struct{}{} // pool saturated
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	ran := false
	_, err := evaluate(ctx, sem, func() (any, error) { ran = true; return nil, nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if ran {
		t.Fatal("fn ran despite the pool being saturated until after the deadline")
	}
}

// TestTimeoutReturnsStructuredErrorWithoutWedgingPool is acceptance
// criterion (c) end to end, made deterministic by saturating the one-slot
// pool directly: the queued request times out with the structured error
// body, and once the slot frees the server keeps serving.
func TestTimeoutReturnsStructuredErrorWithoutWedgingPool(t *testing.T) {
	g := divtopk.NewYouTubeLike(800, 7_000, 6)
	q, err := divtopk.GeneratePattern(g, 3, 4, false, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	var pbuf bytes.Buffer
	if err := divtopk.WritePattern(&pbuf, q); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(divtopk.WithCache(16))
	if err := reg.Add("yt", g); err != nil {
		t.Fatal(err)
	}
	srv := New(reg, Config{MaxConcurrent: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(req QueryRequest) (int, []byte) {
		raw, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out bytes.Buffer
		if _, err := out.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out.Bytes()
	}

	srv.sem <- struct{}{} // a long evaluation owns the only slot
	status, body := post(QueryRequest{Graph: "yt", Pattern: pbuf.String(), K: 5, TimeoutMS: 5})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want %d (%s)", status, http.StatusGatewayTimeout, body)
	}
	var errResp ErrorResponse
	if err := json.Unmarshal(body, &errResp); err != nil {
		t.Fatalf("timeout body is not the structured error: %v (%s)", err, body)
	}
	if errResp.Error.Code != codeTimeout {
		t.Fatalf("error code = %q, want %q (%s)", errResp.Error.Code, codeTimeout, body)
	}
	if errResp.Error.Message == "" {
		t.Fatal("timeout error has no message")
	}

	<-srv.sem // the long evaluation drains
	if status, body := post(QueryRequest{Graph: "yt", Pattern: pbuf.String(), K: 5}); status != http.StatusOK {
		t.Fatalf("post-timeout query: status %d: %s — pool wedged", status, body)
	}
}
