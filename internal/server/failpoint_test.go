package server_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"divtopk"
	"divtopk/internal/fsx"
	"divtopk/internal/server"
	"divtopk/internal/wal"
)

// TestDurabilityFailpoint pins the degraded-mode contract of the issue: when
// the WAL cannot be persisted (fsync failure), an update returns a structured
// durability_unavailable error and is NOT applied, reads keep serving at the
// last durable version, /healthz reports the graph degraded, and the server
// never wedges — the failure is sticky until a restart, even after the disk
// "recovers".
func TestDurabilityFailpoint(t *testing.T) {
	t.Parallel()
	base, _ := crashGraph(t)
	patterns := crashPatterns(t)
	var buf bytes.Buffer
	if err := divtopk.WritePattern(&buf, patterns[0]); err != nil {
		t.Fatal(err)
	}
	patternText := buf.String()

	fault := fsx.NewFault(fsx.OS())
	reg, err := server.NewPersistentRegistry(server.PersistOptions{
		Dir: t.TempDir(), FS: fault, Policy: wal.SyncAlways,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Add("g", base); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(reg, server.Config{}).Handler())
	defer ts.Close()

	update := server.UpdateRequest{AddNodes: []server.UpdateNode{{Label: "A"}}}
	query := func() server.QueryResponse {
		status, body := post(t, ts.URL+"/v1/query", server.QueryRequest{Graph: "g", Pattern: patternText, K: 5})
		if status != http.StatusOK {
			t.Fatalf("query status %d: %s", status, body)
		}
		var qr server.QueryResponse
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatal(err)
		}
		return qr
	}
	healthz := func() server.Health {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz status %d", resp.StatusCode)
		}
		var h server.Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}

	// Healthy: one update lands durably, health reports ok with durable ==
	// served.
	status, body := post(t, ts.URL+"/v1/graphs/g/updates", update)
	if status != http.StatusOK {
		t.Fatalf("healthy update: %d %s", status, body)
	}
	if v := query().Version; v != 1 {
		t.Fatalf("served version = %d, want 1", v)
	}
	if h := healthz(); h.Status != "ok" || !h.Persistent || h.Fsync != "always" ||
		len(h.GraphStatus) != 1 || h.GraphStatus[0].DurableVersion == nil || *h.GraphStatus[0].DurableVersion != 1 {
		t.Fatalf("healthy healthz = %+v", h)
	}

	// The disk stops persisting syncs. The next update must be refused with
	// the structured durability code and must not advance the served graph.
	fault.FailSyncs(errors.New("injected: device reports itself on fire"))
	status, body = post(t, ts.URL+"/v1/graphs/g/updates", update)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("degraded update status = %d, want 503 (%s)", status, body)
	}
	if code := decodeError(t, body).Error.Code; code != "durability_unavailable" {
		t.Fatalf("degraded update code = %q, want durability_unavailable (%s)", code, body)
	}

	// Reads still serve, at the last durable version.
	if v := query().Version; v != 1 {
		t.Fatalf("read after degradation served version %d, want 1", v)
	}

	// /healthz tells the operator exactly what is wrong.
	h := healthz()
	if h.Status != "degraded" {
		t.Fatalf("degraded healthz status = %q, want degraded", h.Status)
	}
	gs := h.GraphStatus[0]
	if !gs.Degraded || gs.Error == "" {
		t.Fatalf("degraded graph health = %+v", gs)
	}
	if gs.ServedVersion != 1 || gs.DurableVersion == nil || *gs.DurableVersion != 1 {
		t.Fatalf("degraded graph versions = %+v, want served=durable=1", gs)
	}

	// Degradation is sticky: the page-cache state after a failed fsync is
	// unknowable, so even a "recovered" disk must not resume appends until a
	// restart re-establishes a known-durable baseline.
	fault.FailSyncs(nil)
	status, body = post(t, ts.URL+"/v1/graphs/g/updates", update)
	if status != http.StatusServiceUnavailable || decodeError(t, body).Error.Code != "durability_unavailable" {
		t.Fatalf("post-recovery update: %d %s, want sticky 503", status, body)
	}

	// And the server is not wedged: reads and health still answer.
	if v := query().Version; v != 1 {
		t.Fatalf("final read served version %d, want 1", v)
	}
	if h := healthz(); h.Status != "degraded" {
		t.Fatalf("final healthz status = %q, want degraded", h.Status)
	}
}
