package pattern

// This file implements the per-node condition subsumption behind
// containment-aware cache seeding (cf. "Revisited Containment for Graph
// Patterns"). Candidate membership in this module depends only on a query
// node's search condition — label equality plus attribute predicates; edges
// never enter MatchesNode — so whenever node x of a cached donor pattern has
// the same label as node u of a new query and x's predicate set is a subset
// of u's, every candidate of u is necessarily a candidate of x:
// can(u) ⊆ can(x). The donor's cached candidate list can then seed u's scan
// (filtering the short donor list through u's full condition) in place of a
// cold pass over the whole label list. Subsumption here is syntactic subset
// over canonical predicate strings — deliberately conservative: a missed
// implication (e.g. x > 5 implying x > 3) only forfeits a seeding
// opportunity, never correctness, because the seeded scan re-checks the full
// condition.

// predSet canonicalizes a predicate slice to a set of String() forms.
func predSet(preds []Predicate) map[string]bool {
	s := make(map[string]bool, len(preds))
	for _, pr := range preds {
		s[pr.String()] = true
	}
	return s
}

// CondSubsumes reports whether donor node x's search condition subsumes
// query node u's: equal labels and preds(x) ⊆ preds(u) (syntactically).
// When true, can_q(u) ⊆ can_donor(x) on every graph.
func CondSubsumes(donor *Pattern, x int, q *Pattern, u int) bool {
	if donor.Label(x) != q.Label(u) {
		return false
	}
	have := predSet(q.Preds(u))
	for _, pr := range donor.Preds(x) {
		if !have[pr.String()] {
			return false
		}
	}
	return true
}

// NodeCover assigns to each node of q a donor node whose condition subsumes
// it, preferring the donor node with the most predicates (the tightest
// subsuming condition yields the shortest seed list; ties break to the
// lowest donor index for determinism). cover[u] is the chosen donor node or
// -1 when no donor node subsumes u. The second result counts covered nodes —
// zero means the donor is useless for seeding q.
func NodeCover(q, donor *Pattern) ([]int, int) {
	cover := make([]int, q.NumNodes())
	covered := 0
	for u := range cover {
		cover[u] = -1
		best := -1
		for x := 0; x < donor.NumNodes(); x++ {
			if !CondSubsumes(donor, x, q, u) {
				continue
			}
			if cover[u] == -1 || len(donor.Preds(x)) > best {
				cover[u], best = x, len(donor.Preds(x))
			}
		}
		if cover[u] >= 0 {
			covered++
		}
	}
	return cover, covered
}
