package pattern

import (
	"fmt"
	"strings"

	"divtopk/internal/graph"
)

// Op is a comparison operator of an attribute predicate.
type Op uint8

// The supported predicate operators. Ordering operators apply to integer
// attributes; Eq/Ne apply to both kinds; Contains applies to strings.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpContains
)

var opNames = map[Op]string{
	OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=", OpContains: "~",
}

// String returns the operator's surface syntax.
func (o Op) String() string { return opNames[o] }

// Predicate is one search condition on a node attribute, e.g. R>2 or
// C="music" in the paper's YouTube patterns (Fig. 4).
type Predicate struct {
	Attr string
	Op   Op
	Val  graph.Value
}

// Eval reports whether the predicate holds for data node v. A missing
// attribute or a kind mismatch makes the predicate false (never an error):
// data graphs are heterogeneous and nodes simply fail the search condition.
func (p Predicate) Eval(g *graph.Graph, v graph.NodeID) bool {
	val, ok := g.Attr(v, p.Attr)
	if !ok {
		return false
	}
	switch p.Op {
	case OpEq:
		return val == p.Val
	case OpNe:
		return val.Kind == p.Val.Kind && val != p.Val
	case OpContains:
		return val.Kind == graph.KindString && p.Val.Kind == graph.KindString &&
			strings.Contains(val.Str, p.Val.Str)
	}
	if val.Kind != graph.KindInt || p.Val.Kind != graph.KindInt {
		return false
	}
	switch p.Op {
	case OpLt:
		return val.Int < p.Val.Int
	case OpLe:
		return val.Int <= p.Val.Int
	case OpGt:
		return val.Int > p.Val.Int
	case OpGe:
		return val.Int >= p.Val.Int
	}
	return false
}

// String renders the predicate as attr<op>value.
func (p Predicate) String() string {
	return fmt.Sprintf("%s%s%s", p.Attr, p.Op, p.Val)
}

func (p Predicate) validate() error {
	if p.Attr == "" {
		return fmt.Errorf("predicate with empty attribute name")
	}
	if _, ok := opNames[p.Op]; !ok {
		return fmt.Errorf("predicate %s: unknown operator", p.Attr)
	}
	if p.Op == OpContains && p.Val.Kind != graph.KindString {
		return fmt.Errorf("predicate %s: contains requires a string value", p.Attr)
	}
	return nil
}

// Convenience constructors for the common predicate shapes.

// AttrEq builds attr = value (value may be int64 or string).
func AttrEq(attr string, value any) Predicate { return Predicate{attr, OpEq, toValue(value)} }

// AttrNe builds attr != value.
func AttrNe(attr string, value any) Predicate { return Predicate{attr, OpNe, toValue(value)} }

// AttrLt builds attr < value for integer attributes.
func AttrLt(attr string, value int64) Predicate { return Predicate{attr, OpLt, graph.IntValue(value)} }

// AttrLe builds attr <= value for integer attributes.
func AttrLe(attr string, value int64) Predicate { return Predicate{attr, OpLe, graph.IntValue(value)} }

// AttrGt builds attr > value for integer attributes.
func AttrGt(attr string, value int64) Predicate { return Predicate{attr, OpGt, graph.IntValue(value)} }

// AttrGe builds attr >= value for integer attributes.
func AttrGe(attr string, value int64) Predicate { return Predicate{attr, OpGe, graph.IntValue(value)} }

// AttrContains builds a substring predicate on a string attribute.
func AttrContains(attr, sub string) Predicate {
	return Predicate{attr, OpContains, graph.StrValue(sub)}
}

func toValue(v any) graph.Value {
	switch x := v.(type) {
	case int:
		return graph.IntValue(int64(x))
	case int64:
		return graph.IntValue(x)
	case string:
		return graph.StrValue(x)
	case graph.Value:
		return x
	default:
		panic(fmt.Sprintf("pattern: unsupported predicate value type %T", v))
	}
}
