package pattern

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"divtopk/internal/graph"
)

// Text file format for patterns, one directive per line:
//
//	# comment
//	node <id> <label> [*] [attr<op>value ...]
//	edge <u> <v>
//
// '*' marks the output node (exactly one). Predicate operators: = != < <= > >= ~
// Values parse as integers when possible, strings otherwise.

// Write serializes p in the text format.
func Write(w io.Writer, p *Pattern) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# divtopk pattern: %d nodes, %d edges\n", p.NumNodes(), p.NumEdges())
	for u := 0; u < p.NumNodes(); u++ {
		fmt.Fprintf(bw, "node %d %s", u, p.Label(u))
		if u == p.Output() {
			fmt.Fprint(bw, " *")
		}
		for _, pr := range p.Preds(u) {
			fmt.Fprintf(bw, " %s", pr)
		}
		fmt.Fprintln(bw)
	}
	for _, e := range p.Edges() {
		fmt.Fprintf(bw, "edge %d %d\n", e[0], e[1])
	}
	return bw.Flush()
}

// Read parses a pattern in the text format and validates it.
func Read(r io.Reader) (*Pattern, error) {
	type nodeDecl struct {
		label  string
		output bool
		preds  []Predicate
	}
	nodes := make(map[int]nodeDecl)
	var edges [][2]int
	maxID := -1

	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "node":
			if len(fields) < 3 {
				return nil, fmt.Errorf("pattern: line %d: node needs id and label", lineNo)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id < 0 {
				return nil, fmt.Errorf("pattern: line %d: bad node id %q", lineNo, fields[1])
			}
			if _, dup := nodes[id]; dup {
				return nil, fmt.Errorf("pattern: line %d: duplicate node %d", lineNo, id)
			}
			decl := nodeDecl{label: fields[2]}
			for _, tok := range fields[3:] {
				if tok == "*" {
					decl.output = true
					continue
				}
				pr, err := ParsePredicate(tok)
				if err != nil {
					return nil, fmt.Errorf("pattern: line %d: %v", lineNo, err)
				}
				decl.preds = append(decl.preds, pr)
			}
			nodes[id] = decl
			if id > maxID {
				maxID = id
			}
		case "edge":
			if len(fields) != 3 {
				return nil, fmt.Errorf("pattern: line %d: edge needs src and dst", lineNo)
			}
			src, err1 := strconv.Atoi(fields[1])
			dst, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("pattern: line %d: bad edge endpoints", lineNo)
			}
			edges = append(edges, [2]int{src, dst})
		default:
			return nil, fmt.Errorf("pattern: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("pattern: read: %w", err)
	}

	n := maxID + 1
	if len(nodes) != n {
		return nil, fmt.Errorf("pattern: node IDs not dense: %d declarations, max id %d", len(nodes), maxID)
	}
	p := New()
	outputs := 0
	for id := 0; id < n; id++ {
		decl := nodes[id]
		p.AddNode(decl.label, decl.preds...)
		if decl.output {
			outputs++
			if err := p.SetOutput(id); err != nil {
				return nil, err
			}
		}
	}
	if outputs != 1 {
		return nil, fmt.Errorf("pattern: need exactly one output node marked '*', got %d", outputs)
	}
	for _, e := range edges {
		if err := p.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// predicate operators ordered longest-first so "<=" wins over "<".
var opSyntax = []struct {
	tok string
	op  Op
}{
	{"!=", OpNe}, {"<=", OpLe}, {">=", OpGe}, {"=", OpEq}, {"<", OpLt}, {">", OpGt}, {"~", OpContains},
}

// ParsePredicate parses a single attr<op>value token, e.g. "R>2", "C=music",
// "title~graph".
func ParsePredicate(tok string) (Predicate, error) {
	for _, o := range opSyntax {
		if i := strings.Index(tok, o.tok); i > 0 {
			attr := tok[:i]
			raw := tok[i+len(o.tok):]
			if raw == "" {
				return Predicate{}, fmt.Errorf("predicate %q has no value", tok)
			}
			var val graph.Value
			if iv, err := strconv.ParseInt(raw, 10, 64); err == nil && o.op != OpContains {
				val = graph.IntValue(iv)
			} else {
				val = graph.StrValue(strings.Trim(raw, `"`))
			}
			pr := Predicate{Attr: attr, Op: o.op, Val: val}
			if err := pr.validate(); err != nil {
				return Predicate{}, err
			}
			return pr, nil
		}
	}
	return Predicate{}, fmt.Errorf("cannot parse predicate %q", tok)
}
