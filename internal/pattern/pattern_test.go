package pattern

import (
	"bytes"
	"strings"
	"testing"

	"divtopk/internal/graph"
)

// figure1Pattern builds the paper's Fig. 1(a) pattern Q:
// PM* -> DB, PM -> PRG, DB <-> PRG (cycle), DB -> ST, PRG -> ST.
func figure1Pattern(t *testing.T) *Pattern {
	t.Helper()
	p := New()
	pm := p.AddNode("PM")
	db := p.AddNode("DB")
	prg := p.AddNode("PRG")
	st := p.AddNode("ST")
	for _, e := range [][2]int{{pm, db}, {pm, prg}, {db, prg}, {prg, db}, {db, st}, {prg, st}} {
		if err := p.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.SetOutput(pm); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFigure1PatternStructure(t *testing.T) {
	p := figure1Pattern(t)
	if p.NumNodes() != 4 || p.NumEdges() != 6 || p.Size() != 10 {
		t.Fatalf("sizes: %d nodes %d edges", p.NumNodes(), p.NumEdges())
	}
	if p.IsDAG() {
		t.Fatal("Q has a DB<->PRG cycle; IsDAG must be false")
	}
	a := Analyze(p)
	// Q_SCC: {PM}, {DB,PRG}, {ST}. ST rank 0, DB/PRG rank 1, PM rank 2.
	if a.Rank[0] != 2 || a.Rank[1] != 1 || a.Rank[2] != 1 || a.Rank[3] != 0 {
		t.Fatalf("ranks = %v", a.Rank)
	}
	if a.Cond.Comp[1] != a.Cond.Comp[2] {
		t.Fatal("DB and PRG must share an SCC")
	}
	if !a.Cond.Nontrivial[a.Cond.Comp[1]] {
		t.Fatal("DB/PRG SCC must be nontrivial")
	}
	if a.Cond.Nontrivial[a.Cond.Comp[0]] || a.Cond.Nontrivial[a.Cond.Comp[3]] {
		t.Fatal("PM and ST SCCs must be trivial")
	}
	// Descendants of PM: DB, PRG, ST but not PM.
	want := []bool{false, true, true, true}
	for u, w := range want {
		if a.OutputDesc[u] != w {
			t.Fatalf("OutputDesc[%d] = %v, want %v", u, a.OutputDesc[u], w)
		}
	}
	if len(a.DescLabels) != 3 {
		t.Fatalf("DescLabels = %v", a.DescLabels)
	}
	if !OutputReachesAll(p) {
		t.Fatal("PM reaches all query nodes")
	}
}

func TestOutputOnCycleIsOwnDescendant(t *testing.T) {
	p := New()
	a := p.AddNode("A")
	b := p.AddNode("B")
	if err := p.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if err := p.AddEdge(b, a); err != nil {
		t.Fatal(err)
	}
	an := Analyze(p)
	if !an.OutputDesc[a] || !an.OutputDesc[b] {
		t.Fatal("output on a cycle is its own descendant")
	}
}

func TestValidateErrors(t *testing.T) {
	if err := New().Validate(); err == nil {
		t.Fatal("empty pattern must not validate")
	}
	p := New()
	p.AddNode("")
	if err := p.Validate(); err == nil {
		t.Fatal("empty label must not validate")
	}
	p2 := New()
	p2.AddNode("a", Predicate{Attr: "", Op: OpEq, Val: graph.IntValue(1)})
	if err := p2.Validate(); err == nil {
		t.Fatal("empty predicate attr must not validate")
	}
	p3 := New()
	p3.AddNode("a")
	if err := p3.AddEdge(0, 1); err == nil {
		t.Fatal("edge to unknown node accepted")
	}
	if err := p3.AddEdge(0, 0); err != nil {
		t.Fatal("self-loop should be allowed")
	}
	if err := p3.AddEdge(0, 0); err == nil {
		t.Fatal("duplicate edge accepted")
	}
	if err := p3.SetOutput(9); err == nil {
		t.Fatal("out-of-range output accepted")
	}
}

func TestPredicateEval(t *testing.T) {
	b := graph.NewBuilder()
	v := b.AddNode("video", map[string]graph.Value{
		"C": graph.StrValue("music"),
		"R": graph.IntValue(4),
	})
	g := b.Build()

	cases := []struct {
		pred Predicate
		want bool
	}{
		{AttrEq("C", "music"), true},
		{AttrEq("C", "comedy"), false},
		{AttrNe("C", "comedy"), true},
		{AttrNe("C", "music"), false},
		{AttrGt("R", 2), true},
		{AttrGt("R", 4), false},
		{AttrGe("R", 4), true},
		{AttrLt("R", 5), true},
		{AttrLe("R", 3), false},
		{AttrContains("C", "usi"), true},
		{AttrContains("C", "xyz"), false},
		{AttrEq("missing", "x"), false},
		{AttrGt("C", 2), false},         // kind mismatch
		{AttrNe("R", "music"), false},   // kind mismatch on Ne
		{AttrContains("R", "4"), false}, // contains on int attr
	}
	for _, c := range cases {
		if got := c.pred.Eval(g, v); got != c.want {
			t.Errorf("%s = %v, want %v", c.pred, got, c.want)
		}
	}
}

func TestMatchesNode(t *testing.T) {
	b := graph.NewBuilder()
	v1 := b.AddNode("video", map[string]graph.Value{"R": graph.IntValue(4)})
	v2 := b.AddNode("video", map[string]graph.Value{"R": graph.IntValue(1)})
	v3 := b.AddNode("channel", map[string]graph.Value{"R": graph.IntValue(9)})
	g := b.Build()

	p := New()
	u := p.AddNode("video", AttrGt("R", 2))
	if !p.MatchesNode(g, u, v1) {
		t.Fatal("v1 should match")
	}
	if p.MatchesNode(g, u, v2) {
		t.Fatal("v2 fails the predicate")
	}
	if p.MatchesNode(g, u, v3) {
		t.Fatal("v3 has the wrong label")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := figure1Pattern(t)
	q := p.Clone()
	if q.String() != p.String() {
		t.Fatalf("clone differs: %s vs %s", q, p)
	}
	q.AddNode("X")
	if q.NumNodes() == p.NumNodes() {
		t.Fatal("clone not independent")
	}
}

func TestStringRendering(t *testing.T) {
	p := New()
	p.AddNode("A", AttrGt("R", 2))
	p.AddNode("B")
	if err := p.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	s := p.String()
	for _, want := range []string{"0:A*", "[R>2]", "1:B", "0->1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestIORoundtrip(t *testing.T) {
	p := figure1Pattern(t)
	// Add predicates to exercise serialization of all operators.
	p.nodes[3].Preds = []Predicate{
		AttrGt("V", 5000), AttrEq("C", "music"), AttrContains("title", "go"),
		AttrLe("age", 100), AttrGe("rate", 2), AttrLt("x", 5), AttrNe("y", 3),
	}
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := Read(&buf)
	if err != nil {
		t.Fatalf("%v\ninput:\n%s", err, buf.String())
	}
	if q.String() != p.String() {
		t.Fatalf("roundtrip mismatch:\n%s\n%s", p, q)
	}
	if q.Output() != p.Output() {
		t.Fatal("output node lost in roundtrip")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"no output", "node 0 a\n"},
		{"two outputs", "node 0 a *\nnode 1 b *\n"},
		{"bad predicate", "node 0 a !!\n"},
		{"sparse", "node 1 a *\n"},
		{"dup node", "node 0 a *\nnode 0 b\n"},
		{"bad edge", "node 0 a *\nedge 0 7\n"},
		{"bad directive", "wat\n"},
		{"edge arity", "node 0 a *\nedge 0\n"},
		{"predicate no value", "node 0 a * R>\n"},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestParsePredicateForms(t *testing.T) {
	cases := []struct {
		in   string
		op   Op
		kind graph.ValueKind
	}{
		{"R>2", OpGt, graph.KindInt},
		{"R>=2", OpGe, graph.KindInt},
		{"R<2", OpLt, graph.KindInt},
		{"R<=2", OpLe, graph.KindInt},
		{"C=music", OpEq, graph.KindString},
		{"C!=x", OpNe, graph.KindString},
		{"t~sub", OpContains, graph.KindString},
		{`C="quoted"`, OpEq, graph.KindString},
	}
	for _, c := range cases {
		pr, err := ParsePredicate(c.in)
		if err != nil {
			t.Fatalf("%s: %v", c.in, err)
		}
		if pr.Op != c.op || pr.Val.Kind != c.kind {
			t.Fatalf("%s parsed to %+v", c.in, pr)
		}
	}
	if pr, err := ParsePredicate(`C="quoted"`); err != nil || pr.Val.Str != "quoted" {
		t.Fatalf("quotes not stripped: %+v %v", pr, err)
	}
	if _, err := ParsePredicate("nodelim"); err == nil {
		t.Fatal("predicate without operator accepted")
	}
}
