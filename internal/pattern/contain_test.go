package pattern

import "testing"

// TestCondSubsumes pins the syntactic subsumption rule behind containment
// seeding: equal labels plus a predicate subset. It must never claim
// subsumption on a label mismatch or an extra donor predicate, and it must
// stay deliberately blind to semantic implication (x > 5 does not subsume
// x > 3 here).
func TestCondSubsumes(t *testing.T) {
	donor := New()
	donor.AddNode("person")                                    // 0: bare label
	donor.AddNode("person", AttrGt("age", 18))                 // 1: one predicate
	donor.AddNode("city")                                      // 2: other label
	donor.AddNode("person", AttrGt("age", 18), AttrEq("x", 1)) // 3: two predicates

	q := New()
	q.AddNode("person", AttrGt("age", 18)) // 0
	q.AddNode("person")                    // 1
	q.AddNode("person", AttrGt("age", 30)) // 2: semantically stronger, syntactically disjoint

	cases := []struct {
		x, u int
		want bool
	}{
		{0, 0, true}, // bare donor condition subsumes anything with the label
		{0, 1, true},
		{1, 0, true},  // identical predicate sets
		{1, 1, false}, // donor has a predicate the query lacks
		{2, 0, false}, // label mismatch
		{3, 0, false}, // donor carries an extra predicate
		{1, 2, false}, // age>18 vs age>30: implication is NOT recognized
		{0, 2, true},  // but the bare label still subsumes
	}
	for _, c := range cases {
		if got := CondSubsumes(donor, c.x, q, c.u); got != c.want {
			t.Errorf("CondSubsumes(donor[%d], q[%d]) = %v, want %v", c.x, c.u, got, c.want)
		}
	}
}

// TestNodeCover pins the donor-node assignment: prefer the subsuming donor
// node with the most predicates (tightest condition, shortest seed list),
// break ties toward the lowest donor index, report -1 for uncovered nodes.
func TestNodeCover(t *testing.T) {
	donor := New()
	donor.AddNode("person")                    // 0
	donor.AddNode("person", AttrGt("age", 18)) // 1: tighter
	donor.AddNode("person")                    // 2: duplicate of 0

	q := New()
	q.AddNode("person", AttrGt("age", 18), AttrEq("x", 1)) // covered by 0 and 1 -> 1 wins (more preds)
	q.AddNode("person")                                    // covered by 0 and 2 -> 0 wins (lowest index)
	q.AddNode("city")                                      // uncovered

	cover, covered := NodeCover(q, donor)
	if covered != 2 {
		t.Fatalf("covered = %d, want 2", covered)
	}
	want := []int{1, 0, -1}
	for u, x := range want {
		if cover[u] != x {
			t.Errorf("cover[%d] = %d, want %d", u, cover[u], x)
		}
	}

	// A donor covering nothing reports zero.
	other := New()
	other.AddNode("company")
	if _, n := NodeCover(q, other); n != 0 {
		t.Errorf("useless donor covered %d node(s)", n)
	}
}
