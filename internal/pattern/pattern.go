// Package pattern implements the pattern graphs of the paper:
// Q = (Vp, Ep, fv, uo), a directed graph whose nodes carry a search
// condition (a label plus optional attribute predicates, §2.2) and one of
// which is designated as the output node uo (marked '*' in the paper's
// figures). Patterns may be DAGs or cyclic; the analysis needed by the
// matching algorithms (SCC decomposition of Q, topological ranks r(u),
// descendants of the output node) is provided by Analyze.
package pattern

import (
	"fmt"
	"strings"

	"divtopk/internal/graph"
)

// Node is one query node: a label and zero or more attribute predicates.
// A data node v is a candidate of the query node iff the labels are equal
// and every predicate holds on v's attributes.
type Node struct {
	Label string
	Preds []Predicate
}

// Pattern is a directed pattern graph with a designated output node.
// Build one with New/AddNode/AddEdge/SetOutput, then call Validate.
type Pattern struct {
	nodes  []Node
	out    [][]int
	in     [][]int
	edges  [][2]int
	output int
}

// New returns an empty pattern with no output node set (defaults to node 0
// once nodes exist).
func New() *Pattern {
	return &Pattern{output: 0}
}

// AddNode appends a query node and returns its index.
func (p *Pattern) AddNode(label string, preds ...Predicate) int {
	p.nodes = append(p.nodes, Node{Label: label, Preds: preds})
	p.out = append(p.out, nil)
	p.in = append(p.in, nil)
	return len(p.nodes) - 1
}

// AddEdge appends the query edge (u, u'). Duplicate edges are rejected:
// pattern semantics make them meaningless and the propagation counters of
// internal/core assume distinct edges.
func (p *Pattern) AddEdge(u, v int) error {
	n := len(p.nodes)
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("pattern: edge (%d,%d) references unknown node (have %d nodes)", u, v, n)
	}
	for _, w := range p.out[u] {
		if w == v {
			return fmt.Errorf("pattern: duplicate edge (%d,%d)", u, v)
		}
	}
	p.out[u] = append(p.out[u], v)
	p.in[v] = append(p.in[v], u)
	p.edges = append(p.edges, [2]int{u, v})
	return nil
}

// AddPred appends a search-condition predicate to an existing query node.
func (p *Pattern) AddPred(u int, pr Predicate) error {
	if u < 0 || u >= len(p.nodes) {
		return fmt.Errorf("pattern: AddPred on unknown node %d", u)
	}
	p.nodes[u].Preds = append(p.nodes[u].Preds, pr)
	return nil
}

// SetOutput designates u as the output node uo.
func (p *Pattern) SetOutput(u int) error {
	if u < 0 || u >= len(p.nodes) {
		return fmt.Errorf("pattern: output node %d out of range", u)
	}
	p.output = u
	return nil
}

// Output returns the index of the output node uo.
func (p *Pattern) Output() int { return p.output }

// NumNodes returns |Vp|.
func (p *Pattern) NumNodes() int { return len(p.nodes) }

// NumEdges returns |Ep|.
func (p *Pattern) NumEdges() int { return len(p.edges) }

// Size returns |Q| = |Vp| + |Ep|.
func (p *Pattern) Size() int { return len(p.nodes) + len(p.edges) }

// Label returns the label of query node u.
func (p *Pattern) Label(u int) string { return p.nodes[u].Label }

// Preds returns the predicates of query node u.
func (p *Pattern) Preds(u int) []Predicate { return p.nodes[u].Preds }

// Out returns the children of query node u. The caller must not modify it.
func (p *Pattern) Out(u int) []int { return p.out[u] }

// In returns the parents of query node u. The caller must not modify it.
func (p *Pattern) In(u int) []int { return p.in[u] }

// Edges returns all query edges. The caller must not modify it.
func (p *Pattern) Edges() [][2]int { return p.edges }

// Validate checks structural sanity: at least one node, labels non-empty,
// and a valid output node.
func (p *Pattern) Validate() error {
	if len(p.nodes) == 0 {
		return fmt.Errorf("pattern: no nodes")
	}
	for i, n := range p.nodes {
		if n.Label == "" {
			return fmt.Errorf("pattern: node %d has empty label", i)
		}
		for _, pr := range n.Preds {
			if err := pr.validate(); err != nil {
				return fmt.Errorf("pattern: node %d: %w", i, err)
			}
		}
	}
	if p.output < 0 || p.output >= len(p.nodes) {
		return fmt.Errorf("pattern: output node %d out of range", p.output)
	}
	return nil
}

// IsDAG reports whether the pattern has no directed cycle (self-loops count
// as cycles).
func (p *Pattern) IsDAG() bool {
	a := Analyze(p)
	for _, nt := range a.Cond.Nontrivial {
		if nt {
			return false
		}
	}
	return true
}

// MatchesNode reports whether data node v satisfies the search condition of
// query node u: equal labels and all predicates true.
func (p *Pattern) MatchesNode(g *graph.Graph, u int, v graph.NodeID) bool {
	if g.Label(v) != p.nodes[u].Label {
		return false
	}
	for _, pr := range p.nodes[u].Preds {
		if !pr.Eval(g, v) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the pattern.
func (p *Pattern) Clone() *Pattern {
	q := New()
	for _, n := range p.nodes {
		preds := make([]Predicate, len(n.Preds))
		copy(preds, n.Preds)
		q.AddNode(n.Label, preds...)
	}
	for _, e := range p.edges {
		// Cannot fail: edges were valid in p.
		_ = q.AddEdge(e[0], e[1])
	}
	q.output = p.output
	return q
}

// String renders the pattern compactly, e.g. "PM*->DB PM*->PRG DB<->PRG".
func (p *Pattern) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pattern(%d,%d){", len(p.nodes), len(p.edges))
	for i, n := range p.nodes {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%s", i, n.Label)
		if i == p.output {
			b.WriteByte('*')
		}
		for _, pr := range n.Preds {
			fmt.Fprintf(&b, "[%s]", pr)
		}
	}
	b.WriteString(" |")
	for _, e := range p.edges {
		fmt.Fprintf(&b, " %d->%d", e[0], e[1])
	}
	b.WriteByte('}')
	return b.String()
}

// Analysis carries the derived structure the algorithms need: the SCC
// condensation of Q (Q_SCC of §4.2), per-node topological ranks, and which
// query nodes the output node reaches (its descendants, which define the
// relevant sets and the normalization constant C_uo of §3.3).
type Analysis struct {
	// Cond is the condensation of the pattern graph. Node IDs are the query
	// node indices widened to int32.
	Cond *graph.Condensation
	// Rank is the topological rank of each query node: the rank of its SCC
	// in Q_SCC (0 = leaf), as defined in §4.
	Rank []int32
	// OutputDesc[u] reports whether u is a descendant of the output node
	// (reachable from uo by a path of >= 1 edges). The output node itself is
	// a descendant only if it lies on a cycle.
	OutputDesc []bool
	// DescLabels is the set of distinct labels of the output node's
	// descendants, in first-seen order. Relevant sets only ever contain
	// nodes with these labels.
	DescLabels []string
}

// Analyze computes the Analysis of p.
func Analyze(p *Pattern) *Analysis {
	n := p.NumNodes()
	cond := graph.Condense(n, func(v int32, emit func(int32)) {
		for _, w := range p.out[v] {
			emit(int32(w))
		}
	})
	a := &Analysis{
		Cond:       cond,
		Rank:       make([]int32, n),
		OutputDesc: make([]bool, n),
	}
	for u := 0; u < n; u++ {
		a.Rank[u] = cond.Rank[cond.Comp[u]]
	}

	// Descendants of uo: BFS over query edges starting from uo's successors;
	// uo is included when revisited (i.e. it lies on a cycle).
	var queue []int
	push := func(u int) {
		if !a.OutputDesc[u] {
			a.OutputDesc[u] = true
			queue = append(queue, u)
		}
	}
	for _, w := range p.out[p.output] {
		push(w)
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range p.out[u] {
			push(w)
		}
	}
	seen := map[string]bool{}
	for u := 0; u < n; u++ {
		if a.OutputDesc[u] && !seen[p.nodes[u].Label] {
			seen[p.nodes[u].Label] = true
			a.DescLabels = append(a.DescLabels, p.nodes[u].Label)
		}
	}
	return a
}

// OutputReachesAll reports whether the output node reaches every other query
// node, i.e. whether uo is a "root" in the paper's sense (§4.1). The
// algorithms support non-root outputs too; this is exposed for diagnostics
// and tests.
func OutputReachesAll(p *Pattern) bool {
	a := Analyze(p)
	for u := 0; u < p.NumNodes(); u++ {
		if u != p.Output() && !a.OutputDesc[u] {
			return false
		}
	}
	return true
}
