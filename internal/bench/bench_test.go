package bench

import (
	"strings"
	"testing"
)

// tinyScale keeps the smoke tests fast.
var tinyScale = Scale{
	Name:       "tiny",
	YouTube:    [2]int{3000, 10000},
	Citation:   [2]int{3000, 7500},
	Amazon:     [2]int{2500, 8500},
	SynthBase:  [2]int{1500, 3000},
	SynthSteps: []float64{1.0, 2.0},
	Queries:    2,
	K:          5,
	Seed:       1,
}

func checkFigure(t *testing.T, f *Figure, wantRows int) {
	t.Helper()
	if len(f.Rows) != wantRows {
		t.Fatalf("%s: %d rows, want %d", f.ID, len(f.Rows), wantRows)
	}
	for _, r := range f.Rows {
		if len(r.Vals) != len(f.Series) {
			t.Fatalf("%s: row %s has %d vals for %d series", f.ID, r.X, len(r.Vals), len(f.Series))
		}
		for i, v := range r.Vals {
			if v < 0 {
				t.Fatalf("%s: negative value %v in series %s", f.ID, v, f.Series[i])
			}
		}
	}
	if !strings.Contains(f.Format(), f.ID) {
		t.Fatalf("%s: Format missing ID", f.ID)
	}
}

func TestMRFiguresSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test")
	}
	fa := Fig5a(tinyScale)
	checkFigure(t, fa, 5)
	for _, r := range fa.Rows {
		// MR percentages must be within (0, 100].
		for _, v := range r.Vals {
			if v <= 0 || v > 100.00001 {
				t.Fatalf("fig5a: MR %v%% out of range", v)
			}
		}
	}
	fb := Fig5b(tinyScale)
	checkFigure(t, fb, 4)
	fc := Fig5c(tinyScale)
	checkFigure(t, fc, 6)
	// MR grows (weakly) with k for TopK.
	if fc.Rows[0].Vals[0] > fc.Rows[len(fc.Rows)-1].Vals[0]+20 {
		t.Errorf("fig5c: MR should not fall sharply with k: %v", fc.Rows)
	}
}

func TestTimeFiguresSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test")
	}
	checkFigure(t, Fig5d(tinyScale), 5)
	checkFigure(t, Fig5e(tinyScale), 4)
	checkFigure(t, Fig5f(tinyScale), 6)
	checkFigure(t, Fig5g(tinyScale), 2)
	checkFigure(t, Fig5h(tinyScale), 2)
}

func TestDiversifiedFiguresSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test")
	}
	fi := Fig5i(tinyScale)
	checkFigure(t, fi, 5)
	for _, r := range fi.Rows {
		// Both are heuristics for an NP-hard objective: TopKDiv is a greedy
		// 2-approximation and TopKDH a swap heuristic, so either can edge
		// out the other on a given instance (on tiny graphs DH sometimes
		// wins outright). Sanity-check comparability, not dominance.
		if r.Vals[0] <= 0 || r.Vals[1] <= 0 {
			t.Errorf("fig5i: non-positive F at %s: %v", r.X, r.Vals)
		}
		if r.Vals[1] < 0.3*r.Vals[0] || r.Vals[1] > 2.0*r.Vals[0] {
			t.Errorf("fig5i: F[DH]=%v not comparable to F[Div]=%v at %s", r.Vals[1], r.Vals[0], r.X)
		}
	}
	checkFigure(t, Fig5j(tinyScale), 5)
	checkFigure(t, Fig5k(tinyScale), 5)
	checkFigure(t, Fig5l(tinyScale), 2)
}

func TestExtrasSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test")
	}
	checkFigure(t, Lambda(tinyScale), 6)
	checkFigure(t, AblationBounds(tinyScale), 3)
	checkFigure(t, AblationShape(tinyScale), 3)
	out := Fig4(tinyScale)
	if !strings.Contains(out, "Fig 4 case study") {
		t.Fatalf("Fig4 output malformed:\n%s", out)
	}
}

func TestScaleByName(t *testing.T) {
	if _, err := ByName("small"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("medium"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown scale accepted")
	}
}
