package bench

import "fmt"

// Pattern-size ladders copied from the paper's x axes.
var (
	youtubeSizes  = [][2]int{{4, 8}, {5, 10}, {6, 12}, {7, 14}, {8, 16}}
	citationSizes = [][2]int{{4, 6}, {6, 9}, {8, 12}, {10, 15}}
	smallDAGSizes = [][2]int{{3, 2}, {4, 3}, {5, 4}, {6, 5}, {7, 6}}
	kLadder       = []int{5, 10, 15, 20, 25, 30}
)

// Fig5a: match ratio MR vs |Q| for cyclic patterns on YouTube (TopK vs
// TopKnopt; Match is omitted because its MR is identically 1).
func Fig5a(sc Scale) *Figure {
	d := newDatasets(sc)
	g := d.youtube()
	f := &Figure{
		ID: "fig5a", Title: "MR vs |Q|, cyclic patterns (YouTube-like)",
		XLabel: "|Q|", YLabel: "% of matches",
		Series: []string{"MR[TopK]%", "MR[TopKnopt]%"},
		Notes:  "TopK ≈ 45% on average, nopt ≈ 16% higher; both well below Match's 100%",
	}
	for _, size := range youtubeSizes {
		ps := d.patternsFor(g, size[0], size[1], true, true)
		opt := runTopK(d, g, ps, sc.K, "topk", sc.Seed)
		nopt := runTopK(d, g, ps, sc.K, "topknopt", sc.Seed)
		f.Rows = append(f.Rows, Row{
			X:    fmt.Sprintf("(%d,%d)", size[0], size[1]),
			Vals: []float64{opt.mr * 100, nopt.mr * 100},
		})
	}
	return f
}

// Fig5b: MR vs |Q| for DAG patterns on Citation (TopKDAG vs TopKDAGnopt).
func Fig5b(sc Scale) *Figure {
	d := newDatasets(sc)
	g := d.citation()
	f := &Figure{
		ID: "fig5b", Title: "MR vs |Q|, DAG patterns (Citation-like)",
		XLabel: "|Q|", YLabel: "% of matches",
		Series: []string{"MR[TopKDAG]%", "MR[TopKDAGnopt]%"},
		Notes:  "TopKDAG ≈ 40% on average, ≈ 18% below nopt; lower than cyclic MR",
	}
	for _, size := range citationSizes {
		ps := d.patternsFor(g, size[0], size[1], false, false)
		opt := runTopK(d, g, ps, sc.K, "topk", sc.Seed)
		nopt := runTopK(d, g, ps, sc.K, "topknopt", sc.Seed)
		f.Rows = append(f.Rows, Row{
			X:    fmt.Sprintf("(%d,%d)", size[0], size[1]),
			Vals: []float64{opt.mr * 100, nopt.mr * 100},
		})
	}
	return f
}

// Fig5c: MR vs k for cyclic patterns on Amazon.
func Fig5c(sc Scale) *Figure {
	d := newDatasets(sc)
	g := d.amazon()
	ps := d.patternsFor(g, 4, 8, true, false)
	f := &Figure{
		ID: "fig5c", Title: "MR vs k, cyclic patterns |Q|=(4,8) (Amazon-like)",
		XLabel: "k", YLabel: "% of matches",
		Series: []string{"MR[TopK]%", "MR[TopKnopt]%"},
		Notes:  "MR grows with k: 42%→69% for TopK, 46%→77% for nopt over k=5..30",
	}
	for _, k := range kLadder {
		opt := runTopK(d, g, ps, k, "topk", sc.Seed)
		nopt := runTopK(d, g, ps, k, "topknopt", sc.Seed)
		f.Rows = append(f.Rows, Row{
			X:    fmt.Sprintf("%d", k),
			Vals: []float64{opt.mr * 100, nopt.mr * 100},
		})
	}
	return f
}

// Fig5d: time vs |Q| for cyclic patterns on YouTube (Match, TopKnopt, TopK).
func Fig5d(sc Scale) *Figure {
	d := newDatasets(sc)
	g := d.youtube()
	f := &Figure{
		ID: "fig5d", Title: "time vs |Q|, cyclic patterns (YouTube-like)",
		XLabel: "|Q|", YLabel: "ms",
		Series: []string{"Match(ms)", "TopKnopt(ms)", "TopK(ms)"},
		Notes:  "TopK ≈ 52% and nopt ≈ 64% of Match's time; Match most sensitive to |Q|",
	}
	for _, size := range youtubeSizes {
		ps := d.patternsFor(g, size[0], size[1], true, true)
		match := runTopK(d, g, ps, sc.K, "match", sc.Seed)
		nopt := runTopK(d, g, ps, sc.K, "topknopt", sc.Seed)
		opt := runTopK(d, g, ps, sc.K, "topk", sc.Seed)
		f.Rows = append(f.Rows, Row{
			X:    fmt.Sprintf("(%d,%d)", size[0], size[1]),
			Vals: []float64{ms(match.time), ms(nopt.time), ms(opt.time)},
		})
	}
	return f
}

// Fig5e: time vs |Q| for DAG patterns on Citation.
func Fig5e(sc Scale) *Figure {
	d := newDatasets(sc)
	g := d.citation()
	f := &Figure{
		ID: "fig5e", Title: "time vs |Q|, DAG patterns (Citation-like)",
		XLabel: "|Q|", YLabel: "ms",
		Series: []string{"Match(ms)", "TopKDAGnopt(ms)", "TopKDAG(ms)"},
		Notes:  "TopKDAG ≈ 36% of Match (better than cyclic: no fixpoint needed)",
	}
	for _, size := range citationSizes {
		ps := d.patternsFor(g, size[0], size[1], false, false)
		match := runTopK(d, g, ps, sc.K, "match", sc.Seed)
		nopt := runTopK(d, g, ps, sc.K, "topknopt", sc.Seed)
		opt := runTopK(d, g, ps, sc.K, "topk", sc.Seed)
		f.Rows = append(f.Rows, Row{
			X:    fmt.Sprintf("(%d,%d)", size[0], size[1]),
			Vals: []float64{ms(match.time), ms(nopt.time), ms(opt.time)},
		})
	}
	return f
}

// Fig5f: time vs k on Amazon.
func Fig5f(sc Scale) *Figure {
	d := newDatasets(sc)
	g := d.amazon()
	ps := d.patternsFor(g, 4, 8, true, false)
	f := &Figure{
		ID: "fig5f", Title: "time vs k, cyclic patterns |Q|=(4,8) (Amazon-like)",
		XLabel: "k", YLabel: "ms",
		Series: []string{"Match(ms)", "TopKnopt(ms)", "TopK(ms)"},
		Notes:  "Match flat in k; TopK/nopt grow with k but stay below Match",
	}
	for _, k := range kLadder {
		match := runTopK(d, g, ps, k, "match", sc.Seed)
		nopt := runTopK(d, g, ps, k, "topknopt", sc.Seed)
		opt := runTopK(d, g, ps, k, "topk", sc.Seed)
		f.Rows = append(f.Rows, Row{
			X:    fmt.Sprintf("%d", k),
			Vals: []float64{ms(match.time), ms(nopt.time), ms(opt.time)},
		})
	}
	return f
}

// synthSweep runs one scalability sweep over |G| (Fig. 5g/h/l share it).
func synthSweep(sc Scale, cyclic bool, algos []string, lambda float64, series []string, id, title, notes string) *Figure {
	d := newDatasets(sc)
	f := &Figure{
		ID: id, Title: title, XLabel: "|G| scale", YLabel: "ms",
		Series: series, Notes: notes,
	}
	nodes, edges := 4, 6
	if cyclic {
		nodes, edges = 4, 8
	}
	for _, step := range sc.SynthSteps {
		n := int(float64(sc.SynthBase[0]) * step)
		m := int(float64(sc.SynthBase[1]) * step)
		g := d.get("synthetic", n, m)
		ps := d.patternsFor(g, nodes, edges, cyclic, false)
		var vals []float64
		for _, algo := range algos {
			switch algo {
			case "topkdiv", "topkdh":
				vals = append(vals, ms(runDiv(d, g, ps, sc.K, lambda, algo).time))
			default:
				vals = append(vals, ms(runTopK(d, g, ps, sc.K, algo, sc.Seed).time))
			}
		}
		f.Rows = append(f.Rows, Row{X: fmt.Sprintf("%.1fx", step), Vals: vals})
	}
	return f
}

// Fig5g: time vs |G|, synthetic, DAG patterns.
func Fig5g(sc Scale) *Figure {
	return synthSweep(sc, false,
		[]string{"match", "topknopt", "topk"}, 0,
		[]string{"Match(ms)", "TopKDAGnopt(ms)", "TopKDAG(ms)"},
		"fig5g", "time vs |G|, DAG patterns |Q|=(4,6) (synthetic)",
		"TopKDAG ≈ 38% of Match across the sweep; all scale roughly linearly")
}

// Fig5h: time vs |G|, synthetic, cyclic patterns.
func Fig5h(sc Scale) *Figure {
	return synthSweep(sc, true,
		[]string{"match", "topknopt", "topk"}, 0,
		[]string{"Match(ms)", "TopKnopt(ms)", "TopK(ms)"},
		"fig5h", "time vs |G|, cyclic patterns |Q|=(4,8) (synthetic)",
		"TopK ≈ 49% and nopt ≈ 56% of Match's cost across the sweep")
}

// Fig5i: diversification quality F vs |Q| on Amazon (TopKDiv vs TopKDH).
func Fig5i(sc Scale) *Figure {
	d := newDatasets(sc)
	g := d.amazon()
	f := &Figure{
		ID: "fig5i", Title: "F() vs |Q|, λ=0.5, k=10 (Amazon-like)",
		XLabel: "|Q|", YLabel: "F",
		Series: []string{"F[TopKDiv]", "F[TopKDH]"},
		Notes:  "F(Div) ≥ F(DH); DH stays ≥ ~77% of Div (its worst observed case)",
	}
	for _, size := range youtubeSizes {
		ps := d.patternsFor(g, size[0], size[1], true, false)
		div := runDiv(d, g, ps, sc.K, 0.5, "topkdiv")
		dh := runDiv(d, g, ps, sc.K, 0.5, "topkdh")
		f.Rows = append(f.Rows, Row{
			X:    fmt.Sprintf("(%d,%d)", size[0], size[1]),
			Vals: []float64{div.f, dh.f},
		})
	}
	return f
}

// Fig5j: diversified time vs |Q| on Citation (TopKDiv vs TopKDAGDH).
func Fig5j(sc Scale) *Figure {
	d := newDatasets(sc)
	g := d.citation()
	f := &Figure{
		ID: "fig5j", Title: "time vs |Q|, diversified, DAG patterns (Citation-like)",
		XLabel: "|Q|", YLabel: "ms",
		Series: []string{"TopKDiv(ms)", "TopKDAGDH(ms)"},
		Notes:  "TopKDAGDH ≈ 42% of TopKDiv; TopKDiv less sensitive to |Q|",
	}
	for _, size := range smallDAGSizes {
		ps := d.patternsFor(g, size[0], size[1], false, false)
		div := runDiv(d, g, ps, sc.K, 0.5, "topkdiv")
		dh := runDiv(d, g, ps, sc.K, 0.5, "topkdh")
		f.Rows = append(f.Rows, Row{
			X:    fmt.Sprintf("(%d,%d)", size[0], size[1]),
			Vals: []float64{ms(div.time), ms(dh.time)},
		})
	}
	return f
}

// Fig5k: diversified time vs |Q| on YouTube (TopKDiv vs TopKDH).
func Fig5k(sc Scale) *Figure {
	d := newDatasets(sc)
	g := d.youtube()
	f := &Figure{
		ID: "fig5k", Title: "time vs |Q|, diversified, cyclic patterns (YouTube-like)",
		XLabel: "|Q|", YLabel: "ms",
		Series: []string{"TopKDiv(ms)", "TopKDH(ms)"},
		Notes:  "consistent with fig5j: the early-termination heuristic wins",
	}
	for _, size := range youtubeSizes {
		ps := d.patternsFor(g, size[0], size[1], true, true)
		div := runDiv(d, g, ps, sc.K, 0.5, "topkdiv")
		dh := runDiv(d, g, ps, sc.K, 0.5, "topkdh")
		f.Rows = append(f.Rows, Row{
			X:    fmt.Sprintf("(%d,%d)", size[0], size[1]),
			Vals: []float64{ms(div.time), ms(dh.time)},
		})
	}
	return f
}

// Fig5l: diversified time vs |G| (synthetic).
func Fig5l(sc Scale) *Figure {
	return synthSweep(sc, true,
		[]string{"topkdiv", "topkdh"}, 0.5,
		[]string{"TopKDiv(ms)", "TopKDH(ms)"},
		"fig5l", "time vs |G|, diversified, cyclic |Q|=(4,8), λ=0.5 (synthetic)",
		"both scale with |G|; TopKDiv grows faster (it computes all of M(Q,G))")
}

// All runs every Fig. 5 experiment.
func All(sc Scale) []*Figure {
	return []*Figure{
		Fig5a(sc), Fig5b(sc), Fig5c(sc), Fig5d(sc), Fig5e(sc), Fig5f(sc),
		Fig5g(sc), Fig5h(sc), Fig5i(sc), Fig5j(sc), Fig5k(sc), Fig5l(sc),
	}
}

// Registry maps experiment IDs to runners for cmd/experiments.
var Registry = map[string]func(Scale) *Figure{
	"fig5a": Fig5a, "fig5b": Fig5b, "fig5c": Fig5c, "fig5d": Fig5d,
	"fig5e": Fig5e, "fig5f": Fig5f, "fig5g": Fig5g, "fig5h": Fig5h,
	"fig5i": Fig5i, "fig5j": Fig5j, "fig5k": Fig5k, "fig5l": Fig5l,
	"lambda": Lambda, "ablation-bounds": AblationBounds, "ablation-shape": AblationShape,
	"mr-scale": MRScale,
}
