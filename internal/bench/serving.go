package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ServingConfig drives the serving-layer load generator: a closed-loop
// HTTP client pool firing (diversified) top-k queries at a running divtopkd
// and measuring what the serving subsystem actually delivers — throughput,
// latency percentiles, and the cache hit rate that repeated traffic earns.
// The generator deliberately speaks plain HTTP/JSON rather than importing
// the server package, so it measures exactly what an external client sees.
type ServingConfig struct {
	// BaseURL is the daemon address, e.g. "http://127.0.0.1:8372".
	BaseURL string
	// Graph names the registered graph to query.
	Graph string
	// Patterns holds pattern texts; requests cycle through them, so
	// len(Patterns) is the number of distinct queries (and, with caching,
	// the number of evaluations the whole run should cost).
	Patterns []string
	// K and Lambda parameterize the queries; Diversified selects the
	// /v1/query/diversified endpoint.
	K           int
	Lambda      float64
	Diversified bool
	// Requests is the total request count, spread over Concurrency workers.
	Requests    int
	Concurrency int
	// TimeoutMS is forwarded as the per-request budget (0 = server default).
	TimeoutMS int64
	// UpdateEvery makes every Nth request a graph update (POST
	// /v1/graphs/{name}/updates) instead of a query: the mixed update/query
	// workload of a dynamic graph. Each update appends one node wired to
	// node 0 (addressed with the wire protocol's -1 self-reference, so no
	// client-side node counting is needed) and, every other time, deletes
	// an edge an earlier update added. Updates POST concurrently from every
	// worker — the server's group commit coalesces whatever overlaps into
	// one merged maintenance pass, and the per-response batch_width stat
	// reports how much coalescing the load actually earned. 0 disables
	// updates.
	UpdateEvery int
}

// ServingReport is the outcome of one load-generation run.
type ServingReport struct {
	Requests   int
	Errors     int
	Elapsed    time.Duration
	Throughput float64 // successful requests per second
	P50        time.Duration
	P95        time.Duration
	P99        time.Duration
	Max        time.Duration
	// Cache totals are read from /v1/graphs after the run; HitRate counts
	// hits and coalesced waiters against all served queries. Advanced counts
	// warm entries carried across commits by the cache-advance pass; Seeded
	// counts evaluations whose candidates were seeded from a containing
	// cached pattern.
	CacheHits      uint64
	CacheMisses    uint64
	CacheCoalesced uint64
	CacheAdvanced  uint64
	CacheSeeded    uint64
	HitRate        float64
	// PostCommitP50 is the median latency of the queries that establish a
	// pattern's entry at a new graph version — every query answering with a
	// non-plain-hit cache status ("miss", "seeded" or "advanced") issued
	// after at least one update had committed. Before the warm cache these
	// were all cold re-evaluations; with it they are mostly "advanced"
	// entries paid for at commit time, which is exactly the improvement this
	// column tracks. Zero when no such query was observed.
	PostCommitQueries int
	PostCommitP50     time.Duration
	// Update columns of the mixed workload (zero when UpdateEvery is 0):
	// update counts/latencies are tracked apart from queries — an update
	// pays a delta apply plus incremental bound-index maintenance, a
	// different regime than a cached query — and FinalVersion is the graph
	// version after the run (== Updates when every update succeeded).
	Updates      int
	UpdateErrors int
	UpdateP50    time.Duration
	UpdateP95    time.Duration
	FinalVersion uint64
	// Index-maintenance columns, aggregated from the per-update "index"
	// stats object every update response carries: how many updates stayed
	// on the incremental path versus falling back to a rebuild, and the
	// mean affected-row share across successful updates.
	IndexIncremental  int
	IndexRebuilds     int
	IndexShareMean    float64
	IndexWallP50Micro int64
	// Group-commit and frontier columns (PR 9): how wide the server's
	// coalesced batches ran (width 1 = the update committed alone), how many
	// updates shared a batch with at least one other request, the mean
	// per-node frontier size the diff produced, and the median wall time of
	// the shard-parallel maintenance pass alone.
	BatchWidthMean    float64
	BatchWidthMax     int
	UpdatesBatched    int
	FrontierRowsMean  float64
	ShardWallP50Micro int64
}

// String renders the report as the one-stop summary cmd/divtopkd prints.
func (r *ServingReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests: %d (%d errors) in %s\n", r.Requests, r.Errors, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "throughput: %.0f req/s\n", r.Throughput)
	fmt.Fprintf(&b, "latency: p50=%s p95=%s p99=%s max=%s\n",
		r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond))
	fmt.Fprintf(&b, "cache: %d hits, %d coalesced, %d misses (hit rate %.1f%%)",
		r.CacheHits, r.CacheCoalesced, r.CacheMisses, 100*r.HitRate)
	if r.CacheAdvanced > 0 || r.CacheSeeded > 0 {
		fmt.Fprintf(&b, "\nwarm cache: %d entries advanced across commits, %d seeded admissions", r.CacheAdvanced, r.CacheSeeded)
	}
	if r.PostCommitQueries > 0 {
		fmt.Fprintf(&b, "\npost-commit first queries: %d, p50=%s", r.PostCommitQueries, r.PostCommitP50.Round(time.Microsecond))
	}
	if r.Updates > 0 {
		fmt.Fprintf(&b, "\nupdates: %d (%d errors) p50=%s p95=%s, final version %d",
			r.Updates, r.UpdateErrors, r.UpdateP50.Round(time.Microsecond),
			r.UpdateP95.Round(time.Microsecond), r.FinalVersion)
		fmt.Fprintf(&b, "\nindex: %d incremental, %d rebuilds, mean affected share %.3f, maintenance p50=%dus",
			r.IndexIncremental, r.IndexRebuilds, r.IndexShareMean, r.IndexWallP50Micro)
		fmt.Fprintf(&b, "\ngroup commit: batch width mean %.2f max %d (%d updates batched), frontier mean %.1f rows, shard p50=%dus",
			r.BatchWidthMean, r.BatchWidthMax, r.UpdatesBatched, r.FrontierRowsMean, r.ShardWallP50Micro)
	}
	return b.String()
}

// servingRequest mirrors the daemon's query body (kept local: the load
// generator is an external client by design).
type servingRequest struct {
	Graph     string  `json:"graph"`
	Pattern   string  `json:"pattern"`
	K         int     `json:"k"`
	Lambda    float64 `json:"lambda,omitempty"`
	TimeoutMS int64   `json:"timeout_ms,omitempty"`
}

// updater issues the mixed workload's graph updates. Updates POST
// concurrently — the lock below guards only the delete pool and the stat
// accumulators, never an HTTP round trip — so overlapping requests reach
// the server together and its group commit can coalesce them. Appended
// nodes are addressed with the wire protocol's negative self-references
// (-1 names the request's own first appended node), and the authoritative
// ID each append landed on comes back in first_node, so no client-side
// node counting is needed even with many writers in flight.
type updater struct {
	endpoint string
	seq      atomic.Int64

	mu      sync.Mutex
	pending [][2]int // committed edges added by earlier updates, not yet deleted

	// Aggregated index-maintenance stats from the update responses.
	incremental     int
	rebuilds        int
	shareSum        float64
	frontierSum     float64
	widthSum        int
	widthMax        int
	batched         int
	wallMicros      []int64
	shardWallMicros []int64
}

// do issues one update: append a node wired to node 0 (edge {0,-1}) and,
// every other time, delete an edge an earlier acknowledged update added
// (deletes stay valid — they only ever name committed edges — and the edge
// set does not grow monotonically).
func (u *updater) do(client *http.Client) (time.Duration, bool) {
	seq := int(u.seq.Add(1)) - 1
	body := map[string]any{
		"add_nodes": []map[string]any{{"label": fmt.Sprintf("dyn%d", seq%4)}},
		"add_edges": [][2]int{{0, -1}},
	}
	var del *[2]int
	if seq%2 == 1 {
		u.mu.Lock()
		if len(u.pending) > 0 {
			e := u.pending[0]
			u.pending = u.pending[1:]
			del = &e
		}
		u.mu.Unlock()
	}
	if del != nil {
		body["del_edges"] = [][2]int{*del}
	}
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, false
	}
	t0 := time.Now()
	resp, err := client.Post(u.endpoint, "application/json", bytes.NewReader(raw))
	if err != nil {
		if del != nil {
			u.mu.Lock()
			u.pending = append(u.pending, *del)
			u.mu.Unlock()
		}
		return time.Since(t0), false
	}
	var out struct {
		Nodes     int  `json:"nodes"`
		FirstNode *int `json:"first_node"`
		Index     struct {
			Mode          string  `json:"mode"`
			BatchWidth    int     `json:"batch_width"`
			AffectedShare float64 `json:"affected_share"`
			FrontierRows  int     `json:"frontier_rows"`
			WallMicros    int64   `json:"wall_us"`
			ShardMicros   int64   `json:"shard_wall_us"`
		} `json:"index"`
	}
	ok := resp.StatusCode == http.StatusOK
	_ = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	lat := time.Since(t0)
	u.mu.Lock()
	defer u.mu.Unlock()
	if !ok {
		if del != nil {
			// The delete was rejected with the rest of the request; the edge
			// is still in the graph, so return it to the pool.
			u.pending = append(u.pending, *del)
		}
		return lat, false
	}
	if out.FirstNode != nil {
		u.pending = append(u.pending, [2]int{0, *out.FirstNode})
	}
	if out.Index.Mode == "rebuild" {
		u.rebuilds++
	} else {
		u.incremental++
	}
	u.shareSum += out.Index.AffectedShare
	u.frontierSum += float64(out.Index.FrontierRows)
	u.widthSum += out.Index.BatchWidth
	if out.Index.BatchWidth > u.widthMax {
		u.widthMax = out.Index.BatchWidth
	}
	if out.Index.BatchWidth > 1 {
		u.batched++
	}
	u.wallMicros = append(u.wallMicros, out.Index.WallMicros)
	u.shardWallMicros = append(u.shardWallMicros, out.Index.ShardMicros)
	return lat, true
}

// ServeLoad runs the load generator and collects the report. A non-2xx
// response counts as an error; the run itself only fails on transport or
// configuration problems.
func ServeLoad(cfg ServingConfig) (*ServingReport, error) {
	if cfg.BaseURL == "" || cfg.Graph == "" || len(cfg.Patterns) == 0 {
		return nil, fmt.Errorf("bench: serving config needs BaseURL, Graph and Patterns")
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 1000
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.K <= 0 {
		cfg.K = 10
	}
	endpoint := cfg.BaseURL + "/v1/query"
	if cfg.Diversified {
		endpoint = cfg.BaseURL + "/v1/query/diversified"
	}

	// Pre-encode one body per distinct pattern; workers cycle through them.
	bodies := make([][]byte, len(cfg.Patterns))
	for i, p := range cfg.Patterns {
		raw, err := json.Marshal(servingRequest{
			Graph: cfg.Graph, Pattern: p, K: cfg.K, Lambda: cfg.Lambda, TimeoutMS: cfg.TimeoutMS,
		})
		if err != nil {
			return nil, err
		}
		bodies[i] = raw
	}

	before, err := fetchGraphState(cfg.BaseURL, cfg.Graph)
	if err != nil {
		return nil, err
	}
	var upd *updater
	if cfg.UpdateEvery > 0 {
		upd = &updater{
			endpoint: cfg.BaseURL + "/v1/graphs/" + cfg.Graph + "/updates",
		}
	}

	// Size the connection pool to the worker count: the default transport
	// keeps only 2 idle connections per host, which would make most
	// requests pay a fresh TCP dial and skew the very latencies this
	// generator exists to measure.
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.Concurrency,
		MaxIdleConnsPerHost: cfg.Concurrency,
	}}
	latencies := make([]time.Duration, cfg.Requests)
	errs := make([]bool, cfg.Requests)
	isUpdate := make([]bool, cfg.Requests)
	statuses := make([]string, cfg.Requests)
	postCommit := make([]bool, cfg.Requests)
	// committed flips once the first update has been acknowledged: queries
	// issued after that point are "post-commit" for the PostCommitP50 column.
	var committed atomic.Bool
	var wg sync.WaitGroup
	start := time.Now()
	per := (cfg.Requests + cfg.Concurrency - 1) / cfg.Concurrency
	for w := 0; w < cfg.Concurrency; w++ {
		lo, hi := w*per, min((w+1)*per, cfg.Requests)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if upd != nil && (i+1)%cfg.UpdateEvery == 0 {
					isUpdate[i] = true
					lat, ok := upd.do(client)
					latencies[i] = lat
					errs[i] = !ok
					if ok {
						committed.Store(true)
					}
					continue
				}
				postCommit[i] = committed.Load()
				t0 := time.Now()
				resp, err := client.Post(endpoint, "application/json", bytes.NewReader(bodies[i%len(bodies)]))
				if err != nil {
					latencies[i] = time.Since(t0)
					errs[i] = true
					continue
				}
				if resp.StatusCode != http.StatusOK {
					errs[i] = true
				}
				// Drain before stopping the clock: latency covers the full
				// body transfer (what an external client experiences), and
				// the drained connection is reused.
				var sink bytes.Buffer
				_, _ = sink.ReadFrom(resp.Body)
				resp.Body.Close()
				latencies[i] = time.Since(t0)
				statuses[i] = cacheStatusOf(sink.Bytes())
			}
		}(lo, hi)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := fetchGraphState(cfg.BaseURL, cfg.Graph)
	if err != nil {
		return nil, err
	}

	rep := &ServingReport{Elapsed: elapsed, FinalVersion: after.Version}
	// Percentiles cover successful requests only — a refused connection
	// returns in microseconds and would drag the distribution toward zero
	// right when the server is at its worst — and updates are aggregated
	// apart from queries: the two regimes (cached read vs delta apply +
	// index warm) would blur each other's distribution.
	okLat := make([]time.Duration, 0, len(latencies))
	updLat := make([]time.Duration, 0, 8)
	pcLat := make([]time.Duration, 0, 8)
	for i, e := range errs {
		switch {
		case isUpdate[i]:
			rep.Updates++
			if e {
				rep.UpdateErrors++
			} else {
				updLat = append(updLat, latencies[i])
			}
		case e:
			rep.Errors++
		default:
			okLat = append(okLat, latencies[i])
			// A post-commit query whose answer was not a plain cache hit is
			// the moment a pattern's entry reaches the new version: a cold
			// re-evaluation ("miss"/"seeded") or a commit-time-advanced
			// entry ("advanced").
			if postCommit[i] {
				switch statuses[i] {
				case "miss", "seeded", "advanced":
					pcLat = append(pcLat, latencies[i])
				}
			}
		}
	}
	rep.Requests = cfg.Requests - rep.Updates
	ok := rep.Requests - rep.Errors
	if elapsed > 0 {
		rep.Throughput = float64(ok) / elapsed.Seconds()
	}
	pctOf := func(lat []time.Duration, p float64) time.Duration {
		if len(lat) == 0 {
			return 0
		}
		return lat[int(p*float64(len(lat)-1))]
	}
	sort.Slice(okLat, func(i, j int) bool { return okLat[i] < okLat[j] })
	rep.P50, rep.P95, rep.P99 = pctOf(okLat, 0.50), pctOf(okLat, 0.95), pctOf(okLat, 0.99)
	if len(okLat) > 0 {
		rep.Max = okLat[len(okLat)-1]
	}
	sort.Slice(updLat, func(i, j int) bool { return updLat[i] < updLat[j] })
	rep.UpdateP50, rep.UpdateP95 = pctOf(updLat, 0.50), pctOf(updLat, 0.95)
	sort.Slice(pcLat, func(i, j int) bool { return pcLat[i] < pcLat[j] })
	rep.PostCommitQueries = len(pcLat)
	rep.PostCommitP50 = pctOf(pcLat, 0.50)
	if upd != nil {
		rep.IndexIncremental = upd.incremental
		rep.IndexRebuilds = upd.rebuilds
		if n := upd.incremental + upd.rebuilds; n > 0 {
			rep.IndexShareMean = upd.shareSum / float64(n)
			rep.FrontierRowsMean = upd.frontierSum / float64(n)
			rep.BatchWidthMean = float64(upd.widthSum) / float64(n)
		}
		rep.BatchWidthMax = upd.widthMax
		rep.UpdatesBatched = upd.batched
		sort.Slice(upd.wallMicros, func(i, j int) bool { return upd.wallMicros[i] < upd.wallMicros[j] })
		if len(upd.wallMicros) > 0 {
			rep.IndexWallP50Micro = upd.wallMicros[int(0.50*float64(len(upd.wallMicros)-1))]
		}
		sort.Slice(upd.shardWallMicros, func(i, j int) bool { return upd.shardWallMicros[i] < upd.shardWallMicros[j] })
		if len(upd.shardWallMicros) > 0 {
			rep.ShardWallP50Micro = upd.shardWallMicros[int(0.50*float64(len(upd.shardWallMicros)-1))]
		}
	}
	rep.CacheHits = after.Cache.Hits - before.Cache.Hits
	rep.CacheMisses = after.Cache.Misses - before.Cache.Misses
	rep.CacheCoalesced = after.Cache.Coalesced - before.Cache.Coalesced
	rep.CacheAdvanced = after.Cache.Advanced - before.Cache.Advanced
	rep.CacheSeeded = after.Cache.Seeded - before.Cache.Seeded
	if total := rep.CacheHits + rep.CacheMisses + rep.CacheCoalesced; total > 0 {
		rep.HitRate = float64(rep.CacheHits+rep.CacheCoalesced) / float64(total)
	}
	return rep, nil
}

// cacheStatusOf extracts the "cache" provenance field from a query response
// body without a full JSON decode — the scan runs off the latency clock, and
// the field's compact-JSON shape is fixed by the server's encoder.
func cacheStatusOf(body []byte) string {
	const marker = `"cache":"`
	i := bytes.Index(body, []byte(marker))
	if i < 0 {
		return ""
	}
	rest := body[i+len(marker):]
	j := bytes.IndexByte(rest, '"')
	if j < 0 {
		return ""
	}
	return string(rest[:j])
}

// cacheTotals is the cache slice of /v1/graphs the generator reads.
type cacheTotals struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"`
	Advanced  uint64 `json:"advanced"`
	Seeded    uint64 `json:"seeded"`
}

// graphState is the per-graph slice of /v1/graphs the generator reads:
// cache counters, plus the node count and version the mixed update workload
// anchors on.
type graphState struct {
	Name    string      `json:"name"`
	Version uint64      `json:"version"`
	Nodes   int         `json:"nodes"`
	Cache   cacheTotals `json:"cache"`
}

// fetchGraphState reads the named graph's state off /v1/graphs.
func fetchGraphState(baseURL, graph string) (graphState, error) {
	resp, err := http.Get(baseURL + "/v1/graphs")
	if err != nil {
		return graphState{}, fmt.Errorf("bench: reading graph state: %w", err)
	}
	defer resp.Body.Close()
	var body struct {
		Graphs []graphState `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return graphState{}, fmt.Errorf("bench: decoding /v1/graphs: %w", err)
	}
	for _, g := range body.Graphs {
		if g.Name == graph {
			return g, nil
		}
	}
	return graphState{}, fmt.Errorf("bench: graph %q not registered on the server", graph)
}
