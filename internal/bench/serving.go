package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// ServingConfig drives the serving-layer load generator: a closed-loop
// HTTP client pool firing (diversified) top-k queries at a running divtopkd
// and measuring what the serving subsystem actually delivers — throughput,
// latency percentiles, and the cache hit rate that repeated traffic earns.
// The generator deliberately speaks plain HTTP/JSON rather than importing
// the server package, so it measures exactly what an external client sees.
type ServingConfig struct {
	// BaseURL is the daemon address, e.g. "http://127.0.0.1:8372".
	BaseURL string
	// Graph names the registered graph to query.
	Graph string
	// Patterns holds pattern texts; requests cycle through them, so
	// len(Patterns) is the number of distinct queries (and, with caching,
	// the number of evaluations the whole run should cost).
	Patterns []string
	// K and Lambda parameterize the queries; Diversified selects the
	// /v1/query/diversified endpoint.
	K           int
	Lambda      float64
	Diversified bool
	// Requests is the total request count, spread over Concurrency workers.
	Requests    int
	Concurrency int
	// TimeoutMS is forwarded as the per-request budget (0 = server default).
	TimeoutMS int64
}

// ServingReport is the outcome of one load-generation run.
type ServingReport struct {
	Requests   int
	Errors     int
	Elapsed    time.Duration
	Throughput float64 // successful requests per second
	P50        time.Duration
	P95        time.Duration
	P99        time.Duration
	Max        time.Duration
	// Cache totals are read from /v1/graphs after the run; HitRate counts
	// hits and coalesced waiters against all served queries.
	CacheHits      uint64
	CacheMisses    uint64
	CacheCoalesced uint64
	HitRate        float64
}

// String renders the report as the one-stop summary cmd/divtopkd prints.
func (r *ServingReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests: %d (%d errors) in %s\n", r.Requests, r.Errors, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "throughput: %.0f req/s\n", r.Throughput)
	fmt.Fprintf(&b, "latency: p50=%s p95=%s p99=%s max=%s\n",
		r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond))
	fmt.Fprintf(&b, "cache: %d hits, %d coalesced, %d misses (hit rate %.1f%%)",
		r.CacheHits, r.CacheCoalesced, r.CacheMisses, 100*r.HitRate)
	return b.String()
}

// servingRequest mirrors the daemon's query body (kept local: the load
// generator is an external client by design).
type servingRequest struct {
	Graph     string  `json:"graph"`
	Pattern   string  `json:"pattern"`
	K         int     `json:"k"`
	Lambda    float64 `json:"lambda,omitempty"`
	TimeoutMS int64   `json:"timeout_ms,omitempty"`
}

// ServeLoad runs the load generator and collects the report. A non-2xx
// response counts as an error; the run itself only fails on transport or
// configuration problems.
func ServeLoad(cfg ServingConfig) (*ServingReport, error) {
	if cfg.BaseURL == "" || cfg.Graph == "" || len(cfg.Patterns) == 0 {
		return nil, fmt.Errorf("bench: serving config needs BaseURL, Graph and Patterns")
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 1000
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.K <= 0 {
		cfg.K = 10
	}
	endpoint := cfg.BaseURL + "/v1/query"
	if cfg.Diversified {
		endpoint = cfg.BaseURL + "/v1/query/diversified"
	}

	// Pre-encode one body per distinct pattern; workers cycle through them.
	bodies := make([][]byte, len(cfg.Patterns))
	for i, p := range cfg.Patterns {
		raw, err := json.Marshal(servingRequest{
			Graph: cfg.Graph, Pattern: p, K: cfg.K, Lambda: cfg.Lambda, TimeoutMS: cfg.TimeoutMS,
		})
		if err != nil {
			return nil, err
		}
		bodies[i] = raw
	}

	before, err := fetchCacheTotals(cfg.BaseURL, cfg.Graph)
	if err != nil {
		return nil, err
	}

	// Size the connection pool to the worker count: the default transport
	// keeps only 2 idle connections per host, which would make most
	// requests pay a fresh TCP dial and skew the very latencies this
	// generator exists to measure.
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.Concurrency,
		MaxIdleConnsPerHost: cfg.Concurrency,
	}}
	latencies := make([]time.Duration, cfg.Requests)
	errs := make([]bool, cfg.Requests)
	var wg sync.WaitGroup
	start := time.Now()
	per := (cfg.Requests + cfg.Concurrency - 1) / cfg.Concurrency
	for w := 0; w < cfg.Concurrency; w++ {
		lo, hi := w*per, min((w+1)*per, cfg.Requests)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				t0 := time.Now()
				resp, err := client.Post(endpoint, "application/json", bytes.NewReader(bodies[i%len(bodies)]))
				if err != nil {
					latencies[i] = time.Since(t0)
					errs[i] = true
					continue
				}
				if resp.StatusCode != http.StatusOK {
					errs[i] = true
				}
				// Drain before stopping the clock: latency covers the full
				// body transfer (what an external client experiences), and
				// the drained connection is reused.
				var sink bytes.Buffer
				_, _ = sink.ReadFrom(resp.Body)
				resp.Body.Close()
				latencies[i] = time.Since(t0)
			}
		}(lo, hi)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := fetchCacheTotals(cfg.BaseURL, cfg.Graph)
	if err != nil {
		return nil, err
	}

	rep := &ServingReport{Requests: cfg.Requests, Elapsed: elapsed}
	// Percentiles cover successful requests only: a refused connection
	// returns in microseconds and would drag the distribution toward zero
	// right when the server is at its worst.
	okLat := make([]time.Duration, 0, len(latencies))
	for i, e := range errs {
		if e {
			rep.Errors++
		} else {
			okLat = append(okLat, latencies[i])
		}
	}
	ok := cfg.Requests - rep.Errors
	if elapsed > 0 {
		rep.Throughput = float64(ok) / elapsed.Seconds()
	}
	sort.Slice(okLat, func(i, j int) bool { return okLat[i] < okLat[j] })
	pct := func(p float64) time.Duration {
		if len(okLat) == 0 {
			return 0
		}
		idx := int(p * float64(len(okLat)-1))
		return okLat[idx]
	}
	rep.P50, rep.P95, rep.P99 = pct(0.50), pct(0.95), pct(0.99)
	if len(okLat) > 0 {
		rep.Max = okLat[len(okLat)-1]
	}
	rep.CacheHits = after.Hits - before.Hits
	rep.CacheMisses = after.Misses - before.Misses
	rep.CacheCoalesced = after.Coalesced - before.Coalesced
	if total := rep.CacheHits + rep.CacheMisses + rep.CacheCoalesced; total > 0 {
		rep.HitRate = float64(rep.CacheHits+rep.CacheCoalesced) / float64(total)
	}
	return rep, nil
}

// cacheTotals is the slice of /v1/graphs the generator reads.
type cacheTotals struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"`
}

// fetchCacheTotals reads the named graph's cache counters off /v1/graphs.
func fetchCacheTotals(baseURL, graph string) (cacheTotals, error) {
	resp, err := http.Get(baseURL + "/v1/graphs")
	if err != nil {
		return cacheTotals{}, fmt.Errorf("bench: reading cache stats: %w", err)
	}
	defer resp.Body.Close()
	var body struct {
		Graphs []struct {
			Name  string      `json:"name"`
			Cache cacheTotals `json:"cache"`
		} `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return cacheTotals{}, fmt.Errorf("bench: decoding /v1/graphs: %w", err)
	}
	for _, g := range body.Graphs {
		if g.Name == graph {
			return g.Cache, nil
		}
	}
	return cacheTotals{}, fmt.Errorf("bench: graph %q not registered on the server", graph)
}
