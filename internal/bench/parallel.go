package bench

import (
	"fmt"
	"runtime"
	"time"

	"divtopk/internal/core"
	"divtopk/internal/diversify"
	"divtopk/internal/gen"
	"divtopk/internal/simulation"
)

// parallelWorkerSteps lists the worker counts of the scaling sweep: powers
// of two up to the machine, always including 1 (the sequential baseline).
func parallelWorkerSteps() []int {
	steps := []int{1}
	for w := 2; w <= runtime.NumCPU(); w *= 2 {
		steps = append(steps, w)
	}
	return steps
}

// ParallelScaling measures the two intra-query parallel sections against
// their sequential baselines across worker counts: candidate computation
// (BuildCandidatesParallel) and the diversified 2-approximation TopKDiv
// (whose greedy pair scan fans out by row). Series report milliseconds plus
// the speedup over one worker; results are identical across rows by
// construction, which the harness asserts.
func ParallelScaling(sc Scale) *Figure {
	d := newDatasets(sc)
	g := d.youtube()
	p, err := gen.Generate(g, gen.PatternConfig{
		Nodes: 4, Edges: 8, Cyclic: true, Predicates: true, Seed: sc.Seed,
	})
	if err != nil {
		panic(err)
	}

	fig := &Figure{
		ID:     "parallel",
		Title:  "sequential vs parallel execution (candidates, TopKDiv)",
		XLabel: "workers",
		YLabel: "time",
		Series: []string{"cand(ms)", "cand speedup", "TopKDiv(ms)", "TopKDiv speedup"},
		Notes:  "identical results at every worker count; speedup should grow with cores until the sections' serial fraction dominates",
	}

	refPairs := -1
	var refF float64
	var candBase, divBase float64
	for _, w := range parallelWorkerSteps() {
		t0 := time.Now()
		var pairs int
		for i := 0; i < sc.Queries; i++ {
			pairs = simulation.BuildCandidatesParallel(g, p, w).NumPairs()
		}
		candMS := float64(time.Since(t0).Microseconds()) / 1000 / float64(sc.Queries)

		t0 = time.Now()
		res, err := diversify.TopKDivOpts(g, p, sc.K, 0.5, core.Options{Parallelism: w})
		if err != nil {
			panic(err)
		}
		divMS := float64(time.Since(t0).Microseconds()) / 1000

		if refPairs == -1 {
			refPairs, refF = pairs, res.F
			candBase, divBase = candMS, divMS
		} else if pairs != refPairs || res.F != refF {
			panic(fmt.Sprintf("bench: parallel run diverged at %d workers: pairs %d vs %d, F %v vs %v",
				w, pairs, refPairs, res.F, refF))
		}
		fig.Rows = append(fig.Rows, Row{
			X:    fmt.Sprintf("%d", w),
			Vals: []float64{candMS, candBase / candMS, divMS, divBase / divMS},
		})
	}
	return fig
}
