package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"testing"

	"divtopk/internal/core"
	"divtopk/internal/diversify"
	"divtopk/internal/gen"
	"divtopk/internal/graph"
	"divtopk/internal/pattern"
	"divtopk/internal/simulation"
)

// This file is the tracked benchmark baseline of the repository
// (BENCH_PR10.json): a repeatable, fixed-seed measurement of every hot
// component — candidate computation, simulation refinement, relevant-set
// computation, the find-all baseline, the early-termination engine, TopKDiv,
// the two delta-maintenance layers (simulation state and the bound index),
// the warm-cache entry advance and serving throughput — with the frozen
// pre-CSR reference kernel (core.KernelReference) measured side by side as
// the "before" column.
// cmd/divtopk-bench runs it and emits the JSON; future PRs are judged
// against the committed numbers.

// BaselineConfig fixes one benchmark run. Non-positive sizes are completed
// from DefaultBaselineConfig (Seed and Lambda are taken as given: seed 0 and
// λ=0 — pure relevance — are legitimate settings; a negative Lambda selects
// the default). All sizes and seeds are explicit in the emitted report, so a
// run is reproducible bit-for-bit on the same hardware class.
type BaselineConfig struct {
	// Nodes/Edges/Labels/Seed parameterize the synthetic generator graph
	// (the paper's linkage model, internal/gen).
	Nodes  int   `json:"nodes"`
	Edges  int   `json:"edges"`
	Labels int   `json:"labels"`
	Seed   int64 `json:"seed"`
	// PatternNodes/PatternEdges/Queries shape the mined query workload;
	// every measured op evaluates all Queries patterns.
	PatternNodes int `json:"pattern_nodes"`
	PatternEdges int `json:"pattern_edges"`
	Queries      int `json:"queries"`
	// K and Lambda parameterize top-k and diversification.
	K      int     `json:"k"`
	Lambda float64 `json:"lambda"`
	// Parallelism is the engine worker bound used by every measurement
	// (default 1: the kernel A/B compares algorithms, not goroutine counts).
	Parallelism int `json:"parallelism"`
	// Deltas sizes the dynamic-graph measurement: a chain of this many
	// random small deltas is walked by IncCompute (incremental maintenance)
	// and by from-scratch recomputation, side by side.
	Deltas int `json:"deltas"`
	// Serving enables the in-process serving-throughput measurement.
	Serving            bool `json:"serving"`
	ServingRequests    int  `json:"serving_requests"`
	ServingConcurrency int  `json:"serving_concurrency"`
	// ServingUpdateEvery makes every Nth serving request a graph update
	// (the mixed update/query workload); 0 keeps the workload read-only.
	ServingUpdateEvery int `json:"serving_update_every"`
}

// DefaultBaselineConfig is the tracked configuration: the 150k-node
// generator graph the acceptance numbers are measured on.
func DefaultBaselineConfig() BaselineConfig {
	return BaselineConfig{
		Nodes:              150_000,
		Edges:              1_050_000,
		Labels:             24,
		Seed:               1,
		PatternNodes:       4,
		PatternEdges:       6,
		Queries:            3,
		K:                  10,
		Lambda:             0.5,
		Parallelism:        1,
		Deltas:             16,
		Serving:            true,
		ServingRequests:    4000,
		ServingConcurrency: 16,
		ServingUpdateEvery: 20,
	}
}

// ShortBaselineConfig is the CI-sized configuration (seconds, not minutes).
func ShortBaselineConfig() BaselineConfig {
	cfg := DefaultBaselineConfig()
	cfg.Nodes = 12_000
	cfg.Edges = 84_000
	cfg.ServingRequests = 800
	return cfg
}

func (c BaselineConfig) withDefaults() BaselineConfig {
	d := DefaultBaselineConfig()
	if c.Nodes <= 0 {
		c.Nodes = d.Nodes
	}
	if c.Edges <= 0 {
		c.Edges = d.Edges
	}
	if c.Labels <= 0 {
		c.Labels = d.Labels
	}
	if c.PatternNodes <= 0 {
		c.PatternNodes = d.PatternNodes
	}
	if c.PatternEdges <= 0 {
		c.PatternEdges = d.PatternEdges
	}
	if c.Queries <= 0 {
		c.Queries = d.Queries
	}
	if c.K <= 0 {
		c.K = d.K
	}
	if c.Lambda < 0 {
		c.Lambda = d.Lambda
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 1
	}
	if c.Deltas <= 0 {
		c.Deltas = d.Deltas
	}
	if c.ServingRequests <= 0 {
		c.ServingRequests = d.ServingRequests
	}
	if c.ServingConcurrency <= 0 {
		c.ServingConcurrency = d.ServingConcurrency
	}
	return c
}

// BaselineEntry is one measured component.
type BaselineEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	MsPerOp     float64 `json:"ms_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// ServingSummary is the serving-throughput slice of the report. The update
// fields track the mixed update/query workload (zero in a read-only run);
// the index_* fields aggregate the per-update index-maintenance stats the
// update responses carry (incremental vs. rebuild split, mean affected-row
// share from the per-node frontier diff, median maintenance wall time);
// the batch_* fields report how wide the server's group commit ran —
// updates POST concurrently and whatever overlaps commits as one merged
// maintenance pass, so width > 1 means the batching actually amortized
// work under this load.
type ServingSummary struct {
	Throughput       float64 `json:"req_per_sec"`
	P50Micros        int64   `json:"p50_us"`
	P99Micros        int64   `json:"p99_us"`
	HitRate          float64 `json:"cache_hit_rate"`
	Requests         int     `json:"requests"`
	Errors           int     `json:"errors"`
	Updates          int     `json:"updates,omitempty"`
	UpdateErrors     int     `json:"update_errors,omitempty"`
	UpdateP50Micros  int64   `json:"update_p50_us,omitempty"`
	UpdateP95Micros  int64   `json:"update_p95_us,omitempty"`
	FinalVersion     uint64  `json:"final_version,omitempty"`
	IndexIncremental int     `json:"index_incremental,omitempty"`
	IndexRebuilds    int     `json:"index_rebuilds,omitempty"`
	// IndexShareMean stays in the JSON even at 0 — a zero share (the
	// frontier diff proving no warmed row needed recomputation) is the
	// headline result, not an absent measurement.
	IndexShareMean   float64 `json:"index_affected_share_mean"`
	IndexWallP50     int64   `json:"index_wall_p50_us,omitempty"`
	BatchWidthMean   float64 `json:"update_batch_width_mean,omitempty"`
	BatchWidthMax    int     `json:"update_batch_width_max,omitempty"`
	UpdatesBatched   int     `json:"updates_batched,omitempty"`
	FrontierRowsMean float64 `json:"index_frontier_rows_mean,omitempty"`
	ShardWallP50     int64   `json:"index_shard_wall_p50_us,omitempty"`
	// Warm-cache columns (PR 10): how many cached entries the commit-time
	// advance pass carried to the new version, how many admissions were
	// seeded from a containing cached pattern, and the median latency of the
	// post-commit queries that bring a pattern's entry to the new version
	// (before the warm cache these were all cold re-evaluations).
	CacheAdvanced   uint64  `json:"cache_advanced_total,omitempty"`
	CacheSeeded     uint64  `json:"cache_seeded_total,omitempty"`
	PostCommitP50Ms float64 `json:"post_commit_p50_ms,omitempty"`
}

// BaselineReport is the JSON document committed as BENCH_PR10.json.
type BaselineReport struct {
	GeneratedBy string         `json:"generated_by"`
	GoVersion   string         `json:"go_version"`
	GOOS        string         `json:"goos"`
	GOARCH      string         `json:"goarch"`
	NumCPU      int            `json:"num_cpu"`
	Config      BaselineConfig `json:"config"`
	// MatchesPerQuery records |Mu(Q,G,uo)| of each mined pattern, so the
	// workload's difficulty is visible next to the timings.
	MatchesPerQuery []int           `json:"matches_per_query"`
	Entries         []BaselineEntry `json:"entries"`
	// Speedups maps component → reference-ns / csr-ns (>1 means the CSR
	// kernel is faster).
	Speedups map[string]float64 `json:"speedups"`
	// Serving is the read-only serving measurement (comparable across
	// epochs); ServingMixed repeats it with every ServingUpdateEvery-th
	// request applying a graph delta. An update moves the snapshot version,
	// so its query numbers measure the commit-heavy regime: before PR 10
	// every commit orphaned the whole result cache (each hot pattern paid a
	// cold re-evaluation per version), while the warm cache now advances hot
	// entries at commit time — the cache_advanced_total and post_commit_p50_ms
	// columns track exactly that difference. ServingMixed4 repeats the mixed
	// workload with GOMAXPROCS=4, separating the algorithmic win from
	// single-core scheduler contention between the in-process daemon and the
	// load generator.
	Serving       *ServingSummary `json:"serving,omitempty"`
	ServingMixed  *ServingSummary `json:"serving_mixed,omitempty"`
	ServingMixed4 *ServingSummary `json:"serving_mixed_gomaxprocs4,omitempty"`
}

// Format renders the report as an aligned text table with the speedup rows.
func (r *BaselineReport) Format() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "== tracked baseline: %d nodes, %d edges, %d labels, seed %d, %d queries, parallelism %d ==\n",
		r.Config.Nodes, r.Config.Edges, r.Config.Labels, r.Config.Seed, r.Config.Queries, r.Config.Parallelism)
	fmt.Fprintf(&b, "%-24s %14s %14s %12s\n", "component", "ms/op", "allocs/op", "MB/op")
	for _, e := range r.Entries {
		fmt.Fprintf(&b, "%-24s %14.2f %14d %12.2f\n", e.Name, e.MsPerOp, e.AllocsPerOp, float64(e.BytesPerOp)/(1<<20))
	}
	keys := make([]string, 0, len(r.Speedups))
	for k := range r.Speedups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "speedup %-16s %14.2fx\n", k, r.Speedups[k])
	}
	if r.Serving != nil {
		fmt.Fprintf(&b, "serving (read-only): %.0f req/s (p50 %dus, p99 %dus, hit rate %.1f%%)\n",
			r.Serving.Throughput, r.Serving.P50Micros, r.Serving.P99Micros, 100*r.Serving.HitRate)
	}
	if r.ServingMixed != nil {
		fmt.Fprintf(&b, "serving (mixed):     %.0f req/s (p50 %dus, p99 %dus, hit rate %.1f%%)\n",
			r.ServingMixed.Throughput, r.ServingMixed.P50Micros, r.ServingMixed.P99Micros, 100*r.ServingMixed.HitRate)
		fmt.Fprintf(&b, "  updates: %d (%d errors, p50 %dus, p95 %dus, final version %d)\n",
			r.ServingMixed.Updates, r.ServingMixed.UpdateErrors, r.ServingMixed.UpdateP50Micros,
			r.ServingMixed.UpdateP95Micros, r.ServingMixed.FinalVersion)
		fmt.Fprintf(&b, "  index: %d incremental / %d rebuilds, mean affected share %.3f, maintenance p50 %dus\n",
			r.ServingMixed.IndexIncremental, r.ServingMixed.IndexRebuilds,
			r.ServingMixed.IndexShareMean, r.ServingMixed.IndexWallP50)
		fmt.Fprintf(&b, "  group commit: batch width mean %.2f max %d (%d updates batched), frontier mean %.1f rows, shard p50 %dus\n",
			r.ServingMixed.BatchWidthMean, r.ServingMixed.BatchWidthMax,
			r.ServingMixed.UpdatesBatched, r.ServingMixed.FrontierRowsMean,
			r.ServingMixed.ShardWallP50)
		fmt.Fprintf(&b, "  warm cache: %d advanced, %d seeded, post-commit p50 %.2fms\n",
			r.ServingMixed.CacheAdvanced, r.ServingMixed.CacheSeeded,
			r.ServingMixed.PostCommitP50Ms)
	}
	if r.ServingMixed4 != nil {
		fmt.Fprintf(&b, "serving (mixed, GOMAXPROCS=4): %.0f req/s (p50 %dus, p99 %dus, hit rate %.1f%%, post-commit p50 %.2fms)\n",
			r.ServingMixed4.Throughput, r.ServingMixed4.P50Micros,
			r.ServingMixed4.P99Micros, 100*r.ServingMixed4.HitRate,
			r.ServingMixed4.PostCommitP50Ms)
	}
	return b.String()
}

// WriteJSON emits the report with stable indentation.
func (r *BaselineReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// measureReps is the number of independent harness runs per entry; the
// fastest run is recorded. Minimum-of-N is the standard defense against
// scheduler and GC-pacing noise on shared machines: the minimum is the run
// least disturbed by the environment.
const measureReps = 5

// measure runs fn under the testing benchmark harness measureReps times and
// records the fastest run.
func (r *BaselineReport) measure(name string, fn func()) BaselineEntry {
	var best testing.BenchmarkResult
	for rep := 0; rep < measureReps; rep++ {
		runtime.GC()
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fn()
			}
		})
		if rep == 0 || res.NsPerOp() < best.NsPerOp() {
			best = res
		}
	}
	e := BaselineEntry{
		Name:        name,
		NsPerOp:     float64(best.NsPerOp()),
		MsPerOp:     float64(best.NsPerOp()) / 1e6,
		AllocsPerOp: best.AllocsPerOp(),
		BytesPerOp:  best.AllocedBytesPerOp(),
		Iterations:  best.N,
	}
	r.Entries = append(r.Entries, e)
	return e
}

// RunBaseline executes the full measurement suite and returns the report.
// Progress lines go to progress (pass nil for silence).
func RunBaseline(cfg BaselineConfig, progress io.Writer) (*BaselineReport, error) {
	cfg = cfg.withDefaults()
	logf := func(format string, args ...any) {
		if progress != nil {
			fmt.Fprintf(progress, format+"\n", args...)
		}
	}
	rep := &BaselineReport{
		GeneratedBy: "cmd/divtopk-bench",
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Config:      cfg,
		Speedups:    map[string]float64{},
	}

	logf("generating graph: %d nodes, %d edges, %d labels, seed %d", cfg.Nodes, cfg.Edges, cfg.Labels, cfg.Seed)
	g := gen.Synthetic(gen.SynthConfig{N: cfg.Nodes, M: cfg.Edges, Labels: cfg.Labels, Seed: cfg.Seed})

	logf("mining %d patterns (|Vp|=%d, |Ep|=%d)", cfg.Queries, cfg.PatternNodes, cfg.PatternEdges)
	patterns, err := gen.Suite(g, gen.PatternConfig{
		Nodes: cfg.PatternNodes, Edges: cfg.PatternEdges, Seed: cfg.Seed,
	}, cfg.Queries)
	if err != nil {
		return nil, fmt.Errorf("bench: mining patterns: %w", err)
	}
	for _, p := range patterns {
		rep.MatchesPerQuery = append(rep.MatchesPerQuery, len(muSize(g, p)))
	}
	logf("matches per query: %v", rep.MatchesPerQuery)

	opts := core.Options{Parallelism: cfg.Parallelism}
	refOpts := opts
	refOpts.Kernel = core.KernelReference

	// Shared prebuilt state for the component-level measurements (the
	// end-to-end findall/topkdiv entries rebuild everything per op).
	type prebuilt struct {
		p     *pattern.Pattern
		ci    *simulation.CandidateIndex
		prod  *simulation.Product
		an    *pattern.Analysis
		space *simulation.RelSpace
		inSim []bool
	}
	pre := make([]prebuilt, len(patterns))
	for i, p := range patterns {
		ci := simulation.BuildCandidatesParallel(g, p, cfg.Parallelism)
		prod := simulation.BuildProduct(g, p, ci, cfg.Parallelism)
		an := pattern.Analyze(p)
		pre[i] = prebuilt{
			p: p, ci: ci, prod: prod, an: an,
			space: simulation.BuildRelSpace(g, p, ci, an),
			inSim: simulation.ComputeWithProduct(prod).InSim,
		}
	}

	logf("measuring candidates")
	rep.measure("candidates", func() {
		for _, p := range patterns {
			simulation.BuildCandidatesParallel(g, p, cfg.Parallelism)
		}
	})

	logf("measuring simulation (reference vs csr)")
	simRef := rep.measure("simulation/reference", func() {
		for i := range pre {
			simulation.ComputeReference(g, pre[i].p, pre[i].ci)
		}
	})
	// The CSR side pays the product build inside the op: the comparison is
	// "derive edges on the fly every time" vs "materialize once, then scan".
	simCSR := rep.measure("simulation/csr", func() {
		for i := range pre {
			simulation.ComputeWithProduct(simulation.BuildProduct(g, pre[i].p, pre[i].ci, cfg.Parallelism))
		}
	})
	rep.Speedups["simulation"] = simRef.NsPerOp / simCSR.NsPerOp

	logf("measuring relevant sets (reference vs csr)")
	relRef := rep.measure("relevant/reference", func() {
		for i := range pre {
			b := &pre[i]
			simulation.ComputeRelevantReference(g, b.p, b.ci, b.an, b.space, b.inSim, b.p.Output(), false)
		}
	})
	relCSR := rep.measure("relevant/csr", func() {
		for i := range pre {
			b := &pre[i]
			simulation.ComputeRelevant(b.prod, b.an, b.space, b.inSim, b.p.Output(), false, cfg.Parallelism)
		}
	})
	rep.Speedups["relevant"] = relRef.NsPerOp / relCSR.NsPerOp

	logf("measuring find-all baseline (reference vs csr)")
	faRef := rep.measure("findall/reference", func() {
		for _, p := range patterns {
			if _, err := core.MatchBaselineOpts(g, p, cfg.K, true, refOpts); err != nil {
				panic(err)
			}
		}
	})
	faCSR := rep.measure("findall/csr", func() {
		for _, p := range patterns {
			if _, err := core.MatchBaselineOpts(g, p, cfg.K, true, opts); err != nil {
				panic(err)
			}
		}
	})
	rep.Speedups["findall"] = faRef.NsPerOp / faCSR.NsPerOp

	logf("measuring early-termination engine (topk)")
	cache := core.NewBoundsCache(g, true)
	cache.Warm(nil)
	topkOpts := opts
	topkOpts.Cache = cache
	rep.measure("topk/engine", func() {
		for _, p := range patterns {
			if _, err := core.TopK(g, p, cfg.K, topkOpts); err != nil {
				panic(err)
			}
		}
	})

	logf("measuring TopKDiv (reference vs csr)")
	divRef := rep.measure("topkdiv/reference", func() {
		for _, p := range patterns {
			if _, err := diversify.TopKDivOpts(g, p, cfg.K, cfg.Lambda, refOpts); err != nil {
				panic(err)
			}
		}
	})
	divCSR := rep.measure("topkdiv/csr", func() {
		for _, p := range patterns {
			if _, err := diversify.TopKDivOpts(g, p, cfg.K, cfg.Lambda, opts); err != nil {
				panic(err)
			}
		}
	})
	rep.Speedups["topkdiv"] = divRef.NsPerOp / divCSR.NsPerOp

	logf("measuring delta maintenance (%d-delta chain, inc vs recompute)", cfg.Deltas)
	chainG, chainD, chainS := deltaChain(g, cfg.Deltas, cfg.Seed)
	p0 := patterns[0]
	st0 := simulation.NewIncState(chainG[0], p0, cfg.Parallelism)
	incOpts := simulation.IncOptions{Workers: cfg.Parallelism}
	// Sanity-walk the chain once so a maintenance bug fails the benchmark
	// loudly instead of timing garbage.
	{
		st := st0
		var err error
		for i, d := range chainD {
			if st, _, err = simulation.IncCompute(st, chainG[i+1], d, incOpts); err != nil {
				return nil, fmt.Errorf("bench: delta chain: %w", err)
			}
		}
	}
	dmInc := rep.measure("simdelta/inc", func() {
		st := st0
		var err error
		for i, d := range chainD {
			if st, _, err = simulation.IncCompute(st, chainG[i+1], d, incOpts); err != nil {
				panic(err)
			}
		}
	})
	dmRe := rep.measure("simdelta/recompute", func() {
		for _, gi := range chainG[1:] {
			ci := simulation.BuildCandidatesParallel(gi, p0, cfg.Parallelism)
			simulation.ComputeWithProduct(simulation.BuildProduct(gi, p0, ci, cfg.Parallelism))
		}
	})
	rep.Speedups["simdelta"] = dmRe.NsPerOp / dmInc.NsPerOp

	logf("measuring bound-index maintenance (%d-delta chain, advance vs rebuild)", cfg.Deltas)
	// Both sides run over the snapshots' cached condensations (computed on
	// first touch and shared, exactly as in production, where queries and
	// maintenance reuse one condensation per snapshot); the A/B therefore
	// isolates the index maintenance itself — partial recompute of the
	// affected rectangle versus a per-snapshot recount of every label.
	bc0 := core.NewBoundsCache(chainG[0], true)
	bc0.Warm(nil)
	// Sanity-walk the chain against the from-scratch oracle once so a
	// maintenance bug fails the benchmark loudly instead of timing garbage.
	{
		bc := bc0
		for i, sum := range chainS {
			var err error
			if bc, _, err = bc.Advance(chainG[i+1], sum, core.AdvanceOptions{}); err != nil {
				return nil, fmt.Errorf("bench: bound-index chain: %w", err)
			}
			bc.Warm(nil)
		}
		if err := boundRowsEqual(bc, chainG[len(chainG)-1]); err != nil {
			return nil, fmt.Errorf("bench: bound-index chain diverged from rebuild oracle: %w", err)
		}
	}
	baAdv := rep.measure("boundadv/inc", func() {
		bc := bc0
		for i, sum := range chainS {
			var err error
			if bc, _, err = bc.Advance(chainG[i+1], sum, core.AdvanceOptions{}); err != nil {
				panic(err)
			}
			bc.Warm(nil)
		}
	})
	baRe := rep.measure("boundadv/rebuild", func() {
		for _, gi := range chainG[1:] {
			c := core.NewBoundsCache(gi, true)
			c.Warm(nil)
		}
	})
	rep.Speedups["boundadv"] = baRe.NsPerOp / baAdv.NsPerOp

	logf("measuring warm-cache entry advance vs cold re-evaluation (%d-delta chain)", cfg.Deltas)
	// The pair models the PR 10 serving cache: "advance" is what the commit
	// pays to carry one cached top-k entry to the next version — incremental
	// simulation maintenance plus an engine re-run seeded with the advanced
	// candidate/product state — while "cold" is what the first post-commit
	// query paid before the warm cache: a from-scratch evaluation per
	// version. Sanity-walk the chain once: an advanced evaluation must be
	// identical to the cold one at every step.
	{
		st := st0
		for i, d := range chainD {
			var err error
			if st, _, err = simulation.IncCompute(st, chainG[i+1], d, incOpts); err != nil {
				return nil, fmt.Errorf("bench: cacheadv chain: %w", err)
			}
			preOpts := opts
			preOpts.Prebuilt = &core.PrebuiltEval{CI: st.CI, Prod: st.Prod, Sim: st.Res}
			warm, err := core.TopK(chainG[i+1], p0, cfg.K, preOpts)
			if err != nil {
				return nil, fmt.Errorf("bench: cacheadv warm eval: %w", err)
			}
			cold, err := core.TopK(chainG[i+1], p0, cfg.K, opts)
			if err != nil {
				return nil, fmt.Errorf("bench: cacheadv cold eval: %w", err)
			}
			if !reflect.DeepEqual(warm, cold) {
				return nil, fmt.Errorf("bench: advanced evaluation diverged from cold at delta %d", i)
			}
		}
	}
	caAdv := rep.measure("cacheadv/advance", func() {
		st := st0
		for i, d := range chainD {
			var err error
			if st, _, err = simulation.IncCompute(st, chainG[i+1], d, incOpts); err != nil {
				panic(err)
			}
			preOpts := opts
			preOpts.Prebuilt = &core.PrebuiltEval{CI: st.CI, Prod: st.Prod, Sim: st.Res}
			if _, err := core.TopK(chainG[i+1], p0, cfg.K, preOpts); err != nil {
				panic(err)
			}
		}
	})
	caCold := rep.measure("cacheadv/cold", func() {
		for _, gi := range chainG[1:] {
			if _, err := core.TopK(gi, p0, cfg.K, opts); err != nil {
				panic(err)
			}
		}
	})
	rep.Speedups["cacheadv"] = caCold.NsPerOp / caAdv.NsPerOp

	// Serving throughput is measured by cmd/divtopk-bench (the in-process
	// daemon needs the public facade, which internal/bench cannot import
	// without a test-package cycle); it fills rep.Serving when cfg.Serving
	// is set.
	return rep, nil
}

// deltaChain pregenerates a chain of graph snapshots linked by random small
// deltas (a few appends, inserts and deletes each — the affected-area
// regime incremental maintenance exists for). chainG[0] is g; chainG[i+1] =
// ApplyDelta(chainG[i], chainD[i]); chainS[i] is that application's
// affected-area summary (what the bound-index advance consumes).
func deltaChain(g *graph.Graph, deltas int, seed int64) ([]*graph.Graph, []*graph.Delta, []*graph.DeltaSummary) {
	rng := rand.New(rand.NewSource(seed * 7919))
	chainG := []*graph.Graph{g}
	var chainD []*graph.Delta
	var chainS []*graph.DeltaSummary
	for i := 0; i < deltas; i++ {
		cur := chainG[len(chainG)-1]
		n := cur.NumNodes()
		var d graph.Delta
		d.AddNode(cur.Label(graph.NodeID(rng.Intn(n))), nil)
		for a := 0; a < 4; a++ {
			d.InsertEdge(graph.NodeID(rng.Intn(n+1)), graph.NodeID(rng.Intn(n+1)))
		}
		seen := map[[2]graph.NodeID]bool{}
		for a := 0; a < 4; a++ {
			v := graph.NodeID(rng.Intn(n))
			out := cur.Out(v)
			if len(out) == 0 {
				continue
			}
			e := [2]graph.NodeID{v, out[rng.Intn(len(out))]}
			if !seen[e] {
				seen[e] = true
				d.DeleteEdge(e[0], e[1])
			}
		}
		next, sum, err := graph.ApplyDeltaWithSummary(cur, &d)
		if err != nil {
			panic(fmt.Sprintf("bench: delta chain generation: %v", err))
		}
		chainG = append(chainG, next)
		chainD = append(chainD, &d)
		chainS = append(chainS, sum)
	}
	return chainG, chainD, chainS
}

// boundRowsEqual compares an advanced bound index against a fresh warm of
// the snapshot it claims to cover.
func boundRowsEqual(bc *core.BoundsCache, g *graph.Graph) error {
	oracle := core.NewBoundsCache(g, true)
	oracle.Warm(nil)
	return bc.RowsEqual(oracle)
}

// Summarize converts a load-generator report into the report's serving
// slice.
func (r *ServingReport) Summarize() *ServingSummary {
	return &ServingSummary{
		Throughput:       r.Throughput,
		P50Micros:        r.P50.Microseconds(),
		P99Micros:        r.P99.Microseconds(),
		HitRate:          r.HitRate,
		Requests:         r.Requests,
		Errors:           r.Errors,
		Updates:          r.Updates,
		UpdateErrors:     r.UpdateErrors,
		UpdateP50Micros:  r.UpdateP50.Microseconds(),
		UpdateP95Micros:  r.UpdateP95.Microseconds(),
		FinalVersion:     r.FinalVersion,
		IndexIncremental: r.IndexIncremental,
		IndexRebuilds:    r.IndexRebuilds,
		IndexShareMean:   r.IndexShareMean,
		IndexWallP50:     r.IndexWallP50Micro,
		BatchWidthMean:   r.BatchWidthMean,
		BatchWidthMax:    r.BatchWidthMax,
		UpdatesBatched:   r.UpdatesBatched,
		FrontierRowsMean: r.FrontierRowsMean,
		ShardWallP50:     r.ShardWallP50Micro,
		CacheAdvanced:    r.CacheAdvanced,
		CacheSeeded:      r.CacheSeeded,
		PostCommitP50Ms:  float64(r.PostCommitP50.Microseconds()) / 1000,
	}
}
