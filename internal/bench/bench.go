// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§6, Fig. 4 and Fig. 5a-l), plus the
// λ-sensitivity result stated in the text and two ablations (upper-bound
// index modes, pattern shape). Each experiment returns a Figure whose rows
// and series mirror the paper's plots; cmd/experiments prints them and
// EXPERIMENTS.md records paper-vs-measured shapes.
//
// Graphs are ~100× smaller than the paper's by default (see DESIGN.md §2.2);
// the Scale presets control absolute sizes, and the claims checked are about
// shape (who wins, by what rough factor, how trends move), not seconds.
package bench

import (
	"fmt"
	"strings"
	"time"

	"divtopk/internal/core"
	"divtopk/internal/diversify"
	"divtopk/internal/gen"
	"divtopk/internal/graph"
	"divtopk/internal/pattern"
	"divtopk/internal/simulation"
)

// Scale fixes the dataset sizes and repetition counts of a harness run.
type Scale struct {
	Name string
	// Dataset sizes as (nodes, edges).
	YouTube, Citation, Amazon [2]int
	// SynthBase is the 1.0× size of the scalability sweeps (Fig. 5g/h/l);
	// the sweep multiplies it by 1.0..2.8 like the paper's 1M..2.8M axis.
	SynthBase [2]int
	// SynthSteps lists the sweep multipliers.
	SynthSteps []float64
	// Queries is the number of generated patterns averaged per data point
	// (the paper repeats each run 5 times).
	Queries int
	// K is the default k (the paper fixes k=10 unless k is the x-axis).
	K int
	// Seed drives all generation.
	Seed int64
}

// ScaleSmall finishes the full suite in a couple of minutes; the default
// for `go test -bench`.
// Densities are deliberately ~3× the real datasets' average degree: at ~100×
// fewer nodes than the paper's graphs this restores the match multiplicity
// regime its experiments operate in (hundreds of matches per query — e.g.
// ≥180 for YouTube |Q|=(4,8), §6 Exp-1), which is what the MR and
// early-termination dynamics depend on. See DESIGN.md §2.2.
var ScaleSmall = Scale{
	Name:       "small",
	YouTube:    [2]int{12_000, 120_000},
	Citation:   [2]int{12_000, 110_000},
	Amazon:     [2]int{10_000, 100_000},
	SynthBase:  [2]int{6_000, 58_000},
	SynthSteps: []float64{1.0, 1.6, 2.2, 2.8},
	Queries:    3,
	K:          10,
	Seed:       1,
}

// ScaleMedium is the default of cmd/experiments.
var ScaleMedium = Scale{
	Name:       "medium",
	YouTube:    [2]int{30_000, 300_000},
	Citation:   [2]int{30_000, 275_000},
	Amazon:     [2]int{25_000, 250_000},
	SynthBase:  [2]int{10_000, 95_000},
	SynthSteps: []float64{1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.2, 2.4, 2.6, 2.8},
	Queries:    5,
	K:          10,
	Seed:       1,
}

// ByName returns a preset Scale.
func ByName(name string) (Scale, error) {
	switch name {
	case "small":
		return ScaleSmall, nil
	case "medium":
		return ScaleMedium, nil
	default:
		return Scale{}, fmt.Errorf("bench: unknown scale %q (small|medium)", name)
	}
}

// Figure is one experiment's output: a table with one row per x value and
// one column per series, mirroring a subfigure of the paper.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []string
	Rows   []Row
	// Notes records the paper's expected shape for EXPERIMENTS.md.
	Notes string
}

// Row is one x point.
type Row struct {
	X    string
	Vals []float64
}

// Format renders the figure as an aligned text table.
func (f *Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %16s", s)
	}
	fmt.Fprintln(&b)
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-12s", r.X)
		for _, v := range r.Vals {
			fmt.Fprintf(&b, " %16.3f", v)
		}
		fmt.Fprintln(&b)
	}
	if f.Notes != "" {
		fmt.Fprintf(&b, "paper: %s\n", f.Notes)
	}
	return b.String()
}

// datasets caches generated graphs (and their descendant-label bound
// indices, which the paper amortizes across queries) within one harness run.
type datasets struct {
	sc     Scale
	cache  map[string]*graph.Graph
	bounds map[*graph.Graph]*core.BoundsCache
}

func newDatasets(sc Scale) *datasets {
	return &datasets{
		sc:     sc,
		cache:  map[string]*graph.Graph{},
		bounds: map[*graph.Graph]*core.BoundsCache{},
	}
}

// boundsFor returns the per-graph descendant-label index, building it once.
func (d *datasets) boundsFor(g *graph.Graph) *core.BoundsCache {
	if c, ok := d.bounds[g]; ok {
		return c
	}
	c := core.NewBoundsCache(g, true)
	d.bounds[g] = c
	return c
}

func (d *datasets) get(name string, n, m int) *graph.Graph {
	key := fmt.Sprintf("%s-%d-%d", name, n, m)
	if g, ok := d.cache[key]; ok {
		return g
	}
	var g *graph.Graph
	switch name {
	case "youtube":
		g = gen.YouTubeLike(n, m, d.sc.Seed)
	case "citation":
		g = gen.CitationLike(n, m, d.sc.Seed)
	case "amazon":
		g = gen.AmazonLike(n, m, d.sc.Seed)
	case "synthetic":
		g = gen.Synthetic(gen.SynthConfig{N: n, M: m, Seed: d.sc.Seed})
	default:
		panic("bench: unknown dataset " + name)
	}
	d.cache[key] = g
	return g
}

func (d *datasets) youtube() *graph.Graph {
	return d.get("youtube", d.sc.YouTube[0], d.sc.YouTube[1])
}
func (d *datasets) citation() *graph.Graph {
	return d.get("citation", d.sc.Citation[0], d.sc.Citation[1])
}
func (d *datasets) amazon() *graph.Graph {
	return d.get("amazon", d.sc.Amazon[0], d.sc.Amazon[1])
}

// patternsFor mines a suite of patterns; sizes follow the paper's (|Vp|,|Ep|)
// conventions for each figure.
func (d *datasets) patternsFor(g *graph.Graph, nodes, edges int, cyclic, preds bool) []*pattern.Pattern {
	ps, err := gen.Suite(g, gen.PatternConfig{
		Nodes: nodes, Edges: edges, Cyclic: cyclic, Predicates: preds, Seed: d.sc.Seed + int64(nodes*31+edges),
	}, d.sc.Queries)
	if err != nil {
		// Retry without the cyclic requirement rather than abort the whole
		// suite; record the substitution by panicking only when even that
		// fails (generation is deterministic, so tests catch it early).
		ps, err = gen.Suite(g, gen.PatternConfig{
			Nodes: nodes, Edges: edges, Predicates: preds, Seed: d.sc.Seed + int64(nodes*37+edges),
		}, d.sc.Queries)
		if err != nil {
			panic(fmt.Sprintf("bench: pattern generation failed: %v", err))
		}
	}
	return ps
}

// measured bundles the per-algorithm outcomes averaged over a suite.
type measured struct {
	time     time.Duration
	mr       float64 // examined / |Mu|
	f        float64 // diversification objective (diversified runs)
	examined float64
}

// runTopK measures one top-k algorithm over a pattern suite. The engine
// variants share the per-graph bound index (cache), mirroring the paper's
// precomputed index; its one-off construction is excluded from timings like
// any index build would be.
func runTopK(d *datasets, g *graph.Graph, ps []*pattern.Pattern, k int, algo string, seed int64) measured {
	cache := d.boundsFor(g)
	var out measured
	valid := 0
	for i, p := range ps {
		total := len(muSize(g, p))
		if total == 0 {
			continue
		}
		valid++
		start := time.Now()
		var stats core.Stats
		switch algo {
		case "match":
			res, err := core.MatchBaseline(g, p, k, false)
			if err != nil {
				panic(err)
			}
			stats = res.Stats
		case "topk":
			res, err := core.TopK(g, p, k, core.Options{Cache: cache})
			if err != nil {
				panic(err)
			}
			stats = res.Stats
		case "topknopt":
			res, err := core.TopK(g, p, k, core.Options{Strategy: core.StrategyRandom, Seed: seed + int64(i), Cache: cache})
			if err != nil {
				panic(err)
			}
			stats = res.Stats
		default:
			panic("bench: unknown algo " + algo)
		}
		out.time += time.Since(start)
		out.mr += float64(stats.MatchesFound) / float64(total)
		out.examined += float64(stats.MatchesFound)
	}
	if valid > 0 {
		out.time /= time.Duration(valid)
		out.mr /= float64(valid)
		out.examined /= float64(valid)
	}
	return out
}

// runDiv measures one diversified algorithm over a pattern suite (TopKDH
// shares the per-graph bound index like the other engine variants).
func runDiv(d *datasets, g *graph.Graph, ps []*pattern.Pattern, k int, lambda float64, algo string) measured {
	cache := d.boundsFor(g)
	var out measured
	valid := 0
	for _, p := range ps {
		start := time.Now()
		var (
			res *diversify.Result
			err error
		)
		switch algo {
		case "topkdiv":
			res, err = diversify.TopKDiv(g, p, k, lambda)
		case "topkdh":
			res, err = diversify.TopKDH(g, p, k, lambda, core.Options{Cache: cache})
		default:
			panic("bench: unknown algo " + algo)
		}
		if err != nil {
			panic(err)
		}
		elapsed := time.Since(start)
		if !res.GlobalMatch {
			continue
		}
		valid++
		out.time += elapsed
		// Score the selected set under the exact diversification function
		// (outside the timer): the heuristic's own F uses partial sets.
		nodes := make([]graph.NodeID, len(res.Matches))
		for i, m := range res.Matches {
			nodes[i] = m.Node
		}
		exact, ferr := diversify.ExactF(g, p, nodes, lambda, k)
		if ferr != nil {
			panic(ferr)
		}
		out.f += exact
	}
	if valid > 0 {
		out.time /= time.Duration(valid)
		out.f /= float64(valid)
	}
	return out
}

// muSize caches nothing (patterns are cheap to re-evaluate at harness
// scales); it returns Mu(Q,G,uo).
func muSize(g *graph.Graph, p *pattern.Pattern) []graph.NodeID {
	res := simulation.Compute(g, p)
	return res.MatchesOf(p.Output())
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000.0 }
