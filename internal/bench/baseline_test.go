package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"divtopk/internal/core"
	"divtopk/internal/diversify"
	"divtopk/internal/gen"
	"divtopk/internal/graph"
	"divtopk/internal/pattern"
	"divtopk/internal/simulation"
)

// tinyBaselineConfig keeps the smoke test and the CI benchmarks fast.
func tinyBaselineConfig() BaselineConfig {
	cfg := ShortBaselineConfig()
	cfg.Nodes = 3_000
	cfg.Edges = 21_000
	cfg.Queries = 2
	cfg.Serving = false
	return cfg
}

// TestRunBaselineSmoke runs the full measurement suite at a tiny scale and
// checks the report's shape: every component present, speedups computed,
// JSON round-trippable.
func TestRunBaselineSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark suite in -short mode")
	}
	rep, err := RunBaseline(tinyBaselineConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"candidates", "simulation/reference", "simulation/csr",
		"relevant/reference", "relevant/csr", "findall/reference",
		"findall/csr", "topk/engine", "topkdiv/reference", "topkdiv/csr",
		"simdelta/inc", "simdelta/recompute",
		"boundadv/inc", "boundadv/rebuild",
		"cacheadv/advance", "cacheadv/cold",
	}
	if len(rep.Entries) != len(want) {
		t.Fatalf("got %d entries, want %d", len(rep.Entries), len(want))
	}
	for i, name := range want {
		if rep.Entries[i].Name != name {
			t.Fatalf("entry %d = %q, want %q", i, rep.Entries[i].Name, name)
		}
		if rep.Entries[i].NsPerOp <= 0 {
			t.Fatalf("entry %q has non-positive ns/op", name)
		}
	}
	for _, k := range []string{"simulation", "relevant", "findall", "topkdiv", "simdelta", "boundadv", "cacheadv"} {
		if rep.Speedups[k] <= 0 {
			t.Fatalf("speedup %q missing", k)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back BaselineReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.Config.Nodes != rep.Config.Nodes || len(back.Entries) != len(rep.Entries) {
		t.Fatal("round-tripped report diverges")
	}
}

// workload is the shared fixed-seed fixture of the Baseline* benchmarks.
func workload(b *testing.B) ([]*pattern.Pattern, *graph.Graph, BaselineConfig) {
	b.Helper()
	cfg := tinyBaselineConfig().withDefaults()
	g := gen.Synthetic(gen.SynthConfig{N: cfg.Nodes, M: cfg.Edges, Labels: cfg.Labels, Seed: cfg.Seed})
	ps, err := gen.Suite(g, gen.PatternConfig{Nodes: cfg.PatternNodes, Edges: cfg.PatternEdges, Seed: cfg.Seed}, cfg.Queries)
	if err != nil {
		b.Fatal(err)
	}
	return ps, g, cfg
}

// BenchmarkBaselineFindAllReference / ...CSR are the A/B pair CI tracks with
// -benchmem: the frozen pre-CSR kernel against the product-CSR kernel on the
// same fixed-seed workload.
func BenchmarkBaselineFindAllReference(b *testing.B) {
	ps, g, cfg := workload(b)
	opts := core.Options{Parallelism: 1, Kernel: core.KernelReference}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range ps {
			if _, err := core.MatchBaselineOpts(g, p, cfg.K, true, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkBaselineFindAllCSR(b *testing.B) {
	ps, g, cfg := workload(b)
	opts := core.Options{Parallelism: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range ps {
			if _, err := core.MatchBaselineOpts(g, p, cfg.K, true, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkBaselineTopKDivReference(b *testing.B) {
	ps, g, cfg := workload(b)
	opts := core.Options{Parallelism: 1, Kernel: core.KernelReference}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range ps {
			if _, err := diversify.TopKDivOpts(g, p, cfg.K, cfg.Lambda, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkBaselineTopKDivCSR(b *testing.B) {
	ps, g, cfg := workload(b)
	opts := core.Options{Parallelism: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range ps {
			if _, err := diversify.TopKDivOpts(g, p, cfg.K, cfg.Lambda, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkBaselineSimulationCSR(b *testing.B) {
	ps, g, cfg := workload(b)
	cis := make([]*simulation.CandidateIndex, len(ps))
	for i, p := range ps {
		cis[i] = simulation.BuildCandidates(g, p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, p := range ps {
			simulation.ComputeWithProduct(simulation.BuildProduct(g, p, cis[j], cfg.Parallelism))
		}
	}
}

// BenchmarkBaselineDeltaInc / ...DeltaRecompute are the dynamic-graph A/B
// pair: maintaining the simulation fixpoint + product CSR through a chain
// of small deltas incrementally versus recomputing each snapshot from
// scratch.
func BenchmarkBaselineDeltaInc(b *testing.B) {
	ps, g, cfg := workload(b)
	chainG, chainD, _ := deltaChain(g, cfg.Deltas, cfg.Seed)
	st0 := simulation.NewIncState(chainG[0], ps[0], cfg.Parallelism)
	opts := simulation.IncOptions{Workers: cfg.Parallelism}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := st0
		var err error
		for j, d := range chainD {
			if st, _, err = simulation.IncCompute(st, chainG[j+1], d, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkBaselineDeltaRecompute(b *testing.B) {
	ps, g, cfg := workload(b)
	chainG, _, _ := deltaChain(g, cfg.Deltas, cfg.Seed)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, gi := range chainG[1:] {
			ci := simulation.BuildCandidatesParallel(gi, ps[0], cfg.Parallelism)
			simulation.ComputeWithProduct(simulation.BuildProduct(gi, ps[0], ci, cfg.Parallelism))
		}
	}
}

// BenchmarkBaselineBoundAdvance / ...BoundRebuild are the bound-index A/B
// pair: advancing the descendant-label index through a chain of small
// deltas (recomputing only each delta's affected rows × affected labels)
// versus rebuilding every label on every snapshot. Snapshot condensations
// are cached per graph and shared by both sides, as in production.
func BenchmarkBaselineBoundAdvance(b *testing.B) {
	_, g, cfg := workload(b)
	chainG, _, chainS := deltaChain(g, cfg.Deltas, cfg.Seed)
	bc0 := core.NewBoundsCache(chainG[0], true)
	bc0.Warm(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bc := bc0
		for j, sum := range chainS {
			var err error
			if bc, _, err = bc.Advance(chainG[j+1], sum, core.AdvanceOptions{}); err != nil {
				b.Fatal(err)
			}
			bc.Warm(nil)
		}
	}
}

func BenchmarkBaselineBoundRebuild(b *testing.B) {
	_, g, cfg := workload(b)
	chainG, _, _ := deltaChain(g, cfg.Deltas, cfg.Seed)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, gi := range chainG[1:] {
			c := core.NewBoundsCache(gi, true)
			c.Warm(nil)
		}
	}
}
