package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"divtopk/internal/core"
	"divtopk/internal/diversify"
	"divtopk/internal/gen"
	"divtopk/internal/graph"
	"divtopk/internal/pattern"
)

// Lambda reproduces the λ-sensitivity finding of §6 Exp-3: "both algorithms
// are not sensitive to the change of λ" (TopKDiv slightly faster at λ=0
// where it degenerates to Match).
func Lambda(sc Scale) *Figure {
	d := newDatasets(sc)
	g := d.amazon()
	ps := d.patternsFor(g, 4, 8, true, false)
	f := &Figure{
		ID: "lambda", Title: "time and F vs λ, k=10, |Q|=(4,8) (Amazon-like)",
		XLabel: "lambda", YLabel: "ms / F",
		Series: []string{"TopKDiv(ms)", "TopKDH(ms)", "F[TopKDiv]", "F[TopKDH]"},
		Notes:  "running times essentially flat in λ",
	}
	for i := 0; i <= 10; i += 2 {
		lambda := float64(i) / 10
		div := runDiv(d, g, ps, sc.K, lambda, "topkdiv")
		dh := runDiv(d, g, ps, sc.K, lambda, "topkdh")
		f.Rows = append(f.Rows, Row{
			X:    fmt.Sprintf("%.1f", lambda),
			Vals: []float64{ms(div.time), ms(dh.time), div.f, dh.f},
		})
	}
	return f
}

// AblationBounds compares the three upper-bound index modes (DESIGN.md
// §2.3): the tight candidate-product bound against the label-count and
// cheap descendant-sum bounds, in examined matches (MR) and time.
func AblationBounds(sc Scale) *Figure {
	d := newDatasets(sc)
	n, m := sc.SynthBase[0]*2, sc.SynthBase[1]*2
	g := d.get("synthetic", n, m)
	ps := d.patternsFor(g, 4, 8, true, false)
	f := &Figure{
		ID: "ablation-bounds", Title: "upper-bound index ablation, cyclic |Q|=(4,8) (synthetic)",
		XLabel: "bound", YLabel: "MR% / ms",
		Series: []string{"MR[TopK]%", "time(ms)"},
		Notes:  "tighter bounds terminate earlier (lower MR) at higher init cost",
	}
	for _, mode := range []core.BoundMode{core.BoundTight, core.BoundLabelCount, core.BoundCheap} {
		var mr, t float64
		valid := 0
		for _, p := range ps {
			total := len(muSize(g, p))
			if total == 0 {
				continue
			}
			valid++
			res, err := timedTopK(g, p, sc.K, core.Options{Bounds: mode})
			if err != nil {
				panic(err)
			}
			mr += float64(res.res.Stats.MatchesFound) / float64(total)
			t += res.ms
		}
		if valid > 0 {
			mr /= float64(valid)
			t /= float64(valid)
		}
		f.Rows = append(f.Rows, Row{X: mode.String(), Vals: []float64{mr * 100, t}})
	}
	return f
}

// AblationShape reproduces the closing observation of §6 Exp-2: TopKDAG
// performs better for patterns with smaller height (star-shaped) than for
// deep chains.
func AblationShape(sc Scale) *Figure {
	d := newDatasets(sc)
	g := d.citation()
	f := &Figure{
		ID: "ablation-shape", Title: "pattern-shape ablation, DAG |Vp|=5 (Citation-like)",
		XLabel: "shape", YLabel: "MR% / ms",
		Series: []string{"MR[TopKDAG]%", "time(ms)"},
		Notes:  "smaller pattern height → earlier termination (lower MR, less time)",
	}
	for _, shape := range []struct {
		name string
		s    gen.Shape
	}{{"star(h=1)", gen.ShapeStar}, {"random", gen.ShapeRandom}, {"chain(h=4)", gen.ShapeChain}} {
		ps, err := gen.Suite(g, gen.PatternConfig{
			Nodes: 5, Edges: 4, Shape: shape.s, Seed: sc.Seed + 101,
		}, sc.Queries)
		if err != nil {
			panic(err)
		}
		var mr, t float64
		valid := 0
		for _, p := range ps {
			total := len(muSize(g, p))
			if total == 0 {
				continue
			}
			valid++
			res, err := timedTopK(g, p, sc.K, core.Options{})
			if err != nil {
				panic(err)
			}
			mr += float64(res.res.Stats.MatchesFound) / float64(total)
			t += res.ms
		}
		if valid > 0 {
			mr /= float64(valid)
			t /= float64(valid)
		}
		f.Rows = append(f.Rows, Row{X: shape.name, Vals: []float64{mr * 100, t}})
	}
	return f
}

type timedResult struct {
	res *core.Result
	ms  float64
}

// timedTopK runs the engine once and reports wall time in milliseconds.
func timedTopK(g *graph.Graph, p *pattern.Pattern, k int, opts core.Options) (timedResult, error) {
	start := time.Now()
	res, err := core.TopK(g, p, k, opts)
	if err != nil {
		return timedResult{}, err
	}
	return timedResult{res: res, ms: ms(time.Since(start))}, nil
}

// Fig4 reproduces the case study of Fig. 4: on the YouTube-like graph it
// runs Q1 (cyclic) and Q2 (DAG), reporting the top-2 relevant matches and
// the top-2 diversified matches with their relevant-set-induced subgraphs —
// the diversified run replaces one of the two most relevant matches with a
// more dissimilar one, as in the paper's shadowed nodes.
func Fig4(sc Scale) string {
	d := newDatasets(sc)
	g := d.youtube()
	var b strings.Builder
	for _, q := range []struct {
		name string
		p    *pattern.Pattern
	}{
		{"Q1 (cyclic: music*R>2 <-> entertainment R>2 -> music V>5000)", gen.Fig4Q1()},
		{"Q2 (DAG: comedy*R>3 -> {entertainment A>500, comedy V>7000} -> music A>800)", gen.Fig4Q2()},
	} {
		fmt.Fprintf(&b, "== Fig 4 case study: %s ==\n", q.name)
		rel, err := core.TopK(g, q.p, 2, core.Options{})
		if err != nil {
			panic(err)
		}
		if !rel.GlobalMatch || len(rel.Matches) == 0 {
			fmt.Fprintf(&b, "  no matches at this scale (%d nodes)\n", g.NumNodes())
			continue
		}
		fmt.Fprintf(&b, "top-2 relevant matches:\n")
		writeMatches(&b, g, rel.Matches, rel)
		div, err := diversify.TopKDH(g, q.p, 2, 0.5, core.Options{})
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(&b, "top-2 diversified matches (λ=0.5, F=%.3f):\n", div.F)
		divRes := &core.Result{Space: rel.Space}
		writeMatches(&b, g, div.Matches, divRes)
		// Which relevant match was replaced by diversification?
		relSet := map[graph.NodeID]bool{}
		for _, m := range rel.Matches {
			relSet[m.Node] = true
		}
		var swapped []string
		for _, m := range div.Matches {
			if !relSet[m.Node] {
				swapped = append(swapped, fmt.Sprintf("%d", m.Node))
			}
		}
		sort.Strings(swapped)
		if len(swapped) > 0 {
			fmt.Fprintf(&b, "diversification replaced a top-relevant match with: %s\n", strings.Join(swapped, ", "))
		} else {
			fmt.Fprintf(&b, "diversified set equals the relevant set for this instance\n")
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

func writeMatches(b *strings.Builder, g *graph.Graph, ms []core.Match, res *core.Result) {
	for _, m := range ms {
		views, _ := g.Attr(m.Node, "V")
		rate, _ := g.Attr(m.Node, "R")
		fmt.Fprintf(b, "  node %-7d %-14s V=%-8s R=%-3s δr>=%-5d |relevant subgraph|=%d\n",
			m.Node, g.Label(m.Node), views, rate, m.Relevance, relSubgraphSize(g, res, m))
	}
}

// relSubgraphSize materializes the induced subgraph of a match's relevant
// set (the graphs drawn in Fig. 4) and returns its node count.
func relSubgraphSize(g *graph.Graph, res *core.Result, m core.Match) int {
	if m.R == nil || res.Space == nil {
		return 0
	}
	nodes := res.Space.NodesOf(m.R)
	nodes = append(nodes, m.Node)
	sub, _ := graph.InducedSubgraph(g, nodes)
	return sub.NumNodes()
}

// MRScale is a supplementary experiment (not in the paper): how the match
// ratio MR of TopK develops as |G| grows at fixed density. At the paper's
// scale (millions of nodes) pattern instances have small, disjoint support
// neighborhoods and MR settles near its 40-45%; at the ~100× smaller scales
// this harness runs, one batch of leaf feeding supports most candidates and
// MR saturates — this figure documents that trend honestly so the Fig. 5a-c
// absolute values can be read in context (see EXPERIMENTS.md).
func MRScale(sc Scale) *Figure {
	d := newDatasets(sc)
	f := &Figure{
		ID: "mr-scale", Title: "MR vs |G| at fixed density, cyclic |Q|=(4,8) (YouTube-like)",
		XLabel: "|V|", YLabel: "% of matches",
		Series: []string{"MR[TopK]%", "avg |Mu|"},
		Notes:  "supplementary: MR falls toward the paper's regime as |G| grows",
	}
	base := sc.YouTube[0]
	for _, mult := range []int{1, 2, 4, 8} {
		n := base * mult
		m := n * 3 // the real dataset's density, not the compensated one
		g := d.get("youtube", n, m)
		ps := d.patternsFor(g, 4, 8, true, true)
		res := runTopK(d, g, ps, sc.K, "topk", sc.Seed)
		var avgMu float64
		cnt := 0
		for _, p := range ps {
			if mu := len(muSize(g, p)); mu > 0 {
				avgMu += float64(mu)
				cnt++
			}
		}
		if cnt > 0 {
			avgMu /= float64(cnt)
		}
		f.Rows = append(f.Rows, Row{X: fmt.Sprintf("%d", n), Vals: []float64{res.mr * 100, avgMu}})
	}
	return f
}
