package cache

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestLRUEviction(t *testing.T) {
	c := New(2)
	load := func(v string) func() (any, error) {
		return func() (any, error) { return v, nil }
	}
	if v, _ := c.Do("a", load("va")); v != "va" {
		t.Fatalf("got %v", v)
	}
	c.Do("b", load("vb"))
	c.Do("a", load("never")) // refresh a: b is now the LRU entry
	c.Do("c", load("vc"))    // evicts b
	s := c.Stats()
	if s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
	if s.Entries != 2 {
		t.Fatalf("entries = %d, want 2", s.Entries)
	}
	// a survived the eviction because Do("a") refreshed its recency...
	evals := 0
	c.Do("a", func() (any, error) { evals++; return nil, nil })
	if evals != 0 {
		t.Fatal("a should still be cached")
	}
	// ...and b is the entry that went.
	c.Do("b", func() (any, error) { evals++; return "vb2", nil })
	if evals != 1 {
		t.Fatalf("b should have been evicted and re-evaluated, evals=%d", evals)
	}
}

func TestSingleflightCoalesces(t *testing.T) {
	c := New(8)
	const n = 16
	gate := make(chan struct{})
	started := make(chan struct{})
	evals := 0
	var wg sync.WaitGroup
	var once sync.Once
	results := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _ = c.Do("k", func() (any, error) {
				once.Do(func() { close(started) })
				<-gate
				evals++
				return 42, nil
			})
		}(i)
	}
	<-started // the leader is inside fn; let followers pile up, then release
	close(gate)
	wg.Wait()
	if evals != 1 {
		t.Fatalf("evals = %d, want exactly 1", evals)
	}
	for i, r := range results {
		if r != 42 {
			t.Fatalf("caller %d got %v", i, r)
		}
	}
	s := c.Stats()
	if s.Misses != 1 {
		t.Fatalf("misses = %d, want 1", s.Misses)
	}
	if s.Hits+s.Coalesced != n-1 {
		t.Fatalf("hits+coalesced = %d, want %d", s.Hits+s.Coalesced, n-1)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New(4)
	boom := errors.New("boom")
	if _, err := c.Do("k", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	evals := 0
	v, err := c.Do("k", func() (any, error) { evals++; return "ok", nil })
	if err != nil || v != "ok" || evals != 1 {
		t.Fatalf("error was cached: v=%v err=%v evals=%d", v, err, evals)
	}
}

func TestPanickingLoaderDoesNotWedgeKey(t *testing.T) {
	c := New(4)
	started := make(chan struct{})
	waiterDone := make(chan error, 1)
	go func() {
		defer func() {
			if p := recover(); p == nil {
				t.Error("leader's panic did not propagate")
			}
		}()
		c.Do("k", func() (any, error) {
			close(started)
			<-started // already closed; just a visible ordering point
			panic("boom")
		})
	}()
	<-started
	// A caller coalescing onto the doomed flight must unblock with an
	// error, not hang (we may also race past the flight teardown and become
	// the next leader — either way Do must return).
	go func() {
		_, err := c.Do("k", func() (any, error) { return "recovered", nil })
		waiterDone <- err
	}()
	select {
	case <-waiterDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Do wedged after the loader panicked")
	}
	// The key is not poisoned: a fresh evaluation succeeds.
	v, err := c.Do("k", func() (any, error) { return "ok", nil })
	if err != nil || (v != "ok" && v != "recovered") {
		t.Fatalf("post-panic Do = %v, %v", v, err)
	}
}

func TestConcurrentDistinctKeys(t *testing.T) {
	c := New(64)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				key := fmt.Sprintf("k%d", j%32)
				v, err := c.Do(key, func() (any, error) { return key, nil })
				if err != nil || v != key {
					t.Errorf("Do(%s) = %v, %v", key, v, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestPutAdvancedOneShotOutcome pins the advanced-entry lifecycle: an entry
// installed by the commit-time advance pass reports OutcomeAdvanced to
// exactly one caller (the first hit), then decays to a plain warm entry;
// re-advancing the same key re-arms the tag.
func TestPutAdvancedOneShotOutcome(t *testing.T) {
	c := New(4)
	c.PutAdvanced("k", "v1")
	if s := c.Stats(); s.Advanced != 1 || s.Entries != 1 {
		t.Fatalf("stats after PutAdvanced: %+v", s)
	}
	loader := func() (any, bool, error) { t.Fatal("advanced entry must not evaluate"); return nil, false, nil }
	v, out, err := c.DoStatus("k", loader)
	if err != nil || v != "v1" || out != OutcomeAdvanced {
		t.Fatalf("first hit = (%v, %v, %v), want (v1, advanced, nil)", v, out, err)
	}
	if _, out, _ := c.DoStatus("k", loader); out != OutcomeHit {
		t.Fatalf("second hit outcome = %v, want hit", out)
	}
	// Re-advancing refreshes the value and re-arms the one-shot tag.
	c.PutAdvanced("k", "v2")
	v, out, _ = c.DoStatus("k", loader)
	if v != "v2" || out != OutcomeAdvanced {
		t.Fatalf("after re-advance = (%v, %v), want (v2, advanced)", v, out)
	}
	// A plain Do hit consumes the tag invisibly (Do discards the outcome)
	// without disturbing the stored value.
	c.PutAdvanced("k", "v3")
	if v, err := c.Do("k", func() (any, error) { return nil, errors.New("no") }); err != nil || v != "v3" {
		t.Fatalf("Do on advanced entry = (%v, %v)", v, err)
	}
}

// TestDoStatusSeededOutcome pins the seeded provenance: a loader reporting
// containment seeding lands OutcomeSeeded (counted once in Stats.Seeded),
// the stored entry serves later callers as a plain hit, and a seeded
// loader's error is delivered uncached like any other.
func TestDoStatusSeededOutcome(t *testing.T) {
	c := New(4)
	v, out, err := c.DoStatus("s", func() (any, bool, error) { return "sv", true, nil })
	if err != nil || v != "sv" || out != OutcomeSeeded {
		t.Fatalf("seeded load = (%v, %v, %v)", v, out, err)
	}
	if s := c.Stats(); s.Seeded != 1 || s.Misses != 1 {
		t.Fatalf("stats after seeded load: %+v", s)
	}
	if _, out, _ := c.DoStatus("s", func() (any, bool, error) { return nil, false, nil }); out != OutcomeHit {
		t.Fatalf("cached seeded entry outcome = %v, want hit", out)
	}
	boom := errors.New("boom")
	if _, out, err := c.DoStatus("e", func() (any, bool, error) { return nil, true, boom }); err != boom || out != OutcomeMiss {
		t.Fatalf("failing seeded load = (%v, %v), want (miss, boom)", out, err)
	}
	if s := c.Stats(); s.Seeded != 1 {
		t.Fatalf("failed load counted as seeded: %+v", s)
	}
}

// TestDoStatusCoalescedMirrorsLeader pins that followers coalescing onto an
// in-flight evaluation report the leader's outcome — seeded when the leader
// seeded — while later, post-landing callers report plain hits.
func TestDoStatusCoalescedMirrorsLeader(t *testing.T) {
	c := New(8)
	gate := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	var leadOut Outcome
	go func() {
		defer wg.Done()
		_, out, _ := c.DoStatus("k", func() (any, bool, error) {
			close(started)
			<-gate
			return "v", true, nil
		})
		leadOut = out
	}()
	<-started
	const followers = 4
	outs := make([]Outcome, followers)
	var fwg sync.WaitGroup
	for i := 0; i < followers; i++ {
		fwg.Add(1)
		go func(i int) {
			defer fwg.Done()
			_, out, _ := c.DoStatus("k", func() (any, bool, error) { return nil, false, errors.New("follower must not evaluate") })
			outs[i] = out
		}(i)
	}
	// Give the followers a moment to park on the flight, then land it.
	for {
		if s := c.Stats(); s.Coalesced == followers {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	fwg.Wait()
	if leadOut != OutcomeSeeded {
		t.Fatalf("leader outcome = %v, want seeded", leadOut)
	}
	for i, out := range outs {
		if out != OutcomeSeeded {
			t.Fatalf("follower %d outcome = %v, want the leader's seeded", i, out)
		}
	}
	if _, out, _ := c.DoStatus("k", func() (any, bool, error) { return nil, false, nil }); out != OutcomeHit {
		t.Fatalf("post-landing outcome = %v, want hit", out)
	}
}
