// Package cache provides the query-result cache behind Matcher sessions and
// the serving daemon: a fixed-capacity LRU keyed by canonical query
// fingerprints, with singleflight admission so that N concurrent identical
// queries cost exactly one evaluation and share its result. Every engine in
// this module is deterministic, which is what makes result caching sound: a
// cached value is indistinguishable from a fresh evaluation.
package cache

import (
	"container/list"
	"fmt"
	"sync"
)

// Stats is a snapshot of cache activity. Misses counts admitted
// evaluations — each miss runs the loader exactly once — while Coalesced
// counts callers that piggybacked on an evaluation already in flight and
// Hits counts callers served from a stored entry. Hits + Misses + Coalesced
// equals the number of Do/DoStatus calls. Advanced counts entries installed
// by the commit-time advance pass (PutAdvanced); Seeded counts admitted
// evaluations that reported containment seeding.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Coalesced uint64
	Evictions uint64
	Advanced  uint64
	Seeded    uint64
	Entries   int
}

// Outcome describes how one Do/DoStatus call was served; the serving layer
// reports it verbatim in query responses.
type Outcome string

const (
	// OutcomeHit: served from a stored entry.
	OutcomeHit Outcome = "hit"
	// OutcomeMiss: the caller (or the leader it coalesced on) ran the loader
	// cold.
	OutcomeMiss Outcome = "miss"
	// OutcomeAdvanced: served from an entry the commit-time advance pass
	// installed, on its first hit since installation (later hits decay to
	// OutcomeHit — the entry is then just a warm entry).
	OutcomeAdvanced Outcome = "advanced"
	// OutcomeSeeded: the loader ran but reported containment seeding from a
	// cached superset entry.
	OutcomeSeeded Outcome = "seeded"
)

// entry is one stored key/value pair; list elements carry *entry. advanced
// marks an entry installed by PutAdvanced and is cleared on its first hit,
// so exactly one caller observes OutcomeAdvanced per advance.
type entry struct {
	key      string
	val      any
	advanced bool
}

// flight is one in-progress evaluation that followers wait on; outcome is
// the leader's, mirrored to every coalesced caller.
type flight struct {
	done    chan struct{}
	val     any
	err     error
	outcome Outcome
}

// Cache is a fixed-capacity LRU with singleflight admission, safe for
// concurrent use. The zero value is not usable; construct with New.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List               // front = most recently used
	items    map[string]*list.Element // key -> element holding *entry
	inflight map[string]*flight
	stats    Stats
}

// New returns a cache holding at most capacity entries (minimum 1).
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// Do returns the value stored under key, evaluating fn on a miss. At most
// one evaluation per key runs at a time: concurrent callers of a missing
// key block until the leader's fn returns, then share its result. A
// successful value is stored (evicting the least recently used entry past
// capacity); an error is delivered to the leader and every waiter but is
// not cached, so the next caller retries.
func (c *Cache) Do(key string, fn func() (any, error)) (any, error) {
	//lint:allow verkey internal delegation: key discipline is the admission caller's, enforced at their call sites
	v, _, err := c.DoStatus(key, func() (any, bool, error) {
		v, err := fn()
		return v, false, err
	})
	return v, err
}

// DoStatus is Do with provenance: the loader additionally reports whether
// its evaluation was containment-seeded from a cached superset entry, and
// the call returns how it was served (hit, miss, advanced or seeded).
// Coalesced callers are reported with their leader's outcome.
func (c *Cache) DoStatus(key string, fn func() (any, bool, error)) (any, Outcome, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		en := el.Value.(*entry)
		out := OutcomeHit
		if en.advanced {
			out = OutcomeAdvanced
			en.advanced = false
		}
		v := en.val
		c.mu.Unlock()
		return v, out, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.stats.Coalesced++
		c.mu.Unlock()
		<-f.done
		return f.val, f.outcome, f.err
	}
	f := &flight{done: make(chan struct{}), outcome: OutcomeMiss}
	c.inflight[key] = f
	c.stats.Misses++
	c.mu.Unlock()

	// If fn panics, fail the flight instead of leaving it registered: the
	// waiters unblock with an error, the key stays uncached so the next
	// caller retries, and the panic propagates to the leader.
	settled := false
	defer func() {
		if settled {
			return
		}
		f.val, f.err = nil, fmt.Errorf("cache: evaluation of key %q panicked", key)
		c.mu.Lock()
		delete(c.inflight, key)
		c.mu.Unlock()
		close(f.done)
	}()

	var seeded bool
	f.val, seeded, f.err = fn()
	settled = true

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		if seeded {
			f.outcome = OutcomeSeeded
			c.stats.Seeded++
		}
		c.store(key, f.val, false)
	}
	c.mu.Unlock()
	close(f.done)
	return f.val, f.outcome, f.err
}

// PutAdvanced installs an entry produced by the commit-time advance pass:
// the stored value is byte-identical to what a cold evaluation under key
// would produce, so it is admitted directly. The entry's first hit reports
// OutcomeAdvanced; later hits are ordinary hits.
func (c *Cache) PutAdvanced(key string, val any) {
	c.mu.Lock()
	c.stats.Advanced++
	c.store(key, val, true)
	c.mu.Unlock()
}

// store inserts or refreshes key under the lock, evicting past capacity.
func (c *Cache) store(key string, val any, advanced bool) {
	if el, ok := c.items[key]; ok {
		en := el.Value.(*entry)
		en.val = val
		en.advanced = advanced
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, val: val, advanced: advanced})
	for c.ll.Len() > c.capacity {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*entry).key)
		c.stats.Evictions++
	}
}

// Len returns the number of stored entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	return s
}
