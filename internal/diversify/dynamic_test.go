package diversify

import (
	"fmt"
	"math/rand"
	"testing"

	"divtopk/internal/core"
	"divtopk/internal/gen"
	"divtopk/internal/graph"
)

// dynState tracks the logical node/edge content of an evolving graph so a
// from-scratch rebuild can oracle the delta chain.
type dynState struct {
	labels []string
	edges  map[[2]graph.NodeID]bool
}

func (s *dynState) rebuild() *graph.Graph {
	b := graph.NewBuilder()
	for _, l := range s.labels {
		b.AddNode(l, nil)
	}
	for e := range s.edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

// randomDivDelta mutates s and returns the matching delta.
func randomDivDelta(rng *rand.Rand, s *dynState, labels int) *graph.Delta {
	var d graph.Delta
	for a := rng.Intn(3); a > 0; a-- {
		l := fmt.Sprintf("L%d", rng.Intn(labels))
		d.AddNode(l, nil)
		s.labels = append(s.labels, l)
	}
	n := len(s.labels)
	for a := 1 + rng.Intn(10); a > 0; a-- {
		e := [2]graph.NodeID{graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))}
		d.InsertEdge(e[0], e[1])
		s.edges[e] = true
	}
	var candidates [][2]graph.NodeID
	for e := range s.edges {
		candidates = append(candidates, e)
	}
	for a := rng.Intn(5); a > 0 && len(candidates) > 0; a-- {
		i := rng.Intn(len(candidates))
		e := candidates[i]
		inserted := false
		for _, ie := range d.EdgeInserts {
			if ie == e {
				inserted = true
				break
			}
		}
		if !inserted {
			d.DeleteEdge(e[0], e[1])
			delete(s.edges, e)
		}
		candidates[i] = candidates[len(candidates)-1]
		candidates = candidates[:len(candidates)-1]
	}
	return &d
}

// TestDynamicGraphDiversifiedEquivalence closes the delta-equivalence loop
// at the algorithm layer: graphs evolved through ApplyDelta chains must be
// indistinguishable from from-scratch rebuilds to every diversified
// algorithm — TopKDiv under both kernels, TopKDH — at Parallelism 1 and 8,
// byte for byte (nodes, bounds, relevant sets, F).
func TestDynamicGraphDiversifiedEquivalence(t *testing.T) {
	const labels = 5
	const k, lambda = 5, 0.5
	for seed := int64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			// Start from a generator graph so mined patterns have matches.
			g := gen.Synthetic(gen.SynthConfig{N: 150, M: 900, Labels: labels, Seed: seed})
			ps, err := gen.Suite(g, gen.PatternConfig{Nodes: 3, Edges: 4, Seed: seed}, 1)
			if err != nil {
				t.Fatalf("pattern generation: %v", err)
			}
			p := ps[0]

			st := &dynState{edges: map[[2]graph.NodeID]bool{}}
			for v := 0; v < g.NumNodes(); v++ {
				st.labels = append(st.labels, g.Label(graph.NodeID(v)))
			}
			for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
				for _, w := range g.Out(v) {
					st.edges[[2]graph.NodeID{v, w}] = true
				}
			}

			rng := rand.New(rand.NewSource(seed * 101))
			for step := 0; step < 6; step++ {
				d := randomDivDelta(rng, st, labels)
				g2, err := graph.ApplyDelta(g, d)
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				g = g2
				rebuilt := st.rebuild()

				for _, kernel := range []core.Kernel{core.KernelCSR, core.KernelReference} {
					for _, par := range []int{1, 8} {
						opts := core.Options{Kernel: kernel, Parallelism: par}
						label := fmt.Sprintf("step %d kernel %s par %d", step, kernel, par)

						inc, err := TopKDivOpts(g, p, k, lambda, opts)
						if err != nil {
							t.Fatalf("%s: delta graph: %v", label, err)
						}
						ora, err := TopKDivOpts(rebuilt, p, k, lambda, opts)
						if err != nil {
							t.Fatalf("%s: rebuilt graph: %v", label, err)
						}
						if got, want := serializeDiv(inc), serializeDiv(ora); got != want {
							t.Fatalf("%s: TopKDiv differs between delta-evolved and rebuilt graph\ndelta:\n%s\nrebuilt:\n%s", label, got, want)
						}
					}
				}
				for _, par := range []int{1, 8} {
					opts := core.Options{Parallelism: par}
					inc, err := TopKDH(g, p, k, lambda, opts)
					if err != nil {
						t.Fatalf("step %d par %d: TopKDH delta graph: %v", step, par, err)
					}
					ora, err := TopKDH(rebuilt, p, k, lambda, opts)
					if err != nil {
						t.Fatalf("step %d par %d: TopKDH rebuilt graph: %v", step, par, err)
					}
					if got, want := serializeDiv(inc), serializeDiv(ora); got != want {
						t.Fatalf("step %d par %d: TopKDH differs\ndelta:\n%s\nrebuilt:\n%s", step, par, got, want)
					}
				}
			}
		})
	}
}
