package diversify

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"divtopk/internal/core"
	"divtopk/internal/gen"
	"divtopk/internal/graph"
)

// serializeMatches renders a match slice byte-exactly: node, bounds,
// exactness and the full relevant set of every match. Two results with equal
// serializations are indistinguishable to any caller.
func serializeMatches(ms []core.Match) string {
	var b strings.Builder
	for _, m := range ms {
		fmt.Fprintf(&b, "%d rel=%d up=%d exact=%v", m.Node, m.Relevance, m.Upper, m.Exact)
		if m.R != nil {
			fmt.Fprintf(&b, " R=%s", m.R.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func serializeBaseline(r *core.Result) string {
	return fmt.Sprintf("global=%v cuo=%d found=%d\nALL:\n%sTOP:\n%s",
		r.GlobalMatch, r.Cuo, r.Stats.MatchesFound, serializeMatches(r.All), serializeMatches(r.Matches))
}

func serializeDiv(r *Result) string {
	return fmt.Sprintf("global=%v f=%.17g cuo=%d\n%s",
		r.GlobalMatch, r.F, r.Params.Cuo, serializeMatches(r.Matches))
}

// TestKernelOracleProperty is the referee of the product-CSR refactor: over
// the generator graphs with seeds 1..20, the find-all baseline and TopKDiv
// must produce byte-identical output under the new CSR kernel at every
// Parallelism 1..8 as under the frozen pre-refactor reference kernel, and
// TopK (which has no reference twin — the engine itself was rewritten onto
// the CSR) must be byte-identical across Parallelism 1..8 and agree with the
// reference baseline on every exact relevance.
func TestKernelOracleProperty(t *testing.T) {
	const k = 5
	const lambda = 0.5
	for seed := int64(1); seed <= 20; seed++ {
		g := gen.Synthetic(gen.SynthConfig{N: 400, M: 2400, Seed: seed})
		ps, err := gen.Suite(g, gen.PatternConfig{
			Nodes: 4, Edges: 5, Cyclic: seed%2 == 0, Predicates: seed%3 == 0, Seed: seed,
		}, 1)
		if err != nil {
			// Cyclic mining can fail on sparse instances; retry acyclic.
			ps, err = gen.Suite(g, gen.PatternConfig{Nodes: 4, Edges: 5, Seed: seed}, 1)
			if err != nil {
				t.Fatalf("seed %d: pattern generation: %v", seed, err)
			}
		}
		p := ps[0]

		refBase, err := core.MatchBaselineOpts(g, p, k, true, core.Options{
			Kernel: core.KernelReference, Parallelism: 1,
		})
		if err != nil {
			t.Fatalf("seed %d: reference baseline: %v", seed, err)
		}
		wantBase := serializeBaseline(refBase)

		refDiv, err := TopKDivOpts(g, p, k, lambda, core.Options{
			Kernel: core.KernelReference, Parallelism: 1,
		})
		if err != nil {
			t.Fatalf("seed %d: reference TopKDiv: %v", seed, err)
		}
		wantDiv := serializeDiv(refDiv)

		var wantTopK string
		for par := 1; par <= 8; par++ {
			opts := core.Options{Parallelism: par}

			base, err := core.MatchBaselineOpts(g, p, k, true, opts)
			if err != nil {
				t.Fatalf("seed %d par %d: baseline: %v", seed, par, err)
			}
			if got := serializeBaseline(base); got != wantBase {
				t.Fatalf("seed %d par %d: baseline diverges from reference kernel\nref:\n%s\ncsr:\n%s",
					seed, par, wantBase, got)
			}

			div, err := TopKDivOpts(g, p, k, lambda, opts)
			if err != nil {
				t.Fatalf("seed %d par %d: TopKDiv: %v", seed, par, err)
			}
			if got := serializeDiv(div); got != wantDiv {
				t.Fatalf("seed %d par %d: TopKDiv diverges from reference kernel\nref:\n%s\ncsr:\n%s",
					seed, par, wantDiv, got)
			}

			topk, err := core.TopK(g, p, k, opts)
			if err != nil {
				t.Fatalf("seed %d par %d: TopK: %v", seed, par, err)
			}
			got := serializeBaseline(topk)
			if par == 1 {
				wantTopK = got
			} else if got != wantTopK {
				t.Fatalf("seed %d: TopK diverges between Parallelism 1 and %d\npar1:\n%s\npar%d:\n%s",
					seed, par, wantTopK, par, got)
			}
			checkTopKAgainstBaseline(t, seed, par, topk, refBase, k)
		}
	}
}

// checkTopKAgainstBaseline verifies the engine's answer against the
// reference find-all oracle: exact relevances must match the baseline's
// δr, and the selected top-k must be a valid top-k set (same multiset of
// relevance values as the baseline's k best).
func checkTopKAgainstBaseline(t *testing.T, seed int64, par int, topk, base *core.Result, k int) {
	t.Helper()
	if topk.GlobalMatch != base.GlobalMatch {
		t.Fatalf("seed %d par %d: GlobalMatch %v vs baseline %v", seed, par, topk.GlobalMatch, base.GlobalMatch)
	}
	if !topk.GlobalMatch {
		return
	}
	exact := make(map[graph.NodeID]int, len(base.All))
	for _, m := range base.All {
		exact[m.Node] = m.Relevance
	}
	for _, m := range topk.All {
		if m.Exact && exact[m.Node] != m.Relevance {
			t.Fatalf("seed %d par %d: exact relevance of node %d = %d, oracle %d",
				seed, par, m.Node, m.Relevance, exact[m.Node])
		}
	}
	want := relevanceMultiset(base.Matches)
	got := relevanceMultiset(topk.Matches)
	if want != got {
		t.Fatalf("seed %d par %d: top-%d relevance multiset %s, oracle %s", seed, par, k, got, want)
	}
}

func relevanceMultiset(ms []core.Match) string {
	rels := make([]int, len(ms))
	for i, m := range ms {
		rels[i] = m.Relevance
	}
	sort.Ints(rels)
	return fmt.Sprint(rels)
}
