package diversify

import (
	"divtopk/internal/core"
	"divtopk/internal/graph"
	"divtopk/internal/pattern"
	"divtopk/internal/ranking"
)

// TopKDivGeneral is the generalized diversified top-k of Prop. 6: TopKDiv
// with the default δr/δd swapped for arbitrary generalized relevance and
// distance functions of §3.4. As long as dist is a metric the reduction to
// maximum dispersion still applies and the 2-approximation ratio carries
// over (the relevance side only needs monotonicity, which all registered
// functions satisfy).
//
// rel scores a match from its exact relevant set (plus the descendant-match
// context); dist measures dissimilarity of two matches. Relevance values
// are normalized by their maximum over the match set so the λ balance
// behaves like the C_uo normalization of the default instantiation.
func TopKDivGeneral(g *graph.Graph, p *pattern.Pattern, k int, lambda float64,
	rel ranking.RelevanceFunc, dist ranking.DistanceFunc) (*Result, error) {

	params := ranking.DiversifyParams{Lambda: lambda, K: k}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	gen, err := core.RankedGeneralized(g, p, max(k, 1), rel)
	if err != nil {
		return nil, err
	}
	params.Cuo = gen.Cuo
	res := &Result{Params: params, Stats: gen.Stats, GlobalMatch: gen.GlobalMatch}
	if !gen.GlobalMatch {
		return res, nil
	}

	pool := gen.All
	scores := gen.Scores
	// Normalize relevance to [0,1] by the pool maximum (the generalized
	// counterpart of δ'r = δr/C_uo).
	maxScore := 0.0
	for _, s := range scores {
		if s > maxScore {
			maxScore = s
		}
	}
	normRel := make([]float64, len(pool))
	for i, s := range scores {
		if maxScore > 0 {
			normRel[i] = s / maxScore
		}
	}
	distOf := func(i, j int) float64 {
		return dist.Dist(ranking.DistanceInput{
			R1: pool[i].R, R2: pool[j].R,
			V1: pool[i].Node, V2: pool[j].Node,
			NumNodes: g.NumNodes(), Graph: g,
		})
	}
	fOf := func(sel []int) float64 {
		nr := make([]float64, len(sel))
		for i, idx := range sel {
			nr[i] = normRel[idx]
		}
		return params.F(nr, func(a, b int) float64 { return distOf(sel[a], sel[b]) })
	}

	if len(pool) <= k {
		sel := make([]int, len(pool))
		for i := range sel {
			sel[i] = i
		}
		for _, idx := range sel {
			res.Matches = append(res.Matches, pool[idx])
		}
		res.F = fOf(sel)
		return res, nil
	}

	taken := make([]bool, len(pool))
	var picked []int
	for len(picked)+1 < k {
		bi, bj, best := -1, -1, -1.0
		for i := 0; i < len(pool); i++ {
			if taken[i] {
				continue
			}
			for j := i + 1; j < len(pool); j++ {
				if taken[j] {
					continue
				}
				f := params.FPrime(normRel[i], normRel[j], distOf(i, j))
				if f > best {
					best, bi, bj = f, i, j
				}
			}
		}
		if bi < 0 {
			break
		}
		taken[bi], taken[bj] = true, true
		picked = append(picked, bi, bj)
	}
	if len(picked) < k {
		bi, best := -1, -1.0
		for i := 0; i < len(pool); i++ {
			if taken[i] {
				continue
			}
			if f := fOf(append(picked[:len(picked):len(picked)], i)); f > best {
				best, bi = f, i
			}
		}
		if bi >= 0 {
			picked = append(picked, bi)
		}
	}

	for _, idx := range picked {
		res.Matches = append(res.Matches, pool[idx])
	}
	res.F = fOf(picked)
	return res, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
