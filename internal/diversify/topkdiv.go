// Package diversify implements the diversified top-k matching algorithms of
// §5: TopKDiv, the 2-approximation that evaluates the whole match set and
// greedily assembles k/2 pairs maximizing the pair objective F' (a reduction
// to maximum dispersion [Hassin-Rubinstein-Tamir]); and TopKDH/TopKDAGDH,
// the early-termination heuristics that ride the incremental engine of
// internal/core and greedily swap matches to maximize the partial objective
// F” as they are discovered.
package diversify

import (
	"divtopk/internal/bitset"
	"divtopk/internal/core"
	"divtopk/internal/graph"
	"divtopk/internal/pattern"
	"divtopk/internal/ranking"
)

// Result is the outcome of a diversified top-k computation.
type Result struct {
	// Matches is the selected k-set (order: selection order, not ranked —
	// F is a set objective).
	Matches []core.Match
	// F is the diversification objective value of Matches under the exact
	// relevant sets available to the algorithm at termination.
	F float64
	// Params echoes λ, k and C_uo used.
	Params ranking.DiversifyParams
	// Stats carries the work counters of the underlying evaluation.
	Stats core.Stats
	// GlobalMatch reports whether G matches Q.
	GlobalMatch bool
}

// TopKDiv is the 2-approximation of §5.1. It computes all matches of the
// output node with their exact relevant sets (like the baseline Match),
// normalizes relevance by C_uo, and then greedily picks ⌊k/2⌋ disjoint pairs
// maximizing F'(v1,v2); for odd k a final single match maximizing the F gain
// is added. The returned set S satisfies F(S) ≥ F(S*)/2.
func TopKDiv(g *graph.Graph, p *pattern.Pattern, k int, lambda float64) (*Result, error) {
	params := ranking.DiversifyParams{Lambda: lambda, K: k}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	base, err := core.MatchBaseline(g, p, k, true)
	if err != nil {
		return nil, err
	}
	params.Cuo = base.Cuo
	res := &Result{Params: params, Stats: base.Stats, GlobalMatch: base.GlobalMatch}
	if !base.GlobalMatch {
		return res, nil
	}

	pool := base.All
	if len(pool) <= k {
		res.Matches = append(res.Matches, pool...)
		res.F = evalF(params, res.Matches)
		return res, nil
	}

	normRel := make([]float64, len(pool))
	for i, m := range pool {
		normRel[i] = params.NormRel(float64(m.Relevance))
	}
	taken := make([]bool, len(pool))
	var picked []int

	// ⌊k/2⌋ greedy pair selections by F'.
	for len(picked)+1 < k {
		bi, bj, best := -1, -1, -1.0
		for i := 0; i < len(pool); i++ {
			if taken[i] {
				continue
			}
			for j := i + 1; j < len(pool); j++ {
				if taken[j] {
					continue
				}
				f := params.FPrime(normRel[i], normRel[j], ranking.Distance(pool[i].R, pool[j].R))
				if f > best {
					best, bi, bj = f, i, j
				}
			}
		}
		if bi < 0 {
			break
		}
		taken[bi], taken[bj] = true, true
		picked = append(picked, bi, bj)
	}

	// Odd k: add the single match maximizing F(S ∪ {v}).
	if len(picked) < k {
		cur := make([]core.Match, len(picked))
		for i, idx := range picked {
			cur[i] = pool[idx]
		}
		bi, best := -1, -1.0
		for i := 0; i < len(pool); i++ {
			if taken[i] {
				continue
			}
			f := evalF(params, append(cur[:len(cur):len(cur)], pool[i]))
			if f > best {
				best, bi = f, i
			}
		}
		if bi >= 0 {
			taken[bi] = true
			picked = append(picked, bi)
		}
	}

	for _, idx := range picked {
		res.Matches = append(res.Matches, pool[idx])
	}
	res.F = evalF(params, res.Matches)
	return res, nil
}

// evalF evaluates the diversification function F on a match slice using
// exact set relevance and Jaccard distances.
func evalF(params ranking.DiversifyParams, ms []core.Match) float64 {
	sets := make([]*bitset.Set, len(ms))
	for i, m := range ms {
		sets[i] = m.R
	}
	return params.FSets(sets)
}

// BruteForceBest enumerates every k-subset of the pool and returns the
// maximum F value. Exponential; used by tests to check the approximation
// ratio and by tiny interactive queries.
func BruteForceBest(params ranking.DiversifyParams, pool []core.Match, k int) float64 {
	if k > len(pool) {
		k = len(pool)
	}
	best := -1.0
	idx := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			sel := make([]core.Match, k)
			for i, j := range idx {
				sel[i] = pool[j]
			}
			if f := evalF(params, sel); f > best {
				best = f
			}
			return
		}
		for i := start; i <= len(pool)-(k-depth); i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	return best
}
