// Package diversify implements the diversified top-k matching algorithms of
// §5: TopKDiv, the 2-approximation that evaluates the whole match set and
// greedily assembles k/2 pairs maximizing the pair objective F' (a reduction
// to maximum dispersion [Hassin-Rubinstein-Tamir]); and TopKDH/TopKDAGDH,
// the early-termination heuristics that ride the incremental engine of
// internal/core and greedily swap matches to maximize the partial objective
// F” as they are discovered.
package diversify

import (
	"math/bits"
	"sort"

	"divtopk/internal/bitset"
	"divtopk/internal/core"
	"divtopk/internal/graph"
	"divtopk/internal/parallel"
	"divtopk/internal/pattern"
	"divtopk/internal/ranking"
)

// Result is the outcome of a diversified top-k computation.
type Result struct {
	// Matches is the selected k-set (order: selection order, not ranked —
	// F is a set objective).
	Matches []core.Match
	// F is the diversification objective value of Matches under the exact
	// relevant sets available to the algorithm at termination.
	F float64
	// Params echoes λ, k and C_uo used.
	Params ranking.DiversifyParams
	// Stats carries the work counters of the underlying evaluation.
	Stats core.Stats
	// GlobalMatch reports whether G matches Q.
	GlobalMatch bool
}

// TopKDiv is the 2-approximation of §5.1. It computes all matches of the
// output node with their exact relevant sets (like the baseline Match),
// normalizes relevance by C_uo, and then greedily picks ⌊k/2⌋ disjoint pairs
// maximizing F'(v1,v2); for odd k a final single match maximizing the F gain
// is added. The returned set S satisfies F(S) ≥ F(S*)/2.
func TopKDiv(g *graph.Graph, p *pattern.Pattern, k int, lambda float64) (*Result, error) {
	return TopKDivOpts(g, p, k, lambda, core.Options{})
}

// TopKDivOpts is TopKDiv with engine options; only Options.Parallelism is
// consulted. It parallelizes the two measured hot spots — candidate
// computation inside the find-all baseline, and the O(|M|²) greedy pair
// scan, which fans out by row with a per-worker argmax and a deterministic
// lexicographic reduce — so every worker count selects exactly the pairs the
// sequential scan selects.
func TopKDivOpts(g *graph.Graph, p *pattern.Pattern, k int, lambda float64, opts core.Options) (*Result, error) {
	params := ranking.DiversifyParams{Lambda: lambda, K: k}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	base, err := core.MatchBaselineOpts(g, p, k, true, opts)
	if err != nil {
		return nil, err
	}
	return TopKDivFromBase(base, k, lambda, opts)
}

// TopKDivFromBase is the greedy-selection half of TopKDiv: it re-ranks an
// already evaluated find-all result (MatchBaselineOpts with keepSets=true).
// The matcher's warm result cache uses it to refresh a diversified entry
// after a delta advanced its match pool, skipping the evaluation half.
// Only Options.Parallelism is consulted; base is read-only.
func TopKDivFromBase(base *core.Result, k int, lambda float64, opts core.Options) (*Result, error) {
	params := ranking.DiversifyParams{Lambda: lambda, K: k}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	params.Cuo = base.Cuo
	res := &Result{Params: params, Stats: base.Stats, GlobalMatch: base.GlobalMatch}
	if !base.GlobalMatch {
		return res, nil
	}

	pool := base.All
	if len(pool) <= k {
		res.Matches = append(res.Matches, pool...)
		res.F = evalF(params, res.Matches)
		return res, nil
	}

	normRel := make([]float64, len(pool))
	sparse := make([]sparseSet, len(pool))
	counts := make([]int, len(pool))
	for i, m := range pool {
		normRel[i] = params.NormRel(float64(m.Relevance))
		sparse[i] = newSparseSet(m.R)
		if m.R != nil {
			counts[i] = m.R.Count()
		}
	}
	taken := make([]bool, len(pool))
	var picked []int

	// ⌊k/2⌋ greedy pair selections by F'.
	workers := opts.Workers()
	for len(picked)+1 < k {
		bi, bj := bestPair(params, normRel, sparse, counts, taken, workers)
		if bi < 0 {
			break
		}
		taken[bi], taken[bj] = true, true
		picked = append(picked, bi, bj)
	}

	// Odd k: add the single match maximizing F(S ∪ {v}).
	if len(picked) < k {
		cur := make([]core.Match, len(picked))
		for i, idx := range picked {
			cur[i] = pool[idx]
		}
		bi, best := -1, -1.0
		for i := 0; i < len(pool); i++ {
			if taken[i] {
				continue
			}
			f := evalF(params, append(cur[:len(cur):len(cur)], pool[i]))
			if f > best {
				best, bi = f, i
			}
		}
		if bi >= 0 {
			taken[bi] = true
			picked = append(picked, bi)
		}
	}

	for _, idx := range picked {
		res.Matches = append(res.Matches, pool[idx])
	}
	res.F = evalF(params, res.Matches)
	return res, nil
}

// pairArg is one worker's argmax over its stripe of the pair scan.
type pairArg struct {
	i, j int
	f    float64
}

// better reports whether candidate (i, j, f) beats the current best under
// the scan's total order: larger F' first, then lexicographically smaller
// (i, j). This is exactly the pair a sequential row-major scan with strict
// improvement returns (the first pair, in row-major order, among those
// attaining the maximum), expressed as an order so any iteration order —
// worker stripes, the descending-relevance pruning order below — yields the
// same winner.
func (b pairArg) better(i, j int, f float64) bool {
	return f > b.f || (f == b.f && (i < b.i || (i == b.i && j < b.j)))
}

// sparseSet is a bitset projected to its nonzero words: relevant sets are
// sparse in the relevance universe (|R| bits out of |space|), so pairwise
// intersection counts merge two short word lists instead of scanning the
// full width. The greedy pair scan evaluates O(|M|²) distances; this
// projection is where TopKDiv's constant factor lives.
type sparseSet struct {
	idx   []int32
	words []uint64
}

func newSparseSet(s *bitset.Set) sparseSet {
	if s == nil {
		return sparseSet{}
	}
	var sp sparseSet
	s.ForEachWord(func(i int, w uint64) {
		sp.idx = append(sp.idx, int32(i))
		sp.words = append(sp.words, w)
	})
	return sp
}

// intersectCount merges the two nonzero-word lists.
func (a sparseSet) intersectCount(b sparseSet) int {
	i, j, c := 0, 0, 0
	for i < len(a.idx) && j < len(b.idx) {
		ai, bj := a.idx[i], b.idx[j]
		switch {
		case ai < bj:
			i++
		case ai > bj:
			j++
		default:
			c += bits.OnesCount64(a.words[i] & b.words[j])
			i++
			j++
		}
	}
	return c
}

// sparseDistance is δd over sparse sets with precomputed cardinalities:
// 1 − |∩| / (c1 + c2 − |∩|), the same integers (and therefore the same
// float64) as ranking.Distance on the dense sets.
func sparseDistance(a, b sparseSet, ca, cb int) float64 {
	inter := a.intersectCount(b)
	union := ca + cb - inter
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

// bestPair returns the untaken pair (i, j), i < j, maximizing F', resolving
// ties to the first pair in row-major order — the pair a sequential
// row-major scan returns. The scan iterates candidates in descending
// normalized relevance and cuts each anchor's partner loop as soon as the
// F' upper bound (distance = 1, the metric's maximum) drops below the
// current best, which is sound because F' is monotone in both relevance and
// distance; anchors are dealt to workers round-robin and the reduce applies
// the same explicit total order, so every worker count selects the same
// pair. Returns (-1, -1) when fewer than two untaken matches remain.
func bestPair(params ranking.DiversifyParams, normRel []float64, sparse []sparseSet, counts []int, taken []bool, workers int) (int, int) {
	order := make([]int, 0, len(normRel))
	for i := range normRel {
		if !taken[i] {
			order = append(order, i)
		}
	}
	n := len(order)
	if n < 2 {
		return -1, -1
	}
	sort.Slice(order, func(x, y int) bool {
		if normRel[order[x]] != normRel[order[y]] {
			return normRel[order[x]] > normRel[order[y]]
		}
		return order[x] < order[y]
	})
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	args := make([]pairArg, workers)
	parallel.ForEach(workers, workers, func(w int) {
		best := pairArg{i: -1, j: -1, f: -1.0}
		for a := w; a < n; a += workers {
			pi := order[a]
			ri := normRel[pi]
			for b := a + 1; b < n; b++ {
				pj := order[b]
				rj := normRel[pj]
				// Partners come in non-increasing relevance, so once even a
				// distance-1 partner cannot beat the best, none can.
				if params.FPrime(ri, rj, 1) < best.f {
					break
				}
				f := params.FPrime(ri, rj, sparseDistance(sparse[pi], sparse[pj], counts[pi], counts[pj]))
				lo, hi := pi, pj
				if lo > hi {
					lo, hi = hi, lo
				}
				if best.better(lo, hi, f) {
					best = pairArg{i: lo, j: hi, f: f}
				}
			}
		}
		args[w] = best
	})
	win := pairArg{i: -1, j: -1, f: -1.0}
	for _, a := range args {
		if a.i >= 0 && win.better(a.i, a.j, a.f) {
			win = a
		}
	}
	return win.i, win.j
}

// evalF evaluates the diversification function F on a match slice using
// exact set relevance and Jaccard distances.
func evalF(params ranking.DiversifyParams, ms []core.Match) float64 {
	sets := make([]*bitset.Set, len(ms))
	for i, m := range ms {
		sets[i] = m.R
	}
	return params.FSets(sets)
}

// BruteForceBest enumerates every k-subset of the pool and returns the
// maximum F value. Exponential; used by tests to check the approximation
// ratio and by tiny interactive queries.
func BruteForceBest(params ranking.DiversifyParams, pool []core.Match, k int) float64 {
	if k > len(pool) {
		k = len(pool)
	}
	best := -1.0
	idx := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			sel := make([]core.Match, k)
			for i, j := range idx {
				sel[i] = pool[j]
			}
			if f := evalF(params, sel); f > best {
				best = f
			}
			return
		}
		for i := start; i <= len(pool)-(k-depth); i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	return best
}
