package diversify

import (
	"fmt"

	"divtopk/internal/bitset"
	"divtopk/internal/core"
	"divtopk/internal/graph"
	"divtopk/internal/pattern"
	"divtopk/internal/ranking"
)

// TopKDH is the early-termination diversification heuristic of §5.2. It
// runs the incremental engine exactly like TopK (same propagation, same
// Proposition-3 termination), but selects the returned set greedily by the
// partial objective F”: per batch, newly discovered matches of the output
// node either fill S (while |S| < k) or replace the member whose swap
// maximizes F”(S\{v}∪{v'}) − F”(S), where F” evaluates relevance by the
// current lower bounds v.l/C_uo and distance by the Jaccard of the current
// partial relevant sets (Example 10).
func TopKDH(g *graph.Graph, p *pattern.Pattern, k int, lambda float64, opts core.Options) (*Result, error) {
	params := ranking.DiversifyParams{Lambda: lambda, K: k}
	if err := params.Validate(); err != nil {
		return nil, err
	}

	sel := &swapSelector{k: k, params: &params}
	opts.Hook = sel
	engRes, err := core.TopK(g, p, k, opts)
	if err != nil {
		return nil, err
	}
	params.Cuo = engRes.Cuo
	res := &Result{Params: params, Stats: engRes.Stats, GlobalMatch: engRes.GlobalMatch}
	if !engRes.GlobalMatch {
		return res, nil
	}

	// Map the selector's choice to the final engine state. (The handles
	// referenced live state; the result carries the settled values.) Every
	// member was handed to the selector as a discovered match of uo, so it
	// must appear in All; a miss means the engine and selector disagree
	// about the discovered set, and silently dropping it would return fewer
	// than min(k, |Mu|) matches with no signal.
	final := make(map[graph.NodeID]core.Match, len(engRes.All))
	for _, m := range engRes.All {
		final[m.Node] = m
	}
	for _, n := range sel.members {
		m, ok := final[n]
		if !ok {
			return nil, fmt.Errorf("diversify: internal error: selected match %d missing from final engine state", n)
		}
		res.Matches = append(res.Matches, m)
	}
	// Note: with early termination the relevant sets behind res.Matches may
	// be partial, so this F is the heuristic's own estimate. Use ExactF to
	// score the selected set under the true diversification function (what
	// the paper's Fig. 5(i) compares).
	res.F = evalF(params, res.Matches)
	return res, nil
}

// ExactF evaluates the true diversification function F on a set of output
// matches, recomputing their exact relevant sets via full evaluation. It is
// the scoring used when comparing TopKDH's answer quality against TopKDiv's
// (the heuristic's own Result.F is based on possibly-partial sets).
func ExactF(g *graph.Graph, p *pattern.Pattern, nodes []graph.NodeID, lambda float64, k int) (float64, error) {
	params := ranking.DiversifyParams{Lambda: lambda, K: k}
	if err := params.Validate(); err != nil {
		return 0, err
	}
	base, err := core.MatchBaseline(g, p, k, true)
	if err != nil {
		return 0, err
	}
	params.Cuo = base.Cuo
	byNode := make(map[graph.NodeID]core.Match, len(base.All))
	for _, m := range base.All {
		byNode[m.Node] = m
	}
	sel := make([]core.Match, 0, len(nodes))
	for _, n := range nodes {
		m, ok := byNode[n]
		if !ok {
			return 0, fmt.Errorf("diversify: node %d is not a match", n)
		}
		sel = append(sel, m)
	}
	return evalF(params, sel), nil
}

// TopKDAGDH is TopKDH restricted to DAG patterns, mirroring the paper's
// experiment naming; it rejects cyclic patterns like TopKDAG does.
func TopKDAGDH(g *graph.Graph, p *pattern.Pattern, k int, lambda float64, opts core.Options) (*Result, error) {
	if !p.IsDAG() {
		return nil, core.ErrNotDAG
	}
	return TopKDH(g, p, k, lambda, opts)
}

// swapSelector maintains the heuristic set S across engine batches.
type swapSelector struct {
	k      int
	params *ranking.DiversifyParams

	members []graph.NodeID
	sets    []*bitset.Set // live views of the members' partial R sets
	handles []core.PairHandle
}

// Begin implements core.Hook: F” needs C_uo before the first swap.
func (s *swapSelector) Begin(cuo int) { s.params.Cuo = cuo }

// Batch implements core.Hook.
func (s *swapSelector) Batch(newMatches []core.PairHandle) {
	for _, h := range newMatches {
		if len(s.members) < s.k {
			s.add(h)
			continue
		}
		s.trySwap(h)
	}
}

func (s *swapSelector) add(h core.PairHandle) {
	s.members = append(s.members, h.Node())
	s.sets = append(s.sets, h.R())
	s.handles = append(s.handles, h)
}

// trySwap replaces the member whose substitution by h maximizes the F” gain
// (if any gain is positive).
func (s *swapSelector) trySwap(h core.PairHandle) {
	cur := s.fpp(-1, core.PairHandle{})
	bestGain, bestIdx := 0.0, -1
	for i := range s.members {
		f := s.fpp(i, h)
		if gain := f - cur; gain > bestGain {
			bestGain, bestIdx = gain, i
		}
	}
	if bestIdx >= 0 {
		s.members[bestIdx] = h.Node()
		s.sets[bestIdx] = h.R()
		s.handles[bestIdx] = h
	}
}

// fpp evaluates F” on the current members with member `replace` substituted
// by h (replace = -1 evaluates the set as-is). Relevance uses the live lower
// bounds, distance the live partial relevant sets.
func (s *swapSelector) fpp(replace int, h core.PairHandle) float64 {
	normRel := make([]float64, len(s.members))
	sets := make([]*bitset.Set, len(s.members))
	for i := range s.members {
		if i == replace {
			normRel[i] = s.params.NormRel(float64(h.Lower()))
			sets[i] = h.R()
		} else {
			normRel[i] = s.params.NormRel(float64(s.handles[i].Lower()))
			sets[i] = s.sets[i]
		}
	}
	return s.params.F(normRel, func(i, j int) float64 {
		return ranking.Distance(sets[i], sets[j])
	})
}
