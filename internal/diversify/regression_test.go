package diversify

import (
	"testing"

	"divtopk/internal/core"
	"divtopk/internal/gen"
	"divtopk/internal/graph"
	"divtopk/internal/simulation"
)

// TestTopKDHReturnsMinKMu locks in the selector invariant behind the
// missing-member fix: TopKDH must return exactly min(k, |Mu|) matches
// whenever G matches Q — the selector fills S from every discovered match
// and the engine discovers at least min(k, |Mu|) of them — and never
// silently drop a selected member that it cannot find in the final engine
// state.
func TestTopKDHReturnsMinKMu(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"youtube":   gen.YouTubeLike(2_000, 20_000, 7),
		"citation":  gen.CitationLike(2_000, 18_000, 8),
		"synthetic": gen.Synthetic(gen.SynthConfig{N: 2_000, M: 19_000, Seed: 9}),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 6; seed++ {
				// Cyclic patterns cannot be mined from the citation DAG.
				cyclic := seed%2 == 0 && name != "citation"
				p, err := gen.Generate(g, gen.PatternConfig{
					Nodes: 4, Edges: 6, Cyclic: cyclic, Predicates: seed%3 == 0, Seed: seed,
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				mu := len(simulation.Compute(g, p).MatchesOf(p.Output()))
				for _, k := range []int{1, 2, 5, 10, 50} {
					res, err := TopKDH(g, p, k, 0.5, core.Options{})
					if err != nil {
						t.Fatalf("seed %d k %d: %v", seed, k, err)
					}
					want := 0
					if res.GlobalMatch {
						want = min(k, mu)
					}
					if len(res.Matches) != want {
						t.Fatalf("seed %d k %d: |Matches| = %d, want min(k, |Mu|) = min(%d, %d) = %d",
							seed, k, len(res.Matches), k, mu, want)
					}
				}
			}
		})
	}
}
