package diversify

import (
	"testing"

	"divtopk/internal/bitset"
	"divtopk/internal/core"
	"divtopk/internal/graph"
	"divtopk/internal/ranking"
)

// tiePool builds n matches with the given relevances and pairwise-disjoint
// relevant sets of matching sizes, so every pair at the same relevance
// level has identical F' (disjoint sets ⇒ distance 1 for all pairs): the
// selection is decided purely by the documented row-major tie-break.
func tiePool(relevances []int) ([]core.Match, []float64, ranking.DiversifyParams) {
	n := len(relevances)
	space := 0
	for _, r := range relevances {
		space += r
	}
	params := ranking.DiversifyParams{Lambda: 0.5, K: 6, Cuo: space}
	pool := make([]core.Match, n)
	normRel := make([]float64, n)
	next := 0
	for i, rel := range relevances {
		s := bitset.New(space)
		for j := 0; j < rel; j++ {
			s.Add(next)
			next++
		}
		pool[i] = core.Match{Node: graph.NodeID(i), Relevance: rel, Exact: true, R: s}
		normRel[i] = params.NormRel(float64(rel))
	}
	return pool, normRel, params
}

// poolSparse projects a pool's relevant sets the way TopKDivOpts does
// before handing them to bestPair.
func poolSparse(pool []core.Match) ([]sparseSet, []int) {
	sparse := make([]sparseSet, len(pool))
	counts := make([]int, len(pool))
	for i, m := range pool {
		sparse[i] = newSparseSet(m.R)
		if m.R != nil {
			counts[i] = m.R.Count()
		}
	}
	return sparse, counts
}

// TestBestPairRowMajorTieBreak asserts that on a pool where every pair has
// exactly the same F', bestPair returns the row-major-first pair for every
// worker count — the documented contract that makes the parallel scan
// bit-for-bit identical to the sequential one.
func TestBestPairRowMajorTieBreak(t *testing.T) {
	pool, normRel, params := tiePool([]int{2, 2, 2, 2, 2, 2, 2, 2})
	sparse, counts := poolSparse(pool)
	for workers := 1; workers <= 8; workers++ {
		taken := make([]bool, len(pool))
		if i, j := bestPair(params, normRel, sparse, counts, taken, workers); i != 0 || j != 1 {
			t.Fatalf("workers=%d: first pair = (%d,%d), want row-major (0,1)", workers, i, j)
		}
		// With (0,1) taken, the next row-major tied pair is (2,3).
		taken[0], taken[1] = true, true
		if i, j := bestPair(params, normRel, sparse, counts, taken, workers); i != 2 || j != 3 {
			t.Fatalf("workers=%d: second pair = (%d,%d), want (2,3)", workers, i, j)
		}
	}
}

// TestBestPairDeterministicAcrossParallelism consumes the whole pool pair
// by pair — the greedy loop TopKDiv runs — on a pool engineered with two
// exact F' tie classes (high-relevance matches 0..3, low-relevance matches
// 4..7, all sets disjoint) and asserts every worker count 1..8 selects the
// exact same pair sequence as the sequential scan.
func TestBestPairDeterministicAcrossParallelism(t *testing.T) {
	pool, normRel, params := tiePool([]int{5, 5, 5, 5, 1, 1, 1, 1})
	sparse, counts := poolSparse(pool)
	sequence := func(workers int) [][2]int {
		taken := make([]bool, len(pool))
		var out [][2]int
		for {
			i, j := bestPair(params, normRel, sparse, counts, taken, workers)
			if i < 0 {
				return out
			}
			taken[i], taken[j] = true, true
			out = append(out, [2]int{i, j})
		}
	}
	want := sequence(1)
	if len(want) != len(pool)/2 {
		t.Fatalf("sequential scan picked %d pairs, want %d", len(want), len(pool)/2)
	}
	// The high-relevance tie class must drain first, in row-major order.
	if want[0] != [2]int{0, 1} || want[1] != [2]int{2, 3} {
		t.Fatalf("sequential sequence starts %v, want [0 1] then [2 3]", want[:2])
	}
	for workers := 2; workers <= 8; workers++ {
		got := sequence(workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d pairs vs %d sequential", workers, len(got), len(want))
		}
		for s := range want {
			if got[s] != want[s] {
				t.Fatalf("workers=%d: selection %d = %v, sequential picked %v", workers, s, got[s], want[s])
			}
		}
	}
}
