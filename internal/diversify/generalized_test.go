package diversify

import (
	"math"
	"math/rand"
	"testing"

	"divtopk/internal/ranking"
	"divtopk/internal/testutil"
)

func TestTopKDivGeneralDefaultEquivalence(t *testing.T) {
	// With relevant-set-size relevance and relevant-set Jaccard distance,
	// the generalized algorithm optimizes the same objective as TopKDiv up
	// to the normalization constant (pool max vs C_uo); the selected set's
	// quality must be comparable.
	g, _ := testutil.Figure1()
	p := testutil.Figure1Pattern()
	gen, err := TopKDivGeneral(g, p, 2, 0.5, ranking.RelSetSize{}, ranking.RelSetJaccard{})
	if err != nil {
		t.Fatal(err)
	}
	if !gen.GlobalMatch || len(gen.Matches) != 2 {
		t.Fatalf("result: %+v", gen)
	}
	// The pair must include PM1 (the diversity anchor at λ=0.5; Example 9).
	hasPM1 := false
	for _, m := range gen.Matches {
		if m.Relevance == 4 {
			hasPM1 = true
		}
	}
	if !hasPM1 {
		t.Fatalf("generalized default missed the diversity anchor: %+v", gen.Matches)
	}
}

func TestTopKDivGeneralNeighborhoodDiversity(t *testing.T) {
	g, _ := testutil.Figure1()
	p := testutil.Figure1Pattern()
	gen, err := TopKDivGeneral(g, p, 2, 1.0, ranking.RelSetSize{}, ranking.NeighborhoodDiversity{})
	if err != nil {
		t.Fatal(err)
	}
	if len(gen.Matches) != 2 {
		t.Fatalf("matches = %d", len(gen.Matches))
	}
	// Pure diversity with neighbourhood distance: the selected pair must
	// have disjoint relevant sets (PM1 with one of PM2/PM3/PM4 — their
	// intersection with PM1 is empty except ST2 for PM2).
	inter := gen.Matches[0].R.IntersectCount(gen.Matches[1].R)
	if inter > 1 {
		t.Fatalf("pure-diversity pair overlaps in %d nodes", inter)
	}
}

func TestTopKDivGeneralDistanceDiversity(t *testing.T) {
	// Distance-based diversity needs graph BFS; exercise it end to end.
	g, _ := testutil.Figure1()
	p := testutil.Figure1Pattern()
	gen, err := TopKDivGeneral(g, p, 3, 0.5, ranking.PreferenceAttachment{}, ranking.DistanceDiversity{})
	if err != nil {
		t.Fatal(err)
	}
	if len(gen.Matches) != 3 {
		t.Fatalf("matches = %d", len(gen.Matches))
	}
	if gen.F <= 0 {
		t.Fatalf("F = %v", gen.F)
	}
}

func TestTopKDivGeneralPoolSmallerThanK(t *testing.T) {
	g, _ := testutil.Figure1()
	p := testutil.Figure1Pattern()
	gen, err := TopKDivGeneral(g, p, 10, 0.5, ranking.RelSetSize{}, ranking.RelSetJaccard{})
	if err != nil {
		t.Fatal(err)
	}
	if len(gen.Matches) != 4 {
		t.Fatalf("want all 4 matches, got %d", len(gen.Matches))
	}
}

func TestTopKDivGeneralBadLambda(t *testing.T) {
	g, _ := testutil.Figure1()
	p := testutil.Figure1Pattern()
	if _, err := TopKDivGeneral(g, p, 2, 2.0, ranking.RelSetSize{}, ranking.RelSetJaccard{}); err == nil {
		t.Fatal("lambda > 1 accepted")
	}
}

func TestTopKDivGeneralRandomSanity(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	labels := []string{"a", "b", "c"}
	for trial := 0; trial < 25; trial++ {
		n := 6 + rng.Intn(14)
		g := testutil.RandomGraph(rng, n, rng.Intn(4*n)+n, labels)
		p := testutil.RandomPattern(rng, 1+rng.Intn(3), rng.Intn(3), labels, trial%2 == 0)
		gen, err := TopKDivGeneral(g, p, 2, 0.5, ranking.CommonNeighbors{}, ranking.NeighborhoodDiversity{})
		if err != nil {
			t.Fatal(err)
		}
		if !gen.GlobalMatch {
			continue
		}
		if math.IsNaN(gen.F) || gen.F < 0 {
			t.Fatalf("trial %d: F = %v", trial, gen.F)
		}
		seen := map[int32]bool{}
		for _, m := range gen.Matches {
			if seen[int32(m.Node)] {
				t.Fatalf("trial %d: duplicate member", trial)
			}
			seen[int32(m.Node)] = true
		}
	}
}
