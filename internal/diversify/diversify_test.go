package diversify

import (
	"math"
	"math/rand"
	"testing"

	"divtopk/internal/core"
	"divtopk/internal/graph"
	"divtopk/internal/testutil"
)

const eps = 1e-9

func names(t *testing.T, id map[string]graph.NodeID, ms []core.Match) map[string]bool {
	t.Helper()
	rev := map[graph.NodeID]string{}
	for n, v := range id {
		rev[v] = n
	}
	out := map[string]bool{}
	for _, m := range ms {
		out[rev[m.Node]] = true
	}
	return out
}

func TestExample9TopKDiv(t *testing.T) {
	// λ=0.5, k=2: the optimum F is 16/11 ≈ 1.45, attained by {PM1,PM3} (the
	// paper's answer) and, in an exact tie, by {PM1,PM2}. TopKDiv must
	// return one of the optima.
	g, id := testutil.Figure1()
	p := testutil.Figure1Pattern()
	res, err := TopKDiv(g, p, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.GlobalMatch || len(res.Matches) != 2 {
		t.Fatalf("got %d matches", len(res.Matches))
	}
	if math.Abs(res.F-16.0/11.0) > eps {
		t.Fatalf("F = %v, want 16/11 (Example 9)", res.F)
	}
	got := names(t, id, res.Matches)
	if !got["PM1"] || (!got["PM2"] && !got["PM3"] && !got["PM4"]) {
		t.Fatalf("matches = %v, want PM1 plus one of PM2/PM3 (F-tied optima)", got)
	}
	// MR of TopKDiv is always 1: it evaluates every match.
	if res.Stats.MatchesFound != 4 {
		t.Fatalf("TopKDiv examined %d, want all 4", res.Stats.MatchesFound)
	}
}

func TestExample10TopKDH(t *testing.T) {
	// λ=0.1, k=2: TopKDH finds {PM2, PM3}.
	g, id := testutil.Figure1()
	p := testutil.Figure1Pattern()
	res, err := TopKDH(g, p, 2, 0.1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 2 {
		t.Fatalf("got %d matches", len(res.Matches))
	}
	got := names(t, id, res.Matches)
	if !got["PM2"] || (!got["PM3"] && !got["PM4"]) {
		t.Fatalf("matches = %v, want {PM2,PM3} (Example 10; PM4 ties PM3)", got)
	}
}

func TestExample6RegimesViaTopKDiv(t *testing.T) {
	g, id := testutil.Figure1()
	p := testutil.Figure1Pattern()
	cases := []struct {
		lambda float64
		need   string // one member that must be present
	}{
		{0.0, "PM2"},  // pure relevance
		{0.05, "PM2"}, // λ <= 4/33
		{0.3, "PM1"},  // 4/33 < λ < 0.5 → {PM1,PM2}
		{0.8, "PM1"},  // λ >= 0.5 → {PM1,PM3}
		{1.0, "PM1"},  // pure diversity
	}
	for _, c := range cases {
		res, err := TopKDiv(g, p, 2, c.lambda)
		if err != nil {
			t.Fatal(err)
		}
		got := names(t, id, res.Matches)
		if !got[c.need] {
			t.Errorf("λ=%v: matches %v missing %s", c.lambda, got, c.need)
		}
		// The greedy result must be within factor 2 of the brute-force
		// optimum (here it is optimal; assert the guarantee at least).
		base, err := core.MatchBaseline(g, p, 2, true)
		if err != nil {
			t.Fatal(err)
		}
		best := BruteForceBest(res.Params, base.All, 2)
		if res.F < best/2-eps {
			t.Errorf("λ=%v: F=%v below half of optimum %v", c.lambda, res.F, best)
		}
	}
}

func TestApproximationRatioProperty(t *testing.T) {
	// On random instances, TopKDiv's F must be >= optimum/2 and <= optimum.
	rng := rand.New(rand.NewSource(13))
	labels := []string{"a", "b", "c"}
	checked := 0
	for trial := 0; trial < 60; trial++ {
		n := 6 + rng.Intn(16)
		g := testutil.RandomGraph(rng, n, rng.Intn(4*n)+n, labels)
		p := testutil.RandomPattern(rng, 1+rng.Intn(4), rng.Intn(3), labels, trial%2 == 0)
		k := 2 + rng.Intn(2)
		lambda := float64(rng.Intn(11)) / 10
		res, err := TopKDiv(g, p, k, lambda)
		if err != nil {
			t.Fatal(err)
		}
		if !res.GlobalMatch || len(res.Matches) < k {
			continue
		}
		base, err := core.MatchBaseline(g, p, k, true)
		if err != nil {
			t.Fatal(err)
		}
		if len(base.All) > 14 {
			continue // keep brute force cheap
		}
		best := BruteForceBest(res.Params, base.All, k)
		if res.F > best+eps {
			t.Fatalf("trial %d: greedy F=%v exceeds optimum %v", trial, res.F, best)
		}
		if res.F < best/2-eps {
			t.Fatalf("trial %d: F=%v violates 2-approximation of %v (λ=%v,k=%d)",
				trial, res.F, best, lambda, k)
		}
		checked++
	}
	if checked < 15 {
		t.Fatalf("too few checked trials: %d", checked)
	}
}

func TestTopKDHQualityProperty(t *testing.T) {
	// The heuristic must return a valid k-set of true matches whose F is at
	// most the optimum; the paper observes F(DH) >= ~0.77 * F(Div) — we
	// assert a loose 0.4 floor relative to TopKDiv to catch regressions
	// without overfitting.
	rng := rand.New(rand.NewSource(29))
	labels := []string{"a", "b", "c"}
	okRatio := 0
	checked := 0
	for trial := 0; trial < 50; trial++ {
		n := 8 + rng.Intn(16)
		g := testutil.RandomGraph(rng, n, rng.Intn(4*n)+n, labels)
		p := testutil.RandomPattern(rng, 1+rng.Intn(4), rng.Intn(3), labels, trial%2 == 0)
		k := 2 + rng.Intn(2)
		lambda := 0.5
		dh, err := TopKDH(g, p, k, lambda, core.Options{Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		div, err := TopKDiv(g, p, k, lambda)
		if err != nil {
			t.Fatal(err)
		}
		if !dh.GlobalMatch || !div.GlobalMatch || len(div.Matches) < k {
			continue
		}
		if len(dh.Matches) != len(div.Matches) {
			t.Fatalf("trial %d: DH returned %d matches, Div %d", trial, len(dh.Matches), len(div.Matches))
		}
		// Every DH member must be a true match.
		base, err := core.MatchBaseline(g, p, k, false)
		if err != nil {
			t.Fatal(err)
		}
		truth := map[graph.NodeID]bool{}
		for _, m := range base.All {
			truth[m.Node] = true
		}
		for _, m := range dh.Matches {
			if !truth[m.Node] {
				t.Fatalf("trial %d: DH returned non-match %d", trial, m.Node)
			}
		}
		checked++
		if dh.F >= 0.4*div.F-eps {
			okRatio++
		}
	}
	if checked < 15 {
		t.Fatalf("too few checked trials: %d", checked)
	}
	if okRatio*10 < checked*9 {
		t.Fatalf("DH quality below 0.4*Div in %d/%d trials", checked-okRatio, checked)
	}
}

func TestOddK(t *testing.T) {
	g, _ := testutil.Figure1()
	p := testutil.Figure1Pattern()
	res, err := TopKDiv(g, p, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 3 {
		t.Fatalf("odd k: got %d matches", len(res.Matches))
	}
	seen := map[graph.NodeID]bool{}
	for _, m := range res.Matches {
		if seen[m.Node] {
			t.Fatal("duplicate member")
		}
		seen[m.Node] = true
	}
}

func TestK1DegeneratesToTopRelevance(t *testing.T) {
	g, id := testutil.Figure1()
	p := testutil.Figure1Pattern()
	res, err := TopKDiv(g, p, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 || res.Matches[0].Node != id["PM2"] {
		t.Fatalf("k=1 should pick PM2, got %+v", res.Matches)
	}
	dh, err := TopKDH(g, p, 1, 0.5, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(dh.Matches) != 1 {
		t.Fatalf("DH k=1: %d matches", len(dh.Matches))
	}
}

func TestKLargerThanPool(t *testing.T) {
	g, _ := testutil.Figure1()
	p := testutil.Figure1Pattern()
	res, err := TopKDiv(g, p, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 4 {
		t.Fatalf("want all 4 matches, got %d", len(res.Matches))
	}
	dh, err := TopKDH(g, p, 10, 0.5, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(dh.Matches) != 4 {
		t.Fatalf("DH: want all 4 matches, got %d", len(dh.Matches))
	}
}

func TestBadLambda(t *testing.T) {
	g, _ := testutil.Figure1()
	p := testutil.Figure1Pattern()
	if _, err := TopKDiv(g, p, 2, -0.1); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := TopKDH(g, p, 2, 1.5, core.Options{}); err == nil {
		t.Error("lambda > 1 accepted")
	}
}

func TestNoMatchEmpty(t *testing.T) {
	g, _ := testutil.Figure1()
	p := testutil.Figure1Pattern()
	p2 := p.Clone()
	p2.AddNode("CEO") // disconnected unmatched node
	res, err := TopKDiv(g, p2, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.GlobalMatch || len(res.Matches) != 0 {
		t.Fatal("unmatched pattern must give empty diversified result")
	}
	dh, err := TopKDH(g, p2, 2, 0.5, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dh.GlobalMatch || len(dh.Matches) != 0 {
		t.Fatal("unmatched pattern must give empty DH result")
	}
}

func TestTopKDAGDH(t *testing.T) {
	g, _ := testutil.Figure1()
	q1 := testutil.Example7Pattern()
	res, err := TopKDAGDH(g, q1, 2, 0.5, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 2 {
		t.Fatalf("got %d matches", len(res.Matches))
	}
	cyc := testutil.Figure1Pattern()
	if _, err := TopKDAGDH(g, cyc, 2, 0.5, core.Options{}); err != core.ErrNotDAG {
		t.Fatalf("cyclic pattern: err = %v, want ErrNotDAG", err)
	}
}
