package divtopk

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"divtopk/internal/cache"
	"divtopk/internal/core"
	"divtopk/internal/graph"
	"divtopk/internal/parallel"
)

// Matcher is a reusable query session over one Graph. Construction pays the
// per-graph index cost once — the full descendant-label bound index (which
// internally performs the SCC/reachability work of the paper's §4.1 index) —
// after which the Matcher is safe for concurrent use from many goroutines:
// every query path reads the warmed, immutable index.
//
// A Matcher also serves dynamic graphs: Update applies a Delta, advances
// the previous snapshot's bound index off to the side — recomputing only
// what the delta's affected area covers instead of rebuilding the index
// per update — and atomically swaps graph and index in together, so
// queries always run against one consistent snapshot (graph + index)
// and never observe a half-applied update. The snapshot version is part of
// every cache key, which makes entries cached against an older snapshot
// unreachable — stale results are never scanned for, let alone served.
//
// Options passed to NewMatcher become the session defaults; options passed
// to an individual query are applied on top of them. With WithCache the
// session additionally memoizes results in an LRU keyed by a canonical
// query fingerprint, with singleflight admission — the serving layer in
// internal/server builds on exactly this.
type Matcher struct {
	cur        atomic.Pointer[Graph]
	updateMu   sync.Mutex // serializes Update (queries never take it)
	base       []Option
	workers    int
	cache      *cache.Cache
	indexRatio float64 // adaptive fallback of the index advance
	// warm holds the per-pattern incremental states behind the result cache;
	// advanceRatio is their advance-vs-evict work-share threshold (see
	// WithCacheAdvanceRatio) and advanceEvicted counts states evicted by the
	// commit-time advance pass.
	warm           warmRegistry
	advanceRatio   float64
	advanceEvicted atomic.Uint64
	// durability, when set, must acknowledge every delta before the snapshot
	// it produced is published; guarded by updateMu like all update state.
	durability DurabilitySink
}

// CacheStats is a snapshot of a Matcher's result-cache counters. Misses
// counts actual engine evaluations; Coalesced counts queries that shared an
// in-flight evaluation (singleflight); Hits counts queries served from a
// stored entry. Advanced counts entries the commit-time advance pass
// installed, Seeded counts evaluations whose candidate lists were
// containment-seeded from a cached superset pattern, and AdvanceEvicted
// counts maintained pattern states the advance pass evicted instead of
// advancing (work share above the ratio). All counters are zero for a
// Matcher built without WithCache.
type CacheStats struct {
	Hits           uint64 `json:"hits"`
	Misses         uint64 `json:"misses"`
	Coalesced      uint64 `json:"coalesced"`
	Evictions      uint64 `json:"evictions"`
	Advanced       uint64 `json:"advanced"`
	Seeded         uint64 `json:"seeded"`
	AdvanceEvicted uint64 `json:"advance_evicted"`
	Entries        int    `json:"entries"`
}

// NewMatcher builds the session indexes of g and returns a Matcher.
// Parallelism given here bounds the batch worker pool as well as the
// per-query parallel sections (default: all cores); WithCache sizes the
// session result cache (default: none).
func NewMatcher(g *Graph, opts ...Option) *Matcher {
	o := buildOptions(opts)
	// Warm the bound index for every label up front: the lazy per-label path
	// is synchronized but serializes cold computations, so a fully warmed
	// cache is what keeps concurrent queries contention-free.
	g.boundsCache().Warm(nil)
	m := &Matcher{
		base:         opts,
		workers:      parallel.Workers(o.engine.Parallelism),
		indexRatio:   o.indexRatio,
		advanceRatio: o.advanceRatio,
	}
	m.cur.Store(g)
	if o.cacheEntries > 0 {
		m.cache = cache.New(o.cacheEntries)
	}
	return m
}

// Graph returns the session's current graph snapshot. After an Update the
// returned snapshot keeps working — it is immutable — but no longer receives
// queries routed through the session.
func (m *Matcher) Graph() *Graph { return m.cur.Load() }

// Version returns the current snapshot's version (see Graph.Version).
func (m *Matcher) Version() uint64 { return m.cur.Load().Version() }

// ErrIndexMaintenance wraps a failure to advance the bound index during
// Update. The session builds the advance inputs itself, so this is an
// internal invariant violation — a bug — never a problem with the caller's
// delta; the serving layer maps it to a 500, not a 400. Match it with
// errors.Is.
var ErrIndexMaintenance = errors.New("divtopk: bound-index maintenance failed")

// IndexStats describes how one Update (or one group commit) maintained the
// descendant-label bound index: whether the incremental advance held or the
// adaptive fallback rebuilt the warmed labels, how much of the index the
// delta's frontier actually covered, and what the maintenance cost in wall
// time. The serving layer forwards these on every update response.
type IndexStats struct {
	// Mode is "incremental" (partial recompute of the per-label frontier)
	// or "rebuild" (the fallback recomputed every warmed label).
	Mode string `json:"mode"`
	// BatchWidth is the number of per-request deltas this commit carried:
	// 1 for a plain Update, the group size for a batch commit.
	BatchWidth int `json:"batch_width"`
	// AffectedRows is the widest per-label affected row set (the union over
	// the frontier's change groups); TotalRows is the snapshot's node count.
	AffectedRows int `json:"affected_rows"`
	TotalRows    int `json:"total_rows"`
	// AffectedShare is the recomputed cells' share of the whole warmed
	// index — Σ over recomputed labels of their affected rows, divided by
	// warmed labels × TotalRows (1 on a rebuild). This is the quantity the
	// adaptive fallback thresholds; a label the frontier proves untouched
	// contributes nothing.
	AffectedShare float64 `json:"affected_share"`
	// FrontierRows is the union affected-row count of the frontier (equals
	// AffectedRows on the incremental path, TotalRows on a rebuild).
	FrontierRows int `json:"frontier_rows"`
	// LabelsRecomputed and LabelsCopied split the index's labels into the
	// ones whose rows the delta's frontier reaches (recomputed through the
	// partial passes) and the ones proven untouched (rows carried over).
	LabelsRecomputed int `json:"labels_recomputed"`
	LabelsCopied     int `json:"labels_copied"`
	// WallMicros is the wall time of the whole index maintenance step;
	// ShardWallMicros is the wall time of just the parallel per-label
	// shard section inside it.
	WallMicros      int64 `json:"wall_us"`
	ShardWallMicros int64 `json:"shard_wall_us"`
}

// Update applies d to the session's current snapshot and atomically swaps
// the session to the result; see UpdateWithStats, which it wraps when the
// caller has no use for the index-maintenance stats.
func (m *Matcher) Update(d *Delta) (*Graph, error) {
	g, _, err := m.UpdateWithStats(d)
	return g, err
}

// UpdateWithStats applies d to the session's current snapshot and
// atomically swaps the session to the result, returning the new snapshot
// (its Version is the old one plus 1) and the index-maintenance stats. The
// new snapshot's bound index is advanced from the previous snapshot's off
// to the side — recomputing only the rows and labels the delta's frontier
// covers, in parallel per-label shards, with an adaptive fallback to a full
// rebuild (see WithIndexRebuildRatio) — and swapped in together with the
// graph, so queries never hit a cold index and never observe a half-applied
// update; queries running concurrently with the update finish on the old
// snapshot (and are cached under the old version, where no future query
// will look them up). A label the delta introduces stays cold and fills
// lazily on first use — eager warming would grow the maintained label set
// without bound on label-churning workloads. Updates are serialized with
// each other; queries are never blocked. On error the session is unchanged.
func (m *Matcher) UpdateWithStats(d *Delta) (*Graph, IndexStats, error) {
	m.updateMu.Lock()
	defer m.updateMu.Unlock()
	return m.commitLocked(&d.d, []*Delta{d})
}

// UpdateMerged is the group-commit entry point: merged must be the Merge of
// parts (in order) against the session's current snapshot, built by a
// caller that is the session's only updater — the serving layer's
// coalescer. It applies merged in one step, advances the index once, logs
// each part separately through the durability sink (one sync), and swaps in
// a snapshot whose version is the current one plus len(parts) — exactly the
// state applying the parts one at a time would have produced, at a fraction
// of the maintenance cost. On error the session is unchanged and no part
// was made durable.
func (m *Matcher) UpdateMerged(merged *Delta, parts []*Delta) (*Graph, IndexStats, error) {
	m.updateMu.Lock()
	defer m.updateMu.Unlock()
	return m.commitLocked(&merged.d, parts)
}

// UpdateBatch merges ds under the update lock and commits the result as one
// group commit; each delta must be valid against the snapshot applying the
// deltas before it would produce (the sequential chain). All-or-nothing: if
// any delta fails to merge, the session is unchanged and the failing
// delta's position is in the error. The serving layer's coalescer instead
// drops the failing request and retries, via Delta.Merge plus UpdateMerged.
func (m *Matcher) UpdateBatch(ds []*Delta) (*Graph, IndexStats, error) {
	m.updateMu.Lock()
	defer m.updateMu.Unlock()
	if len(ds) == 0 {
		return nil, IndexStats{}, errors.New("divtopk: empty update batch")
	}
	g := m.cur.Load()
	var merged graph.Delta
	for i, d := range ds {
		if err := merged.Merge(g.g, &d.d); err != nil {
			return nil, IndexStats{}, fmt.Errorf("divtopk: batch update %d: %w", i, err)
		}
	}
	return m.commitLocked(&merged, ds)
}

// commitLocked applies one already-merged delta spanning len(parts)
// versions and publishes the result; the caller holds updateMu.
func (m *Matcher) commitLocked(merged *graph.Delta, parts []*Delta) (*Graph, IndexStats, error) {
	g := m.cur.Load()
	g2raw, sum, err := graph.ApplyDeltaVersionStep(g.g, merged, uint64(len(parts)))
	if err != nil {
		return nil, IndexStats{}, err
	}
	t0 := time.Now()
	bc, adv, err := g.boundsCache().Advance(g2raw, sum, core.AdvanceOptions{RebuildRatio: m.indexRatio, Workers: m.workers})
	if err != nil {
		// The session built the inputs itself, so a mismatch is a bug, not
		// a bad delta; surface it rather than limping on with a cold index.
		return nil, IndexStats{}, fmt.Errorf("%w: %v", ErrIndexMaintenance, err)
	}
	g2 := &Graph{g: g2raw}
	g2.adoptBounds(bc)
	stats := IndexStats{
		Mode:             adv.Mode(),
		BatchWidth:       len(parts),
		AffectedRows:     adv.AffectedRows,
		TotalRows:        adv.TotalRows,
		AffectedShare:    adv.WorkShare,
		FrontierRows:     adv.FrontierRows,
		LabelsRecomputed: adv.LabelsRecomputed,
		LabelsCopied:     adv.LabelsCopied,
		WallMicros:       time.Since(t0).Microseconds(),
		ShardWallMicros:  adv.ShardWallMicros,
	}
	// The warm result cache advances with the same off-to-the-side
	// discipline as the bound index: maintained per-pattern states are
	// carried to g2 by delta-proportional IncCompute (or evicted past the
	// work-share ratio) and each cached entry is recomputed from the
	// advanced state — but nothing is installed until the commit is past its
	// last fallible step, because entries keyed to a version that is never
	// published could collide with a later commit's use of the same number.
	installWarm := m.advanceWarm(g2, merged)
	// Durability is the last fallible step: once the sink acknowledges the
	// deltas the swap below is unconditional, and if it refuses, nothing was
	// published — queries keep seeing the old snapshot, which is exactly the
	// newest durable version. The served state never runs ahead of the WAL.
	// A batch logs one WAL record per part — recovery replays the same
	// per-request chain the acks described — under a single sync.
	if m.durability != nil {
		if len(parts) == 1 {
			err = m.durability.AppendDelta(g2, parts[0])
		} else {
			err = m.durability.AppendBatch(g2, parts)
		}
		if err != nil {
			return nil, IndexStats{}, fmt.Errorf("%w: %v", ErrDurabilityUnavailable, err)
		}
	}
	// Install the advanced entries before publishing g2: their keys carry
	// g2's version, so they are unreachable until the store below — the
	// first post-commit query already finds them warm.
	installWarm()
	m.cur.Store(g2)
	return g2, stats, nil
}

// CacheStats returns a snapshot of the session result-cache counters (the
// zero value when the Matcher was built without WithCache).
func (m *Matcher) CacheStats() CacheStats {
	if m.cache == nil {
		return CacheStats{}
	}
	s := m.cache.Stats()
	return CacheStats{
		Hits:           s.Hits,
		Misses:         s.Misses,
		Coalesced:      s.Coalesced,
		Evictions:      s.Evictions,
		Advanced:       s.Advanced,
		Seeded:         s.Seeded,
		AdvanceEvicted: m.advanceEvicted.Load(),
		Entries:        s.Entries,
	}
}

// merged layers per-call options over the session defaults.
func (m *Matcher) merged(opts []Option) []Option {
	if len(opts) == 0 {
		return m.base
	}
	out := make([]Option, 0, len(m.base)+len(opts))
	out = append(out, m.base...)
	return append(out, opts...)
}

// Query kinds for cache-key derivation.
const (
	kindTopK        = "topk:"
	kindDiversified = "div:"
)

// queryKey returns the canonical cache key of one query: a hash over the
// graph snapshot version, the query kind, k, λ, every result-affecting
// option, and the pattern's text serialization (deterministic, so
// structurally equal patterns share a key). The version participates so
// that entries cached before a graph update can never be served after it —
// stale entries become unreachable rather than scanned and age out of the
// LRU. Parallelism is deliberately excluded — every worker count returns
// identical results — and for the full-evaluation algorithms (baseline,
// TopKDiv) the engine knobs that only steer early termination are
// normalized away, so e.g. WithBatches(8) and WithBatches(32) share the
// baseline's entry.
func queryKey(kind string, version uint64, p *Pattern, k int, lambda float64, o options) (string, error) {
	// Each entry point consults only its own algorithm flag: TopK ignores
	// approx and TopKDiversified ignores baseline, so the irrelevant flag is
	// dropped from the key (a session default for one family must not split
	// or collide the other family's entries).
	baseline, approx := o.baseline, o.approx
	var full bool
	if kind == kindTopK {
		approx = false
		full = baseline
	} else {
		baseline = false
		full = approx
	}
	strategy, seed, batches, bounds := o.engine.Strategy, o.engine.Seed, o.engine.NumBatches, o.engine.Bounds
	if batches <= 0 {
		batches = 16
	}
	if strategy != core.StrategyRandom {
		seed = 0
	}
	if full {
		// The full-evaluation algorithms never early-terminate, so the
		// feeding/bound knobs cannot affect their results.
		strategy, seed, batches, bounds = 0, 0, 0, 0
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%sv=%d|k=%d|lambda=%g|baseline=%v|approx=%v|strategy=%d|seed=%d|batches=%d|bounds=%d\n",
		kind, version, k, lambda, baseline, approx, strategy, seed, batches, bounds)
	if err := WritePattern(&buf, p); err != nil {
		return "", fmt.Errorf("divtopk: canonicalizing pattern for cache key: %w", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return kind + hex.EncodeToString(sum[:]), nil
}

// QueryInfo reports how the session answered one query.
type QueryInfo struct {
	// Version is the graph snapshot version the answer was computed (or
	// cached) against.
	Version uint64 `json:"version"`
	// Cache is the result-cache provenance of the answer — "hit", "miss",
	// "advanced" (served from an entry the commit-time advance pass
	// installed, first hit only) or "seeded" (evaluated with
	// containment-seeded candidates) — or "" for a session without
	// WithCache. Queries that coalesced onto an in-flight evaluation report
	// the leader's provenance.
	Cache string `json:"cache,omitempty"`
}

// TopK answers one top-k query on the session; see the package-level TopK.
// Safe to call from multiple goroutines. With WithCache the returned Result
// may be shared with other callers and must be treated as read-only.
func (m *Matcher) TopK(p *Pattern, k int, opts ...Option) (*Result, error) {
	res, _, err := m.topK(p, k, m.merged(opts))
	return res, err
}

// TopKWithVersion is TopK reporting the graph snapshot version the answer
// was computed (or cached) against — what the serving layer echoes in its
// responses. A query racing an Update is answered consistently by exactly
// one snapshot, the one whose version is returned.
func (m *Matcher) TopKWithVersion(p *Pattern, k int, opts ...Option) (*Result, uint64, error) {
	res, info, err := m.topK(p, k, m.merged(opts))
	return res, info.Version, err
}

// TopKInfo is TopK reporting the full per-query provenance (snapshot
// version and cache status) the serving layer surfaces in its responses.
func (m *Matcher) TopKInfo(p *Pattern, k int, opts ...Option) (*Result, QueryInfo, error) {
	return m.topK(p, k, m.merged(opts))
}

// topK runs one top-k query with an already-merged option slice against the
// current snapshot, consulting the session cache when present. The snapshot
// is loaded once: evaluation and cache key agree on it even mid-Update.
func (m *Matcher) topK(p *Pattern, k int, merged []Option) (*Result, QueryInfo, error) {
	g := m.cur.Load()
	info := QueryInfo{Version: g.Version()}
	if m.cache == nil {
		res, err := TopK(g, p, k, merged...)
		return res, info, err
	}
	key, err := queryKey(kindTopK, info.Version, p, k, 0, buildOptions(merged))
	if err != nil {
		return nil, info, err
	}
	v, outcome, err := m.cache.DoStatus(key, func() (any, bool, error) {
		return m.warmLoad(g, p, kindTopK, k, 0, merged)
	})
	if err != nil {
		return nil, info, err
	}
	info.Cache = string(outcome)
	return v.(*Result), info, nil
}

// TopKDiversified answers one diversified top-k query on the session; see
// the package-level TopKDiversified. Safe to call from multiple goroutines.
// With WithCache the returned DiversifiedResult may be shared with other
// callers and must be treated as read-only.
func (m *Matcher) TopKDiversified(p *Pattern, k int, lambda float64, opts ...Option) (*DiversifiedResult, error) {
	res, _, err := m.topKDiversified(p, k, lambda, m.merged(opts))
	return res, err
}

// TopKDiversifiedWithVersion is TopKWithVersion's diversified counterpart.
func (m *Matcher) TopKDiversifiedWithVersion(p *Pattern, k int, lambda float64, opts ...Option) (*DiversifiedResult, uint64, error) {
	res, info, err := m.topKDiversified(p, k, lambda, m.merged(opts))
	return res, info.Version, err
}

// TopKDiversifiedInfo is TopKInfo's diversified counterpart.
func (m *Matcher) TopKDiversifiedInfo(p *Pattern, k int, lambda float64, opts ...Option) (*DiversifiedResult, QueryInfo, error) {
	return m.topKDiversified(p, k, lambda, m.merged(opts))
}

// topKDiversified is topK's counterpart for the diversified entry point. λ
// is validated before the cache key is derived: a NaN must surface as the
// structured ErrLambdaRange, not as a poisoned fingerprint.
func (m *Matcher) topKDiversified(p *Pattern, k int, lambda float64, merged []Option) (*DiversifiedResult, QueryInfo, error) {
	g := m.cur.Load()
	info := QueryInfo{Version: g.Version()}
	if err := validateLambda(lambda); err != nil {
		return nil, info, err
	}
	if m.cache == nil {
		res, err := TopKDiversified(g, p, k, lambda, merged...)
		return res, info, err
	}
	key, err := queryKey(kindDiversified, info.Version, p, k, lambda, buildOptions(merged))
	if err != nil {
		return nil, info, err
	}
	v, outcome, err := m.cache.DoStatus(key, func() (any, bool, error) {
		return m.warmLoad(g, p, kindDiversified, k, lambda, merged)
	})
	if err != nil {
		return nil, info, err
	}
	info.Cache = string(outcome)
	return v.(*DiversifiedResult), info, nil
}

// batchOptions prepares the option slice for one query of a batch: the
// worker pool already runs one query per core, so per-query parallelism
// defaults to 1 inside a batch (no oversubscription) unless the caller set
// Parallelism explicitly.
func (m *Matcher) batchOptions(opts []Option) []Option {
	merged := m.merged(opts)
	// n <= 0 is the documented "all cores" default, so any non-positive
	// setting counts as unset here.
	if buildOptions(merged).engine.Parallelism <= 0 {
		merged = append(merged[:len(merged):len(merged)], Parallelism(1))
	}
	return merged
}

// BatchTopK answers one top-k query per pattern concurrently over the
// session's bounded worker pool and returns the results in input order
// (duplicate patterns share one evaluation when the session caches). On
// error it reports the first failing query by position; queries that
// already finished are discarded.
func (m *Matcher) BatchTopK(patterns []*Pattern, k int, opts ...Option) ([]*Result, error) {
	merged := m.batchOptions(opts)
	results := make([]*Result, len(patterns))
	errs := make([]error, len(patterns))
	pool := parallel.NewPool(m.workers)
	for i := range patterns {
		pool.Go(func() {
			results[i], _, errs[i] = m.topK(patterns[i], k, merged)
		})
	}
	pool.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("divtopk: batch query %d: %w", i, err)
		}
	}
	return results, nil
}

// BatchTopKDiversified is BatchTopK for diversified queries: one
// TopKDiversified call per pattern, fanned out over the session pool,
// results in input order.
func (m *Matcher) BatchTopKDiversified(patterns []*Pattern, k int, lambda float64, opts ...Option) ([]*DiversifiedResult, error) {
	merged := m.batchOptions(opts)
	results := make([]*DiversifiedResult, len(patterns))
	errs := make([]error, len(patterns))
	pool := parallel.NewPool(m.workers)
	for i := range patterns {
		pool.Go(func() {
			results[i], _, errs[i] = m.topKDiversified(patterns[i], k, lambda, merged)
		})
	}
	pool.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("divtopk: batch query %d: %w", i, err)
		}
	}
	return results, nil
}
