package divtopk

import (
	"fmt"

	"divtopk/internal/parallel"
)

// Matcher is a reusable query session over one Graph. Construction pays the
// per-graph index cost once — the full descendant-label bound index (which
// internally performs the SCC/reachability work of the paper's §4.1 index) —
// after which the Matcher is safe for concurrent use from many goroutines:
// every query path reads the warmed, immutable index.
//
// Options passed to NewMatcher become the session defaults; options passed
// to an individual query are applied on top of them.
type Matcher struct {
	g       *Graph
	base    []Option
	workers int
}

// NewMatcher builds the session indexes of g and returns a Matcher.
// Parallelism given here bounds the batch worker pool as well as the
// per-query parallel sections (default: all cores).
func NewMatcher(g *Graph, opts ...Option) *Matcher {
	o := buildOptions(opts)
	// Warm the bound index for every label up front: the lazy per-label path
	// is not synchronized, so a fully warmed cache is what makes concurrent
	// queries race-free.
	g.boundsCache().Warm(nil)
	return &Matcher{
		g:       g,
		base:    opts,
		workers: parallel.Workers(o.engine.Parallelism),
	}
}

// Graph returns the session's graph.
func (m *Matcher) Graph() *Graph { return m.g }

// merged layers per-call options over the session defaults.
func (m *Matcher) merged(opts []Option) []Option {
	if len(opts) == 0 {
		return m.base
	}
	out := make([]Option, 0, len(m.base)+len(opts))
	out = append(out, m.base...)
	return append(out, opts...)
}

// TopK answers one top-k query on the session; see the package-level TopK.
// Safe to call from multiple goroutines.
func (m *Matcher) TopK(p *Pattern, k int, opts ...Option) (*Result, error) {
	return TopK(m.g, p, k, m.merged(opts)...)
}

// TopKDiversified answers one diversified top-k query on the session; see
// the package-level TopKDiversified. Safe to call from multiple goroutines.
func (m *Matcher) TopKDiversified(p *Pattern, k int, lambda float64, opts ...Option) (*DiversifiedResult, error) {
	return TopKDiversified(m.g, p, k, lambda, m.merged(opts)...)
}

// batchOptions prepares the option slice for one query of a batch: the
// worker pool already runs one query per core, so per-query parallelism
// defaults to 1 inside a batch (no oversubscription) unless the caller set
// Parallelism explicitly.
func (m *Matcher) batchOptions(opts []Option) []Option {
	merged := m.merged(opts)
	// n <= 0 is the documented "all cores" default, so any non-positive
	// setting counts as unset here.
	if buildOptions(merged).engine.Parallelism <= 0 {
		merged = append(merged[:len(merged):len(merged)], Parallelism(1))
	}
	return merged
}

// BatchTopK answers one top-k query per pattern concurrently over the
// session's bounded worker pool and returns the results in input order. On
// error it reports the first failing query by position; queries that
// already finished are discarded.
func (m *Matcher) BatchTopK(patterns []*Pattern, k int, opts ...Option) ([]*Result, error) {
	merged := m.batchOptions(opts)
	results := make([]*Result, len(patterns))
	errs := make([]error, len(patterns))
	pool := parallel.NewPool(m.workers)
	for i := range patterns {
		pool.Go(func() {
			results[i], errs[i] = TopK(m.g, patterns[i], k, merged...)
		})
	}
	pool.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("divtopk: batch query %d: %w", i, err)
		}
	}
	return results, nil
}

// BatchTopKDiversified is BatchTopK for diversified queries: one
// TopKDiversified call per pattern, fanned out over the session pool,
// results in input order.
func (m *Matcher) BatchTopKDiversified(patterns []*Pattern, k int, lambda float64, opts ...Option) ([]*DiversifiedResult, error) {
	merged := m.batchOptions(opts)
	results := make([]*DiversifiedResult, len(patterns))
	errs := make([]error, len(patterns))
	pool := parallel.NewPool(m.workers)
	for i := range patterns {
		pool.Go(func() {
			results[i], errs[i] = TopKDiversified(m.g, patterns[i], k, lambda, merged...)
		})
	}
	pool.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("divtopk: batch query %d: %w", i, err)
		}
	}
	return results, nil
}
