package divtopk

import "divtopk/internal/core"

// Option tunes TopK and TopKDiversified.
type Option func(*options)

type options struct {
	engine       core.Options
	baseline     bool
	approx       bool
	cacheEntries int
	indexRatio   float64
	advanceRatio float64
}

func buildOptions(opts []Option) options {
	var o options
	// The facade defaults to the amortized per-graph label-count index (the
	// paper's design); WithTightBounds restores the per-query tight bound.
	o.engine.Bounds = core.BoundLabelCount
	for _, f := range opts {
		f(&o)
	}
	return o
}

// WithRandomSelection switches the engine to the paper's non-optimized leaf
// selection (the TopKnopt/TopKDAGnopt baselines): unvisited leaf candidates
// are fed in seeded random order instead of the covering heuristic.
func WithRandomSelection(seed int64) Option {
	return func(o *options) {
		o.engine.Strategy = core.StrategyRandom
		o.engine.Seed = seed
	}
}

// WithBatches sets the number of leaf feeding batches (default 16): more
// batches mean finer-grained early-termination checks at slightly more
// bookkeeping.
func WithBatches(n int) Option {
	return func(o *options) { o.engine.NumBatches = n }
}

// WithLooseBounds replaces the default cached label-count upper-bound index
// by the cheapest overcounting variant (see the bounds ablation in
// EXPERIMENTS.md).
func WithLooseBounds() Option {
	return func(o *options) { o.engine.Bounds = core.BoundCheap }
}

// WithTightBounds computes the per-query candidate-product upper bounds —
// the tightest index, reproducing the h values of the paper's Examples 7-8
// exactly — instead of the amortized per-graph label-count index. Tighter
// bounds terminate earlier but cost a product traversal per query.
func WithTightBounds() Option {
	return func(o *options) { o.engine.Bounds = core.BoundTight }
}

// WithBaseline evaluates the query with the find-all Match algorithm
// instead of the early-termination engine (the paper's baseline; exact
// relevances, no early termination).
func WithBaseline() Option {
	return func(o *options) { o.baseline = true }
}

// WithApproximation makes TopKDiversified use the 2-approximation TopKDiv
// (evaluates the full match set, guarantees F(S) ≥ F(S*)/2) instead of the
// early-termination heuristic TopKDH.
func WithApproximation() Option {
	return func(o *options) { o.approx = true }
}

// WithCache equips a Matcher with a result cache of the given capacity (in
// entries): an LRU keyed by a canonical fingerprint of (graph snapshot
// version, pattern, k, λ, algorithm options) with singleflight admission,
// so N concurrent identical queries cost one evaluation and repeated
// queries cost none. Because every engine is deterministic, a cached result
// is identical to a fresh evaluation; callers share the stored Result and
// must treat it as read-only. The snapshot version in the key is what makes
// caching sound for dynamic graphs: after Matcher.Update, entries cached
// against the previous snapshot are unreachable (they age out of the LRU
// instead of being scanned). The option is consulted by NewMatcher only —
// the package-level TopK/TopKDiversified never cache — and entries <= 0
// disables caching.
func WithCache(entries int) Option {
	return func(o *options) { o.cacheEntries = entries }
}

// WithIndexRebuildRatio tunes the adaptive fallback of the incremental
// bound-index maintenance a Matcher performs on Update: the index advances
// with the graph by recomputing, per label, only the frontier rows the
// delta's touch points actually reach (the per-node frontier diff of
// internal/graph.ComputeFrontier — membership changes, ancestor closures
// of successor-set changes, and cyclicity flips, masked per label), and
// falls back to a full rebuild of the warmed labels once the recomputed
// cells' share of the whole index exceeds r (default 0.25 — past a
// quarter of the index, seeding the partial passes costs as much as
// starting over). r = 1 never falls back; a tiny positive r effectively
// always rebuilds (useful to A/B the two paths). Results are identical
// either way — the fallback trades wall-clock time only. The option is
// consulted by NewMatcher; the package-level functions never advance an
// index.
func WithIndexRebuildRatio(r float64) Option {
	return func(o *options) { o.indexRatio = r }
}

// WithCacheAdvanceRatio tunes the adaptive fallback of the commit-time
// result-cache advance pass a Matcher with WithCache performs on Update:
// warm entries advance with the graph via incremental simulation
// maintenance, and fall back to eviction (the next query re-evaluates cold)
// once the delta's affected share of the product graph exceeds r (default
// 0.25 — past a quarter of the product, advancing costs as much as
// re-evaluating). r >= 1 never falls back (forced advance); a tiny positive
// r effectively always evicts (useful to A/B the two paths). Results are
// identical either way — an advanced entry is byte-identical to a cold
// evaluation at the new version; the knob trades commit-time work against
// first-post-commit-query latency only. Consulted by NewMatcher; without
// WithCache there is nothing to advance.
func WithCacheAdvanceRatio(r float64) Option {
	return func(o *options) { o.advanceRatio = r }
}

// Parallelism bounds the number of worker goroutines a query (and a
// Matcher's batch APIs) may use. n <= 0 — the default — means
// runtime.NumCPU(); 1 runs fully sequentially, reproducing the
// single-threaded engine bit-for-bit. Any value returns identical results:
// the parallel sections (candidate computation, the diversified greedy
// scans, batch fan-out) are deterministic by construction, so this knob
// trades wall-clock time only.
func Parallelism(n int) Option {
	return func(o *options) { o.engine.Parallelism = n }
}
