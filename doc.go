// Package divtopk is a Go implementation of "Diversified Top-k Graph
// Pattern Matching" (Fan, Wang, Wu — PVLDB 6(13), 2013).
//
// It implements graph pattern matching by graph simulation with a
// designated output node, and answers two query classes over large directed
// labeled graphs:
//
//   - Top-k matching (TopK): the k matches of the output node with the
//     highest relevance δr (the size of their relevant set — the set of
//     matches they can reach through the pattern), found with the early
//     termination property: the evaluation stops as soon as the answer is
//     provably correct, without computing the full match relation M(Q,G).
//
//   - Diversified top-k matching (TopKDiversified): the k-set maximizing
//     the bi-criteria function F(S) = (1−λ)·Σ δ'r + 2λ/(k−1)·Σ δd that
//     balances relevance against pairwise Jaccard distance of relevant
//     sets. The problem is NP-complete; the library ships the paper's
//     2-approximation (TopKDiv) and its early-termination heuristic
//     (TopKDH).
//
// # Quickstart
//
//	b := divtopk.NewGraphBuilder()
//	alice := b.AddNode("PM")
//	bob := b.AddNode("DB")
//	_ = b.AddEdge(alice, bob)
//	g := b.Build()
//
//	pb := divtopk.NewPatternBuilder()
//	pm := pb.AddNode("PM")
//	db := pb.AddNode("DB")
//	_ = pb.AddEdge(pm, db)
//	pb.Output(pm)
//	q, _ := pb.Build()
//
//	res, _ := divtopk.TopK(g, q, 10)
//	for _, m := range res.Matches {
//		fmt.Println(m.Node, m.Relevance)
//	}
//
// # Sessions and parallelism
//
// A Matcher is a reusable, concurrency-safe query session: it warms the
// graph's descendant-label bound index once at construction and then serves
// any number of concurrent queries, including whole batches over a bounded
// worker pool:
//
//	m := divtopk.NewMatcher(g)
//	results, _ := m.BatchTopK(patterns, 10)
//
// Single queries also parallelize internally (candidate computation, the
// diversified greedy scans). The Parallelism option controls the worker
// count for both layers: the default uses all cores, Parallelism(1)
// reproduces the sequential engine exactly, and every setting returns
// identical results — the parallel sections are deterministic.
//
// # Serving
//
// WithCache equips a Matcher with a result cache (LRU keyed by a canonical
// query fingerprint, singleflight admission), and cmd/divtopkd builds the
// full serving layer on top: named graphs behind an HTTP JSON API with
// per-request timeouts, k/parallelism caps and structured errors. Because
// the engines are deterministic, a cached response is byte-identical to a
// fresh evaluation. See internal/server and the README's "Serving"
// section.
//
// # Dynamic graphs
//
// Graphs are immutable snapshots; dynamic workloads advance through
// deltas. A Delta batches node appends, edge inserts and edge deletes;
// ApplyDelta derives the next snapshot in one merge pass over the old
// adjacency and bumps its Version. Matcher.Update applies a delta to a live
// session: the previous snapshot's bound index is advanced off to the side
// and swapped in atomically with the graph, and because the snapshot
// version participates in every cache key, a result cached before an
// update can never be served after it (hot entries are advanced to the new
// version at commit time — see the Warm cache section). TopKWithVersion and
// TopKDiversifiedWithVersion report the snapshot version behind each
// answer; the serving layer exposes updates as
// POST /v1/graphs/{name}/updates and echoes the version in every response.
//
// Concurrent updates group-commit: Delta.Merge combines deltas sharing one
// base snapshot (deletes before inserts, duplicate inserts collapse,
// insert-then-delete cancels), Matcher.UpdateBatch and UpdateMerged apply
// the merged delta in one maintenance pass while stepping the version once
// per constituent, and the serving layer's per-graph coalescer queues
// overlapping POSTs into such batches — each caller acknowledged with its
// own version, durability logging the per-request deltas so WAL contiguity
// survives. Edge endpoints in the wire protocol may name a request's own
// appended nodes with negative self-references (-1 is the first), and the
// response's first_node field reports where the appends landed.
//
// The descendant-label bound index is versioned derived state rather than a
// per-snapshot rebuild: its rows are a pure function of the snapshot's
// cached SCC condensation and the member labels, so the advance diffs the
// two condensations and recomputes, per label, only the frontier rows the
// delta's touch points reach — a per-node frontier propagated from
// membership changes, ancestor closures of successor-set changes, and
// cyclicity flips, masked against each label's reachability — running the
// per-label partial recomputes in parallel, copying every unaffected row,
// and falling back to a full rebuild of the warmed labels past an adaptive
// recomputed-share ratio (default 0.25, WithIndexRebuildRatio). A
// mismatched snapshot version is a hard error; the fresh-warm path remains
// the correctness oracle, enforced by randomized delta-chain fuzz for both
// count modes. Matcher.UpdateWithStats (and the daemon's "index" response
// object) reports the maintenance mode, batch width, affected share,
// frontier size and wall time of every update. For callers maintaining one
// standing (graph, pattern) evaluation across deltas, the engine layer
// offers
// internal/simulation.IncCompute: it maintains the simulation fixpoint and
// product CSR incrementally over the delta's affected area — sharing the
// same closure-traversal helper (graph.Expand) and the same two-level
// fallback discipline as the index advance — with the simdelta and
// boundadv rows of the tracked baseline measuring both maintenance layers
// against from-scratch recomputation. See the README's "Dynamic graphs"
// section.
//
// # Warm cache
//
// On a caching session the commit path does not merely orphan the old
// version's cache entries — it advances the hot ones. Each cached pattern
// retains its incremental evaluation state (the IncCompute simulation state
// and product CSR); after the delta is durable and before the new snapshot
// is published, the commit advances that state and re-derives the pattern's
// cached results from it, installing them under the new version's keys, so
// the first post-commit query is a hit that reports provenance "advanced"
// (TopKInfo/TopKDiversifiedInfo, and the daemon's "cache" response field)
// rather than a cold evaluation. Past a work-share ratio
// (WithCacheAdvanceRatio, default 0.25) the pass evicts instead — the knob
// trades commit latency against post-commit query latency and never changes
// answers. Admission is containment-aware: a pattern whose node conditions
// are subsumed by a cached pattern's nodes (same label, predicate subset)
// seeds its candidate lists from the cached superset's maintained lists and
// reports "seeded". CacheStats counts advanced, seeded and advance-evicted
// entries; a randomized delta-chain fuzz pins every warm answer
// byte-identical to a never-cached session at every version. See the
// README's "Warm cache" section.
//
// # Durability
//
// A Matcher session can be made durable by attaching a DurabilitySink
// (SetDurability): inside Update, the delta is handed to the sink after the
// new snapshot and its advanced index are built but before they are
// published, so the served state never runs ahead of what is persisted; a
// sink failure returns ErrDurabilityUnavailable and leaves the session on
// its previous snapshot. The serving layer supplies the production sink —
// internal/durable composes a delta write-ahead log (internal/wal,
// CRC-framed binary records, fsync policies, torn-tail recovery) with flat
// binary CSR checkpoints (internal/snapshot, atomic publish) and rotates
// the log into a checkpoint periodically — and server.NewPersistentRegistry
// recovers every graph on boot by loading the newest valid checkpoint and
// replaying the WAL tail through this same Update path. cmd/divtopkd
// enables it with -data-dir/-fsync/-checkpoint-every; a kill-and-recover
// fuzz over injected filesystem faults (internal/fsx) proves recovered
// query results byte-identical to a never-crashed run. See the README's
// "Durability" section.
//
// # Performance
//
// Every per-query hot path runs over a materialized product-graph CSR
// (internal/simulation.Product): the candidate product graph is built once
// per query and shared by simulation refinement, relevant-set computation
// (SCC condensation in reverse topological order, interior bitsets pooled
// in a bitset.Arena, levels sharded over Parallelism workers) and the
// incremental engine's propagation. The pre-CSR kernel is retained behind
// an options knob as the frozen reference: determinism tests prove both
// kernels byte-identical at every Parallelism setting, and
// cmd/divtopk-bench measures them side by side on a fixed-seed 150k-node
// generator graph, emitting the tracked baseline committed as
// BENCH_PR9.json (see the README's "Performance" section for how to run
// and read it).
//
// # Static analysis
//
// The invariants the sections above rely on — snapshot immutability, the
// single-load discipline on a session's current snapshot, version-keyed
// result caching, arena Get/Put pairing, no heavy work under a write lock,
// and map-order-free kernel results — are machine-checked by divtopk-vet,
// a custom analyzer suite in tools/vet (a nested module, so this module
// stays dependency-free). Each analyzer encodes a bug class an earlier
// change made possible: snapmut guards the immutable snapshots dynamic
// graphs depend on (PR 4), curload and verkey guard the atomic
// snapshot/version swap and cache invalidation (PRs 2 and 4), arenapair
// guards the pooled bitsets of the CSR kernel (PR 3), lockhold guards the
// serving layer's claim/release/compute/publish locking discipline
// (PRs 2 and 5), and detorder guards the byte-identical determinism the
// parallel kernels promise (PR 3). Three analyzers reason over paths and
// package boundaries on the suite's dataflow core (a CFG engine plus
// cross-package facts carried through go vet's .vetx channel): detflow
// proves the deterministic kernels free of wall-clock and unseeded-random
// calls through any helper chain, errflow proves the error of every
// versioned mutation (ApplyDelta, ApplyDeltaVersionStep, Advance,
// IncCompute) is checked on every path before the updated state is trusted
// — and the same for every durability call (wal.Log.Append/AppendBatch/
// Sync, durable.Store's Seed/Append/AppendBatch/Checkpoint, snapshot.Write,
// the AppendDelta/AppendBatch sink hooks, matched by qualified name), which
// in the group-commit coalescer means before any caller of a batch is
// acknowledged — and swapver proves a published
// snapshot and its swapped-in derived state always originate from the same
// version source. Run `make lint`, or see tools/vet's package
// documentation for the suppression syntax, the fact catalog and the
// vet-tool protocol.
//
// The module builds and tests with the standard toolchain:
//
//	go build ./... && go test ./...
//
// See the examples/ directory for runnable end-to-end scenarios, README.md
// for an overview, DESIGN.md for the architecture, and EXPERIMENTS.md for
// the reproduction of the paper's evaluation.
package divtopk
