package divtopk

import (
	"fmt"

	"divtopk/internal/graph"
	"divtopk/internal/ranking"
)

// ErrLambdaRange is returned by the diversified entry points for a λ outside
// [0,1] — including NaN and ±Inf, which a naive "< 0 || > 1" check lets
// through to silently produce NaN objective values. Match it with errors.Is.
var ErrLambdaRange = ranking.ErrLambdaRange

// validateLambda rejects λ ∉ [0,1] with the structured error. Written as a
// negated conjunction so NaN (for which both λ < 0 and λ > 1 are false)
// fails too.
func validateLambda(lambda float64) error {
	if !(lambda >= 0 && lambda <= 1) {
		return fmt.Errorf("%w (got %v)", ErrLambdaRange, lambda)
	}
	return nil
}

// Delta is a batch of graph updates: node appends, edge inserts, edge
// deletes. Build one with its methods and apply it with ApplyDelta or
// Matcher.Update; deletes are applied before inserts, inserting an existing
// edge is a no-op, and deleting a missing edge fails the whole delta.
type Delta struct {
	d graph.Delta
}

// AddNode appends a node with the given label and optional attributes and
// returns its append index: appended node i receives node ID
// target.NumNodes()+i when the delta is applied. Edges referencing appended
// nodes use that final ID.
func (d *Delta) AddNode(label string, attrs ...Attr) int {
	m := make(map[string]graph.Value, len(attrs))
	for _, a := range attrs {
		m[a.key] = a.val
	}
	return d.d.AddNode(label, m)
}

// InsertEdge records the directed edge (u, v) for insertion; endpoints may
// reference nodes appended by this delta.
func (d *Delta) InsertEdge(u, v int) {
	d.d.InsertEdge(graph.NodeID(u), graph.NodeID(v))
}

// DeleteEdge records the directed edge (u, v) for deletion. The edge must
// exist in the graph the delta is applied to.
func (d *Delta) DeleteEdge(u, v int) {
	d.d.DeleteEdge(graph.NodeID(u), graph.NodeID(v))
}

// Merge folds other into d, where d is a pending batch of updates against
// base and other was built against the snapshot applying d to base would
// produce — the group-commit coalescing step. Appends concatenate (other's
// appended nodes keep the IDs the sequential chain would have assigned),
// a delete cancels a pending insert of the same edge, and a delete of an
// edge neither base nor the pending inserts contain fails the merge and
// leaves d untouched. Applying the merged delta to base yields exactly the
// snapshot of applying d then other.
func (d *Delta) Merge(base *Graph, other *Delta) error {
	return d.d.Merge(base.g, &other.d)
}

// Empty reports whether the delta carries no updates.
func (d *Delta) Empty() bool { return d.d.Empty() }

// Size returns the number of individual updates in the delta.
func (d *Delta) Size() int { return d.d.Size() }

// Version returns the graph's snapshot version: 0 for a built, parsed or
// generated graph, one more than its predecessor for every ApplyDelta
// result. The Matcher folds this version into every cache key, which is what
// makes serving dynamic graphs sound: entries cached against an older
// snapshot become unreachable the moment an update lands.
func (g *Graph) Version() uint64 { return g.g.Version() }

// ApplyDelta derives a new immutable graph snapshot: appended nodes take the
// next dense IDs, edge deletes and inserts are merged into the adjacency in
// one linear pass, and the result's Version is the input's plus one. The
// input graph is untouched and keeps serving queries; the snapshots share
// the label dictionary and all unchanged per-node data. The new snapshot's
// bound index is built lazily on first use; Matcher.Update instead advances
// the previous snapshot's index incrementally (see Matcher.UpdateWithStats).
func ApplyDelta(g *Graph, d *Delta) (*Graph, error) {
	g2, err := graph.ApplyDelta(g.g, &d.d)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g2}, nil
}
