package divtopk

import (
	"divtopk/internal/core"
	"divtopk/internal/gen"
	"divtopk/internal/ranking"
)

// NewSynthetic generates a scale-free directed graph with n nodes, m edges
// and the given label alphabet size (the paper's synthetic dataset; 15
// labels when labels <= 0). Deterministic in seed.
func NewSynthetic(n, m, labels int, seed int64) *Graph {
	return &Graph{g: gen.Synthetic(gen.SynthConfig{N: n, M: m, Labels: labels, Seed: seed})}
}

// NewAmazonLike generates a co-purchase-style cyclic graph (product groups,
// salesrank attribute) standing in for the paper's Amazon dataset.
func NewAmazonLike(n, m int, seed int64) *Graph {
	return &Graph{g: gen.AmazonLike(n, m, seed)}
}

// NewCitationLike generates a citation-style DAG (venue areas, year
// attribute) standing in for the paper's Citation dataset.
func NewCitationLike(n, m int, seed int64) *Graph {
	return &Graph{g: gen.CitationLike(n, m, seed)}
}

// NewYouTubeLike generates a recommendation-style cyclic graph (video
// categories; A/V/R attributes) standing in for the paper's YouTube
// dataset.
func NewYouTubeLike(n, m int, seed int64) *Graph {
	return &Graph{g: gen.YouTubeLike(n, m, seed)}
}

// GeneratePattern mines an instance-guided pattern of the requested shape
// from g: the result is guaranteed to have at least one match of its output
// node in g. cyclic asks for a directed cycle in the pattern; preds attaches
// attribute predicates satisfied by the mined instance.
func GeneratePattern(g *Graph, nodes, edges int, cyclic, preds bool, seed int64) (*Pattern, error) {
	p, err := gen.Generate(g.g, gen.PatternConfig{
		Nodes: nodes, Edges: edges, Cyclic: cyclic, Predicates: preds, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	return &Pattern{p: p}, nil
}

// CaseStudyQ1 returns the cyclic YouTube case-study pattern Q1 of the
// paper's Fig. 4(a).
func CaseStudyQ1() *Pattern { return &Pattern{p: gen.Fig4Q1()} }

// CaseStudyQ2 returns the DAG YouTube case-study pattern Q2 of the paper's
// Fig. 4(b).
func CaseStudyQ2() *Pattern { return &Pattern{p: gen.Fig4Q2()} }

// TopKMulti answers one top-k query per designated output node (the
// multiple-output-node extension of the paper's §2.2): the returned map is
// keyed by output node index. All runs share g's bound index.
func TopKMulti(g *Graph, p *Pattern, outputs []int, k int, opts ...Option) (map[int]*Result, error) {
	o := buildOptions(opts)
	eng := o.engine
	if eng.Cache == nil && eng.Bounds != core.BoundTight {
		eng.Cache = g.boundsCache()
	}
	raw, err := core.TopKMulti(g.g, p.p, outputs, k, eng)
	if err != nil {
		return nil, err
	}
	out := make(map[int]*Result, len(raw))
	for uo, r := range raw {
		out[uo] = convertResult(g, r)
	}
	return out, nil
}

// TopKByRelevanceFunc ranks the full match set of the output node under one
// of the generalized relevance functions of §3.4, selected by name:
// "relevant-set-size" (the default δr), "preference-attachment",
// "common-neighbors" or "jaccard-coefficient". It evaluates the entire
// match set (find-all), returning up to k matches with their generalized
// scores.
func TopKByRelevanceFunc(g *Graph, p *Pattern, k int, relevance string) (*Result, []float64, error) {
	rel, err := ranking.RelevanceByName(relevance)
	if err != nil {
		return nil, nil, err
	}
	gen, err := core.RankedGeneralized(g.g, p.p, k, rel)
	if err != nil {
		return nil, nil, err
	}
	res := convertResult(g, gen.Result)
	scores := gen.Scores
	if len(scores) > len(res.Matches) {
		scores = scores[:len(res.Matches)]
	}
	return res, scores, nil
}

// RelevanceFuncNames lists the generalized relevance functions available to
// TopKByRelevanceFunc.
func RelevanceFuncNames() []string { return ranking.RelevanceNames() }
