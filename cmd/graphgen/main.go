// Command graphgen generates the datasets of the evaluation (synthetic,
// amazon-like, citation-like, youtube-like) and, optionally, an
// instance-guided pattern workload, writing them in the library's text
// formats.
//
// Usage:
//
//	graphgen -kind youtube -n 100000 -m 350000 -seed 1 -out graph.txt
//	graphgen -kind citation -n 50000 -m 120000 -out g.txt \
//	         -patterns 10 -pnodes 4 -pedges 6 -pattern-out q
//
// With -patterns N it also writes q-0.txt .. q-(N-1).txt next to the graph.
// Passing -stats prints the structural summary of the generated graph.
package main

import (
	"flag"
	"fmt"
	"os"

	"divtopk/internal/gen"
	"divtopk/internal/graph"
	"divtopk/internal/pattern"
)

func main() {
	kind := flag.String("kind", "synthetic", "dataset: synthetic|amazon|citation|youtube")
	n := flag.Int("n", 10000, "number of nodes")
	m := flag.Int("m", 30000, "number of edges")
	labels := flag.Int("labels", 15, "label alphabet size (synthetic only)")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "", "output graph file (default stdout)")
	stats := flag.Bool("stats", false, "print structural stats to stderr")

	patterns := flag.Int("patterns", 0, "also generate this many patterns")
	pnodes := flag.Int("pnodes", 4, "pattern nodes |Vp|")
	pedges := flag.Int("pedges", 6, "pattern edges |Ep|")
	pcyclic := flag.Bool("pcyclic", false, "require a cycle in patterns")
	ppreds := flag.Bool("ppreds", false, "attach attribute predicates")
	patternOut := flag.String("pattern-out", "pattern", "pattern file prefix")
	flag.Parse()

	var g *graph.Graph
	switch *kind {
	case "synthetic":
		g = gen.Synthetic(gen.SynthConfig{N: *n, M: *m, Labels: *labels, Seed: *seed})
	case "amazon":
		g = gen.AmazonLike(*n, *m, *seed)
	case "citation":
		g = gen.CitationLike(*n, *m, *seed)
	case "youtube":
		g = gen.YouTubeLike(*n, *m, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := graph.Write(w, g); err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Fprint(os.Stderr, graph.ComputeStats(g).String())
	}

	if *patterns > 0 {
		ps, err := gen.Suite(g, gen.PatternConfig{
			Nodes: *pnodes, Edges: *pedges, Cyclic: *pcyclic, Predicates: *ppreds, Seed: *seed,
		}, *patterns)
		if err != nil {
			fatal(err)
		}
		for i, p := range ps {
			name := fmt.Sprintf("%s-%d.txt", *patternOut, i)
			f, err := os.Create(name)
			if err != nil {
				fatal(err)
			}
			if err := pattern.Write(f, p); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s: %s\n", name, p)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
