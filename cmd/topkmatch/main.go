// Command topkmatch answers (diversified) top-k graph pattern matching
// queries over graph and pattern files in the library's text formats.
//
// Usage:
//
//	topkmatch -graph g.txt -pattern q.txt -k 10
//	topkmatch -graph g.txt -pattern q.txt -k 10 -diversify -lambda 0.5
//	topkmatch -graph g.txt -pattern q.txt -k 10 -algo match   # baseline
//
// It prints one line per returned match (node, label, relevance bounds) and
// a summary with the paper's MR statistics.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"divtopk/internal/core"
	"divtopk/internal/diversify"
	"divtopk/internal/graph"
	"divtopk/internal/pattern"
)

func main() {
	graphPath := flag.String("graph", "", "graph file (required)")
	patternPath := flag.String("pattern", "", "pattern file (required)")
	k := flag.Int("k", 10, "number of matches to return")
	algo := flag.String("algo", "topk", "topk|topknopt|match")
	div := flag.Bool("diversify", false, "diversified top-k (TopKDH; -approx for TopKDiv)")
	approx := flag.Bool("approx", false, "use the 2-approximation TopKDiv for -diversify")
	lambda := flag.Float64("lambda", 0.5, "diversification balance λ in [0,1]")
	seed := flag.Int64("seed", 1, "seed for the nopt strategy")
	par := flag.Int("parallelism", 0, "worker goroutines (0 = all cores, 1 = sequential)")
	flag.Parse()

	if *graphPath == "" || *patternPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	g := loadGraph(*graphPath)
	p := loadPattern(*patternPath)
	fmt.Printf("graph: %d nodes, %d edges; pattern: %s\n", g.NumNodes(), g.NumEdges(), p)

	start := time.Now()
	if *div {
		runDiversified(g, p, *k, *lambda, *approx, *par)
	} else {
		runTopK(g, p, *k, *algo, *seed, *par)
	}
	fmt.Printf("elapsed: %s\n", time.Since(start).Round(time.Microsecond))
}

func runTopK(g *graph.Graph, p *pattern.Pattern, k int, algo string, seed int64, par int) {
	var (
		res *core.Result
		err error
	)
	switch algo {
	case "match":
		res, err = core.MatchBaselineOpts(g, p, k, false, core.Options{Parallelism: par})
	case "topknopt":
		res, err = core.TopK(g, p, k, core.Options{Strategy: core.StrategyRandom, Seed: seed, Parallelism: par})
	case "topk":
		res, err = core.TopK(g, p, k, core.Options{Parallelism: par})
	default:
		fatal(fmt.Errorf("unknown algo %q", algo))
	}
	if err != nil {
		fatal(err)
	}
	if !res.GlobalMatch {
		fmt.Println("G does not match Q: Mu(Q,G,uo) is empty")
		return
	}
	for i, m := range res.Matches {
		exact := ""
		if !m.Exact {
			exact = fmt.Sprintf(" (bounds [%d,%d])", m.Relevance, m.Upper)
		}
		fmt.Printf("%2d. node %-8d %-12s δr=%d%s\n", i+1, m.Node, g.Label(m.Node), m.Relevance, exact)
	}
	fmt.Printf("examined %d of %d output candidates; batches=%d early=%v\n",
		res.Stats.MatchesFound, res.Stats.CandidatesOfOutput, res.Stats.Batches, res.Stats.EarlyTerminated)
}

func runDiversified(g *graph.Graph, p *pattern.Pattern, k int, lambda float64, approx bool, par int) {
	var (
		res *diversify.Result
		err error
	)
	if approx {
		res, err = diversify.TopKDivOpts(g, p, k, lambda, core.Options{Parallelism: par})
	} else {
		res, err = diversify.TopKDH(g, p, k, lambda, core.Options{Parallelism: par})
	}
	if err != nil {
		fatal(err)
	}
	if !res.GlobalMatch {
		fmt.Println("G does not match Q: Mu(Q,G,uo) is empty")
		return
	}
	for i, m := range res.Matches {
		fmt.Printf("%2d. node %-8d %-12s δr>=%d\n", i+1, m.Node, g.Label(m.Node), m.Relevance)
	}
	fmt.Printf("F(S) = %.4f (λ=%.2f)\n", res.F, lambda)
}

func loadGraph(path string) *graph.Graph {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	g, err := graph.Read(f)
	if err != nil {
		fatal(err)
	}
	return g
}

func loadPattern(path string) *pattern.Pattern {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	p, err := pattern.Read(f)
	if err != nil {
		fatal(err)
	}
	return p
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
