// Command divtopk-bench runs the repository's tracked benchmark baseline:
// fixed-seed ns/op + allocs/op measurements of every hot component —
// candidates, simulation refinement, relevant sets, the find-all baseline,
// the early-termination engine, TopKDiv and serving throughput — with the
// frozen pre-CSR reference kernel measured side by side as the "before"
// column and per-component speedups derived from the pair.
//
// The default configuration is the 150k-node generator graph the repo's
// acceptance numbers are recorded on; -short shrinks it to CI size. The
// report is printed as a table and, with -out, written as JSON
// (BENCH_PR10.json is a committed run of this command):
//
//	go run ./cmd/divtopk-bench -out BENCH_PR10.json
//	go run ./cmd/divtopk-bench -short -serving=false
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"

	divtopk "divtopk"
	"divtopk/internal/bench"
	"divtopk/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("divtopk-bench: ")

	short := flag.Bool("short", false, "use the CI-sized configuration (12k nodes)")
	nodes := flag.Int("nodes", 0, "graph nodes (default: config preset)")
	edges := flag.Int("edges", 0, "graph edges (default: config preset)")
	labels := flag.Int("labels", 0, "label alphabet size (default: config preset)")
	seed := flag.Int64("seed", 1, "generator seed (default: config preset)")
	k := flag.Int("k", 0, "top-k (default: config preset)")
	lambda := flag.Float64("lambda", 0.5, "diversification lambda (0 = pure relevance; default: config preset)")
	parallelism := flag.Int("parallelism", 0, "engine workers per query (default 1: pure kernel A/B)")
	queries := flag.Int("queries", 0, "mined patterns per measured op (default: config preset)")
	deltas := flag.Int("deltas", 0, "delta-chain length for the maintenance measurement (default: config preset)")
	serving := flag.Bool("serving", true, "measure in-process serving throughput")
	updateEvery := flag.Int("serving-update-every", 0, "make every Nth serving request a graph update (default: config preset; negative disables)")
	out := flag.String("out", "", "write the JSON report to this file")
	flag.Parse()

	// Overrides apply only when the flag was given explicitly, so legitimate
	// zero values (-lambda 0, -seed 0) are honored rather than treated as
	// "unset" sentinels.
	given := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { given[f.Name] = true })

	cfg := bench.DefaultBaselineConfig()
	if *short {
		cfg = bench.ShortBaselineConfig()
	}
	if given["nodes"] {
		cfg.Nodes = *nodes
	}
	if given["edges"] {
		cfg.Edges = *edges
	}
	if given["labels"] {
		cfg.Labels = *labels
	}
	if given["seed"] {
		cfg.Seed = *seed
	}
	if given["k"] {
		cfg.K = *k
	}
	if given["lambda"] {
		cfg.Lambda = *lambda
	}
	if given["parallelism"] {
		cfg.Parallelism = *parallelism
	}
	if given["queries"] {
		cfg.Queries = *queries
	}
	if given["deltas"] {
		cfg.Deltas = *deltas
	}
	if given["serving-update-every"] {
		cfg.ServingUpdateEvery = *updateEvery
		if *updateEvery < 0 {
			cfg.ServingUpdateEvery = 0
		}
	}
	cfg.Serving = *serving

	rep, err := bench.RunBaseline(cfg, os.Stderr)
	if err != nil {
		log.Fatal(err)
	}
	if cfg.Serving {
		log.Printf("measuring serving throughput (%d requests, %d clients)",
			cfg.ServingRequests, cfg.ServingConcurrency)
		readOnly, mixed, mixed4, err := servingBaseline(cfg)
		if err != nil {
			log.Fatal(err)
		}
		rep.Serving = readOnly
		rep.ServingMixed = mixed
		rep.ServingMixed4 = mixed4
	}

	fmt.Print(rep.Format())
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *out)
	}
}

// servingReps matches internal/bench's measureReps: the serving rows are
// measured with the same minimum-of-N discipline as the component entries —
// the best of five independent runs is recorded, the standard defense
// against scheduler and GC-pacing noise on shared machines.
const servingReps = 5

// servingBaseline registers the benchmark graph in an in-process daemon on a
// loopback port and fires the HTTP load generator at it — the read-only
// workload (trend-comparable across epochs) and, when ServingUpdateEvery >
// 0, the mixed update/query workload, the latter both at the ambient
// GOMAXPROCS and pinned to GOMAXPROCS=4 (the daemon and the generator share
// one process, so the 4-proc variant separates the algorithmic numbers from
// single-core scheduler contention) — measuring what an external client sees
// end to end (JSON decode included). Each of the servingReps repetitions
// gets a fresh daemon and freshly warmed session, so every run starts from
// the same version-0 graph and cold cache; the best run (by throughput) of
// each workload is reported.
func servingBaseline(cfg bench.BaselineConfig) (*bench.ServingSummary, *bench.ServingSummary, *bench.ServingSummary, error) {
	pg := divtopk.NewSynthetic(cfg.Nodes, cfg.Edges, cfg.Labels, cfg.Seed)
	var texts []string
	for seed := int64(1); len(texts) < 4 && seed < 64; seed++ {
		q, err := divtopk.GeneratePattern(pg, cfg.PatternNodes, cfg.PatternEdges, false, false, seed)
		if err != nil {
			continue
		}
		var buf bytes.Buffer
		if err := divtopk.WritePattern(&buf, q); err != nil {
			return nil, nil, nil, err
		}
		texts = append(texts, buf.String())
	}
	if len(texts) == 0 {
		return nil, nil, nil, fmt.Errorf("no serving patterns mined")
	}

	var bestRO, bestMixed, bestMixed4 *bench.ServingReport
	for rep := 0; rep < servingReps; rep++ {
		ro, mixed, err := serveOnce(cfg, pg, texts, true)
		if err != nil {
			return nil, nil, nil, err
		}
		if bestRO == nil || ro.Throughput > bestRO.Throughput {
			bestRO = ro
		}
		if mixed != nil && (bestMixed == nil || mixed.Throughput > bestMixed.Throughput) {
			bestMixed = mixed
		}
		if mixed != nil {
			log.Printf("serving rep %d/%d: read-only %.0f req/s, mixed %.0f req/s (update p50 %s, post-commit p50 %s)",
				rep+1, servingReps, ro.Throughput, mixed.Throughput, mixed.UpdateP50, mixed.PostCommitP50)
		} else {
			log.Printf("serving rep %d/%d: read-only %.0f req/s", rep+1, servingReps, ro.Throughput)
		}
		if cfg.ServingUpdateEvery > 0 {
			prev := runtime.GOMAXPROCS(4)
			_, mixed4, err := serveOnce(cfg, pg, texts, false)
			runtime.GOMAXPROCS(prev)
			if err != nil {
				return nil, nil, nil, err
			}
			if mixed4 != nil && (bestMixed4 == nil || mixed4.Throughput > bestMixed4.Throughput) {
				bestMixed4 = mixed4
			}
			if mixed4 != nil {
				log.Printf("serving rep %d/%d: mixed GOMAXPROCS=4 %.0f req/s", rep+1, servingReps, mixed4.Throughput)
			}
		}
	}
	if bestMixed == nil {
		return bestRO.Summarize(), nil, nil, nil
	}
	var mixed4Sum *bench.ServingSummary
	if bestMixed4 != nil {
		mixed4Sum = bestMixed4.Summarize()
	}
	return bestRO.Summarize(), bestMixed.Summarize(), mixed4Sum, nil
}

// serveOnce runs one serving repetition against a fresh in-process daemon:
// the read-only workload (skipped when withReadOnly is false — the
// GOMAXPROCS=4 variant measures only the mixed regime), then (when
// configured) the mixed update/query workload on the same daemon — updates
// mutate the graph, which is why the next repetition rebuilds the daemon
// from the pristine snapshot.
func serveOnce(cfg bench.BaselineConfig, pg *divtopk.Graph, texts []string, withReadOnly bool) (*bench.ServingReport, *bench.ServingReport, error) {
	reg := server.NewRegistry(divtopk.WithCache(256), divtopk.Parallelism(cfg.Parallelism))
	if err := reg.Add("bench", pg); err != nil {
		return nil, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: server.New(reg, server.Config{}).Handler()}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()
	defer srv.Close()

	load := bench.ServingConfig{
		BaseURL:     "http://" + ln.Addr().String(),
		Graph:       "bench",
		Patterns:    texts,
		K:           cfg.K,
		Requests:    cfg.ServingRequests,
		Concurrency: cfg.ServingConcurrency,
	}
	var rep *bench.ServingReport
	if withReadOnly {
		var err error
		if rep, err = bench.ServeLoad(load); err != nil {
			return nil, nil, err
		}
	}
	if cfg.ServingUpdateEvery <= 0 {
		return rep, nil, nil
	}
	load.UpdateEvery = cfg.ServingUpdateEvery
	mixed, err := bench.ServeLoad(load)
	if err != nil {
		return nil, nil, err
	}
	return rep, mixed, nil
}
