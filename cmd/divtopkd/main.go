// Command divtopkd is the query-serving daemon: it loads named graphs,
// warms a Matcher session (full bound index + result cache) per graph, and
// serves (diversified) top-k queries over an HTTP JSON API with
// per-request timeouts, k/parallelism caps, and singleflight-deduplicated
// caching.
//
// Serve two graphs:
//
//	divtopkd -listen :8372 -graph social=social.txt -graph cite=cite.txt
//
// Query it:
//
//	curl -s localhost:8372/v1/query -d '{"graph":"social","pattern":"node 0 PM *\nnode 1 DB\nedge 0 1\n","k":10}'
//	curl -s localhost:8372/v1/query/diversified -d '{"graph":"social","pattern":"...","k":10,"lambda":0.5}'
//	curl -s localhost:8372/v1/graphs
//	curl -s localhost:8372/healthz
//
// Update it (graphs are dynamic: deltas append nodes and insert/delete
// edges; every response carries the graph version the answer was computed
// against):
//
//	curl -s localhost:8372/v1/graphs/social/updates -d '{"add_nodes":[{"label":"DB"}],"add_edges":[[0,6000]]}'
//
// Make it durable — every applied delta goes through a write-ahead log
// before it is served, the WAL rotates into CSR checkpoints, and the next
// boot recovers every graph from the data directory (at which point the
// -graph seed files are ignored for recovered names):
//
//	divtopkd -listen :8372 -graph social=social.txt -data-dir /var/lib/divtopkd -fsync always
//
// Measure it (self-contained: generates a graph and a query workload,
// serves on a loopback port, fires the load generator, prints throughput,
// latency percentiles and cache hit rate):
//
//	divtopkd -loadgen -loadgen-requests 5000 -loadgen-concurrency 32
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"divtopk"
	"divtopk/internal/bench"
	"divtopk/internal/server"
	"divtopk/internal/wal"
)

func main() {
	var graphs []struct{ name, path string }
	listen := flag.String("listen", ":8372", "listen address")
	flag.Func("graph", "name=path of a graph file in the text format (repeatable)", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("want name=path, got %q", v)
		}
		graphs = append(graphs, struct{ name, path string }{name, path})
		return nil
	})
	cacheEntries := flag.Int("cache", 4096, "result-cache entries per graph session (0 disables caching)")
	parallelism := flag.Int("parallelism", 0, "session worker goroutines (0 = all cores)")
	maxK := flag.Int("max-k", 1000, "cap on the requested k")
	maxParallelism := flag.Int("max-parallelism", 0, "cap on per-request parallelism (0 = all cores)")
	maxConcurrent := flag.Int("max-concurrent", 0, "evaluation worker pool size (0 = 2x cores)")
	timeout := flag.Duration("timeout", 10*time.Second, "default per-request timeout")
	maxTimeout := flag.Duration("max-timeout", time.Minute, "cap on the per-request timeout")
	dataDir := flag.String("data-dir", "", "durability directory: WAL + checkpoints per graph, recovered on boot (empty = in-memory only)")
	fsyncPolicy := flag.String("fsync", "always", "WAL fsync policy: always, interval or never")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "flush interval for -fsync interval")
	checkpointEvery := flag.Int("checkpoint-every", 0, "updates between WAL-to-checkpoint rotations (0 = default, negative = shutdown only)")

	loadgen := flag.Bool("loadgen", false, "run the self-contained load generator instead of serving")
	lgRequests := flag.Int("loadgen-requests", 5000, "loadgen: total requests")
	lgConcurrency := flag.Int("loadgen-concurrency", 16, "loadgen: concurrent clients")
	lgDistinct := flag.Int("loadgen-distinct", 8, "loadgen: distinct queries cycled through")
	lgK := flag.Int("loadgen-k", 10, "loadgen: k per query")
	lgLambda := flag.Float64("loadgen-lambda", 0.5, "loadgen: lambda for -loadgen-diversified")
	lgDiversified := flag.Bool("loadgen-diversified", false, "loadgen: use /v1/query/diversified")
	lgNodes := flag.Int("loadgen-nodes", 8_000, "loadgen: generated graph nodes")
	lgEdges := flag.Int("loadgen-edges", 80_000, "loadgen: generated graph edges")
	lgUpdateEvery := flag.Int("loadgen-update-every", 0, "loadgen: make every Nth request a graph update (0 = read-only workload)")
	flag.Parse()

	opts := []divtopk.Option{divtopk.Parallelism(*parallelism)}
	if *cacheEntries > 0 {
		opts = append(opts, divtopk.WithCache(*cacheEntries))
	}
	cfg := server.Config{
		MaxK:           *maxK,
		MaxParallelism: *maxParallelism,
		MaxConcurrent:  *maxConcurrent,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
	}

	if *loadgen {
		runLoadgen(cfg, opts, *lgRequests, *lgConcurrency, *lgDistinct, *lgK, *lgLambda, *lgDiversified, *lgNodes, *lgEdges, *lgUpdateEvery)
		return
	}

	var reg *server.Registry
	if *dataDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsyncPolicy)
		if err != nil {
			log.Fatalf("divtopkd: -fsync: %v", err)
		}
		start := time.Now()
		reg, err = server.NewPersistentRegistry(server.PersistOptions{
			Dir:             *dataDir,
			Policy:          policy,
			Interval:        *fsyncInterval,
			CheckpointEvery: *checkpointEvery,
		}, opts...)
		if err != nil {
			log.Fatal(err)
		}
		if n := reg.Len(); n > 0 {
			log.Printf("recovered %d graph(s) from %s in %s", n, *dataDir, time.Since(start).Round(time.Millisecond))
		}
	} else {
		reg = server.NewRegistry(opts...)
	}
	if len(graphs) == 0 && reg.Len() == 0 {
		fmt.Fprintln(os.Stderr, "divtopkd: at least one -graph name=path is required (or -loadgen, or a -data-dir with recovered graphs)")
		flag.Usage()
		os.Exit(2)
	}
	for _, g := range graphs {
		if _, ok := reg.Get(g.name); ok {
			// Recovered from the data dir: the durable state is newer than
			// the seed file, which only matters on the very first boot.
			log.Printf("graph %q: already recovered from %s; ignoring %s", g.name, *dataDir, g.path)
			continue
		}
		start := time.Now()
		if err := reg.LoadFile(g.name, g.path); err != nil {
			log.Fatal(err)
		}
		m, _ := reg.Get(g.name)
		snap := m.Graph()
		log.Printf("graph %q: %d nodes, %d edges (warmed in %s)",
			g.name, snap.NumNodes(), snap.NumEdges(), time.Since(start).Round(time.Millisecond))
	}

	srv := &http.Server{
		Addr:    *listen,
		Handler: server.New(reg, cfg).Handler(),
		// Slow clients must not bypass the per-request budget: the query
		// timeout only starts once the body is decoded, so the transport
		// bounds header/body reads itself. Writes get the budget plus slack
		// for the response.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      *maxTimeout + 30*time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// Drain in-flight requests first, then flush durability: once no
		// update can be running, every graph gets a clean-shutdown checkpoint
		// and its WAL closed, so the next boot replays nothing.
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		if err := reg.Close(); err != nil {
			log.Printf("shutdown: closing durability: %v", err)
		}
	}()
	log.Printf("serving %d graph(s) on %s", reg.Len(), *listen)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
}

// runLoadgen generates a graph and a distinct-query workload, serves them
// on a loopback port, and fires the bench load generator at it. With
// updateEvery > 0 the workload is mixed: every Nth request applies a graph
// delta through the updates endpoint.
func runLoadgen(cfg server.Config, opts []divtopk.Option, requests, concurrency, distinct, k int, lambda float64, diversified bool, nodes, edges, updateEvery int) {
	log.Printf("loadgen: generating graph (%d nodes, %d edges)", nodes, edges)
	g := divtopk.NewYouTubeLike(nodes, edges, 1)
	var patterns []string
	for seed := int64(1); len(patterns) < distinct; seed++ {
		// Bound the retries: on a degenerate graph (too small or too sparse
		// to mine instances from) the generator fails for every seed, and an
		// unbounded loop would hang the benchmark silently.
		if seed > int64(8*distinct) {
			log.Fatalf("loadgen: generated only %d of %d patterns after %d seeds; use a larger -loadgen-nodes/-loadgen-edges", len(patterns), distinct, seed-1)
		}
		q, err := divtopk.GeneratePattern(g, 4, 6, seed%2 == 0, false, seed)
		if err != nil {
			continue
		}
		var buf bytes.Buffer
		if err := divtopk.WritePattern(&buf, q); err != nil {
			log.Fatal(err)
		}
		patterns = append(patterns, buf.String())
	}

	start := time.Now()
	reg := server.NewRegistry(opts...)
	if err := reg.Add("bench", g); err != nil {
		log.Fatal(err)
	}
	log.Printf("loadgen: session warmed in %s", time.Since(start).Round(time.Millisecond))

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: server.New(reg, cfg).Handler()}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()
	defer srv.Close()

	baseURL := "http://" + ln.Addr().String()
	log.Printf("loadgen: %d requests, %d clients, %d distinct queries against %s",
		requests, concurrency, len(patterns), baseURL)
	rep, err := bench.ServeLoad(bench.ServingConfig{
		BaseURL:     baseURL,
		Graph:       "bench",
		Patterns:    patterns,
		K:           k,
		Lambda:      lambda,
		Diversified: diversified,
		Requests:    requests,
		Concurrency: concurrency,
		UpdateEvery: updateEvery,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)
}
