// Command experiments regenerates the paper's evaluation (Fig. 4, Fig.
// 5a-l, the λ-sensitivity result, and two ablations) on the substituted
// datasets and prints each figure as a text table.
//
// Usage:
//
//	experiments [-scale small|medium] [-figure all|fig4|fig5a|...|lambda|ablation-bounds|ablation-shape]
//
// Run with -figure all (the default) to reproduce everything; see
// EXPERIMENTS.md for a recorded run and the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"divtopk/internal/bench"
)

func main() {
	scale := flag.String("scale", "medium", "dataset scale preset: small|medium")
	figure := flag.String("figure", "all", "experiment to run: all, fig4, fig5a..fig5l, lambda, ablation-bounds, ablation-shape, list")
	flag.Parse()

	sc, err := bench.ByName(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *figure == "list" {
		ids := make([]string, 0, len(bench.Registry)+1)
		for id := range bench.Registry {
			ids = append(ids, id)
		}
		ids = append(ids, "fig4")
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	start := time.Now()
	switch *figure {
	case "all":
		for _, f := range bench.All(sc) {
			fmt.Println(f.Format())
		}
		fmt.Println(bench.Fig4(sc))
		fmt.Println(bench.Lambda(sc).Format())
		fmt.Println(bench.AblationBounds(sc).Format())
		fmt.Println(bench.AblationShape(sc).Format())
		fmt.Println(bench.MRScale(sc).Format())
	case "fig4":
		fmt.Println(bench.Fig4(sc))
	default:
		run, ok := bench.Registry[*figure]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q (try -figure list)\n", *figure)
			os.Exit(2)
		}
		fmt.Println(run(sc).Format())
	}
	fmt.Printf("# scale=%s total=%s\n", sc.Name, time.Since(start).Round(time.Millisecond))
}
