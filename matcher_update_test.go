package divtopk

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"
)

// assertDiversifiedIdentical requires two diversified answers to be deeply
// equal — the byte-identity bar the warm cache's advanced entries are held
// to.
func assertDiversifiedIdentical(t *testing.T, label string, a, b *DiversifiedResult) {
	t.Helper()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("%s: diversified results differ:\n%+v\n%+v", label, a, b)
	}
}

// TestMatcherUpdateVersionedCacheKeys is the session-layer half of the
// delta-equivalence acceptance criterion: a result cached before an update
// is never served after it (the snapshot version participates in every
// cache key), and post-update answers are byte-identical to a fresh session
// over the updated graph. Since the warm result cache, the stale entry is
// not merely unreachable — the commit advances the hot pattern's entry to
// the new version, so the first post-update query is an "advanced" hit
// whose payload still matches a cold session byte for byte.
func TestMatcherUpdateVersionedCacheKeys(t *testing.T) {
	g, patterns := testGraphAndPatterns(t, 2)
	m := NewMatcher(g, WithCache(64))
	q := patterns[0]

	before, ver, err := m.TopKWithVersion(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ver != 0 || m.Version() != 0 {
		t.Fatalf("fresh session version = %d/%d, want 0", ver, m.Version())
	}
	if _, err := m.TopK(q, 10); err != nil {
		t.Fatal(err)
	}
	if s := m.CacheStats(); s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("pre-update stats %+v, want 1 miss 1 hit", s)
	}

	// Update: append a node wired into the neighborhood of node 0.
	var d Delta
	idx := d.AddNode(g.Label(0))
	nn := g.NumNodes() + idx
	d.InsertEdge(0, nn)
	d.InsertEdge(nn, 1)
	g2, err := m.Update(&d)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Version() != 1 || m.Version() != 1 {
		t.Fatalf("post-update version = %d/%d, want 1", g2.Version(), m.Version())
	}

	// The commit advanced the hot entry: the same query hits it under the
	// new version (reported "advanced" exactly once), never the stale one,
	// and must match a cold session over the updated graph byte for byte.
	if s := m.CacheStats(); s.Advanced != 1 {
		t.Fatalf("commit did not install an advanced entry: %+v", s)
	}
	after, info, err := m.TopKInfo(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 {
		t.Fatalf("post-update answer version = %d, want 1", info.Version)
	}
	if info.Cache != "advanced" {
		t.Fatalf("post-update provenance = %q, want advanced", info.Cache)
	}
	if s := m.CacheStats(); s.Misses != 1 || s.Hits != 2 {
		t.Fatalf("post-update query not served from the advanced entry: %+v", s)
	}
	if _, info2, err := m.TopKInfo(q, 10); err != nil || info2.Cache != "hit" {
		t.Fatalf("advanced tag did not decay to a plain hit: %+v, %v", info2, err)
	}
	cold, err := NewMatcher(g2).TopK(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, "post-update", after, cold)

	// Old snapshot still answers like it always did (immutability), and the
	// old cached entry is still served to... nobody: only version-0 keys
	// reach it, and the session is at version 1 forever.
	oldAgain, err := TopK(g, q, 10)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, "old snapshot", before, oldAgain)

	// Diversified results are keyed by version — and advanced across commits
	// — the same way.
	if _, _, err := m.TopKDiversifiedWithVersion(q, 5, 0.5); err != nil {
		t.Fatal(err)
	}
	adv := m.CacheStats().Advanced
	var d2 Delta
	d2.DeleteEdge(0, nn)
	if _, err := m.Update(&d2); err != nil {
		t.Fatal(err)
	}
	dres, dinfo, err := m.TopKDiversifiedInfo(q, 5, 0.5)
	if err != nil || dinfo.Version != 2 {
		t.Fatalf("diversified post-update version = %d err = %v, want 2 nil", dinfo.Version, err)
	}
	if dinfo.Cache != "advanced" || m.CacheStats().Advanced <= adv {
		t.Fatalf("diversified entry not advanced across the commit: %+v (%+v)", dinfo, m.CacheStats())
	}
	dcold, err := NewMatcher(m.Graph()).TopKDiversified(q, 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	assertDiversifiedIdentical(t, "diversified post-update", dres, dcold)
}

// TestMatcherUpdateFailureLeavesSessionIntact pins the error path: a bad
// delta changes nothing.
func TestMatcherUpdateFailureLeavesSessionIntact(t *testing.T) {
	g, patterns := testGraphAndPatterns(t, 1)
	m := NewMatcher(g, WithCache(16))
	if _, err := m.TopK(patterns[0], 5); err != nil {
		t.Fatal(err)
	}
	var bad Delta
	bad.InsertEdge(0, 10_000_000)
	if _, err := m.Update(&bad); err == nil {
		t.Fatal("bad delta accepted")
	}
	if m.Version() != 0 || m.Graph() != g {
		t.Fatal("failed update swapped the session graph")
	}
	if _, err := m.TopK(patterns[0], 5); err != nil {
		t.Fatal(err)
	}
	if s := m.CacheStats(); s.Hits != 1 {
		t.Fatalf("cache not intact after failed update: %+v", s)
	}
}

// TestMatcherConcurrentUpdatesAndQueries is the -race exercise of the swap:
// queries, batch queries and updates (which intern new labels into the dict
// the live graph reads) run concurrently; every answer must come from a
// consistent snapshot (matching one of the sequential per-version answers).
func TestMatcherConcurrentUpdatesAndQueries(t *testing.T) {
	g, patterns := testGraphAndPatterns(t, 2)
	m := NewMatcher(g, WithCache(128))
	q := patterns[0]

	const updates = 6
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, _, err := m.TopKWithVersion(q, 10); err != nil {
					errc <- err
					return
				}
				if _, err := m.TopKDiversified(q, 5, 0.5); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < updates; i++ {
			var d Delta
			// A fresh label every time: Intern runs against the dict the
			// query goroutines are reading labels from.
			idx := d.AddNode(fmt.Sprintf("dyn-%d", i))
			nn := m.Graph().NumNodes() + idx
			d.InsertEdge(0, nn)
			if _, err := m.Update(&d); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if m.Version() != updates {
		t.Fatalf("version = %d, want %d", m.Version(), updates)
	}
}

// TestLambdaValidationLibraryLayer is the library half of the λ bugfix:
// every diversified entry point rejects NaN/±Inf/out-of-range λ with the
// structured ErrLambdaRange instead of silently producing NaN F.
func TestLambdaValidationLibraryLayer(t *testing.T) {
	g, patterns := testGraphAndPatterns(t, 1)
	q := patterns[0]
	m := NewMatcher(g, WithCache(8))

	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -0.25, 1.25} {
		if _, err := TopKDiversified(g, q, 5, bad); !errors.Is(err, ErrLambdaRange) {
			t.Errorf("TopKDiversified(λ=%v) err = %v, want ErrLambdaRange", bad, err)
		}
		if _, err := TopKDiversified(g, q, 5, bad, WithApproximation()); !errors.Is(err, ErrLambdaRange) {
			t.Errorf("TopKDiv(λ=%v) err = %v, want ErrLambdaRange", bad, err)
		}
		if _, err := m.TopKDiversified(q, 5, bad); !errors.Is(err, ErrLambdaRange) {
			t.Errorf("Matcher.TopKDiversified(λ=%v) err = %v, want ErrLambdaRange", bad, err)
		}
		if _, err := m.BatchTopKDiversified(patterns, 5, bad); !errors.Is(err, ErrLambdaRange) {
			t.Errorf("BatchTopKDiversified(λ=%v) err = %v, want ErrLambdaRange", bad, err)
		}
	}
	// The cache holds no entry for any rejected λ.
	if s := m.CacheStats(); s.Entries != 0 || s.Misses != 0 {
		t.Fatalf("rejected λ touched the cache: %+v", s)
	}
	// Boundary values work.
	for _, ok := range []float64{0, 1} {
		if _, err := TopKDiversified(g, q, 5, ok); err != nil {
			t.Errorf("λ=%v rejected: %v", ok, err)
		}
	}
}

// TestMatcherUpdateWithStats pins the index-maintenance surface of Update:
// the stats describe a real maintenance step, query results after an
// advanced index are byte-identical to a cold session over the updated
// graph, and both forced maintenance paths (never fall back / always
// rebuild) agree with the adaptive one.
func TestMatcherUpdateWithStats(t *testing.T) {
	g, patterns := testGraphAndPatterns(t, 1)
	q := patterns[0]
	sessions := map[string]*Matcher{
		"adaptive":    NewMatcher(g),
		"incremental": NewMatcher(g, WithIndexRebuildRatio(1)),
		"rebuild":     NewMatcher(g, WithIndexRebuildRatio(1e-12)),
	}

	for step := 0; step < 3; step++ {
		var d Delta
		idx := d.AddNode(fmt.Sprintf("dynstat-%d", step%2))
		// All sessions walk the same chain, so any one's node count works.
		nn := sessions["adaptive"].Graph().NumNodes() + idx
		// The appended node points INTO the base graph: warmed labels occur
		// below its component, so the frontier recomputes real work and the
		// tiny-ratio session's fallback has something to trip on. (A delta
		// affecting only labels the index never warmed recomputes zero cells
		// and stays incremental under any ratio.)
		d.InsertEdge(nn, 1)
		if step == 2 {
			d.DeleteEdge(nn-1, 1) // edge added by the previous step
		}

		var reference *Result
		for name, m := range sessions {
			g2, stats, err := m.UpdateWithStats(&d)
			if err != nil {
				t.Fatalf("%s step %d: %v", name, step, err)
			}
			if stats.Mode != "incremental" && stats.Mode != "rebuild" {
				t.Fatalf("%s step %d: mode %q", name, step, stats.Mode)
			}
			if name == "rebuild" && stats.Mode != "rebuild" {
				t.Fatalf("forced-rebuild session advanced incrementally: %+v", stats)
			}
			if stats.Mode == "rebuild" && (stats.AffectedRows != stats.TotalRows || stats.AffectedShare != 1) {
				t.Fatalf("rebuild stats must cover every row: %+v", stats)
			}
			if name == "incremental" && stats.Mode != "incremental" {
				t.Fatalf("forced-incremental session fell back: %+v", stats)
			}
			if stats.TotalRows != g2.NumNodes() {
				t.Fatalf("%s step %d: TotalRows %d, want %d", name, step, stats.TotalRows, g2.NumNodes())
			}
			if stats.BatchWidth != 1 {
				t.Fatalf("%s step %d: plain update has batch width %d", name, step, stats.BatchWidth)
			}
			if stats.AffectedShare < 0 || stats.AffectedShare > 1 {
				t.Fatalf("%s step %d: AffectedShare %v", name, step, stats.AffectedShare)
			}
			if stats.WallMicros < 0 {
				t.Fatalf("%s step %d: negative wall time", name, step)
			}
			res, err := m.TopK(q, 10)
			if err != nil {
				t.Fatalf("%s step %d: %v", name, step, err)
			}
			if reference == nil {
				cold, err := NewMatcher(g2).TopK(q, 10)
				if err != nil {
					t.Fatal(err)
				}
				assertResultsIdentical(t, fmt.Sprintf("%s step %d vs cold", name, step), res, cold)
				reference = res
			} else {
				assertResultsIdentical(t, fmt.Sprintf("%s step %d vs adaptive", name, step), res, reference)
			}
		}
	}
}
