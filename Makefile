GO ?= go
VET_BIN := bin/divtopk-vet

.PHONY: all build test race bench lint lint-custom vet-tool clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# What the race CI job runs: the whole suite under the race detector with
# shuffled test order, so accidental inter-test ordering dependencies and
# data races both surface.
race:
	$(GO) test -race -shuffle=on ./...

bench:
	$(GO) test -run '^$$' -bench Baseline -benchmem -benchtime 1x ./internal/bench/

# vet-tool builds the custom analyzer suite. tools/vet is a nested module
# (so the root module stays dependency-free), hence the cd: the root
# ./... patterns do not reach it.
vet-tool:
	cd tools/vet && $(GO) build -o ../../$(VET_BIN) ./cmd/divtopk-vet

# lint is the single local entry point for every static gate CI enforces:
# formatting, stock go vet, the analyzer suite's own tests (race detector
# on — the suite exercises the engine's concurrency shapes), and the
# divtopk-vet invariant checks over the repository AND over the analyzer
# suite itself, with the per-analyzer finding/suppression/stale summary.
# The gofmt sweep skips testdata trees: analyzer corpora are fixtures whose
# layout (want-comment alignment) is part of the test, and their src dirs
# are not packages of any module here.
lint: vet-tool
	@out=$$(find . -path ./bin -prune -o -name '*.go' -not -path '*/testdata/*' -print | xargs gofmt -l); \
		if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	cd tools/vet && $(GO) test -race -shuffle=on ./...
	./$(VET_BIN) -summary ./...
	./$(VET_BIN) -summary -dir tools/vet ./...

# lint-custom runs only the divtopk-vet invariant checks (fast inner loop).
lint-custom: vet-tool
	./$(VET_BIN) -summary ./...
	./$(VET_BIN) -summary -dir tools/vet ./...

clean:
	rm -rf bin
