// Package vet anchors the divtopk-vet static-analysis suite: a set of
// repo-specific analyzers that machine-check the concurrency and versioning
// invariants the divtopk engine's correctness rests on. Each analyzer
// encodes one rule that was once only written down in comments (and, in
// several cases, was violated and fixed in an earlier PR):
//
//   - snapmut: published graph snapshots are immutable — no writes to
//     graph.Graph fields or their CSR/dict backing slices outside the
//     whitelisted construction paths (New*/Build/ApplyDelta*/Read) and
//     sync.Once-guarded lazy caches.
//   - curload: one atomic snapshot load per function — a second cur.Load(),
//     or mixing cur.Load() with Version(), can observe a torn
//     snapshot/version pair across a concurrent Update.
//   - verkey: every query-result cache admission must flow the graph
//     snapshot version into its key, so entries cached against an older
//     snapshot are unreachable rather than stale.
//   - arenapair: a bitset.Arena.Get needs a matching Put in the same
//     function (deferred counts), or a reviewed justification — the arena's
//     zero-alloc steady state depends on sets coming back.
//   - lockhold: no heavy computation (Compute*/Warm*/Condensation/...)
//     and no channel sends while a sync.Mutex/RWMutex write lock acquired
//     in the same function is held.
//   - detorder: no ordered result slice may be built by appending in map
//     iteration order inside the deterministic kernels — the guarantee
//     behind the Parallelism-1..8 byte-identical tests.
//
// The module is nested under tools/vet so the main divtopk module stays
// dependency-free. The build environment is offline, so instead of
// golang.org/x/tools/go/analysis the analyzers are written against the
// source-compatible stdlib-only subset in ./analysis (same Analyzer / Pass /
// Diagnostic shape; swap the import path to port to the real framework).
//
// Run the whole suite from the repository root with:
//
//	make lint
//
// or directly:
//
//	go -C tools/vet build -o ../../bin/divtopk-vet ./cmd/divtopk-vet
//	./bin/divtopk-vet ./...
//
// The binary also speaks the cmd/go vet-tool protocol:
//
//	go vet -vettool=$(pwd)/bin/divtopk-vet ./...
//
// A diagnostic can be suppressed with a reviewed, justified comment on the
// flagged line or the line directly above it:
//
//	//lint:allow <analyzer> <justification>
//
// The justification is mandatory; a bare //lint:allow is itself a finding.
//
// Test files (_test.go) are exempt from all analyzers: the invariants guard
// production code, and tests deliberately drive the raw primitives —
// unversioned cache keys, never-returned arena sets — to exercise them.
package vet
