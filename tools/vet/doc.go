// Package vet anchors the divtopk-vet static-analysis suite: a set of
// repo-specific analyzers that machine-check the concurrency and versioning
// invariants the divtopk engine's correctness rests on. Each analyzer
// encodes one rule that was once only written down in comments (and, in
// several cases, was violated and fixed in an earlier PR):
//
//   - snapmut: published graph snapshots are immutable — no writes to
//     graph.Graph fields or their CSR/dict backing slices outside the
//     whitelisted construction paths (New*/Build/ApplyDelta*/Read) and
//     sync.Once-guarded lazy caches.
//   - curload: one atomic snapshot load per function — a second cur.Load(),
//     or mixing cur.Load() with Version(), can observe a torn
//     snapshot/version pair across a concurrent Update.
//   - verkey: every query-result cache admission must flow the graph
//     snapshot version into its key, so entries cached against an older
//     snapshot are unreachable rather than stale.
//   - arenapair: a bitset.Arena.Get needs a matching Put in the same
//     function (deferred counts), or a reviewed justification — the arena's
//     zero-alloc steady state depends on sets coming back.
//   - lockhold: no heavy computation (Compute*/Warm*/Condensation/...)
//     and no channel sends while a sync.Mutex/RWMutex write lock acquired
//     in the same function is held.
//   - detorder: no ordered result slice may be built by appending in map
//     iteration order inside the deterministic kernels — the guarantee
//     behind the Parallelism-1..8 byte-identical tests.
//   - detflow: the deterministic kernels must not call nondeterministic
//     functions — time.Now, unseeded math/rand, crypto/rand — directly or
//     through any chain of helpers, in this package or an imported one
//     (tracked by Determinism facts over the call graph).
//   - errflow: the error of a versioned mutation (ApplyDelta, Advance,
//     IncCompute, and fact-carrying wrappers) must be checked on every
//     path before the updated state is trusted — not discarded, not
//     overwritten by the next mutation.
//   - swapver: a stored snapshot and the derived state swapped in with it
//     must originate from the same version source — no mixing pre- and
//     post-delta values in one publish, no re-storing the pre-delta
//     pointer after a delta was applied.
//
// The module is nested under tools/vet so the main divtopk module stays
// dependency-free. The build environment is offline, so instead of
// golang.org/x/tools/go/analysis the analyzers are written against the
// source-compatible stdlib-only subset in ./analysis (same Analyzer / Pass /
// Diagnostic shape; swap the import path to port to the real framework).
//
// # Dataflow engine
//
// The path-sensitive analyzers (lockhold, arenapair, curload, detflow,
// errflow, swapver) run on a shared dataflow core:
//
// analysis/cfg builds an intraprocedural control-flow graph per function
// body: basic blocks of statement/expression nodes, edges for
// if/for/range/switch/select branches and loop back edges, plus the edges
// Go's control quirks demand — defer bodies on the exit path, panic/fatal
// calls terminating a block, labeled break/continue/goto. Range heads
// re-emit the key/value idents as top-level definition nodes, which is
// what lets analyzers reset per-object state on loop rebinding instead of
// dragging facts around the back edge. On top of the graph, cfg.Fixpoint
// runs a forward worklist iteration with a caller-supplied join: each
// analyzer chooses its own lattice — detflow and errflow join by union
// (a fact on any path counts), curload joins by max (the worst path
// counts), swapver keeps agreeing version tags and drops conflicting
// ones. Transfer functions are pure; after the fixpoint converges each
// analyzer replays every reachable block once more with reporting hooks
// enabled, so diagnostics land at the first statement where the invariant
// actually breaks on some path.
//
// analysis/facts carries results across package boundaries. A fact is a
// small JSON-encodable value attached to a *types.Func (or a package),
// registered per analyzer and keyed by "pkgpath:Func" /
// "pkgpath:Type.Method". The current catalog:
//
//   - detflow.Determinism{Det, Reason} — every analyzed function gets one;
//     Det:false carries a human-readable chain ("calls time.Now (wall
//     clock)") so a two-hop violation names its root cause.
//   - curload.LoadsCur{} — zero-arg accessors that perform a cur.Load()
//     internally; call sites count them as loads.
//   - errflow.ErrVersioning{} — helpers whose last result is the error of
//     a versioned mutation; call sites must check it like the mutation
//     itself.
//   - swapver.DerivesVersion{Kind} — zero-arg accessors whose result
//     carries a version tag ("load" or "delta") to their callers.
//   - lockhold.Heavy{}, arenapair.{Gets,Puts} — helper summaries for the
//     lock-discipline and arena-pairing checks.
//
// Facts flow through two channels. Standalone (./bin/divtopk-vet ./...),
// one facts.Set is shared across packages analyzed in dependency order.
// Under go vet -vettool, cmd/go hands each package its direct imports'
// .vetx files; the driver decodes them into the set, runs the suite, and
// encodes the full set (own + imported, so facts flow transitively) back
// out. Both channels are covered by a two-package round-trip test.
//
// To write a fact-driven analyzer: declare the fact type and list a
// prototype in the Analyzer's FactTypes (drivers register the types via
// analysis.RegisterFactTypes); in Run, phase 1 walks
// FuncDecls exporting facts with pass.ExportObjectFact, iterated to a
// fixpoint so same-package helpers resolve in any declaration order;
// phase 2 builds a cfg per body (and per FuncLit), runs Fixpoint with the
// analyzer's join, and replays reachable blocks with report hooks,
// consuming callee facts via pass.ImportObjectFact where a call's effect
// depends on them. analysistest places each testdata/src directory on a
// GOPATH-style loader, analyzes dependencies facts-only, and checks
// diagnostics against // want comments.
//
// Run the whole suite from the repository root with:
//
//	make lint
//
// or directly:
//
//	go -C tools/vet build -o ../../bin/divtopk-vet ./cmd/divtopk-vet
//	./bin/divtopk-vet ./...
//
// The binary also speaks the cmd/go vet-tool protocol:
//
//	go vet -vettool=$(pwd)/bin/divtopk-vet ./...
//
// A diagnostic can be suppressed with a reviewed, justified comment on the
// flagged line or the line directly above it:
//
//	//lint:allow <analyzer> <justification>
//
// The justification is mandatory; a bare //lint:allow is itself a finding.
//
// Test files (_test.go) are exempt from all analyzers: the invariants guard
// production code, and tests deliberately drive the raw primitives —
// unversioned cache keys, never-returned arena sets — to exercise them.
package vet
