// Package cache is the minimized result cache: the real
// divtopk/internal/cache.Cache reduced to its admission surface.
package cache

type Cache struct{ m map[string]any }

func New() *Cache { return &Cache{m: make(map[string]any)} }

func (c *Cache) Do(key string, fn func() (any, error)) (any, error) {
	if v, ok := c.m[key]; ok {
		return v, nil
	}
	v, err := fn()
	if err == nil {
		c.m[key] = v
	}
	return v, err
}

func (c *Cache) Get(key string) (any, bool) {
	v, ok := c.m[key]
	return v, ok
}

func (c *Cache) Add(key string, v any) { c.m[key] = v }

func (c *Cache) DoStatus(key string, fn func() (any, bool, error)) (any, string, error) {
	if v, ok := c.m[key]; ok {
		return v, "hit", nil
	}
	v, _, err := fn()
	if err == nil {
		c.m[key] = v
	}
	return v, "miss", err
}

func (c *Cache) PutAdvanced(key string, v any) { c.m[key] = v }
