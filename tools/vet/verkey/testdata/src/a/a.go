// Package a exercises the version-taint walk on cache admissions.
package a

import (
	"fmt"

	"cache"
)

type graph struct{ version uint64 }

func (g *graph) Version() uint64 { return g.version }

// queryKey mirrors divtopk.queryKey: the version is an explicit component.
func queryKey(version uint64, q string) string {
	return fmt.Sprintf("v=%d|%s", version, q)
}

// good flows the snapshot version through a local into the key.
func good(c *cache.Cache, g *graph, q string) (any, error) {
	ver := g.Version()
	key := queryKey(ver, q)
	return c.Do(key, func() (any, error) { return q, nil })
}

// goodInline derives the key in the argument itself.
func goodInline(c *cache.Cache, g *graph, q string) {
	c.Add(fmt.Sprintf("v=%d|%s", g.Version(), q), q)
}

// bad builds a key from the query alone: after a graph update the entry is
// still reachable and a stale result gets served.
func bad(c *cache.Cache, q string) (any, error) {
	key := fmt.Sprintf("q|%s", q)
	return c.Do(key, func() (any, error) { return q, nil }) // want `does not flow from the graph snapshot version`
}

// badGet is the lookup-side variant of the same bug.
func badGet(c *cache.Cache, q string) (any, bool) {
	return c.Get("static:" + q) // want `does not flow from the graph snapshot version`
}

// suppressed records a reviewed version-free cache: a per-snapshot cache
// whose whole instance is dropped on update does not need versioned keys.
func suppressed(c *cache.Cache, q string) (any, bool) {
	//lint:allow verkey cache instance is per-snapshot and dropped on update
	return c.Get("scoped:" + q)
}

// goodAdvanced mirrors the commit-time advance pass: the post-delta key is
// derived from the new snapshot's version before installation.
func goodAdvanced(c *cache.Cache, g2 *graph, q string, val any) {
	ver := g2.Version()
	c.PutAdvanced(queryKey(ver, q), val)
}

// badAdvanced installs an advanced entry under a version-free key: the entry
// keeps serving its pre-delta value after every later commit.
func badAdvanced(c *cache.Cache, q string, val any) {
	c.PutAdvanced("warm:"+q, val) // want `does not flow from the graph snapshot version`
}

// goodDoStatus is the provenance-reporting admission with a versioned key.
func goodDoStatus(c *cache.Cache, g *graph, q string) (any, string, error) {
	key := queryKey(g.Version(), q)
	return c.DoStatus(key, func() (any, bool, error) { return q, false, nil })
}

// badDoStatus is the provenance-reporting admission without one.
func badDoStatus(c *cache.Cache, q string) (any, string, error) {
	return c.DoStatus("q:"+q, func() (any, bool, error) { return q, false, nil }) // want `does not flow from the graph snapshot version`
}
