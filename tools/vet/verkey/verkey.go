// Package verkey checks that every result-cache admission keys on the graph
// snapshot version.
//
// Invariant (PR 4, cache invalidation by unreachability): the serving layer
// never invalidates cached query results — instead every cache key embeds
// the snapshot version (see divtopk.queryKey), so entries cached against an
// older snapshot become unreachable after an Update and age out of the LRU.
// A cache.Cache call site whose key does not flow from a version value
// silently re-introduces stale-result serving.
//
// The check is a conservative per-function taint walk: the key argument of
// Cache.Do/Get/Add must (transitively, through local assignments and call
// arguments) contain a Version() call, a version field/variable, or a value
// derived from one — the shape queryKey and every call site in the tree use.
package verkey

import (
	"go/ast"
	"go/types"
	"strings"

	"divtopk/tools/vet/analysis"
	"divtopk/tools/vet/internal/typeutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "verkey",
	Doc: "flag cache admissions whose key does not flow from the graph " +
		"snapshot version (stale results become servable after updates)",
	Run: run,
}

// cacheMethods are the admission/lookup entry points of the cache package.
// PutAdvanced and DoStatus joined with the warm result cache: an advanced
// entry installed under an unversioned key would keep serving a pre-delta
// result after later commits exactly like a stale Do admission.
var cacheMethods = map[string]bool{
	"Do":          true,
	"Get":         true,
	"Add":         true,
	"DoStatus":    true,
	"PutAdvanced": true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	tainted := make(map[types.Object]bool)

	exprTainted := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			switch x := n.(type) {
			case *ast.CallExpr:
				if typeutil.CalleeName(x) == "Version" {
					found = true
					return false
				}
			case *ast.SelectorExpr:
				if isVersionName(x.Sel.Name) {
					found = true
					return false
				}
			case *ast.Ident:
				obj := pass.TypesInfo.ObjectOf(x)
				if obj != nil && tainted[obj] {
					found = true
					return false
				}
				if v, ok := obj.(*types.Var); ok && isVersionName(v.Name()) {
					found = true
					return false
				}
			}
			return true
		})
		return found
	}

	// Single in-order walk: statements both propagate taint and contain the
	// cache calls to check; Go evaluates an assignment's RHS before its LHS
	// becomes visible, and the walk mirrors that.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			any := false
			for _, rhs := range st.Rhs {
				if exprTainted(rhs) {
					any = true
					break
				}
			}
			if any {
				for _, lhs := range st.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
							tainted[obj] = true
						}
					}
				}
			}
		case *ast.ValueSpec:
			any := false
			for _, v := range st.Values {
				if exprTainted(v) {
					any = true
					break
				}
			}
			if any {
				for _, id := range st.Names {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
						tainted[obj] = true
					}
				}
			}
		case *ast.CallExpr:
			if len(st.Args) == 0 {
				return true
			}
			fun, ok := ast.Unparen(st.Fun).(*ast.SelectorExpr)
			if !ok || !cacheMethods[fun.Sel.Name] {
				return true
			}
			tv, ok := pass.TypesInfo.Types[fun.X]
			if !ok || !typeutil.IsNamed(tv.Type, "cache", "Cache") {
				return true
			}
			if !exprTainted(st.Args[0]) {
				pass.Reportf(st.Args[0].Pos(),
					"cache key in %s does not flow from the graph snapshot version: entries "+
						"cached before an Update stay servable after it — derive the key via "+
						"queryKey/Version() so stale entries become unreachable",
					typeutil.FuncFor(fd))
			}
		}
		return true
	})
}

func isVersionName(name string) bool {
	l := strings.ToLower(name)
	return l == "version" || l == "ver"
}
