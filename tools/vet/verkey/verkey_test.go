package verkey_test

import (
	"testing"

	"divtopk/tools/vet/analysis/analysistest"
	"divtopk/tools/vet/verkey"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), verkey.Analyzer, "a")
}
