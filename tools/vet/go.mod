module divtopk/tools/vet

go 1.24
