package arenapair_test

import (
	"testing"

	"divtopk/tools/vet/analysis/analysistest"
	"divtopk/tools/vet/arenapair"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), arenapair.Analyzer, "a")
}
