// Package bitset is the minimized arena: Get carves a pooled set, Put
// returns it for reuse.
package bitset

type Set struct{ words []uint64 }

func (s *Set) Add(i int) { s.words[i>>6] |= 1 << (uint(i) & 63) }

type Arena struct {
	words int
	free  []*Set
}

func NewArena(bits int) *Arena { return &Arena{words: (bits + 63) / 64} }

func (a *Arena) Get() *Set {
	if n := len(a.free); n > 0 {
		s := a.free[n-1]
		a.free = a.free[:n-1]
		return s
	}
	return &Set{words: make([]uint64, a.words)}
}

func (a *Arena) Put(s *Set) {
	if s != nil {
		a.free = append(a.free, s)
	}
}
