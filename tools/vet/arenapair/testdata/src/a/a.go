// Package a exercises the Get/Put pairing discipline.
package a

import "bitset"

func use(s *bitset.Set) {}

// good pairs the Get with a direct Put.
func good(a *bitset.Arena) {
	s := a.Get()
	use(s)
	a.Put(s)
}

// goodDeferred pairs the Get with a deferred Put — covers every exit path.
func goodDeferred(a *bitset.Arena) {
	s := a.Get()
	defer a.Put(s)
	use(s)
}

// goodLoop mirrors the relevant-set kernel: Gets in a level loop, Puts in
// the release bookkeeping of the same function.
func goodLoop(a *bitset.Arena, keep []bool) {
	sets := make([]*bitset.Set, len(keep))
	for i := range keep {
		sets[i] = a.Get()
	}
	for i := range keep {
		if !keep[i] {
			a.Put(sets[i])
			sets[i] = nil
		}
	}
}

// goodTwoArenas keeps separate pools separate: each arena has its own Put.
func goodTwoArenas(a, b *bitset.Arena) {
	sa, sb := a.Get(), b.Get()
	use(sa)
	use(sb)
	a.Put(sa)
	b.Put(sb)
}

// bad leaks the pooled set: no Put on any path.
func bad(a *bitset.Arena) {
	s := a.Get() // want `no matching a\.Put\(\) on any path`
	use(s)
}

// badEscape returns the set without detaching it from the pool discipline.
func badEscape(a *bitset.Arena) *bitset.Set {
	return a.Get() // want `no matching a\.Put\(\) on any path`
}

// suppressed records the engine-lifetime pattern: the arena dies wholesale
// with its owner, so nothing ever returns.
func suppressed(a *bitset.Arena) *bitset.Set {
	//lint:allow arenapair arena dies with its owning engine; sets are never reused
	return a.Get()
}
