// Package a exercises the Get/Put pairing discipline.
package a

import "bitset"

func use(s *bitset.Set) {}

// good pairs the Get with a direct Put.
func good(a *bitset.Arena) {
	s := a.Get()
	use(s)
	a.Put(s)
}

// goodDeferred pairs the Get with a deferred Put — covers every exit path.
func goodDeferred(a *bitset.Arena) {
	s := a.Get()
	defer a.Put(s)
	use(s)
}

// goodLoop mirrors the relevant-set kernel: Gets in a level loop, Puts in
// the release bookkeeping of the same function.
func goodLoop(a *bitset.Arena, keep []bool) {
	sets := make([]*bitset.Set, len(keep))
	for i := range keep {
		sets[i] = a.Get()
	}
	for i := range keep {
		if !keep[i] {
			a.Put(sets[i])
			sets[i] = nil
		}
	}
}

// goodTwoArenas keeps separate pools separate: each arena has its own Put.
func goodTwoArenas(a, b *bitset.Arena) {
	sa, sb := a.Get(), b.Get()
	use(sa)
	use(sb)
	a.Put(sa)
	b.Put(sb)
}

// bad leaks the pooled set: no Put on any path.
func bad(a *bitset.Arena) {
	s := a.Get() // want `no matching a\.Put\(\) on any path`
	use(s)
}

// badEscape returns the set without detaching it from the pool discipline.
func badEscape(a *bitset.Arena) *bitset.Set {
	return a.Get() // want `no matching a\.Put\(\) on any path`
}

// suppressed records the engine-lifetime pattern: the arena dies wholesale
// with its owner, so nothing ever returns.
func suppressed(a *bitset.Arena) *bitset.Set {
	//lint:allow arenapair arena dies with its owning engine; sets are never reused
	return a.Get()
}

// --- cases the syntactic (pre-CFG) counter could not decide ---

// badBranchLeak releases only when cond holds; the other branch leaks. The
// old per-function Put count saw "one Put" and stayed silent.
func badBranchLeak(a *bitset.Arena, cond bool) {
	s := a.Get() // want `missing a\.Put\(\) on some path`
	use(s)
	if cond {
		a.Put(s)
	}
}

// badLoopCarried rebinds s every iteration but releases only the last set:
// each back edge abandons the previous iteration's set.
func badLoopCarried(a *bitset.Arena, keep []bool) {
	var s *bitset.Set
	for i := range keep {
		s = a.Get() // want `re-runs while the set from the previous iteration is still outstanding`
		if keep[i] {
			use(s)
		}
	}
	a.Put(s)
}

// goodLoopPaired releases inside every iteration before the back edge.
func goodLoopPaired(a *bitset.Arena, keep []bool) {
	for range keep {
		s := a.Get()
		use(s)
		a.Put(s)
	}
}

// goodStoreTransfer hands the set to a structure that outlives the call;
// ownership (and the Put obligation) moves with it. The old counter
// false-positived on this shape.
func goodStoreTransfer(a *bitset.Arena, dst map[int]*bitset.Set) {
	s := a.Get()
	dst[0] = s
}

// --- acquisition and release through helpers (ArenaEffects facts) ---

// alloc hands a fresh set to its caller: the suppression records the
// intentional escape here, and the AcquiresFromArena side of the fact moves
// the Put obligation to every call site.
func alloc(a *bitset.Arena) *bitset.Set {
	//lint:allow arenapair ownership transfers to the caller, which must Put
	return a.Get()
}

// release returns its set to the arena on the caller's behalf.
func release(a *bitset.Arena, s *bitset.Set) { a.Put(s) }

// badHelperLeak obtains through the helper and never releases.
func badHelperLeak(a *bitset.Arena) {
	s := alloc(a) // want `alloc\(a\) in badHelperLeak has no matching a\.Put\(\) on any path`
	use(s)
}

// goodHelperPair obtains through the helper and releases directly.
func goodHelperPair(a *bitset.Arena) {
	s := alloc(a)
	use(s)
	a.Put(s)
}

// goodHelperRelease pairs a direct Get with a helper release.
func goodHelperRelease(a *bitset.Arena) {
	s := a.Get()
	use(s)
	release(a, s)
}
